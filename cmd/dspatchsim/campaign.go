package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dspatch/internal/sweep"
)

// runCampaign loads a campaign spec file and streams its NDJSON records to
// out (stdout unless -campaign-out names a file), optionally mirroring point
// records into a CSV table. The spec is decoded strictly so a typo'd axis
// name fails loudly instead of silently sweeping nothing.
func runCampaign(specPath, outPath, csvPath string, parallel int, stdout, stderr io.Writer) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	var c sweep.Campaign
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return fmt.Errorf("campaign: %s: %w", specPath, err)
	}

	// Output files are closed explicitly so a failed flush or close (disk
	// full, NFS write-back) surfaces as a non-zero exit instead of leaving a
	// silently truncated file behind an apparent success.
	out := stdout
	var outF, csvF *os.File
	closeAll := func() {
		if outF != nil {
			outF.Close()
		}
		if csvF != nil {
			csvF.Close()
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return fmt.Errorf("campaign-out: %w", err)
		}
		outF, out = f, f
	}
	var cw *csv.Writer
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			closeAll()
			return fmt.Errorf("campaign-csv: %w", err)
		}
		csvF = f
		cw = csv.NewWriter(f)
		if err := cw.Write(csvHeader); err != nil {
			closeAll()
			return fmt.Errorf("campaign-csv: %w", err)
		}
	}

	ndjson := sweep.NDJSONEmitter(out)
	eng := sweep.Engine{Workers: parallel}
	sum, err := eng.Run(context.Background(), c, func(line json.RawMessage) error {
		if err := ndjson(line); err != nil {
			return err
		}
		if cw != nil {
			if err := csvAppend(cw, line); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		closeAll()
		return fmt.Errorf("campaign: %w", err)
	}
	if cw != nil {
		cw.Flush()
		if err := cw.Error(); err != nil {
			closeAll()
			return fmt.Errorf("campaign-csv: %w", err)
		}
	}
	if csvF != nil {
		if err := csvF.Close(); err != nil {
			csvF = nil
			closeAll()
			return fmt.Errorf("campaign-csv: %w", err)
		}
		csvF = nil
	}
	if outF != nil {
		if err := outF.Close(); err != nil {
			return fmt.Errorf("campaign-out: %w", err)
		}
		outF = nil
	}
	fmt.Fprintf(stderr, "campaign %s: %d points (%d baseline, %d ratios dropped), %d simulated / %d memo / %d disk\n",
		campaignLabel(c, specPath), sum.Points, sum.BaselinePoints, sum.Dropped,
		sum.Engine.Sims, sum.Engine.MemoHits, sum.Engine.DiskHits)
	return nil
}

func campaignLabel(c sweep.Campaign, specPath string) string {
	if c.Name != "" {
		return c.Name
	}
	return specPath
}

var csvHeader = []string{
	"index", "workloads", "l2", "refs", "seed", "llc_bytes", "dram_channels",
	"dram_mtps", "sms_pht_entries", "baseline", "ipc", "cycles", "coverage",
	"accuracy", "avg_bw_gbps", "speedup",
}

// csvAppend mirrors one point record (other record types are skipped) into
// the CSV table. Multi-lane values are joined with '|'.
func csvAppend(cw *csv.Writer, line json.RawMessage) error {
	var rec sweep.PointRecord
	if err := json.Unmarshal(line, &rec); err != nil || rec.Type != "point" {
		return nil // header/summary (or future record types): NDJSON-only
	}
	p := rec.Point
	row := []string{
		strconv.FormatInt(rec.Index, 10),
		strings.Join(p.Workloads, "|"),
		p.L2,
		strconv.Itoa(p.Refs),
		strconv.FormatInt(p.Seed, 10),
		strconv.Itoa(p.LLCBytes),
		strconv.Itoa(p.DRAMChannels),
		strconv.Itoa(p.DRAMMTps),
		strconv.Itoa(p.SMSPHTEntries),
		strconv.FormatBool(rec.Baseline),
		joinFloats(rec.Metrics.IPC),
		strconv.FormatUint(rec.Metrics.Cycles, 10),
		formatFloat(rec.Metrics.Coverage),
		formatFloat(rec.Metrics.Accuracy),
		formatFloat(rec.Metrics.AvgBandwidthGBps),
		joinFloats(rec.Speedup),
	}
	return cw.Write(row)
}

func joinFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = formatFloat(x)
	}
	return strings.Join(parts, "|")
}

func formatFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}
