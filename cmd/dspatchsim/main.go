// Command dspatchsim regenerates the DSPatch paper's tables and figures.
//
// Usage:
//
//	dspatchsim -experiment fig12           # quick scale (default)
//	dspatchsim -experiment fig15 -full     # full 75-workload roster
//	dspatchsim -experiment all -parallel 8 # pin the simulation worker count
//	dspatchsim -bench                      # emit a BENCH_<date>.json perf point
//	dspatchsim -experiment all -cpuprofile cpu.prof
//	dspatchsim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"dspatch/internal/experiments"
)

var experimentOrder = []string{
	"table1", "table3", "fig1", "fig4", "fig5", "fig6", "fig11",
	"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
	"fig19", "fig20", "headline",
}

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is main with its dependencies injected, so tests can drive the CLI
// end to end.
func appMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspatchsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("experiment", "", "experiment id (see -list) or 'all'")
	full := fs.Bool("full", false, "run the full 75-workload roster (slow)")
	refs := fs.Int("refs", 0, "override memory references per run")
	parallel := fs.Int("parallel", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	list := fs.Bool("list", false, "list experiment ids")
	bench := fs.Bool("bench", false, "measure simulator throughput and write a BENCH_<date>.json trajectory point")
	benchOut := fs.String("bench-out", "", "path for the -bench JSON (default BENCH_<date>.json)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(experimentOrder, "\n"))
		return 0
	}
	if *exp == "" && !*bench {
		fmt.Fprintln(stderr, "usage: dspatchsim -experiment <id|all> [-full] [-refs N] [-parallel N]")
		fmt.Fprintln(stderr, "       dspatchsim -bench [-refs N] [-bench-out FILE]")
		fmt.Fprintln(stderr, "ids:", strings.Join(experimentOrder, " "))
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
			}
		}()
	}

	if *bench {
		if _, err := runBench(*refs, *benchOut, stdout); err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		if *exp == "" {
			return 0
		}
	}

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	if *refs > 0 {
		scale.Refs = *refs
	}
	scale = scale.WithParallel(*parallel)

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
	}
	for _, id := range ids {
		if !run(stdout, id, scale) {
			fmt.Fprintf(stderr, "unknown experiment %q\n", id)
			return 2
		}
	}
	return 0
}

// run renders one experiment to w, reporting whether id was recognized.
func run(w io.Writer, id string, s experiments.Scale) bool {
	switch id {
	case "table1":
		experiments.FormatStorage(w, "Table 1: DSPatch storage", experiments.Table1())
	case "table3":
		experiments.FormatStorage(w, "Table 3: prefetcher storage budgets", experiments.Table3())
	case "fig1":
		experiments.FormatScaling(w, "Fig 1: prefetcher scaling with DRAM bandwidth", experiments.Fig1(s))
	case "fig4":
		experiments.FormatCategory(w, "Fig 4: BOP/SMS/SPP by category (1ch DDR4-2133)", experiments.Fig4(s))
	case "fig5":
		experiments.FormatFig5(w, experiments.Fig5(s))
	case "fig6":
		experiments.FormatScaling(w, "Fig 6: scaling incl. eSPP/eBOP", experiments.Fig6(s))
	case "fig11":
		experiments.FormatFig11(w, experiments.Fig11a(s), experiments.Fig11b(s))
	case "fig12":
		experiments.FormatCategory(w, "Fig 12: single-thread performance", experiments.Fig12(s))
	case "fig13":
		experiments.FormatFig13(w, experiments.Fig13(s))
	case "fig14":
		experiments.FormatCategory(w, "Fig 14: adjunct prefetchers to SPP", experiments.Fig14(s))
	case "fig15":
		experiments.FormatScaling(w, "Fig 15: performance scaling with DRAM bandwidth", experiments.Fig15(s))
	case "fig16":
		experiments.FormatFig16(w, experiments.Fig16(s))
	case "fig17":
		experiments.FormatCategory(w, "Fig 17: homogeneous 4-core mixes", experiments.Fig17(s))
	case "fig18":
		experiments.FormatFig18(w, experiments.Fig18(s))
	case "fig19":
		experiments.FormatFig19(w, experiments.Fig19(s))
	case "fig20":
		experiments.FormatFig20(w, experiments.Fig20(s))
	case "headline":
		experiments.FormatHeadline(w, experiments.Headline(s))
	default:
		return false
	}
	return true
}
