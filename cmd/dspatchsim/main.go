// Command dspatchsim regenerates the DSPatch paper's tables and figures.
//
// Usage:
//
//	dspatchsim -experiment fig12           # quick scale (default)
//	dspatchsim -experiment fig15 -full     # full 75-workload roster
//	dspatchsim -experiment all -parallel 8 # pin the simulation worker count
//	dspatchsim -experiment all -cache-dir ~/.cache/dspatchsim  # reuse runs across invocations
//	dspatchsim -campaign sweep.json -campaign-csv out.csv  # declarative parameter sweep (internal/sweep)
//	dspatchsim -bench                      # emit a BENCH_<date>.json perf point
//	dspatchsim -bench-diff OLD.json,NEW.json  # per-config ns/ref delta table
//	dspatchsim -stats -workload tpcc       # one run with per-prefetcher telemetry tables
//	dspatchsim -stats -workload tpcc -l2 dspatch+spp -stats-json  # same, machine-readable
//	dspatchsim -trace-export tpcc.trace -workload tpcc -refs 50000
//	dspatchsim -trace-import tpcc.trace -experiment fig12
//	dspatchsim -trace-convert app.champsim.gz -convert-out app.dsptrc  # ChampSim/gem5 LLC trace -> DSPTRC01
//	dspatchsim -scenario specs.json -campaign sweep.json   # register declarative scenarios, then sweep them
//	dspatchsim -experiment all -cpuprofile cpu.prof
//	dspatchsim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// experimentOrder mirrors the shared experiment registry
// (internal/experiments/registry.go), the single source of truth for both
// this CLI and the dspatchd service.
var experimentOrder = experiments.ExperimentIDs()

func main() {
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is main with its dependencies injected, so tests can drive the CLI
// end to end.
func appMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspatchsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("experiment", "", "experiment id (see -list) or 'all'")
	full := fs.Bool("full", false, "run the full 75-workload roster (slow)")
	refs := fs.Int("refs", 0, "override memory references per run")
	parallel := fs.Int("parallel", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
	list := fs.Bool("list", false, "list experiment ids")
	bench := fs.Bool("bench", false, "measure simulator throughput and write a BENCH_<date>.json trajectory point")
	benchOut := fs.String("bench-out", "", "path for the -bench JSON (default BENCH_<date>.json)")
	benchDiff := fs.String("bench-diff", "", "OLD.json,NEW.json: print a per-config ns/ref delta table between two bench points")
	benchGate := fs.Bool("bench-gate", false, "make -bench-diff a regression gate: exit non-zero when a config's ns/ref regresses past its threshold (gate_pct in OLD, default +5%)")
	campaign := fs.String("campaign", "", "run a declarative campaign sweep from this JSON spec file (see internal/sweep)")
	campaignOut := fs.String("campaign-out", "", "write the campaign NDJSON stream to this file (default stdout)")
	campaignCSV := fs.String("campaign-csv", "", "also mirror campaign point records into this CSV file")
	batch := fs.Bool("batch", true, "advance same-trace configs in lockstep over one trace walk")
	cacheDir := fs.String("cache-dir", "", "persistent run-cache directory: completed simulations are reused across process invocations")
	noCache := fs.Bool("no-cache", false, "ignore -cache-dir (force every simulation to run)")
	stats := fs.Bool("stats", false, "run the -workload once with per-prefetcher telemetry and print the stats tables")
	statsJSON := fs.Bool("stats-json", false, "emit the -stats output as JSON instead of tables")
	l2 := fs.String("l2", "dspatch", "L2 prefetcher for -stats (see GET /v1/prefetchers or internal/sim)")
	traceExport := fs.String("trace-export", "", "record the -workload reference stream and write it to this file")
	traceImport := fs.String("trace-import", "", "load a trace file; its refs replace the generator for that (workload, seed)")
	traceConvert := fs.String("trace-convert", "", "convert an external LLC trace (ChampSim binary or text; plain or gzipped) to DSPTRC01")
	convertOut := fs.String("convert-out", "", "output path for -trace-convert (default <name>.dsptrc)")
	convertName := fs.String("convert-name", "", "workload name recorded in the converted trace (default input basename)")
	convertFormat := fs.String("convert-format", "auto", "input layout for -trace-convert: auto, text or champsim")
	scenario := fs.String("scenario", "", "register scenario spec file(s) before running (JSON object or array; comma-separated paths)")
	workload := fs.String("workload", "", "workload name for -trace-export or -stats (see internal/trace roster)")
	seed := fs.Int64("seed", 1, "generator seed for -trace-export or -stats")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	// Flag-validation audit: every bad value or nonsensical combination must
	// exit non-zero with a message, never be silently ignored.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	fail := func(msg string) int {
		fmt.Fprintln(stderr, "dspatchsim:", msg)
		return 2
	}
	switch {
	case *refs < 0:
		return fail(fmt.Sprintf("-refs must be non-negative, got %d", *refs))
	case *parallel < 0:
		return fail(fmt.Sprintf("-parallel must be non-negative, got %d", *parallel))
	case set["workload"] && *traceExport == "" && !*stats:
		return fail("-workload only applies to -trace-export or -stats")
	case *stats && *workload == "":
		return fail("-stats requires -workload")
	case *stats && (*exp != "" || *bench || *benchDiff != "" || *campaign != "" || *traceExport != ""):
		return fail("-stats cannot be combined with -experiment, -bench, -campaign or -trace-export")
	case (set["l2"] || *statsJSON) && !*stats:
		return fail("-l2/-stats-json only apply to -stats")
	case set["bench-out"] && !*bench:
		return fail("-bench-out only applies to -bench")
	case *benchGate && *benchDiff == "":
		return fail("-bench-gate only applies to -bench-diff")
	case *noCache && *cacheDir == "":
		return fail("-no-cache without -cache-dir has nothing to disable")
	case *benchDiff != "" && (*exp != "" || *bench || *traceExport != "" || *traceImport != ""):
		return fail("-bench-diff cannot be combined with -experiment, -bench or trace flags")
	case (*campaignOut != "" || *campaignCSV != "") && *campaign == "":
		return fail("-campaign-out/-campaign-csv only apply to -campaign")
	case *campaign != "" && (*exp != "" || *bench || *benchDiff != "" || *traceExport != "" || *traceImport != ""):
		return fail("-campaign cannot be combined with -experiment, -bench or trace flags")
	case *campaign != "" && (set["refs"] || set["full"] || set["seed"]):
		// Campaign scale lives in the spec; a silently-ignored override would
		// leave the user comparing wrong-scale results.
		return fail("-refs/-full/-seed do not apply to -campaign (set refs and seeds in the spec)")
	case (set["convert-out"] || set["convert-name"] || set["convert-format"]) && *traceConvert == "":
		return fail("-convert-out/-convert-name/-convert-format only apply to -trace-convert")
	case *traceConvert != "" && (*exp != "" || *bench || *benchDiff != "" || *campaign != "" || *stats || *traceExport != "" || *traceImport != ""):
		return fail("-trace-convert is a standalone conversion; import the result with -trace-import or a trace-kind scenario spec")
	case *scenario != "" && *exp == "" && *campaign == "" && !*stats && *traceExport == "" && !*bench:
		return fail("-scenario requires something to run it with: -experiment, -campaign, -stats, -bench or -trace-export")
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(experimentOrder, "\n"))
		return 0
	}
	if *benchDiff != "" {
		parts := strings.SplitN(*benchDiff, ",", 2)
		if len(parts) != 2 {
			fmt.Fprintln(stderr, "bench-diff: want OLD.json,NEW.json")
			return 2
		}
		if err := runBenchDiff(parts[0], parts[1], *benchGate, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	if *traceConvert != "" {
		if err := convertTrace(*traceConvert, *convertOut, *convertName, *convertFormat, *seed, *refs, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}
	if *exp == "" && !*bench && *traceExport == "" && *traceImport == "" && *campaign == "" && !*stats {
		fmt.Fprintln(stderr, "usage: dspatchsim -experiment <id|all> [-full] [-refs N] [-parallel N] [-cache-dir DIR]")
		fmt.Fprintln(stderr, "       dspatchsim -campaign SPEC.json [-campaign-out FILE.ndjson] [-campaign-csv FILE.csv]")
		fmt.Fprintln(stderr, "       dspatchsim -stats -workload NAME [-l2 PF] [-refs N] [-seed N] [-stats-json]")
		fmt.Fprintln(stderr, "       dspatchsim -bench [-refs N] [-bench-out FILE]")
		fmt.Fprintln(stderr, "       dspatchsim -bench-diff OLD.json,NEW.json")
		fmt.Fprintln(stderr, "       dspatchsim -trace-export FILE -workload NAME [-refs N] [-seed N]")
		fmt.Fprintln(stderr, "       dspatchsim -trace-import FILE [-experiment ...]")
		fmt.Fprintln(stderr, "       dspatchsim -trace-convert IN [-convert-out FILE.dsptrc] [-convert-name NAME] [-convert-format auto|text|champsim]")
		fmt.Fprintln(stderr, "       dspatchsim -scenario SPECS.json {-experiment ...|-campaign ...|-stats ...|-trace-export ...}")
		fmt.Fprintln(stderr, "ids:", strings.Join(experimentOrder, " "))
		return 2
	}

	// The run-cache directory is set (or cleared) on every invocation: the
	// engine is process-global, so a stale directory from an earlier call in
	// the same process must not leak into one that disabled it. An imported
	// trace changes simulation inputs in a way the cache key (workload name
	// + seed) cannot distinguish from the synthetic generator, so importing
	// forces the cache off for the invocation.
	activeCacheDir := ""
	if *cacheDir != "" && !*noCache {
		if *traceImport != "" {
			fmt.Fprintln(stderr, "note: persistent run cache disabled for this invocation: -trace-import replaces a stream the cache key does not capture")
		} else {
			activeCacheDir = *cacheDir
		}
	}
	if err := experiments.SetCacheDir(activeCacheDir); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Like the cache dir, the batching toggle is applied every invocation:
	// the engine is process-global and must not inherit a stale setting.
	experiments.SetBatching(*batch)

	// Scenario registration precedes everything that resolves workload
	// names. Unlike -trace-import, spec-registered scenarios carry content
	// fingerprints into every cache key, so the persistent cache stays on.
	if *scenario != "" {
		for _, path := range strings.Split(*scenario, ",") {
			if path = strings.TrimSpace(path); path == "" {
				continue
			}
			ws, err := trace.RegisterSpecFile(path)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			for _, w := range ws {
				fmt.Fprintf(stdout, "registered scenario %q (%s, %s)\n", w.Name, w.Category, w.Source)
			}
		}
	}

	if *campaign != "" {
		if err := runCampaign(*campaign, *campaignOut, *campaignCSV, *parallel, stdout, stderr); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	var imported *trace.Materialized
	importedKnown := false // name was already in the roster (a generator stream was replaced)
	if *traceImport != "" {
		m, known, err := importTrace(*traceImport)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		imported, importedKnown = m, known
		fmt.Fprintf(stdout, "imported trace %s: workload %q seed %d refs %d\n",
			*traceImport, m.Name(), m.Seed(), m.Len())
		if *exp == "" && !*bench && *traceExport == "" && !*stats {
			return 0
		}
	}
	if *traceExport != "" {
		if *workload == "" {
			fmt.Fprintln(stderr, "trace-export: -workload is required")
			return 2
		}
		n, err := exportTrace(*traceExport, *workload, *seed, *refs)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "exported %d refs of %q (seed %d) to %s\n", n, *workload, *seed, *traceExport)
		if *exp == "" && !*bench {
			return 0
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "memprofile:", err)
			}
		}()
	}

	if *stats {
		if err := runStats(*workload, *l2, *refs, *seed, *parallel, *statsJSON, stdout); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0
	}

	if *bench {
		if imported != nil {
			if short, need := benchNeedsLongerTrace(imported, *refs); short {
				fmt.Fprintf(stderr, "trace-import: %q holds %d refs but the bench roster simulates %d per run; re-export with more refs\n",
					imported.Name(), imported.Len(), need)
				return 2
			}
		}
		if _, err := runBench(*refs, *benchOut, stdout); err != nil {
			fmt.Fprintln(stderr, "bench:", err)
			return 1
		}
		if *exp == "" {
			return 0
		}
	}

	scale := experiments.Quick()
	if *full {
		scale = experiments.Full()
	}
	if *refs > 0 {
		scale.Refs = *refs
	}
	scale = scale.WithParallel(*parallel)

	// Guard the documented import-then-experiment flow up front: an imported
	// trace cannot be extended, so an experiment that actually replays it
	// past its end would panic mid-simulation. Only streams the experiments
	// can reach are checked — a roster-known name at one of the lane seeds
	// the engine derives from the scale seed; an unknown-name or
	// foreign-seed import is never read and must not block the run.
	if imported != nil && *exp != "" && importedKnown && scale.Refs > imported.Len() {
		seedReachable := false
		for lane := 0; lane < 4; lane++ {
			if imported.Seed() == sim.LaneSeed(scale.Seed, lane) {
				seedReachable = true
			}
		}
		if seedReachable {
			fmt.Fprintf(stderr, "trace-import: %q holds %d refs but the requested scale simulates %d per run; re-export with more refs or pass -refs %d\n",
				imported.Name(), imported.Len(), scale.Refs, imported.Len())
			return 2
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
	}
	for _, id := range ids {
		if !run(stdout, id, scale) {
			fmt.Fprintf(stderr, "unknown experiment %q\n", id)
			return 2
		}
	}
	return 0
}

// exportTrace materializes refs references of the named workload at seed and
// writes the scenario file. refs <= 0 uses the single-thread default.
func exportTrace(path, name string, seed int64, refs int) (int, error) {
	w, ok := trace.ByName(name)
	if !ok {
		return 0, fmt.Errorf("trace-export: unknown workload %q", name)
	}
	if refs <= 0 {
		refs = 40_000
	}
	m := trace.Shared(w, seed)
	if !m.CanExtend() && m.Len() < refs {
		// The stream was itself imported this invocation; it cannot grow.
		return 0, fmt.Errorf("trace-export: %q holds %d refs and cannot be extended to %d", name, m.Len(), refs)
	}
	trace.Replay(w, seed, refs) // extend the recording to refs
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("trace-export: %w", err)
	}
	if err := m.Export(f, refs); err != nil {
		f.Close()
		return 0, fmt.Errorf("trace-export: %w", err)
	}
	return refs, f.Close()
}

// convertTrace ingests an external LLC trace (ChampSim binary or text,
// plain or gzipped) and writes it as a DSPTRC01 scenario file, ready for
// -trace-import or a trace-kind scenario spec. refs > 0 bounds the
// conversion; seed is recorded in the header (external traces have no
// generator seed; it only distinguishes store entries).
func convertTrace(in, out, name, format string, seed int64, refs int, stdout io.Writer) error {
	if name == "" {
		base := filepath.Base(in)
		for ext := filepath.Ext(base); ext != "" && ext != base; ext = filepath.Ext(base) {
			base = strings.TrimSuffix(base, ext)
		}
		name = base
	}
	if name == "" {
		return fmt.Errorf("trace-convert: cannot derive a workload name from %q; pass -convert-name", in)
	}
	if out == "" {
		out = name + ".dsptrc"
	}
	f, err := os.Open(in)
	if err != nil {
		return fmt.Errorf("trace-convert: %w", err)
	}
	defer f.Close()
	m, err := trace.Convert(f, trace.ConvertOptions{Name: name, Seed: seed, MaxRefs: refs, Format: format})
	if err != nil {
		return fmt.Errorf("trace-convert: %w", err)
	}
	o, err := os.Create(out)
	if err != nil {
		return fmt.Errorf("trace-convert: %w", err)
	}
	if err := m.Export(o, 0); err != nil {
		o.Close()
		return fmt.Errorf("trace-convert: %w", err)
	}
	if err := o.Close(); err != nil {
		return fmt.Errorf("trace-convert: %w", err)
	}
	fmt.Fprintf(stdout, "converted %s: %d refs -> %s (workload %q seed %d)\n", in, m.Len(), out, name, seed)
	return nil
}

// importTrace loads a scenario file and registers it as the process-wide
// stream for its (workload, seed): experiments naming that workload at that
// seed replay the imported refs instead of the synthetic generator. The
// second result reports whether the name was already in the roster (i.e. a
// generator-backed stream was replaced rather than a new workload added).
// ImportFile keeps startup O(1): only the header is parsed here; the columns
// are checksummed and decoded when the first simulation replays them.
func importTrace(path string) (*trace.Materialized, bool, error) {
	m, err := trace.ImportFile(path)
	if err != nil {
		return nil, false, err
	}
	_, known := trace.ByName(m.Name())
	trace.RegisterShared(m)
	return m, known, nil
}

// run renders one experiment to w, reporting whether id was recognized.
// The registry drives it, so the CLI and the dspatchd service can never
// disagree about what an experiment id means.
func run(w io.Writer, id string, s experiments.Scale) bool {
	e, ok := experiments.ExperimentByID(id)
	if !ok {
		return false
	}
	e.Format(w, e.Run(s))
	return true
}
