package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// runBenchDiff renders a per-config ns/ref delta table (GitHub-flavoured
// markdown) between two BENCH_*.json trajectory points. CI appends it to the
// job summary so every PR shows its simulator-throughput delta against the
// last committed point. It is informational only — callers decide whether
// any regression gates.
func runBenchDiff(oldPath, newPath string, w io.Writer) error {
	oldFile, err := readBenchFile(oldPath)
	if err != nil {
		return err
	}
	newFile, err := readBenchFile(newPath)
	if err != nil {
		return err
	}

	oldBy := map[string]BenchConfig{}
	for _, c := range oldFile.Configs {
		oldBy[c.Name] = c
	}

	fmt.Fprintf(w, "### Simulator throughput: %s vs %s\n\n", oldPath, newPath)
	fmt.Fprintf(w, "| config | old ns/ref | new ns/ref | delta | old allocs/ref | new allocs/ref |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|\n")
	for _, n := range newFile.Configs {
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Fprintf(w, "| %s | — | %.1f | new | — | %.3f |\n", n.Name, n.NsPerRef, n.AllocsPerRef)
			continue
		}
		delta := "n/a"
		if o.NsPerRef > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n.NsPerRef-o.NsPerRef)/o.NsPerRef)
		}
		fmt.Fprintf(w, "| %s | %.1f | %.1f | %s | %.3f | %.3f |\n",
			n.Name, o.NsPerRef, n.NsPerRef, delta, o.AllocsPerRef, n.AllocsPerRef)
	}
	fmt.Fprintf(w, "\n(negative delta = faster; refs/core old %d, new %d; hosts may differ)\n",
		refsOf(oldFile), refsOf(newFile))
	return nil
}

func readBenchFile(path string) (BenchFile, error) {
	var f BenchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, fmt.Errorf("bench-diff: %w", err)
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("bench-diff: %s: %w", path, err)
	}
	return f, nil
}

func refsOf(f BenchFile) int {
	if len(f.Configs) > 0 {
		return f.Configs[0].Refs
	}
	return 0
}
