package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// defaultGatePct is the ns/ref regression a gated -bench-diff allows per
// config before failing; a committed point overrides it per config via
// gate_pct.
const defaultGatePct = 5.0

// runBenchDiff renders a per-config ns/ref delta table (GitHub-flavoured
// markdown) between two BENCH_*.json trajectory points. CI appends it to the
// job summary so every PR shows its simulator-throughput delta against the
// last committed point.
//
// With gate set it is a regression check: any config whose new ns/ref
// exceeds the old by more than its threshold (the committed point's
// gate_pct, default +5%) fails the diff with an error naming every breach.
// Without gate it stays informational.
//
// An absent or empty OLD file is not an error: fresh clones and CI forks
// have no committed trajectory yet, so the table degrades to "no baseline"
// and renders the new point's columns alone (nothing to gate on).
func runBenchDiff(oldPath, newPath string, gate bool, w io.Writer) error {
	oldFile, haveOld, err := readBenchFile(oldPath)
	if err != nil {
		return err
	}
	newFile, haveNew, err := readBenchFile(newPath)
	if err != nil {
		return err
	}
	if !haveNew {
		return fmt.Errorf("bench-diff: %s: missing or empty (the fresh point must exist)", newPath)
	}

	oldBy := map[string]BenchConfig{}
	for _, c := range oldFile.Configs {
		oldBy[c.Name] = c
	}

	if !haveOld {
		fmt.Fprintf(w, "### Simulator throughput: no baseline (%s missing or empty) — %s\n\n", oldPath, newPath)
	} else {
		fmt.Fprintf(w, "### Simulator throughput: %s vs %s\n\n", oldPath, newPath)
	}
	fmt.Fprintf(w, "| config | old ns/ref | new ns/ref | delta | old allocs/ref | new allocs/ref |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|\n")
	var breaches []string
	for _, n := range newFile.Configs {
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Fprintf(w, "| %s | — | %.1f | new | — | %.3f |\n", n.Name, n.NsPerRef, n.AllocsPerRef)
			continue
		}
		delta := "n/a"
		if o.NsPerRef > 0 {
			pct := 100 * (n.NsPerRef - o.NsPerRef) / o.NsPerRef
			delta = fmt.Sprintf("%+.1f%%", pct)
			limit := o.GatePct
			if limit <= 0 {
				limit = defaultGatePct
			}
			if gate && pct > limit {
				delta += " ❌"
				breaches = append(breaches, fmt.Sprintf(
					"%s: ns/ref %.1f -> %.1f (%+.1f%%, threshold +%.1f%%)",
					n.Name, o.NsPerRef, n.NsPerRef, pct, limit))
			}
		}
		fmt.Fprintf(w, "| %s | %.1f | %.1f | %s | %.3f | %.3f |\n",
			n.Name, o.NsPerRef, n.NsPerRef, delta, o.AllocsPerRef, n.AllocsPerRef)
	}
	if !haveOld {
		fmt.Fprintf(w, "\n(no committed trajectory to diff against; refs/core new %d)\n", refsOf(newFile))
		return nil
	}
	fmt.Fprintf(w, "\n(negative delta = faster; refs/core old %d, new %d; hosts may differ)\n",
		refsOf(oldFile), refsOf(newFile))
	writeCampaignDiff(w, oldFile.Campaign, newFile.Campaign)
	if len(breaches) > 0 {
		fmt.Fprintf(w, "\n**GATE FAILED: %d config(s) regressed past threshold**\n", len(breaches))
		for _, b := range breaches {
			fmt.Fprintf(w, "- %s\n", b)
		}
		return fmt.Errorf("bench-diff: %d config(s) regressed past their ns/ref threshold", len(breaches))
	}
	return nil
}

// writeCampaignDiff renders the campaign (batched vs serial) series when the
// new point carries one. dspatch-bench/1 files have no campaign section, so
// the old side degrades to "—" rather than erroring.
func writeCampaignDiff(w io.Writer, oldC, newC *BenchCampaign) {
	if newC == nil {
		return
	}
	fmt.Fprintf(w, "\n### Campaign throughput (batched vs serial, %s ×%d)\n\n", newC.Workload, newC.Configs)
	fmt.Fprintf(w, "| series | old ns/ref | new ns/ref | delta |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|\n")
	row := func(name string, o, n float64, haveOld bool) {
		if !haveOld {
			fmt.Fprintf(w, "| %s | — | %.1f | new |\n", name, n)
			return
		}
		delta := "n/a"
		if o > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n-o)/o)
		}
		fmt.Fprintf(w, "| %s | %.1f | %.1f | %s |\n", name, o, n, delta)
	}
	if oldC == nil {
		row("campaign batched", 0, newC.NsPerRefBatch, false)
		row("campaign serial", 0, newC.NsPerRefSerial, false)
	} else {
		row("campaign batched", oldC.NsPerRefBatch, newC.NsPerRefBatch, true)
		row("campaign serial", oldC.NsPerRefSerial, newC.NsPerRefSerial, true)
	}
	fmt.Fprintf(w, "\n(batch speedup over serial in the new point: %+.1f%%)\n", newC.BatchSpeedupPct)
}

// readBenchFile loads a trajectory point. A missing or blank file reports
// ok=false with a zero BenchFile (no error); malformed JSON is still an
// error — a corrupt committed point should fail loudly, not be mistaken for
// an absent one.
func readBenchFile(path string) (BenchFile, bool, error) {
	var f BenchFile
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, false, nil
	}
	if err != nil {
		return f, false, fmt.Errorf("bench-diff: %w", err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return f, false, nil
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, false, fmt.Errorf("bench-diff: %s: %w", path, err)
	}
	// Both committed layouts load: /1 (per-config only) and /2 (adds the
	// campaign series). An unknown schema is a corrupt or future point and
	// must fail loudly rather than diff garbage.
	switch f.Schema {
	case "", "dspatch-bench/1", "dspatch-bench/2":
	default:
		return f, false, fmt.Errorf("bench-diff: %s: unknown schema %q", path, f.Schema)
	}
	return f, true, nil
}

func refsOf(f BenchFile) int {
	if len(f.Configs) > 0 {
		return f.Configs[0].Refs
	}
	return 0
}
