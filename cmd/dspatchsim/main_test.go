package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListPrintsEveryExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, stderr: %s", code, errb.String())
	}
	got := strings.Fields(out.String())
	if len(got) != len(experimentOrder) {
		t.Fatalf("-list printed %d ids, want %d:\n%s", len(got), len(experimentOrder), out.String())
	}
	for i, id := range experimentOrder {
		if got[i] != id {
			t.Errorf("-list line %d = %q, want %q", i, got[i], id)
		}
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain(nil, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Errorf("stderr missing usage: %s", errb.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-experiment", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "fig99") {
		t.Errorf("stderr should name the unknown id: %s", errb.String())
	}
}

func TestExperimentRunAtTinyRefs(t *testing.T) {
	var out, errb bytes.Buffer
	code := appMain([]string{"-experiment", "fig4", "-refs", "2000", "-parallel", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Fig 4", "GEOMEAN", "bop", "sms", "spp"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestParallelMatchesSerialOutput(t *testing.T) {
	var serial, parallel, errb bytes.Buffer
	args := []string{"-experiment", "fig4", "-refs", "2000"}
	if code := appMain(append(args, "-parallel", "1"), &serial, &errb); code != 0 {
		t.Fatalf("serial run failed: %s", errb.String())
	}
	if code := appMain(append(args, "-parallel", "4"), &parallel, &errb); code != 0 {
		t.Fatalf("parallel run failed: %s", errb.String())
	}
	if serial.String() != parallel.String() {
		t.Errorf("-parallel 4 output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestTablesNeedNoSimulation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-experiment", "table1"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Total") {
		t.Errorf("table1 output missing Total row:\n%s", out.String())
	}
}
