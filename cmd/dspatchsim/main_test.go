package main

import (
	"bytes"

	"dspatch/internal/experiments"
	"dspatch/internal/trace"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsEveryExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, stderr: %s", code, errb.String())
	}
	got := strings.Fields(out.String())
	if len(got) != len(experimentOrder) {
		t.Fatalf("-list printed %d ids, want %d:\n%s", len(got), len(experimentOrder), out.String())
	}
	for i, id := range experimentOrder {
		if got[i] != id {
			t.Errorf("-list line %d = %q, want %q", i, got[i], id)
		}
	}
}

// TestBadFlagsExitNonZero is the flag-validation audit: every invalid value
// or nonsensical combination must exit 2 with a message on stderr — never a
// panic, never a silent success that quietly ignores the flag.
func TestBadFlagsExitNonZero(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"negative refs", []string{"-experiment", "fig4", "-refs", "-5"}, "-refs"},
		{"negative parallel", []string{"-experiment", "fig4", "-parallel", "-2"}, "-parallel"},
		{"malformed refs", []string{"-experiment", "fig4", "-refs", "many"}, "invalid value"},
		{"workload without export", []string{"-workload", "tpcc", "-experiment", "fig4"}, "-workload"},
		{"bench-out without bench", []string{"-bench-out", "x.json", "-experiment", "fig4"}, "-bench-out"},
		{"no-cache without cache-dir", []string{"-no-cache", "-experiment", "fig4"}, "-no-cache"},
		{"bench-diff with experiment", []string{"-bench-diff", "a.json,b.json", "-experiment", "fig4"}, "-bench-diff"},
		{"bench-diff with bench", []string{"-bench-diff", "a.json,b.json", "-bench"}, "-bench-diff"},
		{"bench-diff single file", []string{"-bench-diff", "only.json"}, "OLD.json,NEW.json"},
		{"export without workload", []string{"-trace-export", "x.trace"}, "-workload"},
		{"campaign-out without campaign", []string{"-campaign-out", "x.ndjson", "-experiment", "fig4"}, "-campaign-out"},
		{"campaign-csv without campaign", []string{"-campaign-csv", "x.csv", "-experiment", "fig4"}, "-campaign-out"},
		{"campaign with experiment", []string{"-campaign", "spec.json", "-experiment", "fig4"}, "-campaign"},
		{"campaign with bench", []string{"-campaign", "spec.json", "-bench"}, "-campaign"},
		{"campaign with refs", []string{"-campaign", "spec.json", "-refs", "5000"}, "in the spec"},
		{"campaign with full", []string{"-campaign", "spec.json", "-full"}, "in the spec"},
		{"campaign with seed", []string{"-campaign", "spec.json", "-seed", "2"}, "in the spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := appMain(tc.args, &out, &errb)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errb.String(), tc.want)
			}
		})
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain(nil, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Errorf("stderr missing usage: %s", errb.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-experiment", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "fig99") {
		t.Errorf("stderr should name the unknown id: %s", errb.String())
	}
}

func TestExperimentRunAtTinyRefs(t *testing.T) {
	var out, errb bytes.Buffer
	code := appMain([]string{"-experiment", "fig4", "-refs", "2000", "-parallel", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Fig 4", "GEOMEAN", "bop", "sms", "spp"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestParallelMatchesSerialOutput(t *testing.T) {
	var serial, parallel, errb bytes.Buffer
	args := []string{"-experiment", "fig4", "-refs", "2000"}
	if code := appMain(append(args, "-parallel", "1"), &serial, &errb); code != 0 {
		t.Fatalf("serial run failed: %s", errb.String())
	}
	if code := appMain(append(args, "-parallel", "4"), &parallel, &errb); code != 0 {
		t.Fatalf("parallel run failed: %s", errb.String())
	}
	if serial.String() != parallel.String() {
		t.Errorf("-parallel 4 output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestTablesNeedNoSimulation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-experiment", "table1"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Total") {
		t.Errorf("table1 output missing Total row:\n%s", out.String())
	}
}

func TestBenchWritesValidTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, errb bytes.Buffer
	if code := appMain([]string{"-bench", "-refs", "1500", "-bench-out", out}, &stdout, &errb); code != 0 {
		t.Fatalf("-bench exit code = %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("bench file not written: %v", err)
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("bench file is not valid JSON: %v", err)
	}
	if f.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", f.Schema, benchSchema)
	}
	if len(f.Configs) != len(benchPlan()) {
		t.Errorf("configs = %d, want %d", len(f.Configs), len(benchPlan()))
	}
	for _, c := range f.Configs {
		if c.RefsPerSec <= 0 || c.NsPerRef <= 0 || c.WallNs <= 0 {
			t.Errorf("%s: non-positive throughput fields: %+v", c.Name, c)
		}
		if c.AllocsPerRef < 0 {
			t.Errorf("%s: negative allocs/ref", c.Name)
		}
	}
	if !strings.Contains(stdout.String(), "refs/s") {
		t.Errorf("-bench should print a human summary, got:\n%s", stdout.String())
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out, errb bytes.Buffer
	code := appMain([]string{"-experiment", "fig4", "-refs", "1000",
		"-cpuprofile", cpu, "-memprofile", mem}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestTraceExportImportRoundTrip(t *testing.T) {
	defer trace.ResetShared() // imports replace process-wide streams
	dir := t.TempDir()
	path := filepath.Join(dir, "linpack.trace")
	var out, errb bytes.Buffer
	if code := appMain([]string{"-trace-export", path, "-workload", "linpack", "-refs", "1000", "-seed", "3"}, &out, &errb); code != 0 {
		t.Fatalf("trace-export exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "exported 1000 refs") {
		t.Fatalf("unexpected export output: %s", out.String())
	}
	out.Reset()
	if code := appMain([]string{"-trace-import", path}, &out, &errb); code != 0 {
		t.Fatalf("trace-import exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), `workload "linpack" seed 3 refs 1000`) {
		t.Fatalf("unexpected import output: %s", out.String())
	}
}

func TestTraceExportRequiresWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-trace-export", filepath.Join(t.TempDir(), "x.trace")}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestTraceImportRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := appMain([]string{"-trace-import", path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
}

func TestCacheDirSecondRunIdentical(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "cache")
	args := []string{"-experiment", "fig4", "-refs", "600", "-parallel", "1", "-cache-dir", cache}
	var out1, out2, errb bytes.Buffer
	if code := appMain(args, &out1, &errb); code != 0 {
		t.Fatalf("first run exit %d, stderr: %s", code, errb.String())
	}
	entries, err := filepath.Glob(filepath.Join(cache, "*.json"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir empty after run (err %v)", err)
	}
	// Drop the in-process memo so the second invocation genuinely reads the
	// disk entries, as a second process would.
	experiments.ResetMemo()
	if code := appMain(args, &out2, &errb); code != 0 {
		t.Fatalf("second run exit %d, stderr: %s", code, errb.String())
	}
	if out1.String() != out2.String() {
		t.Fatal("cache-served second run printed different output")
	}
}

func TestBenchDiffTable(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	var out, errb bytes.Buffer
	if code := appMain([]string{"-bench", "-refs", "400", "-bench-out", oldP}, &out, &errb); code != 0 {
		t.Fatalf("bench exit %d: %s", code, errb.String())
	}
	if code := appMain([]string{"-bench", "-refs", "400", "-bench-out", newP}, &out, &errb); code != 0 {
		t.Fatalf("bench exit %d: %s", code, errb.String())
	}
	out.Reset()
	if code := appMain([]string{"-bench-diff", oldP + "," + newP}, &out, &errb); code != 0 {
		t.Fatalf("bench-diff exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"| config |", "dspatch+spp-tpcc", "%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("bench-diff output missing %q:\n%s", want, out.String())
		}
	}
	if code := appMain([]string{"-bench-diff", oldP + ",missing.json"}, &out, &errb); code != 1 {
		t.Fatalf("bench-diff with missing NEW file: exit %d, want 1", code)
	}
}

// TestBenchDiffNoBaseline: an absent or empty committed trajectory (a fresh
// clone, a CI fork) must degrade to a "no baseline" table with exit 0, so
// the diff step never fails a build that has nothing to compare against.
// Only a corrupt baseline — a real problem — stays an error.
func TestBenchDiffNoBaseline(t *testing.T) {
	dir := t.TempDir()
	newP := filepath.Join(dir, "new.json")
	var out, errb bytes.Buffer
	if code := appMain([]string{"-bench", "-refs", "400", "-bench-out", newP}, &out, &errb); code != 0 {
		t.Fatalf("bench exit %d: %s", code, errb.String())
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	blank := filepath.Join(dir, "blank.json")
	if err := os.WriteFile(blank, []byte("  \n\t"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		old      string
		wantCode int
		wantOut  string
	}{
		{"absent old", filepath.Join(dir, "missing.json"), 0, "no baseline"},
		{"empty old", empty, 0, "no baseline"},
		{"whitespace old", blank, 0, "no baseline"},
		{"corrupt old", corrupt, 1, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := appMain([]string{"-bench-diff", tc.old + "," + newP}, &out, &errb)
			if code != tc.wantCode {
				t.Fatalf("exit = %d, want %d (stderr: %s)", code, tc.wantCode, errb.String())
			}
			if tc.wantCode != 0 {
				return
			}
			for _, want := range []string{tc.wantOut, "| config |", "dspatch+spp-tpcc"} {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

func TestTraceImportTooShortForScale(t *testing.T) {
	defer trace.ResetShared() // imports replace process-wide streams
	dir := t.TempDir()
	path := filepath.Join(dir, "short.trace")
	var out, errb bytes.Buffer
	if code := appMain([]string{"-trace-export", path, "-workload", "linpack", "-refs", "500"}, &out, &errb); code != 0 {
		t.Fatalf("export exit %d: %s", code, errb.String())
	}
	errb.Reset()
	if code := appMain([]string{"-trace-import", path, "-experiment", "fig4", "-refs", "2000"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 (refs exceed imported length); stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "holds 500 refs") {
		t.Errorf("error should explain the length limit: %s", errb.String())
	}
}

func TestTraceImportDisablesRunCache(t *testing.T) {
	defer trace.ResetShared() // imports replace process-wide streams
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	cache := filepath.Join(dir, "cache")
	var out, errb bytes.Buffer
	if code := appMain([]string{"-trace-export", path, "-workload", "linpack", "-refs", "1500"}, &out, &errb); code != 0 {
		t.Fatalf("export exit %d: %s", code, errb.String())
	}
	errb.Reset()
	if code := appMain([]string{"-trace-import", path, "-experiment", "fig4", "-refs", "800", "-cache-dir", cache, "-parallel", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "cache disabled") {
		t.Errorf("stderr should note the disabled cache: %s", errb.String())
	}
	if entries, _ := filepath.Glob(filepath.Join(cache, "*.json")); len(entries) != 0 {
		t.Errorf("cache entries written despite -trace-import: %v", entries)
	}
}

func TestTraceImportBenchGuard(t *testing.T) {
	defer trace.ResetShared() // imports replace process-wide streams
	dir := t.TempDir()
	path := filepath.Join(dir, "tpcc.trace")
	var out, errb bytes.Buffer
	if code := appMain([]string{"-trace-export", path, "-workload", "tpcc", "-refs", "500"}, &out, &errb); code != 0 {
		t.Fatalf("export exit %d: %s", code, errb.String())
	}
	errb.Reset()
	if code := appMain([]string{"-trace-import", path, "-bench", "-refs", "2000"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2 (bench exceeds imported length); stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "holds 500 refs") {
		t.Errorf("error should explain the length limit: %s", errb.String())
	}
}

func TestTraceImportUnreachableStreamDoesNotBlock(t *testing.T) {
	defer trace.ResetShared()
	dir := t.TempDir()
	path := filepath.Join(dir, "ext.trace")
	var out, errb bytes.Buffer
	// Record at a seed no experiment lane reaches, then rename to an
	// unknown workload: the experiment must run even though the imported
	// trace is far shorter than the scale.
	if code := appMain([]string{"-trace-export", path, "-workload", "linpack", "-refs", "300", "-seed", "77"}, &out, &errb); code != 0 {
		t.Fatalf("export exit %d: %s", code, errb.String())
	}
	errb.Reset()
	if code := appMain([]string{"-trace-import", path, "-experiment", "fig4", "-refs", "1500", "-parallel", "1"}, &out, &errb); code != 0 {
		t.Fatalf("foreign-seed import blocked the experiment: exit %d, stderr: %s", code, errb.String())
	}
}

// TestCampaignCLI drives a tiny grid campaign end to end: valid NDJSON on
// stdout (header, one record per point in index order, summary) plus the
// mirrored CSV table, and a malformed or unknown-field spec exits non-zero.
func TestCampaignCLI(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
		"name": "cli",
		"base": {"refs": 700},
		"axes": {"workloads": ["mcf", "tpcc"], "l2": ["none", "spp"]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	outP := filepath.Join(dir, "out.ndjson")
	csvP := filepath.Join(dir, "out.csv")
	var out, errb bytes.Buffer
	if code := appMain([]string{"-campaign", spec, "-campaign-out", outP, "-campaign-csv", csvP}, &out, &errb); code != 0 {
		t.Fatalf("campaign exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "campaign cli: 4 points") {
		t.Errorf("stderr missing completion note: %s", errb.String())
	}

	data, err := os.ReadFile(outP)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 6 { // header + 4 points + summary
		t.Fatalf("NDJSON lines = %d, want 6:\n%s", len(lines), data)
	}
	var types []string
	for i, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		types = append(types, rec["type"].(string))
	}
	if got := strings.Join(types, ","); got != "campaign,point,point,point,point,summary" {
		t.Errorf("record types = %s", got)
	}

	csvData, err := os.ReadFile(csvP)
	if err != nil {
		t.Fatal(err)
	}
	csvLines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	if len(csvLines) != 5 { // header + 4 points
		t.Fatalf("CSV lines = %d, want 5:\n%s", len(csvLines), csvData)
	}
	if !strings.HasPrefix(csvLines[0], "index,workloads,l2,") {
		t.Errorf("CSV header = %s", csvLines[0])
	}

	// Stdout NDJSON (no -campaign-out) must carry the same stream — byte
	// for byte on every point record; only the summary's telemetry fields
	// (engine cache deltas, elapsed time) may differ between a cold run and
	// the memoized rerun.
	out.Reset()
	if code := appMain([]string{"-campaign", spec}, &out, &errb); code != 0 {
		t.Fatalf("campaign to stdout exit %d: %s", code, errb.String())
	}
	stdoutLines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(stdoutLines) != len(lines) {
		t.Fatalf("stdout stream has %d lines, -campaign-out had %d", len(stdoutLines), len(lines))
	}
	stripTelemetry := func(line string) string {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("summary line: %v", err)
		}
		delete(m, "engine")
		delete(m, "elapsed_ms")
		b, _ := json.Marshal(m)
		return string(b)
	}
	for i := range lines {
		a, b := lines[i], stdoutLines[i]
		if i == len(lines)-1 {
			a, b = stripTelemetry(a), stripTelemetry(b)
		}
		if a != b {
			t.Errorf("stdout record %d differs from -campaign-out:\n%s\n%s", i, b, a)
		}
	}

	// Spec errors exit non-zero with a message.
	bad := filepath.Join(dir, "bad.json")
	for name, body := range map[string]string{
		"malformed":     "{not json",
		"unknown field": `{"axis": {"workloads": ["mcf"]}}`,
		"bad value":     `{"axes": {"workloads": ["mcf"], "dram_mtps": [999]}}`,
	} {
		if err := os.WriteFile(bad, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		errb.Reset()
		if code := appMain([]string{"-campaign", bad}, &out, &errb); code != 1 {
			t.Errorf("%s spec: exit %d, want 1 (stderr: %s)", name, code, errb.String())
		}
	}
	if code := appMain([]string{"-campaign", filepath.Join(dir, "missing.json")}, &out, &errb); code != 1 {
		t.Error("missing spec file accepted")
	}
}
