package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsEveryExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, stderr: %s", code, errb.String())
	}
	got := strings.Fields(out.String())
	if len(got) != len(experimentOrder) {
		t.Fatalf("-list printed %d ids, want %d:\n%s", len(got), len(experimentOrder), out.String())
	}
	for i, id := range experimentOrder {
		if got[i] != id {
			t.Errorf("-list line %d = %q, want %q", i, got[i], id)
		}
	}
}

func TestNoArgsIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain(nil, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Errorf("stderr missing usage: %s", errb.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-experiment", "fig99"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "fig99") {
		t.Errorf("stderr should name the unknown id: %s", errb.String())
	}
}

func TestExperimentRunAtTinyRefs(t *testing.T) {
	var out, errb bytes.Buffer
	code := appMain([]string{"-experiment", "fig4", "-refs", "2000", "-parallel", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Fig 4", "GEOMEAN", "bop", "sms", "spp"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestParallelMatchesSerialOutput(t *testing.T) {
	var serial, parallel, errb bytes.Buffer
	args := []string{"-experiment", "fig4", "-refs", "2000"}
	if code := appMain(append(args, "-parallel", "1"), &serial, &errb); code != 0 {
		t.Fatalf("serial run failed: %s", errb.String())
	}
	if code := appMain(append(args, "-parallel", "4"), &parallel, &errb); code != 0 {
		t.Fatalf("parallel run failed: %s", errb.String())
	}
	if serial.String() != parallel.String() {
		t.Errorf("-parallel 4 output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestTablesNeedNoSimulation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain([]string{"-experiment", "table1"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Total") {
		t.Errorf("table1 output missing Total row:\n%s", out.String())
	}
}

func TestBenchWritesValidTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, errb bytes.Buffer
	if code := appMain([]string{"-bench", "-refs", "1500", "-bench-out", out}, &stdout, &errb); code != 0 {
		t.Fatalf("-bench exit code = %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("bench file not written: %v", err)
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("bench file is not valid JSON: %v", err)
	}
	if f.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", f.Schema, benchSchema)
	}
	if len(f.Configs) != len(benchPlan()) {
		t.Errorf("configs = %d, want %d", len(f.Configs), len(benchPlan()))
	}
	for _, c := range f.Configs {
		if c.RefsPerSec <= 0 || c.NsPerRef <= 0 || c.WallNs <= 0 {
			t.Errorf("%s: non-positive throughput fields: %+v", c.Name, c)
		}
		if c.AllocsPerRef < 0 {
			t.Errorf("%s: negative allocs/ref", c.Name)
		}
	}
	if !strings.Contains(stdout.String(), "refs/s") {
		t.Errorf("-bench should print a human summary, got:\n%s", stdout.String())
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	var out, errb bytes.Buffer
	code := appMain([]string{"-experiment", "fig4", "-refs", "1000",
		"-cpuprofile", cpu, "-memprofile", mem}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
