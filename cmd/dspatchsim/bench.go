package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// benchSchema versions the BENCH_*.json layout; bump it when fields change
// so trajectory tooling can tell files apart. /2 added the campaign series
// (lockstep batching vs serial); `-bench-diff` still reads /1 files.
const benchSchema = "dspatch-bench/2"

// benchRepeats is how many times each configuration runs; the fastest wall
// time wins, which is the standard way to shave scheduler noise off
// throughput measurements.
const benchRepeats = 5

// BenchConfig is one measured simulation configuration.
type BenchConfig struct {
	Name       string `json:"name"`
	Workloads  string `json:"workloads"` // comma-separated mix, one per core
	Prefetcher string `json:"prefetcher"`
	Cores      int    `json:"cores"`
	Refs       int    `json:"refs_per_core"`

	WallNs       int64   `json:"wall_ns"`        // fastest of benchRepeats
	RefsPerSec   float64 `json:"refs_per_sec"`   // total refs / wall
	NsPerRef     float64 `json:"ns_per_ref"`     // wall / total refs
	AllocsPerRef float64 `json:"allocs_per_ref"` // heap objects / total refs
	BytesPerRef  float64 `json:"bytes_per_ref"`  // heap bytes / total refs

	// GatePct, when set in a committed trajectory point, overrides the
	// default +5% ns/ref regression threshold -bench-diff -bench-gate allows
	// this config before failing. Fresh -bench output leaves it zero.
	GatePct float64 `json:"gate_pct,omitempty"`
}

// BenchCampaign measures the same multi-config campaign executed two ways:
// lockstep-batched over one trace walk (sim.RunBatch) and config-at-a-time
// (serial sim.Run). The delta is the one-pass scheduling win — same machines,
// same refs, same results.
type BenchCampaign struct {
	Workload        string  `json:"workload"`
	Configs         int     `json:"configs"`
	RefsPerConfig   int     `json:"refs_per_config"`
	NsPerRefBatch   float64 `json:"campaign_ns_per_ref"`        // batched wall / (configs*refs)
	NsPerRefSerial  float64 `json:"campaign_ns_per_ref_serial"` // serial wall / (configs*refs)
	BatchSpeedupPct float64 `json:"campaign_batch_speedup_pct"` // 100*(serial-batch)/serial
}

// BenchFile is the machine-readable perf trajectory point `-bench` emits.
// Compare two of them with `benchstat` after converting (see README) or
// simply diff the refs_per_sec columns. Campaign is nil in dspatch-bench/1
// files.
type BenchFile struct {
	Schema     string         `json:"schema"`
	Date       string         `json:"date"` // RFC 3339, UTC
	GoVersion  string         `json:"go_version"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Repeats    int            `json:"repeats"`
	Configs    []BenchConfig  `json:"configs"`
	Campaign   *BenchCampaign `json:"campaign,omitempty"`
}

// benchPlan returns the fixed roster of measured configurations: the
// workloads span friendly (linpack), signature-heavy (tpcc) and hostile
// (mcf) behaviour; the prefetcher set covers the baseline, the paper's main
// contenders and the 4-core machine.
func benchPlan() []struct {
	name string
	ws   []string
	pf   sim.PF
	mp   bool
} {
	return []struct {
		name string
		ws   []string
		pf   sim.PF
		mp   bool
	}{
		{"baseline-tpcc", []string{"tpcc"}, sim.PFNone, false},
		{"dspatch-tpcc", []string{"tpcc"}, sim.PFDSPatch, false},
		{"spp-tpcc", []string{"tpcc"}, sim.PFSPP, false},
		{"dspatch+spp-tpcc", []string{"tpcc"}, sim.PFDSPatchSPP, false},
		{"dspatch+spp-linpack", []string{"linpack"}, sim.PFDSPatchSPP, false},
		{"dspatch+spp-mcf", []string{"mcf"}, sim.PFDSPatchSPP, false},
		{"mp4-dspatch+spp", []string{"tpcc", "linpack", "mcf", "specjbb"}, sim.PFDSPatchSPP, true},
	}
}

// benchNeedsLongerTrace reports whether the bench roster would replay the
// imported stream m past its recorded end (imported traces cannot extend),
// and the per-run ref count it would need. Only (workload, lane-seed) pairs
// the plan actually simulates are considered.
func benchNeedsLongerTrace(m *trace.Materialized, refs int) (bool, int) {
	if refs <= 0 {
		refs = 20_000
	}
	if refs <= m.Len() {
		return false, refs
	}
	for _, c := range benchPlan() {
		for lane, name := range c.ws {
			// Both bench machines run at Options.Seed 1.
			if name == m.Name() && m.Seed() == sim.LaneSeed(1, lane) {
				return true, refs
			}
		}
	}
	return false, refs
}

// benchCampaignRoster is the heterogeneous config set for the campaign
// series: four prefetchers crossed with two LLC sizes, all sharing one
// (workload, seed, refs) trace identity so they qualify for lockstep
// batching.
func benchCampaignRoster(refs int) []sim.Options {
	pfs := []sim.PF{sim.PFNone, sim.PFSPP, sim.PFDSPatch, sim.PFDSPatchSPP}
	llcs := []int{1 << 20, 2 << 20}
	var opts []sim.Options
	for _, llc := range llcs {
		for _, pf := range pfs {
			o := sim.DefaultST()
			o.Refs = refs
			o.L2 = pf
			o.LLCBytes = llc
			opts = append(opts, o)
		}
	}
	return opts
}

// benchCampaign measures the batched-vs-serial campaign delta: the same
// config roster over the same tpcc trace, once through sim.RunBatch (one
// trace walk feeds every machine) and once config-at-a-time. The trace is
// materialized before timing so neither leg pays generation cost.
func benchCampaign(refs int, stdout io.Writer) (*BenchCampaign, error) {
	w, ok := trace.ByName("tpcc")
	if !ok {
		return nil, fmt.Errorf("bench: unknown workload %q", "tpcc")
	}
	ws := []trace.Workload{w}
	opts := benchCampaignRoster(refs)
	// Warm the shared recording so the first leg measured does not also pay
	// the one-time trace generation the second leg would then skip.
	sim.Run(ws, opts[0])

	total := float64(refs * len(opts))
	bestBatch, bestSerial := int64(1<<63-1), int64(1<<63-1)
	for rep := 0; rep < benchRepeats; rep++ {
		// Collect before each leg so neither schedule is billed for the
		// other's garbage — the series measures scheduling, not GC cross-talk.
		runtime.GC()
		start := time.Now()
		sim.RunBatch(ws, opts)
		if ns := time.Since(start).Nanoseconds(); ns < bestBatch {
			bestBatch = ns
		}
		runtime.GC()
		start = time.Now()
		for _, o := range opts {
			sim.Run(ws, o)
		}
		if ns := time.Since(start).Nanoseconds(); ns < bestSerial {
			bestSerial = ns
		}
	}
	c := &BenchCampaign{
		Workload:       "tpcc",
		Configs:        len(opts),
		RefsPerConfig:  refs,
		NsPerRefBatch:  float64(bestBatch) / total,
		NsPerRefSerial: float64(bestSerial) / total,
	}
	if bestSerial > 0 {
		c.BatchSpeedupPct = 100 * float64(bestSerial-bestBatch) / float64(bestSerial)
	}
	fmt.Fprintf(stdout, "%-22s %8d refs x%d  batch %7.1f ns/ref  serial %7.1f ns/ref  %+.1f%%\n",
		"campaign-tpcc", refs, len(opts), c.NsPerRefBatch, c.NsPerRefSerial, c.BatchSpeedupPct)
	return c, nil
}

// runBench measures the plan and writes the trajectory point to path (or
// BENCH_<date>.json when empty). It returns the path written.
func runBench(refs int, path string, stdout io.Writer) (string, error) {
	if refs <= 0 {
		refs = 20_000
	}
	now := time.Now().UTC()
	file := BenchFile{
		Schema:     benchSchema,
		Date:       now.Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Repeats:    benchRepeats,
	}

	for _, c := range benchPlan() {
		ws := make([]trace.Workload, len(c.ws))
		names := ""
		for i, n := range c.ws {
			w, ok := trace.ByName(n)
			if !ok {
				return "", fmt.Errorf("bench: unknown workload %q", n)
			}
			ws[i] = w
			if i > 0 {
				names += ","
			}
			names += n
		}
		opt := sim.DefaultST()
		if c.mp {
			opt = sim.DefaultMP()
		}
		opt.Refs = refs
		opt.L2 = c.pf

		total := float64(refs * len(ws))
		best := BenchConfig{
			Name:       c.name,
			Workloads:  names,
			Prefetcher: string(c.pf),
			Cores:      len(ws),
			Refs:       refs,
			WallNs:     1<<63 - 1,
		}
		for rep := 0; rep < benchRepeats; rep++ {
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			sim.Run(ws, opt)
			wall := time.Since(start)
			runtime.ReadMemStats(&m1)
			if ns := wall.Nanoseconds(); ns < best.WallNs {
				best.WallNs = ns
				best.RefsPerSec = total / wall.Seconds()
				best.NsPerRef = float64(ns) / total
				best.AllocsPerRef = float64(m1.Mallocs-m0.Mallocs) / total
				best.BytesPerRef = float64(m1.TotalAlloc-m0.TotalAlloc) / total
			}
		}
		file.Configs = append(file.Configs, best)
		fmt.Fprintf(stdout, "%-22s %8d refs x%d  %10.0f refs/s  %7.1f ns/ref  %6.2f allocs/ref\n",
			c.name, refs, len(ws), best.RefsPerSec, best.NsPerRef, best.AllocsPerRef)
	}

	campaign, err := benchCampaign(refs, stdout)
	if err != nil {
		return "", err
	}
	file.Campaign = campaign

	if path == "" {
		path = "BENCH_" + now.Format("2006-01-02") + ".json"
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return "", err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return path, nil
}
