package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
	"dspatch/internal/sweep"
)

// runStats simulates one workload with per-prefetcher telemetry enabled and
// renders the collected stats. The run goes through the shared experiment
// engine with the same point vocabulary campaigns and the daemon use, so the
// numbers printed here are exactly what a campaign point record or
// GET /v1/jobs/{id}?stats=1 reports for this configuration.
func runStats(workload, l2 string, refs int, seed int64, parallel int, asJSON bool, stdout io.Writer) error {
	p := sweep.Point{
		Workloads:    []string{workload},
		Refs:         refs,
		Seed:         seed,
		L2:           l2,
		CollectStats: true,
	}
	if err := p.Normalize(); err != nil {
		return fmt.Errorf("stats: %v", err)
	}
	results, err := experiments.RunJobs(context.Background(), []experiments.Job{p.Job()}, parallel)
	if err != nil {
		return err
	}
	res := results[0]
	if asJSON {
		out := struct {
			Point       sweep.Point           `json:"point"`
			IPC         []float64             `json:"ipc"`
			Prefetchers []sim.PrefetcherStats `json:"prefetchers"`
		}{Point: p, IPC: res.IPC, Prefetchers: res.Prefetchers}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(stdout, "workload %s  l2 %s  refs %d  seed %d  IPC %.4f\n",
		p.Workloads[0], p.L2, p.Refs, p.Seed, res.IPC[0])
	formatPrefStats(stdout, res.Prefetchers)
	return nil
}

// formatPrefStats renders per-prefetcher telemetry as aligned tables: one
// section per model, flat counters first, then each histogram with its
// bucket labels.
func formatPrefStats(w io.Writer, stats []sim.PrefetcherStats) {
	for _, st := range stats {
		fmt.Fprintf(w, "\n%s\n", st.Name)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		names := make([]string, 0, len(st.Counters))
		for n := range st.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(tw, "  %s\t%d\n", n, st.Counters[n])
		}
		tw.Flush()
		hists := make([]string, 0, len(st.Histograms))
		for n := range st.Histograms {
			hists = append(hists, n)
		}
		sort.Strings(hists)
		for _, n := range hists {
			h := st.Histograms[n]
			fmt.Fprintf(w, "  %s (total %d)\n", n, h.Total())
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			for i, b := range h.Buckets {
				fmt.Fprintf(tw, "    %s\t%d\n", b, h.Counts[i])
			}
			tw.Flush()
		}
	}
}
