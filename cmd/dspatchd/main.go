// Command dspatchd serves the DSPatch experiment engine as a long-running
// simulation-as-a-service daemon (see internal/service for the API).
//
// Usage:
//
//	dspatchd                                   # listen on :8491
//	dspatchd -addr 127.0.0.1:9000 -cache-dir ~/.cache/dspatchd
//	dspatchd -job-workers 4 -sim-workers 2 -queue 128
//	dspatchd -drain-timeout 60s                # SIGTERM grace period
//	dspatchd -scenario specs.json              # extend the workload roster at startup
//
// Fleet mode (see the README's Fleet section):
//
//	dspatchd -coordinator -workers http://w1:8491,http://w2:8491 \
//	         -store-dir /shared/results -lease-ttl 60s -max-attempts 4
//	dspatchd -coordinator -workers-file /etc/dspatch/workers.txt  # dynamic roster
//
// A coordinator executes campaigns across the worker daemons: points are
// dispatched under leases, failures re-dispatch elsewhere with backoff, and
// the NDJSON stream stays byte-identical to a single-node run. The
// -chaos-file flag arms a deterministic fault-injection schedule on a
// worker (test/CI tooling, never production).
//
// Durability and self-protection (see the README's Durability section):
//
//	dspatchd -store-dir /var/lib/dspatchd            # crash-recoverable campaigns
//	dspatchd -store-dir /var/lib/dspatchd -store pack
//	dspatchd -quota-rate 2 -quota-burst 10 -campaign-high 16
//
// With -store-dir every campaign appends terminal point events to a
// write-ahead journal; a crashed or restarted daemon resumes unsealed
// campaigns under their original job IDs, re-running only unfinished
// points while the NDJSON stream stays byte-identical.
//
// The daemon drains gracefully on SIGINT/SIGTERM: intake stops, running
// jobs get -drain-timeout to finish (then are canceled), and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dspatch/internal/service"
	"dspatch/internal/service/chaos"
	"dspatch/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(appMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is main with its dependencies injected, so tests can drive the
// daemon end to end. It blocks until ctx is canceled (graceful drain, exit
// 0) or startup fails.
func appMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspatchd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8491", "listen address")
	jobWorkers := fs.Int("job-workers", 0, "concurrent job workers / queue shards (0 = default 2)")
	simWorkers := fs.Int("sim-workers", 0, "simulation goroutines per job (0 = GOMAXPROCS/job-workers)")
	queue := fs.Int("queue", 0, "queued jobs per worker shard before 503 (0 = default 64)")
	maxJobs := fs.Int("max-jobs", 0, "retained job records before eviction (0 = default 4096)")
	cacheDir := fs.String("cache-dir", "", "persistent run-cache directory shared with dspatchsim")
	noCache := fs.Bool("no-cache", false, "ignore -cache-dir (force every simulation to run)")
	batch := fs.Bool("batch", true, "advance same-trace configs in lockstep over one trace walk")
	drain := fs.Duration("drain-timeout", 30*time.Second, "how long running jobs may finish after SIGTERM")
	maxWait := fs.Duration("max-wait", 30*time.Second, "cap on ?wait= long-polls and campaign follow streams")
	maxCampStreams := fs.Int("max-campaign-streams", 0, "finished campaigns keeping their full NDJSON stream in memory (0 = default 64)")
	coordinator := fs.Bool("coordinator", false, "execute campaigns across -workers daemons instead of the local engine")
	workers := fs.String("workers", "", "comma-separated worker daemon URLs (requires -coordinator)")
	workersFile := fs.String("workers-file", "", "worker roster file, one URL per line, reloaded periodically (requires -coordinator; joins admit via /readyz)")
	workersReload := fs.Duration("workers-reload", 0, "roster reload period for -workers-file (0 = default 5s)")
	storeDir := fs.String("store-dir", "", "durable result store + campaign journal directory (crash resume; fleet dedup)")
	storeBackend := fs.String("store", "", "result store backend under -store-dir: dir (default) or pack")
	leaseTTL := fs.Duration("lease-ttl", 0, "dispatch lease before a worker is presumed hung (0 = default 60s)")
	maxAttempts := fs.Int("max-attempts", 0, "dispatches per point before it is dropped with a reason (0 = default 4)")
	quotaRate := fs.Float64("quota-rate", 0, "per-client submission tokens per second (0 = quotas off; keyed by X-Dspatch-Client)")
	quotaBurst := fs.Int("quota-burst", 0, "per-client token-bucket capacity (0 = default 8; requires -quota-rate)")
	campHigh := fs.Int("campaign-high", 0, "active-campaign count that sheds new campaigns with 503 (0 = off)")
	campLow := fs.Int("campaign-low", 0, "active-campaign count that re-opens admission after a shed (0 = default campaign-high/2)")
	chaosFile := fs.String("chaos-file", "", "fault-injection schedule JSON (test tooling; see internal/service/chaos)")
	chaosWorker := fs.String("chaos-worker", "", "label matching this daemon in the -chaos-file schedule")
	scenario := fs.String("scenario", "", "register scenario spec file(s) at startup (JSON object or array; comma-separated paths)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	fail := func(msg string) int {
		fmt.Fprintln(stderr, "dspatchd:", msg)
		return 2
	}
	switch {
	case *addr == "":
		return fail("-addr must not be empty")
	case *jobWorkers < 0:
		return fail(fmt.Sprintf("-job-workers must be non-negative, got %d", *jobWorkers))
	case *simWorkers < 0:
		return fail(fmt.Sprintf("-sim-workers must be non-negative, got %d", *simWorkers))
	case *queue < 0:
		return fail(fmt.Sprintf("-queue must be non-negative, got %d", *queue))
	case *maxJobs < 0:
		return fail(fmt.Sprintf("-max-jobs must be non-negative, got %d", *maxJobs))
	case *drain <= 0:
		return fail(fmt.Sprintf("-drain-timeout must be positive, got %s", *drain))
	case *maxWait <= 0:
		return fail(fmt.Sprintf("-max-wait must be positive, got %s", *maxWait))
	case *maxCampStreams < 0:
		return fail(fmt.Sprintf("-max-campaign-streams must be non-negative, got %d", *maxCampStreams))
	case *noCache && *cacheDir == "":
		return fail("-no-cache without -cache-dir has nothing to disable")
	case *coordinator && *workers == "" && *workersFile == "":
		return fail("-coordinator requires -workers or -workers-file")
	case *workers != "" && *workersFile != "":
		return fail("-workers and -workers-file are mutually exclusive")
	case !*coordinator && *workers != "":
		return fail("-workers requires -coordinator")
	case !*coordinator && *workersFile != "":
		return fail("-workers-file requires -coordinator")
	case !*coordinator && *workersReload != 0:
		return fail("-workers-reload requires -coordinator")
	case *workersReload < 0:
		return fail(fmt.Sprintf("-workers-reload must be non-negative, got %s", *workersReload))
	case *storeBackend != "" && *storeBackend != "dir" && *storeBackend != "pack":
		return fail(fmt.Sprintf("-store must be dir or pack, got %q", *storeBackend))
	case *storeBackend != "" && *storeDir == "":
		return fail("-store requires -store-dir")
	case !*coordinator && (*leaseTTL != 0 || *maxAttempts != 0):
		return fail("-lease-ttl/-max-attempts require -coordinator")
	case *leaseTTL < 0:
		return fail(fmt.Sprintf("-lease-ttl must be non-negative, got %s", *leaseTTL))
	case *maxAttempts < 0:
		return fail(fmt.Sprintf("-max-attempts must be non-negative, got %d", *maxAttempts))
	case *quotaRate < 0:
		return fail(fmt.Sprintf("-quota-rate must be non-negative, got %g", *quotaRate))
	case *quotaBurst < 0:
		return fail(fmt.Sprintf("-quota-burst must be non-negative, got %d", *quotaBurst))
	case *quotaBurst > 0 && *quotaRate == 0:
		return fail("-quota-burst requires -quota-rate")
	case *campHigh < 0:
		return fail(fmt.Sprintf("-campaign-high must be non-negative, got %d", *campHigh))
	case *campLow < 0:
		return fail(fmt.Sprintf("-campaign-low must be non-negative, got %d", *campLow))
	case *campLow > 0 && *campHigh == 0:
		return fail("-campaign-low requires -campaign-high")
	case *campHigh > 0 && *campLow >= *campHigh:
		return fail(fmt.Sprintf("-campaign-low (%d) must be below -campaign-high (%d)", *campLow, *campHigh))
	case *chaosWorker != "" && *chaosFile == "":
		return fail("-chaos-worker requires -chaos-file")
	}
	activeCacheDir := *cacheDir
	if *noCache {
		activeCacheDir = ""
		fmt.Fprintln(stderr, "note: persistent run cache disabled by -no-cache")
	}

	// Startup scenario registration: names become part of this daemon's
	// roster before any request (or journal resume) resolves them. Campaigns
	// can also carry their own inline "scenarios" block; this flag is for
	// long-lived rosters shared across campaigns.
	if *scenario != "" {
		for _, path := range strings.Split(*scenario, ",") {
			if path = strings.TrimSpace(path); path == "" {
				continue
			}
			ws, err := trace.RegisterSpecFile(path)
			if err != nil {
				return fail(err.Error())
			}
			for _, w := range ws {
				fmt.Fprintf(stdout, "registered scenario %q (%s, %s)\n", w.Name, w.Category, w.Source)
			}
		}
	}

	var fleet *service.FleetConfig
	if *coordinator {
		var urls []string
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		if len(urls) == 0 && *workersFile == "" {
			return fail("-workers has no usable URLs")
		}
		fleet = &service.FleetConfig{
			Workers:       urls,
			WorkersFile:   *workersFile,
			WorkersReload: *workersReload,
			StoreDir:      *storeDir,
			LeaseTTL:      *leaseTTL,
			MaxAttempts:   *maxAttempts,
		}
	}

	var middleware func(http.Handler) http.Handler
	crashAfterPoints := 0
	if *chaosFile != "" {
		sched, err := chaos.Load(*chaosFile)
		if err != nil {
			return fail(err.Error())
		}
		label := *chaosWorker
		fmt.Fprintf(stderr, "warning: chaos fault injection armed (%d faults, worker label %q)\n",
			len(sched.Faults), label)
		middleware = func(next http.Handler) http.Handler {
			return chaos.NewInjector(sched, label, next)
		}
		// Point-triggered crashes fire inside the daemon, not the HTTP layer.
		crashAfterPoints = sched.PointCrash(label)
	}

	cfg := service.Config{
		Addr:               *addr,
		JobWorkers:         *jobWorkers,
		SimWorkers:         *simWorkers,
		QueueDepth:         *queue,
		MaxJobs:            *maxJobs,
		CacheDir:           activeCacheDir,
		DisableBatch:       !*batch,
		DrainTimeout:       *drain,
		MaxWait:            *maxWait,
		MaxCampaignStreams: *maxCampStreams,
		StoreDir:           *storeDir,
		StoreBackend:       *storeBackend,
		QuotaRate:          *quotaRate,
		QuotaBurst:         *quotaBurst,
		CampaignHighWater:  *campHigh,
		CampaignLowWater:   *campLow,
		CrashAfterPoints:   crashAfterPoints,
		Fleet:              fleet,
		Middleware:         middleware,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stdout, format+"\n", a...)
		},
	}
	if err := service.ListenAndServe(ctx, cfg); err != nil {
		fmt.Fprintln(stderr, "dspatchd:", err)
		return 1
	}
	return 0
}
