// Command dspatchd serves the DSPatch experiment engine as a long-running
// simulation-as-a-service daemon (see internal/service for the API).
//
// Usage:
//
//	dspatchd                                   # listen on :8491
//	dspatchd -addr 127.0.0.1:9000 -cache-dir ~/.cache/dspatchd
//	dspatchd -job-workers 4 -sim-workers 2 -queue 128
//	dspatchd -drain-timeout 60s                # SIGTERM grace period
//
// Fleet mode (see the README's Fleet section):
//
//	dspatchd -coordinator -workers http://w1:8491,http://w2:8491 \
//	         -store-dir /shared/results -lease-ttl 60s -max-attempts 4
//
// A coordinator executes campaigns across the worker daemons: points are
// dispatched under leases, failures re-dispatch elsewhere with backoff, and
// the NDJSON stream stays byte-identical to a single-node run. The
// -chaos-file flag arms a deterministic fault-injection schedule on a
// worker (test/CI tooling, never production).
//
// The daemon drains gracefully on SIGINT/SIGTERM: intake stops, running
// jobs get -drain-timeout to finish (then are canceled), and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dspatch/internal/service"
	"dspatch/internal/service/chaos"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(appMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is main with its dependencies injected, so tests can drive the
// daemon end to end. It blocks until ctx is canceled (graceful drain, exit
// 0) or startup fails.
func appMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspatchd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8491", "listen address")
	jobWorkers := fs.Int("job-workers", 0, "concurrent job workers / queue shards (0 = default 2)")
	simWorkers := fs.Int("sim-workers", 0, "simulation goroutines per job (0 = GOMAXPROCS/job-workers)")
	queue := fs.Int("queue", 0, "queued jobs per worker shard before 503 (0 = default 64)")
	maxJobs := fs.Int("max-jobs", 0, "retained job records before eviction (0 = default 4096)")
	cacheDir := fs.String("cache-dir", "", "persistent run-cache directory shared with dspatchsim")
	noCache := fs.Bool("no-cache", false, "ignore -cache-dir (force every simulation to run)")
	batch := fs.Bool("batch", true, "advance same-trace configs in lockstep over one trace walk")
	drain := fs.Duration("drain-timeout", 30*time.Second, "how long running jobs may finish after SIGTERM")
	maxWait := fs.Duration("max-wait", 30*time.Second, "cap on ?wait= long-polls and campaign follow streams")
	maxCampStreams := fs.Int("max-campaign-streams", 0, "finished campaigns keeping their full NDJSON stream in memory (0 = default 64)")
	coordinator := fs.Bool("coordinator", false, "execute campaigns across -workers daemons instead of the local engine")
	workers := fs.String("workers", "", "comma-separated worker daemon URLs (requires -coordinator)")
	storeDir := fs.String("store-dir", "", "shared result store directory for fleet dedup (requires -coordinator)")
	leaseTTL := fs.Duration("lease-ttl", 0, "dispatch lease before a worker is presumed hung (0 = default 60s)")
	maxAttempts := fs.Int("max-attempts", 0, "dispatches per point before it is dropped with a reason (0 = default 4)")
	chaosFile := fs.String("chaos-file", "", "fault-injection schedule JSON (test tooling; see internal/service/chaos)")
	chaosWorker := fs.String("chaos-worker", "", "label matching this daemon in the -chaos-file schedule")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	fail := func(msg string) int {
		fmt.Fprintln(stderr, "dspatchd:", msg)
		return 2
	}
	switch {
	case *addr == "":
		return fail("-addr must not be empty")
	case *jobWorkers < 0:
		return fail(fmt.Sprintf("-job-workers must be non-negative, got %d", *jobWorkers))
	case *simWorkers < 0:
		return fail(fmt.Sprintf("-sim-workers must be non-negative, got %d", *simWorkers))
	case *queue < 0:
		return fail(fmt.Sprintf("-queue must be non-negative, got %d", *queue))
	case *maxJobs < 0:
		return fail(fmt.Sprintf("-max-jobs must be non-negative, got %d", *maxJobs))
	case *drain <= 0:
		return fail(fmt.Sprintf("-drain-timeout must be positive, got %s", *drain))
	case *maxWait <= 0:
		return fail(fmt.Sprintf("-max-wait must be positive, got %s", *maxWait))
	case *maxCampStreams < 0:
		return fail(fmt.Sprintf("-max-campaign-streams must be non-negative, got %d", *maxCampStreams))
	case *noCache && *cacheDir == "":
		return fail("-no-cache without -cache-dir has nothing to disable")
	case *coordinator && *workers == "":
		return fail("-coordinator requires -workers")
	case !*coordinator && *workers != "":
		return fail("-workers requires -coordinator")
	case !*coordinator && *storeDir != "":
		return fail("-store-dir requires -coordinator")
	case !*coordinator && (*leaseTTL != 0 || *maxAttempts != 0):
		return fail("-lease-ttl/-max-attempts require -coordinator")
	case *leaseTTL < 0:
		return fail(fmt.Sprintf("-lease-ttl must be non-negative, got %s", *leaseTTL))
	case *maxAttempts < 0:
		return fail(fmt.Sprintf("-max-attempts must be non-negative, got %d", *maxAttempts))
	case *chaosWorker != "" && *chaosFile == "":
		return fail("-chaos-worker requires -chaos-file")
	}
	activeCacheDir := *cacheDir
	if *noCache {
		activeCacheDir = ""
		fmt.Fprintln(stderr, "note: persistent run cache disabled by -no-cache")
	}

	var fleet *service.FleetConfig
	if *coordinator {
		var urls []string
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, strings.TrimRight(u, "/"))
			}
		}
		if len(urls) == 0 {
			return fail("-workers has no usable URLs")
		}
		fleet = &service.FleetConfig{
			Workers:     urls,
			StoreDir:    *storeDir,
			LeaseTTL:    *leaseTTL,
			MaxAttempts: *maxAttempts,
		}
	}

	var middleware func(http.Handler) http.Handler
	if *chaosFile != "" {
		sched, err := chaos.Load(*chaosFile)
		if err != nil {
			return fail(err.Error())
		}
		label := *chaosWorker
		fmt.Fprintf(stderr, "warning: chaos fault injection armed (%d faults, worker label %q)\n",
			len(sched.Faults), label)
		middleware = func(next http.Handler) http.Handler {
			return chaos.NewInjector(sched, label, next)
		}
	}

	cfg := service.Config{
		Addr:               *addr,
		JobWorkers:         *jobWorkers,
		SimWorkers:         *simWorkers,
		QueueDepth:         *queue,
		MaxJobs:            *maxJobs,
		CacheDir:           activeCacheDir,
		DisableBatch:       !*batch,
		DrainTimeout:       *drain,
		MaxWait:            *maxWait,
		MaxCampaignStreams: *maxCampStreams,
		Fleet:              fleet,
		Middleware:         middleware,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stdout, format+"\n", a...)
		},
	}
	if err := service.ListenAndServe(ctx, cfg); err != nil {
		fmt.Fprintln(stderr, "dspatchd:", err)
		return 1
	}
	return 0
}
