// Command dspatchd serves the DSPatch experiment engine as a long-running
// simulation-as-a-service daemon (see internal/service for the API).
//
// Usage:
//
//	dspatchd                                   # listen on :8491
//	dspatchd -addr 127.0.0.1:9000 -cache-dir ~/.cache/dspatchd
//	dspatchd -job-workers 4 -sim-workers 2 -queue 128
//	dspatchd -drain-timeout 60s                # SIGTERM grace period
//
// The daemon drains gracefully on SIGINT/SIGTERM: intake stops, running
// jobs get -drain-timeout to finish (then are canceled), and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dspatch/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(appMain(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is main with its dependencies injected, so tests can drive the
// daemon end to end. It blocks until ctx is canceled (graceful drain, exit
// 0) or startup fails.
func appMain(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspatchd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8491", "listen address")
	jobWorkers := fs.Int("job-workers", 0, "concurrent job workers / queue shards (0 = default 2)")
	simWorkers := fs.Int("sim-workers", 0, "simulation goroutines per job (0 = GOMAXPROCS/job-workers)")
	queue := fs.Int("queue", 0, "queued jobs per worker shard before 503 (0 = default 64)")
	maxJobs := fs.Int("max-jobs", 0, "retained job records before eviction (0 = default 4096)")
	cacheDir := fs.String("cache-dir", "", "persistent run-cache directory shared with dspatchsim")
	noCache := fs.Bool("no-cache", false, "ignore -cache-dir (force every simulation to run)")
	batch := fs.Bool("batch", true, "advance same-trace configs in lockstep over one trace walk")
	drain := fs.Duration("drain-timeout", 30*time.Second, "how long running jobs may finish after SIGTERM")
	maxWait := fs.Duration("max-wait", 30*time.Second, "cap on ?wait= long-polls and campaign follow streams")
	maxCampStreams := fs.Int("max-campaign-streams", 0, "finished campaigns keeping their full NDJSON stream in memory (0 = default 64)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	fail := func(msg string) int {
		fmt.Fprintln(stderr, "dspatchd:", msg)
		return 2
	}
	switch {
	case *addr == "":
		return fail("-addr must not be empty")
	case *jobWorkers < 0:
		return fail(fmt.Sprintf("-job-workers must be non-negative, got %d", *jobWorkers))
	case *simWorkers < 0:
		return fail(fmt.Sprintf("-sim-workers must be non-negative, got %d", *simWorkers))
	case *queue < 0:
		return fail(fmt.Sprintf("-queue must be non-negative, got %d", *queue))
	case *maxJobs < 0:
		return fail(fmt.Sprintf("-max-jobs must be non-negative, got %d", *maxJobs))
	case *drain <= 0:
		return fail(fmt.Sprintf("-drain-timeout must be positive, got %s", *drain))
	case *maxWait <= 0:
		return fail(fmt.Sprintf("-max-wait must be positive, got %s", *maxWait))
	case *maxCampStreams < 0:
		return fail(fmt.Sprintf("-max-campaign-streams must be non-negative, got %d", *maxCampStreams))
	case *noCache && *cacheDir == "":
		return fail("-no-cache without -cache-dir has nothing to disable")
	}
	activeCacheDir := *cacheDir
	if *noCache {
		activeCacheDir = ""
		fmt.Fprintln(stderr, "note: persistent run cache disabled by -no-cache")
	}

	cfg := service.Config{
		Addr:               *addr,
		JobWorkers:         *jobWorkers,
		SimWorkers:         *simWorkers,
		QueueDepth:         *queue,
		MaxJobs:            *maxJobs,
		CacheDir:           activeCacheDir,
		DisableBatch:       !*batch,
		DrainTimeout:       *drain,
		MaxWait:            *maxWait,
		MaxCampaignStreams: *maxCampStreams,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stdout, format+"\n", a...)
		},
	}
	if err := service.ListenAndServe(ctx, cfg); err != nil {
		fmt.Fprintln(stderr, "dspatchd:", err)
		return 1
	}
	return 0
}
