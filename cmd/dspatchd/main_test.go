package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBadFlagsExitNonZero is the flag-validation audit: every invalid flag
// combination must exit 2 with a message on stderr — never a panic, never a
// silent success.
func TestBadFlagsExitNonZero(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // stderr substring
	}{
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
		{"empty addr", []string{"-addr", ""}, "-addr"},
		{"negative job workers", []string{"-job-workers", "-1"}, "-job-workers"},
		{"negative sim workers", []string{"-sim-workers", "-2"}, "-sim-workers"},
		{"negative queue", []string{"-queue", "-3"}, "-queue"},
		{"negative max jobs", []string{"-max-jobs", "-4"}, "-max-jobs"},
		{"zero drain timeout", []string{"-drain-timeout", "0s"}, "-drain-timeout"},
		{"negative drain timeout", []string{"-drain-timeout", "-5s"}, "-drain-timeout"},
		{"malformed drain timeout", []string{"-drain-timeout", "soon"}, "invalid value"},
		{"zero max wait", []string{"-max-wait", "0s"}, "-max-wait"},
		{"negative max wait", []string{"-max-wait", "-10s"}, "-max-wait"},
		{"negative campaign streams", []string{"-max-campaign-streams", "-1"}, "-max-campaign-streams"},
		{"no-cache without cache-dir", []string{"-no-cache"}, "-no-cache"},
		{"coordinator without workers", []string{"-coordinator"}, "-coordinator requires -workers"},
		{"workers without coordinator", []string{"-workers", "http://w1:8491"}, "-workers requires -coordinator"},
		{"workers-file without coordinator", []string{"-workers-file", "/tmp/workers.txt"}, "-workers-file requires -coordinator"},
		{"workers and workers-file", []string{"-coordinator", "-workers", "http://w1", "-workers-file", "/tmp/w.txt"}, "mutually exclusive"},
		{"workers-reload without coordinator", []string{"-workers-reload", "10s"}, "-workers-reload requires -coordinator"},
		{"negative workers-reload", []string{"-coordinator", "-workers-file", "/tmp/w.txt", "-workers-reload", "-1s"}, "-workers-reload"},
		{"unknown store backend", []string{"-store-dir", "/tmp/results", "-store", "sqlite"}, "-store must be dir or pack"},
		{"store without store-dir", []string{"-store", "pack"}, "-store requires -store-dir"},
		{"negative quota-rate", []string{"-quota-rate", "-1"}, "-quota-rate"},
		{"negative quota-burst", []string{"-quota-burst", "-1"}, "-quota-burst"},
		{"quota-burst without quota-rate", []string{"-quota-burst", "5"}, "-quota-burst requires -quota-rate"},
		{"negative campaign-high", []string{"-campaign-high", "-1"}, "-campaign-high"},
		{"negative campaign-low", []string{"-campaign-low", "-1"}, "-campaign-low"},
		{"campaign-low without campaign-high", []string{"-campaign-low", "2"}, "-campaign-low requires -campaign-high"},
		{"campaign-low above high", []string{"-campaign-high", "2", "-campaign-low", "3"}, "below -campaign-high"},
		{"lease-ttl without coordinator", []string{"-lease-ttl", "10s"}, "require -coordinator"},
		{"max-attempts without coordinator", []string{"-max-attempts", "2"}, "require -coordinator"},
		{"negative lease-ttl", []string{"-coordinator", "-workers", "http://w1", "-lease-ttl", "-1s"}, "-lease-ttl"},
		{"negative max-attempts", []string{"-coordinator", "-workers", "http://w1", "-max-attempts", "-1"}, "-max-attempts"},
		{"workers all blank", []string{"-coordinator", "-workers", " , ,"}, "no usable URLs"},
		{"chaos-worker without chaos-file", []string{"-chaos-worker", "w0"}, "-chaos-worker requires -chaos-file"},
		{"missing chaos file", []string{"-chaos-file", "/nonexistent/chaos.json"}, "chaos"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := appMain(context.Background(), tc.args, &out, &errb)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Errorf("stderr %q missing %q", errb.String(), tc.want)
			}
		})
	}
}

// TestChaosFileArming covers the -chaos-file paths the flag audit can't:
// a schedule that parses but fails validation exits 2, and a valid schedule
// arms with a loud warning on stderr.
func TestChaosFileArming(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"faults":[{"kind":"meteor","at":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := appMain(context.Background(), []string{"-chaos-file", bad}, &out, &errb); code != 2 {
		t.Fatalf("bad schedule exit = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown kind") {
		t.Errorf("stderr %q missing validation error", errb.String())
	}

	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"faults":[{"worker":"w1","kind":"kill","at":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // boot, arm, drain immediately
	out.Reset()
	errb.Reset()
	code := appMain(ctx, []string{"-addr", "127.0.0.1:0", "-chaos-file", good, "-chaos-worker", "w1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("armed daemon exit = %d, want 0 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "chaos fault injection armed") {
		t.Errorf("stderr %q missing arming warning", errb.String())
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := appMain(context.Background(), []string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exit = %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-drain-timeout") {
		t.Errorf("usage text missing flags:\n%s", errb.String())
	}
}

func TestListenFailureExitsOne(t *testing.T) {
	var out, errb bytes.Buffer
	code := appMain(context.Background(), []string{"-addr", "256.0.0.1:99999"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if errb.Len() == 0 {
		t.Error("listen failure left stderr empty")
	}
}

// syncBuffer makes the stdout the daemon goroutine writes into safe to read
// from the test goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// TestServeSubmitAndGracefulShutdown boots the daemon on an ephemeral port,
// drives one experiment job over HTTP, then cancels the context (the SIGTERM
// path) and requires a clean exit 0.
func TestServeSubmitAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	var errb bytes.Buffer
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- appMain(ctx, []string{"-addr", "127.0.0.1:0", "-job-workers", "1", "-drain-timeout", "10s"}, &out, &errb)
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; stdout: %s stderr: %s", out.String(), errb.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("health = %q", health.Status)
	}

	resp, err = http.Post(base+"/v1/experiments/table1", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var jobView struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jobView); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || jobView.ID == "" {
		t.Fatalf("submit: status %d id %q", resp.StatusCode, jobView.ID)
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=20s", base, jobView.ID))
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	var done struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&done); err != nil {
		t.Fatalf("wait decode: %v", err)
	}
	resp.Body.Close()
	if done.Status != "done" || len(done.Result) == 0 {
		t.Fatalf("job = %+v", done)
	}

	cancel() // SIGTERM equivalent
	select {
	case code := <-codeCh:
		if code != 0 {
			t.Fatalf("graceful shutdown exit = %d, want 0 (stderr: %s)", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within the drain window")
	}
	if !strings.Contains(out.String(), "stopped") {
		t.Errorf("shutdown log missing: %s", out.String())
	}
}
