package dspatch

import "dspatch/internal/experiments"

// Experiment re-exports: one call per table/figure of the paper's
// evaluation. See the README's experiment index for the paper-versus-
// measured record and cmd/dspatchsim for a CLI over the same functions.
//
// Every Fig*/Table* call schedules its simulations on a shared concurrent
// engine: jobs fan out across Scale.Parallel worker goroutines (0 =
// GOMAXPROCS; use Scale.WithParallel to pin a width) and PFNone baselines
// are memoized process-wide, so results are bit-identical at any worker
// count and repeated figures never re-simulate a shared baseline.
type (
	// Scale bounds experiment cost (QuickScale vs FullScale).
	Scale = experiments.Scale
	// CategoryResult is the per-category layout of Figs. 4/12/14/17.
	CategoryResult = experiments.CategoryResult
	// ScalingResult is the bandwidth-sweep layout of Figs. 1/6/15.
	ScalingResult = experiments.ScalingResult
	// StorageRow is one line of the storage tables.
	StorageRow = experiments.StorageRow
	// HeadlineResult carries the abstract's summary numbers.
	HeadlineResult = experiments.HeadlineResult
)

// QuickScale is a laptop-sized sample (2 workloads per category, short
// traces); FullScale is the paper's full roster.
func QuickScale() Scale { return experiments.Quick() }

// FullScale runs all 75 workloads at paper-length traces.
func FullScale() Scale { return experiments.Full() }

// Table1 regenerates the DSPatch storage breakdown (paper Table 1).
func Table1() []StorageRow { return experiments.Table1() }

// Table3 regenerates the competitor storage budgets (paper Table 3).
func Table3() []StorageRow { return experiments.Table3() }

// Fig1 regenerates prefetcher scaling with DRAM bandwidth (paper Fig. 1).
func Fig1(s Scale) ScalingResult { return experiments.Fig1(s) }

// Fig4 regenerates the BOP/SMS/SPP category comparison (paper Fig. 4).
func Fig4(s Scale) CategoryResult { return experiments.Fig4(s) }

// Fig5 regenerates the SMS storage sweep (paper Fig. 5).
func Fig5(s Scale) []experiments.Fig5Row { return experiments.Fig5(s) }

// Fig6 regenerates bandwidth scaling incl. eSPP/eBOP (paper Fig. 6).
func Fig6(s Scale) ScalingResult { return experiments.Fig6(s) }

// Fig11a regenerates the delta-occurrence distribution (paper Fig. 11a).
func Fig11a(s Scale) experiments.Fig11aResult { return experiments.Fig11a(s) }

// Fig11b regenerates the compression-misprediction histogram (Fig. 11b).
func Fig11b(s Scale) [6]float64 { return experiments.Fig11b(s) }

// Fig12 regenerates the single-thread evaluation (paper Fig. 12).
func Fig12(s Scale) CategoryResult { return experiments.Fig12(s) }

// Fig13 regenerates the 42-workload memory-intensive line graph (Fig. 13).
func Fig13(s Scale) []experiments.Fig13Row { return experiments.Fig13(s) }

// Fig14 regenerates the adjunct-to-SPP comparison (paper Fig. 14).
func Fig14(s Scale) CategoryResult { return experiments.Fig14(s) }

// Fig15 regenerates DSPatch+SPP bandwidth scaling (paper Fig. 15).
func Fig15(s Scale) ScalingResult { return experiments.Fig15(s) }

// Fig16 regenerates the coverage/misprediction stacks (paper Fig. 16).
func Fig16(s Scale) []experiments.Fig16Row { return experiments.Fig16(s) }

// Fig17 regenerates the homogeneous multi-programmed runs (paper Fig. 17).
func Fig17(s Scale) CategoryResult { return experiments.Fig17(s) }

// Fig18 regenerates the MP bandwidth comparison (paper Fig. 18).
func Fig18(s Scale) []experiments.Fig18Row { return experiments.Fig18(s) }

// Fig19 regenerates the AccP-contribution ablation (paper Fig. 19).
func Fig19(s Scale) experiments.Fig19Result { return experiments.Fig19(s) }

// Fig20 regenerates the appendix pollution taxonomy (paper Fig. 20).
func Fig20(s Scale) []experiments.Fig20Row { return experiments.Fig20(s) }

// Headline regenerates the abstract's summary numbers.
func Headline(s Scale) HeadlineResult { return experiments.Headline(s) }
