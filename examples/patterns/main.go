// Patterns: the anatomy of DSPatch's anchored dual bit-patterns, retracing
// the paper's Fig. 2 (reordered streams collapse onto one anchored pattern)
// and Fig. 3/9 (OR-modulated CovP vs AND-modulated AccP).
//
// Run with: go run ./examples/patterns
package main

import (
	"fmt"

	"dspatch/internal/bitpattern"
)

func build(width int, offsets []int) bitpattern.Pattern {
	p := bitpattern.New(width)
	for _, o := range offsets {
		p = p.Set(o)
	}
	return p
}

func main() {
	// ---- Paper Fig. 2: four temporal orders, one anchored pattern. ----
	fmt.Println("Fig. 2 — reordering-immunity of anchored patterns")
	streams := [][]int{
		{1, 5, 4, 11, 12}, // stream B
		{1, 5, 11, 4, 12}, // stream C
		{1, 4, 5, 12, 11}, // stream D
		{1, 12, 11, 5, 4}, // stream E
	}
	for i, s := range streams {
		p := build(16, s)
		anchored := p.Anchor(s[0])
		fmt.Printf("  stream %c order %v -> pattern %s -> anchored %s\n",
			'B'+i, s, p, anchored)
	}
	fmt.Println("  (identical anchored patterns: one table entry serves all four)")

	// ---- Fig. 3/9: modulating CovP (OR) and AccP (AND). ----
	fmt.Println("\nFig. 3/9 — coverage-biased vs accuracy-biased modulation")
	generations := [][]int{
		{0, 2, 3, 8},
		{0, 2, 3, 9},
		{0, 2, 3, 8, 9},
	}
	covP := bitpattern.New(16)
	accP := bitpattern.New(16)
	for g, offs := range generations {
		prog := build(16, offs)
		accP = prog.And(covP) // AccP: replaced by program & stored CovP
		covP = covP.Or(prog)  // CovP: grown by OR
		fmt.Printf("  gen %d program %s\n        CovP %s  AccP %s\n",
			g+1, prog, covP, accP)
	}

	// ---- Fig. 8: quantified goodness. ----
	fmt.Println("\nFig. 8 — popcount-quantified accuracy and coverage")
	program := build(16, []int{0, 2, 3, 9, 10})
	m := bitpattern.Compare(covP, program)
	fmt.Printf("  predicted=%d real=%d accurate=%d -> accuracy %s, coverage %s\n",
		m.Pred, m.Real, m.Accurate, m.AccuracyQ(), m.CoverageQ())

	// ---- §3.8: 128B-granularity compression. ----
	fmt.Println("\n§3.8 — 128B-granularity compression")
	fine := build(16, []int{0, 1, 6, 7, 12})
	comp := fine.Compress()
	back := comp.Expand()
	fmt.Printf("  64B pattern  %s (16 bits)\n", fine)
	fmt.Printf("  128B pattern %s (8 bits, half the storage)\n", comp)
	fmt.Printf("  re-expanded  %s (over-predicts %d line)\n",
		back, back.AndNot(fine).PopCount())
}
