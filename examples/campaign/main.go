// Campaign: reproduce paper Fig. 4 as a declarative campaign spec instead
// of the hand-coded registry experiment, and prove the two byte-identical.
//
// The registry's Fig4 function sweeps BOP/SMS/SPP over the quick-scale
// workload roster on the single-thread machine. The same question phrased as
// a campaign is one JSON spec: a workloads axis and an l2 axis over the
// baseline machine. Both paths run on the process-shared experiment engine,
// so the campaign reuses every simulation the registry run just did — and
// the rendered table must match byte for byte.
//
// Run with: go run ./examples/campaign [-refs N]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
	"dspatch/internal/sweep"
)

func main() {
	refs := flag.Int("refs", 0, "override memory references per run (default: quick scale)")
	flag.Parse()

	s := experiments.Quick()
	if *refs > 0 {
		s.Refs = *refs
	}
	ws := s.Workloads()
	pfs := []sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP}

	// Fig. 4 as a campaign: the single-thread machine is the Point default,
	// so only refs/seed and the two swept axes need naming.
	mixes := make([]sweep.Mix, len(ws))
	for i, w := range ws {
		mixes[i] = sweep.Mix{w.Name}
	}
	l2 := []string{string(sim.PFNone)}
	for _, pf := range pfs {
		l2 = append(l2, string(pf))
	}
	spec := sweep.Campaign{
		Name: "fig4",
		Base: sweep.Point{Refs: s.Refs, Seed: s.Seed},
		Axes: sweep.Axes{Workloads: mixes, L2: l2},
	}
	if data, err := json.MarshalIndent(spec, "", "  "); err == nil {
		fmt.Printf("campaign spec:\n%s\n\n", data)
	}

	// Run the campaign, folding the point stream into the registry's
	// CategoryResult shape as records arrive.
	var recs []sweep.PointRecord
	eng := sweep.Engine{}
	sum, err := eng.Run(context.Background(), spec, func(line json.RawMessage) error {
		var rec sweep.PointRecord
		if json.Unmarshal(line, &rec) == nil && rec.Type == "point" && !rec.Baseline {
			recs = append(recs, rec)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
	fmt.Printf("campaign ran %d points (%d simulated, %d memo hits)\n\n",
		sum.Points, sum.Engine.Sims, sum.Engine.MemoHits)

	var campaignTable bytes.Buffer
	experiments.FormatCategory(&campaignTable,
		"Fig 4: BOP/SMS/SPP by category (1ch DDR4-2133)",
		sweep.CategoryResultFromPoints(ws, pfs, recs))

	// The reference: the registry experiment, exactly as
	// `dspatchsim -experiment fig4` renders it.
	var registryTable bytes.Buffer
	e, _ := experiments.ExperimentByID("fig4")
	e.Format(&registryTable, e.Run(s))

	fmt.Print(campaignTable.String())
	if campaignTable.String() == registryTable.String() {
		fmt.Println("campaign output is byte-identical to `dspatchsim -experiment fig4`")
		return
	}
	fmt.Println("MISMATCH: registry experiment rendered differently:")
	fmt.Print(registryTable.String())
	os.Exit(1)
}
