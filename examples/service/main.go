// Service: run the dspatchd daemon in-process, drive it with the Go client
// — submit a raw simulation and a paper figure, long-poll for results, read
// the cache counters — then shut it down gracefully.
//
// Run with: go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"dspatch"
)

func main() {
	const addr = "127.0.0.1:8491"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Serve blocks until the context is canceled, so it gets a goroutine.
	// In production you run `dspatchd` instead and skip this block.
	served := make(chan error, 1)
	go func() {
		served <- dspatch.Serve(ctx, dspatch.ServiceConfig{
			Addr:         addr,
			JobWorkers:   2,
			DrainTimeout: 10 * time.Second,
			Logf:         log.Printf,
		})
	}()

	c := dspatch.NewServiceClient("http://" + addr)
	waitUntilUp(ctx, c)

	// A raw run: mcf under DSPatch+SPP on the paper's single-thread machine.
	job, err := c.SubmitRun(ctx, dspatch.ServiceRunSpec{
		Workloads: []string{"mcf"},
		Refs:      20_000,
		L2:        "dspatch+spp",
	})
	if err != nil {
		log.Fatal(err)
	}
	job, err = c.Wait(ctx, job.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run %s: %s\n  result: %s\n", job.ID, job.Status, job.Result)

	// The same submission again: served from the engine's memo, no
	// simulation happens (watch dspatchd_engine_memo_hits_total on /metrics).
	again, err := c.SubmitRun(ctx, dspatch.ServiceRunSpec{
		Workloads: []string{"mcf"},
		Refs:      20_000,
		L2:        "dspatch+spp",
	})
	if err != nil {
		log.Fatal(err)
	}
	again, err = c.Wait(ctx, again.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmitted as %s: byte-identical result: %v\n",
		again.ID, string(again.Result) == string(job.Result))

	// The same machine with telemetry: collect_stats opts the run into
	// per-prefetcher internals, served only behind ?stats=1 (JobStats).
	statsJob, err := c.SubmitRun(ctx, dspatch.ServiceRunSpec{
		Workloads:    []string{"mcf"},
		Refs:         20_000,
		L2:           "dspatch+spp",
		CollectStats: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err = c.Wait(ctx, statsJob.ID); err != nil {
		log.Fatal(err)
	}
	statsJob, err = c.JobStats(ctx, statsJob.ID)
	if err != nil {
		log.Fatal(err)
	}
	pstats, err := statsJob.PrefetcherStats()
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range pstats {
		fmt.Printf("prefetcher %s: %d counters, %d histograms\n",
			st.Name, len(st.Counters), len(st.Histograms))
	}

	// A campaign over the client, decoded with the typed helpers instead of
	// raw NDJSON: mcf under two prefetchers against the none baseline.
	camp, err := c.SubmitCampaign(ctx, dspatch.CampaignSpec{
		Name: "demo",
		Base: dspatch.CampaignPoint{Refs: 10_000},
		Axes: dspatch.CampaignAxes{
			Workloads: []dspatch.CampaignMix{{"mcf"}},
			L2:        []string{"none", "spp", "dspatch+spp"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err = c.Wait(ctx, camp.ID); err != nil {
		log.Fatal(err)
	}
	points, summary, err := c.CampaignPoints(ctx, camp.ID, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range points {
		fmt.Printf("point %s: speedup %v\n", p.Point.L2, p.Speedup)
	}
	if summary != nil && summary.GeomeanSpeedupPct != nil {
		fmt.Printf("campaign geomean speedup: %.2f%%\n", *summary.GeomeanSpeedupPct)
	}

	// A paper figure at a tiny scale; Text carries the rendered table.
	fig, err := c.SubmitExperiment(ctx, "fig4", dspatch.ServiceScaleSpec{Refs: 2_000, PerCategory: 1})
	if err != nil {
		log.Fatal(err)
	}
	fig, err = c.Wait(ctx, fig.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment %s: %s\n%s", fig.ID, fig.Status, fig.Text)

	metrics, err := c.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "dspatchd_engine_") {
			fmt.Println(line)
		}
	}

	cancel() // the SIGTERM path: drain and exit
	if err := <-served; err != nil {
		log.Fatal(err)
	}
}

func waitUntilUp(ctx context.Context, c *dspatch.ServiceClient) {
	for i := 0; i < 100; i++ {
		if _, err := c.Health(ctx); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("daemon never came up")
}
