// Bandwidth: DSPatch's run-time selection between the coverage-biased and
// accuracy-biased patterns as the DRAM bandwidth-utilization signal changes
// (paper §3.6, Fig. 10) — the mechanism behind its bandwidth scaling.
//
// Run with: go run ./examples/bandwidth
package main

import (
	"fmt"

	"dspatch"
)

func main() {
	// Train one trigger PC on two alternating footprints: the union (what
	// CovP grows toward) is large; the stable core (what AccP keeps) is
	// small.
	train := func() *dspatch.DSPatch {
		pf := dspatch.NewDSPatch(dspatch.DefaultDSPatchConfig())
		low := dspatch.StaticBandwidth(dspatch.Q0)
		a := []int{0, 1, 2, 3, 8, 9}
		b := []int{0, 1, 2, 3, 16, 17}
		for page := dspatch.Page(0); page < 24; page++ {
			foot := a
			if page%2 == 1 {
				foot = b
			}
			for i, off := range foot {
				pc := dspatch.PC(0x5000)
				if i != 0 {
					pc = 0x5100
				}
				pf.Train(dspatch.PrefetchAccess{PC: pc, Line: page.Line(off)}, low, nil)
			}
		}
		pf.Flush(low)
		return pf
	}

	fmt.Println("DRAM bandwidth utilization -> DSPatch prediction behaviour")
	fmt.Println("(same trained state, same trigger; only the 2-bit signal differs)")
	for _, q := range []dspatch.Quartile{dspatch.Q0, dspatch.Q1, dspatch.Q2, dspatch.Q3} {
		pf := train()
		ctx := dspatch.StaticBandwidth(q)
		reqs := pf.Train(dspatch.PrefetchAccess{PC: 0x5000, Line: dspatch.Page(999).Line(0)}, ctx, nil)
		offs := make([]int, 0, len(reqs))
		lowPri := false
		for _, r := range reqs {
			offs = append(offs, r.Line.PageOffset())
			lowPri = lowPri || r.LowPriority
		}
		st := pf.Stats()
		kind := "CovP (coverage-biased)"
		switch {
		case st.PredictionsAccP > 0:
			kind = "AccP (accuracy-biased)"
		case len(reqs) == 0 && st.PredictionsNone > 0:
			kind = "throttled (no prefetch)"
		}
		fmt.Printf("  util %-7s -> %-24s %2d prefetches %v lowPri=%v\n",
			q, kind, len(reqs), offs, lowPri)
	}

	fmt.Println("\nWith free bandwidth DSPatch floods the whole union for coverage;")
	fmt.Println("as utilization climbs it narrows to the accurate core, and at peak")
	fmt.Println("it only prefetches what the accuracy-biased pattern trusts.")
}
