// Quickstart: build a DSPatch prefetcher, teach it a recurring spatial
// footprint, and watch it predict the footprint on a fresh page.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"dspatch"
)

func main() {
	pf := dspatch.NewDSPatch(dspatch.DefaultDSPatchConfig())
	ctx := dspatch.StaticBandwidth(dspatch.Q0) // plenty of bandwidth headroom

	// A program keeps touching the same relative footprint — a header line
	// plus three payload runs — on page after page, always entering through
	// the same load instruction (trigger PC 0x401000).
	footprint := []int{4, 5, 10, 11, 20, 21}
	trigger := dspatch.PC(0x401000)
	body := dspatch.PC(0x401200)

	fmt.Println("training on 8 pages with footprint", footprint, "...")
	for page := dspatch.Page(100); page < 108; page++ {
		for i, off := range footprint {
			pc := body
			if i == 0 {
				pc = trigger
			}
			// DSPatch trains on L1 misses observed at the L2.
			pf.Train(dspatch.PrefetchAccess{PC: pc, Line: page.Line(off)}, ctx, nil)
		}
	}
	// Page generations are learned into the Signature Prediction Table when
	// they age out of the Page Buffer; Flush simulates that aging.
	pf.Flush(ctx)

	// A brand-new page is triggered by the same PC: DSPatch replays the
	// anchored pattern as prefetches.
	fresh := dspatch.Page(5000)
	reqs := pf.Train(dspatch.PrefetchAccess{PC: trigger, Line: fresh.Line(4)}, ctx, nil)

	fmt.Printf("trigger at page %d line 4 produced %d prefetches:\n", fresh, len(reqs))
	for _, r := range reqs {
		fmt.Printf("  line offset %2d (low-priority=%v)\n", r.Line.PageOffset(), r.LowPriority)
	}

	st := pf.Stats()
	fmt.Printf("\nstats: %d triggers, %d CovP predictions, %d page generations learned\n",
		st.Triggers, st.PredictionsCovP, st.PageEvictions)
	fmt.Printf("hardware budget: %.2f KB (paper Table 1: 3.6 KB)\n",
		float64(pf.StorageBits())/8192)
}
