// Multiprogram: the paper's multi-programmed experiment in miniature — four
// cores sharing an 8MB LLC and two DDR4-2133 channels (Table 2), comparing
// standalone SPP against DSPatch+SPP on a heterogeneous mix (Fig. 18).
//
// Run with: go run ./examples/multiprogram
package main

import (
	"fmt"

	"dspatch"
)

func main() {
	mix := []dspatch.Workload{
		dspatch.WorkloadByName("mcf"),           // pointer chasing
		dspatch.WorkloadByName("lbm17"),         // bandwidth-hungry streams
		dspatch.WorkloadByName("sysmark-excel"), // recurring spatial footprints
		dspatch.WorkloadByName("npb-cg"),        // HPC mix
	}

	opt := dspatch.MultiProgrammed()
	opt.Refs = 60_000

	base := opt
	base.L2 = dspatch.NoPrefetcher
	b := dspatch.SimulateMix(mix, base)

	fmt.Printf("4-core mix on %0.f GB/s peak DRAM (two DDR4-2133 channels)\n\n", b.PeakBandwidth)
	fmt.Printf("%-14s", "core/workload")
	for _, w := range mix {
		fmt.Printf("  %-14s", w.Name)
	}
	fmt.Println("  avg BW")

	fmt.Printf("%-14s", "baseline IPC")
	for _, ipc := range b.IPC {
		fmt.Printf("  %-14.3f", ipc)
	}
	fmt.Printf("  %.1f GB/s\n", b.AvgBandwidthGBps)

	for _, pf := range []dspatch.PrefetcherKind{dspatch.SPP, dspatch.DSPatchPlusSPP} {
		opt.L2 = pf
		r := dspatch.SimulateMix(mix, opt)
		fmt.Printf("%-14s", pf)
		for i, s := range dspatch.Speedup(b, r) {
			fmt.Printf("  %+.1f%% (%.3f)", (s-1)*100, r.IPC[i])
		}
		fmt.Printf("  %.1f GB/s\n", r.AvgBandwidthGBps)
	}

	fmt.Println("\nDSPatch rides the remaining bandwidth headroom: its accuracy-biased")
	fmt.Println("pattern keeps it useful even when four cores compete for DRAM.")
}
