// Package sms implements Spatial Memory Streaming (Somogyi et al., ISCA
// 2006 [73]) with the configuration the DSPatch paper evaluates (Table 3):
// 2KB regions, a 64-entry accumulation table, a 32-entry filter table and a
// pattern history table of 256 to 16K entries (16-way set-associative).
//
// SMS records the spatial footprint of each region generation as a bit
// pattern, associates it with a PC+offset signature of the region's trigger
// access, and replays the stored pattern when the same signature triggers a
// new region.
package sms

import (
	"dspatch/internal/idx"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
	"dspatch/internal/prefstats"
)

// RegionLines is the SMS region size in cache lines (2KB per the paper).
const RegionLines = 32

// Config sizes SMS.
type Config struct {
	ATEntries  int // accumulation table (active regions, >=2 accesses)
	FTEntries  int // filter table (regions with 1 access)
	PHTEntries int // pattern history table total entries
	PHTWays    int

	// Reference selects the pre-optimization per-train bookkeeping: linear
	// scans of the accumulation and filter tables instead of the hashed
	// region indexes. It exists so the differential equivalence tests can
	// prove the indexed fast path bit-identical; simulations never set it.
	Reference bool
}

// DefaultConfig returns the paper's full-size SMS (88KB-class).
func DefaultConfig() Config {
	return Config{ATEntries: 64, FTEntries: 32, PHTEntries: 16 << 10, PHTWays: 16}
}

// IsoStorageConfig returns the 256-entry PHT variant the paper compares at
// DSPatch-equivalent storage (Fig. 5, Fig. 14).
func IsoStorageConfig() Config {
	c := DefaultConfig()
	c.PHTEntries = 256
	return c
}

// WithPHTEntries returns cfg resized to n PHT entries (for the Fig. 5 sweep).
func (c Config) WithPHTEntries(n int) Config {
	c.PHTEntries = n
	return c
}

type region uint64 // line >> 5: 2KB-aligned region number

type ftEntry struct {
	reg     region
	sig     uint64
	trigger int
	valid   bool
	used    uint64
}

type atEntry struct {
	reg     region
	sig     uint64
	pattern uint32
	valid   bool
	used    uint64
}

type phtEntry struct {
	tag     uint64
	pattern uint32
	valid   bool
	used    uint64
}

// SMS is one core's Spatial Memory Streaming prefetcher.
type SMS struct {
	cfg   Config
	ft    []ftEntry
	at    []atEntry
	pht   []phtEntry // sets × ways
	sets  int
	clock uint64

	// atIdx and ftIdx map live region numbers to their table slots, so the
	// per-train lookups probe O(1) instead of scanning the fully associative
	// tables. Maintained on every AT/FT mutation; the Reference mode scans
	// the tables directly and must agree.
	atIdx *idx.Table
	ftIdx *idx.Table

	// Telemetry: plain hot-path counters, snapshotted by ReportStats.
	statPromotions uint64 // FT regions promoted to the AT
	statPHTStores  uint64 // completed patterns archived in the PHT
	statPHTHits    uint64 // new-region signatures found in the PHT
	statPHTMisses  uint64
	statIssued     uint64 // prefetch requests emitted on PHT replay
}

// New builds an SMS instance.
func New(cfg Config) *SMS {
	sets := cfg.PHTEntries / cfg.PHTWays
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("sms: PHT set count must be a positive power of two")
	}
	return &SMS{
		cfg:   cfg,
		ft:    make([]ftEntry, cfg.FTEntries),
		at:    make([]atEntry, cfg.ATEntries),
		pht:   make([]phtEntry, cfg.PHTEntries),
		sets:  sets,
		atIdx: idx.New(cfg.ATEntries),
		ftIdx: idx.New(cfg.FTEntries),
	}
}

// Name implements prefetch.Prefetcher.
func (s *SMS) Name() string { return "sms" }

// signature combines the trigger PC and the trigger offset within the
// region — the paper's PC+offset signature.
func signature(pc memaddr.PC, off int) uint64 {
	return uint64(pc)<<5 | uint64(off)
}

func regionOf(l memaddr.Line) region { return region(l >> 5) }

// Train implements prefetch.Prefetcher.
func (s *SMS) Train(a prefetch.Access, _ prefetch.Context, dst []prefetch.Request) []prefetch.Request {
	s.clock++
	reg := regionOf(a.Line)
	off := a.Line.SegOffset()

	// Active region: accumulate.
	if e := s.lookupAT(reg); e != nil {
		e.pattern |= 1 << uint(off)
		e.used = s.clock
		return dst
	}
	// Filtered region: second unique offset promotes to the AT.
	if f := s.lookupFT(reg); f != nil {
		if f.trigger == off {
			return dst
		}
		s.promote(f, off)
		return dst
	}
	// New region: record trigger, and predict from history.
	s.allocFT(reg, signature(a.PC, off), off)
	if pattern, ok := s.phtLookup(signature(a.PC, off)); ok {
		s.statPHTHits++
		base := memaddr.Line(uint64(reg) << 5)
		for i := 0; i < RegionLines; i++ {
			if i == off || pattern&(1<<uint(i)) == 0 {
				continue
			}
			s.statIssued++
			dst = append(dst, prefetch.Request{Line: base + memaddr.Line(i)})
		}
	} else {
		s.statPHTMisses++
	}
	return dst
}

func (s *SMS) lookupAT(reg region) *atEntry {
	if s.cfg.Reference {
		for i := range s.at {
			if s.at[i].valid && s.at[i].reg == reg {
				return &s.at[i]
			}
		}
		return nil
	}
	if i, ok := s.atIdx.Get(uint64(reg)); ok {
		return &s.at[i]
	}
	return nil
}

func (s *SMS) lookupFT(reg region) *ftEntry {
	if s.cfg.Reference {
		for i := range s.ft {
			if s.ft[i].valid && s.ft[i].reg == reg {
				return &s.ft[i]
			}
		}
		return nil
	}
	if i, ok := s.ftIdx.Get(uint64(reg)); ok {
		return &s.ft[i]
	}
	return nil
}

func (s *SMS) allocFT(reg region, sig uint64, trigger int) {
	victim := 0
	oldest := ^uint64(0)
	for i := range s.ft {
		if !s.ft[i].valid {
			victim = i
			break
		}
		if s.ft[i].used < oldest {
			oldest, victim = s.ft[i].used, i
		}
	}
	if s.ft[victim].valid {
		s.ftIdx.Del(uint64(s.ft[victim].reg))
	}
	s.ft[victim] = ftEntry{reg: reg, sig: sig, trigger: trigger, valid: true, used: s.clock}
	s.ftIdx.Put(uint64(reg), victim)
}

// promote moves a filter-table region into the accumulation table; the AT
// victim's completed pattern is archived in the PHT.
func (s *SMS) promote(f *ftEntry, secondOff int) {
	s.statPromotions++
	victim := 0
	oldest := ^uint64(0)
	for i := range s.at {
		if !s.at[i].valid {
			victim = i
			oldest = 0
			break
		}
		if s.at[i].used < oldest {
			oldest, victim = s.at[i].used, i
		}
	}
	if s.at[victim].valid {
		s.phtStore(s.at[victim].sig, s.at[victim].pattern)
		s.atIdx.Del(uint64(s.at[victim].reg))
	}
	s.at[victim] = atEntry{
		reg:     f.reg,
		sig:     f.sig,
		pattern: 1<<uint(f.trigger) | 1<<uint(secondOff),
		valid:   true,
		used:    s.clock,
	}
	s.atIdx.Put(uint64(f.reg), victim)
	s.ftIdx.Del(uint64(f.reg))
	f.valid = false
}

func (s *SMS) phtSet(sig uint64) []phtEntry {
	h := memaddr.FoldXOR(sig, 32)
	idx := int(h) & (s.sets - 1)
	return s.pht[idx*s.cfg.PHTWays : (idx+1)*s.cfg.PHTWays]
}

func (s *SMS) phtStore(sig uint64, pattern uint32) {
	s.statPHTStores++
	set := s.phtSet(sig)
	victim := 0
	oldest := ^uint64(0)
	for i := range set {
		if set[i].valid && set[i].tag == sig {
			set[i].pattern = pattern
			set[i].used = s.clock
			return
		}
		if !set[i].valid {
			victim = i
			oldest = 0
		} else if set[i].used < oldest {
			oldest, victim = set[i].used, i
		}
	}
	set[victim] = phtEntry{tag: sig, pattern: pattern, valid: true, used: s.clock}
}

func (s *SMS) phtLookup(sig uint64) (uint32, bool) {
	set := s.phtSet(sig)
	for i := range set {
		if set[i].valid && set[i].tag == sig {
			set[i].used = s.clock
			return set[i].pattern, true
		}
	}
	return 0, false
}

// ReportStats implements prefetch.StatsReporter.
func (s *SMS) ReportStats() []prefstats.Stats {
	st := prefstats.New(s.Name())
	st.Count("trains", s.clock)
	st.Count("at_promotions", s.statPromotions)
	st.Count("pht_stores", s.statPHTStores)
	st.Count("pht_hits", s.statPHTHits)
	st.Count("pht_misses", s.statPHTMisses)
	st.Count("issued", s.statIssued)
	return []prefstats.Stats{st}
}

// StorageBits implements prefetch.Prefetcher: PHT entry = pattern(32) +
// tag(16) + LRU(4); AT entry = region tag(37) + sig(21) + pattern(32);
// FT entry = region tag(37) + sig(21) + offset(5).
func (s *SMS) StorageBits() int {
	pht := s.cfg.PHTEntries * (32 + 16 + 4)
	at := s.cfg.ATEntries * (37 + 21 + 32)
	ft := s.cfg.FTEntries * (37 + 21 + 5)
	return pht + at + ft
}
