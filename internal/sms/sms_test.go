package sms

import (
	"testing"

	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
)

func acc(pc, line uint64) prefetch.Access {
	return prefetch.Access{PC: memaddr.PC(pc), Line: memaddr.Line(line)}
}

// visitRegion touches the given in-region offsets of region r with the given
// trigger PC (first access) and a filler PC for the rest.
func visitRegion(s *SMS, r uint64, pc uint64, offsets []int) []prefetch.Request {
	var out []prefetch.Request
	for i, off := range offsets {
		p := pc
		if i > 0 {
			p = 0x999
		}
		out = s.Train(acc(p, r*RegionLines+uint64(off)), nil, nil)
		if i == 0 && len(out) > 0 {
			return out // trigger prediction
		}
	}
	return nil
}

func TestLearnsAndReplaysPattern(t *testing.T) {
	s := New(DefaultConfig())
	pattern := []int{3, 7, 11, 19}
	// Train: many regions with the same trigger PC and footprint. Each new
	// region allocation evicts older AT entries into the PHT.
	for r := uint64(0); r < 100; r++ {
		visitRegion(s, r, 0x400, pattern)
	}
	// A fresh region triggered by the same PC+offset should replay the bits.
	out := s.Train(acc(0x400, 1000*RegionLines+3), nil, nil)
	if len(out) != len(pattern)-1 {
		t.Fatalf("replay emitted %d prefetches, want %d", len(out), len(pattern)-1)
	}
	want := map[memaddr.Line]bool{}
	for _, off := range pattern[1:] {
		want[memaddr.Line(1000*RegionLines+off)] = true
	}
	for _, r := range out {
		if !want[r.Line] {
			t.Errorf("unexpected prefetch %d", r.Line)
		}
	}
}

func TestSignatureIncludesOffset(t *testing.T) {
	s := New(DefaultConfig())
	for r := uint64(0); r < 100; r++ {
		visitRegion(s, r, 0x400, []int{3, 7, 11})
	}
	// Same PC but a different trigger offset: no replay.
	out := s.Train(acc(0x400, 2000*RegionLines+5), nil, nil)
	if len(out) != 0 {
		t.Errorf("different trigger offset should not match, got %d", len(out))
	}
}

func TestSingleAccessRegionsStayInFilter(t *testing.T) {
	s := New(DefaultConfig())
	// Regions with one access never reach the AT and thus never the PHT.
	for r := uint64(0); r < 200; r++ {
		s.Train(acc(0x400, r*RegionLines+3), nil, nil)
	}
	out := s.Train(acc(0x400, 5000*RegionLines+3), nil, nil)
	if len(out) != 0 {
		t.Errorf("single-access regions should not train patterns, got %d", len(out))
	}
}

func TestSmallPHTForgets(t *testing.T) {
	big := New(DefaultConfig())
	small := New(IsoStorageConfig())
	// Train many distinct signatures (PCs), exceeding the small PHT.
	nSigs := uint64(3000)
	for r := uint64(0); r < 2*nSigs; r++ {
		pc := 0x1000 + (r % nSigs)
		visitRegion(big, r, pc, []int{1, 9, 17})
		visitRegion(small, r, pc, []int{1, 9, 17})
	}
	bigHits, smallHits := 0, 0
	for i := uint64(0); i < nSigs; i++ {
		pc := 0x1000 + i
		if out := big.Train(acc(pc, (100000+i)*RegionLines+1), nil, nil); len(out) > 0 {
			bigHits++
		}
		if out := small.Train(acc(pc, (200000+i)*RegionLines+1), nil, nil); len(out) > 0 {
			smallHits++
		}
	}
	if smallHits >= bigHits {
		t.Errorf("256-entry PHT hits (%d) should be fewer than 16K-entry (%d)", smallHits, bigHits)
	}
}

func TestStorageBudgets(t *testing.T) {
	fullKB := float64(New(DefaultConfig()).StorageBits()) / 8192
	isoKB := float64(New(IsoStorageConfig()).StorageBits()) / 8192
	if fullKB < 60 || fullKB > 120 {
		t.Errorf("full SMS storage = %.1fKB, want ≈88KB class", fullKB)
	}
	if isoKB > 5 {
		t.Errorf("iso-storage SMS = %.1fKB, want ≈3.5KB class", isoKB)
	}
}

func TestWithPHTEntries(t *testing.T) {
	c := DefaultConfig().WithPHTEntries(1024)
	if c.PHTEntries != 1024 || c.ATEntries != 64 {
		t.Errorf("WithPHTEntries mangled config: %+v", c)
	}
	if New(c) == nil {
		t.Fatal("nil SMS")
	}
}

func TestBadPHTGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{ATEntries: 4, FTEntries: 4, PHTEntries: 48, PHTWays: 16}) // 3 sets
}
