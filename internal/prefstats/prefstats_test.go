package prefstats

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestMergeSumsByName(t *testing.T) {
	a := New("dspatch")
	a.Count("pb_lookups", 10)
	a.Count("pb_hits", 4)
	a.Hist("bw_quartile", []string{"q0", "q1", "q2", "q3"}, []uint64{1, 2, 0, 0})

	b := New("dspatch")
	b.Count("pb_lookups", 5)
	b.Count("pb_evictions", 1)
	b.Hist("bw_quartile", []string{"q0", "q1", "q2", "q3"}, []uint64{0, 1, 3, 0})

	c := New("spp")
	c.Count("issued", 7)

	got := Merge(nil, []Stats{a})
	got = Merge(got, []Stats{b, c})

	if len(got) != 2 {
		t.Fatalf("merged %d models, want 2: %+v", len(got), got)
	}
	d := got[0]
	if d.Name != "dspatch" || d.Counters["pb_lookups"] != 15 ||
		d.Counters["pb_hits"] != 4 || d.Counters["pb_evictions"] != 1 {
		t.Fatalf("dspatch counters wrong: %+v", d.Counters)
	}
	wantHist := Histogram{Buckets: []string{"q0", "q1", "q2", "q3"}, Counts: []uint64{1, 3, 3, 0}}
	if !reflect.DeepEqual(d.Histograms["bw_quartile"], wantHist) {
		t.Fatalf("bw_quartile = %+v, want %+v", d.Histograms["bw_quartile"], wantHist)
	}
	if got[1].Name != "spp" || got[1].Counters["issued"] != 7 {
		t.Fatalf("spp snapshot wrong: %+v", got[1])
	}

	// Merge must not alias the sources: mutating the merge output leaves
	// the inputs untouched.
	got[1].Counters["issued"] = 99
	if c.Counters["issued"] != 7 {
		t.Fatalf("Merge aliased source counters")
	}
}

func TestHistogramMergeByLabel(t *testing.T) {
	h := Histogram{Buckets: []string{"1", "2"}, Counts: []uint64{3, 1}}
	h = h.add(Histogram{Buckets: []string{"2", "4"}, Counts: []uint64{2, 5}})
	want := Histogram{Buckets: []string{"1", "2", "4"}, Counts: []uint64{3, 3, 5}}
	if !reflect.DeepEqual(h, want) {
		t.Fatalf("merged = %+v, want %+v", h, want)
	}
	if h.Total() != 11 {
		t.Fatalf("Total = %d, want 11", h.Total())
	}
}

func TestZeroValuesOmitted(t *testing.T) {
	s := New("x")
	s.Count("never", 0)
	s.Hist("empty", []string{"a"}, []uint64{0})
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("zero-valued entries recorded: %+v", s)
	}
}

func TestDeterministicJSON(t *testing.T) {
	s := New("m")
	s.Count("b", 2)
	s.Count("a", 1)
	s.Hist("h", []string{"x", "y"}, []uint64{1, 2})
	j1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(s.Clone())
	if string(j1) != string(j2) {
		t.Fatalf("marshal not deterministic:\n%s\n%s", j1, j2)
	}
	want := `{"name":"m","counters":{"a":1,"b":2},"histograms":{"h":{"buckets":["x","y"],"counts":[1,2]}}}`
	if string(j1) != want {
		t.Fatalf("marshal = %s, want %s", j1, want)
	}
}
