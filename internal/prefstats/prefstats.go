// Package prefstats defines the flat counter/histogram schema prefetcher
// models use to report internal telemetry — Page Buffer hit rates, pattern
// selection reasons, bandwidth-quartile histograms — through the optional
// prefetch.StatsReporter interface. The schema is deliberately plain data:
// string-keyed maps of uint64 counters and flat named-bucket histograms, so
// snapshots marshal deterministically (encoding/json sorts map keys), merge
// associatively across lanes and jobs, and survive disk caches without
// version coupling to any model's internals.
package prefstats

// Histogram is a flat histogram: parallel bucket-label and count slices.
// Labels are part of the schema a model reports (e.g. "q0".."q3" for DRAM
// bandwidth quartiles), so merges match buckets by label, not position.
type Histogram struct {
	Buckets []string `json:"buckets"`
	Counts  []uint64 `json:"counts"`
}

// Total returns the sum of all bucket counts.
func (h Histogram) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// clone returns an independent copy of h.
func (h Histogram) clone() Histogram {
	return Histogram{
		Buckets: append([]string(nil), h.Buckets...),
		Counts:  append([]uint64(nil), h.Counts...),
	}
}

// add merges src into h by bucket label: matching labels sum, unseen labels
// append in src order. Returns the merged histogram (h may be reused).
func (h Histogram) add(src Histogram) Histogram {
	idx := make(map[string]int, len(h.Buckets))
	for i, b := range h.Buckets {
		idx[b] = i
	}
	for i, b := range src.Buckets {
		if j, ok := idx[b]; ok {
			h.Counts[j] += src.Counts[i]
		} else {
			idx[b] = len(h.Buckets)
			h.Buckets = append(h.Buckets, b)
			h.Counts = append(h.Counts, src.Counts[i])
		}
	}
	return h
}

// Stats is one prefetcher's telemetry snapshot. Name identifies the model
// ("dspatch", "spp", ...); snapshots with equal names merge by summing.
type Stats struct {
	Name       string               `json:"name"`
	Counters   map[string]uint64    `json:"counters,omitempty"`
	Histograms map[string]Histogram `json:"histograms,omitempty"`
}

// New returns an empty snapshot for the named model.
func New(name string) Stats {
	return Stats{
		Name:     name,
		Counters: map[string]uint64{},
	}
}

// Count adds v to the named counter. Zero values are skipped so snapshots
// only carry counters the run actually exercised.
func (s *Stats) Count(name string, v uint64) {
	if v == 0 {
		return
	}
	if s.Counters == nil {
		s.Counters = map[string]uint64{}
	}
	s.Counters[name] += v
}

// Hist records a histogram under name, skipping all-zero histograms. The
// counts slice is copied; labels are referenced (callers pass literals).
func (s *Stats) Hist(name string, buckets []string, counts []uint64) {
	var nonzero bool
	for _, c := range counts {
		if c != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		return
	}
	if s.Histograms == nil {
		s.Histograms = map[string]Histogram{}
	}
	h := Histogram{Buckets: buckets, Counts: append([]uint64(nil), counts...)}
	if prev, ok := s.Histograms[name]; ok {
		h = prev.add(h)
	}
	s.Histograms[name] = h
}

// Clone returns a deep copy of s.
func (s Stats) Clone() Stats {
	out := Stats{Name: s.Name}
	if s.Counters != nil {
		out.Counters = make(map[string]uint64, len(s.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
	}
	if s.Histograms != nil {
		out.Histograms = make(map[string]Histogram, len(s.Histograms))
		for k, v := range s.Histograms {
			out.Histograms[k] = v.clone()
		}
	}
	return out
}

// merge adds src's counters and histograms into s (same Name assumed).
func (s *Stats) merge(src Stats) {
	for k, v := range src.Counters {
		s.Count(k, v)
	}
	for k, v := range src.Histograms {
		if s.Histograms == nil {
			s.Histograms = map[string]Histogram{}
		}
		if prev, ok := s.Histograms[k]; ok {
			s.Histograms[k] = prev.add(v)
		} else {
			s.Histograms[k] = v.clone()
		}
	}
}

// Merge folds src into dst by model name: snapshots sharing a Name sum
// counter-wise and histogram-wise (buckets matched by label); new names
// append in src order. dst's existing order is preserved, so repeated
// merges of per-lane or per-job reports stay deterministic. The returned
// slice owns its data — src is never aliased.
func Merge(dst []Stats, src []Stats) []Stats {
	for _, st := range src {
		found := false
		for i := range dst {
			if dst[i].Name == st.Name {
				dst[i].merge(st)
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, st.Clone())
		}
	}
	return dst
}
