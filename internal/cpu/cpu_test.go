package cpu

import "testing"

func fixedLatency(lat uint64) LoadFunc {
	return func(issue uint64) uint64 { return issue + lat }
}

func TestIdealIPCEqualsWidth(t *testing.T) {
	c := New(DefaultConfig())
	c.Ops(40000)
	ipc := c.IPC()
	if ipc < 3.9 || ipc > 4.01 {
		t.Errorf("all-ALU IPC = %.3f, want ≈4", ipc)
	}
}

func TestFastLoadsSustainWidth(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 10000; i++ {
		c.Load(fixedLatency(5))
		c.Ops(3)
	}
	ipc := c.IPC()
	if ipc < 3.5 {
		t.Errorf("L1-hit workload IPC = %.3f, want near 4", ipc)
	}
}

func TestLongLatencySerialLoadsStall(t *testing.T) {
	// Dependent-like pattern: nothing but loads; the ROB (224) caps MLP, so
	// IPC ≈ ROB-limited. With 200-cycle loads and a 224-deep window of
	// loads all independent, throughput ≈ width until the load buffer (80)
	// binds... here every instruction is a load, so the load buffer is the
	// limit: 80 outstanding / 200 cycles = 0.4 loads/cycle.
	c := New(DefaultConfig())
	for i := 0; i < 20000; i++ {
		c.Load(fixedLatency(200))
	}
	ipc := c.IPC()
	if ipc > 0.45 || ipc < 0.3 {
		t.Errorf("load-buffer-bound IPC = %.3f, want ≈0.4", ipc)
	}
}

func TestROBLimitsMLP(t *testing.T) {
	// One load every 8 instructions: the ROB fits 224/8 = 28 loads. With
	// 400-cycle misses, IPC ≈ 224 instrs per (400/28 per load × 28 loads)
	// ≈ 224/400 × ... — the key property is simply that halving the ROB
	// roughly halves throughput in this regime.
	run := func(rob int) float64 {
		c := New(Config{Width: 4, ROB: rob, LoadBuffer: 80})
		for i := 0; i < 4000; i++ {
			c.Load(fixedLatency(400))
			c.Ops(7)
		}
		return c.IPC()
	}
	big, small := run(224), run(112)
	ratio := big / small
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("ROB scaling ratio = %.2f, want ≈2", ratio)
	}
}

func TestPrefetchingImprovesIPC(t *testing.T) {
	// The point of the whole model: turning misses into hits must raise IPC.
	run := func(lat uint64) float64 {
		c := New(DefaultConfig())
		for i := 0; i < 5000; i++ {
			c.Load(fixedLatency(lat))
			c.Ops(9)
		}
		return c.IPC()
	}
	missIPC, hitIPC := run(300), run(13)
	if hitIPC <= missIPC*1.5 {
		t.Errorf("hit IPC %.3f should far exceed miss IPC %.3f", hitIPC, missIPC)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 5000; i++ {
		c.Store(fixedLatency(300)) // long-latency stores absorbed by write buffer
		c.Ops(3)
	}
	ipc := c.IPC()
	if ipc < 3.5 {
		t.Errorf("store workload IPC = %.3f, want near 4", ipc)
	}
}

func TestLoadIssueCycleMonotone(t *testing.T) {
	c := New(DefaultConfig())
	var last uint64
	for i := 0; i < 2000; i++ {
		c.Load(func(issue uint64) uint64 {
			if issue < last {
				t.Fatalf("issue cycle went backwards: %d < %d", issue, last)
			}
			last = issue
			return issue + 50
		})
	}
}

func TestInstructionsCounted(t *testing.T) {
	c := New(DefaultConfig())
	c.Ops(10)
	c.Load(fixedLatency(5))
	c.Store(fixedLatency(5))
	if c.Instructions() != 12 {
		t.Errorf("Instructions = %d, want 12", c.Instructions())
	}
}

func TestDrainEmpty(t *testing.T) {
	c := New(DefaultConfig())
	if c.Drain() != 0 {
		t.Error("draining an empty core should be cycle 0")
	}
	if c.IPC() != 0 {
		t.Error("IPC of empty core should be 0")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Width: 0, ROB: 10, LoadBuffer: 1})
}
