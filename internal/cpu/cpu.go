// Package cpu models the out-of-order core at the fidelity prefetcher
// studies need: a 224-entry reorder buffer bounding the instruction window,
// an 80-entry load buffer bounding memory-level parallelism, 4-wide dispatch
// and in-order retirement (paper Table 2, Skylake-class).
//
// The model is trace-driven: every instruction receives a dispatch cycle
// (bounded by width and ROB occupancy), completes after its latency (one
// cycle for non-memory work, the hierarchy's reply for loads), and retires
// in order at up to Width per cycle. A load miss at the ROB head therefore
// stalls retirement and eventually dispatch — exactly the first-order
// mechanism by which memory latency costs IPC and by which prefetching
// earns it back.
package cpu

// Config sizes the core.
type Config struct {
	Width      int // dispatch/retire width
	ROB        int // reorder buffer entries
	LoadBuffer int // outstanding loads
}

// DefaultConfig matches the paper's Table 2.
func DefaultConfig() Config { return Config{Width: 4, ROB: 224, LoadBuffer: 80} }

// LoadFunc asks the memory hierarchy to perform a demand access issued at
// the given cycle and returns its completion cycle.
type LoadFunc func(issueCycle uint64) (completeCycle uint64)

// Core simulates one hardware thread.
type Core struct {
	cfg Config

	// retire ring: completion cycles of in-flight instructions, in program
	// order. head is the oldest (next to retire).
	complete []uint64
	head     int
	count    int

	// loads ring: completion cycles of in-flight loads, oldest first.
	loadDone []uint64
	loadHead int
	loadCnt  int
	lastLoad uint64 // completion cycle of the most recent load

	dispatchCycle uint64 // cycle the next instruction can dispatch at
	dispatched    int    // instructions dispatched in dispatchCycle

	retireCycle uint64 // cycle of the most recent retirement
	retiredSlot int    // retirements already in retireCycle

	instructions uint64
	finish       uint64 // completion cycle of the last retired instruction
}

// New builds a core.
func New(cfg Config) *Core {
	if cfg.Width < 1 || cfg.ROB < cfg.Width || cfg.LoadBuffer < 1 {
		panic("cpu: nonsensical core configuration")
	}
	return &Core{
		cfg:      cfg,
		complete: make([]uint64, cfg.ROB),
		loadDone: make([]uint64, cfg.LoadBuffer),
	}
}

// Cycle returns the current simulated cycle (the dispatch frontier).
func (c *Core) Cycle() uint64 { return c.dispatchCycle }

// Instructions returns how many instructions have been dispatched.
func (c *Core) Instructions() uint64 { return c.instructions }

// retireOne retires the oldest in-flight instruction and returns the cycle
// at which its ROB slot frees.
func (c *Core) retireOne() uint64 {
	done := c.complete[c.head]
	// In-order retirement at Width per cycle: this instruction retires no
	// earlier than it completes and no earlier than the retire port allows.
	when := done
	if when < c.retireCycle {
		when = c.retireCycle
	}
	if when == c.retireCycle {
		c.retiredSlot++
		if c.retiredSlot >= c.cfg.Width {
			c.retireCycle++
			c.retiredSlot = 0
		}
	} else {
		c.retireCycle = when
		c.retiredSlot = 1
	}
	c.head++
	if c.head == c.cfg.ROB {
		c.head = 0
	}
	c.count--
	if done > c.finish {
		c.finish = done
	}
	return when
}

// dispatchSlot reserves a dispatch slot and returns its cycle, honoring
// width and ROB occupancy.
func (c *Core) dispatchSlot() uint64 {
	if c.count == c.cfg.ROB {
		// ROB full: dispatch waits for the head to retire.
		freeAt := c.retireOne()
		if freeAt > c.dispatchCycle {
			c.dispatchCycle = freeAt
			c.dispatched = 0
		}
	}
	slot := c.dispatchCycle
	c.dispatched++
	if c.dispatched >= c.cfg.Width {
		c.dispatchCycle++
		c.dispatched = 0
	}
	return slot
}

func (c *Core) push(done uint64) {
	tail := c.head + c.count
	if tail >= c.cfg.ROB {
		tail -= c.cfg.ROB
	}
	c.complete[tail] = done
	c.count++
	c.instructions++
}

// Op dispatches one non-memory instruction (single-cycle execution).
func (c *Core) Op() {
	slot := c.dispatchSlot()
	c.push(slot + 1)
}

// Ops dispatches n non-memory instructions. It is Op unrolled in place:
// instruction gaps run it for every simulated reference, so the dispatch
// slot, retirement and ROB push work on locals for the whole batch (the
// compiler cannot cache pointer fields across the complete[] stores) and
// write back once. The state transitions are identical to n calls of Op.
func (c *Core) Ops(n int) {
	rob, width := c.cfg.ROB, c.cfg.Width
	head, count := c.head, c.count
	dispatchCycle, dispatched := c.dispatchCycle, c.dispatched
	retireCycle, retiredSlot := c.retireCycle, c.retiredSlot
	finish := c.finish
	complete := c.complete
	for i := 0; i < n; i++ {
		if count == rob {
			// ROB full: dispatch waits for the head to retire (retireOne,
			// inlined on the batch locals).
			done := complete[head]
			when := done
			if when < retireCycle {
				when = retireCycle
			}
			if when == retireCycle {
				retiredSlot++
				if retiredSlot >= width {
					retireCycle++
					retiredSlot = 0
				}
			} else {
				retireCycle = when
				retiredSlot = 1
			}
			head++
			if head == rob {
				head = 0
			}
			count--
			if done > finish {
				finish = done
			}
			if when > dispatchCycle {
				dispatchCycle = when
				dispatched = 0
			}
		}
		slot := dispatchCycle
		dispatched++
		if dispatched >= width {
			dispatchCycle++
			dispatched = 0
		}
		tail := head + count
		if tail >= rob {
			tail -= rob
		}
		complete[tail] = slot + 1
		count++
	}
	c.head, c.count = head, count
	c.dispatchCycle, c.dispatched = dispatchCycle, dispatched
	c.retireCycle, c.retiredSlot = retireCycle, retiredSlot
	c.finish = finish
	c.instructions += uint64(n)
}

// Load dispatches an independent load (its address is ready at dispatch).
// The hierarchy callback receives the issue cycle and returns the completion
// cycle. The load buffer bounds outstanding loads: when full, the load's
// issue is delayed until the oldest load completes.
func (c *Core) Load(mem LoadFunc) { c.load(mem, false) }

// LoadAfter dispatches a load whose address depends on the most recent
// load's result (pointer chasing, loop-carried index chains): it cannot
// issue before that load completes. Dependence chains are what bound a real
// core's memory-level parallelism — and what give prefetchers their value.
func (c *Core) LoadAfter(mem LoadFunc) { c.load(mem, true) }

func (c *Core) load(mem LoadFunc, dependent bool) {
	slot := c.dispatchSlot()
	issue := slot
	if dependent && c.lastLoad > issue {
		issue = c.lastLoad
	}
	if c.loadCnt == c.cfg.LoadBuffer {
		oldest := c.loadDone[c.loadHead]
		c.loadHead++
		if c.loadHead == c.cfg.LoadBuffer {
			c.loadHead = 0
		}
		c.loadCnt--
		if oldest > issue {
			issue = oldest
		}
	}
	done := mem(issue)
	if done < slot+1 {
		done = slot + 1
	}
	tail := c.loadHead + c.loadCnt
	if tail >= c.cfg.LoadBuffer {
		tail -= c.cfg.LoadBuffer
	}
	c.loadDone[tail] = done
	c.loadCnt++
	c.lastLoad = done
	c.push(done)
}

// Store dispatches a store. Stores retire through a write buffer and do not
// stall the pipeline; the hierarchy callback is still invoked (at the
// dispatch cycle) so caches and prefetchers observe the access, but the
// instruction completes immediately.
func (c *Core) Store(mem LoadFunc) {
	slot := c.dispatchSlot()
	mem(slot)
	c.push(slot + 1)
}

// Drain retires everything still in flight and returns the cycle at which
// the final instruction retired — the denominator for IPC.
func (c *Core) Drain() uint64 {
	for c.count > 0 {
		c.retireOne()
	}
	end := c.retireCycle
	if c.finish > end {
		end = c.finish
	}
	return end
}

// IPC runs Drain and reports retired instructions per cycle.
func (c *Core) IPC() float64 {
	cycles := c.Drain()
	if cycles == 0 {
		return 0
	}
	return float64(c.instructions) / float64(cycles)
}
