package ampm

import (
	"testing"

	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
)

func acc(line uint64) prefetch.Access { return prefetch.Access{Line: memaddr.Line(line)} }

func TestDetectsUnitStride(t *testing.T) {
	a := New(DefaultConfig())
	a.Train(acc(0), nil, nil)
	a.Train(acc(1), nil, nil)
	out := a.Train(acc(2), nil, nil)
	found := false
	for _, r := range out {
		if r.Line == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("offsets 0,1,2 should predict 3; got %v", out)
	}
}

func TestDetectsStride2(t *testing.T) {
	a := New(DefaultConfig())
	a.Train(acc(10), nil, nil)
	a.Train(acc(12), nil, nil)
	out := a.Train(acc(14), nil, nil)
	found := false
	for _, r := range out {
		if r.Line == 16 {
			found = true
		}
	}
	if !found {
		t.Errorf("stride-2 should predict 16; got %v", out)
	}
}

func TestNoDuplicatePrefetches(t *testing.T) {
	a := New(DefaultConfig())
	a.Train(acc(0), nil, nil)
	a.Train(acc(1), nil, nil)
	first := a.Train(acc(2), nil, nil)
	second := a.Train(acc(2), nil, nil)
	if len(first) == 0 {
		t.Fatal("expected initial prediction")
	}
	for _, r := range second {
		for _, f := range first {
			if r.Line == f.Line {
				t.Errorf("duplicate prefetch %d", r.Line)
			}
		}
	}
}

func TestDegreeBound(t *testing.T) {
	a := New(DefaultConfig())
	// Dense page: many candidate strides.
	for i := 0; i < 20; i++ {
		a.Train(acc(uint64(i)), nil, nil)
	}
	out := a.Train(acc(20), nil, nil)
	if len(out) > a.cfg.Degree {
		t.Errorf("emitted %d > degree %d", len(out), a.cfg.Degree)
	}
}

func TestMapEviction(t *testing.T) {
	a := New(Config{Maps: 2, MaxStride: 4, Degree: 2})
	a.Train(acc(0), nil, nil)                   // page 0
	a.Train(acc(memaddr.LinesPage), nil, nil)   // page 1
	a.Train(acc(2*memaddr.LinesPage), nil, nil) // page 2 evicts page 0
	if e := a.lookup(memaddr.Page(0)); e != nil {
		t.Error("page 0 should have been evicted")
	}
	if e := a.lookup(memaddr.Page(2)); e == nil {
		t.Error("page 2 should be tracked")
	}
}

func TestStorage(t *testing.T) {
	if kb := float64(New(DefaultConfig()).StorageBits()) / 8192; kb > 2 {
		t.Errorf("AMPM storage %.2fKB too large", kb)
	}
}
