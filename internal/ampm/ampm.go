// Package ampm implements Access Map Pattern Matching (Ishii et al., ICS
// 2009 [43]). The DSPatch paper evaluates AMPM but omits its results because
// it underperforms the other prefetchers in single-thread runs (§4.1); we
// include it for completeness and for the same comparison.
//
// AMPM keeps a per-page access bitmap and, on every access at offset o,
// searches for strides s such that both o-s and o-2s were accessed; each
// such stride predicts o+s.
package ampm

import (
	"dspatch/internal/idx"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
	"dspatch/internal/prefstats"
)

// Config sizes AMPM.
type Config struct {
	Maps      int // concurrently tracked pages
	MaxStride int // largest stride considered
	Degree    int // max prefetches per access

	// Reference selects the pre-optimization linear map scan instead of the
	// hashed page index; only the differential equivalence tests set it.
	Reference bool
}

// DefaultConfig returns a 64-page AMPM comparable to the other prefetchers'
// budgets.
func DefaultConfig() Config { return Config{Maps: 64, MaxStride: 16, Degree: 2} }

type mapEntry struct {
	page       memaddr.Page
	accessed   uint64 // bit per line: demanded
	prefetched uint64 // bit per line: prefetch issued
	valid      bool
	used       uint64
}

// AMPM is one core's access-map prefetcher.
type AMPM struct {
	cfg   Config
	maps  []mapEntry
	clock uint64

	// mapIdx maps live page numbers to their map slots for the O(1) per-train
	// lookup; Reference mode scans the maps directly and must agree.
	mapIdx *idx.Table

	// Telemetry: plain hot-path counters, snapshotted by ReportStats.
	statAllocs uint64 // access maps (re)allocated
	statEvicts uint64 // valid maps evicted to make room
	statIssued uint64 // prefetch requests emitted
}

// New builds an AMPM instance.
func New(cfg Config) *AMPM {
	return &AMPM{cfg: cfg, maps: make([]mapEntry, cfg.Maps), mapIdx: idx.New(cfg.Maps)}
}

// Name implements prefetch.Prefetcher.
func (a *AMPM) Name() string { return "ampm" }

// Train implements prefetch.Prefetcher.
func (a *AMPM) Train(acc prefetch.Access, _ prefetch.Context, dst []prefetch.Request) []prefetch.Request {
	a.clock++
	page := acc.Line.Page()
	off := acc.Line.PageOffset()

	e := a.lookup(page)
	if e == nil {
		e = a.alloc(page)
	}
	e.accessed |= 1 << uint(off)
	e.used = a.clock

	issued := 0
	for s := 1; s <= a.cfg.MaxStride && issued < a.cfg.Degree; s++ {
		for _, dir := range [2]int{1, -1} {
			t := off + dir*s
			b1, b2 := off-dir*s, off-2*dir*s
			if t < 0 || t >= memaddr.LinesPage || b1 < 0 || b1 >= memaddr.LinesPage || b2 < 0 || b2 >= memaddr.LinesPage {
				continue
			}
			if e.accessed&(1<<uint(b1)) == 0 || e.accessed&(1<<uint(b2)) == 0 {
				continue
			}
			bit := uint64(1) << uint(t)
			if e.accessed&bit != 0 || e.prefetched&bit != 0 {
				continue
			}
			e.prefetched |= bit
			a.statIssued++
			dst = append(dst, prefetch.Request{Line: page.Line(t)})
			issued++
			if issued >= a.cfg.Degree {
				break
			}
		}
	}
	return dst
}

func (a *AMPM) lookup(page memaddr.Page) *mapEntry {
	if a.cfg.Reference {
		for i := range a.maps {
			if a.maps[i].valid && a.maps[i].page == page {
				return &a.maps[i]
			}
		}
		return nil
	}
	if i, ok := a.mapIdx.Get(uint64(page)); ok {
		return &a.maps[i]
	}
	return nil
}

func (a *AMPM) alloc(page memaddr.Page) *mapEntry {
	a.statAllocs++
	victim := 0
	oldest := ^uint64(0)
	for i := range a.maps {
		if !a.maps[i].valid {
			victim = i
			break
		}
		if a.maps[i].used < oldest {
			oldest, victim = a.maps[i].used, i
		}
	}
	if a.maps[victim].valid {
		a.statEvicts++
		a.mapIdx.Del(uint64(a.maps[victim].page))
	}
	a.maps[victim] = mapEntry{page: page, valid: true, used: a.clock}
	a.mapIdx.Put(uint64(page), victim)
	return &a.maps[victim]
}

// ReportStats implements prefetch.StatsReporter.
func (a *AMPM) ReportStats() []prefstats.Stats {
	st := prefstats.New(a.Name())
	st.Count("trains", a.clock)
	st.Count("map_allocs", a.statAllocs)
	st.Count("map_evictions", a.statEvicts)
	st.Count("issued", a.statIssued)
	return []prefstats.Stats{st}
}

// StorageBits implements prefetch.Prefetcher: page tag(36) + 2×64b maps per
// entry.
func (a *AMPM) StorageBits() int { return a.cfg.Maps * (36 + 128) }
