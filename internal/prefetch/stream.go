package prefetch

import (
	"dspatch/internal/memaddr"
	"dspatch/internal/prefstats"
)

// StreamConfig parameterizes the next-line streamer.
type StreamConfig struct {
	Streams int // tracked streams (pages)
	Degree  int // lines prefetched per miss
}

// DefaultStreamConfig is the aggressive-but-inaccurate configuration the
// paper's appendix uses for the cache-pollution study.
func DefaultStreamConfig() StreamConfig { return StreamConfig{Streams: 16, Degree: 4} }

type streamEntry struct {
	page     memaddr.Page
	lastOff  int
	dir      int // +1, -1, or 0 (unknown)
	valid    bool
	lastUsed uint64
}

// Stream is a simple per-page streaming prefetcher (Chen & Baer style [29]):
// it detects the access direction within a page and prefetches Degree
// consecutive lines ahead on every miss. It is deliberately aggressive and
// fairly inaccurate — the fixture for the pollution taxonomy of Fig. 20.
type Stream struct {
	cfg   StreamConfig
	table []streamEntry
	clock uint64

	// Telemetry (see Stride): plain hot-path counters, snapshotted by
	// ReportStats.
	allocs uint64 // stream entries (re)allocated
	issued uint64 // prefetch requests emitted
}

// NewStream builds a streamer.
func NewStream(cfg StreamConfig) *Stream {
	return &Stream{cfg: cfg, table: make([]streamEntry, cfg.Streams)}
}

// Name implements Prefetcher.
func (s *Stream) Name() string { return "streamer" }

// Train implements Prefetcher.
func (s *Stream) Train(a Access, _ Context, dst []Request) []Request {
	if a.Hit {
		return dst
	}
	s.clock++
	page := a.Line.Page()
	off := a.Line.PageOffset()

	var e *streamEntry
	var victim *streamEntry
	oldest := ^uint64(0)
	for i := range s.table {
		t := &s.table[i]
		if t.valid && t.page == page {
			e = t
			break
		}
		if t.lastUsed < oldest {
			oldest, victim = t.lastUsed, t
		}
	}
	if e == nil {
		s.allocs++
		*victim = streamEntry{page: page, lastOff: off, valid: true, lastUsed: s.clock}
		return dst
	}
	e.lastUsed = s.clock
	switch {
	case off > e.lastOff:
		e.dir = 1
	case off < e.lastOff:
		e.dir = -1
	}
	e.lastOff = off
	if e.dir == 0 {
		return dst
	}
	for i := 1; i <= s.cfg.Degree; i++ {
		t := off + e.dir*i
		if t < 0 || t >= memaddr.LinesPage {
			break
		}
		s.issued++
		dst = append(dst, Request{Line: page.Line(t)})
	}
	return dst
}

// ReportStats implements StatsReporter.
func (s *Stream) ReportStats() []prefstats.Stats {
	st := prefstats.New(s.Name())
	st.Count("trains", s.clock)
	st.Count("stream_allocs", s.allocs)
	st.Count("issued", s.issued)
	return []prefstats.Stats{st}
}

// StorageBits implements Prefetcher: page tag(36) + offset(6) + dir(2) per
// stream.
func (s *Stream) StorageBits() int { return s.cfg.Streams * (36 + 6 + 2) }
