// Package prefetch defines the prefetcher interface shared by every
// prefetching algorithm in this repository and provides the two simple
// prefetchers the paper uses as fixtures: the baseline L1 PC-stride
// prefetcher (Fu et al., MICRO 1992 [38]) and an aggressive next-line
// streamer (Chen & Baer [29]) used in the appendix pollution study.
//
// The substantial algorithms live in their own packages: internal/spp,
// internal/bop, internal/sms, internal/ampm and internal/core (DSPatch).
package prefetch

import (
	"dspatch/internal/bitpattern"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefstats"
)

// Access is one training event delivered to a prefetcher. L2 prefetchers in
// the paper train on L1 misses (demand and prefetch misses alike); the L1
// stride prefetcher trains on all L1 demand accesses.
type Access struct {
	PC    memaddr.PC
	Line  memaddr.Line
	Write bool
	// Hit reports whether the access hit in the cache level the prefetcher
	// is attached to. Some algorithms train only on misses or on prefetched
	// hits.
	Hit bool
	// HitPrefetched reports the access was the first demand use of a
	// prefetched line (relevant to BOP's best-offset learning).
	HitPrefetched bool
}

// Request is one prefetch candidate emitted by a prefetcher.
type Request struct {
	Line memaddr.Line
	// LowPriority asks the hierarchy to fill at LRU position (DSPatch emits
	// this when its coverage pattern is untrusted and bandwidth is free).
	LowPriority bool
}

// Context exposes the system signals a prefetcher may consult at training
// time. The 2-bit DRAM bandwidth-utilization quartile is the signal DSPatch,
// eSPP and eBOP adapt to.
type Context interface {
	BandwidthUtilization() bitpattern.Quartile
}

// Prefetcher is a trainable prefetch engine. Train observes one access and
// appends any prefetch candidates to dst, returning the extended slice
// (append-style to keep the hot path allocation-free).
type Prefetcher interface {
	Name() string
	Train(a Access, ctx Context, dst []Request) []Request
	// StorageBits returns the hardware budget of the configuration, used to
	// regenerate the paper's storage tables.
	StorageBits() int
}

// StatsReporter is the optional introspection side of a Prefetcher: models
// that keep internal telemetry (always-on plain counters — incrementing them
// must stay allocation-free on the Train hot path) expose a snapshot through
// ReportStats. Discovery is by type assertion so the core Prefetcher
// interface stays narrow; callers that find no StatsReporter simply report
// nothing for that model. A composite returns one Stats per constituent
// model rather than folding them under its own name.
type StatsReporter interface {
	ReportStats() []prefstats.Stats
}

// ReportStats extracts p's telemetry snapshots when p implements
// StatsReporter, and returns nil otherwise.
func ReportStats(p Prefetcher) []prefstats.Stats {
	if r, ok := p.(StatsReporter); ok {
		return r.ReportStats()
	}
	return nil
}

// StaticContext is a Context with a fixed utilization value, useful in tests
// and in unit experiments that sweep the bandwidth signal.
type StaticContext struct{ Util bitpattern.Quartile }

// BandwidthUtilization implements Context.
func (s StaticContext) BandwidthUtilization() bitpattern.Quartile { return s.Util }

// Nop is a prefetcher that never prefetches (the no-prefetch baseline).
type Nop struct{}

// Name implements Prefetcher.
func (Nop) Name() string { return "none" }

// Train implements Prefetcher.
func (Nop) Train(_ Access, _ Context, dst []Request) []Request { return dst }

// StorageBits implements Prefetcher.
func (Nop) StorageBits() int { return 0 }

// Composite chains prefetchers so each trains on the same access stream and
// their candidates are concatenated (duplicates removed by the hierarchy's
// in-flight filter). This is how the paper runs DSPatch as a lightweight
// adjunct to SPP, and BOP+SPP / SMS+SPP in Fig. 14.
type Composite struct {
	name  string
	parts []Prefetcher
}

// NewComposite combines parts under the given display name.
func NewComposite(name string, parts ...Prefetcher) *Composite {
	return &Composite{name: name, parts: parts}
}

// Name implements Prefetcher.
func (c *Composite) Name() string { return c.name }

// Train implements Prefetcher.
func (c *Composite) Train(a Access, ctx Context, dst []Request) []Request {
	for _, p := range c.parts {
		dst = p.Train(a, ctx, dst)
	}
	return dst
}

// StorageBits implements Prefetcher.
func (c *Composite) StorageBits() int {
	total := 0
	for _, p := range c.parts {
		total += p.StorageBits()
	}
	return total
}

// Parts returns the chained prefetchers.
func (c *Composite) Parts() []Prefetcher { return c.parts }

// ReportStats implements StatsReporter by concatenating each constituent's
// snapshots, so a composite like dspatch+spp reports per-model telemetry
// under the constituent names.
func (c *Composite) ReportStats() []prefstats.Stats {
	var out []prefstats.Stats
	for _, p := range c.parts {
		out = append(out, ReportStats(p)...)
	}
	return out
}
