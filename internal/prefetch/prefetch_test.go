package prefetch

import (
	"testing"

	"dspatch/internal/bitpattern"
	"dspatch/internal/memaddr"
)

func access(pc, line uint64) Access {
	return Access{PC: memaddr.PC(pc), Line: memaddr.Line(line)}
}

func TestNop(t *testing.T) {
	var n Nop
	if got := n.Train(access(1, 2), nil, nil); len(got) != 0 {
		t.Errorf("Nop emitted %v", got)
	}
	if n.StorageBits() != 0 || n.Name() != "none" {
		t.Error("Nop identity wrong")
	}
}

func TestStaticContext(t *testing.T) {
	c := StaticContext{Util: bitpattern.Q3}
	if c.BandwidthUtilization() != bitpattern.Q3 {
		t.Error("StaticContext did not return configured quartile")
	}
}

func TestStrideLearnsConstantStride(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	var got []Request
	// Stride of +2 lines from one PC; needs a few accesses to gain confidence.
	for i := 0; i < 8; i++ {
		got = s.Train(access(0x400, uint64(i*2)), nil, nil)
	}
	if len(got) == 0 {
		t.Fatal("no prefetches after confident stride")
	}
	want := memaddr.Line(7*2 + 2)
	if got[0].Line != want {
		t.Errorf("first prefetch = %d, want %d", got[0].Line, want)
	}
}

func TestStrideNegative(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	var got []Request
	for i := 20; i >= 10; i-- {
		got = s.Train(access(0x400, uint64(i)), nil, nil)
	}
	if len(got) == 0 {
		t.Fatal("no prefetches for negative stride")
	}
	if got[0].Line != 9 {
		t.Errorf("prefetch = %d, want 9", got[0].Line)
	}
}

func TestStrideDoesNotCrossPage(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	var got []Request
	// Approach the end of page 0 with stride +1.
	for i := 55; i < 64; i++ {
		got = s.Train(access(0x400, uint64(i)), nil, nil)
	}
	for _, r := range got {
		if r.Line.Page() != 0 {
			t.Errorf("prefetch %d crossed the page", r.Line)
		}
	}
}

func TestStrideDistinguishesPCs(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	// Interleave two PCs with different strides; both should learn.
	var a, b []Request
	for i := 0; i < 10; i++ {
		a = s.Train(access(0x100, uint64(i)), nil, nil)
		b = s.Train(access(0x200, uint64(1000+i*3)), nil, nil)
	}
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("both PCs should prefetch: %d, %d", len(a), len(b))
	}
	if a[0].Line != 10 {
		t.Errorf("PC1 prefetch = %d, want 10", a[0].Line)
	}
	if b[0].Line != 1000+9*3+3 {
		t.Errorf("PC2 prefetch = %d, want %d", b[0].Line, 1000+9*3+3)
	}
}

func TestStrideZeroDeltaIgnored(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	for i := 0; i < 6; i++ {
		s.Train(access(0x1, 10), nil, nil) // repeated same line
	}
	got := s.Train(access(0x1, 10), nil, nil)
	if len(got) != 0 {
		t.Errorf("repeated same-line accesses should not prefetch, got %v", got)
	}
}

func TestStreamFollowsDirection(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	var got []Request
	for i := 0; i < 4; i++ {
		got = s.Train(Access{Line: memaddr.Line(i), Hit: false}, nil, nil)
	}
	if len(got) != 4 {
		t.Fatalf("degree-4 streamer emitted %d", len(got))
	}
	for i, r := range got {
		if want := memaddr.Line(3 + 1 + i); r.Line != want {
			t.Errorf("prefetch[%d] = %d, want %d", i, r.Line, want)
		}
	}
}

func TestStreamIgnoresHits(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	s.Train(Access{Line: 0}, nil, nil)
	got := s.Train(Access{Line: 1, Hit: true}, nil, nil)
	if len(got) != 0 {
		t.Error("streamer should only train on misses")
	}
}

func TestStreamClipsAtPageEnd(t *testing.T) {
	s := NewStream(DefaultStreamConfig())
	s.Train(Access{Line: 61}, nil, nil)
	got := s.Train(Access{Line: 62}, nil, nil)
	for _, r := range got {
		if r.Line.Page() != 0 {
			t.Errorf("prefetch %d escaped the page", r.Line)
		}
	}
	if len(got) != 1 { // only line 63 fits
		t.Errorf("got %d prefetches, want 1", len(got))
	}
}

func TestCompositeConcatenatesAndSums(t *testing.T) {
	s1 := NewStream(StreamConfig{Streams: 4, Degree: 1})
	s2 := NewStream(StreamConfig{Streams: 4, Degree: 2})
	c := NewComposite("both", s1, s2)
	c.Train(Access{Line: 0}, nil, nil)
	got := c.Train(Access{Line: 1}, nil, nil)
	if len(got) != 3 { // 1 from s1, 2 from s2
		t.Errorf("composite emitted %d, want 3", len(got))
	}
	if c.StorageBits() != s1.StorageBits()+s2.StorageBits() {
		t.Error("composite storage should sum parts")
	}
	if c.Name() != "both" || len(c.Parts()) != 2 {
		t.Error("composite identity wrong")
	}
}

func TestStrideStorage(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	if s.StorageBits() <= 0 {
		t.Error("storage must be positive")
	}
	// 64 entries at ~61 bits each ≈ 0.5KB: sanity range.
	if kb := float64(s.StorageBits()) / 8192; kb > 1 {
		t.Errorf("stride storage %.2fKB implausibly large", kb)
	}
}
