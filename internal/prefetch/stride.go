package prefetch

import (
	"dspatch/internal/memaddr"
	"dspatch/internal/prefstats"
)

// StrideConfig parameterizes the PC-based stride prefetcher.
type StrideConfig struct {
	Entries   int // tracked PCs (64 in the paper's baseline)
	Degree    int // prefetches per trigger
	Distance  int // how many strides ahead the first prefetch lands
	ConfBits  uint
	ConfThres int // confidence needed before prefetching
}

// DefaultStrideConfig matches the paper's baseline L1 prefetcher: a PC-based
// stride prefetcher tracking 64 PCs.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{Entries: 64, Degree: 2, Distance: 1, ConfBits: 2, ConfThres: 2}
}

type strideEntry struct {
	tag      uint64
	lastLine memaddr.Line
	stride   int64
	conf     int
	valid    bool
}

// Stride is the PC-based stride prefetcher [38] the baseline runs at the L1
// cache. It learns a constant cache-line stride per PC and prefetches
// Degree lines ahead once confidence is established. Prefetches never cross
// a 4KB page boundary.
type Stride struct {
	cfg   StrideConfig
	table []strideEntry
	bits  uint // log2(Entries), precomputed: Train indexes per access

	// Telemetry: plain counters incremented on the Train hot path
	// (allocation-free), snapshotted by ReportStats.
	trains uint64 // Train calls observed
	allocs uint64 // table entries (re)allocated on PC tag miss
	issued uint64 // prefetch requests emitted
}

// NewStride builds a stride prefetcher.
func NewStride(cfg StrideConfig) *Stride {
	if cfg.Entries <= 0 || cfg.Entries&(cfg.Entries-1) != 0 {
		panic("prefetch: stride entries must be a power of two")
	}
	return &Stride{cfg: cfg, table: make([]strideEntry, cfg.Entries), bits: uint(log2(cfg.Entries))}
}

// Name implements Prefetcher.
func (s *Stride) Name() string { return "l1stride" }

// Train implements Prefetcher.
func (s *Stride) Train(a Access, _ Context, dst []Request) []Request {
	s.trains++
	idx := memaddr.FoldXOR(uint64(a.PC), s.bits)
	e := &s.table[idx]
	if !e.valid || e.tag != uint64(a.PC) {
		s.allocs++
		*e = strideEntry{tag: uint64(a.PC), lastLine: a.Line, valid: true}
		return dst
	}
	delta := int64(a.Line) - int64(e.lastLine)
	if delta == 0 {
		return dst
	}
	if delta == e.stride {
		if e.conf < (1<<s.cfg.ConfBits)-1 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = delta
		}
	}
	e.lastLine = a.Line
	if e.conf < s.cfg.ConfThres || e.stride == 0 {
		return dst
	}
	page := a.Line.Page()
	for i := 0; i < s.cfg.Degree; i++ {
		target := memaddr.Line(int64(a.Line) + e.stride*int64(s.cfg.Distance+i))
		if target.Page() != page {
			break // stay within the physical page
		}
		s.issued++
		dst = append(dst, Request{Line: target})
	}
	return dst
}

// ReportStats implements StatsReporter.
func (s *Stride) ReportStats() []prefstats.Stats {
	st := prefstats.New(s.Name())
	st.Count("trains", s.trains)
	st.Count("entry_allocs", s.allocs)
	st.Count("issued", s.issued)
	return []prefstats.Stats{st}
}

// StorageBits implements Prefetcher. Each entry: tag(16) + last line(36) +
// stride(7) + confidence.
func (s *Stride) StorageBits() int {
	return s.cfg.Entries * (16 + 36 + 7 + int(s.cfg.ConfBits))
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
