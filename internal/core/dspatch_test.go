package core

import (
	"testing"

	"dspatch/internal/bitpattern"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
)

func acc(pc, line uint64) prefetch.Access {
	return prefetch.Access{PC: memaddr.PC(pc), Line: memaddr.Line(line)}
}

var lowBW = prefetch.StaticContext{Util: bitpattern.Q0}
var midBW = prefetch.StaticContext{Util: bitpattern.Q2}
var highBW = prefetch.StaticContext{Util: bitpattern.Q3}

// visitPage touches page p at the given line offsets under trigger PC pc,
// returning any prefetches issued by the trigger access.
func visitPage(d *DSPatch, ctx prefetch.Context, p uint64, pc uint64, offsets []int) []prefetch.Request {
	var first []prefetch.Request
	for i, off := range offsets {
		out := d.Train(acc(pc, p*memaddr.LinesPage+uint64(off)), ctx, nil)
		if i == 0 {
			first = out
		}
	}
	return first
}

// trainPattern teaches DSPatch one footprint under one PC across many pages.
func trainPattern(d *DSPatch, ctx prefetch.Context, pages int, pc uint64, offsets []int) {
	for p := 0; p < pages; p++ {
		visitPage(d, ctx, uint64(p), pc, offsets)
	}
	d.Flush(ctx)
}

func TestDefaultConfigMatchesPaperStorage(t *testing.T) {
	d := New(DefaultConfig())
	bits := d.StorageBits()
	// Table 1: PB 64×(36+64+2×14)=8192 plus SPT 256×76=19456 → 27648 bits
	// ≈ 3.4KB with the listed fields (the paper quotes 3.6KB including
	// bookkeeping bits).
	kb := float64(bits) / 8192
	if kb < 3.0 || kb > 3.7 {
		t.Errorf("storage = %.2fKB, want ≈3.4–3.6KB", kb)
	}
	spt := 256 * 76
	if got := bits - spt; got != 64*(36+64+28) {
		t.Errorf("PB bits = %d, want %d", got, 64*(36+64+28))
	}
}

func TestLearnsAndReplaysFootprint(t *testing.T) {
	d := New(DefaultConfig())
	// Footprint within segment 0; trigger at 4.
	foot := []int{4, 6, 10, 20}
	trainPattern(d, lowBW, 10, 0x400, foot)
	out := visitPage(d, lowBW, 500, 0x400, []int{4})
	if len(out) == 0 {
		t.Fatal("trained trigger issued no prefetches")
	}
	want := map[memaddr.Line]bool{}
	for _, off := range foot[1:] {
		want[memaddr.Line(500*memaddr.LinesPage+uint64(off))] = true
	}
	covered := 0
	for _, r := range out {
		if want[r.Line] {
			covered++
		}
	}
	if covered < len(foot)-1 {
		t.Errorf("replay covered %d of %d footprint lines: %v", covered, len(foot)-1, out)
	}
	// 128B compression may add the paired neighbours (5, 7, 11, 21) but
	// nothing else.
	allowed := map[int]bool{}
	for _, off := range foot {
		allowed[off^1] = true
		allowed[off] = true
	}
	for _, r := range out {
		if !allowed[r.Line.PageOffset()] {
			t.Errorf("prefetch at unexpected offset %d", r.Line.PageOffset())
		}
	}
}

func TestAnchoringHandlesDifferentTriggerAlignment(t *testing.T) {
	// The same relative footprint starting at different page offsets should
	// still be predicted, because patterns are anchored to the trigger.
	d := New(DefaultConfig())
	// Note: with 128B compression, relative offsets survive anchoring
	// exactly when the trigger parity matches; use even offsets.
	rel := []int{0, 2, 6, 12}
	for p := 0; p < 12; p++ {
		base := (p * 2) % 16 // even trigger offsets 0..14
		offsets := make([]int, len(rel))
		for i, r := range rel {
			offsets[i] = base + r
		}
		visitPage(d, lowBW, uint64(p), 0xBEEF, offsets)
	}
	d.Flush(lowBW)
	out := visitPage(d, lowBW, 999, 0xBEEF, []int{8})
	if len(out) == 0 {
		t.Fatal("anchored replay issued no prefetches")
	}
	want := map[int]bool{}
	for _, r := range rel[1:] {
		want[8+r] = true
	}
	found := 0
	for _, r := range out {
		if want[r.Line.PageOffset()] {
			found++
		}
	}
	if found < len(rel)-1 {
		t.Errorf("anchored replay found %d of %d relative offsets: %v", found, len(rel)-1, out)
	}
}

func TestReorderedStreamsShareOnePattern(t *testing.T) {
	// Paper Fig. 2: temporally shuffled visits of the same footprint must
	// train the same anchored pattern — predictions keep working.
	d := New(DefaultConfig())
	perms := [][]int{
		{4, 8, 14, 22},
		{4, 14, 8, 22},
		{4, 22, 14, 8},
		{4, 8, 22, 14},
	}
	for p := 0; p < 12; p++ {
		visitPage(d, lowBW, uint64(p), 0x77, perms[p%len(perms)])
	}
	d.Flush(lowBW)
	out := visitPage(d, lowBW, 777, 0x77, []int{4})
	covered := map[int]bool{}
	for _, r := range out {
		covered[r.Line.PageOffset()] = true
	}
	for _, off := range []int{8, 14, 22} {
		if !covered[off] {
			t.Errorf("offset %d not predicted despite reordered training", off)
		}
	}
}

func TestCovPGrowsByOR(t *testing.T) {
	d := New(DefaultConfig())
	// Two alternating footprints with one trigger PC: CovP should become
	// their union.
	a := []int{0, 2, 4}
	b := []int{0, 8, 10}
	for p := 0; p < 6; p++ {
		if p%2 == 0 {
			visitPage(d, lowBW, uint64(p), 0x5, a)
		} else {
			visitPage(d, lowBW, uint64(p), 0x5, b)
		}
	}
	d.Flush(lowBW)
	out := visitPage(d, lowBW, 321, 0x5, []int{0})
	covered := map[int]bool{}
	for _, r := range out {
		covered[r.Line.PageOffset()] = true
	}
	for _, off := range []int{2, 4, 8, 10} {
		if !covered[off] {
			t.Errorf("CovP union missing offset %d (covered: %v)", off, covered)
		}
	}
}

func TestAccPFiltersThroughCovP(t *testing.T) {
	// AccP is replaced by program & CovP on every update (§3.6), so after
	// alternating footprints it equals the most recent generation's
	// footprint filtered through CovP — a strict subset of what CovP
	// predicts, never lines outside the last footprint's 128B pairs.
	d := New(DefaultConfig())
	a := []int{0, 2, 4, 8}
	b := []int{0, 2, 12, 14}
	for p := 0; p < 20; p++ {
		if p%2 == 0 {
			visitPage(d, lowBW, uint64(p), 0x6, a)
		} else {
			visitPage(d, lowBW, uint64(p), 0x6, b)
		}
	}
	d.Flush(lowBW) // last generation trained is b (p=19)
	out := visitPage(d, highBW, 654, 0x6, []int{0})
	if len(out) == 0 {
		t.Fatal("expected AccP prediction at Q3")
	}
	lastGen := map[int]bool{}
	for _, off := range b {
		lastGen[off] = true
		lastGen[off^1] = true // 128B compression pairs
	}
	for _, r := range out {
		if !lastGen[r.Line.PageOffset()] {
			t.Errorf("AccP predicted offset %d outside the last generation's footprint", r.Line.PageOffset())
		}
	}
}

func TestSelectionFollowsBandwidth(t *testing.T) {
	mk := func() *DSPatch {
		d := New(DefaultConfig())
		a := []int{0, 2, 4, 8}
		b := []int{0, 2, 12, 14}
		for p := 0; p < 20; p++ {
			if p%2 == 0 {
				visitPage(d, lowBW, uint64(p), 0x9, a)
			} else {
				visitPage(d, lowBW, uint64(p), 0x9, b)
			}
		}
		d.Flush(lowBW)
		return d
	}
	low := len(visitPage(mk(), lowBW, 1000, 0x9, []int{0}))
	high := len(visitPage(mk(), highBW, 1000, 0x9, []int{0}))
	if high >= low {
		t.Errorf("high-BW prediction (%d) should be narrower than low-BW (%d)", high, low)
	}
	if high == 0 {
		t.Error("high-BW with good AccP should still prefetch")
	}
}

func TestHighBWThrottlesWhenAccPBad(t *testing.T) {
	d := New(DefaultConfig())
	// Alternate between two large, nearly disjoint footprints. CovP becomes
	// their union (accuracy ~5/9, coverage 100%: no resets), while AccP
	// tracks the previous generation's footprint — which the next generation
	// contradicts (1 of 5 bits recur < 50%), so MeasureAccP saturates.
	foots := [][]int{{0, 2, 4, 8, 10}, {0, 16, 18, 24, 26}}
	for p := 0; p < 40; p++ {
		visitPage(d, lowBW, uint64(p), 0xA, foots[p%len(foots)])
	}
	d.Flush(lowBW)
	out := visitPage(d, highBW, 2000, 0xA, []int{0})
	if len(out) != 0 {
		t.Errorf("saturated MeasureAccP at Q3 should suppress prefetching, got %d", len(out))
	}
	if d.Stats().PredictionsNone == 0 {
		t.Error("expected PredictionsNone to be counted")
	}
}

func TestAccPSelfHealsToTriggerOnly(t *testing.T) {
	// With fully disjoint rotating footprints (sharing only the trigger),
	// AccP degenerates to the trigger's own 128B pair: a tiny but accurate
	// prediction that keeps MeasureAccP unsaturated. At Q3 DSPatch then
	// still prefetches — exactly one line (the trigger's pair).
	d := New(DefaultConfig())
	foots := [][]int{{0, 2, 4}, {0, 10, 12}, {0, 18, 20}, {0, 26, 28}}
	for p := 0; p < 40; p++ {
		visitPage(d, lowBW, uint64(p), 0xA1, foots[p%len(foots)])
	}
	d.Flush(lowBW)
	out := visitPage(d, highBW, 2100, 0xA1, []int{0})
	if len(out) != 1 {
		t.Fatalf("degenerate AccP should predict exactly the trigger pair, got %d", len(out))
	}
	if out[0].Line.PageOffset() != 1 {
		t.Errorf("predicted offset %d, want 1 (the trigger's 128B pair)", out[0].Line.PageOffset())
	}
}

func TestLowPriorityFillWhenCovPUntrusted(t *testing.T) {
	d := New(DefaultConfig())
	// Three disjoint small footprints rotating: CovP grows to their union
	// (coverage stays 100% → no relearn at low BW) but its accuracy is 3/7
	// < 50% every generation, so MeasureCovP saturates. Below 50% bandwidth
	// utilization DSPatch then fills its CovP prefetches at low priority.
	foots := [][]int{{0, 2, 4}, {0, 16, 18}, {0, 24, 26}}
	for p := 0; p < 30; p++ {
		visitPage(d, lowBW, uint64(p), 0xB, foots[p%len(foots)])
	}
	d.Flush(lowBW)
	out := visitPage(d, lowBW, 3000, 0xB, []int{0})
	if len(out) == 0 {
		t.Fatal("expected CovP prediction")
	}
	for _, r := range out {
		if !r.LowPriority {
			t.Errorf("prefetch %d should be low priority with untrusted CovP", r.Line)
		}
	}
}

func TestDualTriggerSecondSegment(t *testing.T) {
	d := New(DefaultConfig())
	// Train footprints that live in segment 1 with trigger offset 36.
	foot := []int{36, 38, 42, 50}
	trainPattern(d, lowBW, 10, 0xC, foot)
	// Fresh page, first touch lands directly in segment 1.
	out := visitPage(d, lowBW, 4000, 0xC, []int{36})
	if len(out) == 0 {
		t.Fatal("segment-1 trigger issued no prefetches")
	}
	covered := map[int]bool{}
	for _, r := range out {
		covered[r.Line.PageOffset()] = true
	}
	for _, off := range []int{38, 42, 50} {
		if !covered[off] {
			t.Errorf("segment-1 replay missing offset %d", off)
		}
	}
}

func TestSecondTriggerPredictsOnlyNearHalf(t *testing.T) {
	d := New(DefaultConfig())
	// Full-page footprint triggered in segment 1 at 40; the far half (which
	// wraps into segment 0) must not be predicted by a segment-1 trigger.
	foot := []int{40, 44, 48, 4, 8} // trigger 40; 4 and 8 are ~28 lines away (far half)
	trainPattern(d, lowBW, 10, 0xD, foot)
	out := visitPage(d, lowBW, 5000, 0xD, []int{40})
	for _, r := range out {
		off := r.Line.PageOffset()
		rel := (off - 40 + memaddr.LinesPage) % memaddr.LinesPage
		if rel >= memaddr.LinesSeg {
			t.Errorf("segment-1 trigger predicted far-half offset %d (rel %d)", off, rel)
		}
	}
}

func TestSingleTriggerAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DualTrigger = false
	d := New(cfg)
	foot := []int{36, 38, 42, 50}
	trainPattern(d, lowBW, 10, 0xE, foot)
	out := visitPage(d, lowBW, 6000, 0xE, []int{36})
	if len(out) != 0 {
		t.Errorf("single-trigger mode should not trigger on segment 1, got %d", len(out))
	}
}

func TestUncompressedMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Compress = false
	d := New(cfg)
	foot := []int{4, 7, 13} // odd neighbours stay distinct without compression
	trainPattern(d, lowBW, 10, 0xF, foot)
	out := visitPage(d, lowBW, 7000, 0xF, []int{4})
	got := map[int]bool{}
	for _, r := range out {
		got[r.Line.PageOffset()] = true
	}
	if !got[7] || !got[13] {
		t.Fatalf("uncompressed replay missing exact offsets: %v", got)
	}
	if got[5] || got[6] || got[12] {
		t.Errorf("uncompressed mode predicted neighbour lines: %v", got)
	}
	if d.StorageBits() <= New(DefaultConfig()).StorageBits() {
		t.Error("uncompressed storage should exceed compressed")
	}
}

func TestAblationModes(t *testing.T) {
	train := func(d *DSPatch) {
		foots := [][]int{{0, 2, 4, 8}, {0, 2, 12, 14}}
		for p := 0; p < 20; p++ {
			visitPage(d, lowBW, uint64(p), 0x10, foots[p%2])
		}
		d.Flush(lowBW)
	}
	always := New(Config{PBEntries: 64, SPTEntries: 256, Compress: true, DualTrigger: true,
		OrCountBits: 2, MeasureBits: 2, AccThr: bitpattern.Q2, CovThr: bitpattern.Q2, Mode: ModeAlwaysCovP})
	train(always)
	if out := visitPage(always, highBW, 900, 0x10, []int{0}); len(out) == 0 {
		t.Error("AlwaysCovP must predict even at Q3")
	}
	mod := New(Config{PBEntries: 64, SPTEntries: 256, Compress: true, DualTrigger: true,
		OrCountBits: 2, MeasureBits: 2, AccThr: bitpattern.Q2, CovThr: bitpattern.Q2, Mode: ModeModCovP})
	train(mod)
	if out := visitPage(mod, highBW, 900, 0x10, []int{0}); len(out) != 0 {
		t.Error("ModCovP must throttle at Q3")
	}
	if out := visitPage(mod, lowBW, 901, 0x10, []int{0}); len(out) == 0 {
		t.Error("ModCovP must predict below Q3")
	}
}

func TestModeNames(t *testing.T) {
	if New(DefaultConfig()).Name() != "dspatch" {
		t.Error("wrong full-mode name")
	}
	cfg := DefaultConfig()
	cfg.Mode = ModeAlwaysCovP
	if New(cfg).Name() != "dspatch-AlwaysCovP" {
		t.Error("wrong AlwaysCovP name")
	}
	cfg.Mode = ModeModCovP
	if New(cfg).Name() != "dspatch-ModCovP" {
		t.Error("wrong ModCovP name")
	}
}

func TestCompressionHistogram(t *testing.T) {
	d := New(DefaultConfig())
	// Page with perfectly pairable lines: zero compression error (bucket 0).
	visitPage(d, lowBW, 1, 0x11, []int{0, 1, 2, 3})
	// Page with isolated lines: 50% error (bucket 5).
	visitPage(d, lowBW, 2, 0x11, []int{0, 4, 8, 12})
	d.Flush(lowBW)
	h := d.Stats().CompressionHist
	if h[0] != 1 {
		t.Errorf("exact bucket = %d, want 1 (hist %v)", h[0], h)
	}
	if h[5] != 1 {
		t.Errorf("50%% bucket = %d, want 1 (hist %v)", h[5], h)
	}
}

func TestPBCapacityEviction(t *testing.T) {
	d := New(DefaultConfig())
	// Touch 100 distinct pages: only 64 PB entries → 36 evictions learn.
	for p := 0; p < 100; p++ {
		visitPage(d, lowBW, uint64(p), 0x12, []int{0, 2})
	}
	if ev := d.Stats().PageEvictions; ev != 100-64 {
		t.Errorf("PageEvictions = %d, want 36", ev)
	}
}

func TestTriggerCountsOncePerSegment(t *testing.T) {
	d := New(DefaultConfig())
	visitPage(d, lowBW, 1, 0x13, []int{0, 1, 2, 33, 34})
	if got := d.Stats().Triggers; got != 2 {
		t.Errorf("Triggers = %d, want 2 (one per segment)", got)
	}
}

func TestStatsPredictionsAccounted(t *testing.T) {
	d := New(DefaultConfig())
	trainPattern(d, lowBW, 10, 0x14, []int{0, 2, 4})
	visitPage(d, lowBW, 800, 0x14, []int{0})
	s := d.Stats()
	if s.PredictionsCovP == 0 {
		t.Error("expected CovP predictions at low BW")
	}
}

func TestBadSPTGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.SPTEntries = 100
	New(cfg)
}
