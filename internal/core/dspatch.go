// Package core implements DSPatch — the Dual Spatial Pattern Prefetcher of
// Bera, Nori, Mutlu and Subramoney (MICRO 2019) — the primary contribution
// this repository reproduces.
//
// DSPatch observes L1 misses per 4KB physical page in a small Page Buffer
// (PB). When a page generation ends (PB eviction), the accumulated access
// bit-pattern is anchored (rotated) to each trigger access and folded into a
// Signature Prediction Table (SPT) entry selected by a folded-XOR hash of
// the trigger PC. Each SPT entry stores two modulated patterns:
//
//   - CovP, coverage-biased: grown by ORing successive anchored program
//     patterns (at most three bit-adding ORs, tracked by 2-bit OrCount),
//   - AccP, accuracy-biased: replaced by program & CovP on every update,
//
// plus 2-bit goodness counters (MeasureCovP, MeasureAccP) per 2KB half. At
// prediction time the 2-bit DRAM bandwidth-utilization quartile broadcast by
// the memory controller selects CovP (low utilization), AccP (high
// utilization) or nothing (Fig. 10). Patterns are stored at 128B granularity
// (32 bits per page, §3.8) and each 2KB segment's first access may trigger:
// a segment-0 trigger predicts the whole page, a segment-1 trigger only the
// 2KB relative to itself (§3.7).
package core

import (
	"math/bits"

	"dspatch/internal/bitpattern"
	"dspatch/internal/idx"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
	"dspatch/internal/prefstats"
)

// Mode selects between the full DSPatch algorithm and the two ablation
// variants of paper Fig. 19.
type Mode int

// Modes.
const (
	// ModeFull is the complete algorithm with bandwidth-driven selection.
	ModeFull Mode = iota
	// ModeAlwaysCovP always predicts with the coverage-biased pattern,
	// ignoring bandwidth utilization.
	ModeAlwaysCovP
	// ModeModCovP predicts with CovP but throttles to nothing when
	// bandwidth utilization is in the highest quartile; it never uses AccP.
	ModeModCovP
)

func (m Mode) String() string {
	switch m {
	case ModeAlwaysCovP:
		return "AlwaysCovP"
	case ModeModCovP:
		return "ModCovP"
	default:
		return "DSPatch"
	}
}

// Config parameterizes DSPatch. DefaultConfig matches the paper (Table 1).
type Config struct {
	PBEntries  int // tracked pages (64)
	SPTEntries int // signature entries, tagless direct-mapped (256)

	// Compress stores patterns at 128B granularity, halving pattern storage
	// (§3.8). Disable only for the ablation study.
	Compress bool
	// DualTrigger enables the second (segment-1) trigger per page (§3.7).
	DualTrigger bool

	OrCountBits uint                // 2 → at most 3 bit-adding ORs
	MeasureBits uint                // 2-bit goodness counters
	AccThr      bitpattern.Quartile // accuracy threshold (50% → Q2)
	CovThr      bitpattern.Quartile // coverage threshold (50% → Q2)
	Mode        Mode

	// Reference selects the pre-optimization per-train bookkeeping: the
	// linear Page Buffer scan instead of the hashed page index. It exists so
	// the differential equivalence tests can prove the indexed fast path
	// bit-identical; simulations never set it.
	Reference bool
}

// DefaultConfig returns the paper's 3.6KB configuration.
func DefaultConfig() Config {
	return Config{
		PBEntries:   64,
		SPTEntries:  256,
		Compress:    true,
		DualTrigger: true,
		OrCountBits: 2,
		MeasureBits: 2,
		AccThr:      bitpattern.Q2,
		CovThr:      bitpattern.Q2,
		Mode:        ModeFull,
	}
}

// trigger records the first access to one 2KB segment of a tracked page.
type trigger struct {
	pcHash uint64 // folded-XOR of the trigger PC (the SPT index)
	off    int    // trigger line offset within the page [0,64)
	valid  bool
}

// pbEntry is one Page Buffer entry (Table 1: page number, 64b pattern, two
// trigger PC+offset pairs).
type pbEntry struct {
	page     memaddr.Page
	pattern  bitpattern.Pattern // 64b, absolute line offsets in the page
	triggers [memaddr.SegsPage]trigger
	valid    bool
	used     uint64
}

// sptEntry is one Signature Prediction Table entry (Table 1: CovP 32b,
// AccP 32b, and per-half OrCount/MeasureCovP/MeasureAccP 2b counters).
// Patterns live in trigger-anchored space: bit 0 is the trigger line. Half 0
// covers the 2KB relative to the trigger; half 1 the rest of the page.
type sptEntry struct {
	covP bitpattern.Pattern
	accP bitpattern.Pattern

	orCount    [2]bitpattern.SatCounter
	measureCov [2]bitpattern.SatCounter
	measureAcc [2]bitpattern.SatCounter
}

// Stats reports DSPatch-internal prediction behaviour. All counters are
// plain uint64s bumped on the Train path — incrementing them allocates
// nothing, so they stay on unconditionally.
type Stats struct {
	Triggers        uint64
	PredictionsCovP uint64 // trigger halves predicted with CovP
	PredictionsAccP uint64
	PredictionsNone uint64 // trigger halves suppressed by the selector
	PatternResets   uint64 // CovP relearn events
	PageEvictions   uint64 // PB generations ended (learn events)

	PBLookups uint64 // PB probes (one per train)
	PBHits    uint64 // probes that found the page already tracked

	// Per-reason selection counts: which branch of the Fig. 10 tree (or the
	// Fig. 19 ablation selector) chose each trigger half's pattern. The CovP/
	// AccP/None totals above are the sums of the matching reasons.
	SelCovPLowBW    uint64 // bw < Q2 → CovP (bandwidth is free)
	SelCovPQ2       uint64 // bw == Q2, CovP goodness holding → CovP
	SelAccPQ2       uint64 // bw == Q2, CovP measured bad → AccP
	SelAccPQ3       uint64 // bw == Q3, AccP goodness holding → AccP
	SelNoneQ3       uint64 // bw == Q3, AccP measured bad → suppress
	SelCovPAlways   uint64 // ModeAlwaysCovP ablation
	SelNoneThrottle uint64 // ModeModCovP ablation at Q3
	LowPriority     uint64 // CovP selections demoted to LRU-fill priority

	// BWQuartiles histograms the DRAM bandwidth-utilization quartile
	// observed at each prediction (one sample per trigger).
	BWQuartiles [4]uint64
	// DegreeHist buckets the number of prefetch requests each trigger
	// emitted: 0,1,2,3,4,5-8,9-16,17-32,33+.
	DegreeHist [9]uint64

	// CompressionHist buckets the per-page-generation misprediction rate
	// that 128B-granularity compression alone would cause (paper Fig. 11b):
	// exactly 0%, (0,12.5%], (12.5,25%], (25,37.5%], (37.5,50%), exactly 50%.
	CompressionHist [6]uint64
}

// DSPatch is one core's prefetcher instance. It implements
// prefetch.Prefetcher; train it on L1 misses observed at the L2.
type DSPatch struct {
	cfg   Config
	pb    []pbEntry
	spt   []sptEntry
	clock uint64
	stats Stats

	// pbPages mirrors pb[i].page for valid entries (an impossible sentinel
	// otherwise); the Reference-mode PB lookup scans this dense word array.
	pbPages []memaddr.Page
	// pbIdx is the O(1) page → PB-slot index the optimized lookup probes
	// instead of scanning pbPages. Both are maintained on every PB mutation
	// so either lookup path answers identically.
	pbIdx *idx.Table

	// Exact-LRU bookkeeping for the optimized victim choice. Touch stamps
	// (pb[i].used) are unique — the clock advances every train — so a
	// most-recent-first list ordered by touches IS the stamp order, and its
	// tail is precisely the entry the Reference-mode min-stamp scan finds.
	// While the PB is still filling, slots are handed out in index order
	// (pbFree), matching the scan's first-invalid-slot choice: entries only
	// invalidate all at once (Flush), so the invalid set is always a suffix.
	pbMRU  int32 // most recently touched slot: spatial streams revisit it
	pbHead int32 // list head (most recent), -1 when empty
	pbTail int32 // list tail (least recent), -1 when empty
	pbFree int32 // next never-used slot while filling
	pbPrev []int32
	pbNext []int32

	patW    int  // stored pattern width: 32 compressed, 64 uncompressed
	sptBits uint // log2(SPTEntries), precomputed for the per-trigger hash
}

// New builds a DSPatch instance.
func New(cfg Config) *DSPatch {
	if cfg.SPTEntries&(cfg.SPTEntries-1) != 0 {
		panic("core: SPT entries must be a power of two")
	}
	w := memaddr.LinesPage
	if cfg.Compress {
		w /= 2
	}
	d := &DSPatch{
		cfg:     cfg,
		pb:      make([]pbEntry, cfg.PBEntries),
		spt:     make([]sptEntry, cfg.SPTEntries),
		pbPages: make([]memaddr.Page, cfg.PBEntries),
		pbIdx:   idx.New(cfg.PBEntries),
		pbHead:  -1,
		pbTail:  -1,
		pbPrev:  make([]int32, cfg.PBEntries),
		pbNext:  make([]int32, cfg.PBEntries),
		patW:    w,
		sptBits: uint(log2(cfg.SPTEntries)),
	}
	for i := range d.pbPages {
		d.pbPages[i] = pbNoPage
	}
	for i := range d.spt {
		d.initEntry(&d.spt[i])
	}
	return d
}

// pbNoPage marks an invalid PB slot in the dense page array; physical page
// numbers never reach it.
const pbNoPage = ^memaddr.Page(0)

func (d *DSPatch) initEntry(e *sptEntry) {
	e.covP = bitpattern.New(d.patW)
	e.accP = bitpattern.New(d.patW)
	for h := 0; h < 2; h++ {
		e.orCount[h] = bitpattern.NewSatCounter(d.cfg.OrCountBits)
		e.measureCov[h] = bitpattern.NewSatCounter(d.cfg.MeasureBits)
		e.measureAcc[h] = bitpattern.NewSatCounter(d.cfg.MeasureBits)
	}
}

// Name implements prefetch.Prefetcher.
func (d *DSPatch) Name() string {
	if d.cfg.Mode != ModeFull {
		return "dspatch-" + d.cfg.Mode.String()
	}
	return "dspatch"
}

// Stats returns a copy of the internal counters.
func (d *DSPatch) Stats() Stats { return d.stats }

// sptIndex is the folded-XOR hash of the PC into the tagless SPT (§3.4).
func (d *DSPatch) sptIndex(pc memaddr.PC) uint64 {
	return memaddr.FoldXOR(uint64(pc), d.sptBits)
}

// Train implements prefetch.Prefetcher: observe one L1 miss, update the PB,
// and emit prefetches if this access triggers a segment.
func (d *DSPatch) Train(a prefetch.Access, ctx prefetch.Context, dst []prefetch.Request) []prefetch.Request {
	d.clock++
	page := a.Line.Page()
	off := a.Line.PageOffset()
	seg := a.Line.Segment()

	d.stats.PBLookups++
	slot := d.lookupPB(page)
	if slot >= 0 {
		d.stats.PBHits++
	} else {
		slot = d.allocPB(page, ctx) // may learn from the evicted generation
	}
	e := &d.pb[slot]
	e.used = d.clock
	if !d.cfg.Reference {
		d.pbTouch(int32(slot))
	}

	isTrigger := !e.triggers[seg].valid
	e.pattern = e.pattern.Set(off)
	if !isTrigger {
		return dst
	}
	if seg == 1 && !d.cfg.DualTrigger {
		// Single-trigger ablation: segment 1 never triggers, and its
		// accesses only accumulate into the page pattern.
		return dst
	}
	e.triggers[seg] = trigger{pcHash: d.sptIndex(a.PC), off: off, valid: true}
	d.stats.Triggers++
	return d.predict(page, e.triggers[seg], seg, ctx, dst)
}

// lookupPB returns the PB slot tracking page, or -1. The optimized path
// first checks the most recently touched slot — spatial streams deliver
// several consecutive trains to one page — and falls back to the hashed
// index; Reference mode scans the dense page array.
func (d *DSPatch) lookupPB(page memaddr.Page) int {
	if d.cfg.Reference {
		for i, pg := range d.pbPages {
			if pg == page {
				return i
			}
		}
		return -1
	}
	if m := d.pbMRU; d.pbPages[m] == page {
		return int(m)
	}
	if i, ok := d.pbIdx.Get(uint64(page)); ok {
		return i
	}
	return -1
}

// pbTouch moves slot i to the front of the recency list.
func (d *DSPatch) pbTouch(i int32) {
	d.pbMRU = i
	if d.pbHead == i {
		return
	}
	prev, next := d.pbPrev[i], d.pbNext[i]
	if prev >= 0 {
		d.pbNext[prev] = next
	}
	if next >= 0 {
		d.pbPrev[next] = prev
	}
	if d.pbTail == i {
		d.pbTail = prev
	}
	d.pbNext[i] = d.pbHead
	d.pbPrev[i] = -1
	if d.pbHead >= 0 {
		d.pbPrev[d.pbHead] = i
	}
	d.pbHead = i
	if d.pbTail < 0 {
		d.pbTail = i
	}
}

func (d *DSPatch) allocPB(page memaddr.Page, ctx prefetch.Context) int {
	var victim int
	switch {
	case d.cfg.Reference:
		oldest := ^uint64(0)
		for i := range d.pb {
			if !d.pb[i].valid {
				victim = i
				oldest = 0
				break
			}
			if d.pb[i].used < oldest {
				oldest, victim = d.pb[i].used, i
			}
		}
	case int(d.pbFree) < len(d.pb):
		// Filling phase: slots are issued in index order, exactly the
		// first-invalid-slot the reference scan picks (invalidation only
		// happens wholesale, so invalid slots are always a suffix).
		victim = int(d.pbFree)
		d.pbFree++
		i := int32(victim)
		d.pbNext[i] = d.pbHead
		d.pbPrev[i] = -1
		if d.pbHead >= 0 {
			d.pbPrev[d.pbHead] = i
		}
		d.pbHead = i
		if d.pbTail < 0 {
			d.pbTail = i
		}
	default:
		// Steady state: the recency-list tail is the min-stamp entry the
		// reference scan finds (stamps are unique and touch-ordered). The
		// caller's pbTouch moves it to the front.
		victim = int(d.pbTail)
	}
	if d.pb[victim].valid {
		d.learn(&d.pb[victim], ctx)
		d.pbIdx.Del(uint64(d.pb[victim].page))
	}
	d.pb[victim] = pbEntry{page: page, pattern: bitpattern.New(memaddr.LinesPage), valid: true}
	d.pbPages[victim] = page
	if !d.cfg.Reference {
		d.pbIdx.Put(uint64(page), victim)
	}
	return victim
}

// anchored converts the PB's absolute 64b program pattern into the stored
// representation for a given trigger: rotate so the trigger line is bit 0,
// then (optionally) compress to 128B granularity.
func (d *DSPatch) anchored(program bitpattern.Pattern, trigOff int) bitpattern.Pattern {
	p := program.Anchor(trigOff)
	if d.cfg.Compress {
		p = p.Compress()
	}
	return p
}

// halves splits a stored-width pattern into its near (relative 2KB) and far
// halves.
func halves(p bitpattern.Pattern) [2]bitpattern.Pattern {
	return [2]bitpattern.Pattern{p.Half(0), p.Half(1)}
}

// setHalf writes half h of dst from src (src has half width of dst).
func setHalf(dst, src bitpattern.Pattern, h int) bitpattern.Pattern {
	if h == 0 {
		return bitpattern.Concat(src, dst.Half(1))
	}
	return bitpattern.Concat(dst.Half(0), src)
}

// learn folds one finished page generation into the SPT (step 5 of Fig. 7).
func (d *DSPatch) learn(e *pbEntry, ctx prefetch.Context) {
	d.stats.PageEvictions++
	d.noteCompressionError(e.pattern)
	bw := bitpattern.Q0
	if ctx != nil {
		bw = ctx.BandwidthUtilization()
	}
	for seg := 0; seg < memaddr.SegsPage; seg++ {
		tr := e.triggers[seg]
		if !tr.valid {
			continue
		}
		prog := d.anchored(e.pattern, tr.off)
		ent := &d.spt[tr.pcHash]
		// A segment-0 trigger owns the whole page (both halves); a
		// segment-1 trigger only its trigger-relative 2KB (half 0).
		nHalves := 2
		if seg == 1 {
			nHalves = 1
		}
		d.updateEntry(ent, prog, nHalves, bw)
	}
}

// updateEntry applies the §3.6 modulation rules to one SPT entry given an
// observed anchored program pattern.
func (d *DSPatch) updateEntry(ent *sptEntry, prog bitpattern.Pattern, nHalves int, bw bitpattern.Quartile) {
	progH := halves(prog)
	covOldH := halves(ent.covP)
	accH := halves(ent.accP)
	for h := 0; h < nHalves; h++ {
		// Goodness measurement against the patterns as they stood.
		mCov := bitpattern.Compare(covOldH[h], progH[h])
		if mCov.AccuracyQ() < d.cfg.AccThr || mCov.CoverageQ() < d.cfg.CovThr {
			ent.measureCov[h].Inc()
		} else {
			ent.measureCov[h].Dec()
		}
		mAcc := bitpattern.Compare(accH[h], progH[h])
		if mAcc.AccuracyQ() < bitpattern.Q2 {
			ent.measureAcc[h].Inc()
		} else {
			ent.measureAcc[h].Dec()
		}

		// AccP: replaced by program & stored CovP as it stood before this
		// update's OR-growth — the paper's §3.6 modulation order.
		newAcc := progH[h].And(covOldH[h])
		ent.accP = setHalf(ent.accP, newAcc, h)

		// CovP: relearn from scratch when saturatedly bad and either the
		// bandwidth is peaking or coverage collapsed; otherwise OR-grow up
		// to the OrCount cap.
		switch {
		case ent.measureCov[h].Saturated() && (bw == bitpattern.Q3 || mCov.CoverageQ() < bitpattern.Q2):
			ent.covP = setHalf(ent.covP, progH[h], h)
			ent.orCount[h].Reset()
			ent.measureCov[h].Reset()
			d.stats.PatternResets++
		case !ent.orCount[h].Saturated():
			merged := covOldH[h].Or(progH[h])
			if !merged.Equal(covOldH[h]) {
				ent.orCount[h].Inc()
			}
			ent.covP = setHalf(ent.covP, merged, h)
		}
	}
}

// predict issues prefetches for a fresh trigger (steps 3–4 of Fig. 7).
func (d *DSPatch) predict(page memaddr.Page, tr trigger, seg int, ctx prefetch.Context, dst []prefetch.Request) []prefetch.Request {
	ent := &d.spt[tr.pcHash]
	bw := bitpattern.Q0
	if ctx != nil {
		bw = ctx.BandwidthUtilization()
	}
	d.stats.BWQuartiles[bw]++
	nHalves := 2
	if seg == 1 {
		nHalves = 1
	}
	covH := halves(ent.covP)
	accH := halves(ent.accP)
	halfW := d.patW / 2
	degreeStart := len(dst)
	for h := 0; h < nHalves; h++ {
		pat, lowPri, ok := d.selectPattern(ent, h, bw, covH[h], accH[h])
		if !ok || pat.Empty() {
			continue
		}
		if lowPri {
			d.stats.LowPriority++
		}
		if d.cfg.Compress {
			pat = pat.Expand()
		}
		// Translate anchored half-relative offsets back to page offsets:
		// anchored index i in half h is page line (trigger + h*32 + i) mod 64.
		// Walking the raw bits ascending emits the same order Offsets did,
		// without staging indices through a scratch array; base + i is
		// non-negative, so masking is exact for the mod.
		base := tr.off + h*halfW*expandFactor(d.cfg.Compress)
		for b := pat.Bits(); b != 0; b &= b - 1 {
			pageOff := (base + bits.TrailingZeros64(b)) & memaddr.OffsetMask
			if pageOff == tr.off {
				continue // the trigger line is the demand itself
			}
			dst = append(dst, prefetch.Request{Line: page.Line(pageOff), LowPriority: lowPri})
		}
	}
	d.stats.DegreeHist[degreeBucket(len(dst)-degreeStart)]++
	return dst
}

// degreeBucket maps a per-trigger request count onto DegreeHist's buckets:
// 0,1,2,3,4,5-8,9-16,17-32,33+.
func degreeBucket(n int) int {
	switch {
	case n <= 4:
		return n
	case n <= 8:
		return 5
	case n <= 16:
		return 6
	case n <= 32:
		return 7
	default:
		return 8
	}
}

func expandFactor(compress bool) int {
	if compress {
		return 2
	}
	return 1
}

// selectPattern implements the Fig. 10 selection tree (and the Fig. 19
// ablation modes) for one trigger half. It returns the chosen pattern, a
// low-priority-fill hint, and whether to prefetch at all.
func (d *DSPatch) selectPattern(ent *sptEntry, h int, bw bitpattern.Quartile, cov, acc bitpattern.Pattern) (bitpattern.Pattern, bool, bool) {
	switch d.cfg.Mode {
	case ModeAlwaysCovP:
		d.stats.PredictionsCovP++
		d.stats.SelCovPAlways++
		return cov, false, true
	case ModeModCovP:
		if bw == bitpattern.Q3 {
			d.stats.PredictionsNone++
			d.stats.SelNoneThrottle++
			return bitpattern.Pattern{}, false, false
		}
		d.stats.PredictionsCovP++
		d.stats.SelCovPAlways++
		return cov, false, true
	}
	switch {
	case bw == bitpattern.Q3:
		if ent.measureAcc[h].Saturated() {
			d.stats.PredictionsNone++
			d.stats.SelNoneQ3++
			return bitpattern.Pattern{}, false, false
		}
		d.stats.PredictionsAccP++
		d.stats.SelAccPQ3++
		return acc, false, true
	case bw == bitpattern.Q2:
		if ent.measureCov[h].Saturated() {
			d.stats.PredictionsAccP++
			d.stats.SelAccPQ2++
			return acc, false, true
		}
		d.stats.PredictionsCovP++
		d.stats.SelCovPQ2++
		return cov, false, true
	default:
		// Below 50% utilization: coverage pattern; fill at low priority if
		// its goodness counter says it has been inaccurate.
		d.stats.PredictionsCovP++
		d.stats.SelCovPLowBW++
		return cov, ent.measureCov[h].Saturated(), true
	}
}

// noteCompressionError records, for one finished page generation, the
// misprediction rate 128B compression alone would cause (Fig. 11b):
// extra lines predicted by expand(compress(P)) that P never touched,
// relative to the compressed prediction size.
func (d *DSPatch) noteCompressionError(program bitpattern.Pattern) {
	pred := program.Compress().Expand()
	extra := pred.AndNot(program).PopCount()
	total := pred.PopCount()
	if total == 0 {
		return
	}
	rate := 8 * extra / total // in eighths: 0..4 (max 50%)
	var bucket int
	switch {
	case extra == 0:
		bucket = 0
	case 2*extra == total:
		bucket = 5 // exactly 50%
	case rate < 1:
		bucket = 1 // (0, 12.5%]
	case rate < 2:
		bucket = 2 // (12.5, 25%]
	case rate < 3:
		bucket = 3 // (25, 37.5%]
	default:
		bucket = 4 // (37.5, 50%)
	}
	d.stats.CompressionHist[bucket]++
}

// Flush learns from every live PB entry, as if all pages aged out. Useful at
// the end of a simulation so short traces still train the SPT.
func (d *DSPatch) Flush(ctx prefetch.Context) {
	for i := range d.pb {
		if d.pb[i].valid {
			d.learn(&d.pb[i], ctx)
			d.pb[i].valid = false
			d.pbPages[i] = pbNoPage
		}
	}
	d.pbIdx.Reset()
	d.pbHead, d.pbTail, d.pbFree, d.pbMRU = -1, -1, 0, 0
}

// StorageBits implements prefetch.Prefetcher using the paper's Table 1
// accounting: PB entry = page(36) + pattern(64) + 2×(PC 8 + offset 6);
// SPT entry = CovP + AccP + 2×(OrCount + MeasureCovP + MeasureAccP).
func (d *DSPatch) StorageBits() int {
	pb := d.cfg.PBEntries * (36 + memaddr.LinesPage + 2*(8+6))
	per := 2*d.patW + 2*(int(d.cfg.OrCountBits)+2*int(d.cfg.MeasureBits))
	spt := d.cfg.SPTEntries * per
	return pb + spt
}

// Histogram bucket labels for ReportStats. The slices are shared read-only
// across snapshots.
var (
	bwQuartileBuckets  = []string{"q0", "q1", "q2", "q3"}
	degreeBuckets      = []string{"0", "1", "2", "3", "4", "5-8", "9-16", "17-32", "33+"}
	compressionBuckets = []string{
		"0%", "(0,12.5%]", "(12.5,25%]", "(25,37.5%]", "(37.5,50%)", "50%",
	}
)

// ReportStats implements prefetch.StatsReporter: a flat snapshot of the
// internal counters keyed by the paper's vocabulary (CovP/AccP selection
// reasons, bandwidth quartiles, trigger degree).
func (d *DSPatch) ReportStats() []prefstats.Stats {
	s := &d.stats
	st := prefstats.New(d.Name())
	st.Count("triggers", s.Triggers)
	st.Count("pb_lookups", s.PBLookups)
	st.Count("pb_hits", s.PBHits)
	st.Count("pb_evictions", s.PageEvictions)
	st.Count("pattern_resets", s.PatternResets)
	st.Count("sel_covp", s.PredictionsCovP)
	st.Count("sel_accp", s.PredictionsAccP)
	st.Count("sel_none", s.PredictionsNone)
	st.Count("sel_covp_low_bw", s.SelCovPLowBW)
	st.Count("sel_covp_q2", s.SelCovPQ2)
	st.Count("sel_accp_q2_covp_bad", s.SelAccPQ2)
	st.Count("sel_accp_q3", s.SelAccPQ3)
	st.Count("sel_none_q3_accp_bad", s.SelNoneQ3)
	st.Count("sel_covp_always", s.SelCovPAlways)
	st.Count("sel_none_q3_throttle", s.SelNoneThrottle)
	st.Count("low_priority_fills", s.LowPriority)
	st.Hist("bw_quartile", bwQuartileBuckets, s.BWQuartiles[:])
	st.Hist("prefetch_degree", degreeBuckets, s.DegreeHist[:])
	st.Hist("compression_mispred", compressionBuckets, s.CompressionHist[:])
	return []prefstats.Stats{st}
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
