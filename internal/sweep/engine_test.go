package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
)

// collect runs c and returns every emitted NDJSON line.
func collect(t *testing.T, e Engine, c Campaign) []string {
	t.Helper()
	var lines []string
	_, err := e.Run(context.Background(), c, func(line json.RawMessage) error {
		lines = append(lines, string(line))
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return lines
}

// stripSummaryTelemetry zeroes the summary record's non-deterministic fields
// (engine cache/sim deltas, elapsed time) so streams can be compared.
func stripSummaryTelemetry(t *testing.T, line string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("summary: %v", err)
	}
	delete(m, "engine")
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestCampaignDeterministicStream is the determinism suite: the same spec
// (and sampling seed) must yield a byte-identical NDJSON stream — modulo the
// summary's telemetry fields — across runs, worker counts and batch sizes.
func TestCampaignDeterministicStream(t *testing.T) {
	c := Campaign{
		Name: "det",
		Base: Point{Refs: 601},
		Axes: Axes{
			Workloads: []Mix{{"mcf"}, {"tpcc"}, {"linpack"}},
			Seeds:     []int64{1, 2},
			L2:        []string{"none", "spp", "bop"},
		},
		Sample: Sample{Strategy: StrategyRandom, Points: 12, Seed: 3},
	}
	runs := [][]string{
		collect(t, Engine{Workers: 1, BatchSize: 3}, c),
		collect(t, Engine{Workers: 4, BatchSize: 5}, c),
		collect(t, Engine{Workers: 2}, c),
	}
	for i := 1; i < len(runs); i++ {
		if len(runs[i]) != len(runs[0]) {
			t.Fatalf("run %d emitted %d records, run 0 emitted %d", i, len(runs[i]), len(runs[0]))
		}
		for k := range runs[0] {
			a, b := runs[0][k], runs[i][k]
			if k == len(runs[0])-1 {
				a, b = stripSummaryTelemetry(t, a), stripSummaryTelemetry(t, b)
			}
			if a != b {
				t.Errorf("run %d record %d differs:\n%s\n%s", i, k, a, b)
			}
		}
	}
	// Shape sanity: header, 12 points, summary.
	if len(runs[0]) != 14 {
		t.Fatalf("records = %d, want 14", len(runs[0]))
	}
}

// TestCampaignResumeSimulatesOnlyMissingPoints is the kill-and-resume proof:
// a campaign canceled partway is resubmitted and must re-simulate only the
// points the first run never finished — across both runs every distinct
// point simulates exactly once, and a third submission is a pure cache hit
// (engine sims delta zero). Asserted via the engine Counters ledger.
func TestCampaignResumeSimulatesOnlyMissingPoints(t *testing.T) {
	c := Campaign{
		Name: "resume",
		Base: Point{Refs: 733}, // distinctive refs: no other test shares these runs
		Axes: Axes{
			Workloads: []Mix{{"mcf"}, {"tpcc"}},
			Seeds:     []int64{21, 22, 23},
			L2:        []string{"none", "spp"},
		},
	}
	const totalPoints = 12 // every point is a distinct simulation

	// Run 1: kill the campaign after the first batch lands.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := Engine{Workers: 2, BatchSize: 4}
	c0 := experiments.EngineCounters()
	var firstLines []string
	_, err := eng.Run(ctx, c, func(line json.RawMessage) error {
		firstLines = append(firstLines, string(line))
		if bytes.Contains(line, []byte(`"type":"point"`)) {
			cancel() // "kill" as soon as the first batch of points lands
		}
		return nil
	})
	if err == nil {
		t.Fatal("canceled campaign returned nil error")
	}
	c1 := experiments.EngineCounters()
	simsFirst := c1.Sims - c0.Sims
	if simsFirst == 0 || simsFirst >= totalPoints {
		t.Fatalf("first (killed) run simulated %d of %d points; want a strict subset", simsFirst, totalPoints)
	}

	// Run 2: resubmit the identical campaign. Only the missing points may
	// simulate; everything the killed run completed comes from the memo.
	lines := collect(t, eng, c)
	c2 := experiments.EngineCounters()
	simsResumed := c2.Sims - c1.Sims
	if simsFirst+simsResumed != totalPoints {
		t.Errorf("sims first=%d + resumed=%d != %d: a cached point was re-simulated (or one was lost)",
			simsFirst, simsResumed, totalPoints)
	}

	// The killed run's partial stream must be a byte-identical prefix of the
	// resumed run's stream: resumption changes nothing but the work done.
	for i, line := range firstLines {
		if lines[i] != line {
			t.Errorf("resumed record %d differs from killed run's:\n%s\n%s", i, lines[i], line)
		}
	}

	// Run 3: fully cached — zero simulations.
	collect(t, eng, c)
	c3 := experiments.EngineCounters()
	if d := c3.Sims - c2.Sims; d != 0 {
		t.Errorf("fully-cached resubmission simulated %d points, want 0", d)
	}
	if hits := c3.MemoHits - c2.MemoHits; hits == 0 {
		t.Error("fully-cached resubmission recorded no memo hits")
	}
}

// TestCampaignDiskCacheResume proves resume-for-free across processes: with
// the persistent cache enabled and the in-process memo dropped (a process
// restart), a resubmitted campaign is served entirely from disk.
func TestCampaignDiskCacheResume(t *testing.T) {
	dir := t.TempDir()
	if err := experiments.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		experiments.SetCacheDir("")
		experiments.ResetMemo()
	})

	c := Campaign{
		Base: Point{Refs: 877}, // distinctive refs: runs unique to this test
		Axes: Axes{Workloads: []Mix{{"mcf"}, {"kmeans"}}, L2: []string{"none", "spp"}},
	}
	eng := Engine{Workers: 2}
	first := collect(t, eng, c)

	experiments.ResetMemo() // simulate a fresh process
	c0 := experiments.EngineCounters()
	second := collect(t, eng, c)
	c1 := experiments.EngineCounters()
	if d := c1.Sims - c0.Sims; d != 0 {
		t.Errorf("disk-cached resubmission simulated %d points, want 0", d)
	}
	if d := c1.DiskHits - c0.DiskHits; d == 0 {
		t.Error("disk-cached resubmission recorded no disk hits")
	}
	for i := range first[:len(first)-1] {
		if first[i] != second[i] {
			t.Errorf("disk-cached record %d differs:\n%s\n%s", i, first[i], second[i])
		}
	}
}

// TestCampaignReproducesFig4 is the acceptance check behind
// examples/campaign: Fig. 4 phrased as a campaign spec must render byte-
// identically to the registry experiment at the same scale.
func TestCampaignReproducesFig4(t *testing.T) {
	s := experiments.Quick()
	s.Refs = 1109
	s.PerCategory = 1
	ws := s.Workloads()
	pfs := []sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP}

	mixes := make([]Mix, len(ws))
	for i, w := range ws {
		mixes[i] = Mix{w.Name}
	}
	spec := Campaign{
		Name: "fig4",
		Base: Point{Refs: s.Refs, Seed: s.Seed},
		Axes: Axes{
			Workloads: mixes,
			L2:        []string{"none", "bop", "sms", "spp"},
		},
	}

	var recs []PointRecord
	eng := Engine{Workers: 2}
	if _, err := eng.Run(context.Background(), spec, func(line json.RawMessage) error {
		var rec PointRecord
		if json.Unmarshal(line, &rec) == nil && rec.Type == "point" && !rec.Baseline {
			recs = append(recs, rec)
		}
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(recs) != len(ws)*len(pfs) {
		t.Fatalf("non-baseline records = %d, want %d", len(recs), len(ws)*len(pfs))
	}

	// Fold the point stream into the registry's CategoryResult shape via the
	// shared helper (the same one examples/campaign renders with).
	res := CategoryResultFromPoints(ws, pfs, recs)

	const title = "Fig 4: BOP/SMS/SPP by category (1ch DDR4-2133)"
	var fromCampaign, fromRegistry bytes.Buffer
	experiments.FormatCategory(&fromCampaign, title, res)
	e, ok := experiments.ExperimentByID("fig4")
	if !ok {
		t.Fatal("fig4 not in registry")
	}
	e.Format(&fromRegistry, e.Run(s))
	if fromCampaign.String() != fromRegistry.String() {
		t.Errorf("campaign rendering differs from registry fig4:\n%s\n---\n%s",
			fromCampaign.String(), fromRegistry.String())
	}
}

// TestCampaignBaselineOutsideAxis: when the l2 axis does not include the
// baseline, hidden baseline jobs still give every point a speedup.
func TestCampaignBaselineOutsideAxis(t *testing.T) {
	c := Campaign{
		Base: Point{Refs: 557},
		Axes: Axes{Workloads: []Mix{{"mcf"}}, L2: []string{"spp", "bop"}},
	}
	lines := collect(t, Engine{Workers: 1}, c)
	var sum Summary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.BaselinePoints != 0 || sum.Points != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.GeomeanSpeedupPct == nil {
		t.Fatal("no aggregate speedup despite hidden baselines")
	}
	for _, line := range lines[1 : len(lines)-1] {
		var rec PointRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if len(rec.Speedup) != 1 {
			t.Errorf("point %d has no speedup: %s", rec.Index, line)
		}
	}
}

// TestCampaignMarginals: the summary's per-axis marginals cover exactly the
// swept axes (n >= 2) and every value label.
func TestCampaignMarginals(t *testing.T) {
	c := Campaign{
		Base: Point{Refs: 613},
		Axes: Axes{
			Workloads:    []Mix{{"mcf"}, {"tpcc"}},
			DRAMChannels: []int{1, 2},
			L2:           []string{"none", "spp"},
		},
	}
	lines := collect(t, Engine{Workers: 2}, c)
	var sum Summary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	wantAxes := map[string][]string{
		"workloads":     {"mcf", "tpcc"},
		"dram_channels": {"1", "2"},
		"l2":            {"spp"}, // baseline points carry no speedup
	}
	if len(sum.Marginals) != len(wantAxes) {
		t.Fatalf("marginal axes = %v", reflect.ValueOf(sum.Marginals).MapKeys())
	}
	for axis, labels := range wantAxes {
		got := sum.Marginals[axis]
		if len(got) != len(labels) {
			t.Errorf("marginals[%q] = %v, want labels %v", axis, got, labels)
			continue
		}
		for _, l := range labels {
			if _, ok := got[l]; !ok {
				t.Errorf("marginals[%q] missing %q: %v", axis, l, got)
			}
		}
	}
}

// TestCampaignStreamIdenticalWithBatchingDisabled is the scheduling-only
// proof for lockstep batching: the same campaign with the engine's batching
// toggled off must produce a byte-identical NDJSON stream — batching may
// change only how points are executed, never what is emitted.
func TestCampaignStreamIdenticalWithBatchingDisabled(t *testing.T) {
	c := Campaign{
		Name: "batch-ab",
		Base: Point{Refs: 613}, // distinctive refs: runs unique to this test
		Axes: Axes{
			Workloads: []Mix{{"mcf"}, {"tpcc"}},
			Seeds:     []int64{5, 6},
			L2:        []string{"none", "spp", "bop"},
		},
	}
	eng := Engine{Workers: 2, BatchSize: 5}
	batched := collect(t, eng, c)
	experiments.ResetMemo() // force the serial leg to actually re-simulate
	experiments.SetBatching(false)
	t.Cleanup(func() { experiments.SetBatching(true) })
	serial := collect(t, eng, c)
	if len(batched) != len(serial) {
		t.Fatalf("batched run emitted %d records, serial %d", len(batched), len(serial))
	}
	for i := range batched {
		a, b := batched[i], serial[i]
		if i == len(batched)-1 {
			a, b = stripSummaryTelemetry(t, a), stripSummaryTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs between -batch=true and -batch=false:\n%s\n%s", i, a, b)
		}
	}
}
