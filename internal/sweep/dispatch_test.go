package sweep

import (
	"testing"
	"time"
)

func newTestDispatcher(n int, cfg DispatchConfig) *Dispatcher {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = string(rune('a' + i))
	}
	return NewDispatcher(keys, cfg)
}

func TestDispatcherHappyPath(t *testing.T) {
	d := newTestDispatcher(3, DispatchConfig{})
	now := time.Unix(1000, 0)
	for want := 0; want < 3; want++ {
		pos, ok, _ := d.Next(now)
		if !ok || pos != want {
			t.Fatalf("Next = (%d, %v), want (%d, true)", pos, ok, want)
		}
		deadline := d.Lease(pos, "w0", now)
		if got := deadline.Sub(now); got != 60*time.Second {
			t.Fatalf("default lease TTL = %v, want 60s", got)
		}
		if !d.Complete(pos) {
			t.Fatalf("Complete(%d) = false", pos)
		}
	}
	if !d.Done() || d.Open() != 0 {
		t.Fatalf("Done = %v, Open = %d after completing all", d.Done(), d.Open())
	}
	c := d.Counters()
	if c.Dispatches != 3 || c.Redispatches != 0 || c.Drops != 0 {
		t.Fatalf("counters = %+v, want 3/0/0", c)
	}
}

func TestDispatcherRetryThenDrop(t *testing.T) {
	cfg := DispatchConfig{MaxAttempts: 3, BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second}
	d := newTestDispatcher(1, cfg)
	now := time.Unix(1000, 0)

	for attempt := 1; attempt <= 3; attempt++ {
		pos, ok, wake := d.Next(now)
		if !ok {
			// Backoff gate: not ready yet. Jump to the wake time.
			if wake.IsZero() || !wake.After(now) {
				t.Fatalf("attempt %d: not ready but wake=%v (now=%v)", attempt, wake, now)
			}
			now = wake
			pos, ok, _ = d.Next(now)
			if !ok {
				t.Fatalf("attempt %d: still not ready at wake time", attempt)
			}
		}
		if pos != 0 {
			t.Fatalf("attempt %d: pos = %d", attempt, pos)
		}
		d.Lease(pos, "w0", now)
		if got := d.Attempts(pos); got != attempt {
			t.Fatalf("Attempts = %d, want %d", got, attempt)
		}
		retry := d.Fail(pos, "worker error", now)
		if attempt < 3 && !retry {
			t.Fatalf("attempt %d: Fail reported no retry with attempts left", attempt)
		}
		if attempt == 3 && retry {
			t.Fatalf("attempt 3: Fail reported retry past MaxAttempts")
		}
	}
	if !d.Done() {
		t.Fatal("not Done after drop")
	}
	drops := d.Dropped()
	if len(drops) != 1 || drops[0].Pos != 0 || drops[0].Reason != "worker error" || drops[0].Attempts != 3 {
		t.Fatalf("Dropped = %+v", drops)
	}
	c := d.Counters()
	if c.Dispatches != 3 || c.Redispatches != 2 || c.Drops != 1 {
		t.Fatalf("counters = %+v, want 3/2/1", c)
	}
}

func TestDispatcherBackoffBoundsAndDeterminism(t *testing.T) {
	cfg := DispatchConfig{MaxAttempts: 8, BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second, Seed: 7}
	mkSchedule := func() []time.Duration {
		d := newTestDispatcher(1, cfg)
		now := time.Unix(1000, 0)
		var gaps []time.Duration
		for {
			pos, ok, wake := d.Next(now)
			if !ok {
				if wake.IsZero() {
					break // dropped
				}
				gaps = append(gaps, wake.Sub(now))
				now = wake
				continue
			}
			d.Lease(pos, "w0", now)
			d.Fail(pos, "kill", now)
		}
		return gaps
	}
	a, b := mkSchedule(), mkSchedule()
	if len(a) != cfg.MaxAttempts-1 {
		t.Fatalf("got %d backoff gaps, want %d", len(a), cfg.MaxAttempts-1)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic: gap %d = %v vs %v", i, a[i], b[i])
		}
		// Nominal delay for retry i+1 is base*2^i capped at max; jitter keeps
		// the actual gap within [0.75, 1.25) of it.
		nominal := cfg.BackoffBase << i
		if nominal > cfg.BackoffMax {
			nominal = cfg.BackoffMax
		}
		lo := time.Duration(float64(nominal) * 0.75)
		hi := time.Duration(float64(nominal) * 1.25)
		if a[i] < lo || a[i] >= hi {
			t.Fatalf("gap %d = %v outside jitter bounds [%v, %v)", i, a[i], lo, hi)
		}
	}
	// A different seed must shift at least one gap.
	cfg.Seed = 8
	c := mkSchedule()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed change did not perturb the jitter schedule")
	}
}

func TestDispatcherLateResultAfterExpiry(t *testing.T) {
	// A lease expires, the position is redispatched and completed elsewhere;
	// the original worker's late Complete/Fail must be a no-op.
	d := newTestDispatcher(1, DispatchConfig{BackoffBase: time.Millisecond})
	now := time.Unix(1000, 0)
	pos, _, _ := d.Next(now)
	d.Lease(pos, "w0", now)
	if retry := d.Fail(pos, "lease expired", now); !retry {
		t.Fatal("first failure should retry")
	}
	now = now.Add(time.Second)
	pos2, ok, _ := d.Next(now)
	if !ok || pos2 != pos {
		t.Fatalf("redispatch Next = (%d, %v)", pos2, ok)
	}
	d.Lease(pos2, "w1", now)
	if d.LastWorker(pos) != "w1" {
		t.Fatalf("LastWorker = %q, want w1", d.LastWorker(pos))
	}
	if !d.Complete(pos) {
		t.Fatal("Complete on w1's lease failed")
	}
	// Late arrivals from the expired w0 dispatch:
	if d.Complete(pos) {
		t.Fatal("double Complete accepted")
	}
	if d.Fail(pos, "late error", now) {
		t.Fatal("Fail after completion reported retry")
	}
	if !d.Done() || d.Counters().Drops != 0 {
		t.Fatalf("Done=%v drops=%d after late no-ops", d.Done(), d.Counters().Drops)
	}
}

func TestDispatcherNextPrefersLowestReady(t *testing.T) {
	d := newTestDispatcher(3, DispatchConfig{BackoffBase: time.Hour, BackoffMax: time.Hour})
	now := time.Unix(1000, 0)
	// Lease 0 and fail it (backing off an hour); 1 and 2 stay ready.
	pos, _, _ := d.Next(now)
	d.Lease(pos, "w0", now)
	d.Fail(pos, "err", now)
	pos, ok, _ := d.Next(now)
	if !ok || pos != 1 {
		t.Fatalf("Next = (%d, %v), want (1, true)", pos, ok)
	}
	d.Lease(1, "w0", now)
	pos, ok, _ = d.Next(now)
	if !ok || pos != 2 {
		t.Fatalf("Next = (%d, %v), want (2, true)", pos, ok)
	}
	d.Lease(2, "w0", now)
	// Nothing ready; position 0 gates an hour out.
	pos, ok, wake := d.Next(now)
	if ok || pos != -1 {
		t.Fatalf("Next = (%d, %v), want nothing ready", pos, ok)
	}
	if wake.IsZero() || wake.Sub(now) < 45*time.Minute {
		t.Fatalf("wake = %v, want ~1h out", wake.Sub(now))
	}
}
