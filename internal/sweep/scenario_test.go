package sweep

import (
	"strings"
	"testing"

	"dspatch/internal/trace"
)

func listSpec(name string, nodes int) trace.ScenarioSpec {
	return trace.ScenarioSpec{
		Name: name, Kind: trace.KindPointer,
		Pointer: &trace.PointerChaseConfig{Style: "list", Nodes: nodes, NodesPerPage: 8, Depth: 64, MeanGap: 10},
	}
}

func TestCampaignInlineScenarios(t *testing.T) {
	t.Cleanup(trace.ResetShared)
	c := Campaign{
		Base: Point{Refs: 1000},
		Axes: Axes{
			Workloads: []Mix{{"camp-inline-chase"}, {"mcf"}},
			L2:        []string{"none", "dspatch"},
		},
		Scenarios: []trace.ScenarioSpec{listSpec("camp-inline-chase", 2048)},
	}
	idxs, pts, err := c.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(idxs) != 4 {
		t.Fatalf("expanded %d points, want 4", len(idxs))
	}
	for _, p := range pts {
		if len(p.Scenarios) != 0 {
			t.Errorf("expanded point carries scenarios: %+v", p.Scenarios)
		}
	}
	// Idempotent: re-validating (the service does this on submission, then
	// again when the job runs) must not conflict with itself.
	if err := c.Validate(); err != nil {
		t.Fatalf("re-Validate: %v", err)
	}
	// A second campaign redefining the name differently must be rejected.
	c2 := c
	c2.Scenarios = []trace.ScenarioSpec{listSpec("camp-inline-chase", 4096)}
	if err := c2.Validate(); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("redefinition error = %v", err)
	}
}

func TestCampaignRejectsBaseScenarios(t *testing.T) {
	t.Cleanup(trace.ResetShared)
	c := Campaign{
		Base: Point{
			Workloads: []string{"mcf"},
			Scenarios: []trace.ScenarioSpec{listSpec("base-chase", 1024)},
		},
	}
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "base.scenarios") {
		t.Fatalf("error = %v, want base.scenarios rejection", err)
	}
}

func TestPointScenariosRegisterOnNormalize(t *testing.T) {
	t.Cleanup(trace.ResetShared)
	p := Point{
		Workloads: []string{"point-chase"},
		Scenarios: []trace.ScenarioSpec{listSpec("point-chase", 1024)},
	}
	if err := p.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if _, ok := trace.ByName("point-chase"); !ok {
		t.Fatal("scenario not registered")
	}
	// Re-normalizing (a worker receiving the same dispatched point twice) is
	// idempotent.
	if err := p.Normalize(); err != nil {
		t.Fatalf("re-Normalize: %v", err)
	}
	bad := Point{
		Workloads: []string{"mcf"},
		Scenarios: []trace.ScenarioSpec{{Name: "broken", Kind: "nope"}},
	}
	if err := bad.Normalize(); err == nil || !strings.Contains(err.Error(), "scenarios[0]") {
		t.Fatalf("invalid spec error = %v", err)
	}
}
