package sweep

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
)

// The campaign journal is the daemon's write-ahead log for campaign
// progress: a single append-only file per campaign under -store-dir that
// records the spec, every per-point terminal event (completed with its
// result-store key, or dropped with a reason), and finally a sealed summary.
// A daemon or coordinator that crashes mid-campaign replays the unsealed
// journal on restart: journaled completions are fed back through the
// Recorder straight from the ResultStore (zero dispatches, zero
// simulations), journaled drops re-drop, and only genuinely unfinished
// points run again — the resumed NDJSON stream is byte-identical to an
// uninterrupted run because the Recorder emits in canonical index order
// either way.
//
// Framing: an 8-byte magic header ("DSPJRNL1"), then frames of
//
//	u32 LE payload length | u32 LE CRC32-IEEE(payload) | payload (JSON)
//
// Every append is fsync'd before it is acknowledged. A torn tail — a frame
// cut short by the crash, or one whose CRC does not match — is truncated
// away on open; everything before it is trusted. The journal claims a point
// only after its results are durably in the ResultStore (Put before Done),
// so a replay either finds the result or safely re-runs the point.

// journalMagic identifies a campaign journal file and its framing version.
const journalMagic = "DSPJRNL1"

// maxJournalFrame bounds a single frame's payload so a corrupt length word
// cannot drive a multi-gigabyte allocation during scan.
const maxJournalFrame = 16 << 20

// Journal record types.
const (
	journalSpec = "spec" // first record: job ID + campaign spec
	journalDone = "done" // point completed; result key(s) durable in the store
	journalDrop = "drop" // point abandoned with a reason
	journalSeal = "seal" // campaign finished; summary retained
)

// journalRecord is the union payload of every frame.
type journalRecord struct {
	Type     string          `json:"type"`
	JobID    string          `json:"job,omitempty"`
	Campaign json.RawMessage `json:"campaign,omitempty"`
	Pos      int             `json:"pos,omitempty"`
	Key      string          `json:"key,omitempty"`
	Base     string          `json:"base,omitempty"`
	Reason   string          `json:"reason,omitempty"`
	Summary  json.RawMessage `json:"summary,omitempty"`
}

// DoneEvent is a journaled point completion: the ResultStore keys the
// replay fetches the point's own (and, for non-baseline points, baseline)
// results under.
type DoneEvent struct {
	Key  string
	Base string
}

// JournalState is everything a scan recovers from a journal file.
type JournalState struct {
	JobID    string
	Campaign Campaign
	Done     map[int]DoneEvent
	Dropped  map[int]string
	Sealed   bool
	// Summary is the sealed summary record, present only when Sealed.
	Summary json.RawMessage
}

// Journal is an open, appendable campaign journal. Methods must be called
// from one goroutine at a time (the Recorder already imposes that
// discipline on its caller).
type Journal struct {
	f    *os.File
	path string
}

// CreateJournal starts a fresh journal at path, writing the magic header
// and the spec record (job ID + campaign) as the first durable frame.
func CreateJournal(path, jobID string, c Campaign) (*Journal, error) {
	spec, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("sweep: journal spec: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: journal create: %w", err)
	}
	if _, err := f.Write([]byte(journalMagic)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("sweep: journal header: %w", err)
	}
	j := &Journal{f: f, path: path}
	if err := j.append(journalRecord{Type: journalSpec, JobID: jobID, Campaign: spec}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// OpenJournal reopens an existing journal for appending: it scans the file,
// truncates any torn tail, and positions the write cursor at the end of the
// last intact frame. The recovered state is returned alongside the journal.
func OpenJournal(path string) (*Journal, *JournalState, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: journal open: %w", err)
	}
	st, end, err := scanJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: journal truncate torn tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweep: journal seek: %w", err)
	}
	return &Journal{f: f, path: path}, st, nil
}

// ReadJournalState scans a journal read-only, tolerating a torn tail
// without modifying the file.
func ReadJournalState(path string) (*JournalState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: journal open: %w", err)
	}
	defer f.Close()
	st, _, err := scanJournal(f)
	return st, err
}

// scanJournal reads frames from the start of f, returning the recovered
// state and the byte offset just past the last intact frame. A torn or
// corrupt frame ends the scan silently — it is the crash's half-written
// tail. A bad magic header or an unparseable first record is an error: the
// file is not a journal.
func scanJournal(f *os.File) (*JournalState, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("sweep: journal seek: %w", err)
	}
	br := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(f, br); err != nil || !bytes.Equal(br, []byte(journalMagic)) {
		return nil, 0, fmt.Errorf("sweep: not a campaign journal (bad magic)")
	}
	st := &JournalState{
		Done:    map[int]DoneEvent{},
		Dropped: map[int]string{},
	}
	end := int64(len(journalMagic))
	var hdr [8]byte
	seenSpec := false
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // clean EOF or torn length word: tail ends here
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxJournalFrame {
			break // corrupt length: treat as torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // frame cut short by the crash
		}
		if crc32.ChecksumIEEE(payload) != want {
			break // payload damaged: everything from here is untrusted
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // valid CRC but unparseable JSON: stop trusting the tail
		}
		if !seenSpec {
			if rec.Type != journalSpec {
				return nil, 0, fmt.Errorf("sweep: journal first record is %q, want %q", rec.Type, journalSpec)
			}
			if err := json.Unmarshal(rec.Campaign, &st.Campaign); err != nil {
				return nil, 0, fmt.Errorf("sweep: journal campaign spec: %w", err)
			}
			st.JobID = rec.JobID
			seenSpec = true
		} else {
			switch rec.Type {
			case journalDone:
				st.Done[rec.Pos] = DoneEvent{Key: rec.Key, Base: rec.Base}
			case journalDrop:
				st.Dropped[rec.Pos] = rec.Reason
			case journalSeal:
				st.Sealed = true
				st.Summary = append(json.RawMessage(nil), rec.Summary...)
			}
		}
		end += int64(8 + n)
	}
	if !seenSpec {
		return nil, 0, fmt.Errorf("sweep: journal has no intact spec record")
	}
	return st, end, nil
}

// append frames, writes, and fsyncs one record. On a partial write the torn
// frame stays in the file — the next open truncates it away.
func (j *Journal) append(rec journalRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: journal marshal: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("sweep: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweep: journal fsync: %w", err)
	}
	return nil
}

// Done journals position pos as completed, with the ResultStore key its
// result is durably stored under (and the baseline partner's key for
// non-baseline points). Call only after the store Put succeeded: the
// journal must never claim a result the store cannot produce.
func (j *Journal) Done(pos int, key, baseKey string) error {
	return j.append(journalRecord{Type: journalDone, Pos: pos, Key: key, Base: baseKey})
}

// Drop journals position pos as abandoned.
func (j *Journal) Drop(pos int, reason string) error {
	return j.append(journalRecord{Type: journalDrop, Pos: pos, Reason: reason})
}

// Seal journals the campaign's summary record, marking the journal
// complete: a sealed journal is never resumed, only retained or reaped.
func (j *Journal) Seal(summary json.RawMessage) error {
	return j.append(journalRecord{Type: journalSeal, Summary: summary})
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file. The journal stays on disk.
func (j *Journal) Close() error { return j.f.Close() }

// Replay feeds the journal's terminal events through rec in ascending
// position order: completions are rehydrated from store (a store miss
// leaves the position unresolved — it simply re-runs), drops re-drop with
// their journaled reasons. It returns resolved[pos] == true for every
// position the replay settled, so the caller dispatches only the rest.
func (st *JournalState) Replay(rec *Recorder, store experiments.ResultStore) ([]bool, error) {
	if store == nil {
		return nil, fmt.Errorf("sweep: journal replay needs a result store")
	}
	resolved := make([]bool, rec.Len())
	for pos := 0; pos < rec.Len(); pos++ {
		if reason, ok := st.Dropped[pos]; ok {
			if err := rec.Drop(pos, reason); err != nil {
				return nil, err
			}
			resolved[pos] = true
			continue
		}
		ev, ok := st.Done[pos]
		if !ok {
			continue
		}
		self, found := store.Get(ev.Key)
		if !found {
			continue // store lost the result: re-run the point
		}
		var base *sim.Result
		if ev.Base != "" {
			b, found := store.Get(ev.Base)
			if !found {
				continue
			}
			base = &b
		}
		if err := rec.Complete(pos, self, base); err != nil {
			return nil, err
		}
		resolved[pos] = true
	}
	return resolved, nil
}
