package sweep

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
)

// recorderCampaign is a distinct spec (refs=659) so memo cross-talk with
// other tests can't mask a simulation.
func recorderCampaign() Campaign {
	return Campaign{
		Name: "rec",
		Base: Point{Refs: 659},
		Axes: Axes{
			Workloads: []Mix{{"mcf"}, {"tpcc"}},
			L2:        []string{"none", "spp"},
		},
	}
}

// runPoint simulates one point through the shared engine.
func runPoint(t *testing.T, p Point) sim.Result {
	t.Helper()
	res, err := experiments.RunJobs(context.Background(), []experiments.Job{p.Job()}, 1)
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	return res[0]
}

// TestRecorderOutOfOrderMatchesEngine feeds completions in reverse position
// order — the worst case a fleet can produce — and requires the stream to be
// byte-identical to Engine.Run's. This is the invariant the coordinator
// leans on: stream bytes are a pure function of the spec, not of scheduling.
func TestRecorderOutOfOrderMatchesEngine(t *testing.T) {
	c := recorderCampaign()
	want := collect(t, Engine{Workers: 2}, c)

	var got []string
	rec, err := NewRecorder(c, func(line json.RawMessage) error {
		got = append(got, string(line))
		return nil
	})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	for pos := rec.Len() - 1; pos >= 0; pos-- {
		self, base, hasBase := rec.Pair(pos)
		var basep *sim.Result
		if hasBase {
			r := runPoint(t, base)
			basep = &r
		}
		if err := rec.Complete(pos, runPoint(t, self), basep); err != nil {
			t.Fatalf("Complete(%d): %v", pos, err)
		}
	}
	if _, err := rec.Finish(nil); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	if len(got) != len(want) {
		t.Fatalf("recorder emitted %d records, engine %d", len(got), len(want))
	}
	for k := range want {
		a, b := want[k], got[k]
		if k == len(want)-1 {
			a, b = stripSummaryTelemetry(t, a), stripSummaryTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs:\nengine:   %s\nrecorder: %s", k, a, b)
		}
	}
}

// TestRecorderDropAccounting drops one position mid-stream: the stream must
// continue past it, the summary must list it under dropped_points with its
// reason, and nothing else about the surviving records may change.
func TestRecorderDropAccounting(t *testing.T) {
	c := recorderCampaign()
	var lines []string
	rec, err := NewRecorder(c, func(line json.RawMessage) error {
		lines = append(lines, string(line))
		return nil
	})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	n := rec.Len()
	if n < 3 {
		t.Fatalf("campaign too small: %d points", n)
	}
	dropPos := 1
	for pos := 0; pos < n; pos++ {
		if pos == dropPos {
			if err := rec.Drop(pos, "max attempts (4) exhausted: worker error"); err != nil {
				t.Fatalf("Drop: %v", err)
			}
			// A late completion for a dropped position must be ignored.
			if err := rec.Drop(pos, "other reason"); err != nil {
				t.Fatalf("second Drop: %v", err)
			}
			continue
		}
		self, base, hasBase := rec.Pair(pos)
		var basep *sim.Result
		if hasBase {
			r := runPoint(t, base)
			basep = &r
		}
		if err := rec.Complete(pos, runPoint(t, self), basep); err != nil {
			t.Fatalf("Complete(%d): %v", pos, err)
		}
	}
	sum, err := rec.Finish(&FleetSummary{Workers: 3, Dispatches: 7, Redispatches: 3})
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	// Header + (n-1) points + summary.
	if len(lines) != 1+(n-1)+1 {
		t.Fatalf("records = %d, want %d", len(lines), n+1)
	}
	for _, line := range lines[1 : len(lines)-1] {
		if strings.Contains(line, `"index":1,`) {
			t.Fatalf("dropped point leaked into the stream: %s", line)
		}
	}
	if len(sum.DroppedPoints) != 1 {
		t.Fatalf("DroppedPoints = %+v", sum.DroppedPoints)
	}
	dp := sum.DroppedPoints[0]
	if dp.Index != 1 || dp.Reason != "max attempts (4) exhausted: worker error" {
		t.Fatalf("dropped point = %+v", dp)
	}
	if sum.Fleet == nil || sum.Fleet.Workers != 3 || sum.Fleet.Redispatches != 3 {
		t.Fatalf("Fleet = %+v", sum.Fleet)
	}
	// The marshaled summary line carries both.
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"dropped_points":[`) || !strings.Contains(last, `"fleet":{`) {
		t.Fatalf("summary line missing fleet fields: %s", last)
	}
}

// TestRecorderFinishRefusesUnresolved ensures a wedged run can't silently
// lose points: Finish fails loudly while positions are unaccounted for.
func TestRecorderFinishRefusesUnresolved(t *testing.T) {
	rec, err := NewRecorder(recorderCampaign(), nil)
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	if _, err := rec.Finish(nil); err == nil {
		t.Fatal("Finish succeeded with every position unresolved")
	}
}

// TestRecorderResolutionIsFinal covers the dispatcher races a fleet can
// produce: a late Complete for a position already dropped (the lease expired,
// then the original worker answered anyway), a Drop for a position already
// completed (a stale retry path giving up after the point succeeded
// elsewhere), and a Drop for a position already flushed to the stream. Every
// one must be a silent no-op — first resolution wins, the stream and summary
// never change.
func TestRecorderResolutionIsFinal(t *testing.T) {
	c := recorderCampaign()
	var lines []string
	rec, err := NewRecorder(c, func(line json.RawMessage) error {
		lines = append(lines, string(line))
		return nil
	})
	if err != nil {
		t.Fatalf("NewRecorder: %v", err)
	}
	n := rec.Len()
	if n < 3 {
		t.Fatalf("campaign too small: %d points", n)
	}

	results := make([]sim.Result, n)
	bases := make([]*sim.Result, n)
	for pos := 0; pos < n; pos++ {
		self, base, hasBase := rec.Pair(pos)
		results[pos] = runPoint(t, self)
		if hasBase {
			r := runPoint(t, base)
			bases[pos] = &r
		}
	}

	// Position 0 completes and flushes immediately; a later Drop must not
	// touch it (the old bug appended it to dropped_points anyway).
	if err := rec.Complete(0, results[0], bases[0]); err != nil {
		t.Fatalf("Complete(0): %v", err)
	}
	if !rec.Resolved(0) {
		t.Fatal("flushed position 0 not Resolved")
	}
	flushedAt := len(lines)
	if err := rec.Drop(0, "stale retry gave up"); err != nil {
		t.Fatalf("Drop after flush: %v", err)
	}
	if len(lines) != flushedAt {
		t.Fatal("Drop of a flushed position emitted a record")
	}

	// Position 1 drops; a late Complete (the leased worker answering after
	// the lease expired) must not resurrect it.
	if err := rec.Drop(1, "max attempts (4) exhausted: lease expired"); err != nil {
		t.Fatalf("Drop(1): %v", err)
	}
	if err := rec.Complete(1, results[1], bases[1]); err != nil {
		t.Fatalf("late Complete after Drop: %v", err)
	}

	// Position 2 completes while pending (not yet flushable behind nothing —
	// it flushes right away after 0 and the dropped 1); a second Complete and
	// a Drop must both be no-ops.
	if err := rec.Complete(2, results[2], bases[2]); err != nil {
		t.Fatalf("Complete(2): %v", err)
	}
	if err := rec.Complete(2, results[2], bases[2]); err != nil {
		t.Fatalf("duplicate Complete(2): %v", err)
	}
	if err := rec.Drop(2, "duplicate give-up"); err != nil {
		t.Fatalf("Drop after Complete: %v", err)
	}

	for pos := 3; pos < n; pos++ {
		if err := rec.Complete(pos, results[pos], bases[pos]); err != nil {
			t.Fatalf("Complete(%d): %v", pos, err)
		}
	}
	sum, err := rec.Finish(nil)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}

	if len(sum.DroppedPoints) != 1 || sum.DroppedPoints[0].Index != 1 {
		t.Fatalf("DroppedPoints = %+v, want exactly index 1", sum.DroppedPoints)
	}
	// Header + (n-1) surviving points + summary; index 1 never appears.
	if len(lines) != 1+(n-1)+1 {
		t.Fatalf("records = %d, want %d", len(lines), n+1)
	}
	for _, line := range lines[1 : len(lines)-1] {
		if strings.Contains(line, `"index":1,`) {
			t.Fatalf("dropped point leaked into the stream: %s", line)
		}
	}
}
