package sweep

import (
	"math"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
	"dspatch/internal/stats"
	"dspatch/internal/trace"
)

// CategoryResultFromPoints folds a campaign's non-baseline point records
// into the CategoryResult shape the Fig. 4/12/14/17 registry functions
// return. recs must be the stream's single-lane point records in canonical
// campaign order for a sweep whose axes are the given workloads (outermost)
// and a baseline-plus-pfs l2 axis (innermost): that ordering feeds every
// per-category and overall pool the same ratio sequence the registry's
// categorySweep aggregates, so the folded result renders byte-identically.
// examples/campaign and the sweep tests share it to pin that equivalence.
func CategoryResultFromPoints(ws []trace.Workload, pfs []sim.PF, recs []PointRecord) experiments.CategoryResult {
	catOf := map[string]trace.Category{}
	for _, w := range ws {
		catOf[w.Name] = w.Category
	}
	res := experiments.CategoryResult{Prefetchers: pfs, Categories: trace.Categories}
	perCat := make([]map[trace.Category][]float64, len(pfs))
	all := make([][]float64, len(pfs))
	for i := range pfs {
		perCat[i] = map[trace.Category][]float64{}
	}
	for k, rec := range recs {
		i := k % len(pfs) // l2 is the innermost axis
		ratio := rec.Speedup[0]
		cat := catOf[rec.Point.Workloads[0]]
		perCat[i][cat] = append(perCat[i][cat], ratio)
		all[i] = append(all[i], ratio)
	}
	for i := range pfs {
		var row []float64
		for _, cat := range res.Categories {
			if len(perCat[i][cat]) == 0 {
				row = append(row, math.NaN())
			} else {
				row = append(row, stats.GeomeanSpeedupPct(perCat[i][cat]))
			}
		}
		res.Delta = append(res.Delta, row)
		kept, dropped := stats.FiniteRatios(all[i])
		res.Dropped += dropped
		res.Geomean = append(res.Geomean, stats.GeomeanSpeedupPct(kept))
	}
	return res
}
