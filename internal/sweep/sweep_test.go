package sweep

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestMixUnmarshalStringOrArray(t *testing.T) {
	var a Axes
	if err := json.Unmarshal([]byte(`{"workloads":["mcf",["mcf","tpcc"]]}`), &a); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	want := []Mix{{"mcf"}, {"mcf", "tpcc"}}
	if !reflect.DeepEqual(a.Workloads, want) {
		t.Errorf("workloads = %v, want %v", a.Workloads, want)
	}
}

// TestExpandCanonicalOrder pins the documented expansion order: workloads
// outermost, l2 innermost, so point indices are stable across runs, front
// ends and releases.
func TestExpandCanonicalOrder(t *testing.T) {
	c := Campaign{
		Base: Point{Refs: 1000},
		Axes: Axes{
			Workloads: []Mix{{"mcf"}, {"tpcc"}},
			L2:        []string{"none", "spp"},
		},
	}
	idxs, pts, err := c.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	order := make([]string, len(pts))
	for i, p := range pts {
		order[i] = p.Workloads[0] + "/" + p.L2
		if idxs[i] != int64(i) {
			t.Errorf("grid index %d = %d", i, idxs[i])
		}
	}
	want := []string{"mcf/none", "mcf/spp", "tpcc/none", "tpcc/spp"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	// Points are normalized: the single-thread machine defaults are filled.
	if pts[0].LLCBytes != 2<<20 || pts[0].DRAMChannels != 1 || pts[0].DRAMMTps != 2133 || pts[0].Seed != 1 {
		t.Errorf("point not normalized: %+v", pts[0])
	}
}

// TestExpandMultiLaneDefaults: a 4-lane mix point normalizes to the paper's
// multi-programmed machine.
func TestExpandMultiLaneDefaults(t *testing.T) {
	c := Campaign{
		Base: Point{Refs: 1000},
		Axes: Axes{Workloads: []Mix{{"mcf", "tpcc", "linpack", "kmeans"}}},
	}
	_, pts, err := c.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if pts[0].LLCBytes != 8<<20 || pts[0].DRAMChannels != 2 {
		t.Errorf("multi-lane defaults not applied: %+v", pts[0])
	}
}

func TestExpandValidation(t *testing.T) {
	base := Axes{Workloads: []Mix{{"mcf"}}}
	cases := []struct {
		name string
		c    Campaign
		want string
	}{
		{"no workloads", Campaign{}, "at least one workload"},
		{"unknown workload", Campaign{Axes: Axes{Workloads: []Mix{{"nope"}}}}, "unknown workload"},
		{"unknown strategy", Campaign{Axes: base, Sample: Sample{Strategy: "zigzag"}}, "unknown sample.strategy"},
		{"random without points", Campaign{Axes: base, Sample: Sample{Strategy: StrategyRandom}}, "sample.points > 0"},
		{"negative max points", Campaign{Axes: base, MaxPoints: -1}, "max_points"},
		{"unknown baseline", Campaign{Axes: base, BaselineL2: "warp"}, "baseline_l2"},
		{"pollution rejected", Campaign{Base: Point{TrackPollution: true}, Axes: base}, "track_pollution"},
		{"grid over cap", Campaign{
			Axes:      Axes{Workloads: []Mix{{"mcf"}, {"tpcc"}}, Seeds: []int64{1, 2, 3}},
			MaxPoints: 5,
		}, "raise max_points or use random sampling"},
		{"bad axis value", Campaign{Axes: Axes{Workloads: []Mix{{"mcf"}}, DRAMMTps: []int{123}}}, "dram_mtps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestRandomSamplingReproducible: a seeded draw selects the same sorted
// index subset every time, and a different seed (on a grid this size) a
// different one.
func TestRandomSamplingReproducible(t *testing.T) {
	mk := func(seed int64) Campaign {
		return Campaign{
			Axes: Axes{
				Workloads: []Mix{{"mcf"}, {"tpcc"}, {"linpack"}, {"kmeans"}},
				Seeds:     []int64{1, 2, 3, 4, 5, 6, 7, 8},
				L2:        []string{"none", "spp", "bop", "sms"},
			},
			Sample: Sample{Strategy: StrategyRandom, Points: 10, Seed: seed},
		}
	}
	c := mk(7)
	if g := c.GridSize(); g != 128 {
		t.Fatalf("grid = %d, want 128", g)
	}
	i1, p1, err := c.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	cAgain := mk(7)
	i2, p2, err := cAgain.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if !reflect.DeepEqual(i1, i2) || !reflect.DeepEqual(p1, p2) {
		t.Errorf("same seed sampled differently: %v vs %v", i1, i2)
	}
	if len(i1) != 10 {
		t.Fatalf("sampled %d, want 10", len(i1))
	}
	for k := 1; k < len(i1); k++ {
		if i1[k-1] >= i1[k] {
			t.Fatalf("indices not strictly ascending: %v", i1)
		}
	}
	cOther := mk(8)
	i3, _, err := cOther.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if reflect.DeepEqual(i1, i3) {
		t.Errorf("different seeds drew the same sample: %v", i1)
	}
}

// TestRandomSampleCoveringGridDegradesToGrid: asking for at least as many
// points as the grid holds returns the whole grid.
func TestRandomSampleCoveringGridDegradesToGrid(t *testing.T) {
	c := Campaign{
		Axes:   Axes{Workloads: []Mix{{"mcf"}, {"tpcc"}}},
		Sample: Sample{Strategy: StrategyRandom, Points: 99},
	}
	idxs, _, err := c.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if !reflect.DeepEqual(idxs, []int64{0, 1}) {
		t.Errorf("indices = %v, want [0 1]", idxs)
	}
}
