// Package sweep turns the repo's hand-coded figure functions inside out: a
// declarative campaign names the axes of a parameter sweep and the engine
// expands it into simulation jobs on the shared experiment engine, so any
// multi-axis question — speedup across bandwidth levels, storage budgets,
// core counts, prefetcher pairings — is a JSON spec instead of a new Go
// function. Every point flows through the experiment engine's worker pool,
// in-process memo and persistent disk cache, which makes interrupted
// campaigns resumable for free: re-submitting a half-finished campaign
// re-simulates only the missing points.
//
// # Campaign spec schema
//
// A campaign is a single JSON object:
//
//	{
//	  "name": "bandwidth-sweep",            // optional label, echoed in records
//	  "base": {                             // optional: fixed Point fields applied to every point
//	    "refs": 40000, "seed": 1
//	  },
//	  "axes": {                             // each axis lists the values to sweep; empty/absent
//	    "workloads": ["mcf", ["a","b"]],    //   axes inherit the base value. workloads entries are
//	    "seeds": [1, 2, 3],                 //   mixes: a string is a 1-lane mix, an array is a
//	    "refs": [20000, 40000],             //   multi-programmed mix (up to 8 lanes).
//	    "llc_bytes": [1048576, 2097152],
//	    "dram_channels": [1, 2],
//	    "dram_mtps": [1600, 2133, 2400],
//	    "sms_pht_entries": [256, 16384],
//	    "l2": ["none", "bop", "sms", "spp"]
//	  },
//	  "sample": {                           // optional; default full grid
//	    "strategy": "random",               // "grid" (default) or "random"
//	    "points": 64,                       // random: sample size (required)
//	    "seed": 7                           // random: sampling seed (default 1, reproducible)
//	  },
//	  "baseline_l2": "none",                // default "none": each point's speedup is computed
//	                                        //   against the same point with l2 = baseline_l2
//	  "max_points": 1000,                   // optional cap; a grid larger than it is an error
//	  "scenarios": [                        // optional: ad-hoc scenario specs this campaign's
//	    {"name": "my-chase", "kind": "pointer",      // workload names may reference; registered
//	     "pointer": {"style": "list", "nodes": 4096, // strictly before expansion (redefining an
//	      "nodes_per_page": 8, "depth": 256,         // existing workload differently is an error,
//	      "mean_gap": 12}}                           // identical re-registration is a no-op)
//	  ]
//	}
//
// Expansion order is canonical and documented: workloads, seeds, refs,
// llc_bytes, dram_channels, dram_mtps, sms_pht_entries, l2 — outermost
// first, l2 fastest — so the same spec always yields the same point indices,
// and random sampling (a seeded draw of grid indices, emitted in ascending
// index order) is reproducible byte for byte.
//
// # Result stream
//
// The engine emits NDJSON records as points complete, never buffering the
// whole grid: one "campaign" header, one "point" record per point in index
// order, and a final "summary" record with per-axis marginal geomean
// speedups and dropped-point accounting. Point records are a pure function
// of the spec (byte-identical across runs and front ends); only the summary
// carries timing and cache-hit telemetry.
package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// HardMaxPoints bounds any campaign's expanded point count, whatever the
// spec says: the engine materializes sampled points (not the grid), but
// records and marginal pools are O(points).
const HardMaxPoints = 1 << 16

// Strategy names for Sample.Strategy.
const (
	StrategyGrid   = "grid"
	StrategyRandom = "random"
)

// Mix is one workloads-axis value: a workload mix of 1..8 lanes. It
// unmarshals from either a bare string ("mcf", a 1-lane mix) or an array of
// names (["a","b","c","d"], the paper's multi-programmed machine).
type Mix []string

// UnmarshalJSON accepts "name" or ["name", ...].
func (m *Mix) UnmarshalJSON(data []byte) error {
	t := strings.TrimSpace(string(data))
	if strings.HasPrefix(t, `"`) {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		*m = Mix{s}
		return nil
	}
	var ws []string
	if err := json.Unmarshal(data, &ws); err != nil {
		return err
	}
	*m = Mix(ws)
	return nil
}

// Axes names the swept dimensions of a campaign. An empty axis is not swept:
// every point inherits that field from Campaign.Base (or its Normalize
// default).
type Axes struct {
	Workloads     []Mix    `json:"workloads,omitempty"`
	Seeds         []int64  `json:"seeds,omitempty"`
	Refs          []int    `json:"refs,omitempty"`
	LLCBytes      []int    `json:"llc_bytes,omitempty"`
	DRAMChannels  []int    `json:"dram_channels,omitempty"`
	DRAMMTps      []int    `json:"dram_mtps,omitempty"`
	SMSPHTEntries []int    `json:"sms_pht_entries,omitempty"`
	L2            []string `json:"l2,omitempty"`
}

// Sample selects how the axis grid is turned into points.
type Sample struct {
	// Strategy is "grid" (every combination, the default) or "random" (a
	// seeded, reproducible draw of Points distinct grid indices).
	Strategy string `json:"strategy,omitempty"`
	// Points is the random sample size (ignored for grid).
	Points int `json:"points,omitempty"`
	// Seed drives the random draw (default 1). The same spec and seed always
	// select the same points.
	Seed int64 `json:"seed,omitempty"`
}

// Campaign is a declarative parameter sweep; see the package comment for the
// JSON schema.
type Campaign struct {
	Name string `json:"name,omitempty"`
	// Base supplies the fixed fields of every point. Fields also named by an
	// axis are overwritten per point.
	Base Point `json:"base,omitempty"`
	Axes Axes  `json:"axes"`
	// Sample defaults to the full grid.
	Sample Sample `json:"sample,omitempty"`
	// BaselineL2 designates the prefetcher whose runs serve as each point's
	// speedup baseline (default "none"). Points whose own l2 equals it are
	// emitted as baseline records with no speedup field.
	BaselineL2 string `json:"baseline_l2,omitempty"`
	// MaxPoints optionally caps the campaign (and bounds a grid strategy:
	// a larger grid is an error, pointing at random sampling).
	MaxPoints int `json:"max_points,omitempty"`
	// Scenarios defines ad-hoc scenario specs scoped to this campaign: they
	// are validated and registered before expansion, making their names
	// available to Base.Workloads and the workloads axis. Registration is
	// strict — redefining an existing workload with different content is an
	// error — and idempotent, so re-validating or resubmitting the same
	// campaign (including journal-resume after a daemon restart) is safe.
	Scenarios []trace.ScenarioSpec `json:"scenarios,omitempty"`
}

// axis is one expansion dimension: n values, applied to a point by index.
// Axes with n == 1 and no values (unswept) apply nothing.
type axis struct {
	name  string
	n     int
	set   func(p *Point, i int)
	label func(i int) string
}

// axes returns the campaign's dimensions in canonical expansion order,
// outermost first. Unswept axes appear with n = 1 so the mixed-radix index
// arithmetic stays uniform.
func (c *Campaign) axes() []axis {
	one := func(p *Point, i int) {}
	mk := func(name string, n int, set func(p *Point, i int), label func(i int) string) axis {
		if n == 0 {
			return axis{name: name, n: 1, set: one, label: func(int) string { return "" }}
		}
		return axis{name: name, n: n, set: set, label: label}
	}
	a := c.Axes
	return []axis{
		mk("workloads", len(a.Workloads),
			func(p *Point, i int) { p.Workloads = append([]string(nil), a.Workloads[i]...) },
			func(i int) string { return strings.Join(a.Workloads[i], "+") }),
		mk("seeds", len(a.Seeds),
			func(p *Point, i int) { p.Seed = a.Seeds[i] },
			func(i int) string { return strconv.FormatInt(a.Seeds[i], 10) }),
		mk("refs", len(a.Refs),
			func(p *Point, i int) { p.Refs = a.Refs[i] },
			func(i int) string { return strconv.Itoa(a.Refs[i]) }),
		mk("llc_bytes", len(a.LLCBytes),
			func(p *Point, i int) { p.LLCBytes = a.LLCBytes[i] },
			func(i int) string { return strconv.Itoa(a.LLCBytes[i]) }),
		mk("dram_channels", len(a.DRAMChannels),
			func(p *Point, i int) { p.DRAMChannels = a.DRAMChannels[i] },
			func(i int) string { return strconv.Itoa(a.DRAMChannels[i]) }),
		mk("dram_mtps", len(a.DRAMMTps),
			func(p *Point, i int) { p.DRAMMTps = a.DRAMMTps[i] },
			func(i int) string { return strconv.Itoa(a.DRAMMTps[i]) }),
		mk("sms_pht_entries", len(a.SMSPHTEntries),
			func(p *Point, i int) { p.SMSPHTEntries = a.SMSPHTEntries[i] },
			func(i int) string { return strconv.Itoa(a.SMSPHTEntries[i]) }),
		mk("l2", len(a.L2),
			func(p *Point, i int) { p.L2 = a.L2[i] },
			func(i int) string { return a.L2[i] }),
	}
}

// GridSize returns the full cross-product size of the axes (1 for an
// axis-free campaign: the base point alone), saturating at MaxInt64 for
// grids too large to count — expansion rejects those before any sampling.
func (c *Campaign) GridSize() int64 {
	total, err := c.gridSizeChecked()
	if err != nil {
		return math.MaxInt64
	}
	return total
}

// gridSizeChecked is GridSize with overflow surfaced: a partial product must
// never be used as a sampling bound, or random draws would silently exclude
// the inner axes' combinations.
func (c *Campaign) gridSizeChecked() (int64, error) {
	total := int64(1)
	for _, ax := range c.axes() {
		n := int64(ax.n)
		if total > math.MaxInt64/n {
			return 0, fmt.Errorf("sweep: grid size overflows int64; shrink the axes")
		}
		total *= n
	}
	return total, nil
}

// cap returns the campaign's effective point cap.
func (c *Campaign) cap() int {
	if c.MaxPoints > 0 && c.MaxPoints < HardMaxPoints {
		return c.MaxPoints
	}
	return HardMaxPoints
}

// baselineL2 returns the designated baseline prefetcher name.
func (c *Campaign) baselineL2() string {
	if c.BaselineL2 != "" {
		return c.BaselineL2
	}
	return string(sim.PFNone)
}

// point materializes grid index idx into a normalized Point.
func (c *Campaign) point(idx int64) (Point, error) {
	p := c.Base
	p.Workloads = append([]string(nil), c.Base.Workloads...)
	axes := c.axes()
	for i := len(axes) - 1; i >= 0; i-- {
		ax := axes[i]
		ax.set(&p, int(idx%int64(ax.n)))
		idx /= int64(ax.n)
	}
	if err := p.Normalize(); err != nil {
		return p, err
	}
	return p, nil
}

// indices returns the sorted grid indices the campaign's sampling strategy
// selects. Grid returns every index; random draws Sample.Points distinct
// indices with a seeded generator (Floyd's algorithm, so huge grids are
// never materialized) and sorts them so emission order is canonical.
func (c *Campaign) indices() ([]int64, error) {
	total, err := c.gridSizeChecked()
	if err != nil {
		return nil, err
	}
	switch c.Sample.Strategy {
	case "", StrategyGrid:
		if total > int64(c.cap()) {
			return nil, fmt.Errorf("sweep: grid has %d points, cap is %d; raise max_points or use random sampling", total, c.cap())
		}
		out := make([]int64, total)
		for i := range out {
			out[i] = int64(i)
		}
		return out, nil
	case StrategyRandom:
		k := c.Sample.Points
		if k <= 0 {
			return nil, fmt.Errorf("sweep: random sampling requires sample.points > 0")
		}
		if k > c.cap() {
			return nil, fmt.Errorf("sweep: sample.points %d exceeds cap %d", k, c.cap())
		}
		if int64(k) >= total {
			// Sample covers the grid: degenerate to the full grid.
			out := make([]int64, total)
			for i := range out {
				out[i] = int64(i)
			}
			return out, nil
		}
		seed := c.Sample.Seed
		if seed == 0 {
			seed = 1
		}
		r := rand.New(rand.NewSource(seed))
		// Floyd's F2: k distinct values in [0, total) without materializing
		// the grid; deterministic for a fixed seed.
		chosen := make(map[int64]struct{}, k)
		for j := total - int64(k); j < total; j++ {
			t := r.Int63n(j + 1)
			if _, ok := chosen[t]; ok {
				t = j
			}
			chosen[t] = struct{}{}
		}
		out := make([]int64, 0, k)
		for idx := range chosen {
			out = append(out, idx)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	default:
		return nil, fmt.Errorf("sweep: unknown sample.strategy %q (want %q or %q)",
			c.Sample.Strategy, StrategyGrid, StrategyRandom)
	}
}

// Expand validates the campaign and materializes its sampled points in
// canonical order, returning the points alongside their grid indices.
func (c *Campaign) Expand() ([]int64, []Point, error) {
	if c.BaselineL2 != "" && !sim.KnownPF(sim.PF(c.BaselineL2)) {
		return nil, nil, fmt.Errorf("sweep: baseline_l2: unknown prefetcher %q", c.BaselineL2)
	}
	if len(c.Base.Scenarios) > 0 {
		// Scenarios belong in the campaign-level block so stored point records
		// stay spec-free and byte-identical across front ends.
		return nil, nil, fmt.Errorf("sweep: base.scenarios is not allowed; use the campaign-level \"scenarios\" block")
	}
	for i := range c.Scenarios {
		if _, err := trace.RegisterSpec(c.Scenarios[i]); err != nil {
			return nil, nil, fmt.Errorf("sweep: scenarios[%d]: %w", i, err)
		}
	}
	if c.MaxPoints < 0 {
		return nil, nil, fmt.Errorf("sweep: max_points must be non-negative, got %d", c.MaxPoints)
	}
	if c.Sample.Points < 0 {
		return nil, nil, fmt.Errorf("sweep: sample.points must be non-negative, got %d", c.Sample.Points)
	}
	idxs, err := c.indices()
	if err != nil {
		return nil, nil, err
	}
	pts := make([]Point, len(idxs))
	for i, idx := range idxs {
		p, err := c.point(idx)
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: point %d: %w", idx, err)
		}
		if p.TrackPollution {
			// Pollution-tracking runs bypass the engine memo, which would
			// break the resume-for-free guarantee; keep them out of campaigns.
			return nil, nil, fmt.Errorf("sweep: point %d: track_pollution is not supported in campaigns", idx)
		}
		pts[i] = p
	}
	return idxs, pts, nil
}

// Validate checks the campaign without keeping the expansion.
func (c *Campaign) Validate() error {
	_, _, err := c.Expand()
	return err
}
