package sweep

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"
)

// The Dispatcher is the bookkeeping half of fault-tolerant fleet execution:
// pure state-machine accounting for which campaign positions are pending,
// leased to a worker, completed, or dropped. It owns the retry policy —
// capped attempts, exponential backoff with deterministic jitter — while the
// coordinator (internal/service) owns the I/O: it asks Next for work, leases
// it, and reports Complete or Fail. Keeping the policy free of I/O and
// clocks (every method takes `now`) makes the whole failure path unit
// testable without spinning up a fleet.

// Dispatch states of a position.
const (
	stateReady  = iota // awaiting dispatch (possibly backing off)
	stateLeased        // held by a worker under a lease deadline
	stateDone          // result recorded
	stateDropped
)

// DispatchConfig bounds the retry policy. Zero fields take the defaults.
type DispatchConfig struct {
	// MaxAttempts is the total number of dispatches a position may consume
	// before it is dropped (default 4: one try, three retries).
	MaxAttempts int
	// BackoffBase is the delay before the first retry (default 250ms);
	// each further retry doubles it, capped at BackoffMax (default 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// LeaseTTL is how long a worker may hold a position before the
	// coordinator treats the dispatch as expired (default 60s).
	LeaseTTL time.Duration
	// Seed perturbs the jitter schedule. Jitter is derived from
	// (key, attempt, seed) — never from a clock or global RNG — so a retry
	// schedule is reproducible run to run.
	Seed uint64
}

func (c DispatchConfig) withDefaults() DispatchConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 60 * time.Second
	}
	return c
}

// DispatchCounters is the dispatcher's telemetry.
type DispatchCounters struct {
	Dispatches   uint64 // leases granted
	Redispatches uint64 // failures that went back to the pending set
	Drops        uint64 // positions abandoned after MaxAttempts
}

// A DroppedPos reports a position abandoned after exhausting its attempts,
// carrying the final failure reason.
type DroppedPos struct {
	Pos      int
	Reason   string
	Attempts int
}

type dispatchEntry struct {
	state      int
	attempts   int       // dispatches consumed so far
	readyAt    time.Time // earliest next dispatch (backoff gate)
	lastWorker string
	reason     string // final failure reason once dropped
}

// Dispatcher tracks positions 0..n-1 through dispatch, retry, and drop.
// It is not concurrency-safe: the coordinator serializes access from its
// event loop.
type Dispatcher struct {
	cfg     DispatchConfig
	keys    []string // canonical per-position keys; jitter input
	entries []dispatchEntry
	open    int // positions not yet done or dropped
	ctr     DispatchCounters
}

// NewDispatcher tracks one position per key. Keys should be the positions'
// canonical identities (the campaign points' cache keys): they seed the
// deterministic jitter, and two runs of one spec share a retry schedule.
func NewDispatcher(keys []string, cfg DispatchConfig) *Dispatcher {
	return &Dispatcher{
		cfg:     cfg.withDefaults(),
		keys:    keys,
		entries: make([]dispatchEntry, len(keys)),
		open:    len(keys),
	}
}

// Next returns the lowest ready position. When nothing is ready but backoff
// gates will open later, ok is false and wake is the earliest gate; when
// every open position is leased (or none remain), wake is zero.
func (d *Dispatcher) Next(now time.Time) (pos int, ok bool, wake time.Time) {
	pos = -1
	for i := range d.entries {
		e := &d.entries[i]
		if e.state != stateReady {
			continue
		}
		if !e.readyAt.After(now) {
			return i, true, time.Time{}
		}
		if wake.IsZero() || e.readyAt.Before(wake) {
			wake = e.readyAt
		}
	}
	return -1, false, wake
}

// Lease hands position pos to worker, returning the lease deadline. It
// panics if pos is not ready: leasing is only valid straight after Next.
func (d *Dispatcher) Lease(pos int, worker string, now time.Time) time.Time {
	e := &d.entries[pos]
	if e.state != stateReady {
		panic(fmt.Sprintf("sweep: lease of position %d in state %d", pos, e.state))
	}
	e.state = stateLeased
	e.attempts++
	e.lastWorker = worker
	d.ctr.Dispatches++
	return now.Add(d.cfg.LeaseTTL)
}

// Complete resolves a leased position successfully. It reports false (and
// changes nothing) if the position was already resolved — a late result
// after a lease expiry redispatch must not double-count.
func (d *Dispatcher) Complete(pos int) bool {
	e := &d.entries[pos]
	if e.state != stateLeased {
		return false
	}
	e.state = stateDone
	d.open--
	return true
}

// Fail reports a failed dispatch of a leased position — worker error, shed,
// lease expiry; the dispatcher doesn't care which, that's the unified
// failure path. With attempts left the position returns to the pending set
// behind a backoff gate and Fail reports retry=true; otherwise it is
// dropped with reason. Failing an already-resolved position is a no-op.
func (d *Dispatcher) Fail(pos int, reason string, now time.Time) (retry bool) {
	e := &d.entries[pos]
	if e.state != stateLeased {
		return false
	}
	if e.attempts >= d.cfg.MaxAttempts {
		e.state = stateDropped
		e.reason = reason
		d.ctr.Drops++
		d.open--
		return false
	}
	e.state = stateReady
	e.readyAt = now.Add(d.backoff(pos, e.attempts))
	d.ctr.Redispatches++
	return true
}

// backoff is the delay before attempt attempts+1: BackoffBase doubled per
// prior retry, capped, then jittered by a factor in [0.75, 1.25) derived
// from (key, attempt, seed) so schedules are reproducible but desynchronized
// across positions.
func (d *Dispatcher) backoff(pos, attempts int) time.Duration {
	delay := d.cfg.BackoffBase
	for i := 1; i < attempts && delay < d.cfg.BackoffMax; i++ {
		delay *= 2
	}
	if delay > d.cfg.BackoffMax {
		delay = d.cfg.BackoffMax
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", d.keys[pos], attempts, d.cfg.Seed)
	frac := float64(h.Sum64()%1000) / 1000.0 // [0,1)
	return time.Duration(float64(delay) * (0.75 + 0.5*frac))
}

// LastWorker reports the worker holding (or last to hold) pos, so the
// coordinator can steer a retry elsewhere.
func (d *Dispatcher) LastWorker(pos int) string { return d.entries[pos].lastWorker }

// Attempts reports how many dispatches pos has consumed.
func (d *Dispatcher) Attempts(pos int) int { return d.entries[pos].attempts }

// Leased reports whether pos is currently held by a worker.
func (d *Dispatcher) Leased(pos int) bool { return d.entries[pos].state == stateLeased }

// Done reports whether every position is resolved (completed or dropped).
func (d *Dispatcher) Done() bool { return d.open == 0 }

// Open reports how many positions are still unresolved.
func (d *Dispatcher) Open() int { return d.open }

// Counters returns the dispatch telemetry accumulated so far.
func (d *Dispatcher) Counters() DispatchCounters { return d.ctr }

// Dropped lists abandoned positions in position order.
func (d *Dispatcher) Dropped() []DroppedPos {
	var out []DroppedPos
	for i := range d.entries {
		e := &d.entries[i]
		if e.state == stateDropped {
			out = append(out, DroppedPos{Pos: i, Reason: e.reason, Attempts: e.attempts})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
