package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
	"dspatch/internal/stats"
)

// Header is the first NDJSON record of a campaign stream: the resolved shape
// of the sweep. It is a pure function of the spec.
type Header struct {
	Type       string `json:"type"` // "campaign"
	Name       string `json:"name,omitempty"`
	Strategy   string `json:"strategy"`
	Grid       int64  `json:"grid"`   // full cross-product size
	Points     int    `json:"points"` // points this campaign will emit
	BaselineL2 string `json:"baseline_l2"`
}

// Metrics is the per-point slice of sim.Result a campaign reports (live port
// state and pollution fractions are not part of the stream).
type Metrics struct {
	IPC              []float64 `json:"ipc"`
	Cycles           uint64    `json:"cycles"`
	Coverage         float64   `json:"coverage"`
	MispredRate      float64   `json:"mispred_rate"`
	Accuracy         float64   `json:"accuracy"`
	AvgBandwidthGBps float64   `json:"avg_bw_gbps"`
	PeakBandwidth    float64   `json:"peak_bw_gbps"`
}

func metricsOf(r sim.Result) Metrics {
	return Metrics{
		IPC:              r.IPC,
		Cycles:           r.Cycles,
		Coverage:         r.Coverage,
		MispredRate:      r.MispredRate,
		Accuracy:         r.Accuracy,
		AvgBandwidthGBps: r.AvgBandwidthGBps,
		PeakBandwidth:    r.PeakBandwidth,
	}
}

// PointRecord is one completed point. Records are emitted in canonical index
// order and are byte-identical across runs of the same spec: they carry no
// timing or cache provenance.
type PointRecord struct {
	Type  string `json:"type"` // "point"
	Index int64  `json:"index"`
	Point Point  `json:"point"`
	// Metrics of this point's own run.
	Metrics Metrics `json:"metrics"`
	// Speedup holds per-lane IPC ratios against the baseline partner (this
	// point with l2 = baseline_l2); absent on baseline points.
	Speedup []float64 `json:"speedup,omitempty"`
	// Baseline marks points whose own l2 is the designated baseline.
	Baseline bool `json:"baseline,omitempty"`
}

// EngineDelta is the experiment-engine work this campaign run caused —
// the resumability ledger: a fully-cached resubmission shows Sims == 0.
type EngineDelta struct {
	Sims     uint64 `json:"sims"`
	MemoHits uint64 `json:"memo_hits"`
	DiskHits uint64 `json:"disk_hits"`
}

// Summary is the final NDJSON record: cross-point aggregation plus run
// telemetry. Everything except Engine and ElapsedMS is deterministic.
type Summary struct {
	Type           string `json:"type"` // "summary"
	Name           string `json:"name,omitempty"`
	Points         int    `json:"points"`
	BaselinePoints int    `json:"baseline_points"`
	// Dropped counts degenerate lane ratios (zero/non-finite speedups)
	// excluded from every aggregate below.
	Dropped int `json:"dropped"`
	// GeomeanSpeedupPct aggregates every non-baseline lane ratio; absent
	// when the campaign had none (all-baseline sweeps).
	GeomeanSpeedupPct *float64 `json:"geomean_speedup_pct,omitempty"`
	// Marginals[axis][value] is the geomean speedup (%) of the non-baseline
	// points carrying that axis value — one marginal per swept axis.
	Marginals map[string]map[string]float64 `json:"marginals,omitempty"`
	// Engine and ElapsedMS are telemetry, not results: they differ between a
	// cold run and a resumed one.
	Engine    EngineDelta `json:"engine"`
	ElapsedMS int64       `json:"elapsed_ms"`
}

// Engine executes campaigns on the process-shared experiment engine.
// The zero value is ready to use.
type Engine struct {
	// Workers is the simulation parallelism per batch (0 = GOMAXPROCS).
	Workers int
	// BatchSize bounds how many points are in flight per experiments.RunJobs
	// call — the streaming granularity (0 = a multiple of Workers). Results
	// are identical at any batch size.
	BatchSize int
}

func (e *Engine) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	w := e.Workers
	if w <= 0 {
		w = 8
	}
	b := 4 * w
	if b < 16 {
		b = 16
	}
	if b > 256 {
		b = 256
	}
	return b
}

// Run expands c and simulates every point, calling emit with each marshaled
// NDJSON record (header, points in index order, summary) as it becomes
// available. Batches of points flow through experiments.RunJobs, so every
// point shares the engine's memo and persistent disk cache with every other
// front end — a resubmitted campaign re-simulates only points the caches
// have never seen. A non-nil error from emit or ctx aborts the campaign.
func (e *Engine) Run(ctx context.Context, c Campaign, emit func(json.RawMessage) error) (Summary, error) {
	start := time.Now()
	c0 := experiments.EngineCounters()
	idxs, pts, err := c.Expand()
	if err != nil {
		return Summary{}, err
	}
	bl := c.baselineL2()
	if err := emitRec(emit, Header{
		Type:       "campaign",
		Name:       c.Name,
		Strategy:   strategyName(c.Sample.Strategy),
		Grid:       c.GridSize(),
		Points:     len(pts),
		BaselineL2: bl,
	}); err != nil {
		return Summary{}, err
	}

	axes := c.axes()
	allRatios := make([]float64, 0, len(pts))
	marginPools := map[string]map[string][]float64{}
	baselinePoints := 0

	// Scheduling order: canonical index order, or — when the engine batches —
	// points regrouped by trace identity so configs sharing one (mix, seed,
	// refs) stream land in the same RunJobs call and advance in lockstep over
	// a single trace walk. Only scheduling changes: completed records are
	// buffered and emitted (and every float aggregate accumulated) strictly
	// in index order, so the NDJSON stream is byte-identical either way.
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	if experiments.BatchingEnabled() {
		order = groupedOrder(pts)
	}

	pending := make([]*PointRecord, len(pts))
	flushed := 0
	flush := func() error {
		for flushed < len(pts) && pending[flushed] != nil {
			rec := pending[flushed]
			pending[flushed] = nil
			if rec.Baseline {
				baselinePoints++
			} else {
				allRatios = append(allRatios, rec.Speedup...)
				coord := idxs[flushed]
				for a := len(axes) - 1; a >= 0; a-- {
					ax := axes[a]
					vi := int(coord % int64(ax.n))
					coord /= int64(ax.n)
					if ax.n < 2 {
						continue
					}
					pool := marginPools[ax.name]
					if pool == nil {
						pool = map[string][]float64{}
						marginPools[ax.name] = pool
					}
					pool[ax.label(vi)] = append(pool[ax.label(vi)], rec.Speedup...)
				}
			}
			if err := emitRec(emit, *rec); err != nil {
				return err
			}
			flushed++
		}
		return nil
	}

	B := e.batchSize()
	for lo := 0; lo < len(order); lo += B {
		hi := lo + B
		if hi > len(order) {
			hi = len(order)
		}
		// One RunJobs batch: each point's own job plus its baseline partner,
		// deduplicated within the batch. Cross-batch repeats (the same
		// baseline needed again later) are free memo hits.
		jobs := make([]experiments.Job, 0, 2*(hi-lo))
		at := map[string]int{}
		add := func(p Point) int {
			k := pointKey(p)
			if i, ok := at[k]; ok {
				return i
			}
			at[k] = len(jobs)
			jobs = append(jobs, p.Job())
			return len(jobs) - 1
		}
		type slot struct{ self, base int }
		slots := make([]slot, hi-lo)
		for i, pos := range order[lo:hi] {
			p := pts[pos]
			if p.L2 == bl {
				slots[i] = slot{self: add(p), base: -1}
				continue
			}
			q := p
			q.L2 = bl
			slots[i] = slot{base: add(q), self: add(p)}
		}
		results, err := experiments.RunJobs(ctx, jobs, e.Workers)
		if err != nil {
			return Summary{}, err
		}
		for i, pos := range order[lo:hi] {
			rec := &PointRecord{
				Type:    "point",
				Index:   idxs[pos],
				Point:   pts[pos],
				Metrics: metricsOf(results[slots[i].self]),
			}
			if slots[i].base < 0 {
				rec.Baseline = true
			} else {
				rec.Speedup = sim.Speedup(results[slots[i].base], results[slots[i].self])
			}
			pending[pos] = rec
		}
		if err := flush(); err != nil {
			return Summary{}, err
		}
	}

	sum := Summary{
		Type:           "summary",
		Name:           c.Name,
		Points:         len(pts),
		BaselinePoints: baselinePoints,
	}
	kept, dropped := stats.FiniteRatios(allRatios)
	sum.Dropped = dropped
	if len(kept) > 0 {
		g := stats.GeomeanSpeedupPct(kept)
		sum.GeomeanSpeedupPct = &g
	}
	for name, pool := range marginPools {
		for label, ratios := range pool {
			g := stats.GeomeanSpeedupPct(ratios)
			if math.IsNaN(g) {
				continue
			}
			if sum.Marginals == nil {
				sum.Marginals = map[string]map[string]float64{}
			}
			if sum.Marginals[name] == nil {
				sum.Marginals[name] = map[string]float64{}
			}
			sum.Marginals[name][label] = g
		}
	}
	c1 := experiments.EngineCounters()
	sum.Engine = EngineDelta{
		Sims:     c1.Sims - c0.Sims,
		MemoHits: c1.MemoHits - c0.MemoHits,
		DiskHits: c1.DiskHits - c0.DiskHits,
	}
	sum.ElapsedMS = time.Since(start).Milliseconds()
	if err := emitRec(emit, sum); err != nil {
		return Summary{}, err
	}
	return sum, nil
}

func strategyName(s string) string {
	if s == "" {
		return StrategyGrid
	}
	return s
}

// groupedOrder returns point positions regrouped by trace identity — the
// (workload mix, refs, seed) triple jobs must share to batch — keeping
// first-appearance order between groups and index order within each, so the
// schedule is a pure function of the point list.
func groupedOrder(pts []Point) []int {
	groups := map[string][]int{}
	var order []string
	for i, p := range pts {
		k := fmt.Sprintf("%s\x00%d\x00%d", strings.Join(p.Workloads, "\x01"), p.Refs, p.Seed)
		if groups[k] == nil {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	out := make([]int, 0, len(pts))
	for _, k := range order {
		out = append(out, groups[k]...)
	}
	return out
}

// pointKey is the canonical identity of a normalized point within a batch.
func pointKey(p Point) string {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("sweep: marshal point: %v", err))
	}
	return string(b)
}

func emitRec(emit func(json.RawMessage) error, v any) error {
	if emit == nil {
		return nil
	}
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: marshal record: %w", err)
	}
	return emit(line)
}

// NDJSONEmitter adapts an io.Writer into an emit callback: one record per
// line, flushed to w as it completes.
func NDJSONEmitter(w io.Writer) func(json.RawMessage) error {
	return func(line json.RawMessage) error {
		if _, err := w.Write(line); err != nil {
			return err
		}
		_, err := w.Write([]byte("\n"))
		return err
	}
}
