package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"dspatch/internal/experiments"
	"dspatch/internal/prefstats"
	"dspatch/internal/sim"
	"dspatch/internal/stats"
)

// Header is the first NDJSON record of a campaign stream: the resolved shape
// of the sweep. It is a pure function of the spec.
type Header struct {
	Type       string `json:"type"` // "campaign"
	Name       string `json:"name,omitempty"`
	Strategy   string `json:"strategy"`
	Grid       int64  `json:"grid"`   // full cross-product size
	Points     int    `json:"points"` // points this campaign will emit
	BaselineL2 string `json:"baseline_l2"`
}

// Metrics is the per-point slice of sim.Result a campaign reports (live port
// state and pollution fractions are not part of the stream).
type Metrics struct {
	IPC              []float64 `json:"ipc"`
	Cycles           uint64    `json:"cycles"`
	Coverage         float64   `json:"coverage"`
	MispredRate      float64   `json:"mispred_rate"`
	Accuracy         float64   `json:"accuracy"`
	AvgBandwidthGBps float64   `json:"avg_bw_gbps"`
	PeakBandwidth    float64   `json:"peak_bw_gbps"`
}

func metricsOf(r sim.Result) Metrics {
	return Metrics{
		IPC:              r.IPC,
		Cycles:           r.Cycles,
		Coverage:         r.Coverage,
		MispredRate:      r.MispredRate,
		Accuracy:         r.Accuracy,
		AvgBandwidthGBps: r.AvgBandwidthGBps,
		PeakBandwidth:    r.PeakBandwidth,
	}
}

// PointRecord is one completed point. Records are emitted in canonical index
// order and are byte-identical across runs of the same spec: they carry no
// timing or cache provenance.
type PointRecord struct {
	Type  string `json:"type"` // "point"
	Index int64  `json:"index"`
	Point Point  `json:"point"`
	// Metrics of this point's own run.
	Metrics Metrics `json:"metrics"`
	// Speedup holds per-lane IPC ratios against the baseline partner (this
	// point with l2 = baseline_l2); absent on baseline points.
	Speedup []float64 `json:"speedup,omitempty"`
	// Baseline marks points whose own l2 is the designated baseline.
	Baseline bool `json:"baseline,omitempty"`
	// Prefetchers carries the point's per-prefetcher telemetry snapshot;
	// present only when the point set collect_stats. The prefstats schema
	// marshals deterministically, so stats-bearing streams stay
	// byte-identical across runs.
	Prefetchers []sim.PrefetcherStats `json:"prefetchers,omitempty"`
}

// EngineDelta is the experiment-engine work this campaign run caused —
// the resumability ledger: a fully-cached resubmission shows Sims == 0.
type EngineDelta struct {
	Sims     uint64 `json:"sims"`
	MemoHits uint64 `json:"memo_hits"`
	DiskHits uint64 `json:"disk_hits"`
}

// DroppedPoint records a point a fleet run abandoned after exhausting its
// dispatch retries: the point's record is missing from the stream, and this
// entry says why. Local runs never drop points.
type DroppedPoint struct {
	Index  int64  `json:"index"`
	Point  Point  `json:"point"`
	Reason string `json:"reason"`
}

// FleetSummary is coordinator telemetry attached to a fleet-executed
// campaign's Summary. Like Engine and ElapsedMS it is not deterministic:
// two runs of one spec through different failure weather report different
// dispatch counts while emitting byte-identical point records.
type FleetSummary struct {
	Workers        int    `json:"workers"`
	Dispatches     uint64 `json:"dispatches"`
	Redispatches   uint64 `json:"redispatches"`
	LeasesExpired  uint64 `json:"leases_expired"`
	ShedRejections uint64 `json:"shed_rejections"`
	WorkersEjected uint64 `json:"workers_ejected"`
	StoreHits      uint64 `json:"store_hits"`
}

// Summary is the final NDJSON record: cross-point aggregation plus run
// telemetry. Everything except DroppedPoints, Fleet, Engine and ElapsedMS
// is deterministic.
type Summary struct {
	Type           string `json:"type"` // "summary"
	Name           string `json:"name,omitempty"`
	Points         int    `json:"points"`
	BaselinePoints int    `json:"baseline_points"`
	// Dropped counts degenerate lane ratios (zero/non-finite speedups)
	// excluded from every aggregate below.
	Dropped int `json:"dropped"`
	// GeomeanSpeedupPct aggregates every non-baseline lane ratio; absent
	// when the campaign had none (all-baseline sweeps).
	GeomeanSpeedupPct *float64 `json:"geomean_speedup_pct,omitempty"`
	// Marginals[axis][value] is the geomean speedup (%) of the non-baseline
	// points carrying that axis value — one marginal per swept axis.
	Marginals map[string]map[string]float64 `json:"marginals,omitempty"`
	// DroppedPoints lists points a fleet run abandoned, with reasons, in
	// index order; absent on local runs and clean fleet runs. Every point
	// record missing from the stream is accounted for here — nothing is
	// lost silently.
	DroppedPoints []DroppedPoint `json:"dropped_points,omitempty"`
	// Fleet is coordinator telemetry; absent on local runs.
	Fleet *FleetSummary `json:"fleet,omitempty"`
	// Prefetchers aggregates per-prefetcher telemetry across every
	// stats-collecting point (merged by model name, in flush order — index
	// order — so the aggregate is deterministic); absent when no point set
	// collect_stats.
	Prefetchers []sim.PrefetcherStats `json:"prefetchers,omitempty"`
	// Engine and ElapsedMS are telemetry, not results: they differ between a
	// cold run and a resumed one.
	Engine    EngineDelta `json:"engine"`
	ElapsedMS int64       `json:"elapsed_ms"`
}

// Recorder turns completed point results into the campaign's canonical
// NDJSON stream. It is the single authority on stream bytes: the local
// engine and the fleet coordinator both feed results through a Recorder (in
// whatever order execution happens to finish them), and the Recorder
// buffers, aggregates and emits strictly in canonical index order — which
// is why a campaign run through a flaky fleet is byte-identical to a local
// run. Methods must be called from one goroutine at a time.
type Recorder struct {
	c    Campaign
	emit func(json.RawMessage) error
	idxs []int64
	pts  []Point
	bl   string
	axes []axis

	pending   []*PointRecord
	droppedAt []string // non-empty: drop reason; flush skips the position
	flushed   int

	allRatios      []float64
	marginPools    map[string]map[string][]float64
	baselinePoints int
	droppedPoints  []DroppedPoint
	prefStats      []sim.PrefetcherStats

	start time.Time
	c0    experiments.Counters
}

// NewRecorder validates and expands c, emits the campaign header, and
// returns a Recorder ready to receive completions for positions
// 0..Len()-1.
func NewRecorder(c Campaign, emit func(json.RawMessage) error) (*Recorder, error) {
	start := time.Now()
	c0 := experiments.EngineCounters()
	idxs, pts, err := c.Expand()
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		c:           c,
		emit:        emit,
		idxs:        idxs,
		pts:         pts,
		bl:          c.baselineL2(),
		axes:        c.axes(),
		pending:     make([]*PointRecord, len(pts)),
		droppedAt:   make([]string, len(pts)),
		marginPools: map[string]map[string][]float64{},
		start:       start,
		c0:          c0,
	}
	if err := emitRec(emit, Header{
		Type:       "campaign",
		Name:       c.Name,
		Strategy:   strategyName(c.Sample.Strategy),
		Grid:       c.GridSize(),
		Points:     len(pts),
		BaselineL2: r.bl,
	}); err != nil {
		return nil, err
	}
	return r, nil
}

// Len is the number of points the campaign will emit.
func (r *Recorder) Len() int { return len(r.pts) }

// Points exposes the expanded points in canonical position order.
func (r *Recorder) Points() []Point { return r.pts }

// BaselineL2 is the designated baseline prefetcher.
func (r *Recorder) BaselineL2() string { return r.bl }

// Pair returns position pos's own point and, for non-baseline points, the
// baseline partner whose result its speedup is computed against.
func (r *Recorder) Pair(pos int) (self, base Point, hasBase bool) {
	self = r.pts[pos]
	if self.L2 == r.bl {
		return self, Point{}, false
	}
	base = self
	base.L2 = r.bl
	return self, base, true
}

// Resolved reports whether position pos already has a terminal outcome —
// emitted, buffered for emission, or dropped. Journal replay and late fleet
// events both lean on this: the first resolution of a position wins, and
// every later Complete or Drop for it is a no-op.
func (r *Recorder) Resolved(pos int) bool {
	return pos < r.flushed || r.droppedAt[pos] != "" || r.pending[pos] != nil
}

// Complete records position pos's results (base nil for baseline points)
// and flushes every record the completion unblocked. Completing an
// already-resolved position — one that was dropped, or whose record was
// already emitted — is a no-op: the stream never rewinds.
func (r *Recorder) Complete(pos int, self sim.Result, base *sim.Result) error {
	if r.Resolved(pos) {
		return nil
	}
	rec := &PointRecord{
		Type:        "point",
		Index:       r.idxs[pos],
		Point:       r.pts[pos],
		Metrics:     metricsOf(self),
		Prefetchers: self.Prefetchers,
	}
	if base == nil {
		rec.Baseline = true
	} else {
		rec.Speedup = sim.Speedup(*base, self)
	}
	r.pending[pos] = rec
	return r.flush()
}

// Drop abandons position pos with a reason: no point record is emitted, the
// stream continues past it, and the summary accounts for it under
// dropped_points.
func (r *Recorder) Drop(pos int, reason string) error {
	if r.Resolved(pos) {
		return nil // already resolved; first resolution wins
	}
	r.droppedAt[pos] = reason
	r.droppedPoints = append(r.droppedPoints, DroppedPoint{
		Index: r.idxs[pos], Point: r.pts[pos], Reason: reason,
	})
	return r.flush()
}

// flush emits (and aggregates) buffered records strictly in index order,
// stopping at the first unresolved position. Aggregation happens here — in
// flush order, never completion order — so every float accumulation is a
// pure function of the spec.
func (r *Recorder) flush() error {
	for r.flushed < len(r.pts) {
		if r.droppedAt[r.flushed] != "" {
			r.flushed++
			continue
		}
		rec := r.pending[r.flushed]
		if rec == nil {
			return nil
		}
		r.pending[r.flushed] = nil
		if rec.Baseline {
			r.baselinePoints++
		} else {
			r.allRatios = append(r.allRatios, rec.Speedup...)
			coord := r.idxs[r.flushed]
			for a := len(r.axes) - 1; a >= 0; a-- {
				ax := r.axes[a]
				vi := int(coord % int64(ax.n))
				coord /= int64(ax.n)
				if ax.n < 2 {
					continue
				}
				pool := r.marginPools[ax.name]
				if pool == nil {
					pool = map[string][]float64{}
					r.marginPools[ax.name] = pool
				}
				pool[ax.label(vi)] = append(pool[ax.label(vi)], rec.Speedup...)
			}
		}
		if len(rec.Prefetchers) > 0 {
			r.prefStats = prefstats.Merge(r.prefStats, rec.Prefetchers)
		}
		if err := emitRec(r.emit, *rec); err != nil {
			return err
		}
		r.flushed++
	}
	return nil
}

// Finish emits the summary record and returns it. Every position must have
// been completed or dropped. fleet, when non-nil, is attached as
// coordinator telemetry.
func (r *Recorder) Finish(fleet *FleetSummary) (Summary, error) {
	if err := r.flush(); err != nil {
		return Summary{}, err
	}
	if r.flushed != len(r.pts) {
		return Summary{}, fmt.Errorf("sweep: campaign finished with %d of %d points unresolved",
			len(r.pts)-r.flushed, len(r.pts))
	}
	sum := Summary{
		Type:           "summary",
		Name:           r.c.Name,
		Points:         len(r.pts),
		BaselinePoints: r.baselinePoints,
	}
	kept, dropped := stats.FiniteRatios(r.allRatios)
	sum.Dropped = dropped
	if len(kept) > 0 {
		g := stats.GeomeanSpeedupPct(kept)
		sum.GeomeanSpeedupPct = &g
	}
	for name, pool := range r.marginPools {
		for label, ratios := range pool {
			g := stats.GeomeanSpeedupPct(ratios)
			if math.IsNaN(g) {
				continue
			}
			if sum.Marginals == nil {
				sum.Marginals = map[string]map[string]float64{}
			}
			if sum.Marginals[name] == nil {
				sum.Marginals[name] = map[string]float64{}
			}
			sum.Marginals[name][label] = g
		}
	}
	if len(r.droppedPoints) > 0 {
		sort.Slice(r.droppedPoints, func(i, j int) bool {
			return r.droppedPoints[i].Index < r.droppedPoints[j].Index
		})
		sum.DroppedPoints = r.droppedPoints
	}
	sum.Prefetchers = r.prefStats
	sum.Fleet = fleet
	c1 := experiments.EngineCounters()
	sum.Engine = EngineDelta{
		Sims:     c1.Sims - r.c0.Sims,
		MemoHits: c1.MemoHits - r.c0.MemoHits,
		DiskHits: c1.DiskHits - r.c0.DiskHits,
	}
	sum.ElapsedMS = time.Since(r.start).Milliseconds()
	if err := emitRec(r.emit, sum); err != nil {
		return Summary{}, err
	}
	return sum, nil
}

// Engine executes campaigns on the process-shared experiment engine.
// The zero value is ready to use.
type Engine struct {
	// Workers is the simulation parallelism per batch (0 = GOMAXPROCS).
	Workers int
	// BatchSize bounds how many points are in flight per experiments.RunJobs
	// call — the streaming granularity (0 = a multiple of Workers). Results
	// are identical at any batch size.
	BatchSize int

	// Journal, when non-nil, receives a durable record of every terminal
	// point event and the final sealed summary, making the campaign
	// crash-recoverable. Requires Store: the journal references results by
	// store key and only claims a point after its results are in the store.
	Journal *Journal
	// Store is the ResultStore journaled completions are persisted to and
	// rehydrated from.
	Store experiments.ResultStore
	// Resume, when non-nil, is a recovered journal's state: journaled
	// completions replay from Store with zero simulations and only the
	// unfinished tail runs.
	Resume *JournalState
	// Logf, when non-nil, receives degradation notices (a failing journal
	// or store stops being written to, never fails the campaign).
	Logf func(format string, args ...any)
}

func (e *Engine) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

func (e *Engine) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	w := e.Workers
	if w <= 0 {
		w = 8
	}
	b := 4 * w
	if b < 16 {
		b = 16
	}
	if b > 256 {
		b = 256
	}
	return b
}

// Run expands c and simulates every point, calling emit with each marshaled
// NDJSON record (header, points in index order, summary) as it becomes
// available. Batches of points flow through experiments.RunJobs, so every
// point shares the engine's memo and persistent disk cache with every other
// front end — a resubmitted campaign re-simulates only points the caches
// have never seen. A non-nil error from emit or ctx aborts the campaign.
func (e *Engine) Run(ctx context.Context, c Campaign, emit func(json.RawMessage) error) (Summary, error) {
	if e.Journal != nil && e.Store == nil {
		return Summary{}, fmt.Errorf("sweep: journaled campaign needs a result store")
	}
	rec, err := NewRecorder(c, emit)
	if err != nil {
		return Summary{}, err
	}
	pts := rec.Points()

	// Resume: journaled terminal events replay through the Recorder before
	// anything is scheduled — completions rehydrate from the store with zero
	// simulations, drops re-drop, and only the unresolved tail runs below.
	var resolved []bool
	if e.Resume != nil {
		resolved, err = e.Resume.Replay(rec, e.Store)
		if err != nil {
			return Summary{}, err
		}
	}

	// Scheduling order: canonical index order, or — when the engine batches —
	// points regrouped by trace identity so configs sharing one (mix, seed,
	// refs) stream land in the same RunJobs call and advance in lockstep over
	// a single trace walk. Only scheduling changes: the Recorder emits (and
	// accumulates every float aggregate) strictly in index order, so the
	// NDJSON stream is byte-identical either way.
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	if experiments.BatchingEnabled() {
		order = groupedOrder(pts)
	}
	if resolved != nil {
		kept := order[:0]
		for _, pos := range order {
			if !resolved[pos] {
				kept = append(kept, pos)
			}
		}
		order = kept
	}

	// The journal claims a point only once its results are durable: Put to
	// the store, then append the done frame, then let the Recorder emit. A
	// failing store or journal degrades — the campaign keeps running, it
	// just stops being resumable from that event on.
	jl, store := e.Journal, e.Store
	stored := map[string]bool{}
	putJob := func(j experiments.Job, res sim.Result) (string, bool) {
		if store == nil {
			return "", false
		}
		key, ok := experiments.JobKey(j)
		if !ok {
			return "", false
		}
		if !stored[key] {
			if err := store.Put(key, res); err != nil {
				e.logf("campaign store degraded, results no longer durable: %v", err)
				store = nil
				return "", false
			}
			stored[key] = true
		}
		return key, true
	}

	B := e.batchSize()
	for lo := 0; lo < len(order); lo += B {
		hi := lo + B
		if hi > len(order) {
			hi = len(order)
		}
		// One RunJobs batch: each point's own job plus its baseline partner,
		// deduplicated within the batch. Cross-batch repeats (the same
		// baseline needed again later) are free memo hits.
		jobs := make([]experiments.Job, 0, 2*(hi-lo))
		at := map[string]int{}
		add := func(p Point) int {
			k := pointKey(p)
			if i, ok := at[k]; ok {
				return i
			}
			at[k] = len(jobs)
			jobs = append(jobs, p.Job())
			return len(jobs) - 1
		}
		type slot struct{ self, base int }
		slots := make([]slot, hi-lo)
		for i, pos := range order[lo:hi] {
			self, base, hasBase := rec.Pair(pos)
			if !hasBase {
				slots[i] = slot{self: add(self), base: -1}
				continue
			}
			slots[i] = slot{base: add(base), self: add(self)}
		}
		results, err := experiments.RunJobs(ctx, jobs, e.Workers)
		if err != nil {
			return Summary{}, err
		}
		for i, pos := range order[lo:hi] {
			var base *sim.Result
			if slots[i].base >= 0 {
				base = &results[slots[i].base]
			}
			if jl != nil {
				self, basePt, hasBase := rec.Pair(pos)
				selfKey, selfOK := putJob(self.Job(), results[slots[i].self])
				baseKey, baseOK := "", true
				if hasBase {
					baseKey, baseOK = putJob(basePt.Job(), *base)
				}
				if selfOK && baseOK {
					if err := jl.Done(pos, selfKey, baseKey); err != nil {
						e.logf("campaign journal degraded, run no longer resumable: %v", err)
						jl = nil
					}
				}
			}
			if err := rec.Complete(pos, results[slots[i].self], base); err != nil {
				return Summary{}, err
			}
		}
	}
	sum, err := rec.Finish(nil)
	if err != nil {
		return Summary{}, err
	}
	if jl != nil {
		if b, merr := json.Marshal(sum); merr == nil {
			if err := jl.Seal(b); err != nil {
				e.logf("campaign journal seal failed: %v", err)
			}
		}
	}
	return sum, nil
}

func strategyName(s string) string {
	if s == "" {
		return StrategyGrid
	}
	return s
}

// groupedOrder returns point positions regrouped by trace identity — the
// (workload mix, refs, seed) triple jobs must share to batch — keeping
// first-appearance order between groups and index order within each, so the
// schedule is a pure function of the point list.
func groupedOrder(pts []Point) []int {
	groups := map[string][]int{}
	var order []string
	for i, p := range pts {
		k := fmt.Sprintf("%s\x00%d\x00%d", strings.Join(p.Workloads, "\x01"), p.Refs, p.Seed)
		if groups[k] == nil {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	out := make([]int, 0, len(pts))
	for _, k := range order {
		out = append(out, groups[k]...)
	}
	return out
}

// pointKey is the canonical identity of a normalized point within a batch.
func pointKey(p Point) string {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("sweep: marshal point: %v", err))
	}
	return string(b)
}

func emitRec(emit func(json.RawMessage) error, v any) error {
	if emit == nil {
		return nil
	}
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: marshal record: %w", err)
	}
	return emit(line)
}

// NDJSONEmitter adapts an io.Writer into an emit callback: one record per
// line, flushed to w as it completes.
func NDJSONEmitter(w io.Writer) func(json.RawMessage) error {
	return func(line json.RawMessage) error {
		if _, err := w.Write(line); err != nil {
			return err
		}
		_, err := w.Write([]byte("\n"))
		return err
	}
}
