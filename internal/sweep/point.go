package sweep

import (
	"fmt"
	"math/bits"

	"dspatch/internal/dram"
	"dspatch/internal/experiments"
	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// Guardrails on untrusted point specs. Generous next to the paper's full
// scale (200k refs) while keeping a single point from pinning a worker for
// hours. The service layer shares them: POST /v1/runs bodies are Points.
const (
	MaxRunLanes  = 8
	MaxRefs      = 5_000_000
	MinLLCBytes  = 1 << 16
	MaxLLCBytes  = 1 << 30
	MaxDRAMChans = 4
)

// Point is one fully-specified simulation: a workload mix run on one machine
// configuration under one prefetcher. It is the vocabulary shared by the
// whole serving stack — the body of the daemon's POST /v1/runs
// (service.RunSpec is an alias of it) and the unit a Campaign's axes expand
// into. Zero fields take the machine defaults of the paper's single-thread
// configuration (or the multi-programmed one for multi-lane mixes), exactly
// as sim.DefaultST/DefaultMP do, so a minimal {"workloads":["mcf"]} point is
// already meaningful.
type Point struct {
	Workloads []string `json:"workloads"`
	Refs      int      `json:"refs,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	// L2 selects the prefetcher under test ("none" baseline by default);
	// see GET /v1/prefetchers for the roster.
	L2             string `json:"l2,omitempty"`
	LLCBytes       int    `json:"llc_bytes,omitempty"`
	DRAMChannels   int    `json:"dram_channels,omitempty"`
	DRAMMTps       int    `json:"dram_mtps,omitempty"`
	NoL1Stride     bool   `json:"no_l1_stride,omitempty"`
	SMSPHTEntries  int    `json:"sms_pht_entries,omitempty"`
	TrackPollution bool   `json:"track_pollution,omitempty"`
	// CollectStats opts the run into per-prefetcher internal telemetry
	// (sim.Result.Prefetchers): campaign point records gain a "prefetchers"
	// field and /v1 job results expose it behind ?stats=1.
	CollectStats bool `json:"collect_stats,omitempty"`
	// Scenarios optionally carries scenario specs the point's workload names
	// refer to. Normalize registers them (strictly and idempotently: identical
	// re-registration is a no-op, redefining a name is an error) before name
	// validation, which is how ad-hoc scenarios and inline trace payloads
	// reach fleet workers — the coordinator attaches the defining specs to
	// every dispatched point. Campaign specs use the campaign-level
	// "scenarios" block instead, so stored point records stay spec-free.
	Scenarios []trace.ScenarioSpec `json:"scenarios,omitempty"`
}

// Normalize validates p against the roster and guardrails and fills every
// defaulted field in place, so the stored point states the machine it ran on
// and equal effective configurations share one canonical form.
func (p *Point) Normalize() error {
	if len(p.Workloads) == 0 {
		return fmt.Errorf("workloads: at least one workload name is required")
	}
	if len(p.Workloads) > MaxRunLanes {
		return fmt.Errorf("workloads: at most %d lanes per run, got %d", MaxRunLanes, len(p.Workloads))
	}
	for i := range p.Scenarios {
		if _, err := trace.RegisterSpec(p.Scenarios[i]); err != nil {
			return fmt.Errorf("scenarios[%d]: %w", i, err)
		}
	}
	for _, name := range p.Workloads {
		if _, ok := trace.ByName(name); !ok {
			return fmt.Errorf("workloads: unknown workload %q (see GET /v1/workloads)", name)
		}
	}
	if p.L2 == "" {
		p.L2 = string(sim.PFNone)
	}
	if !sim.KnownPF(sim.PF(p.L2)) {
		return fmt.Errorf("l2: unknown prefetcher %q (see GET /v1/prefetchers)", p.L2)
	}
	switch {
	case p.Refs < 0:
		return fmt.Errorf("refs: must be non-negative, got %d", p.Refs)
	case p.Refs == 0:
		p.Refs = 40_000
	case p.Refs > MaxRefs:
		return fmt.Errorf("refs: at most %d per run, got %d", MaxRefs, p.Refs)
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	multi := len(p.Workloads) > 1
	switch {
	case p.LLCBytes < 0:
		return fmt.Errorf("llc_bytes: must be non-negative, got %d", p.LLCBytes)
	case p.LLCBytes == 0:
		if multi {
			p.LLCBytes = 8 << 20
		} else {
			p.LLCBytes = 2 << 20
		}
	case p.LLCBytes < MinLLCBytes || p.LLCBytes > MaxLLCBytes || bits.OnesCount(uint(p.LLCBytes)) != 1:
		// The 16-way LLC derives its set count as llc_bytes/1024, which the
		// cache model requires to be a power of two.
		return fmt.Errorf("llc_bytes: want a power of two in [%d, %d], got %d", MinLLCBytes, MaxLLCBytes, p.LLCBytes)
	}
	if p.DRAMChannels == 0 {
		if multi {
			p.DRAMChannels = 2
		} else {
			p.DRAMChannels = 1
		}
	}
	if p.DRAMChannels < 1 || p.DRAMChannels > MaxDRAMChans {
		return fmt.Errorf("dram_channels: want 1..%d, got %d", MaxDRAMChans, p.DRAMChannels)
	}
	if p.DRAMMTps == 0 {
		p.DRAMMTps = 2133
	}
	switch p.DRAMMTps {
	case 1600, 2133, 2400:
	default:
		return fmt.Errorf("dram_mtps: want 1600, 2133 or 2400, got %d", p.DRAMMTps)
	}
	// The SMS pattern table is 16-way set-associative and its model requires
	// a power-of-two set count, so entries must be 16 * 2^k.
	if p.SMSPHTEntries != 0 &&
		(p.SMSPHTEntries < 16 || p.SMSPHTEntries > 1<<20 || bits.OnesCount(uint(p.SMSPHTEntries)) != 1) {
		return fmt.Errorf("sms_pht_entries: want 0 (default) or a power of two in [16, %d], got %d", 1<<20, p.SMSPHTEntries)
	}
	return nil
}

// Job converts a normalized point into the experiment engine's job form.
func (p *Point) Job() experiments.Job {
	ws := make([]trace.Workload, len(p.Workloads))
	for i, name := range p.Workloads {
		ws[i], _ = trace.ByName(name)
	}
	return experiments.Job{
		Workloads: ws,
		Opt: sim.Options{
			DRAM:           dram.DDR4(p.DRAMChannels, p.DRAMMTps),
			LLCBytes:       p.LLCBytes,
			Refs:           p.Refs,
			Seed:           p.Seed,
			L2:             sim.PF(p.L2),
			NoL1Stride:     p.NoL1Stride,
			SMSPHTEntries:  p.SMSPHTEntries,
			TrackPollution: p.TrackPollution,
			CollectStats:   p.CollectStats,
		},
	}
}
