package sweep

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
)

// journalCampaign is a distinct spec (refs=691) so memo cross-talk with
// other tests can't mask a simulation.
func journalCampaign() Campaign {
	return Campaign{
		Name: "jrnl",
		Base: Point{Refs: 691},
		Axes: Axes{
			Workloads: []Mix{{"mcf"}, {"tpcc"}},
			L2:        []string{"none", "spp"},
		},
	}
}

// memStore is an in-memory ResultStore for journal tests.
type memStore struct {
	m map[string]sim.Result
}

func newMemStore() *memStore { return &memStore{m: map[string]sim.Result{}} }

func (s *memStore) Get(key string) (sim.Result, bool) {
	r, ok := s.m[key]
	return r, ok
}

func (s *memStore) Put(key string, res sim.Result) error {
	s.m[key] = res
	return nil
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.journal")
	c := journalCampaign()
	jl, err := CreateJournal(path, "j000007", c)
	if err != nil {
		t.Fatalf("CreateJournal: %v", err)
	}
	if err := jl.Done(0, "k0", ""); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if err := jl.Done(2, "k2self", "k2base"); err != nil {
		t.Fatalf("Done: %v", err)
	}
	if err := jl.Drop(3, "max attempts (4) exhausted: boom"); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if err := jl.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st, err := ReadJournalState(path)
	if err != nil {
		t.Fatalf("ReadJournalState: %v", err)
	}
	if st.JobID != "j000007" {
		t.Errorf("job id = %q, want j000007", st.JobID)
	}
	if st.Sealed {
		t.Error("journal reads sealed before Seal")
	}
	if got := st.Done[0]; got != (DoneEvent{Key: "k0"}) {
		t.Errorf("Done[0] = %+v", got)
	}
	if got := st.Done[2]; got != (DoneEvent{Key: "k2self", Base: "k2base"}) {
		t.Errorf("Done[2] = %+v", got)
	}
	if got := st.Dropped[3]; got != "max attempts (4) exhausted: boom" {
		t.Errorf("Dropped[3] = %q", got)
	}
	specJSON, _ := json.Marshal(c)
	gotSpec, _ := json.Marshal(st.Campaign)
	if string(specJSON) != string(gotSpec) {
		t.Errorf("campaign spec round-trip:\nwant %s\ngot  %s", specJSON, gotSpec)
	}

	// Reopen for append, seal, and re-read.
	jl2, st2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if len(st2.Done) != 2 || len(st2.Dropped) != 1 {
		t.Fatalf("reopened state: %d done %d dropped", len(st2.Done), len(st2.Dropped))
	}
	if err := jl2.Seal(json.RawMessage(`{"type":"summary","points":4}`)); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	jl2.Close()
	st3, err := ReadJournalState(path)
	if err != nil {
		t.Fatalf("ReadJournalState after seal: %v", err)
	}
	if !st3.Sealed {
		t.Error("journal not sealed after Seal")
	}
	if string(st3.Summary) != `{"type":"summary","points":4}` {
		t.Errorf("sealed summary = %s", st3.Summary)
	}
}

// TestJournalTornTailTruncation is the satellite's exhaustive crash test:
// truncate a valid journal at EVERY byte offset inside its last frame and
// require the scan to recover everything before the frame, never error,
// never panic — and OpenJournal to truncate the torn tail so appends resume
// cleanly.
func TestJournalTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.journal")
	jl, err := CreateJournal(path, "j000001", journalCampaign())
	if err != nil {
		t.Fatalf("CreateJournal: %v", err)
	}
	if err := jl.Done(0, "key0", "base0"); err != nil {
		t.Fatalf("Done: %v", err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Done(1, "key1", "base1"); err != nil {
		t.Fatalf("Done: %v", err)
	}
	jl.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(whole) {
		t.Fatalf("second frame added no bytes (%d -> %d)", len(whole), len(full))
	}

	for cut := len(whole); cut < len(full); cut++ {
		torn := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := ReadJournalState(torn)
		if err != nil {
			t.Fatalf("cut at %d: ReadJournalState: %v", cut, err)
		}
		if _, ok := st.Done[0]; !ok {
			t.Fatalf("cut at %d: lost intact frame for pos 0", cut)
		}
		if _, ok := st.Done[1]; ok {
			t.Fatalf("cut at %d: torn frame for pos 1 was trusted", cut)
		}
		// Reopen for append: the torn tail must be truncated away and a
		// fresh append must land intact.
		jl2, _, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("cut at %d: OpenJournal: %v", cut, err)
		}
		if err := jl2.Done(1, "key1b", ""); err != nil {
			t.Fatalf("cut at %d: append after truncation: %v", cut, err)
		}
		jl2.Close()
		st2, err := ReadJournalState(torn)
		if err != nil {
			t.Fatalf("cut at %d: re-read: %v", cut, err)
		}
		if got := st2.Done[1]; got != (DoneEvent{Key: "key1b"}) {
			t.Fatalf("cut at %d: resumed append lost: %+v", cut, got)
		}
	}
}

// TestJournalCorruptPayloadStopsScan flips a payload byte (CRC mismatch)
// mid-file and requires the scan to distrust everything from that frame on.
func TestJournalCorruptPayloadStopsScan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.journal")
	jl, err := CreateJournal(path, "j000001", journalCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Done(0, "key0", ""); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(path)
	if err := jl.Done(1, "key1", ""); err != nil {
		t.Fatal(err)
	}
	jl.Close()
	data, _ := os.ReadFile(path)
	data[len(before)+12] ^= 0xFF // somewhere inside the last frame's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReadJournalState(path)
	if err != nil {
		t.Fatalf("ReadJournalState: %v", err)
	}
	if _, ok := st.Done[1]; ok {
		t.Error("corrupt frame was trusted")
	}
	if _, ok := st.Done[0]; !ok {
		t.Error("intact prefix lost")
	}
}

func TestJournalRejectsNonJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "not.journal")
	if err := os.WriteFile(path, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournalState(path); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Error("OpenJournal accepted bad magic")
	}
}

// TestEngineJournalResume runs a journaled campaign, then replays a
// partially-complete copy of its journal through a fresh Engine.Run and
// requires (a) a byte-identical stream and (b) zero simulations for the
// journaled prefix — the resumed run touches only the unfinished tail.
func TestEngineJournalResume(t *testing.T) {
	c := journalCampaign()
	dir := t.TempDir()
	store := newMemStore()

	// Uninterrupted journaled run: the reference stream.
	path := filepath.Join(dir, "ref.journal")
	jl, err := CreateJournal(path, "j000001", c)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	eng := Engine{Workers: 2, Journal: jl, Store: store}
	if _, err := eng.Run(context.Background(), c, func(line json.RawMessage) error {
		want = append(want, string(line))
		return nil
	}); err != nil {
		t.Fatalf("journaled Run: %v", err)
	}
	jl.Close()
	st, err := ReadJournalState(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sealed {
		t.Fatal("completed campaign's journal is not sealed")
	}
	if len(st.Done) != 4 {
		t.Fatalf("journal has %d done records, want 4", len(st.Done))
	}

	// Simulate a crash after 2 points: forget the later done records.
	partial := &JournalState{
		JobID:    st.JobID,
		Campaign: st.Campaign,
		Done:     map[int]DoneEvent{0: st.Done[0], 1: st.Done[1]},
		Dropped:  map[int]string{},
	}

	c0 := experiments.EngineCounters()
	var got []string
	resumed := Engine{Workers: 2, Store: store, Resume: partial}
	if _, err := resumed.Run(context.Background(), c, func(line json.RawMessage) error {
		got = append(got, string(line))
		return nil
	}); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	c1 := experiments.EngineCounters()
	if c1.Sims != c0.Sims {
		// The tail's runs are memo hits from the reference run in this
		// process, so even the tail needs zero sims; the point is that the
		// replayed prefix reads the store, not the engine.
		t.Errorf("resumed run simulated %d times; journal replay must not simulate", c1.Sims-c0.Sims)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed stream has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		a, b := want[i], got[i]
		if i == len(want)-1 {
			a, b = stripSummaryTelemetry(t, a), stripSummaryTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs after resume:\nwant %s\ngot  %s", i, a, b)
		}
	}
}

// TestJournalReplayStoreMissReruns plants a journal claiming a completion
// the store cannot produce; the position must stay unresolved (and re-run)
// rather than error.
func TestJournalReplayStoreMissReruns(t *testing.T) {
	c := journalCampaign()
	st := &JournalState{
		Campaign: c,
		Done:     map[int]DoneEvent{0: {Key: "no-such-key"}},
		Dropped:  map[int]string{},
	}
	var lines []string
	eng := Engine{Workers: 2, Store: newMemStore(), Resume: st}
	sum, err := eng.Run(context.Background(), c, func(line json.RawMessage) error {
		lines = append(lines, string(line))
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sum.Points != 4 || len(lines) != 6 { // header + 4 points + summary
		t.Errorf("resumed-with-miss run: %d points, %d lines", sum.Points, len(lines))
	}
}
