package perfbench

import (
	"testing"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// campaignRoster mirrors the `-bench` campaign series: four prefetchers
// crossed with two LLC sizes, all sharing one (workload, seed, refs) trace
// identity so the whole roster qualifies for lockstep batching.
func campaignRoster(refs int) []sim.Options {
	pfs := []sim.PF{sim.PFNone, sim.PFSPP, sim.PFDSPatch, sim.PFDSPatchSPP}
	llcs := []int{1 << 20, 2 << 20}
	var opts []sim.Options
	for _, llc := range llcs {
		for _, pf := range pfs {
			o := sim.DefaultST()
			o.Refs = refs
			o.L2 = pf
			o.LLCBytes = llc
			opts = append(opts, o)
		}
	}
	return opts
}

func campaignWorkload(b *testing.B) []trace.Workload {
	w, ok := trace.ByName("tpcc")
	if !ok {
		b.Fatal("workload roster is missing tpcc")
	}
	return []trace.Workload{w}
}

// BenchmarkCampaignBatch measures an 8-config campaign advanced in lockstep
// over a single trace walk — the one-pass scheduling the experiment engine
// uses for same-trace groups. Compare against BenchmarkCampaignSerial: the
// configs, refs and results are identical, only the walk count differs.
func BenchmarkCampaignBatch(b *testing.B) {
	const refs = 20_000
	ws := campaignWorkload(b)
	opts := campaignRoster(refs)
	sim.Run(ws, opts[0]) // materialize the shared trace outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunBatch(ws, opts)
	}
	total := float64(refs*len(opts)) * float64(b.N)
	b.ReportMetric(b.Elapsed().Seconds()*1e9/total, "ns/ref")
}

// BenchmarkCampaignSerial runs the same campaign config-at-a-time, walking
// the trace once per config — the pre-batching schedule.
func BenchmarkCampaignSerial(b *testing.B) {
	const refs = 20_000
	ws := campaignWorkload(b)
	opts := campaignRoster(refs)
	sim.Run(ws, opts[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range opts {
			sim.Run(ws, o)
		}
	}
	total := float64(refs*len(opts)) * float64(b.N)
	b.ReportMetric(b.Elapsed().Seconds()*1e9/total, "ns/ref")
}
