// Package perfbench holds the simulator's micro-benchmarks: the per-layer
// numbers (Port.Access, DRAM.Access, DSPatch.Train) and an end-to-end run
// that together make up the BENCH_*.json performance trajectory.
//
// Run them with:
//
//	go test -bench=. -benchmem ./internal/perfbench
//
// and compare two trajectories with benchstat (see the README's Performance
// section). TestPortAccessSteadyStateZeroAllocs turns the hot path's
// zero-allocation property into a regression test, so CI fails if an
// allocation sneaks back into the per-reference path.
package perfbench
