package perfbench

import (
	"testing"

	"dspatch/internal/core"
	"dspatch/internal/dram"
	"dspatch/internal/memaddr"
	"dspatch/internal/memsys"
	"dspatch/internal/prefetch"
	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// refStream deterministically mixes strided streams with recurring spatial
// visits, exercising hits, misses, prefetch issue and in-flight merging
// without the cost of a full trace generator. The xorshift keeps it
// allocation-free and reproducible.
type refStream struct {
	x   uint64
	n   uint64
	now uint64
}

func (r *refStream) next() (now uint64, pc memaddr.PC, line memaddr.Line, write bool) {
	r.x ^= r.x << 13
	r.x ^= r.x >> 7
	r.x ^= r.x << 17
	r.n++
	r.now += 3 + r.x&31
	page := memaddr.Page(r.x >> 40 & 0x3FF)
	off := int(r.n) & (memaddr.LinesPage - 1)
	return r.now, memaddr.PC(0x400000 + r.x>>55*4), page.Line(off), r.x&15 == 0
}

// pace bounds how far the stream's issue clock may lag behind completions,
// playing the role of the core model's ROB/load-buffer limit: a real core
// cannot keep issuing thousands of cycles behind its outstanding misses.
func (r *refStream) pace(done uint64) {
	const window = 4096
	if done > r.now+window {
		r.now = done - window
	}
}

// access drives one reference through the port at core-like pacing.
func (r *refStream) access(p *memsys.Port) {
	r.pace(p.Access(r.next()))
}

func newPort(l2pf func() prefetch.Prefetcher) *memsys.Port {
	cfg := memsys.DefaultConfig(2 << 20)
	d := dram.New(dram.DDR4(1, 2133))
	l1 := func() prefetch.Prefetcher { return prefetch.NewStride(prefetch.DefaultStrideConfig()) }
	return memsys.NewSystem(cfg, d, 1, l1, l2pf).Port(0)
}

// BenchmarkPortAccess measures the full per-reference memory-system path —
// L1 lookup, stride training, miss handling, prefetch queue drain — the
// innermost loop of every simulation. Steady state must not allocate.
func BenchmarkPortAccess(b *testing.B) {
	p := newPort(func() prefetch.Prefetcher { return core.New(core.DefaultConfig()) })
	s := &refStream{x: 0x9E3779B97F4A7C15}
	// Warm the hierarchy and the port's scratch buffers out of the timed loop.
	for i := 0; i < 50_000; i++ {
		s.access(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.access(p)
	}
}

// TestPortAccessSteadyStateZeroAllocs enforces the tentpole invariant: after
// warmup, Port.Access performs no heap allocation, for the DSPatch+SPP
// configuration that stresses every structure on the path. The prefetchers'
// telemetry counters are always on (plain uint64 increments in Train; the
// CollectStats flag only snapshots them at finish time), so this guard also
// proves the stats layer adds nothing to the access path.
func TestPortAccessSteadyStateZeroAllocs(t *testing.T) {
	p := newPort(func() prefetch.Prefetcher { return sim.NewPrefetcher(sim.PFDSPatchSPP) })
	s := &refStream{x: 0x9E3779B97F4A7C15}
	for i := 0; i < 50_000; i++ {
		s.access(p)
	}
	allocs := testing.AllocsPerRun(10_000, func() {
		s.access(p)
	})
	if allocs != 0 {
		t.Errorf("Port.Access allocates %.2f times per access in steady state, want 0", allocs)
	}
}

// BenchmarkDRAMAccess measures the DDR4 timing model alone: bank mapping,
// row-buffer state machine, bus scheduling and the bandwidth monitor.
func BenchmarkDRAMAccess(b *testing.B) {
	d := dram.New(dram.DDR4(2, 2133))
	var now uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += 17
		d.AccessPriority(now, memaddr.Line(uint64(i)*97), i&7 == 0, i&1 == 0)
	}
}

// BenchmarkDSPatchTrain measures the prefetcher itself: PB lookup, pattern
// accumulation, anchoring/compression on evictions and SPT prediction.
func BenchmarkDSPatchTrain(b *testing.B) {
	d := core.New(core.DefaultConfig())
	ctx := prefetch.StaticContext{Util: 1}
	var dst []prefetch.Request
	s := &refStream{x: 0x2545F4914F6CDD1D}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, pc, line, write := s.next()
		dst = d.Train(prefetch.Access{PC: pc, Line: line, Write: write}, ctx, dst[:0])
	}
}

// BenchmarkEndToEnd measures one complete single-thread simulation (trace
// generation, core model, hierarchy, DSPatch+SPP) in references per second —
// the unit the BENCH trajectory tracks.
func BenchmarkEndToEnd(b *testing.B) {
	w, ok := trace.ByName("tpcc")
	if !ok {
		b.Fatal("workload roster is missing tpcc")
	}
	opt := sim.DefaultST()
	opt.Refs = 20_000
	opt.L2 = sim.PFDSPatchSPP
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.RunSingle(w, opt)
	}
	b.ReportMetric(float64(opt.Refs)*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}
