package perfbench

import (
	"testing"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// TestSimRunSteadyStateZeroAllocs enforces the allocation discipline at the
// whole-simulation level for one workload of every category — not just the
// Port.Access micro-path. A run's heap allocations must be entirely
// per-run setup (caches, cores, prefetcher tables): growing the simulated
// reference count must not grow the allocation count, i.e. the steady-state
// loop — trace replay included — allocates nothing per reference.
//
// The tpcc family used to fail this at ~0.41 allocs/ref: the spatial
// generator allocated two slices per footprint pattern on every run. The
// shared-slab construction plus the materialize-once replay store hold the
// marginal cost at zero.
//
// The check runs with CollectStats both off and on. The telemetry layer's
// contract is that models count into plain fields on the hot path and the
// flag only triggers a finish-time snapshot, so the snapshot cost is per-run
// setup that cancels between the short and long runs — the steady-state
// slope must stay at zero in both modes.
func TestSimRunSteadyStateZeroAllocs(t *testing.T) {
	const (
		shortRefs = 2_000
		longRefs  = 12_000
		// maxPerRef bounds (allocs(long) - allocs(short)) / (long - short).
		// Zero in practice; the epsilon absorbs one-off amortized growth of
		// append-managed scratch (prefetch queues) crossing a size class.
		maxPerRef = 0.005
	)
	for _, collectStats := range []bool{false, true} {
		for _, cat := range trace.Categories {
			ws := trace.ByCategory(cat)
			if len(ws) == 0 {
				t.Fatalf("category %s has no workloads", cat)
			}
			w := ws[0]
			short := sim.DefaultST()
			short.Refs = shortRefs
			short.L2 = sim.PFDSPatchSPP
			short.CollectStats = collectStats
			long := short
			long.Refs = longRefs

			// Materialize the shared trace out of the measured region.
			sim.RunSingle(w, long)

			sAllocs := testing.AllocsPerRun(3, func() { sim.RunSingle(w, short) })
			lAllocs := testing.AllocsPerRun(3, func() { sim.RunSingle(w, long) })
			perRef := (lAllocs - sAllocs) / float64(longRefs-shortRefs)
			if perRef > maxPerRef {
				t.Errorf("%s/%s (stats=%t): %.4f allocs per steady-state reference (short run %.0f, long run %.0f), want ~0",
					cat, w.Name, collectStats, perRef, sAllocs, lAllocs)
			}
		}
	}
}
