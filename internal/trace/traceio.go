package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"dspatch/internal/memaddr"
)

// traceMagic opens every trace file; the trailing digits version the layout.
const traceMagic = "DSPTRC01"

// Export writes the first n recorded refs of the stream (n <= 0, or n past
// the recording, means everything recorded) as a self-describing binary
// scenario file: the magic, the identifying header (name, seed, ref count),
// the five columns, and a trailing CRC-32 over everything after the magic.
// Files are loadable with Import in any later process — traces recorded
// from the synthetic generators and traces captured externally become the
// same kind of artifact.
func (m *Materialized) Export(w io.Writer, n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.decodeIfNeededLocked(); err != nil {
		return err
	}
	if n <= 0 || n > m.n {
		n = m.n
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)

	writeUvarint(out, uint64(len(m.name)))
	io.WriteString(out, m.name)
	writeUvarint(out, zigzag(m.seed))
	writeUvarint(out, uint64(n))

	// The whole dictionary ships even for a prefix export: unreferenced
	// entries only cost a few bytes and keep the columns index-compatible.
	writeUvarint(out, uint64(len(m.pcDict)))
	for _, pc := range m.pcDict {
		writeUvarint(out, uint64(pc))
	}
	// Lines travel delta-encoded (zigzag-varint): most deltas are a few
	// lines, so the dominant column compresses to a byte or two per ref.
	deltas := make([]byte, 0, 2*n)
	var last memaddr.Line
	var vbuf [binary.MaxVarintLen64]byte
	for _, l := range m.lines[:n] {
		d := int64(l) - int64(last)
		last = l
		deltas = append(deltas, vbuf[:binary.PutUvarint(vbuf[:], zigzag(d))]...)
	}
	writeUvarint(out, uint64(len(deltas)))
	out.Write(deltas)
	var buf [4]byte
	for _, idx := range m.pcIdx[:n] {
		binary.LittleEndian.PutUint32(buf[:], idx)
		out.Write(buf[:4])
	}
	for _, g := range m.gaps[:n] {
		binary.LittleEndian.PutUint16(buf[:2], g)
		out.Write(buf[:2])
	}
	// The flag columns travel as ceil(n/64) words: the complete words plus,
	// when n is not word-aligned, the partial word (which may live in the
	// in-progress accumulator or mid-array for a prefix export), masked to
	// the exported refs.
	writeFlagColumn := func(words []uint64, cur uint64) {
		var b [8]byte
		for _, v := range words[:n/64] {
			binary.LittleEndian.PutUint64(b[:], v)
			out.Write(b[:])
		}
		if n%64 != 0 {
			partial := cur
			if n/64 < len(words) {
				partial = words[n/64]
			}
			partial &= uint64(1)<<uint(n%64) - 1
			binary.LittleEndian.PutUint64(b[:], partial)
			out.Write(b[:])
		}
	}
	writeFlagColumn(m.write, m.writeCur)
	writeFlagColumn(m.dep, m.depCur)

	binary.LittleEndian.PutUint32(buf[:4], crc.Sum32())
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// Import reads a trace file written by Export, eagerly: the whole stream is
// read, checksummed and decoded before it returns. A truncated, corrupted or
// differently-versioned file returns an error rather than a partially-loaded
// trace. For O(1)-startup loading of files on disk, see ImportFile.
func Import(r io.Reader) (*Materialized, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: import: %w", err)
	}
	m, err := importBytes(data, nil)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ImportFile opens a trace file written by Export with O(1) startup cost:
// only the header (magic, name, seed, ref count) is parsed up front — the
// column payload is memory-mapped where the platform supports it and
// checksummed + decoded on first replay, so importing a huge trace costs
// almost nothing until a simulation actually pulls refs. Corruption past the
// header is still rejected before the first ref replays: Validate surfaces
// the decode error eagerly, and Cursor panics with it otherwise.
func ImportFile(path string) (*Materialized, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: import %s: %w", path, err)
	}
	m, err := importBytes(data, unmap)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	return m, nil
}

// importBytes parses only the header of an exported trace — magic, name,
// seed, ref count — and returns a Materialized whose columns decode lazily
// from the retained body on first use. unmap, when non-nil, releases data's
// backing mapping once the columns are decoded (or decoding fails).
func importBytes(data []byte, unmap func()) (*Materialized, error) {
	if len(data) < len(traceMagic)+4 {
		return nil, fmt.Errorf("trace: import: file too short (%d bytes)", len(data))
	}
	if string(data[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("trace: import: bad magic %q (want %q)", data[:len(traceMagic)], traceMagic)
	}
	body, tail := data[len(traceMagic):len(data)-4], data[len(data)-4:]

	d := &decoder{b: body}
	nameLen := d.uvarint()
	if d.err == nil && nameLen > uint64(len(body)) {
		return nil, fmt.Errorf("trace: import: implausible name length %d for a %d-byte body", nameLen, len(body))
	}
	name := string(d.take(int(nameLen)))
	seed := unzigzag(d.uvarint())
	n := int(d.uvarint())
	if d.err != nil {
		return nil, fmt.Errorf("trace: import: %w", d.err)
	}
	// Validate the declared count against the body size before allocating
	// anything from it: a hostile or hand-mangled file must be rejected, not
	// trusted into a huge or negative make(). Every ref costs at least 6
	// bytes across the fixed-width columns.
	if n < 0 || n > len(body)/6 {
		return nil, fmt.Errorf("trace: import: implausible ref count %d for a %d-byte body", n, len(body))
	}
	return &Materialized{
		name:    name,
		seed:    seed,
		n:       n,
		raw:     body,
		hdrOff:  len(body) - len(d.b),
		fileCRC: binary.LittleEndian.Uint32(tail),
		unmap:   unmap,
	}, nil
}

// decodeIfNeededLocked decodes a lazily-imported trace's columns on first
// use, releasing the raw body (and its file mapping) either way and latching
// a failure so every later caller sees the same rejection. Fully-decoded and
// generator-backed traces return nil immediately. Callers hold m.mu.
func (m *Materialized) decodeIfNeededLocked() error {
	if m.decodeErr != nil {
		return m.decodeErr
	}
	if m.raw == nil {
		return nil
	}
	err := m.decodeColumnsLocked()
	m.raw = nil
	if m.unmap != nil {
		m.unmap()
		m.unmap = nil
	}
	if err != nil {
		// A failed decode must leave no partial columns behind.
		m.lines, m.pcIdx, m.gaps, m.write, m.dep, m.pcDict = nil, nil, nil, nil, nil, nil
		m.writeCur, m.depCur = 0, 0
		m.decodeErr = err
	}
	return err
}

// decodeColumnsLocked verifies the body checksum and decodes the five
// columns into m. The CRC is verified before any content is trusted, exactly
// as the eager import always did — lazy loading moves the verification to
// first replay, it never skips it.
func (m *Materialized) decodeColumnsLocked() error {
	body := m.raw
	if got := crc32.ChecksumIEEE(body); got != m.fileCRC {
		return fmt.Errorf("trace: import: CRC mismatch (file %08x, computed %08x)", m.fileCRC, got)
	}
	n := m.n
	d := &decoder{b: body[m.hdrOff:]}
	dictLen := int(d.uvarint())
	if dictLen < 0 || dictLen > len(body) {
		return fmt.Errorf("trace: import: implausible PC dictionary size %d", dictLen)
	}
	m.pcDict = make([]memaddr.PC, dictLen)
	for i := range m.pcDict {
		m.pcDict[i] = memaddr.PC(d.uvarint())
	}
	deltaLen := int(d.uvarint())
	deltas := d.take(deltaLen)
	if d.err == nil {
		m.lines = make([]memaddr.Line, 0, n)
		var last memaddr.Line
		for i := 0; i < n; i++ {
			u, w := binary.Uvarint(deltas)
			if w <= 0 {
				return fmt.Errorf("trace: import: truncated delta column at ref %d", i)
			}
			deltas = deltas[w:]
			last = memaddr.Line(int64(last) + unzigzag(u))
			m.lines = append(m.lines, last)
		}
	}
	m.pcIdx = make([]uint32, n)
	for i := range m.pcIdx {
		m.pcIdx[i] = binary.LittleEndian.Uint32(d.take(4))
	}
	m.gaps = make([]uint16, n)
	for i := range m.gaps {
		m.gaps[i] = binary.LittleEndian.Uint16(d.take(2))
	}
	// Split the flag columns back into complete words + the partial word
	// (held out-of-array in memory; see Materialized).
	full := n / 64
	readFlagColumn := func() ([]uint64, uint64) {
		words := make([]uint64, full)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(d.take(8))
		}
		var cur uint64
		if n%64 != 0 {
			cur = binary.LittleEndian.Uint64(d.take(8))
		}
		return words, cur
	}
	m.write, m.writeCur = readFlagColumn()
	m.dep, m.depCur = readFlagColumn()
	if d.err != nil {
		return fmt.Errorf("trace: import: %w", d.err)
	}
	for _, idx := range m.pcIdx {
		if int(idx) >= dictLen {
			return fmt.Errorf("trace: import: PC index %d outside dictionary of %d", idx, dictLen)
		}
	}
	return nil
}

// decoder walks the import body, latching the first structural error so the
// parse above stays linear.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.b) {
		if d.err == nil {
			d.err = fmt.Errorf("truncated body (need %d bytes, have %d)", n, len(d.b))
		}
		return make([]byte, max(n, 0))
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, w := binary.Uvarint(d.b)
	if w <= 0 {
		d.err = fmt.Errorf("truncated varint")
		return 0
	}
	d.b = d.b[w:]
	return u
}

// writeUvarint writes a varint to w; errors surface through the CRC check on
// the read side and the final Flush on the write side.
func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	w.Write(buf[:binary.PutUvarint(buf[:], v)])
}
