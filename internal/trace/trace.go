// Package trace generates the synthetic memory access streams that stand in
// for the paper's 75 proprietary workload traces (SPEC CPU2006/2017, Client,
// Server, HPC, Cloud, SYSmark — the repository README's experiment index
// explains the substitution argument).
//
// Each generator reproduces the access-pattern property the paper attributes
// to its suite: dense regular strides and delta series (HPC, FSPEC),
// recurring spatial footprints shuffled by out-of-order execution and keyed
// by large code footprints (Cloud, SYSmark, ISPEC17, TPC-C), sparse
// pointer-chasing (ISPEC06 mcf), and mixtures thereof. Generators are
// deterministic functions of their seed.
package trace

import (
	"math/rand"

	"dspatch/internal/memaddr"
)

// Ref is one memory reference of a trace.
type Ref struct {
	PC    memaddr.PC
	Line  memaddr.Line
	Write bool
	// Gap is the number of non-memory instructions preceding this
	// reference; it sets the workload's memory intensity.
	Gap int
	// Dep marks the reference's address as dependent on the previous load
	// (pointer chasing, loop-carried indices). Dependent loads serialize in
	// the core and bound memory-level parallelism.
	Dep bool
}

// Generator produces an infinite reference stream; the simulator bounds it.
type Generator interface {
	Next(r *Ref)
}

// gapper draws instruction gaps around a mean (uniform in [mean/2, 3mean/2]).
type gapper struct {
	rng  *rand.Rand
	mean int
}

func (g gapper) gap() int {
	if g.mean <= 1 {
		return 1
	}
	return g.mean/2 + g.rng.Intn(g.mean)
}

// StreamConfig parameterizes a multi-stream sequential generator.
type StreamConfig struct {
	Streams   int     `json:"streams"`      // concurrent streams
	StrideLns int     `json:"stride_lines"` // lines per step (1 = next line)
	PagePool  int     `json:"page_pool"`    // distinct pages the streams wander across
	MeanGap   int     `json:"mean_gap"`
	WriteFrac float64 `json:"write_frac,omitempty"`
	// PCCount is the number of distinct load PCs driving the streams. When
	// smaller than Streams (indirect or merged access patterns), a PC-based
	// stride prefetcher sees interleaved streams and loses confidence, while
	// page-local prefetchers (SPP) are unaffected. 0 means one PC per stream.
	PCCount    int `json:"pc_count,omitempty"`
	RestartPct int `json:"restart_pct,omitempty"` // chance (percent) per step that a stream jumps elsewhere
	// DepPct is the percentage of references carrying an address dependence
	// on the previous load (0 = fully independent index streams).
	DepPct int `json:"dep_pct,omitempty"`
}

type streamState struct {
	line memaddr.Line
	pc   memaddr.PC
}

type streamGen struct {
	cfg     StreamConfig
	rng     *rand.Rand
	g       gapper
	streams []streamState
}

// NewStream builds a streaming generator: k independent sequential streams
// (HPC, FSPEC kernels, memcpy-style client work).
func NewStream(cfg StreamConfig, seed int64) Generator {
	rng := rand.New(rand.NewSource(seed))
	s := &streamGen{cfg: cfg, rng: rng, g: gapper{rng, cfg.MeanGap}}
	s.streams = make([]streamState, 0, cfg.Streams)
	pcs := cfg.PCCount
	if pcs <= 0 {
		pcs = cfg.Streams
	}
	for i := 0; i < cfg.Streams; i++ {
		s.streams = append(s.streams, streamState{
			line: memaddr.Line(rng.Intn(cfg.PagePool)) * memaddr.LinesPage,
			pc:   memaddr.PC(0x400000 + (i%pcs)*4),
		})
	}
	return s
}

func (s *streamGen) Next(r *Ref) {
	i := s.rng.Intn(len(s.streams))
	st := &s.streams[i]
	if s.cfg.RestartPct > 0 && s.rng.Intn(100) < s.cfg.RestartPct {
		st.line = memaddr.Line(s.rng.Intn(s.cfg.PagePool)) * memaddr.LinesPage
	}
	st.line += memaddr.Line(s.cfg.StrideLns)
	r.PC = st.pc
	r.Line = st.line
	r.Write = s.rng.Float64() < s.cfg.WriteFrac
	r.Gap = s.g.gap()
	r.Dep = s.rng.Intn(100) < s.cfg.DepPct
}

// DeltaSeriesConfig parameterizes a repeating in-page delta series — the
// pattern family BOP's global deltas capture best (e.g. local deltas
// 1,2,1,2 → global delta 3).
type DeltaSeriesConfig struct {
	Deltas    []int   `json:"deltas"`
	PagePool  int     `json:"page_pool"`
	MeanGap   int     `json:"mean_gap"`
	WriteFrac float64 `json:"write_frac,omitempty"`
	DepPct    int     `json:"dep_pct,omitempty"`
}

type deltaGen struct {
	cfg   DeltaSeriesConfig
	rng   *rand.Rand
	g     gapper
	page  memaddr.Page
	off   int
	step  int
	pc    memaddr.PC
	pages int
}

// NewDeltaSeries builds a repeating-delta generator.
func NewDeltaSeries(cfg DeltaSeriesConfig, seed int64) Generator {
	rng := rand.New(rand.NewSource(seed))
	return &deltaGen{cfg: cfg, rng: rng, g: gapper{rng, cfg.MeanGap}, pc: 0x500000, off: -1}
}

func (d *deltaGen) Next(r *Ref) {
	if d.off < 0 || d.off >= memaddr.LinesPage {
		d.page = memaddr.Page(d.rng.Intn(d.cfg.PagePool))
		d.off = d.rng.Intn(4)
		d.step = 0
	} else {
		d.off += d.cfg.Deltas[d.step%len(d.cfg.Deltas)]
		d.step++
		if d.off < 0 || d.off >= memaddr.LinesPage {
			d.page = memaddr.Page(d.rng.Intn(d.cfg.PagePool))
			d.off = d.rng.Intn(4)
			d.step = 0
		}
	}
	r.PC = d.pc
	r.Line = d.page.Line(d.off)
	r.Write = d.rng.Float64() < d.cfg.WriteFrac
	r.Gap = d.g.gap()
	r.Dep = d.rng.Intn(100) < d.cfg.DepPct
}

// SpatialConfig parameterizes the recurring-footprint generator: the
// workload family where spatial bit-pattern prefetchers (SMS, DSPatch) beat
// delta prefetchers.
type SpatialConfig struct {
	Patterns  int     `json:"patterns"`             // distinct footprints ≈ code footprint (trigger PCs)
	Density   int     `json:"density"`              // lines per footprint
	Reorder   int     `json:"reorder,omitempty"`    // shuffle window ≈ OoO reordering depth (0 = in order)
	JitterPct int     `json:"jitter_pct,omitempty"` // chance a footprint line is dropped / an extra added
	PagePool  int     `json:"page_pool"`            // pages being revisited
	MeanGap   int     `json:"mean_gap"`
	WriteFrac float64 `json:"write_frac,omitempty"`
	DepPct    int     `json:"dep_pct,omitempty"` // body-access dependence percentage (triggers always depend)
	// TriggerVarPct is the chance that out-of-order execution makes some
	// line other than the footprint's canonical head the temporally first
	// access of a visit (the paper's Fig. 2 reordering effect). Bit-pattern
	// prefetchers keyed on raw (PC, offset) signatures fragment under this;
	// DSPatch's trigger-anchored rotation absorbs it.
	TriggerVarPct int `json:"trigger_var_pct,omitempty"`
	// Placements is how many distinct in-page base offsets each footprint
	// recurs at (heap objects land wherever the allocator put them). Raw
	// (PC, offset) signatures fragment across placements; trigger-anchored
	// patterns collapse them into one. 0 or 1 pins footprints in place.
	Placements int  `json:"placements,omitempty"`
	Segment1   bool `json:"segment1,omitempty"` // footprints may live in the upper 2KB too
}

type spatialGen struct {
	cfg    SpatialConfig
	rng    *rand.Rand
	g      gapper
	foot   [][]int // per pattern: relative line offsets, [0] is the head
	places [][]int // per pattern: base offsets the footprint recurs at
	pc0    memaddr.PC
	queue  []int // index order of the current visit's footprint lines
	page   memaddr.Page
	pat    int
	base   int // current visit's placement base
	qi     int
}

// NewSpatial builds a recurring-footprint generator.
func NewSpatial(cfg SpatialConfig, seed int64) Generator {
	rng := rand.New(rand.NewSource(seed))
	s := &spatialGen{cfg: cfg, rng: rng, g: gapper{rng, cfg.MeanGap}, pc0: 0x600000}
	lim := memaddr.LinesSeg
	if cfg.Segment1 {
		lim = memaddr.LinesPage
	}
	// All footprints and placement lists live in two shared slabs. Code-heavy
	// workloads build thousands of patterns per generator; per-pattern slices
	// made generator construction ~0.4 heap objects per simulated reference
	// on the tpcc family.
	maxDensity := max(cfg.Density, 1)
	nPlace := max(cfg.Placements, 1)
	footSlab := make([]int, cfg.Patterns*maxDensity)
	placeSlab := make([]int, cfg.Patterns*nPlace)
	s.foot = make([][]int, 0, cfg.Patterns)
	s.places = make([][]int, 0, cfg.Patterns)
	for p := 0; p < cfg.Patterns; p++ {
		// Footprints are generated relative to their head line (offset 0)
		// within a span of about a third of the region, leaving room for
		// placement variation and keeping most visits inside one 2KB
		// segment (real spatial footprints are object-sized).
		span := lim / 3
		foot := append(footSlab[p*maxDensity:p*maxDensity:(p+1)*maxDensity], 0)
		// seen is indexed by in-span offset (< LinesPage); an array keeps
		// workload construction allocation-free — building 75 generators per
		// figure was 96% of the simulator's allocation count as maps.
		var seen [memaddr.LinesPage]bool
		seen[0] = true
		// Real spatial footprints cluster: most deltas are ±1 (paper
		// Fig. 11a), and structures are allocator-aligned, so build the
		// footprint from short 128B-aligned runs (even start offsets) with
		// pair-lengths dominating — which is also what makes the paper's
		// 128B-granularity compression cheap (Fig. 11b).
		density := cfg.Density
		if density > span {
			density = span // a footprint cannot exceed its span
		}
		for len(foot) < density {
			start := 2 * rng.Intn(span/2)
			runLen := 2
			switch r := rng.Intn(100); {
			case r < 15:
				runLen = 1
			case r < 30:
				runLen = 3
			case r < 45:
				runLen = 4
			}
			for k := 0; k < runLen && len(foot) < density; k++ {
				o := start + k
				if o >= span {
					break
				}
				if seen[o] {
					continue // extend the run past already-chosen lines
				}
				seen[o] = true
				foot = append(foot, o)
			}
		}
		s.foot = append(s.foot, foot)
		// Placements are 128B-aligned (allocators align sizable objects)
		// and segment-contained, so a footprint recurs at varying bases
		// without straddling the 2KB boundary or flipping the compression
		// pairing.
		places := placeSlab[p*nPlace : (p+1)*nPlace]
		for i := 1; i < nPlace; i++ {
			seg := 0
			if cfg.Segment1 {
				seg = rng.Intn(2)
			}
			room := (memaddr.LinesSeg - span) / 2
			if room < 1 {
				room = 1
			}
			places[i] = seg*memaddr.LinesSeg + 2*rng.Intn(room)
		}
		s.places = append(s.places, places)
	}
	return s
}

func (s *spatialGen) startVisit() {
	s.pat = s.rng.Intn(len(s.foot))
	s.page = memaddr.Page(s.rng.Intn(s.cfg.PagePool))
	s.base = s.places[s.pat][s.rng.Intn(len(s.places[s.pat]))]
	base := s.foot[s.pat]
	// Emit footprint-line indices (so each access keeps its per-line PC).
	s.queue = s.queue[:0]
	for i := range base {
		if i > 0 && s.cfg.JitterPct > 0 && s.rng.Intn(100) < s.cfg.JitterPct {
			continue // dropped line this generation
		}
		s.queue = append(s.queue, i)
	}
	// Out-of-order trigger variation: sometimes a non-head line lands first.
	if s.cfg.TriggerVarPct > 0 && len(s.queue) > 1 && s.rng.Intn(100) < s.cfg.TriggerVarPct {
		j := 1 + s.rng.Intn(min(3, len(s.queue)-1))
		s.queue[0], s.queue[j] = s.queue[j], s.queue[0]
	}
	// Bounded shuffle of the body within the reorder window.
	w := s.cfg.Reorder
	if w > 1 {
		for i := 1; i < len(s.queue); i++ {
			j := i + s.rng.Intn(min(w, len(s.queue)-i))
			s.queue[i], s.queue[j] = s.queue[j], s.queue[i]
		}
	}
	s.qi = 0
}

func (s *spatialGen) Next(r *Ref) {
	if s.qi >= len(s.queue) {
		s.startVisit()
	}
	idx := s.queue[s.qi]
	isFirst := s.qi == 0
	s.qi++
	var off int
	if idx < 0 {
		// Spurious extra access from a scratch PC.
		off = -1 - idx
		r.PC = s.pc0 + memaddr.PC(900000)
		r.Dep = s.rng.Intn(100) < s.cfg.DepPct
	} else {
		off = (s.base + s.foot[s.pat][idx]) % memaddr.LinesPage
		// Every footprint line has its own static PC, so whichever line the
		// reordered visit touches first provides a stable trigger signature.
		r.PC = s.pc0 + memaddr.PC((s.pat*64+idx)*4)
		if isFirst {
			// The visit's first access comes from freshly computed pointers
			// and serializes against preceding work.
			r.Dep = true
		} else {
			r.Dep = s.rng.Intn(100) < s.cfg.DepPct
		}
	}
	r.Line = s.page.Line(off)
	r.Write = s.rng.Float64() < s.cfg.WriteFrac
	r.Gap = s.g.gap()
}

// ChaseConfig parameterizes pointer-chasing: near-random lines, few accesses
// per page — the prefetch-hostile tail (mcf, omnetpp).
type ChaseConfig struct {
	FootprintPages int     `json:"footprint_pages"`
	PerPage        int     `json:"per_page"` // accesses per visited page (1–3)
	MeanGap        int     `json:"mean_gap"`
	WriteFrac      float64 `json:"write_frac,omitempty"`
}

type chaseGen struct {
	cfg  ChaseConfig
	rng  *rand.Rand
	g    gapper
	page memaddr.Page
	left int
}

// NewChase builds a pointer-chasing generator.
func NewChase(cfg ChaseConfig, seed int64) Generator {
	rng := rand.New(rand.NewSource(seed))
	return &chaseGen{cfg: cfg, rng: rng, g: gapper{rng, cfg.MeanGap}}
}

func (c *chaseGen) Next(r *Ref) {
	if c.left == 0 {
		c.page = memaddr.Page(c.rng.Intn(c.cfg.FootprintPages))
		c.left = 1 + c.rng.Intn(c.cfg.PerPage)
	}
	c.left--
	r.PC = memaddr.PC(0x700000 + c.rng.Intn(8)*4)
	r.Line = c.page.Line(c.rng.Intn(memaddr.LinesPage))
	r.Write = c.rng.Float64() < c.cfg.WriteFrac
	r.Gap = c.g.gap()
	r.Dep = true // pointer chasing serializes by definition
}

// Mix interleaves generators with the given weights.
type mixGen struct {
	rng     *rand.Rand
	gens    []Generator
	weights []int
	total   int
}

// NewMix builds a weighted interleaving of sub-generators.
func NewMix(seed int64, gens []Generator, weights []int) Generator {
	if len(gens) != len(weights) || len(gens) == 0 {
		panic("trace: mix needs matching generators and weights")
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	return &mixGen{rng: rand.New(rand.NewSource(seed)), gens: gens, weights: weights, total: total}
}

// mixRegionLines separates mix components in the address space: distinct
// data structures live at distinct addresses, so one component's pages never
// alias another's.
const mixRegionLines = 1 << 28 // 16GB per component

func (m *mixGen) Next(r *Ref) {
	t := m.rng.Intn(m.total)
	for i, w := range m.weights {
		if t < w {
			m.gens[i].Next(r)
			r.Line += memaddr.Line(uint64(i) * mixRegionLines)
			return
		}
		t -= w
	}
	last := len(m.gens) - 1
	m.gens[last].Next(r)
	r.Line += memaddr.Line(uint64(last) * mixRegionLines)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
