package trace

import (
	"testing"

	"dspatch/internal/memaddr"
)

func drain(g Generator, n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

func TestStreamSequential(t *testing.T) {
	g := NewStream(StreamConfig{Streams: 1, StrideLns: 1, PagePool: 100, MeanGap: 5}, 1)
	refs := drain(g, 100)
	for i := 1; i < len(refs); i++ {
		if refs[i].Line != refs[i-1].Line+1 {
			t.Fatalf("single stream not sequential at %d: %d -> %d", i, refs[i-1].Line, refs[i].Line)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := drain(NewStream(StreamConfig{Streams: 4, StrideLns: 1, PagePool: 50, MeanGap: 8}, 42), 500)
	b := drain(NewStream(StreamConfig{Streams: 4, StrideLns: 1, PagePool: 50, MeanGap: 8}, 42), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at ref %d", i)
		}
	}
	c := drain(NewStream(StreamConfig{Streams: 4, StrideLns: 1, PagePool: 50, MeanGap: 8}, 43), 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGapsAroundMean(t *testing.T) {
	g := NewStream(StreamConfig{Streams: 2, StrideLns: 1, PagePool: 50, MeanGap: 10}, 7)
	refs := drain(g, 5000)
	sum := 0
	for _, r := range refs {
		if r.Gap < 5 || r.Gap > 15 {
			t.Fatalf("gap %d outside [mean/2, 3mean/2]", r.Gap)
		}
		sum += r.Gap
	}
	mean := float64(sum) / float64(len(refs))
	if mean < 8 || mean < 5 || mean > 12 {
		t.Errorf("mean gap = %.1f, want ≈10", mean)
	}
}

func TestDeltaSeriesPattern(t *testing.T) {
	g := NewDeltaSeries(DeltaSeriesConfig{Deltas: []int{1, 2}, PagePool: 10, MeanGap: 5}, 3)
	refs := drain(g, 200)
	// Within a page run, consecutive deltas must alternate 1,2.
	okRuns := 0
	for i := 2; i < len(refs); i++ {
		if refs[i].Line.Page() == refs[i-1].Line.Page() && refs[i-1].Line.Page() == refs[i-2].Line.Page() {
			d1 := int(refs[i-1].Line) - int(refs[i-2].Line)
			d2 := int(refs[i].Line) - int(refs[i-1].Line)
			if (d1 == 1 && d2 == 2) || (d1 == 2 && d2 == 1) {
				okRuns++
			}
		}
	}
	if okRuns < 50 {
		t.Errorf("delta series not repeating: %d consistent windows", okRuns)
	}
}

func TestSpatialFootprintRecurs(t *testing.T) {
	g := NewSpatial(SpatialConfig{Patterns: 4, Density: 6, Reorder: 4, JitterPct: 0,
		PagePool: 50, MeanGap: 5}, 11)
	refs := drain(g, 6000)
	// Group refs by page generation: same trigger PC should imply the same
	// footprint (set of relative offsets from trigger).
	visits := map[memaddr.PC]map[string]int{}
	cur := map[int]bool{}
	var curPC memaddr.PC
	var curPage memaddr.Line = 1 << 60
	flush := func() {
		if len(cur) == 0 {
			return
		}
		key := ""
		for o := 0; o < 64; o++ {
			if cur[o] {
				key += "1"
			} else {
				key += "0"
			}
		}
		if visits[curPC] == nil {
			visits[curPC] = map[string]int{}
		}
		visits[curPC][key]++
		cur = map[int]bool{}
	}
	for _, r := range refs {
		pg := memaddr.Line(r.Line.Page())
		if pg != curPage {
			flush()
			curPage = pg
			curPC = r.PC
		}
		cur[r.Line.PageOffset()] = true
	}
	flush()
	// With zero jitter, each trigger PC's dominant footprint should account
	// for the large majority of its visits. (Back-to-back visits landing on
	// the same page merge into one observation, so a few unions appear.)
	for pc, foots := range visits {
		best, total := 0, 0
		for _, n := range foots {
			total += n
			if n > best {
				best = n
			}
		}
		if total >= 10 && float64(best) < 0.7*float64(total) {
			t.Errorf("PC %#x: dominant footprint covers %d of %d visits", pc, best, total)
		}
	}
	if len(visits) == 0 {
		t.Fatal("no visits recorded")
	}
}

func TestSpatialReordersWithinVisit(t *testing.T) {
	inOrder := drain(NewSpatial(SpatialConfig{Patterns: 1, Density: 8, Reorder: 0,
		PagePool: 10, MeanGap: 5}, 5), 64)
	shuffled := drain(NewSpatial(SpatialConfig{Patterns: 1, Density: 8, Reorder: 6,
		PagePool: 10, MeanGap: 5}, 5), 64)
	diff := false
	for i := range inOrder {
		if inOrder[i].Line != shuffled[i].Line {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("reorder window had no effect")
	}
}

func TestChaseSparsePages(t *testing.T) {
	g := NewChase(ChaseConfig{FootprintPages: 1000, PerPage: 2, MeanGap: 8}, 9)
	refs := drain(g, 4000)
	perPage := map[memaddr.Page]int{}
	for _, r := range refs {
		perPage[r.Line.Page()]++
	}
	// Sparse: average accesses per visited page must stay small.
	if avg := float64(len(refs)) / float64(len(perPage)); avg > 8 {
		t.Errorf("chase produced dense pages: %.1f accesses/page", avg)
	}
}

func TestMixWeights(t *testing.T) {
	a := NewStream(StreamConfig{Streams: 1, StrideLns: 1, PagePool: 10, MeanGap: 5}, 1)
	b := NewChase(ChaseConfig{FootprintPages: 100000, PerPage: 1, MeanGap: 5}, 2)
	m := NewMix(3, []Generator{a, b}, []int{9, 1})
	refs := drain(m, 5000)
	low := 0
	for _, r := range refs {
		if r.Line < 10*memaddr.LinesPage+5000 {
			low++
		}
	}
	// ~90% should come from the small-footprint stream.
	if frac := float64(low) / float64(len(refs)); frac < 0.8 || frac > 0.99 {
		t.Errorf("mix weight fraction = %.2f, want ≈0.9", frac)
	}
}

func TestMixPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMix(1, []Generator{}, []int{})
}

func TestRosterShape(t *testing.T) {
	if len(builtinSpecs()) != 75+8 {
		t.Errorf("roster has %d workloads, want 83", len(builtinSpecs()))
	}
	// The paper's 42 high-MPKI workloads plus the Irregular family's 5.
	if got := len(MemIntensive()); got != 47 {
		t.Errorf("memory-intensive set has %d workloads, want 47", got)
	}
	counts := map[Category]int{}
	names := map[string]bool{}
	for _, w := range Workloads() {
		counts[w.Category]++
		if names[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
		if w.Build == nil {
			t.Errorf("workload %q has no builder", w.Name)
		}
	}
	for _, c := range Categories {
		if counts[c] == 0 {
			t.Errorf("category %s empty", c)
		}
	}
}

func TestEveryWorkloadGenerates(t *testing.T) {
	for _, w := range Workloads() {
		g := w.Build(1)
		var r Ref
		pages := map[memaddr.Page]bool{}
		for i := 0; i < 2000; i++ {
			g.Next(&r)
			if r.Gap < 0 {
				t.Fatalf("%s: negative gap", w.Name)
			}
			pages[r.Line.Page()] = true
		}
		if len(pages) < 2 {
			t.Errorf("%s touches only %d pages", w.Name, len(pages))
		}
	}
}

func TestByNameAndCategory(t *testing.T) {
	w, ok := ByName("mcf")
	if !ok || w.Category != ISPEC06 {
		t.Errorf("ByName(mcf) = %+v, %v", w, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should miss unknown names")
	}
	if got := len(ByCategory(HPC)); got != 10 {
		t.Errorf("HPC has %d workloads, want 10", got)
	}
}
