package trace

// Category is one of the workload classes: the paper's nine (Table 4) plus
// the Irregular family this repository adds.
type Category string

// The nine classes of paper Table 4, plus Irregular.
const (
	Client    Category = "Client"
	Server    Category = "Server"
	HPC       Category = "HPC"
	FSPEC06   Category = "FSPEC06"
	ISPEC06   Category = "ISPEC06"
	FSPEC17   Category = "FSPEC17"
	ISPEC17   Category = "ISPEC17"
	Cloud     Category = "Cloud"
	SYSmark   Category = "SYSmark"
	Irregular Category = "Irregular"
)

// Categories lists the classes in presentation order: the paper's nine
// followed by Irregular, which joins every category-sweeping experiment.
var Categories = []Category{Client, Server, HPC, FSPEC06, ISPEC06, FSPEC17, ISPEC17, Cloud, SYSmark, Irregular}

// Workload is one named scenario of the registry.
type Workload struct {
	Name         string
	Category     Category
	MemIntensive bool // member of the paper's high-MPKI set
	Build        func(seed int64) Generator

	// Source records where the workload came from: SourceBuiltin,
	// SourceSpec or SourceImported.
	Source string
	// Fingerprint is the content identity of non-builtin workloads; it is
	// folded into simulation cache keys so a renamed-but-identical scenario
	// hits the cache and an edited one misses. Builtin workloads leave it
	// empty — their name alone identifies the stream.
	Fingerprint string

	// spec retains the defining ScenarioSpec of SourceSpec workloads and
	// stream the materialized refs of SourceImported ones; SpecFor uses them
	// to synthesize self-contained specs for fleet forwarding.
	spec   *ScenarioSpec
	stream *Materialized
}

// stream is shorthand for a pure streaming scenario spec. Larger stream
// counts share load PCs (real kernels walk several arrays from few static
// loads), which is what keeps a PC-indexed stride prefetcher from trivially
// covering them.
func stream(streams, stride, pool, gap int, write float64) ScenarioSpec {
	pcs := streams
	switch {
	case streams >= 6:
		pcs = streams / 3
	case streams >= 3:
		pcs = streams / 2
	}
	return ScenarioSpec{Kind: KindStream, Stream: &StreamConfig{
		Streams: streams, StrideLns: stride, PagePool: pool,
		MeanGap: gap, WriteFrac: write, PCCount: pcs, DepPct: 30, RestartPct: 1}}
}

// spatial is shorthand for a recurring-footprint scenario spec.
func spatial(patterns, density, reorder, jitter, pool, gap int, seg1 bool) ScenarioSpec {
	return ScenarioSpec{Kind: KindSpatial, Spatial: &SpatialConfig{
		Patterns: patterns, Density: density, Reorder: reorder,
		JitterPct: jitter, PagePool: pool, MeanGap: gap, WriteFrac: 0.2, DepPct: 35,
		TriggerVarPct: 10, Placements: 6, Segment1: seg1}}
}

// deltas is shorthand for a repeating-delta scenario spec.
func deltas(series []int, pool, gap int) ScenarioSpec {
	return ScenarioSpec{Kind: KindDeltas, Deltas: &DeltaSeriesConfig{
		Deltas: series, PagePool: pool, MeanGap: gap, WriteFrac: 0.15, DepPct: 40}}
}

// chase is shorthand for a pointer-chasing scenario spec.
func chase(pages, perPage, gap int) ScenarioSpec {
	return ScenarioSpec{Kind: KindChase, Chase: &ChaseConfig{
		FootprintPages: pages, PerPage: perPage, MeanGap: gap, WriteFrac: 0.1}}
}

// mix blends sub-specs with weights.
func mix(parts []ScenarioSpec, weights []int) ScenarioSpec {
	return ScenarioSpec{Kind: KindMix, Mix: &MixSpec{Parts: parts, Weights: weights}}
}

// builtinSpecs is the compiled-in roster as spec data: the 75 paper
// workloads plus the Irregular family (irregular.go). Names follow the
// paper's exemplars; parameters encode each suite's characteristic stream
// statistics (see the repository README's experiment index).
func builtinSpecs() []ScenarioSpec {
	var ss []ScenarioSpec
	add := func(name string, cat Category, hot bool, s ScenarioSpec) {
		s.Name, s.Category, s.MemIntensive = name, cat, hot
		ss = append(ss, s)
	}

	// ---- Client (6): media/compression — streams plus light footprints. ----
	add("7zip-comp", Client, true, mix(
		[]ScenarioSpec{stream(4, 1, 6000, 8, 0.25), spatial(21, 8, 4, 8, 3000, 10, false)},
		[]int{3, 2}))
	add("7zip-decomp", Client, false, mix(
		[]ScenarioSpec{stream(6, 1, 5000, 8, 0.3), chase(2500, 2, 10)},
		[]int{3, 1}))
	add("vp9-encode", Client, true, mix(
		[]ScenarioSpec{stream(8, 1, 8000, 7, 0.3), spatial(28, 10, 6, 8, 4000, 9, true)},
		[]int{3, 2}))
	add("vp9-decode", Client, false, stream(6, 1, 7000, 8, 0.25))
	add("client-photo", Client, false, mix(
		[]ScenarioSpec{stream(4, 1, 2500, 14, 0.3), spatial(42, 6, 6, 8, 1500, 16, false)},
		[]int{2, 3}))
	add("client-browser", Client, false, mix(
		[]ScenarioSpec{chase(1200, 2, 16), spatial(57, 5, 8, 8, 1200, 18, false)},
		[]int{1, 2}))

	// ---- Server (8): transaction/analytics — huge code footprints. ----
	add("tpcc", Server, true, mix(
		[]ScenarioSpec{spatial(4096, 7, 8, 8, 6000, 9, true), chase(4000, 2, 10)},
		[]int{4, 1}))
	add("specjbb", Server, true, mix(
		[]ScenarioSpec{spatial(120, 8, 6, 8, 5000, 9, true), stream(4, 1, 4000, 10, 0.2)},
		[]int{3, 2}))
	add("specjenterprise", Server, false, mix(
		[]ScenarioSpec{spatial(120, 6, 8, 8, 3000, 13, false), chase(1500, 2, 14)},
		[]int{3, 1}))
	add("spark-pagerank", Server, true, mix(
		[]ScenarioSpec{stream(10, 1, 9000, 7, 0.2), chase(5000, 1, 9)},
		[]int{3, 2}))
	add("server-kv", Server, false, mix(
		[]ScenarioSpec{spatial(120, 6, 8, 8, 5000, 9, false), chase(3000, 2, 10)},
		[]int{2, 1}))
	add("server-web", Server, false, mix(
		[]ScenarioSpec{spatial(120, 5, 8, 8, 2000, 15, false), stream(3, 1, 1500, 14, 0.25)},
		[]int{3, 1}))
	add("server-mail", Server, false, mix(
		[]ScenarioSpec{chase(1000, 2, 16), stream(3, 1, 1200, 15, 0.3)},
		[]int{1, 2}))
	add("server-olap", Server, true, mix(
		[]ScenarioSpec{stream(12, 1, 10000, 7, 0.15), spatial(114, 10, 5, 8, 5000, 8, true)},
		[]int{3, 2}))

	// ---- HPC (10): dense regular kernels; NPB adds reordered footprints. ----
	add("linpack", HPC, true, stream(8, 1, 12000, 5, 0.3))
	add("npb-cg", HPC, true, mix(
		[]ScenarioSpec{spatial(18, 14, 10, 8, 8000, 6, true), stream(4, 1, 6000, 6, 0.2)},
		[]int{3, 2}))
	add("npb-mg", HPC, true, mix(
		[]ScenarioSpec{spatial(16, 16, 8, 6, 9000, 6, true), stream(6, 1, 8000, 6, 0.25)},
		[]int{3, 2}))
	add("npb-ft", HPC, true, mix(
		[]ScenarioSpec{stream(8, 4, 10000, 6, 0.3), deltas([]int{3, 1, 3, 1}, 8000, 6)},
		[]int{2, 1}))
	add("parsec-fluid", HPC, true, stream(10, 1, 9000, 7, 0.35))
	add("parsec-stream", HPC, true, stream(12, 1, 14000, 5, 0.3))
	add("accel-lbm", HPC, true, mix(
		[]ScenarioSpec{stream(16, 1, 12000, 6, 0.4), deltas([]int{1, 2}, 6000, 7)},
		[]int{3, 1}))
	add("mpi-bt", HPC, false, stream(6, 3, 8000, 7, 0.3))
	add("hpc-fem", HPC, false, mix(
		[]ScenarioSpec{stream(5, 1, 3000, 11, 0.3), chase(2000, 2, 12)},
		[]int{3, 1}))
	add("hpc-md", HPC, false, mix(
		[]ScenarioSpec{spatial(28, 10, 6, 8, 2500, 11, false), stream(4, 1, 2000, 12, 0.25)},
		[]int{2, 3}))

	// ---- FSPEC06 (9): FP SPEC 2006 — streams and strides dominate. ----
	add("sphinx3", FSPEC06, true, stream(6, 1, 8000, 7, 0.15))
	add("soplex", FSPEC06, true, mix(
		[]ScenarioSpec{stream(5, 1, 7000, 7, 0.25), chase(3000, 2, 9)},
		[]int{3, 1}))
	add("gemsfdtd", FSPEC06, true, stream(9, 2, 10000, 6, 0.3))
	add("lbm06", FSPEC06, true, stream(14, 1, 12000, 6, 0.4))
	add("milc", FSPEC06, false, mix(
		[]ScenarioSpec{stream(7, 3, 9000, 7, 0.3), deltas([]int{2, 1, 2, 1}, 5000, 8)},
		[]int{2, 1}))
	add("leslie3d", FSPEC06, true, stream(8, 1, 9000, 7, 0.3))
	add("cactus", FSPEC06, false, stream(5, 2, 3000, 12, 0.3))
	add("namd06", FSPEC06, false, mix(
		[]ScenarioSpec{spatial(21, 8, 4, 8, 2000, 13, false), stream(3, 1, 1500, 13, 0.2)},
		[]int{2, 3}))
	add("povray06", FSPEC06, false, chase(600, 3, 18))

	// ---- ISPEC06 (8): integer SPEC 2006 — sparse, irregular. ----
	add("mcf", ISPEC06, true, mix(
		[]ScenarioSpec{chase(8000, 1, 8), spatial(42, 5, 8, 8, 6000, 8, false)},
		[]int{2, 3}))
	add("omnetpp06", ISPEC06, true, mix(
		[]ScenarioSpec{chase(5000, 2, 9), spatial(57, 4, 8, 8, 4000, 9, false)},
		[]int{1, 1}))
	add("gcc06", ISPEC06, true, mix(
		[]ScenarioSpec{spatial(86, 6, 6, 8, 4000, 9, false), stream(3, 1, 3000, 10, 0.2)},
		[]int{3, 1}))
	add("libquantum", ISPEC06, true, stream(2, 1, 11000, 6, 0.2))
	add("bzip2", ISPEC06, false, mix(
		[]ScenarioSpec{stream(4, 1, 2500, 12, 0.3), chase(1200, 2, 14)},
		[]int{3, 1}))
	add("astar", ISPEC06, false, chase(6000, 2, 9))
	add("xalanc06", ISPEC06, true, spatial(114, 5, 10, 8, 5000, 9, false))
	add("hmmer", ISPEC06, false, stream(3, 1, 1800, 13, 0.25))

	// ---- FSPEC17 (10): FP SPEC 2017 — dense, stream-heavy. ----
	add("lbm17", FSPEC17, true, stream(16, 1, 13000, 6, 0.4))
	add("cam4", FSPEC17, true, stream(7, 1, 9000, 7, 0.3))
	add("pop2", FSPEC17, true, mix(
		[]ScenarioSpec{stream(6, 1, 8000, 7, 0.3), deltas([]int{4, 1, 4, 1}, 5000, 8)},
		[]int{3, 1}))
	add("roms", FSPEC17, true, stream(9, 1, 10000, 7, 0.3))
	add("fotonik3d", FSPEC17, true, stream(10, 1, 11000, 6, 0.35))
	add("cactuBSSN", FSPEC17, false, stream(8, 3, 9000, 7, 0.3))
	add("nab", FSPEC17, false, mix(
		[]ScenarioSpec{spatial(24, 9, 4, 8, 2200, 12, false), stream(3, 1, 1800, 13, 0.2)},
		[]int{2, 3}))
	add("namd17", FSPEC17, false, spatial(28, 8, 4, 8, 2000, 13, false))
	add("povray17", FSPEC17, false, chase(500, 3, 19))
	add("wrf", FSPEC17, true, mix(
		[]ScenarioSpec{stream(6, 1, 7000, 8, 0.3), spatial(32, 8, 6, 8, 3500, 9, true)},
		[]int{3, 2}))

	// ---- ISPEC17 (8): integer SPEC 2017 — sparse pages, global deltas,
	// reordered footprints (the SMS/BOP-friendly class). ----
	add("omnetpp17", ISPEC17, true, mix(
		[]ScenarioSpec{spatial(120, 4, 10, 8, 5000, 9, false), chase(3500, 1, 10)},
		[]int{3, 1}))
	add("xalancbmk17", ISPEC17, true, spatial(120, 5, 10, 8, 5000, 9, false))
	add("leela", ISPEC17, false, mix(
		[]ScenarioSpec{spatial(72, 4, 8, 8, 1500, 14, false), chase(800, 2, 16)},
		[]int{3, 1}))
	add("exchange2", ISPEC17, false, spatial(42, 5, 6, 8, 1200, 15, false))
	add("deepsjeng", ISPEC17, true, mix(
		[]ScenarioSpec{deltas([]int{5, 2, 5, 2}, 6000, 8), spatial(86, 4, 10, 8, 4000, 9, false)},
		[]int{1, 2}))
	add("mcf17", ISPEC17, true, mix(
		[]ScenarioSpec{chase(7000, 1, 8), deltas([]int{7, 3}, 5000, 9)},
		[]int{2, 1}))
	add("x264", ISPEC17, false, mix(
		[]ScenarioSpec{stream(6, 2, 6000, 8, 0.3), spatial(100, 6, 8, 8, 4000, 9, true)},
		[]int{2, 3}))
	add("gcc17", ISPEC17, true, spatial(120, 5, 8, 8, 4500, 9, false))

	// ---- Cloud (8): big-data stacks — large code footprints, reordering. ----
	add("bigbench", Cloud, true, mix(
		[]ScenarioSpec{spatial(120, 8, 10, 8, 7000, 8, true), stream(4, 1, 5000, 9, 0.2)},
		[]int{4, 1}))
	add("cassandra", Cloud, true, mix(
		[]ScenarioSpec{spatial(120, 6, 10, 8, 6000, 9, false), chase(3000, 2, 10)},
		[]int{3, 1}))
	add("hbase", Cloud, true, mix(
		[]ScenarioSpec{spatial(120, 6, 8, 8, 5500, 9, false), chase(2500, 2, 11)},
		[]int{3, 1}))
	add("kmeans", Cloud, true, mix(
		[]ScenarioSpec{stream(8, 1, 9000, 7, 0.2), spatial(57, 10, 6, 8, 5000, 8, true)},
		[]int{2, 3}))
	add("hadoop-stream", Cloud, true, mix(
		[]ScenarioSpec{stream(10, 1, 8000, 8, 0.25), spatial(120, 7, 8, 8, 5000, 9, false)},
		[]int{2, 3}))
	add("cloud-sort", Cloud, false, mix(
		[]ScenarioSpec{stream(6, 1, 7000, 8, 0.35), spatial(114, 8, 8, 8, 4500, 9, true)},
		[]int{1, 2}))
	add("cloud-etl", Cloud, false, mix(
		[]ScenarioSpec{spatial(120, 6, 8, 8, 2500, 13, false), stream(3, 1, 2000, 14, 0.3)},
		[]int{3, 1}))
	add("cloud-index", Cloud, false, spatial(120, 5, 10, 8, 2200, 13, false))

	// ---- SYSmark (8): office/productivity — footprint-driven, lighter. ----
	add("sysmark-excel", SYSmark, true, spatial(120, 7, 8, 8, 5000, 9, true))
	add("sysmark-word", SYSmark, false, spatial(86, 5, 8, 8, 1800, 15, false))
	add("sysmark-photoshop", SYSmark, true, mix(
		[]ScenarioSpec{spatial(100, 9, 8, 8, 5000, 9, true), stream(5, 1, 4000, 10, 0.3)},
		[]int{3, 1}))
	add("sysmark-sketchup", SYSmark, true, mix(
		[]ScenarioSpec{spatial(114, 7, 8, 8, 4500, 9, false), chase(2000, 2, 11)},
		[]int{3, 1}))
	add("sysmark-ppt", SYSmark, false, spatial(72, 5, 6, 8, 1500, 16, false))
	add("sysmark-outlook", SYSmark, false, mix(
		[]ScenarioSpec{spatial(57, 4, 8, 8, 1200, 17, false), chase(800, 2, 18)},
		[]int{2, 1}))
	add("sysmark-media", SYSmark, false, mix(
		[]ScenarioSpec{stream(6, 1, 6000, 8, 0.3), spatial(86, 7, 8, 8, 4000, 9, true)},
		[]int{2, 3}))
	add("sysmark-browse", SYSmark, false, spatial(100, 4, 10, 8, 1400, 16, false))

	// ---- Irregular (8): pointer-chasing data structures — linked-list
	// walks, tree descents, hash probing (irregular.go). ----
	ss = append(ss, irregularSpecs()...)

	return ss
}
