package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dspatch/internal/memaddr"
)

// ConvertOptions parameterizes external-trace conversion.
type ConvertOptions struct {
	// Name is the roster name the converted trace will carry.
	Name string
	// Seed is recorded in the DSPTRC01 header (external traces have no
	// generator seed; it only distinguishes store entries).
	Seed int64
	// MaxRefs bounds the conversion; 0 converts everything.
	MaxRefs int
	// Format selects the input layout: "text", "champsim", or ""/"auto" to
	// sniff. Gzip compression is detected independently of Format.
	Format string
}

// Convert ingests an external LLC access trace — ChampSim/gem5-style, text
// or binary, plain or gzipped — into a Materialized stream ready to Export
// as DSPTRC01 or register for simulation.
//
// The text form is one reference per line, whitespace- or comma-separated:
//
//	pc addr [r|w] [gap] [dep]
//
// pc and addr accept 0x-prefixed hex or decimal; the optional third field
// marks the access a read or write (default read); gap is the number of
// non-memory instructions preceding the reference (clamped to 65535); dep
// (0/1) marks an address dependence on the previous load. Blank lines and
// #-comments are skipped; anything else is an error naming the line.
//
// The binary form is ChampSim's 64-byte input_instr record: ip, branch
// flags, destination/source registers, and up to 2 destination + 4 source
// memory addresses per instruction. Instructions without memory operands
// accumulate into the next reference's gap; a source-register match against
// the previous memory instruction's destination registers marks dependent
// loads.
func Convert(r io.Reader, opt ConvertOptions) (*Materialized, error) {
	if opt.Name == "" {
		return nil, fmt.Errorf("trace: convert: missing name")
	}
	br := bufio.NewReaderSize(r, 1<<16)
	if hdr, err := br.Peek(2); err == nil && hdr[0] == 0x1f && hdr[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: convert: gzip: %w", err)
		}
		defer zr.Close()
		br = bufio.NewReaderSize(zr, 1<<16)
	}
	format := opt.Format
	if format == "" || format == "auto" {
		head, _ := br.Peek(512)
		if len(head) == 0 {
			return nil, fmt.Errorf("trace: convert: empty input")
		}
		if looksText(head) {
			format = "text"
		} else {
			format = "champsim"
		}
	}
	var refs []Ref
	var err error
	switch format {
	case "text":
		refs, err = parseTextTrace(br, opt.MaxRefs)
	case "champsim":
		refs, err = parseChampSimTrace(br, opt.MaxRefs)
	default:
		return nil, fmt.Errorf("trace: convert: unknown format %q (want auto, text or champsim)", format)
	}
	if err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("trace: convert: input holds no memory references")
	}
	return FromRefs(opt.Name, opt.Seed, refs)
}

// looksText reports whether the sniffed head is plausible trace text:
// entirely printable ASCII plus whitespace.
func looksText(head []byte) bool {
	for _, c := range head {
		if c >= 0x20 && c < 0x7f {
			continue
		}
		switch c {
		case '\t', '\n', '\r':
			continue
		}
		return false
	}
	return true
}

func parseTextTrace(r *bufio.Reader, maxRefs int) ([]Ref, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var refs []Ref
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		if len(fields) < 2 || len(fields) > 5 {
			return nil, fmt.Errorf("trace: convert: line %d: want 2–5 fields (pc addr [r|w] [gap] [dep]), have %d", lineNo, len(fields))
		}
		pc, err := parseNum(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: convert: line %d: pc: %w", lineNo, err)
		}
		addr, err := parseNum(fields[1])
		if err != nil {
			return nil, fmt.Errorf("trace: convert: line %d: addr: %w", lineNo, err)
		}
		ref := Ref{PC: memaddr.PC(pc), Line: memaddr.LineOf(memaddr.Addr(addr)), Gap: 1}
		if len(fields) >= 3 {
			switch fields[2] {
			case "r", "R", "0":
			case "w", "W", "1":
				ref.Write = true
			default:
				return nil, fmt.Errorf("trace: convert: line %d: read/write flag %q (want r or w)", lineNo, fields[2])
			}
		}
		if len(fields) >= 4 {
			gap, err := parseNum(fields[3])
			if err != nil {
				return nil, fmt.Errorf("trace: convert: line %d: gap: %w", lineNo, err)
			}
			ref.Gap = int(min64(gap, 65535))
		}
		if len(fields) == 5 {
			switch fields[4] {
			case "0":
			case "1":
				ref.Dep = true
			default:
				return nil, fmt.Errorf("trace: convert: line %d: dep flag %q (want 0 or 1)", lineNo, fields[4])
			}
		}
		refs = append(refs, ref)
		if maxRefs > 0 && len(refs) >= maxRefs {
			return refs, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: convert: line %d: %w", lineNo, err)
	}
	return refs, nil
}

func parseNum(s string) (uint64, error) {
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		s, base = s[2:], 16
	}
	v, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func min64(v uint64, lim uint64) uint64 {
	if v > lim {
		return lim
	}
	return v
}

// champsimRecordSize is ChampSim's input_instr: ip(8) is_branch(1)
// branch_taken(1) destination_registers(2) source_registers(4)
// destination_memory(2×8) source_memory(4×8).
const champsimRecordSize = 64

func parseChampSimTrace(r *bufio.Reader, maxRefs int) ([]Ref, error) {
	var refs []Ref
	var rec [champsimRecordSize]byte
	var lastLoadDest [2]byte
	gap := 0
	for instr := 0; ; instr++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return refs, nil
			}
			return nil, fmt.Errorf("trace: convert: truncated champsim record at instruction %d: %w", instr, err)
		}
		ip := binary.LittleEndian.Uint64(rec[0:8])
		srcReg := rec[12:16]

		dep := false
		for _, s := range srcReg {
			if s == 0 {
				continue
			}
			if s == lastLoadDest[0] || s == lastLoadDest[1] {
				dep = true
			}
		}

		emitted := 0
		emit := func(addr uint64, write bool) {
			if addr == 0 {
				return
			}
			g := 0
			if emitted == 0 {
				g = min(gap, 65535)
			}
			refs = append(refs, Ref{
				PC:    memaddr.PC(ip),
				Line:  memaddr.LineOf(memaddr.Addr(addr)),
				Write: write,
				Gap:   g,
				Dep:   dep && !write,
			})
			emitted++
		}
		for i := 0; i < 4; i++ {
			emit(binary.LittleEndian.Uint64(rec[32+8*i:40+8*i]), false)
		}
		for i := 0; i < 2; i++ {
			emit(binary.LittleEndian.Uint64(rec[16+8*i:24+8*i]), true)
		}
		if emitted == 0 {
			gap++
			continue
		}
		gap = 0
		// Loads feed later address computations through this instruction's
		// destination registers.
		lastLoadDest[0], lastLoadDest[1] = rec[10], rec[11]
		if maxRefs > 0 && len(refs) >= maxRefs {
			return refs[:maxRefs], nil
		}
	}
}

// FromRefs builds a Materialized stream from explicit references — the
// converter's constructor. The result is import-like: fixed length, no
// generator continuation, and a content fingerprint, so it can Export,
// register and participate in cache keys exactly like a file import.
func FromRefs(name string, seed int64, refs []Ref) (*Materialized, error) {
	if name == "" {
		return nil, fmt.Errorf("trace: FromRefs: missing name")
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("trace: FromRefs: no references")
	}
	m := &Materialized{name: name, seed: seed}
	m.mu.Lock()
	for i := range refs {
		if err := m.appendRefLocked(&refs[i]); err != nil {
			m.mu.Unlock()
			return nil, err
		}
	}
	m.mu.Unlock()
	// Stamp the content fingerprint: the trailing CRC of the stream's own
	// export bytes, exactly what a file round-trip would carry.
	var tw tailWriter
	if err := m.Export(&tw, 0); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.fileCRC = binary.LittleEndian.Uint32(tw.tail[:])
	m.mu.Unlock()
	return m, nil
}

// tailWriter retains the last four bytes written through it — the CRC tail
// of an Export.
type tailWriter struct {
	tail [4]byte
}

func (w *tailWriter) Write(p []byte) (int, error) {
	switch {
	case len(p) >= 4:
		copy(w.tail[:], p[len(p)-4:])
	case len(p) > 0:
		var merged [8]byte
		n := copy(merged[:], w.tail[:])
		n += copy(merged[n:], p)
		copy(w.tail[:], merged[n-4:n])
	}
	return len(p), nil
}
