//go:build unix

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only, returning its bytes and an unmap closure.
// Mapping failure (exotic filesystems, empty files) falls back to reading
// the whole file, with a nil closure.
func mapFile(path string) (data []byte, unmap func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file too large to map (%d bytes)", size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		read, rerr := os.ReadFile(path)
		return read, nil, rerr
	}
	return data, func() { syscall.Munmap(data) }, nil
}
