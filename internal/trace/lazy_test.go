package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// exportToFile records n refs of (linpack, seed) and writes them to a temp
// trace file, returning the path and the recorded stream for comparison.
func exportToFile(t *testing.T, seed int64, n int) (string, *Materialized) {
	t.Helper()
	w, _ := ByName("linpack")
	m := Shared(w, seed)
	m.ensure(n)
	var buf bytes.Buffer
	if err := m.Export(&buf, 0); err != nil {
		t.Fatalf("export: %v", err)
	}
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, m
}

// TestImportFileIsLazyAndBitIdentical proves the O(1) startup contract:
// ImportFile parses only the header (the columns stay undecoded), and the
// first replay decodes them into a stream bit-identical to the eager import.
func TestImportFileIsLazyAndBitIdentical(t *testing.T) {
	defer ResetShared()
	const n = 500
	path, orig := exportToFile(t, 31, n)

	m, err := ImportFile(path)
	if err != nil {
		t.Fatalf("ImportFile: %v", err)
	}
	if m.raw == nil {
		t.Fatal("ImportFile decoded the columns eagerly")
	}
	if m.Name() != "linpack" || m.Seed() != 31 || m.Len() != n {
		t.Fatalf("lazy header: name=%q seed=%d len=%d", m.Name(), m.Seed(), m.Len())
	}
	if m.CanExtend() {
		t.Error("imported trace claims to be extendable")
	}

	a, b := m.Cursor(n), orig.Cursor(n)
	if m.raw != nil {
		t.Error("first cursor left the columns undecoded")
	}
	var ra, rb Ref
	for i := 0; i < n; i++ {
		a.Next(&ra)
		b.Next(&rb)
		if ra != rb {
			t.Fatalf("ref %d: lazy import replays %+v, recording has %+v", i, ra, rb)
		}
	}
	if err := m.Validate(); err != nil {
		t.Errorf("decoded trace failed Validate: %v", err)
	}
}

// TestImportFileRejectsTruncatedHeader: a file too short to hold even the
// header errors at ImportFile itself, not at first replay.
func TestImportFileRejectsTruncatedHeader(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":    {},
		"short":    []byte("DSPTRC"),
		"badmagic": []byte("NOTATRCExxxxxxxxxxxxxxxx"),
	} {
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ImportFile(path); err == nil {
			t.Errorf("%s: ImportFile accepted a malformed header", name)
		}
	}
	if _, err := ImportFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("ImportFile accepted a nonexistent path")
	}
}

// TestImportFileRejectsCorruptionBeforeReplay is the satellite's proof: a
// file whose column payload is corrupt passes the O(1) header parse, but the
// corruption is caught — CRC first, exactly like the eager import — before
// any ref replays: Validate errors and Cursor panics.
func TestImportFileRejectsCorruptionBeforeReplay(t *testing.T) {
	defer ResetShared()
	path, _ := exportToFile(t, 33, 400)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF // flip a byte deep in the column payload
	bad := filepath.Join(t.TempDir(), "corrupt.trace")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := ImportFile(bad)
	if err != nil {
		t.Fatalf("header-only parse rejected a header-intact file: %v", err)
	}
	verr := m.Validate()
	if verr == nil {
		t.Fatal("Validate accepted a corrupt column payload")
	}
	if !strings.Contains(verr.Error(), "CRC mismatch") {
		t.Errorf("Validate error %q does not name the CRC", verr)
	}
	// The error is latched: every later use sees the same rejection.
	if err := m.Validate(); err == nil {
		t.Error("second Validate forgot the rejection")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Cursor replayed a corrupt trace without panicking")
			}
		}()
		m.Cursor(10)
	}()
}

// TestImportFileTruncatedBody: the header parses but the columns are cut
// short — rejected at first use, never replayed.
func TestImportFileTruncatedBody(t *testing.T) {
	defer ResetShared()
	path, _ := exportToFile(t, 35, 400)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.trace")
	if err := os.WriteFile(cut, data[:len(data)*3/4], 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ImportFile(cut)
	if err != nil {
		// Acceptable: the truncation may make the declared ref count
		// implausible for the remaining body, failing the header parse.
		return
	}
	if m.Validate() == nil {
		t.Fatal("Validate accepted a truncated column payload")
	}
}
