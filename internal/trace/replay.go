package trace

import (
	"bytes"
	"fmt"
	"sync"

	"dspatch/internal/memaddr"
)

// Materialized is one recorded reference stream: the first n refs of a
// (workload, seed) generator, stored as compact read-only columns so every
// simulation of that stream replays the same buffer instead of re-running
// the generator. Columns are append-only — a prefix, once recorded, is
// immutable — which lets any number of concurrent replay cursors share the
// buffers while one writer extends them for a longer run.
//
// Column layout (structure-of-arrays):
//
//   - lines: line addresses, stored decoded so replay is a pure array read
//     (the file format delta-encodes them zigzag-varint instead; see
//     traceio.go),
//   - pcIdx + pcDict: PCs dictionary-coded to 32-bit indices (a workload
//     has few distinct PCs relative to its length),
//   - gaps: per-ref instruction gaps,
//   - write, dep: 1-bit-per-ref packed flag sets.
type Materialized struct {
	name string
	seed int64

	mu  sync.Mutex
	gen Generator // continuation state; nil for imported traces

	n     int
	lines []memaddr.Line
	pcIdx []uint32
	gaps  []uint16
	// write and dep hold only COMPLETE 64-ref words; the in-progress word
	// accumulates in writeCur/depCur and is appended once full. Extension
	// therefore never rewrites an array element a concurrent cursor can
	// read — the append-only sharing contract holds at word granularity,
	// not just element granularity (a flag OR into a shared partial word
	// would be a data race with replaying cursors).
	write    []uint64
	dep      []uint64
	writeCur uint64
	depCur   uint64

	pcDict []memaddr.PC
	pcMap  map[memaddr.PC]uint32

	// Lazy-import state (ImportFile): raw holds the undecoded body —
	// everything between the magic and the CRC tail — of an imported file
	// whose columns have not been decoded yet, hdrOff how much of it the
	// header parse consumed, and fileCRC the file's claimed checksum,
	// verified against raw at first decode so corruption is still rejected
	// before any ref replays. unmap releases the file mapping once decoding
	// finishes either way; decodeErr latches a decode failure.
	raw       []byte
	hdrOff    int
	fileCRC   uint32
	unmap     func()
	decodeErr error
}

// Name returns the workload name the trace was recorded from.
func (m *Materialized) Name() string { return m.name }

// Seed returns the generator seed the trace was recorded at.
func (m *Materialized) Seed() int64 { return m.seed }

// Len returns the number of refs recorded so far.
func (m *Materialized) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// CanExtend reports whether the stream can record more refs: true for
// generator-backed recordings, false for imported traces, whose length is
// fixed by their file.
func (m *Materialized) CanExtend() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen != nil
}

// Validate forces a lazily-imported trace (ImportFile) to verify its
// checksum and decode its columns now, returning the error replay would
// otherwise panic with. Eagerly-decoded and generator-backed traces validate
// trivially.
func (m *Materialized) Validate() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.decodeIfNeededLocked()
}

// ensure extends the recording to at least n refs. Callers hold no locks.
func (m *Materialized) ensure(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// A lazily-imported trace decodes (and checksums) its columns on the way
	// to the first cursor: a corrupt file is rejected here, before any ref
	// replays.
	if err := m.decodeIfNeededLocked(); err != nil {
		panic(fmt.Sprintf("trace: imported trace %q rejected before replay: %v", m.name, err))
	}
	if m.n >= n {
		return
	}
	if m.gen == nil {
		panic(fmt.Sprintf("trace: imported trace %q holds %d refs, %d requested", m.name, m.n, n))
	}
	var r Ref
	for m.n < n {
		m.gen.Next(&r)
		if err := m.appendRefLocked(&r); err != nil {
			panic(err.Error())
		}
	}
}

// appendRefLocked records one ref at the tail of the columns. Callers hold
// m.mu. Generator extension (ensure) and external-trace conversion
// (FromRefs) share this append path, so both produce identical layouts.
func (m *Materialized) appendRefLocked(r *Ref) error {
	m.lines = append(m.lines, r.Line)
	idx, ok := m.pcMap[r.PC]
	if !ok {
		idx = uint32(len(m.pcDict))
		m.pcDict = append(m.pcDict, r.PC)
		if m.pcMap == nil {
			m.pcMap = make(map[memaddr.PC]uint32)
		}
		m.pcMap[r.PC] = idx
	}
	m.pcIdx = append(m.pcIdx, idx)
	if r.Gap < 0 || r.Gap > 1<<16-1 {
		return fmt.Errorf("trace: ref gap %d outside the recordable range [0, 65535]", r.Gap)
	}
	m.gaps = append(m.gaps, uint16(r.Gap))
	bit := uint64(1) << uint(m.n%64)
	if r.Write {
		m.writeCur |= bit
	}
	if r.Dep {
		m.depCur |= bit
	}
	m.n++
	if m.n%64 == 0 {
		m.write = append(m.write, m.writeCur)
		m.dep = append(m.dep, m.depCur)
		m.writeCur, m.depCur = 0, 0
	}
	return nil
}

// Cursor returns a Generator replaying the first n refs of the stream,
// extending the recording first if needed. Cursors are independent and
// read-only: any number may replay concurrently. Reading past n panics —
// the simulator always bounds its pulls.
func (m *Materialized) Cursor(n int) Generator {
	m.ensure(n)
	m.mu.Lock()
	c := &cursor{
		n:        n,
		lines:    m.lines,
		pcIdx:    m.pcIdx,
		gaps:     m.gaps,
		write:    m.write,
		dep:      m.dep,
		writeCur: m.writeCur,
		depCur:   m.depCur,
		pcDict:   m.pcDict,
	}
	m.mu.Unlock()
	return c
}

// cursor is one replay position over a Materialized prefix. The slice
// headers — plus the in-progress flag words by value — are snapshotted under
// the trace lock: later extensions only append past every array element the
// cursor can read, so no synchronization is needed while replaying.
type cursor struct {
	n        int
	i        int
	lines    []memaddr.Line
	pcIdx    []uint32
	gaps     []uint16
	write    []uint64
	dep      []uint64
	writeCur uint64 // flag bits of refs past the last complete word
	depCur   uint64
	pcDict   []memaddr.PC
}

// Next implements Generator.
func (c *cursor) Next(r *Ref) {
	i := c.i
	if i >= c.n {
		panic("trace: replay cursor read past the recorded length")
	}
	r.Line = c.lines[i]
	r.PC = c.pcDict[c.pcIdx[i]]
	r.Gap = int(c.gaps[i])
	bit := uint64(1) << uint(i%64)
	w, d := c.writeCur, c.depCur
	if word := i / 64; word < len(c.write) {
		w, d = c.write[word], c.dep[word]
	}
	r.Write = w&bit != 0
	r.Dep = d&bit != 0
	c.i = i + 1
}

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// storeKey identifies one shared stream: trace content is a deterministic
// function of (workload name, seed), with the requested length folded in by
// extension rather than keyed, so a 20k-ref bench run and a 200k-ref figure
// run of the same workload share one buffer.
type storeKey struct {
	name string
	seed int64
}

var (
	storeMu sync.Mutex
	store   = map[storeKey]*Materialized{}
)

// Replay returns a Generator replaying the first n refs of w's stream at the
// given seed, materializing (or extending) the process-shared recording on
// first use. Every simulation of the same (workload, seed) replays one
// buffer no matter which prefetcher configuration or worker goroutine asks.
func Replay(w Workload, seed int64, n int) Generator {
	return Shared(w, seed).Cursor(n)
}

// Shared returns the process-wide materialized stream for (w, seed),
// creating an empty one (with the generator as continuation state) on first
// use.
func Shared(w Workload, seed int64) *Materialized {
	k := storeKey{name: w.Name, seed: seed}
	storeMu.Lock()
	m := store[k]
	if m == nil {
		m = &Materialized{name: w.Name, seed: seed, gen: w.Build(seed)}
		store[k] = m
	}
	storeMu.Unlock()
	return m
}

// RegisterShared installs an imported trace as the process-wide stream for
// its (name, seed), replacing any generator-backed recording, and registers
// a roster entry under the Imported category when the name is unknown —
// after which simulations of that workload replay the imported refs.
// Unlike RegisterSpec, an explicit import may deliberately shadow a builtin
// workload's stream (the -trace-import replay-override path).
func RegisterShared(m *Materialized) {
	storeMu.Lock()
	store[storeKey{name: m.name, seed: m.seed}] = m
	storeMu.Unlock()
	if _, ok := ByName(m.name); !ok {
		DefaultRegistry.Register(Workload{
			Name:        m.name,
			Category:    Imported,
			Source:      SourceImported,
			Fingerprint: m.ContentFingerprint(),
			Build: func(int64) Generator {
				return m.Cursor(m.Len())
			},
			stream: m,
		})
	}
}

// registerTraceSpec resolves a trace-kind spec: the payload (a file path or
// inline DSPTRC01 bytes) is imported and validated eagerly — registration
// is where corruption must surface, not a later replay — then installed
// under the spec's name. The workload's fingerprint derives from the trace
// content, so the same trace registered by path and by inline data (how
// specs travel to fleet workers) yields the same simulation cache keys.
func (r *Registry) registerTraceSpec(s ScenarioSpec) (Workload, error) {
	var m *Materialized
	var err error
	if s.Trace.Path != "" {
		m, err = ImportFile(s.Trace.Path)
	} else {
		m, err = Import(bytes.NewReader(s.Trace.Data))
	}
	if err == nil {
		err = m.Validate()
	}
	if err != nil {
		return Workload{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	m.mu.Lock()
	m.name = s.Name // the roster name wins over the file's recorded name
	m.mu.Unlock()
	cat := s.Category
	if cat == "" {
		cat = Imported
	}
	w, err := r.registerChecked(Workload{
		Name:         s.Name,
		Category:     cat,
		MemIntensive: s.MemIntensive,
		Source:       SourceImported,
		Fingerprint:  m.ContentFingerprint(),
		Build: func(int64) Generator {
			return m.Cursor(m.Len())
		},
		stream: m,
	})
	if err != nil {
		return Workload{}, err
	}
	storeMu.Lock()
	store[storeKey{name: s.Name, seed: m.seed}] = m
	storeMu.Unlock()
	return w, nil
}

// ContentFingerprint identifies an imported or converted trace by content:
// its file CRC and ref count. Generator-backed recordings return "" — their
// content is a pure function of (name, seed).
func (m *Materialized) ContentFingerprint() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fileCRC == 0 {
		return ""
	}
	return fmt.Sprintf("trc-%08x-%d", m.fileCRC, m.n)
}

// Imported is the category of workloads ingested from trace files; it is not
// part of the paper's classes and never appears in category sweeps.
const Imported Category = "Imported"

// ResetShared drops every materialized stream and restores the registry to
// the builtin roster, releasing the imports' memory. Benchmarks and tests
// use it; normal callers never need to.
func ResetShared() {
	storeMu.Lock()
	store = map[storeKey]*Materialized{}
	storeMu.Unlock()
	DefaultRegistry.Reset()
}
