package trace

import (
	"fmt"
	"math/rand"

	"dspatch/internal/memaddr"
)

// PointerChaseConfig parameterizes the irregular generator family: traversals
// of linked data structures where each access's address comes out of the
// previous load — the pattern class DSPatch's dual bitmaps are claimed to
// handle gracefully and delta prefetchers cannot. The replay format's dep
// column carries the dependence; the core model serializes dependent loads,
// so these scenarios bound memory-level parallelism the way real
// pointer-chasing code does.
type PointerChaseConfig struct {
	// Style selects the traversal: "list" (linked-list walk over a shuffled
	// successor ring), "tree" (root-to-leaf descents of an implicit n-ary
	// tree), or "hash" (open-addressed table lookups with linear probing).
	Style string `json:"style"`
	// Nodes is the structure size in nodes (list, tree) or slots (hash).
	Nodes int `json:"nodes"`
	// NodesPerPage sets layout density: how many nodes the allocator packed
	// into each 4KB page. Low densities make traversals page-sparse
	// (prefetch-hostile); high densities give spatial prefetchers a chance.
	NodesPerPage int `json:"nodes_per_page"`
	// Depth is the walk-segment length between re-heads (list) or the
	// descent depth bound (tree).
	Depth int `json:"depth,omitempty"`
	// Fanout is the tree's children per node.
	Fanout int `json:"fanout,omitempty"`
	// Occupancy is the hash table's load factor; it drives probe-run length.
	Occupancy float64 `json:"occupancy,omitempty"`
	// MissPct is the percentage of hash lookups that miss and probe to the
	// end of a cluster.
	MissPct   int     `json:"miss_pct,omitempty"`
	MeanGap   int     `json:"mean_gap"`
	WriteFrac float64 `json:"write_frac,omitempty"`
}

func (c *PointerChaseConfig) validate() error {
	switch {
	case c.Nodes < 2 || c.Nodes > 1<<22:
		return fmt.Errorf("pointer: nodes %d outside [2, %d]", c.Nodes, 1<<22)
	case c.NodesPerPage < 1 || c.NodesPerPage > memaddr.LinesPage:
		return fmt.Errorf("pointer: nodes per page %d outside [1, %d]", c.NodesPerPage, memaddr.LinesPage)
	case c.MeanGap < 0 || c.MeanGap > maxSpecGap:
		return fmt.Errorf("pointer: mean gap %d outside [0, %d]", c.MeanGap, maxSpecGap)
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("pointer: write fraction %g outside [0, 1]", c.WriteFrac)
	}
	switch c.Style {
	case "list":
		if c.Depth < 1 || c.Depth > 1<<16 {
			return fmt.Errorf("pointer: list depth %d outside [1, 65536]", c.Depth)
		}
	case "tree":
		if c.Depth < 1 || c.Depth > 64 {
			return fmt.Errorf("pointer: tree depth %d outside [1, 64]", c.Depth)
		}
		if c.Fanout < 2 || c.Fanout > 64 {
			return fmt.Errorf("pointer: tree fanout %d outside [2, 64]", c.Fanout)
		}
	case "hash":
		if c.Occupancy < 0 || c.Occupancy > 0.95 {
			return fmt.Errorf("pointer: hash occupancy %g outside [0, 0.95]", c.Occupancy)
		}
		if c.MissPct < 0 || c.MissPct > 100 {
			return fmt.Errorf("pointer: miss pct %d outside [0, 100]", c.MissPct)
		}
	default:
		return fmt.Errorf("pointer: unknown style %q (want list, tree or hash)", c.Style)
	}
	return nil
}

// mix64 is the splitmix64 finalizer — the node-scatter hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

type pointerGen struct {
	cfg    PointerChaseConfig
	rng    *rand.Rand
	g      gapper
	pages  int
	stride int // line spacing between in-page node slots
	salt   uint64

	succ []uint32 // list: successor ring
	cur  int      // list/tree: current node
	left int      // list: steps left in this segment; tree: levels left
	// hash probing state: the run being emitted.
	probeSlot int
	probeLeft int
}

// NewPointerChase builds an irregular-traversal generator.
func NewPointerChase(cfg PointerChaseConfig, seed int64) Generator {
	rng := rand.New(rand.NewSource(seed))
	p := &pointerGen{
		cfg:    cfg,
		rng:    rng,
		g:      gapper{rng, cfg.MeanGap},
		pages:  (cfg.Nodes + cfg.NodesPerPage - 1) / cfg.NodesPerPage,
		stride: max(1, memaddr.LinesPage/cfg.NodesPerPage),
		salt:   mix64(uint64(seed) ^ 0xA24BAED4963EE407),
	}
	if cfg.Style == "list" {
		// One Hamiltonian cycle through a shuffled node order: every node's
		// successor is heap-arbitrary, so consecutive chase targets share no
		// spatial relationship beyond what NodesPerPage's layout gives them.
		perm := rng.Perm(cfg.Nodes)
		p.succ = make([]uint32, cfg.Nodes)
		for k, n := range perm {
			p.succ[n] = uint32(perm[(k+1)%len(perm)])
		}
	}
	return p
}

// nodeLine maps a node index to its cache line. Hash slots lay out
// sequentially (probe runs are tiny sequential bursts at random homes);
// list and tree nodes scatter pseudo-randomly across the footprint the way
// heap allocation leaves them.
func (p *pointerGen) nodeLine(n int) memaddr.Line {
	if p.cfg.Style == "hash" {
		return memaddr.Page(n / p.cfg.NodesPerPage).Line(n % p.cfg.NodesPerPage * p.stride)
	}
	h := mix64(uint64(n)*0x9E3779B97F4A7C15 + p.salt)
	page := memaddr.Page(h % uint64(p.pages))
	slot := int(h>>40) % p.cfg.NodesPerPage
	return page.Line(slot * p.stride)
}

func (p *pointerGen) Next(r *Ref) {
	switch p.cfg.Style {
	case "list":
		if p.left == 0 {
			// Re-head from the root array: an independent load.
			p.cur = p.rng.Intn(p.cfg.Nodes)
			p.left = p.cfg.Depth
			r.PC = 0x800000
			r.Dep = false
		} else {
			p.cur = int(p.succ[p.cur])
			r.PC = 0x800004
			r.Dep = true
		}
		p.left--
		r.Line = p.nodeLine(p.cur)
	case "tree":
		if p.left == 0 {
			p.cur = 0 // the root pointer is register-resident
			p.left = p.cfg.Depth
			r.Dep = false
		} else {
			child := p.cur*p.cfg.Fanout + 1 + p.rng.Intn(p.cfg.Fanout)
			if child >= p.cfg.Nodes {
				p.cur, p.left = 0, p.cfg.Depth
				r.Dep = false
			} else {
				p.cur = child
				r.Dep = true
			}
		}
		level := p.cfg.Depth - p.left
		p.left--
		r.PC = memaddr.PC(0x810000 + level*4)
		r.Line = p.nodeLine(p.cur)
	case "hash":
		if p.probeLeft == 0 {
			p.probeSlot = p.rng.Intn(p.cfg.Nodes)
			p.probeLeft = 1
			// Cluster lengths under linear probing grow geometrically with
			// the load factor; misses scan their whole cluster.
			for p.probeLeft < 32 && p.rng.Float64() < p.cfg.Occupancy {
				p.probeLeft++
			}
			if p.cfg.MissPct > 0 && p.rng.Intn(100) < p.cfg.MissPct {
				p.probeLeft += 1 + p.rng.Intn(3)
			}
			// The home slot's address comes from hashing a key that was
			// itself just loaded (a record field): dependent.
			r.Dep = true
		} else {
			// Probe continuations are slot+1 — address-computable without
			// waiting, which is exactly the MLP contrast with list/tree.
			p.probeSlot++
			if p.probeSlot >= p.cfg.Nodes {
				p.probeSlot = 0
			}
			r.Dep = false
		}
		p.probeLeft--
		r.PC = 0x820000
		r.Line = p.nodeLine(p.probeSlot)
	}
	r.Write = p.rng.Float64() < p.cfg.WriteFrac
	r.Gap = p.g.gap()
}

// pointer is shorthand for a pointer-chase scenario spec.
func pointer(cfg PointerChaseConfig) ScenarioSpec {
	c := cfg
	return ScenarioSpec{Kind: KindPointer, Pointer: &c}
}

// irregularSpecs is the Irregular-category roster: pointer-chasing data
// structures at cache-resident and memory-resident footprints. The family
// joins every category-sweeping experiment alongside the paper's nine
// classes.
func irregularSpecs() []ScenarioSpec {
	var ss []ScenarioSpec
	add := func(name string, hot bool, s ScenarioSpec) {
		s.Name, s.Category, s.MemIntensive = name, Irregular, hot
		ss = append(ss, s)
	}

	// Linked-list walks: fully serialized chains. The small variant's
	// footprint mostly fits the LLC; the large one misses constantly with
	// MLP of one — the prefetch-or-stall extreme.
	add("ll-walk-small", false, pointer(PointerChaseConfig{
		Style: "list", Nodes: 6000, NodesPerPage: 8, Depth: 64,
		MeanGap: 10, WriteFrac: 0.05}))
	add("ll-walk-large", true, pointer(PointerChaseConfig{
		Style: "list", Nodes: 400000, NodesPerPage: 4, Depth: 256,
		MeanGap: 8, WriteFrac: 0.05}))

	// Tree descents: dependent per level, but successive descents revisit
	// upper levels (cache-friendly top, chase-hostile leaves).
	add("tree-search-shallow", false, pointer(PointerChaseConfig{
		Style: "tree", Nodes: 30000, NodesPerPage: 8, Depth: 8, Fanout: 8,
		MeanGap: 11, WriteFrac: 0.02}))
	add("tree-search-deep", true, pointer(PointerChaseConfig{
		Style: "tree", Nodes: 500000, NodesPerPage: 4, Depth: 18, Fanout: 2,
		MeanGap: 8, WriteFrac: 0.02}))

	// Open-addressed hash probing: random homes, short sequential probe
	// runs — the dense variant's longer runs are where a spatial
	// prefetcher can actually help an "irregular" workload.
	add("hash-probe-sparse", true, pointer(PointerChaseConfig{
		Style: "hash", Nodes: 200000, NodesPerPage: 32, Occupancy: 0.5,
		MissPct: 10, MeanGap: 9, WriteFrac: 0.1}))
	add("hash-probe-dense", true, pointer(PointerChaseConfig{
		Style: "hash", Nodes: 300000, NodesPerPage: 32, Occupancy: 0.9,
		MissPct: 30, MeanGap: 8, WriteFrac: 0.1}))

	// Graph traversal: chase the vertex list, stream each vertex's
	// adjacency run — the classic BFS/pagerank shape.
	add("graph-walk-mix", true, mix(
		[]ScenarioSpec{
			pointer(PointerChaseConfig{Style: "list", Nodes: 250000, NodesPerPage: 4,
				Depth: 128, MeanGap: 8, WriteFrac: 0.05}),
			spatial(48, 9, 6, 8, 4000, 9, false),
		},
		[]int{2, 1}))

	// Key-value store: hash probes for the index, streaming reads of the
	// values they locate.
	add("kv-probe-mix", false, mix(
		[]ScenarioSpec{
			pointer(PointerChaseConfig{Style: "hash", Nodes: 120000, NodesPerPage: 16,
				Occupancy: 0.7, MissPct: 15, MeanGap: 11, WriteFrac: 0.15}),
			stream(4, 1, 3000, 12, 0.25),
		},
		[]int{3, 2}))

	return ss
}
