package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ScenarioSpec is the declarative, JSON-serializable description of one
// workload scenario. The builtin 75-workload roster, the Irregular family,
// campaign-inline ad-hoc scenarios and daemon-registered scenarios are all
// written in this one vocabulary: a generator kind plus that kind's
// parameter block, or an external trace payload.
//
// Exactly one parameter block — the one matching Kind — must be set.
type ScenarioSpec struct {
	// Name is the roster name simulations refer to. Required at top level;
	// ignored (and rejected) on mix sub-specs.
	Name string `json:"name,omitempty"`
	// Category classifies the scenario for category sweeps. Empty defaults
	// to Imported, which is excluded from category-sweeping experiments.
	Category Category `json:"category,omitempty"`
	// MemIntensive marks the scenario for the high-MPKI experiment subset.
	MemIntensive bool `json:"mem_intensive,omitempty"`

	// Kind selects the generator family: stream, spatial, deltas, chase,
	// pointer, mix, or trace.
	Kind string `json:"kind"`

	Stream  *StreamConfig       `json:"stream,omitempty"`
	Spatial *SpatialConfig      `json:"spatial,omitempty"`
	Deltas  *DeltaSeriesConfig  `json:"deltas,omitempty"`
	Chase   *ChaseConfig        `json:"chase,omitempty"`
	Pointer *PointerChaseConfig `json:"pointer,omitempty"`
	Mix     *MixSpec            `json:"mix,omitempty"`
	Trace   *TraceSpec          `json:"trace,omitempty"`
}

// Generator kinds a ScenarioSpec can name.
const (
	KindStream  = "stream"
	KindSpatial = "spatial"
	KindDeltas  = "deltas"
	KindChase   = "chase"
	KindPointer = "pointer"
	KindMix     = "mix"
	KindTrace   = "trace"
)

// MixSpec blends sub-scenarios with integer weights, each sub-generator
// confined to its own 16GB address region (see mixGen).
type MixSpec struct {
	Parts   []ScenarioSpec `json:"parts"`
	Weights []int          `json:"weights"`
}

// TraceSpec carries an external DSPTRC01 trace: either a file path (resolved
// where the spec is registered — the CLI or the daemon's filesystem) or the
// raw file bytes inline (base64 in JSON), which is how traces travel to
// fleet workers.
type TraceSpec struct {
	Path string `json:"path,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// maxMixDepth bounds spec recursion: mixes of mixes are allowed, mixes all
// the way down are an authoring error.
const maxMixDepth = 3

// maxSpecGap keeps every drawn instruction gap inside the replay format's
// uint16 column (gapper's maximum draw is 3·mean/2).
const maxSpecGap = 40000

// Validate checks the spec strictly: a known kind, exactly the matching
// parameter block, and in-range parameters. It is the gate both campaign
// submission and CLI -scenario loading run before anything registers.
func (s *ScenarioSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	return s.validate(0, true)
}

func (s *ScenarioSpec) validate(depth int, top bool) error {
	if !top && s.Name != "" {
		return fmt.Errorf("scenario: mix sub-specs must not be named (found %q)", s.Name)
	}
	if s.Category != "" && !knownCategory(s.Category) {
		return fmt.Errorf("scenario %s: unknown category %q", s.Name, s.Category)
	}
	blocks := 0
	for _, set := range []bool{s.Stream != nil, s.Spatial != nil, s.Deltas != nil,
		s.Chase != nil, s.Pointer != nil, s.Mix != nil, s.Trace != nil} {
		if set {
			blocks++
		}
	}
	if blocks != 1 {
		return fmt.Errorf("scenario %s: exactly one parameter block required, found %d", s.Name, blocks)
	}
	switch s.Kind {
	case KindStream:
		if s.Stream == nil {
			return fmt.Errorf("scenario %s: kind %q needs a %q block", s.Name, s.Kind, s.Kind)
		}
		return prefixErr(s.Name, s.Stream.validate())
	case KindSpatial:
		if s.Spatial == nil {
			return fmt.Errorf("scenario %s: kind %q needs a %q block", s.Name, s.Kind, s.Kind)
		}
		return prefixErr(s.Name, s.Spatial.validate())
	case KindDeltas:
		if s.Deltas == nil {
			return fmt.Errorf("scenario %s: kind %q needs a %q block", s.Name, s.Kind, s.Kind)
		}
		return prefixErr(s.Name, s.Deltas.validate())
	case KindChase:
		if s.Chase == nil {
			return fmt.Errorf("scenario %s: kind %q needs a %q block", s.Name, s.Kind, s.Kind)
		}
		return prefixErr(s.Name, s.Chase.validate())
	case KindPointer:
		if s.Pointer == nil {
			return fmt.Errorf("scenario %s: kind %q needs a %q block", s.Name, s.Kind, s.Kind)
		}
		return prefixErr(s.Name, s.Pointer.validate())
	case KindMix:
		if s.Mix == nil {
			return fmt.Errorf("scenario %s: kind %q needs a %q block", s.Name, s.Kind, s.Kind)
		}
		if depth >= maxMixDepth {
			return fmt.Errorf("scenario %s: mix nesting deeper than %d", s.Name, maxMixDepth)
		}
		m := s.Mix
		if len(m.Parts) == 0 || len(m.Parts) > 8 {
			return fmt.Errorf("scenario %s: mix needs 1–8 parts, has %d", s.Name, len(m.Parts))
		}
		if len(m.Weights) != len(m.Parts) {
			return fmt.Errorf("scenario %s: mix has %d parts but %d weights", s.Name, len(m.Parts), len(m.Weights))
		}
		for _, w := range m.Weights {
			if w <= 0 {
				return fmt.Errorf("scenario %s: mix weights must be positive", s.Name)
			}
		}
		for i := range m.Parts {
			p := &m.Parts[i]
			if p.Trace != nil || p.Kind == KindTrace {
				return fmt.Errorf("scenario %s: mix part %d: trace payloads cannot be mixed", s.Name, i)
			}
			if err := p.validate(depth+1, false); err != nil {
				return fmt.Errorf("scenario %s: mix part %d: %w", s.Name, i, err)
			}
		}
		return nil
	case KindTrace:
		if s.Trace == nil {
			return fmt.Errorf("scenario %s: kind %q needs a %q block", s.Name, s.Kind, s.Kind)
		}
		if (s.Trace.Path == "") == (len(s.Trace.Data) == 0) {
			return fmt.Errorf("scenario %s: trace needs exactly one of path or data", s.Name)
		}
		return nil
	case "":
		return fmt.Errorf("scenario %s: missing kind", s.Name)
	default:
		return fmt.Errorf("scenario %s: unknown kind %q", s.Name, s.Kind)
	}
}

func prefixErr(name string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("scenario %s: %w", name, err)
}

func knownCategory(c Category) bool {
	if c == Imported {
		return true
	}
	for _, k := range Categories {
		if c == k {
			return true
		}
	}
	return false
}

func (c *StreamConfig) validate() error {
	switch {
	case c.Streams < 1 || c.Streams > 1024:
		return fmt.Errorf("stream: streams %d outside [1, 1024]", c.Streams)
	case c.StrideLns < 1 || c.StrideLns > 1024:
		return fmt.Errorf("stream: stride %d outside [1, 1024]", c.StrideLns)
	case c.PagePool < 1:
		return fmt.Errorf("stream: page pool %d must be positive", c.PagePool)
	case c.MeanGap < 0 || c.MeanGap > maxSpecGap:
		return fmt.Errorf("stream: mean gap %d outside [0, %d]", c.MeanGap, maxSpecGap)
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("stream: write fraction %g outside [0, 1]", c.WriteFrac)
	case c.PCCount < 0:
		return fmt.Errorf("stream: pc count %d must be non-negative", c.PCCount)
	case c.RestartPct < 0 || c.RestartPct > 100:
		return fmt.Errorf("stream: restart pct %d outside [0, 100]", c.RestartPct)
	case c.DepPct < 0 || c.DepPct > 100:
		return fmt.Errorf("stream: dep pct %d outside [0, 100]", c.DepPct)
	}
	return nil
}

func (c *SpatialConfig) validate() error {
	switch {
	case c.Patterns < 1 || c.Patterns > 1<<16:
		return fmt.Errorf("spatial: patterns %d outside [1, 65536]", c.Patterns)
	case c.Density < 1 || c.Density > 64:
		return fmt.Errorf("spatial: density %d outside [1, 64]", c.Density)
	case c.Reorder < 0:
		return fmt.Errorf("spatial: reorder %d must be non-negative", c.Reorder)
	case c.JitterPct < 0 || c.JitterPct > 100:
		return fmt.Errorf("spatial: jitter pct %d outside [0, 100]", c.JitterPct)
	case c.PagePool < 1:
		return fmt.Errorf("spatial: page pool %d must be positive", c.PagePool)
	case c.MeanGap < 0 || c.MeanGap > maxSpecGap:
		return fmt.Errorf("spatial: mean gap %d outside [0, %d]", c.MeanGap, maxSpecGap)
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("spatial: write fraction %g outside [0, 1]", c.WriteFrac)
	case c.DepPct < 0 || c.DepPct > 100:
		return fmt.Errorf("spatial: dep pct %d outside [0, 100]", c.DepPct)
	case c.TriggerVarPct < 0 || c.TriggerVarPct > 100:
		return fmt.Errorf("spatial: trigger var pct %d outside [0, 100]", c.TriggerVarPct)
	case c.Placements < 0 || c.Placements > 64:
		return fmt.Errorf("spatial: placements %d outside [0, 64]", c.Placements)
	}
	return nil
}

func (c *DeltaSeriesConfig) validate() error {
	if len(c.Deltas) == 0 || len(c.Deltas) > 64 {
		return fmt.Errorf("deltas: series needs 1–64 entries, has %d", len(c.Deltas))
	}
	for _, d := range c.Deltas {
		if d < -64 || d > 64 {
			return fmt.Errorf("deltas: delta %d outside [-64, 64]", d)
		}
	}
	switch {
	case c.PagePool < 1:
		return fmt.Errorf("deltas: page pool %d must be positive", c.PagePool)
	case c.MeanGap < 0 || c.MeanGap > maxSpecGap:
		return fmt.Errorf("deltas: mean gap %d outside [0, %d]", c.MeanGap, maxSpecGap)
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("deltas: write fraction %g outside [0, 1]", c.WriteFrac)
	case c.DepPct < 0 || c.DepPct > 100:
		return fmt.Errorf("deltas: dep pct %d outside [0, 100]", c.DepPct)
	}
	return nil
}

func (c *ChaseConfig) validate() error {
	switch {
	case c.FootprintPages < 1:
		return fmt.Errorf("chase: footprint %d pages must be positive", c.FootprintPages)
	case c.PerPage < 1 || c.PerPage > 8:
		return fmt.Errorf("chase: per-page %d outside [1, 8]", c.PerPage)
	case c.MeanGap < 0 || c.MeanGap > maxSpecGap:
		return fmt.Errorf("chase: mean gap %d outside [0, %d]", c.MeanGap, maxSpecGap)
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("chase: write fraction %g outside [0, 1]", c.WriteFrac)
	}
	return nil
}

// generator builds the spec's Generator at the given seed. Trace-kind specs
// never reach here — registration resolves them to a Materialized stream.
func (s *ScenarioSpec) generator(seed int64) Generator {
	switch s.Kind {
	case KindStream:
		return NewStream(*s.Stream, seed)
	case KindSpatial:
		return NewSpatial(*s.Spatial, seed)
	case KindDeltas:
		return NewDeltaSeries(*s.Deltas, seed)
	case KindChase:
		return NewChase(*s.Chase, seed)
	case KindPointer:
		return NewPointerChase(*s.Pointer, seed)
	case KindMix:
		gens := make([]Generator, len(s.Mix.Parts))
		for i := range s.Mix.Parts {
			gens[i] = s.Mix.Parts[i].generator(mixPartSeed(seed, i))
		}
		return NewMix(seed, gens, s.Mix.Weights)
	}
	panic(fmt.Sprintf("trace: spec %q kind %q has no generator", s.Name, s.Kind))
}

// mixPartSeed derives part i's sub-generator seed from the mix seed. Part 0
// always streams from the mix seed itself; higher parts mix their index in
// with a splitmix64-style finalizer, mirroring sim.LaneSeed. The old linear
// derivation seed + i*7919 made (seed, part 1) and (seed+7919, part 0) share
// one sub-stream, silently correlating mix workloads across the seed grids
// campaign sweeps run.
func mixPartSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	h := uint64(seed) ^ uint64(i)*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int64(h)
}

// Fingerprint is the spec's content identity: a hash of its canonical JSON
// form. Two specs with the same fingerprint produce byte-identical streams
// at every seed, so the fingerprint participates in simulation cache keys —
// resubmitting an unchanged spec re-uses every cached result, while editing
// any parameter invalidates exactly that scenario's entries. Trace-kind
// specs fingerprint by payload content at registration instead (the same
// trace sent by path and by inline data must match).
func (s *ScenarioSpec) Fingerprint() string {
	b, err := json.Marshal(s)
	if err != nil { // unreachable for a validated spec
		panic(fmt.Sprintf("trace: spec %q does not marshal: %v", s.Name, err))
	}
	sum := sha256.Sum256(b)
	return "spec-" + hex.EncodeToString(sum[:8])
}

// RegisterSpecFile reads a JSON spec file (one object or an array) and
// registers every spec process-wide, returning the roster entries. A
// trace-kind spec with a relative path resolves against the file's
// directory, so a spec file and its trace payload travel together.
func RegisterSpecFile(path string) ([]Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: scenario file: %w", err)
	}
	specs, err := ParseSpecs(data)
	if err != nil {
		return nil, fmt.Errorf("trace: scenario file %s: %w", path, err)
	}
	out := make([]Workload, 0, len(specs))
	for _, sp := range specs {
		if sp.Kind == KindTrace && sp.Trace != nil && sp.Trace.Path != "" && !filepath.IsAbs(sp.Trace.Path) {
			sp.Trace.Path = filepath.Join(filepath.Dir(path), sp.Trace.Path)
		}
		w, err := RegisterSpec(sp)
		if err != nil {
			return nil, fmt.Errorf("trace: scenario file %s: %w", path, err)
		}
		out = append(out, w)
	}
	return out, nil
}

// ParseSpecs decodes one ScenarioSpec or a JSON array of them.
func ParseSpecs(data []byte) ([]ScenarioSpec, error) {
	trimmed := firstNonSpace(data)
	if trimmed == '[' {
		var ss []ScenarioSpec
		if err := json.Unmarshal(data, &ss); err != nil {
			return nil, fmt.Errorf("trace: parse scenario specs: %w", err)
		}
		return ss, nil
	}
	var s ScenarioSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("trace: parse scenario spec: %w", err)
	}
	return []ScenarioSpec{s}, nil
}

func firstNonSpace(b []byte) byte {
	for _, c := range b {
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		}
		return c
	}
	return 0
}
