package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_workloads.json from the current generators")

// The golden corpus pins every builtin workload's DSPTRC01 export bytes at
// two seeds. It is the refactoring safety net: any change to the generator
// implementations, the shorthand parameter derivations, the seed plumbing or
// the export encoding shows up as a hash mismatch. Regenerate only for an
// intentional stream change (go test ./internal/trace -run Golden
// -update-golden) and say why in the commit.
const (
	goldenRefs = 2000
	goldenPath = "testdata/golden_workloads.json"
)

var goldenSeeds = []int64{1, 42}

func goldenExportHash(t *testing.T, w Workload, seed int64) string {
	t.Helper()
	// A private Materialized keeps the golden sweep out of the process-wide
	// stream store (and its memory).
	m := &Materialized{name: w.Name, seed: seed, gen: w.Build(seed)}
	m.ensure(goldenRefs)
	var buf bytes.Buffer
	if err := m.Export(&buf, goldenRefs); err != nil {
		t.Fatalf("export %s@%d: %v", w.Name, seed, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

func TestGoldenWorkloadStreams(t *testing.T) {
	got := map[string]string{}
	for _, w := range Workloads() {
		if w.Source != SourceBuiltin {
			continue // registrations leaked by other tests are not corpus
		}
		for _, seed := range goldenSeeds {
			got[fmt.Sprintf("%s@%d", w.Name, seed)] = goldenExportHash(t, w, seed)
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden hashes to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden corpus (regenerate with -update-golden): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	for key, h := range want {
		if got[key] == "" {
			t.Errorf("%s: workload missing from roster", key)
		} else if got[key] != h {
			t.Errorf("%s: stream bytes changed (golden %s…, got %s…)", key, h[:12], got[key][:12])
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: not in golden corpus (regenerate with -update-golden)", key)
		}
	}
}
