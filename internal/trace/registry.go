package trace

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// Workload sources.
const (
	// SourceBuiltin marks the compiled-in roster (the 75 paper workloads and
	// the Irregular family). Builtin streams are identified by name alone —
	// their fingerprint is empty, which keeps historical cache keys valid.
	SourceBuiltin = "builtin"
	// SourceSpec marks scenarios registered from a ScenarioSpec (campaign
	// inline blocks, -scenario files, POST /v1/scenarios).
	SourceSpec = "spec"
	// SourceImported marks streams ingested from DSPTRC01 trace files.
	SourceImported = "imported"
)

// Registry is an open roster of named scenarios. It starts from the builtin
// workloads and accepts registrations of declarative specs and imported
// traces at runtime; every lookup the experiment, sweep and service layers
// do resolves through it. Lookups are O(1) map reads (campaign validation
// of large grids resolves thousands of names); registration is rare.
type Registry struct {
	mu     sync.RWMutex
	list   []Workload
	byName map[string]int
	byCat  map[Category][]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}, byCat: map[Category][]int{}}
}

// DefaultRegistry is the process-wide roster every package-level lookup
// resolves through.
var DefaultRegistry = newBuiltinRegistry()

func newBuiltinRegistry() *Registry {
	r := NewRegistry()
	r.registerBuiltins()
	return r
}

func (r *Registry) registerBuiltins() {
	for _, s := range builtinSpecs() {
		s := s
		if err := s.Validate(); err != nil {
			panic(fmt.Sprintf("trace: builtin roster invalid: %v", err))
		}
		r.Register(Workload{
			Name:         s.Name,
			Category:     s.Category,
			MemIntensive: s.MemIntensive,
			Source:       SourceBuiltin,
			Build:        s.generator,
		})
	}
}

// Register installs w, replacing any existing entry of the same name (the
// replace semantics back explicit trace imports, which may deliberately
// override a stream). For conflict-checked spec registration use
// RegisterSpec.
func (r *Registry) Register(w Workload) {
	if w.Name == "" {
		panic("trace: registering unnamed workload")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[w.Name]; ok {
		r.list[i] = w
		r.reindexLocked()
		return
	}
	r.byName[w.Name] = len(r.list)
	r.byCat[w.Category] = append(r.byCat[w.Category], len(r.list))
	r.list = append(r.list, w)
}

// reindexLocked rebuilds the category index after an in-place replacement
// (the replaced entry may have changed category). Replacement is rare;
// lookups stay O(1).
func (r *Registry) reindexLocked() {
	r.byCat = map[Category][]int{}
	for i, w := range r.list {
		r.byCat[w.Category] = append(r.byCat[w.Category], i)
	}
}

// RegisterSpec validates s and registers it as a workload. Registration is
// strict and idempotent: a name collision with identical content (equal
// fingerprints) is a no-op returning the existing entry; a collision with
// different content — including any builtin name — is an error, never a
// silent redefinition.
func (r *Registry) RegisterSpec(s ScenarioSpec) (Workload, error) {
	if err := s.Validate(); err != nil {
		return Workload{}, err
	}
	if s.Kind == KindTrace {
		return r.registerTraceSpec(s)
	}
	if s.Category == "" {
		s.Category = Imported
	}
	w := Workload{
		Name:         s.Name,
		Category:     s.Category,
		MemIntensive: s.MemIntensive,
		Source:       SourceSpec,
		Fingerprint:  s.Fingerprint(),
		Build:        s.generator,
		spec:         &s,
	}
	return r.registerChecked(w)
}

func (r *Registry) registerChecked(w Workload) (Workload, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[w.Name]; ok {
		have := r.list[i]
		if have.Source == w.Source && have.Fingerprint == w.Fingerprint {
			return have, nil // same content re-registered: idempotent
		}
		return Workload{}, fmt.Errorf("trace: scenario %q conflicts with existing %s workload", w.Name, have.Source)
	}
	r.byName[w.Name] = len(r.list)
	r.byCat[w.Category] = append(r.byCat[w.Category], len(r.list))
	r.list = append(r.list, w)
	return w, nil
}

// ByName returns the named workload.
func (r *Registry) ByName(name string) (Workload, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i, ok := r.byName[name]
	if !ok {
		return Workload{}, false
	}
	return r.list[i], true
}

// ByCategory returns the workloads of one class, in registration order.
func (r *Registry) ByCategory(cat Category) []Workload {
	r.mu.RLock()
	defer r.mu.RUnlock()
	idx := r.byCat[cat]
	out := make([]Workload, len(idx))
	for k, i := range idx {
		out[k] = r.list[i]
	}
	return out
}

// MemIntensive returns the high-MPKI subset.
func (r *Registry) MemIntensive() []Workload {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Workload
	for _, w := range r.list {
		if w.MemIntensive {
			out = append(out, w)
		}
	}
	return out
}

// All returns a snapshot of the roster in registration order.
func (r *Registry) All() []Workload {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Workload, len(r.list))
	copy(out, r.list)
	return out
}

// Names returns the sorted roster names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, len(r.list))
	for i, w := range r.list {
		names[i] = w.Name
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Reset restores the registry to the builtin roster, dropping every spec
// and import registration.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.list = nil
	r.byName = map[string]int{}
	r.byCat = map[Category][]int{}
	r.mu.Unlock()
	r.registerBuiltins()
}

// Workloads returns a snapshot of the full process-wide roster: the 75
// builtin workloads, the Irregular family, and whatever scenarios this
// process has registered.
func Workloads() []Workload { return DefaultRegistry.All() }

// ByName returns the named workload from the process-wide roster.
func ByName(name string) (Workload, bool) { return DefaultRegistry.ByName(name) }

// ByCategory returns the process-wide roster's workloads of one class.
func ByCategory(cat Category) []Workload { return DefaultRegistry.ByCategory(cat) }

// MemIntensive returns the process-wide roster's high-MPKI subset.
func MemIntensive() []Workload { return DefaultRegistry.MemIntensive() }

// RegisterSpec validates and registers a scenario spec process-wide.
func RegisterSpec(s ScenarioSpec) (Workload, error) { return DefaultRegistry.RegisterSpec(s) }

// maxForwardTraceBytes bounds the export a SpecFor trace spec may inline:
// forwarded specs travel inside JSON run submissions to fleet workers.
const maxForwardTraceBytes = 32 << 20

// SpecFor returns a self-contained spec that reproduces the named workload
// in another process — the fleet coordinator attaches these to dispatched
// points so workers simulate the exact same stream. Builtin workloads need
// no spec (ok = false); spec-sourced workloads return their defining spec;
// imported or converted traces return a trace-kind spec carrying the
// stream's DSPTRC01 export bytes inline, whose content fingerprint — and
// therefore every cache key — matches the local registration.
func SpecFor(name string) (ScenarioSpec, bool, error) {
	w, ok := ByName(name)
	if !ok {
		return ScenarioSpec{}, false, fmt.Errorf("trace: unknown workload %q", name)
	}
	switch w.Source {
	case SourceSpec:
		if w.spec == nil {
			return ScenarioSpec{}, false, fmt.Errorf("trace: workload %q retained no spec", name)
		}
		return *w.spec, true, nil
	case SourceImported:
		if w.stream == nil {
			return ScenarioSpec{}, false, fmt.Errorf("trace: imported workload %q retained no stream", name)
		}
		var buf bytes.Buffer
		if err := w.stream.Export(&buf, 0); err != nil {
			return ScenarioSpec{}, false, fmt.Errorf("trace: exporting %q for forwarding: %w", name, err)
		}
		if buf.Len() > maxForwardTraceBytes {
			return ScenarioSpec{}, false, fmt.Errorf("trace: workload %q exports %d bytes, over the %d-byte forwarding limit",
				name, buf.Len(), maxForwardTraceBytes)
		}
		return ScenarioSpec{
			Name:         name,
			Category:     w.Category,
			MemIntensive: w.MemIntensive,
			Kind:         KindTrace,
			Trace:        &TraceSpec{Data: buf.Bytes()},
		}, true, nil
	default:
		return ScenarioSpec{}, false, nil
	}
}
