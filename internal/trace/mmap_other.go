//go:build !unix

package trace

import "os"

// mapFile reads path whole on platforms without a memory-mapping fast path.
// ImportFile stays lazy either way: decoding still waits for first replay.
func mapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	return data, nil, err
}
