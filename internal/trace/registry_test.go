package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func chaseSpec(name string, nodes int) ScenarioSpec {
	return ScenarioSpec{
		Name: name, Kind: KindPointer,
		Pointer: &PointerChaseConfig{Style: "list", Nodes: nodes, NodesPerPage: 8, Depth: 64, MeanGap: 10},
	}
}

func TestRegisterSpecIdempotentAndStrict(t *testing.T) {
	t.Cleanup(ResetShared)
	w1, err := RegisterSpec(chaseSpec("reg-test-chase", 1024))
	if err != nil {
		t.Fatalf("RegisterSpec: %v", err)
	}
	if w1.Source != SourceSpec || w1.Fingerprint == "" {
		t.Fatalf("registered workload: %+v", w1)
	}
	// Identical re-registration: a no-op returning the same entry.
	w2, err := RegisterSpec(chaseSpec("reg-test-chase", 1024))
	if err != nil {
		t.Fatalf("idempotent re-register: %v", err)
	}
	if w2.Fingerprint != w1.Fingerprint {
		t.Errorf("fingerprints differ: %q vs %q", w2.Fingerprint, w1.Fingerprint)
	}
	// Different content under the same name: an error, never a redefinition.
	if _, err := RegisterSpec(chaseSpec("reg-test-chase", 2048)); err == nil {
		t.Fatal("redefinition accepted")
	}
	// Builtin names are protected too.
	mcf := chaseSpec("mcf", 1024)
	if _, err := RegisterSpec(mcf); err == nil {
		t.Fatal("builtin shadowing accepted")
	}
	// The roster lookup sees the registration.
	if w, ok := ByName("reg-test-chase"); !ok || w.Category != Imported {
		t.Errorf("ByName = %+v, %v", w, ok)
	}
	for _, w := range ByCategory(Imported) {
		if w.Name == "reg-test-chase" {
			return
		}
	}
	t.Error("registered scenario missing from its category index")
}

func TestRegistryResetDropsRegistrations(t *testing.T) {
	t.Cleanup(ResetShared)
	if _, err := RegisterSpec(chaseSpec("reg-reset-probe", 512)); err != nil {
		t.Fatal(err)
	}
	ResetShared()
	if _, ok := ByName("reg-reset-probe"); ok {
		t.Error("Reset kept a spec registration")
	}
	if _, ok := ByName("mcf"); !ok {
		t.Error("Reset lost the builtin roster")
	}
}

func TestSpecForBuiltinNeedsNothing(t *testing.T) {
	if _, ok, err := SpecFor("mcf"); err != nil || ok {
		t.Fatalf("SpecFor(mcf) = ok %v err %v, want no spec needed", ok, err)
	}
	if _, _, err := SpecFor("no-such-workload"); err == nil {
		t.Fatal("SpecFor accepted an unknown name")
	}
}

func TestSpecForRoundTripsSpecScenario(t *testing.T) {
	t.Cleanup(ResetShared)
	w, err := RegisterSpec(chaseSpec("specfor-chase", 4096))
	if err != nil {
		t.Fatal(err)
	}
	s, ok, err := SpecFor("specfor-chase")
	if err != nil || !ok {
		t.Fatalf("SpecFor = ok %v err %v", ok, err)
	}
	// The forwarded spec must reproduce the exact fingerprint — it is what
	// keeps coordinator and worker cache keys identical.
	if got := s.Fingerprint(); got != w.Fingerprint {
		t.Errorf("forwarded fingerprint %q != registered %q", got, w.Fingerprint)
	}
}

func TestSpecForForwardsImportedTraceInline(t *testing.T) {
	t.Cleanup(ResetShared)
	m, err := FromRefs("specfor-trc", 3, []Ref{{PC: 1, Line: 10, Gap: 2}, {PC: 2, Line: 11, Gap: 2, Dep: true}})
	if err != nil {
		t.Fatal(err)
	}
	RegisterShared(m)
	s, ok, err := SpecFor("specfor-trc")
	if err != nil || !ok {
		t.Fatalf("SpecFor = ok %v err %v", ok, err)
	}
	if s.Kind != KindTrace || s.Trace == nil || len(s.Trace.Data) == 0 {
		t.Fatalf("forwarded spec is not an inline trace: %+v", s)
	}
	// Registering the forwarded spec in a "worker" registry reproduces the
	// same content fingerprint, so cache keys line up across the fleet.
	back, err := Import(bytes.NewReader(s.Trace.Data))
	if err != nil {
		t.Fatalf("forwarded data does not import: %v", err)
	}
	if back.ContentFingerprint() != m.ContentFingerprint() {
		t.Errorf("fingerprint drifted across forwarding: %q vs %q",
			back.ContentFingerprint(), m.ContentFingerprint())
	}
}

func TestRegisterSpecFileResolvesRelativeTracePaths(t *testing.T) {
	t.Cleanup(ResetShared)
	dir := t.TempDir()
	m, err := FromRefs("file-trc", 1, []Ref{{PC: 7, Line: 70, Gap: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Export(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "file.dsptrc"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := `[{"name": "file-trc", "kind": "trace", "trace": {"path": "file.dsptrc"}}]`
	if err := os.WriteFile(filepath.Join(dir, "specs.json"), []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	ws, err := RegisterSpecFile(filepath.Join(dir, "specs.json"))
	if err != nil {
		t.Fatalf("RegisterSpecFile: %v", err)
	}
	if len(ws) != 1 || ws[0].Source != SourceImported {
		t.Fatalf("registered: %+v", ws)
	}
	if ws[0].Fingerprint != m.ContentFingerprint() {
		t.Errorf("fingerprint %q, want %q", ws[0].Fingerprint, m.ContentFingerprint())
	}
}

func TestRegisterSpecFileErrors(t *testing.T) {
	if _, err := RegisterSpecFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := RegisterSpecFile(bad); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Fatalf("error = %v, want parse error", err)
	}
}
