package trace

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"strings"
	"testing"
)

func textRefs(t *testing.T, src string) *Materialized {
	t.Helper()
	m, err := Convert(strings.NewReader(src), ConvertOptions{Name: "t", Seed: 1})
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	return m
}

func TestConvertTextBasics(t *testing.T) {
	m := textRefs(t, `
# comment line
0x400100 0x7f0000001000
0x400104 0x7f0000001040 w
0x400108 4096 r 7
0x40010c 0x7f0000001080 r 3 1
`)
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	g := m.Cursor(m.Len())
	var r Ref
	g.Next(&r)
	if r.PC != 0x400100 || r.Write || r.Dep || r.Gap != 1 {
		t.Errorf("ref 0: %+v", r)
	}
	g.Next(&r)
	if !r.Write {
		t.Errorf("ref 1 not a write: %+v", r)
	}
	g.Next(&r)
	if r.Gap != 7 || r.Write {
		t.Errorf("ref 2: %+v", r)
	}
	g.Next(&r)
	if !r.Dep || r.Gap != 3 {
		t.Errorf("ref 3: %+v", r)
	}
}

func TestConvertTextCommaSeparated(t *testing.T) {
	m := textRefs(t, "0x10,0x2000,w,5,0\n0x14,0x2040\n")
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestConvertTextHugePC(t *testing.T) {
	// Full 64-bit PCs and addresses must round-trip the varint columns.
	m := textRefs(t, "0xffffffffffffffff 0xfffffffffffff000\n0x1 0x40\n")
	var r Ref
	g := m.Cursor(m.Len())
	g.Next(&r)
	if uint64(r.PC) != 0xffffffffffffffff {
		t.Errorf("PC = %#x, want all-ones", uint64(r.PC))
	}
	var buf bytes.Buffer
	if err := m.Export(&buf, 0); err != nil {
		t.Fatalf("Export: %v", err)
	}
	back, err := Import(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	var r2 Ref
	back.Cursor(back.Len()).Next(&r2)
	if r2 != r {
		t.Errorf("huge PC did not round-trip: %+v vs %+v", r2, r)
	}
}

func TestConvertTextErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "empty input"},
		{"comments only", "# nothing\n\n", "no memory references"},
		{"one field", "0x400100\n", "line 1"},
		{"six fields", "1 2 r 3 1 9\n", "line 1"},
		{"bad pc", "zzz 0x1000\n", "pc"},
		{"bad addr", "0x400100 bread\n", "addr"},
		{"bad rw", "0x400100 0x1000 x\n", "read/write flag"},
		{"bad gap", "0x400100 0x1000 r notanum\n", "gap"},
		{"bad dep", "0x400100 0x1000 r 3 2\n", "dep flag"},
		{"garbage mid-file", "0x1 0x40\n0x2 0x80\n!!!\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Convert(strings.NewReader(tc.src), ConvertOptions{Name: "t", Seed: 1, Format: "text"})
			if tc.src == "" {
				// Empty input fails at format sniffing, before the text parser.
				_, err = Convert(strings.NewReader(tc.src), ConvertOptions{Name: "t", Seed: 1})
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestConvertRequiresName(t *testing.T) {
	if _, err := Convert(strings.NewReader("0x1 0x40\n"), ConvertOptions{}); err == nil {
		t.Fatal("expected missing-name error")
	}
}

func TestConvertUnknownFormat(t *testing.T) {
	_, err := Convert(strings.NewReader("0x1 0x40\n"), ConvertOptions{Name: "t", Format: "pin"})
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("error = %v, want unknown format", err)
	}
}

func TestConvertMaxRefs(t *testing.T) {
	m := textRefs(t, "0x1 0x40\n0x2 0x80\n0x3 0xc0\n")
	if m.Len() != 3 {
		t.Fatalf("unbounded Len = %d", m.Len())
	}
	m2, err := Convert(strings.NewReader("0x1 0x40\n0x2 0x80\n0x3 0xc0\n"), ConvertOptions{Name: "t", Seed: 1, MaxRefs: 2})
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if m2.Len() != 2 {
		t.Errorf("MaxRefs Len = %d, want 2", m2.Len())
	}
}

// champsimInstr assembles one 64-byte ChampSim input_instr record.
func champsimInstr(ip uint64, destReg [2]byte, srcReg [4]byte, destMem [2]uint64, srcMem [4]uint64) []byte {
	rec := make([]byte, champsimRecordSize)
	binary.LittleEndian.PutUint64(rec[0:8], ip)
	copy(rec[10:12], destReg[:])
	copy(rec[12:16], srcReg[:])
	for i, a := range destMem {
		binary.LittleEndian.PutUint64(rec[16+8*i:], a)
	}
	for i, a := range srcMem {
		binary.LittleEndian.PutUint64(rec[32+8*i:], a)
	}
	return rec
}

func TestConvertChampSim(t *testing.T) {
	var in bytes.Buffer
	// A no-mem instruction, a load into reg 5, then a dependent load whose
	// source registers include reg 5, then a store.
	in.Write(champsimInstr(0x100, [2]byte{}, [4]byte{}, [2]uint64{}, [4]uint64{}))
	in.Write(champsimInstr(0x104, [2]byte{5}, [4]byte{}, [2]uint64{}, [4]uint64{0x7000_1000}))
	in.Write(champsimInstr(0x108, [2]byte{6}, [4]byte{5}, [2]uint64{}, [4]uint64{0x7000_2000}))
	in.Write(champsimInstr(0x10c, [2]byte{}, [4]byte{}, [2]uint64{0x7000_3000}, [4]uint64{}))
	m, err := Convert(bytes.NewReader(in.Bytes()), ConvertOptions{Name: "cs", Seed: 1})
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	g := m.Cursor(m.Len())
	var r Ref
	g.Next(&r)
	if r.PC != 0x104 || r.Gap != 1 || r.Dep || r.Write {
		t.Errorf("ref 0: %+v", r)
	}
	g.Next(&r)
	if r.PC != 0x108 || !r.Dep || r.Write {
		t.Errorf("ref 1 (dependent load): %+v", r)
	}
	g.Next(&r)
	if r.PC != 0x10c || !r.Write || r.Dep {
		t.Errorf("ref 2 (store): %+v", r)
	}
}

func TestConvertChampSimTruncated(t *testing.T) {
	rec := champsimInstr(0x100, [2]byte{}, [4]byte{}, [2]uint64{}, [4]uint64{0x1000})
	_, err := Convert(bytes.NewReader(rec[:37]), ConvertOptions{Name: "cs", Seed: 1, Format: "champsim"})
	if err == nil || !strings.Contains(err.Error(), "truncated champsim record at instruction 0") {
		t.Fatalf("error = %v, want truncation at instruction 0", err)
	}
	full := append(append([]byte{}, rec...), rec[:12]...)
	_, err = Convert(bytes.NewReader(full), ConvertOptions{Name: "cs", Seed: 1, Format: "champsim"})
	if err == nil || !strings.Contains(err.Error(), "instruction 1") {
		t.Fatalf("error = %v, want truncation at instruction 1", err)
	}
}

func TestConvertGzip(t *testing.T) {
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte("0x1 0x40\n0x2 0x80\n"))
	zw.Close()
	m, err := Convert(bytes.NewReader(gz.Bytes()), ConvertOptions{Name: "t", Seed: 1})
	if err != nil {
		t.Fatalf("Convert gzipped: %v", err)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

// TestConvertRoundTripBitIdentity proves the converter's output is a
// first-class DSPTRC01 artifact: convert -> export -> import -> re-export is
// byte-identical, and replaying the import yields the converted refs.
func TestConvertRoundTripBitIdentity(t *testing.T) {
	var in bytes.Buffer
	for i := 0; i < 500; i++ {
		rec := champsimInstr(uint64(0x400000+i*4), [2]byte{byte(i % 7)}, [4]byte{byte((i + 3) % 7)},
			[2]uint64{}, [4]uint64{uint64(0x7f00_0000 + i*64)})
		in.Write(rec)
	}
	m, err := Convert(bytes.NewReader(in.Bytes()), ConvertOptions{Name: "rt", Seed: 9})
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	var exp1 bytes.Buffer
	if err := m.Export(&exp1, 0); err != nil {
		t.Fatalf("Export: %v", err)
	}
	back, err := Import(bytes.NewReader(exp1.Bytes()))
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	var exp2 bytes.Buffer
	if err := back.Export(&exp2, 0); err != nil {
		t.Fatalf("re-Export: %v", err)
	}
	if !bytes.Equal(exp1.Bytes(), exp2.Bytes()) {
		t.Fatal("export -> import -> export not byte-identical")
	}
	if got, want := back.ContentFingerprint(), m.ContentFingerprint(); got != want || got == "" {
		t.Fatalf("fingerprint mismatch: %q vs %q", got, want)
	}
	ga, gb := m.Cursor(m.Len()), back.Cursor(back.Len())
	for i := 0; i < m.Len(); i++ {
		var ra, rb Ref
		ga.Next(&ra)
		gb.Next(&rb)
		if ra != rb {
			t.Fatalf("replay diverged at ref %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestFromRefsFingerprintStable(t *testing.T) {
	refs := []Ref{{PC: 1, Line: 2, Gap: 3}, {PC: 4, Line: 5, Write: true, Dep: true, Gap: 6}}
	a, err := FromRefs("f", 1, refs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromRefs("f", 1, refs)
	if err != nil {
		t.Fatal(err)
	}
	if a.ContentFingerprint() != b.ContentFingerprint() || a.ContentFingerprint() == "" {
		t.Errorf("fingerprints differ: %q vs %q", a.ContentFingerprint(), b.ContentFingerprint())
	}
}
