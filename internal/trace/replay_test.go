package trace

import (
	"bytes"
	"sync"
	"testing"
)

// TestReplayBitIdentityFullRoster is the tentpole's trace-layer acceptance
// test: for every workload in the roster, the materialized replay cursor
// reproduces the generator's stream ref-for-ref — line, PC, write, gap and
// dep — at two different seeds.
func TestReplayBitIdentityFullRoster(t *testing.T) {
	defer ResetShared()
	const refs = 2_500
	for _, w := range Workloads() {
		for _, seed := range []int64{1, 104730} {
			gen := w.Build(seed)
			rep := Replay(w, seed, refs)
			var want, got Ref
			for i := 0; i < refs; i++ {
				gen.Next(&want)
				rep.Next(&got)
				if got != want {
					t.Fatalf("%s seed %d ref %d: replay %+v != generator %+v", w.Name, seed, i, got, want)
				}
			}
		}
	}
}

// TestReplayExtension proves that a cursor over a short prefix stays valid
// and bit-identical while the shared recording is extended for a longer run,
// and that the extension itself continues the generator exactly.
func TestReplayExtension(t *testing.T) {
	defer ResetShared()
	w, ok := ByName("tpcc")
	if !ok {
		t.Fatal("roster is missing tpcc")
	}
	short := Replay(w, 7, 500)
	long := Replay(w, 7, 3_000) // extends the same Materialized
	gen := w.Build(7)
	var want, a, b Ref
	for i := 0; i < 3_000; i++ {
		gen.Next(&want)
		long.Next(&b)
		if b != want {
			t.Fatalf("extended replay diverges at ref %d", i)
		}
		if i < 500 {
			short.Next(&a)
			if a != want {
				t.Fatalf("short cursor diverges at ref %d after extension", i)
			}
		}
	}
}

// TestReplayConcurrent hammers one shared stream from many goroutines with
// interleaved extensions; the race detector proves the append-only column
// sharing safe, and each cursor must still replay exactly.
func TestReplayConcurrent(t *testing.T) {
	defer ResetShared()
	w, ok := ByName("mcf")
	if !ok {
		t.Fatal("roster is missing mcf")
	}
	var refWant []Ref
	gen := w.Build(3)
	refWant = make([]Ref, 4_000)
	for i := range refWant {
		gen.Next(&refWant[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		n := 500 * (g + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := Replay(w, 3, n)
			var r Ref
			for i := 0; i < n; i++ {
				c.Next(&r)
				if r != refWant[i] {
					t.Errorf("concurrent cursor (n=%d) diverges at ref %d", n, i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestExportImportRoundTrip proves a trace file round-trips bit-identically:
// record, export, import, replay, compare against the generator.
func TestExportImportRoundTrip(t *testing.T) {
	defer ResetShared()
	w, ok := ByName("specjbb")
	if !ok {
		t.Fatal("roster is missing specjbb")
	}
	const refs = 2_000
	m := Shared(w, 11)
	m.ensure(refs)
	var buf bytes.Buffer
	if err := m.Export(&buf, 0); err != nil {
		t.Fatalf("export: %v", err)
	}
	im, err := Import(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if im.Name() != w.Name || im.Seed() != 11 || im.Len() != refs {
		t.Fatalf("imported header = (%q, %d, %d), want (%q, 11, %d)", im.Name(), im.Seed(), im.Len(), w.Name, refs)
	}
	gen := w.Build(11)
	cur := im.Cursor(refs)
	var want, got Ref
	for i := 0; i < refs; i++ {
		gen.Next(&want)
		cur.Next(&got)
		if got != want {
			t.Fatalf("imported replay diverges at ref %d: %+v != %+v", i, got, want)
		}
	}
}

// TestImportRejectsCorruption covers the failure paths: truncation, flipped
// bytes (CRC), a wrong magic, and an over-long PC index must all return
// errors instead of a partial trace.
func TestImportRejectsCorruption(t *testing.T) {
	defer ResetShared()
	w, _ := ByName("linpack")
	m := Shared(w, 5)
	m.ensure(300)
	var buf bytes.Buffer
	if err := m.Export(&buf, 0); err != nil {
		t.Fatalf("export: %v", err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:6],
		"truncated": good[:len(good)/2],
		"badmagic":  append([]byte("NOTATRCE"), good[8:]...),
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0xFF
	cases["bitflip"] = flipped

	for name, data := range cases {
		if _, err := Import(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: import accepted corrupt data", name)
		}
	}
	if _, err := Import(bytes.NewReader(good)); err != nil {
		t.Errorf("pristine file rejected after corruption checks: %v", err)
	}
}

// TestRegisterShared proves an imported trace takes over its (name, seed)
// stream and that unknown names join the roster under the Imported category.
func TestRegisterShared(t *testing.T) {
	defer ResetShared()
	w, _ := ByName("linpack")
	m := Shared(w, 9)
	m.ensure(200)
	var buf bytes.Buffer
	if err := m.Export(&buf, 0); err != nil {
		t.Fatalf("export: %v", err)
	}
	im, err := Import(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	im.name = "external-capture"
	RegisterShared(im)
	reg, ok := ByName("external-capture")
	if !ok {
		t.Fatal("imported workload missing from roster")
	}
	if reg.Category != Imported {
		t.Fatalf("imported workload category = %q, want %q", reg.Category, Imported)
	}
	// Replaying the registered name yields the imported refs.
	cur := Replay(reg, 9, 200)
	gen := w.Build(9)
	var want, got Ref
	for i := 0; i < 200; i++ {
		gen.Next(&want)
		cur.Next(&got)
		if got != want {
			t.Fatalf("registered trace diverges at ref %d", i)
		}
	}
}
