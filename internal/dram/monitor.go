package dram

import "dspatch/internal/bitpattern"

// Monitor implements the paper's bandwidth-utilization tracker (§3.2): a
// counter at the memory controller counts CAS commands; every window of
// 4×tRC cycles the counter is halved (hysteresis); every tRC the counter is
// compared against the 25/50/75% quartile thresholds of the peak CAS count
// per window, producing a 2-bit signal that is broadcast to all cores.
//
// The steady state of "accumulate r CAS per window, then halve" converges to
// a start-of-window value of r, so tRC samples taken during a window read
// between 1.25r and 2r (average 13r/8). The quartile thresholds are therefore
// taken against 13/8 × PeakCASPerWindow, which makes the quantized signal an
// unbiased estimate of the true utilization fraction.
//
// The monitor is advanced lazily: state is brought up to date whenever a CAS
// is recorded or the signal is sampled, which is equivalent to per-cycle
// updates because nothing changes between events.
type Monitor struct {
	counter    int
	peak       int    // 13/8 × peak CAS per window
	windowLen  uint64 // 4 × tRC
	sampleLen  uint64 // tRC
	nextHalve  uint64
	lastSample uint64
	signal     bitpattern.Quartile

	// Sticky running statistics for reporting.
	samples      uint64
	quartileHist [4]uint64
}

// NewMonitor builds a bandwidth monitor for the given DRAM configuration.
func NewMonitor(cfg Config) *Monitor {
	trc := cfg.TRC()
	return &Monitor{
		peak:      cfg.PeakCASPerWindow() * 13 / 8,
		windowLen: 4 * trc,
		sampleLen: trc,
		nextHalve: 4 * trc,
	}
}

// RecordCAS notes one column access command issued at cycle now.
func (m *Monitor) RecordCAS(now uint64) {
	m.advance(now)
	m.counter++
}

// Signal returns the current 2-bit utilization quartile as of cycle now.
func (m *Monitor) Signal(now uint64) bitpattern.Quartile {
	m.advance(now)
	return m.signal
}

// Fraction returns counter/peak as an exact fraction for reporting.
func (m *Monitor) Fraction(now uint64) float64 {
	m.advance(now)
	if m.peak == 0 {
		return 0
	}
	f := float64(m.counter) / float64(m.peak)
	if f > 1 {
		f = 1
	}
	return f
}

// QuartileHistogram returns how many tRC samples fell into each quartile.
func (m *Monitor) QuartileHistogram() [4]uint64 { return m.quartileHist }

// advance replays window halvings and tRC samplings up to cycle now. Once
// the counter has decayed to zero, every remaining halving is a no-op and
// every remaining sample reads Q0, so the replay completes in closed form —
// a long DRAM-idle stretch costs O(1) instead of one iteration per tRC.
func (m *Monitor) advance(now uint64) {
	for m.counter != 0 && m.nextHalve <= now {
		// Sample the signal at every tRC boundary inside the elapsed window.
		for m.lastSample+m.sampleLen <= m.nextHalve {
			m.lastSample += m.sampleLen
			m.sample()
		}
		m.counter >>= 1
		m.nextHalve += m.windowLen
	}
	if m.counter == 0 {
		m.advanceIdle(now)
		return
	}
	for m.lastSample+m.sampleLen <= now {
		m.lastSample += m.sampleLen
		m.sample()
	}
}

// advanceIdle replays the remaining boundaries up to now while the counter is
// zero: halvings keep it zero and every sample lands in Q0.
func (m *Monitor) advanceIdle(now uint64) {
	if m.lastSample+m.sampleLen <= now {
		n := (now - m.lastSample) / m.sampleLen
		m.lastSample += n * m.sampleLen
		m.samples += n
		m.quartileHist[bitpattern.Q0] += n
		m.signal = bitpattern.Q0
	}
	if m.nextHalve <= now {
		k := (now-m.nextHalve)/m.windowLen + 1
		m.nextHalve += k * m.windowLen
	}
}

func (m *Monitor) sample() {
	m.signal = bitpattern.QuartileOf(m.counter, m.peak)
	m.samples++
	m.quartileHist[m.signal]++
}
