// Package dram models DDR4 main memory at the fidelity DSPatch (MICRO 2019)
// needs: per-bank row buffers with open-page policy, a shared per-channel
// data bus that bounds achievable bandwidth, CAS command counting, and the
// 2-bit quantized bandwidth-utilization signal (§3.2) that the memory
// controller broadcasts to all cores.
//
// All times are core clock cycles (4 GHz per paper Table 2). Requests are
// scheduled at arrival: a request reserves its bank and the channel data bus
// at the earliest cycles allowed by the timing constraints, so queueing delay
// and bandwidth saturation emerge naturally from resource contention.
package dram

import (
	"fmt"

	"dspatch/internal/bitpattern"
	"dspatch/internal/memaddr"
)

// Config describes one main-memory configuration. Construct with DDR4 for
// the speed grades the paper evaluates.
type Config struct {
	Channels     int // independent channels (1 for ST, 2 for MP in the paper)
	MTps         int // mega-transfers/s: 1600, 2133 or 2400
	RanksPerChan int
	BanksPerRank int

	CoreClockMHz int // core frequency the cycle counts are expressed in

	// DRAM timing in nanoseconds (paper Table 2: tCL=tRCD=tRP=15ns, tRAS=39ns).
	TCLns, TRCDns, TRPns, TRASns float64

	RowBufferBytes int // per-bank row buffer (2KB per paper)
}

// DDR4 returns the paper's DDR4 configuration at the given channel count and
// speed grade (1600, 2133 or 2400 MT/s), clocked against a 4 GHz core.
func DDR4(channels, mtps int) Config {
	return Config{
		Channels:       channels,
		MTps:           mtps,
		RanksPerChan:   2,
		BanksPerRank:   8,
		CoreClockMHz:   4000,
		TCLns:          15,
		TRCDns:         15,
		TRPns:          15,
		TRASns:         39,
		RowBufferBytes: 2048,
	}
}

// cycles converts nanoseconds to core cycles, rounding to nearest.
func (c Config) cycles(ns float64) uint64 {
	return uint64(ns*float64(c.CoreClockMHz)/1000 + 0.5)
}

// TCL etc. expose the timing parameters in core cycles.
func (c Config) TCL() uint64  { return c.cycles(c.TCLns) }
func (c Config) TRCD() uint64 { return c.cycles(c.TRCDns) }
func (c Config) TRP() uint64  { return c.cycles(c.TRPns) }
func (c Config) TRAS() uint64 { return c.cycles(c.TRASns) }

// TRC is the minimum time between two activations of the same bank
// (tRAS + tRP), the unit of the bandwidth monitor's windows.
func (c Config) TRC() uint64 { return c.TRAS() + c.TRP() }

// BurstCycles is the core-cycle occupancy of the channel data bus per CAS:
// a 64B line needs 8 transfers on the 64-bit bus.
func (c Config) BurstCycles() uint64 {
	return uint64(8*float64(c.CoreClockMHz)/float64(c.MTps) + 0.5)
}

// PeakBandwidthGBps is the theoretical peak across all channels
// (MT/s × 8 bytes per transfer per channel).
func (c Config) PeakBandwidthGBps() float64 {
	return float64(c.Channels) * float64(c.MTps) * 8 / 1000
}

// PeakCASPerWindow is the maximum number of CAS commands all channels can
// issue in one monitor window of 4×tRC cycles. It defines the quartile
// thresholds of the bandwidth-utilization signal.
func (c Config) PeakCASPerWindow() int {
	window := 4 * c.TRC()
	return int(window/c.BurstCycles()) * c.Channels
}

func (c Config) String() string {
	return fmt.Sprintf("%dch-DDR4-%d", c.Channels, c.MTps)
}

// bank tracks one DRAM bank's row buffer and availability. Column accesses
// to an open row pipeline at the burst rate (nextCAS); row activations are
// spaced by tRC and precharges respect tRAS.
type bank struct {
	openRow      int64 // -1 when precharged/idle
	nextCAS      uint64
	nextActivate uint64
	lastActivate uint64
}

// channel is one independent memory channel with its own data bus. Demands
// have transfer priority: they queue only behind other demands
// (busDemandFree), while prefetches and write-backs consume leftover
// capacity (busAllFree, which demand transfers also advance so total
// throughput never exceeds the pin bandwidth).
type channel struct {
	banks         []bank
	busDemandFree uint64
	busAllFree    uint64
}

// Stats accumulates DRAM traffic counters for reporting.
type Stats struct {
	Reads       uint64
	Writes      uint64
	RowHits     uint64
	RowMisses   uint64 // row conflict or empty row
	TotalCAS    uint64
	BusyCycles  uint64 // cycles the data buses were transferring
	QueueCycles uint64 // total cycles requests waited before service
}

// DRAM is one main-memory instance shared by all cores of a simulation.
type DRAM struct {
	cfg   Config
	chans []channel
	mon   *Monitor
	stats Stats

	linesPerRow uint64
	chanMask    uint64
	chanShift   uint
	bankCount   uint64

	// rowShift/bankMask/bankShift fold the per-access bank mapping's
	// divisions into shifts and masks; valid because lines-per-row and the
	// bank count are powers of two for every DDR4 geometry (asserted in New).
	rowShift  uint
	bankMask  uint64
	bankShift uint

	// Timing constants in core cycles, precomputed once: the Config methods
	// convert nanoseconds with float math, far too slow for a per-access path.
	tCL, tRCD, tRP, tRAS, tRC, burst, nominal uint64
}

// New builds a DRAM instance from cfg.
func New(cfg Config) *DRAM {
	if cfg.Channels < 1 || cfg.Channels&(cfg.Channels-1) != 0 {
		panic("dram: channel count must be a power of two")
	}
	d := &DRAM{
		cfg:         cfg,
		chans:       make([]channel, cfg.Channels),
		linesPerRow: uint64(cfg.RowBufferBytes / memaddr.LineBytes),
		chanMask:    uint64(cfg.Channels - 1),
		chanShift:   uint(trailingBits(uint64(cfg.Channels))),
		bankCount:   uint64(cfg.RanksPerChan * cfg.BanksPerRank),
		tCL:         cfg.TCL(),
		tRCD:        cfg.TRCD(),
		tRP:         cfg.TRP(),
		tRAS:        cfg.TRAS(),
		tRC:         cfg.TRC(),
		burst:       cfg.BurstCycles(),
	}
	d.nominal = d.tRCD + d.tCL + d.burst
	if d.linesPerRow&(d.linesPerRow-1) != 0 || d.bankCount&(d.bankCount-1) != 0 {
		panic("dram: lines per row and bank count must be powers of two")
	}
	d.rowShift = trailingBits(d.linesPerRow)
	d.bankMask = d.bankCount - 1
	d.bankShift = trailingBits(d.bankCount)
	for i := range d.chans {
		d.chans[i].banks = make([]bank, d.bankCount)
		for b := range d.chans[i].banks {
			d.chans[i].banks[b].openRow = -1
		}
	}
	d.mon = NewMonitor(cfg)
	return d
}

// Config returns the configuration this DRAM was built with.
func (d *DRAM) Config() Config { return d.cfg }

// Access schedules one demand 64B line transfer arriving at cycle now and
// returns the cycle at which the data transfer completes. The latency seen
// by the requester is done-now.
func (d *DRAM) Access(now uint64, line memaddr.Line, write bool) (done uint64) {
	return d.AccessPriority(now, line, write, true)
}

// AccessPriority schedules a transfer with explicit priority: demand=true
// for the core's demand fetches, false for speculative prefetches and
// write-backs, which yield the data bus to demands.
func (d *DRAM) AccessPriority(now uint64, line memaddr.Line, write, demand bool) (done uint64) {
	// Address mapping: channels interleave at line granularity so streams
	// use all channels; banks interleave at row granularity within a channel.
	l := uint64(line)
	chIdx := l & d.chanMask
	rowGlobal := l >> d.chanShift >> d.rowShift
	bIdx := rowGlobal & d.bankMask
	row := int64(rowGlobal >> d.bankShift)

	ch := &d.chans[chIdx]
	bk := &ch.banks[bIdx]

	var casTime uint64
	switch {
	case bk.openRow == row:
		casTime = max64(now, bk.nextCAS)
		d.stats.RowHits++
	case bk.openRow == -1:
		actTime := max64(max64(now, bk.nextActivate), bk.nextCAS)
		casTime = actTime + d.tRCD
		bk.nextActivate = actTime + d.tRC
		bk.lastActivate = actTime
		d.stats.RowMisses++
	default:
		preTime := max64(max64(now, bk.nextCAS), bk.lastActivate+d.tRAS)
		actTime := max64(preTime+d.tRP, bk.nextActivate)
		casTime = actTime + d.tRCD
		bk.nextActivate = actTime + d.tRC
		bk.lastActivate = actTime
		d.stats.RowMisses++
	}
	bk.openRow = row

	dataReady := casTime + d.tCL
	burst := d.burst
	var busStart uint64
	if demand {
		busStart = max64(dataReady, ch.busDemandFree)
		ch.busDemandFree = busStart + burst
		// A demand transfer also consumes total capacity, pushing queued
		// prefetch transfers back.
		ch.busAllFree = max64(ch.busAllFree, busStart) + burst
	} else {
		busStart = max64(dataReady, ch.busAllFree)
		ch.busAllFree = busStart + burst
	}
	// If the bus delayed the transfer, the controller would have delayed the
	// CAS too; keep the bank's CAS pipeline aligned with the bus.
	bk.nextCAS = busStart - d.tCL + burst
	done = busStart + burst

	d.stats.TotalCAS++
	d.stats.BusyCycles += burst
	d.stats.QueueCycles += busStart - dataReady + (casTime - min64(casTime, now))
	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	d.mon.RecordCAS(busStart)
	return done
}

// Utilization returns the 2-bit quantized bandwidth-utilization signal as of
// cycle now — the value the memory controller broadcasts to all cores (§3.2).
func (d *DRAM) Utilization(now uint64) bitpattern.Quartile {
	return d.mon.Signal(now)
}

// UtilizationFraction returns the exact utilization fraction for reporting.
func (d *DRAM) UtilizationFraction(now uint64) float64 {
	return d.mon.Fraction(now)
}

// Stats returns a copy of the accumulated traffic counters.
func (d *DRAM) Stats() Stats { return d.stats }

// NominalLatency is the queue-free demand fetch latency (activate + CAS +
// transfer). The memory system uses it to bound the wait of a demand that
// merges with an in-flight low-priority prefetch: the controller promotes
// such a prefetch to demand priority.
func (d *DRAM) NominalLatency() uint64 { return d.nominal }

// PrefetchQueueDepth is the per-channel backlog bound for speculative
// transfers, in data-bus bursts. A prefetch that would queue deeper than
// this is rejected by the memory controller (TryPrefetch), which keeps
// speculative traffic from holding MSHRs for unbounded stretches.
const PrefetchQueueDepth = 64

// TryPrefetch schedules a low-priority transfer like
// AccessPriority(now, line, false, false), unless the target channel's
// leftover-bandwidth backlog — the queueing beyond the intrinsic fetch
// latency — already exceeds PrefetchQueueDepth bursts, in which case the
// request is rejected and consumes nothing.
func (d *DRAM) TryPrefetch(now uint64, line memaddr.Line) (done uint64, ok bool) {
	ch := &d.chans[uint64(line)&d.chanMask]
	limit := now + d.nominal + PrefetchQueueDepth*d.burst
	if ch.busAllFree > limit {
		return 0, false
	}
	return d.AccessPriority(now, line, false, false), true
}

// AvgBandwidthGBps reports the average delivered bandwidth over the first
// `cycles` cycles of the simulation.
func (d *DRAM) AvgBandwidthGBps(cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	bytes := float64(d.stats.TotalCAS) * memaddr.LineBytes
	seconds := float64(cycles) / (float64(d.cfg.CoreClockMHz) * 1e6)
	return bytes / seconds / 1e9
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func trailingBits(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
