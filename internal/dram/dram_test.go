package dram

import (
	"testing"

	"dspatch/internal/bitpattern"
	"dspatch/internal/memaddr"
)

func TestConfigTimings(t *testing.T) {
	cfg := DDR4(1, 2133)
	// 15ns at 4GHz = 60 cycles; 39ns = 156 cycles.
	if cfg.TCL() != 60 || cfg.TRCD() != 60 || cfg.TRP() != 60 {
		t.Errorf("tCL/tRCD/tRP = %d/%d/%d, want 60", cfg.TCL(), cfg.TRCD(), cfg.TRP())
	}
	if cfg.TRAS() != 156 {
		t.Errorf("tRAS = %d, want 156", cfg.TRAS())
	}
	if cfg.TRC() != 216 {
		t.Errorf("tRC = %d, want 216", cfg.TRC())
	}
}

func TestBurstCycles(t *testing.T) {
	tests := []struct {
		mtps int
		want uint64
	}{
		{1600, 20}, // 8*4000/1600
		{2133, 15},
		{2400, 13}, // 13.33 rounds to 13
	}
	for _, tt := range tests {
		cfg := DDR4(1, tt.mtps)
		if got := cfg.BurstCycles(); got != tt.want {
			t.Errorf("BurstCycles(%d) = %d, want %d", tt.mtps, got, tt.want)
		}
	}
}

func TestPeakBandwidth(t *testing.T) {
	tests := []struct {
		ch, mtps int
		want     float64
	}{
		{1, 1600, 12.8},
		{1, 2133, 17.064},
		{2, 2400, 38.4},
	}
	for _, tt := range tests {
		cfg := DDR4(tt.ch, tt.mtps)
		if got := cfg.PeakBandwidthGBps(); got != tt.want {
			t.Errorf("PeakBandwidthGBps(%dch-%d) = %v, want %v", tt.ch, tt.mtps, got, tt.want)
		}
	}
}

func TestPeakCASPerWindow(t *testing.T) {
	cfg := DDR4(1, 2133)
	// window = 864 cycles, burst = 15 → 57 CAS per window per channel.
	if got := cfg.PeakCASPerWindow(); got != 57 {
		t.Errorf("PeakCASPerWindow = %d, want 57", got)
	}
	if got := DDR4(2, 2133).PeakCASPerWindow(); got != 114 {
		t.Errorf("2ch PeakCASPerWindow = %d, want 114", got)
	}
}

func TestSingleAccessLatency(t *testing.T) {
	d := New(DDR4(1, 2133))
	// Cold access: empty row → tRCD + tCL + burst = 60+60+15 = 135.
	done := d.Access(0, memaddr.Line(0), false)
	if done != 135 {
		t.Errorf("cold access latency = %d, want 135", done)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	d := New(DDR4(1, 2133))
	base := memaddr.Line(0)
	d.Access(0, base, false)
	// Same row (line 1 maps to same row on 1 channel): row hit.
	start := uint64(100000)
	hitDone := d.Access(start, base+1, false)
	hitLat := hitDone - start
	// A line far away in the same bank: row conflict.
	d2 := New(DDR4(1, 2133))
	d2.Access(0, base, false)
	// rows interleave across 16 banks; row stride within a bank is
	// linesPerRow*bankCount lines.
	conflictLine := memaddr.Line(32 * 16)
	confDone := d2.Access(start, conflictLine, false)
	confLat := confDone - start
	if hitLat >= confLat {
		t.Errorf("row hit latency %d should be < conflict latency %d", hitLat, confLat)
	}
	if hitLat != 60+15 {
		t.Errorf("row hit latency = %d, want 75", hitLat)
	}
}

func TestRowStats(t *testing.T) {
	d := New(DDR4(1, 2133))
	d.Access(0, 0, false)
	d.Access(1000, 1, false) // same row: hit
	s := d.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 {
		t.Errorf("stats = %+v, want 1 hit 1 miss", s)
	}
	if s.Reads != 2 || s.TotalCAS != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWriteCountsSeparately(t *testing.T) {
	d := New(DDR4(1, 2133))
	d.Access(0, 0, true)
	if s := d.Stats(); s.Writes != 1 || s.Reads != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// Issuing far more requests than the bus can carry must serialize: the
	// completion time of N back-to-back accesses is bounded below by N×burst.
	d := New(DDR4(1, 2133))
	const n = 1000
	var last uint64
	for i := 0; i < n; i++ {
		last = d.Access(0, memaddr.Line(i*32*16), false) // all distinct rows
	}
	if min := uint64(n) * d.Config().BurstCycles(); last < min {
		t.Errorf("completion %d < bus-serialized minimum %d", last, min)
	}
}

func TestChannelsParallelism(t *testing.T) {
	// Two channels should roughly halve the completion time of a line stream.
	run := func(channels int) uint64 {
		d := New(DDR4(channels, 2133))
		var last uint64
		for i := 0; i < 2000; i++ {
			done := d.Access(0, memaddr.Line(i), false)
			if done > last {
				last = done
			}
		}
		return last
	}
	one, two := run(1), run(2)
	if two >= one {
		t.Errorf("2ch completion %d should beat 1ch %d", two, one)
	}
	ratio := float64(one) / float64(two)
	if ratio < 1.6 || ratio > 2.6 {
		t.Errorf("channel scaling ratio = %.2f, want ~2", ratio)
	}
}

func TestMonitorIdleIsQ0(t *testing.T) {
	m := NewMonitor(DDR4(1, 2133))
	if q := m.Signal(10_000_000); q != bitpattern.Q0 {
		t.Errorf("idle signal = %v, want Q0", q)
	}
}

func TestMonitorSaturatedIsQ3(t *testing.T) {
	cfg := DDR4(1, 2133)
	m := NewMonitor(cfg)
	// Record CAS at peak rate for many windows.
	burst := cfg.BurstCycles()
	var now uint64
	for i := 0; i < 4*cfg.PeakCASPerWindow()*10; i++ {
		m.RecordCAS(now)
		now += burst
	}
	if q := m.Signal(now); q != bitpattern.Q3 {
		t.Errorf("saturated signal = %v, want Q3", q)
	}
}

func TestMonitorHalfRateIsMidQuartile(t *testing.T) {
	cfg := DDR4(1, 2133)
	m := NewMonitor(cfg)
	burst := cfg.BurstCycles() * 2 // half rate
	var now uint64
	for i := 0; i < 4*cfg.PeakCASPerWindow()*10; i++ {
		m.RecordCAS(now)
		now += burst
	}
	q := m.Signal(now)
	if q != bitpattern.Q2 && q != bitpattern.Q1 {
		t.Errorf("half-rate signal = %v, want Q1 or Q2", q)
	}
}

func TestMonitorHysteresisDecay(t *testing.T) {
	cfg := DDR4(1, 2133)
	m := NewMonitor(cfg)
	var now uint64
	for i := 0; i < 4*cfg.PeakCASPerWindow(); i++ {
		m.RecordCAS(now)
		now += cfg.BurstCycles()
	}
	if m.Signal(now) != bitpattern.Q3 {
		t.Fatalf("expected saturated before idle period")
	}
	// After many idle windows the signal must decay to Q0.
	now += 20 * 4 * cfg.TRC()
	if q := m.Signal(now); q != bitpattern.Q0 {
		t.Errorf("signal after idle = %v, want Q0", q)
	}
}

func TestDRAMUtilizationEndToEnd(t *testing.T) {
	d := New(DDR4(1, 2133))
	// Saturate: issue sequential lines at time 0; the bus backpressure packs
	// them end to end, so the recorded CAS rate is the peak rate.
	for i := 0; i < 5000; i++ {
		d.Access(0, memaddr.Line(i), false)
	}
	// Sample in the middle of the busy period.
	if q := d.Utilization(20000); q < bitpattern.Q2 {
		t.Errorf("utilization during saturation = %v, want >= Q2", q)
	}
}

func TestAvgBandwidth(t *testing.T) {
	d := New(DDR4(1, 2133))
	var last uint64
	for i := 0; i < 10000; i++ {
		last = d.Access(0, memaddr.Line(i), false)
	}
	bw := d.AvgBandwidthGBps(last)
	peak := d.Config().PeakBandwidthGBps()
	if bw > peak*1.01 {
		t.Errorf("delivered %v GB/s exceeds peak %v", bw, peak)
	}
	if bw < peak*0.5 {
		t.Errorf("sequential stream delivered only %v of %v GB/s", bw, peak)
	}
}

func TestBadChannelCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 3 channels")
		}
	}()
	New(DDR4(3, 2133))
}
