package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"dspatch/internal/experiments"
	"dspatch/internal/sweep"
)

func tinyCampaign(refs int) sweep.Campaign {
	return sweep.Campaign{
		Name: "svc",
		Base: sweep.Point{Refs: refs},
		Axes: sweep.Axes{
			Workloads: []sweep.Mix{{"mcf"}, {"tpcc"}},
			L2:        []string{"none", "spp"},
		},
	}
}

func TestCampaignSubmitStreamAndResubmitCached(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 2})
	ctx := ctxT(t)
	spec := tinyCampaign(641) // distinctive refs: runs unique to this test

	j, err := c.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatalf("SubmitCampaign: %v", err)
	}
	if j.Kind != "campaign" || j.Campaign == nil || j.Campaign.Name != "svc" {
		t.Fatalf("job view = %+v", j)
	}
	j, err = c.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.Status != StatusDone {
		t.Fatalf("status = %q (error %q)", j.Status, j.Error)
	}

	recs, err := c.CampaignRecords(ctx, j.ID, 0)
	if err != nil {
		t.Fatalf("CampaignRecords: %v", err)
	}
	if len(recs) != 1+4+1 { // header, 4 points, summary
		t.Fatalf("records = %d:\n%s", len(recs), recs)
	}
	var hdr sweep.Header
	if err := json.Unmarshal(recs[0], &hdr); err != nil || hdr.Type != "campaign" || hdr.Points != 4 {
		t.Fatalf("header = %s (%v)", recs[0], err)
	}
	// The job result is the summary record, byte for byte.
	if string(j.Result) != string(recs[len(recs)-1]) {
		t.Fatalf("job result is not the summary:\n%s\n%s", j.Result, recs[len(recs)-1])
	}

	// Resubmit: identical point records, zero new simulations.
	c0 := experiments.EngineCounters()
	j2, err := c.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if _, err := c.Wait(ctx, j2.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	c1 := experiments.EngineCounters()
	if d := c1.Sims - c0.Sims; d != 0 {
		t.Errorf("resubmitted campaign simulated %d points, want 0", d)
	}
	recs2, err := c.CampaignRecords(ctx, j2.ID, 0)
	if err != nil {
		t.Fatalf("CampaignRecords: %v", err)
	}
	for i := range recs[:len(recs)-1] {
		if string(recs[i]) != string(recs2[i]) {
			t.Errorf("record %d differs across submissions:\n%s\n%s", i, recs[i], recs2[i])
		}
	}
}

func TestCampaignFollowStreamsWhileRunning(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1})
	ctx := ctxT(t)
	j, err := c.SubmitCampaign(ctx, tinyCampaign(643))
	if err != nil {
		t.Fatalf("SubmitCampaign: %v", err)
	}
	// Follow with a wait window: the stream must end with the summary even
	// though the job was (likely) still queued when the GET arrived.
	recs, err := c.CampaignRecords(ctx, j.ID, 30*time.Second)
	if err != nil {
		t.Fatalf("CampaignRecords: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("empty stream")
	}
	var last struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(recs[len(recs)-1], &last); err != nil || last.Type != "summary" {
		t.Fatalf("stream did not end in a summary: %s", recs[len(recs)-1])
	}
}

func TestCampaignValidationAndRouting(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	ctx := ctxT(t)

	// Invalid spec: 400 with the sweep error surfaced.
	_, err := c.SubmitCampaign(ctx, sweep.Campaign{})
	var ae *APIError
	if !asAPIError(err, &ae) || ae.StatusCode != http.StatusBadRequest || !strings.Contains(ae.Message, "workload") {
		t.Fatalf("empty campaign: %v", err)
	}

	// Unknown id: 404.
	if _, err := c.CampaignRecords(ctx, "j9999", 0); !asAPIError(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: %v", err)
	}

	// A run job is not a campaign: the stream endpoint must 404 rather than
	// serve an empty stream.
	j, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: 500})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CampaignRecords(ctx, j.ID, 0); !asAPIError(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("run job streamed as campaign: %v", err)
	}
}

// TestWaitValidationAndClamp covers the long-poll guardrails: negative
// durations are rejected with 400, and a wait far beyond Config.MaxWait
// pins the handler for at most MaxWait.
func TestWaitValidationAndClamp(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, MaxWait: 150 * time.Millisecond})
	ctx := ctxT(t)

	// A long-running job keeps the poll from returning via completion.
	j, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: maxRefs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Cancel(ctx, j.ID) })

	cases := []struct {
		name    string
		wait    string
		status  int
		wantErr string
	}{
		{"negative", "-5s", http.StatusBadRequest, "non-negative"},
		{"garbage", "10parsecs", http.StatusBadRequest, "wait"},
		{"clamped", "10h", http.StatusOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			resp, err := http.Get(c.BaseURL + "/v1/jobs/" + j.ID + "?wait=" + tc.wait)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, buf.String())
			}
			if tc.wantErr != "" && !strings.Contains(buf.String(), tc.wantErr) {
				t.Errorf("body = %s, want %q", buf.String(), tc.wantErr)
			}
			if tc.status == http.StatusOK {
				// The 10h request must return once MaxWait elapses, not hold
				// the handler goroutine for hours.
				if elapsed := time.Since(start); elapsed > 5*time.Second {
					t.Errorf("clamped long-poll took %s", elapsed)
				}
				if !strings.Contains(buf.String(), `"status"`) {
					t.Errorf("clamped poll did not return the job: %s", buf.String())
				}
			}
		})
	}
}

// TestCampaignStreamRetentionCap: only the newest MaxCampaignStreams
// terminal campaigns keep their NDJSON streams; older ones answer 410 —
// surfaced by the client as *CampaignEvictedError — while their summary
// stays on the job record.
func TestCampaignStreamRetentionCap(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 2, MaxCampaignStreams: 1})
	ctx := ctxT(t)

	first, err := c.SubmitCampaign(ctx, tinyCampaign(647))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	second, err := c.SubmitCampaign(ctx, tinyCampaign(653))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, second.ID); err != nil {
		t.Fatal(err)
	}

	var ev *CampaignEvictedError
	if _, err := c.CampaignRecords(ctx, first.ID, 0); !errors.As(err, &ev) || ev.ID != first.ID {
		t.Fatalf("evicted stream: got %v, want *CampaignEvictedError for %s", err, first.ID)
	}
	// The job record — summary included — survives the stream eviction.
	j, err := c.Job(ctx, first.ID)
	if err != nil || j.Status != StatusDone || len(j.Result) == 0 {
		t.Fatalf("evicted campaign's job record damaged: %+v (err %v)", j, err)
	}
	// The newest campaign's stream is still fully readable.
	recs, err := c.CampaignRecords(ctx, second.ID, 0)
	if err != nil || len(recs) != 6 {
		t.Fatalf("retained stream: %d records, err %v", len(recs), err)
	}
}
