// Package service exposes the experiment engine as a long-running
// simulation-as-a-service daemon: a job-oriented HTTP API over the same
// process-wide engine the dspatch library and CLI use, so every run a client
// submits shares the in-process memo, the materialized replay-trace store
// and the persistent -cache-dir with every other front end. Repeated
// requests are answered from cache without re-simulating, and results are
// deterministic: a job submitted over HTTP returns exactly what the
// equivalent library call returns.
//
// API (all request/response bodies are JSON):
//
//	POST   /v1/runs              submit one simulation (RunSpec) -> JobView
//	POST   /v1/experiments/{id}  submit a paper table/figure (ScaleSpec) -> JobView
//	POST   /v1/campaigns         submit a declarative parameter sweep (sweep.Campaign) -> JobView
//	GET    /v1/campaigns/{id}    stream the campaign's NDJSON records; ?wait=10s follows live
//	POST   /v1/scenarios         register scenario specs (ScenarioSpec or [ScenarioSpec]) -> roster entries
//	GET    /v1/jobs              list jobs (newest last)
//	GET    /v1/jobs/{id}         fetch one job; ?wait=10s long-polls until terminal
//	DELETE /v1/jobs/{id}         cancel a queued or running job (campaigns included)
//	GET    /v1/experiments       the experiment registry
//	GET    /v1/workloads         the workload roster (name, category, source: builtin/spec/imported)
//	GET    /v1/prefetchers       selectable L2 prefetchers
//	GET    /v1/cache             persistent run-cache location and size
//	GET    /healthz              liveness + job/queue gauges
//	GET    /livez                process liveness (always 200 while serving)
//	GET    /readyz               readiness: 503 the moment draining begins
//	GET    /metrics              Prometheus text format counters
//
// Jobs flow through a sharded worker pool: submissions hash to one of
// JobWorkers bounded queues, so identical specs land on the same worker and
// the second is served from the memo the first just filled. Each job runs
// under its own context; DELETE cancels it mid-simulation, and draining the
// server (SIGTERM in dspatchd) stops intake, lets running jobs finish within
// the drain timeout, then cancels stragglers.
//
// With Config.Fleet set the daemon is a campaign coordinator: campaign
// points are deduplicated into runs, dispatched across worker daemons under
// leases, retried elsewhere on any failure (worker error, 503 shed, lease
// expiry, dead worker), and merged into the same byte-identical NDJSON
// stream a single-node run emits. See coordinator.go and FleetConfig.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dspatch/internal/experiments"
	"dspatch/internal/prefstats"
	"dspatch/internal/sim"
	"dspatch/internal/sweep"
	"dspatch/internal/trace"
)

// Config parameterizes a Server. The zero value is usable: every field has
// a sensible default.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8491").
	Addr string
	// JobWorkers is the number of worker goroutines, each owning one shard
	// of the job queue (default 2).
	JobWorkers int
	// SimWorkers is the per-job simulation parallelism handed to the
	// experiment engine (default GOMAXPROCS/JobWorkers, at least 1).
	SimWorkers int
	// QueueDepth bounds each worker shard's queue (default 64). A
	// submission to a full shard is rejected with 503.
	QueueDepth int
	// MaxJobs bounds retained job records; the oldest terminal jobs are
	// evicted past it (default 4096).
	MaxJobs int
	// CacheDir, when non-empty, enables the engine's persistent run cache.
	CacheDir string
	// DisableBatch turns off the engine's lockstep batching of same-trace
	// runs (the -batch=false A/B path). Results are identical either way.
	DisableBatch bool
	// DrainTimeout bounds how long Drain waits for running jobs before
	// canceling them (default 30s).
	DrainTimeout time.Duration
	// MaxWait caps the ?wait= long-poll of GET /v1/jobs/{id} and the live
	// follow window of GET /v1/campaigns/{id} (default 30s). A request
	// asking for more is clamped, never rejected, so a handler goroutine is
	// pinned for at most MaxWait per request.
	MaxWait time.Duration
	// MaxCampaignStreams bounds how many finished campaigns keep their full
	// NDJSON record stream in memory (default 64). Older terminal campaigns'
	// streams are evicted — GET /v1/campaigns/{id} answers 410 and the
	// summary stays on the job record — so campaign memory is O(streams
	// retained), not O(jobs retained). Only terminal campaigns count against
	// the cap and only they are evicted: a queued, running, or resumable
	// (journaled but unsealed) campaign is never evicted out from under a
	// follower, no matter how many campaigns finish around it.
	MaxCampaignStreams int
	// StoreDir, when non-empty, enables the durable layer: a ResultStore at
	// this directory plus a write-ahead campaign journal per campaign under
	// StoreDir/journals. Unsealed journals found at startup are resumed —
	// the campaign is re-created under its original job ID, journaled
	// completions replay from the store with zero dispatches, and only the
	// unfinished tail re-runs. When Fleet is set and Fleet.StoreDir is the
	// only one given, it is adopted as StoreDir.
	StoreDir string
	// StoreBackend selects the ResultStore implementation under StoreDir:
	// "dir" (default; one content-addressed JSON file per result, shareable
	// between processes) or "pack" (a single append-only pack file owned by
	// this daemon).
	StoreBackend string
	// QuotaRate, when > 0, enables per-client token-bucket admission
	// control: each client (keyed by the X-Dspatch-Client header; requests
	// without one share an anonymous bucket) accrues QuotaRate submission
	// tokens per second up to QuotaBurst. A dry bucket sheds with 503 +
	// Retry-After.
	QuotaRate float64
	// QuotaBurst is the token-bucket capacity (default 8 when QuotaRate is
	// set).
	QuotaBurst int
	// CampaignHighWater, when > 0, sheds new campaign submissions with 503 +
	// Retry-After once the active (queued or running) campaign count reaches
	// it, until the count falls back to CampaignLowWater.
	CampaignHighWater int
	// CampaignLowWater re-opens campaign admission after a high-watermark
	// shed (default CampaignHighWater/2).
	CampaignLowWater int
	// CrashAfterPoints, when > 0, hard-crashes the daemon (via CrashFn)
	// immediately after the Nth campaign point record is emitted across all
	// campaigns — the chaos harness's coordinator crash-kill. The crash
	// fires after the point was journaled, so a restart resumes past it.
	CrashAfterPoints int
	// CrashFn is what CrashAfterPoints calls (default os.Exit(137), the
	// exit code of a SIGKILLed process).
	CrashFn func()
	// Fleet, when non-nil, makes this daemon a coordinator: campaigns
	// execute across the configured worker daemons instead of the local
	// engine. Runs and experiments still execute locally.
	Fleet *FleetConfig
	// Middleware, when set, wraps the daemon's handler in ListenAndServe
	// (fault injection, auth, logging). Handler() returns the bare mux.
	Middleware func(http.Handler) http.Handler
	// Logf, when set, receives one-line operational messages.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8491"
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = runtime.GOMAXPROCS(0) / c.JobWorkers
		if c.SimWorkers < 1 {
			c.SimWorkers = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 30 * time.Second
	}
	if c.MaxCampaignStreams <= 0 {
		c.MaxCampaignStreams = 64
	}
	if c.QuotaRate > 0 && c.QuotaBurst <= 0 {
		c.QuotaBurst = 8
	}
	if c.CampaignHighWater > 0 && c.CampaignLowWater <= 0 {
		c.CampaignLowWater = c.CampaignHighWater / 2
	}
	if c.CrashFn == nil {
		c.CrashFn = func() { os.Exit(137) }
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

const (
	kindRun        = "run"
	kindExperiment = "experiment"
	kindCampaign   = "campaign"
)

// campaignFeed accumulates a running campaign's NDJSON records and lets
// streaming readers block for the next append. changed is closed and
// replaced on every append (a broadcast).
type campaignFeed struct {
	mu      sync.Mutex
	recs    []json.RawMessage
	changed chan struct{}
	evicted bool
}

func newCampaignFeed() *campaignFeed {
	return &campaignFeed{changed: make(chan struct{})}
}

func (f *campaignFeed) append(rec json.RawMessage) {
	f.mu.Lock()
	f.recs = append(f.recs, rec)
	close(f.changed)
	f.changed = make(chan struct{})
	f.mu.Unlock()
}

// evict drops the record stream (the retention cap was passed). Readers
// mid-stream see the feed end; new readers are told the stream is gone.
func (f *campaignFeed) evict() {
	f.mu.Lock()
	f.recs = nil
	f.evicted = true
	f.mu.Unlock()
}

func (f *campaignFeed) isEvicted() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.evicted
}

// next returns the records past from, plus a channel that closes on the next
// append (only meaningful when no new records were returned).
func (f *campaignFeed) next(from int) ([]json.RawMessage, <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from > len(f.recs) {
		from = len(f.recs)
	}
	return f.recs[from:], f.changed
}

// job is one unit of work and its record. Mutable state is guarded by mu;
// done closes exactly once when the job reaches a terminal status.
type job struct {
	id    string
	kind  string
	run   *RunSpec        // kindRun
	expID string          // kindExperiment
	scale *ScaleSpec      // kindExperiment
	camp  *sweep.Campaign // kindCampaign
	feed  *campaignFeed   // kindCampaign
	// resumePath, when non-empty, is the unsealed journal this campaign was
	// resurrected from at startup: execute reopens it (replaying its state)
	// instead of creating a fresh one.
	resumePath string

	mu     sync.Mutex
	status JobStatus
	errMsg string
	result json.RawMessage
	// resultStats is the result with per-prefetcher telemetry included;
	// non-nil only when the job collected stats. GET /v1/jobs/{id}?stats=1
	// serves it, every other path serves the lean result.
	resultStats json.RawMessage
	text        string
	submitted   time.Time
	started     time.Time
	finished    time.Time
	cancel      context.CancelFunc // set while running

	cancelRequested atomic.Bool
	done            chan struct{}
}

// JobView is the wire form of a job.
type JobView struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	Status     JobStatus       `json:"status"`
	Experiment string          `json:"experiment,omitempty"`
	Run        *RunSpec        `json:"run,omitempty"`
	Scale      *ScaleSpec      `json:"scale,omitempty"`
	Campaign   *sweep.Campaign `json:"campaign,omitempty"`
	Error      string          `json:"error,omitempty"`
	Submitted  time.Time       `json:"submitted_at"`
	Started    *time.Time      `json:"started_at,omitempty"`
	Finished   *time.Time      `json:"finished_at,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	// Text is the experiment's rendered table, exactly as cmd/dspatchsim
	// prints it (empty for raw runs).
	Text string `json:"text,omitempty"`
}

func (j *job) view(includeResult bool) JobView { return j.viewStats(includeResult, false) }

// viewStats is view with an opt-in for the stats-bearing result form:
// includeStats swaps in resultStats when the job collected telemetry.
func (j *job) viewStats(includeResult, includeStats bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.id,
		Kind:       j.kind,
		Status:     j.status,
		Experiment: j.expID,
		Run:        j.run,
		Scale:      j.scale,
		Campaign:   j.camp,
		Error:      j.errMsg,
		Submitted:  j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if includeResult {
		v.Result = j.result
		if includeStats && j.resultStats != nil {
			v.Result = j.resultStats
		}
		v.Text = j.text
	}
	return v
}

// claimRunning transitions queued -> running; false means the job was
// already canceled (or otherwise finished) before a worker reached it.
func (j *job) claimRunning(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish records a terminal status; it reports false if the job already
// reached one (a cancel raced with completion).
func (j *job) finish(st JobStatus, result, resultStats json.RawMessage, text, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return false
	}
	j.status = st
	j.result = result
	j.resultStats = resultStats
	j.text = text
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
	return true
}

// Server is the daemon: an HTTP handler plus the worker pool behind it.
// Create with New, serve via Handler or ListenAndServe, stop with Drain.
type Server struct {
	cfg   Config
	fleet *FleetConfig // normalized Config.Fleet; nil on non-coordinators
	mux   *http.ServeMux

	// Durable layer (nil/empty without Config.StoreDir).
	store      experiments.ResultStore
	journalDir string

	quotas       *quotaTable // guarded by mu; nil when quotas are off
	campShedding bool        // guarded by mu; campaign watermark hysteresis

	baseCtx  context.Context // canceled to hard-stop running jobs
	hardStop context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job // submission order, for listing and eviction
	campDone []*job // terminal campaigns still holding their record stream
	seq      int
	draining bool
	shards   []chan *job

	drainCh chan struct{} // closed when draining starts; releases long-polls
	wg      sync.WaitGroup
	start   time.Time

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	rejected  atomic.Uint64
	running   atomic.Int64

	// Fleet telemetry (zero on non-coordinators).
	pointsRedispatched atomic.Uint64
	workersEjected     atomic.Uint64
	leasesExpired      atomic.Uint64

	// Admission + durability telemetry.
	quotaRejected    atomic.Uint64
	campaignsShed    atomic.Uint64
	campaignsResumed atomic.Uint64
	activeCampaigns  atomic.Int64
	pointsEmitted    atomic.Uint64 // across campaigns; drives CrashAfterPoints

	// Per-prefetcher telemetry aggregated across every stats-collecting job
	// this daemon finished, exported on /metrics as labeled series.
	prefMu  sync.Mutex
	prefAgg []sim.PrefetcherStats
}

// recordPrefStats folds one finished job's per-prefetcher telemetry into the
// daemon-lifetime aggregate behind /metrics.
func (s *Server) recordPrefStats(stats []sim.PrefetcherStats) {
	if len(stats) == 0 {
		return
	}
	s.prefMu.Lock()
	s.prefAgg = prefstats.Merge(s.prefAgg, stats)
	s.prefMu.Unlock()
}

// New builds a Server and starts its worker pool (no listener yet: mount
// Handler yourself or call ListenAndServe). When cfg.CacheDir is set the
// process-wide engine's persistent cache is pointed at it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.CacheDir != "" {
		if err := experiments.SetCacheDir(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	experiments.SetBatching(!cfg.DisableBatch)
	var fleet *FleetConfig
	if cfg.Fleet != nil {
		if len(cfg.Fleet.Workers) == 0 && cfg.Fleet.WorkersFile == "" {
			return nil, fmt.Errorf("service: fleet config needs worker URLs or a workers file")
		}
		fc := cfg.Fleet.withDefaults()
		fleet = &fc
		if cfg.StoreDir == "" {
			// The fleet's shared store doubles as the durable layer's root.
			cfg.StoreDir = fc.StoreDir
		}
	}
	store, journalDir, err := openStore(cfg)
	if err != nil {
		return nil, err
	}
	var quotas *quotaTable
	if cfg.QuotaRate > 0 {
		quotas = newQuotaTable(cfg.QuotaRate, cfg.QuotaBurst)
	}
	baseCtx, hardStop := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		fleet:      fleet,
		store:      store,
		journalDir: journalDir,
		quotas:     quotas,
		baseCtx:    baseCtx,
		hardStop:   hardStop,
		jobs:       map[string]*job{},
		shards:     make([]chan *job, cfg.JobWorkers),
		drainCh:    make(chan struct{}),
		start:      time.Now(),
	}
	for i := range s.shards {
		s.shards[i] = make(chan *job, cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(s.shards[i])
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("POST /v1/experiments/{id}", s.handleSubmitExperiment)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmitCampaign)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignStream)
	s.mux.HandleFunc("POST /v1/scenarios", s.handleRegisterScenarios)
	s.mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/prefetchers", s.handlePrefetchers)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.resumeJournals()
	return s, nil
}

// openStore builds the durable layer from Config: a ResultStore at StoreDir
// in the selected backend, plus the campaign-journal directory beneath it.
func openStore(cfg Config) (experiments.ResultStore, string, error) {
	if cfg.StoreDir == "" {
		if cfg.StoreBackend != "" && cfg.StoreBackend != "dir" {
			return nil, "", fmt.Errorf("service: store backend %q needs a store dir", cfg.StoreBackend)
		}
		return nil, "", nil
	}
	var store experiments.ResultStore
	switch cfg.StoreBackend {
	case "", "dir":
		ds, err := experiments.NewDirStore(cfg.StoreDir)
		if err != nil {
			return nil, "", fmt.Errorf("service: %w", err)
		}
		store = ds
	case "pack":
		if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
			return nil, "", fmt.Errorf("service: store dir: %w", err)
		}
		ps, err := experiments.OpenPackStore(filepath.Join(cfg.StoreDir, "results.pack"))
		if err != nil {
			return nil, "", fmt.Errorf("service: %w", err)
		}
		store = ps
	default:
		return nil, "", fmt.Errorf("service: unknown store backend %q (want dir or pack)", cfg.StoreBackend)
	}
	journalDir := filepath.Join(cfg.StoreDir, "journals")
	if err := os.MkdirAll(journalDir, 0o755); err != nil {
		return nil, "", fmt.Errorf("service: journal dir: %w", err)
	}
	return store, journalDir, nil
}

// resumeJournals scans the journal directory at startup and resurrects
// every unsealed campaign under its original job ID: the job re-enters the
// queue, and when a worker picks it up the journal replays — completions
// rehydrate from the store with zero dispatches, only the unfinished tail
// runs, and the NDJSON stream (rebuilt from the start) is byte-identical to
// an uninterrupted run. Sealed journals (campaigns that finished before the
// restart) are reaped. Corrupt files are skipped with a log line, never a
// startup failure.
func (s *Server) resumeJournals() {
	if s.journalDir == "" {
		return
	}
	paths, err := filepath.Glob(filepath.Join(s.journalDir, "*.journal"))
	if err != nil {
		return
	}
	sort.Strings(paths)
	for _, path := range paths {
		st, err := sweep.ReadJournalState(path)
		if err != nil {
			s.cfg.Logf("journal %s unreadable, skipping: %v", filepath.Base(path), err)
			continue
		}
		if st.Sealed {
			os.Remove(path)
			continue
		}
		camp := st.Campaign
		j := &job{
			kind:       kindCampaign,
			camp:       &camp,
			feed:       newCampaignFeed(),
			resumePath: path,
			status:     StatusQueued,
			submitted:  time.Now(),
			done:       make(chan struct{}),
		}
		j.id = st.JobID
		var n int
		if _, err := fmt.Sscanf(st.JobID, "j%06d", &n); err != nil || j.id == "" {
			s.cfg.Logf("journal %s has no usable job id, skipping", filepath.Base(path))
			continue
		}
		s.mu.Lock()
		if s.seq < n {
			s.seq = n
		}
		if _, dup := s.jobs[j.id]; dup {
			s.mu.Unlock()
			continue
		}
		shard := shardKey(kindCampaign, j.camp, s.cfg.JobWorkers)
		select {
		case s.shards[shard] <- j:
		default:
			s.mu.Unlock()
			s.cfg.Logf("journal %s: queue full, campaign %s stays on disk for the next restart",
				filepath.Base(path), j.id)
			continue
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		s.mu.Unlock()
		s.submitted.Add(1)
		s.activeCampaigns.Add(1)
		s.campaignsResumed.Add(1)
		s.cfg.Logf("resuming campaign %s from journal (%d done, %d dropped)",
			j.id, len(st.Done), len(st.Dropped))
	}
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully stops the worker pool: intake closes (submissions get
// 503), queued jobs are canceled, running jobs may finish until ctx fires,
// then they are canceled too. Drain returns when every worker has exited.
func (s *Server) Drain(ctx context.Context) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	close(s.drainCh)
	for _, sh := range s.shards {
		close(sh)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Out of patience: cancel running simulations. Their cancellation
		// hooks fire within microseconds, so this wait is short.
		s.hardStop()
		<-done
	}
	s.hardStop()
}

// ListenAndServe runs a Server on cfg.Addr until ctx is canceled, then
// drains gracefully (bounded by cfg.DrainTimeout) and returns nil. A
// listener or serve failure returns the error instead.
func ListenAndServe(ctx context.Context, cfg Config) error {
	cfg = cfg.withDefaults()
	s, err := New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.Drain(context.Background())
		return err
	}
	handler := s.Handler()
	if cfg.Middleware != nil {
		handler = cfg.Middleware(handler)
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	cfg.Logf("dspatchd listening on %s (workers=%d sim-workers=%d queue=%d cache=%s)",
		ln.Addr(), cfg.JobWorkers, cfg.SimWorkers, cfg.QueueDepth, cacheDirLabel())

	select {
	case err := <-errc:
		s.Drain(context.Background())
		return err
	case <-ctx.Done():
	}
	cfg.Logf("dspatchd draining (timeout %s)", cfg.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	s.Drain(drainCtx)
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	if err := hs.Shutdown(shCtx); err != nil {
		hs.Close()
	}
	cfg.Logf("dspatchd stopped")
	return nil
}

func cacheDirLabel() string {
	if dir := experiments.CacheDir(); dir != "" {
		return dir
	}
	return "off"
}

// worker drains one queue shard until it closes.
func (s *Server) worker(shard chan *job) {
	defer s.wg.Done()
	for j := range shard {
		s.runJob(j)
	}
}

// retireCampaign enrolls a terminal campaign in the stream-retention window
// and evicts the oldest streams past Config.MaxCampaignStreams. Job records
// (and their summary results) are untouched — only the bulky NDJSON record
// slices are freed. Eviction considers terminal campaigns exclusively: the
// retention window is only ever entered here, on a campaign's single
// transition to a terminal status, so an active or resumable campaign can
// never lose its stream to the cap. Every terminal campaign passes through
// here exactly once, which also makes this the one place the active gauge
// behind the admission watermarks is decremented.
func (s *Server) retireCampaign(j *job) {
	if j.kind != kindCampaign {
		return
	}
	s.activeCampaigns.Add(-1)
	s.mu.Lock()
	s.campDone = append(s.campDone, j)
	var evict []*job
	if n := len(s.campDone) - s.cfg.MaxCampaignStreams; n > 0 {
		evict = s.campDone[:n:n]
		s.campDone = append([]*job(nil), s.campDone[n:]...)
	}
	s.mu.Unlock()
	for _, old := range evict {
		old.feed.evict()
	}
}

func (s *Server) runJob(j *job) {
	if s.isDraining() || j.cancelRequested.Load() {
		if j.finish(StatusCanceled, nil, nil, "", "canceled before start") {
			s.canceled.Add(1)
			s.retireCampaign(j)
		}
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.claimRunning(cancel) {
		return // canceled while queued; the cancel handler finished it
	}
	// A cancel request that arrived between the queue check and the claim
	// saw no cancel func to call; honor it now.
	if j.cancelRequested.Load() {
		cancel()
	}
	s.running.Add(1)
	result, resultStats, text, err := s.execute(ctx, j)
	s.running.Add(-1)
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		if j.finish(StatusCanceled, nil, nil, "", "canceled") {
			s.canceled.Add(1)
			s.retireCampaign(j)
		}
	case err != nil:
		if j.finish(StatusFailed, nil, nil, "", err.Error()) {
			s.failed.Add(1)
			s.retireCampaign(j)
		}
	default:
		if j.finish(StatusDone, result, resultStats, text, "") {
			s.completed.Add(1)
			s.retireCampaign(j)
		}
	}
}

// execute runs the job's work on the process-shared experiment engine. Panics
// are converted to job failures: one malformed job must not take down the
// daemon. resultStats, when non-nil, is the stats-bearing result form
// (per-prefetcher telemetry included) served behind ?stats=1; result is
// always the lean form.
func (s *Server) execute(ctx context.Context, j *job) (result, resultStats json.RawMessage, text string, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("job panicked: %v", p)
		}
	}()
	switch j.kind {
	case kindRun:
		results, err := experiments.RunJobs(ctx, []experiments.Job{j.run.Job()}, s.cfg.SimWorkers)
		if err != nil {
			return nil, nil, "", err
		}
		res := results[0]
		res.StripPorts() // live memory-system state is not part of the API
		if len(res.Prefetchers) > 0 {
			s.recordPrefStats(res.Prefetchers)
			full, err := marshalResult(res)
			if err != nil {
				return nil, nil, "", err
			}
			lean := res
			lean.Prefetchers = nil
			raw, err := marshalResult(lean)
			return raw, full, "", err
		}
		raw, err := marshalResult(res)
		return raw, nil, "", err
	case kindCampaign:
		var last json.RawMessage
		emit := func(line json.RawMessage) error {
			last = line
			j.feed.append(line)
			if s.cfg.CrashAfterPoints > 0 && bytes.HasPrefix(line, []byte(`{"type":"point"`)) {
				// Chaos hook: the record (and, with a journal, its done frame)
				// is already durable/visible — crashing here is the worst
				// moment a real SIGKILL could pick.
				if int(s.pointsEmitted.Add(1)) == s.cfg.CrashAfterPoints {
					s.cfg.Logf("chaos: crashing after %d campaign points", s.cfg.CrashAfterPoints)
					s.cfg.CrashFn()
				}
			}
			return nil
		}
		jl, resume := s.openCampaignJournal(j)
		if jl != nil {
			defer jl.Close()
		}
		var sum sweep.Summary
		runCampaign := func() error {
			var err error
			if s.fleet != nil {
				sum, err = s.runFleetCampaign(ctx, *j.camp, emit, jl, resume)
				return err
			}
			eng := sweep.Engine{
				Workers: s.cfg.SimWorkers,
				Journal: jl,
				Store:   s.store,
				Resume:  resume,
				Logf:    s.cfg.Logf,
			}
			sum, err = eng.Run(ctx, *j.camp, emit)
			return err
		}
		if err := runCampaign(); err != nil {
			// A user cancel (or a deterministic failure) must not resurrect
			// forever on every restart; only a drain/hard-stop cancel — the
			// restart case — keeps the journal for resume.
			if jl != nil && (j.cancelRequested.Load() || ctx.Err() == nil) {
				os.Remove(jl.Path())
			}
			return nil, nil, "", err
		}
		if jl != nil {
			// Sealed: the campaign is complete, nothing left to resume.
			os.Remove(jl.Path())
		}
		// The engine's final record is the summary; it doubles as the
		// JobView result so /v1/jobs/{id} answers without the full stream.
		// A stats-collecting campaign's summary carries the aggregated
		// telemetry: that full form goes behind ?stats=1 and the lean form
		// (telemetry stripped) is the default result.
		if len(sum.Prefetchers) > 0 {
			s.recordPrefStats(sum.Prefetchers)
			lean := sum
			lean.Prefetchers = nil
			raw, err := marshalResult(lean)
			return raw, last, "", err
		}
		return last, nil, "", nil
	case kindExperiment:
		e, ok := experiments.ExperimentByID(j.expID)
		if !ok {
			return nil, nil, "", fmt.Errorf("unknown experiment %q", j.expID)
		}
		scale := j.scale.scale().WithParallel(s.cfg.SimWorkers).WithContext(ctx)
		v := e.Run(scale)
		if err := ctx.Err(); err != nil {
			return nil, nil, "", err
		}
		raw, err := marshalResult(v)
		if err != nil {
			return nil, nil, "", err
		}
		var buf bytes.Buffer
		e.Format(&buf, v)
		return raw, nil, buf.String(), nil
	}
	return nil, nil, "", fmt.Errorf("unknown job kind %q", j.kind)
}

// openCampaignJournal opens the durable journal for a campaign job: a
// resumed job reopens its unsealed journal (recovering the replay state), a
// fresh one creates a new journal under the journal dir. Journaling is an
// accelerator for restarts, never a correctness dependency: any error here
// degrades to an unjournaled run with a log line.
func (s *Server) openCampaignJournal(j *job) (*sweep.Journal, *sweep.JournalState) {
	if s.journalDir == "" {
		return nil, nil
	}
	if j.resumePath != "" {
		jl, st, err := sweep.OpenJournal(j.resumePath)
		if err != nil {
			s.cfg.Logf("campaign %s: journal reopen failed, running from scratch: %v", j.id, err)
			return nil, nil
		}
		return jl, st
	}
	jl, err := sweep.CreateJournal(filepath.Join(s.journalDir, j.id+".journal"), j.id, *j.camp)
	if err != nil {
		s.cfg.Logf("campaign %s: journal disabled: %v", j.id, err)
		return nil, nil
	}
	return jl, nil
}

// marshalResult encodes a result value. The fast path is encoding/json
// verbatim — byte-identical to marshaling the library call's return value.
// Values containing NaN/Inf (possible in sparse experiment aggregates, e.g.
// a category with no sampled workloads) are not representable in JSON;
// those fall back to a sanitized deep copy with such numbers as null.
func marshalResult(v any) (json.RawMessage, error) {
	raw, err := json.Marshal(v)
	if err == nil {
		return raw, nil
	}
	var ue *json.UnsupportedValueError
	if !errors.As(err, &ue) {
		return nil, err
	}
	return json.Marshal(sanitizeValue(reflect.ValueOf(v)))
}

// sanitizeValue deep-copies v into generic JSON values, mapping NaN and
// ±Inf floats to null. Struct fields follow their json tags so the shape
// matches the fast path.
func sanitizeValue(rv reflect.Value) any {
	switch rv.Kind() {
	case reflect.Invalid:
		return nil
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return nil
		}
		return sanitizeValue(rv.Elem())
	case reflect.Float32, reflect.Float64:
		f := rv.Float()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil
		}
		return f
	case reflect.Slice, reflect.Array:
		out := make([]any, rv.Len())
		for i := range out {
			out[i] = sanitizeValue(rv.Index(i))
		}
		return out
	case reflect.Map:
		out := make(map[string]any, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			out[fmt.Sprint(iter.Key().Interface())] = sanitizeValue(iter.Value())
		}
		return out
	case reflect.Struct:
		out := map[string]any{}
		for _, f := range reflect.VisibleFields(rv.Type()) {
			if !f.IsExported() || f.Anonymous {
				continue
			}
			name := f.Name
			if tag, ok := f.Tag.Lookup("json"); ok {
				if tag == "-" {
					continue
				}
				if comma := bytes.IndexByte([]byte(tag), ','); comma >= 0 {
					tag = tag[:comma]
				}
				if tag != "" {
					name = tag
				}
			}
			out[name] = sanitizeValue(rv.FieldByIndex(f.Index))
		}
		return out
	default:
		return rv.Interface()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// submit registers j and enqueues it on its spec's shard.
func (s *Server) submit(w http.ResponseWriter, j *job, shard int) {
	j.status = StatusQueued
	j.submitted = time.Now()
	j.done = make(chan struct{})

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if !s.evictLocked() {
		s.mu.Unlock()
		s.rejected.Add(1)
		httpError(w, http.StatusServiceUnavailable, "job table full (all jobs active)")
		return
	}
	s.seq++
	j.id = fmt.Sprintf("j%06d", s.seq)
	select {
	case s.shards[shard] <- j:
	default:
		s.seq-- // id never observed
		s.mu.Unlock()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "job queue full")
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()

	s.submitted.Add(1)
	if j.kind == kindCampaign {
		s.activeCampaigns.Add(1)
	}
	writeJSON(w, http.StatusAccepted, j.view(false))
}

// evictLocked makes room for one more job record, reporting false when the
// table is pinned by non-terminal jobs. Caller holds s.mu.
func (s *Server) evictLocked() bool {
	if len(s.order) < s.cfg.MaxJobs {
		return true
	}
	for i, old := range s.order {
		old.mu.Lock()
		terminal := old.status.Terminal()
		old.mu.Unlock()
		if terminal {
			delete(s.jobs, old.id)
			s.order = append(s.order[:i:i], s.order[i+1:]...)
			return true
		}
	}
	return false
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, false) {
		return
	}
	var spec RunSpec
	if !decodeBodyLimit(w, r, &spec, false, maxScenarioBodyBytes) {
		return
	}
	if err := spec.Normalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	j := &job{kind: kindRun, run: &spec}
	s.submit(w, j, shardKey(kindRun, &spec, s.cfg.JobWorkers))
}

func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, true) {
		return
	}
	var spec sweep.Campaign
	if !decodeBodyLimit(w, r, &spec, false, maxScenarioBodyBytes) {
		return
	}
	if err := spec.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	j := &job{kind: kindCampaign, camp: &spec, feed: newCampaignFeed()}
	s.submit(w, j, shardKey(kindCampaign, &spec, s.cfg.JobWorkers))
}

// handleCampaignStream writes the campaign's NDJSON records. Without ?wait=
// it returns a snapshot of the records so far (the complete stream once the
// job is terminal); with ?wait= it keeps following live appends until the
// job finishes or the window — clamped to Config.MaxWait — elapses.
func (s *Server) handleCampaignStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok || j.kind != kindCampaign {
		httpError(w, http.StatusNotFound, "no such campaign")
		return
	}
	if j.feed.isEvicted() {
		httpError(w, http.StatusGone,
			"campaign record stream evicted (retention cap); the summary remains at /v1/jobs/"+j.id)
		return
	}
	wait, err := s.parseWait(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	deadline := time.Now().Add(wait)
	var timer *time.Timer
	if wait > 0 {
		timer = time.NewTimer(wait)
		defer timer.Stop()
	}
	from := 0
	for {
		recs, changed := j.feed.next(from)
		for _, rec := range recs {
			w.Write(rec)
			w.Write([]byte("\n"))
		}
		from += len(recs)
		if len(recs) > 0 {
			if flusher != nil {
				flusher.Flush()
			}
			continue // drain everything available before blocking
		}
		select {
		case <-j.done:
			// Terminal: emit any records appended after our last read, then
			// end the stream.
			recs, _ := j.feed.next(from)
			for _, rec := range recs {
				w.Write(rec)
				w.Write([]byte("\n"))
			}
			return
		default:
		}
		if wait <= 0 || !time.Now().Before(deadline) {
			return
		}
		select {
		case <-changed:
		case <-j.done:
		case <-timer.C:
			return
		case <-r.Context().Done():
			return
		case <-s.drainCh: // don't hold Shutdown hostage to live follows
			return
		}
	}
}

func (s *Server) handleSubmitExperiment(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r, false) {
		return
	}
	id := r.PathValue("id")
	if _, ok := experiments.ExperimentByID(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown experiment %q (see GET /v1/experiments)", id))
		return
	}
	var spec ScaleSpec
	if !decodeBody(w, r, &spec, true) {
		return
	}
	if err := spec.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	j := &job{kind: kindExperiment, expID: id, scale: &spec}
	s.submit(w, j, shardKey(kindExperiment+"\x00"+id, &spec, s.cfg.JobWorkers))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view(false)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	d, err := s.parseWait(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-r.Context().Done():
		case <-s.drainCh: // don't hold Shutdown hostage to long-polls
		}
	}
	writeJSON(w, http.StatusOK, j.viewStats(true, wantStats(r)))
}

// wantStats reads the ?stats= opt-in of GET /v1/jobs/{id}: when true the
// stats-bearing result form (per-prefetcher telemetry included) is served
// instead of the lean one.
func wantStats(r *http.Request) bool {
	switch r.URL.Query().Get("stats") {
	case "1", "true":
		return true
	}
	return false
}

// parseWait reads the ?wait= long-poll window: absent means 0 (answer
// immediately), negative durations are rejected, and anything above
// Config.MaxWait is clamped so one request can pin a handler goroutine for
// at most that long.
func (s *Server) parseWait(r *http.Request) (time.Duration, error) {
	waitStr := r.URL.Query().Get("wait")
	if waitStr == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(waitStr)
	if err != nil {
		return 0, fmt.Errorf("wait: %v", err)
	}
	if d < 0 {
		return 0, fmt.Errorf("wait: must be non-negative, got %s", d)
	}
	if d > s.cfg.MaxWait {
		d = s.cfg.MaxWait
	}
	return d, nil
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.cancelRequested.Store(true)
	j.mu.Lock()
	canceledQueued := false
	switch {
	case j.status == StatusQueued:
		j.status = StatusCanceled
		j.errMsg = "canceled while queued"
		j.finished = time.Now()
		close(j.done)
		s.canceled.Add(1)
		canceledQueued = true
	case j.status == StatusRunning && j.cancel != nil:
		j.cancel()
	}
	j.mu.Unlock()
	if canceledQueued {
		s.retireCampaign(j)
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	type info struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		Sim   bool   `json:"sim"`
	}
	var out []info
	for _, e := range experiments.Experiments() {
		out = append(out, info{ID: e.ID, Title: e.Title, Sim: e.Sim})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []WorkloadInfo
	for _, wl := range trace.Workloads() {
		out = append(out, workloadView(wl))
	}
	writeJSON(w, http.StatusOK, out)
}

func workloadView(wl trace.Workload) WorkloadInfo {
	return WorkloadInfo{
		Name:         wl.Name,
		Category:     string(wl.Category),
		MemIntensive: wl.MemIntensive,
		Source:       wl.Source,
		Fingerprint:  wl.Fingerprint,
	}
}

// handleRegisterScenarios registers ad-hoc scenario specs process-wide: the
// body is one ScenarioSpec object or an array of them, and registration
// follows the registry's strict-idempotent rules (identical re-registration
// is a no-op, redefining an existing workload is a 409). Registered names
// are immediately usable in runs, campaigns and experiments; for
// campaign-scoped scenarios prefer the campaign's inline "scenarios" block.
func (s *Server) handleRegisterScenarios(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxScenarioBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	specs, err := trace.ParseSpecs(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	out := make([]WorkloadInfo, 0, len(specs))
	for _, sp := range specs {
		wl, err := trace.RegisterSpec(sp)
		if err != nil {
			code := http.StatusBadRequest
			if strings.Contains(err.Error(), "conflicts with existing") {
				code = http.StatusConflict
			}
			httpError(w, code, err.Error())
			return
		}
		out = append(out, workloadView(wl))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePrefetchers(w http.ResponseWriter, r *http.Request) {
	out := make([]string, len(sim.AllPFs))
	for i, p := range sim.AllPFs {
		out[i] = string(p)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	type cacheInfo struct {
		Enabled bool   `json:"enabled"`
		Dir     string `json:"dir,omitempty"`
		Entries int    `json:"entries"`
		Bytes   int64  `json:"bytes"`
	}
	info := cacheInfo{Dir: experiments.CacheDir()}
	if info.Dir != "" {
		info.Enabled = true
		if matches, err := filepath.Glob(filepath.Join(info.Dir, "*.json")); err == nil {
			info.Entries = len(matches)
			for _, m := range matches {
				if st, err := os.Stat(m); err == nil {
					info.Bytes += st.Size()
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// Health is the /healthz body.
type Health struct {
	Status        string `json:"status"` // "ok" or "draining"
	UptimeSeconds int64  `json:"uptime_seconds"`
	Queued        int    `json:"queued"`
	Running       int    `json:"running"`
	JobWorkers    int    `json:"job_workers"`
	SimWorkers    int    `json:"sim_workers"`
	CacheEnabled  bool   `json:"cache_enabled"`
	// ActiveCampaigns is the queued-or-running campaign count the admission
	// watermarks gate on.
	ActiveCampaigns int `json:"active_campaigns"`
}

func (s *Server) health() Health {
	h := Health{
		Status:          "ok",
		UptimeSeconds:   int64(time.Since(s.start).Seconds()),
		Running:         int(s.running.Load()),
		JobWorkers:      s.cfg.JobWorkers,
		SimWorkers:      s.cfg.SimWorkers,
		CacheEnabled:    experiments.CacheDir() != "",
		ActiveCampaigns: int(s.activeCampaigns.Load()),
	}
	s.mu.Lock()
	if s.draining {
		h.Status = "draining"
	}
	for _, sh := range s.shards {
		h.Queued += len(sh)
	}
	s.mu.Unlock()
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleLivez is pure process liveness: if the handler answers at all, the
// daemon is alive — draining included. Restart policies key off this.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleReadyz is readiness to accept work: it flips to 503 the moment a
// drain begins, so load balancers and fleet coordinators stop routing new
// dispatches here while in-flight jobs finish. Health probes and worker
// selection key off this.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	if h.Status != "ok" {
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	ec := experiments.EngineCounters()
	refsPerSec := 0.0
	if ec.SimNanos > 0 {
		refsPerSec = float64(ec.RefsSimulated) / (float64(ec.SimNanos) / 1e9)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counterf := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name,
			strconv.FormatFloat(v, 'g', -1, 64))
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name,
			strconv.FormatFloat(v, 'g', -1, 64))
	}
	counter("dspatchd_jobs_submitted_total", "Jobs accepted for execution.", s.submitted.Load())
	counter("dspatchd_jobs_completed_total", "Jobs finished successfully.", s.completed.Load())
	counter("dspatchd_jobs_failed_total", "Jobs that ended in error.", s.failed.Load())
	counter("dspatchd_jobs_canceled_total", "Jobs canceled before or during execution.", s.canceled.Load())
	counter("dspatchd_jobs_rejected_total", "Submissions rejected (queue full or draining).", s.rejected.Load())
	gauge("dspatchd_jobs_running", "Jobs executing right now.", float64(h.Running))
	gauge("dspatchd_jobs_queued", "Jobs waiting in worker queues.", float64(h.Queued))
	counter("dspatchd_engine_sims_total", "Simulations actually executed by the engine.", ec.Sims)
	counter("dspatchd_engine_memo_hits_total", "Runs served from the in-process memo.", ec.MemoHits)
	counter("dspatchd_engine_disk_cache_hits_total", "Runs served from the persistent cache.", ec.DiskHits)
	counter("dspatchd_engine_refs_simulated_total", "Memory references simulated (cold runs).", ec.RefsSimulated)
	counter("dspatchd_engine_batches_total", "Lockstep multi-config batches executed.", ec.Batches)
	counter("dspatchd_points_redispatched_total", "Campaign runs returned to the pending set and dispatched again.", s.pointsRedispatched.Load())
	counter("dspatchd_workers_ejected_total", "Fleet workers ejected from the rotation after consecutive failures.", s.workersEjected.Load())
	counter("dspatchd_leases_expired_total", "Dispatch leases that expired before the worker answered.", s.leasesExpired.Load())
	counter("dspatchd_quota_rejections_total", "Submissions shed by per-client quota buckets.", s.quotaRejected.Load())
	counter("dspatchd_campaigns_shed_total", "Campaign submissions shed at the high watermark.", s.campaignsShed.Load())
	counter("dspatchd_campaigns_resumed_total", "Campaigns resurrected from unsealed journals at startup.", s.campaignsResumed.Load())
	gauge("dspatchd_campaigns_active", "Campaigns queued or running right now.", float64(h.ActiveCampaigns))
	counterf("dspatchd_engine_sim_seconds_total", "Wall seconds spent simulating.", float64(ec.SimNanos)/1e9)
	gauge("dspatchd_engine_refs_per_second", "Aggregate simulation throughput.", refsPerSec)
	gauge("dspatchd_uptime_seconds", "Seconds since daemon start.", float64(h.UptimeSeconds))
	s.writePrefMetrics(&b)
	w.Write(b.Bytes())
}

// writePrefMetrics renders the per-prefetcher telemetry aggregate as two
// labeled counter families: one for flat counters, one for histogram
// buckets. Series only exist once a stats-collecting job has finished.
func (s *Server) writePrefMetrics(b *bytes.Buffer) {
	s.prefMu.Lock()
	defer s.prefMu.Unlock()
	if len(s.prefAgg) == 0 {
		return
	}
	byName := append([]sim.PrefetcherStats(nil), s.prefAgg...)
	sort.Slice(byName, func(i, j int) bool { return byName[i].Name < byName[j].Name })

	fmt.Fprintf(b, "# HELP dspatchd_prefetcher_events_total Per-prefetcher model event counters, aggregated across stats-collecting jobs.\n# TYPE dspatchd_prefetcher_events_total counter\n")
	for _, st := range byName {
		names := make([]string, 0, len(st.Counters))
		for n := range st.Counters {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(b, "dspatchd_prefetcher_events_total{prefetcher=%q,counter=%q} %d\n",
				st.Name, n, st.Counters[n])
		}
	}
	fmt.Fprintf(b, "# HELP dspatchd_prefetcher_hist_total Per-prefetcher histogram bucket counts, aggregated across stats-collecting jobs.\n# TYPE dspatchd_prefetcher_hist_total counter\n")
	for _, st := range byName {
		names := make([]string, 0, len(st.Histograms))
		for n := range st.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			hist := st.Histograms[n]
			for i, bkt := range hist.Buckets {
				fmt.Fprintf(b, "dspatchd_prefetcher_hist_total{prefetcher=%q,hist=%q,bucket=%q} %d\n",
					st.Name, n, bkt, hist.Counts[i])
			}
		}
	}
}

// Body caps: ordinary bodies get 1 MiB; scenario-bearing bodies (runs,
// campaigns, scenario registration) may inline base64 DSPTRC01 trace
// payloads — the coordinator forwards imported traces to workers this way —
// and get the larger cap, sized above trace.SpecFor's forwarding limit.
const (
	maxBodyBytes         = 1 << 20
	maxScenarioBodyBytes = 48 << 20
)

// decodeBody strictly decodes a JSON request body into dst. allowEmpty
// accepts a missing/empty body as the zero value. On failure it writes the
// 400 and reports false.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any, allowEmpty bool) bool {
	return decodeBodyLimit(w, r, dst, allowEmpty, maxBodyBytes)
}

func decodeBodyLimit(w http.ResponseWriter, r *http.Request, dst any, allowEmpty bool, limit int64) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, limit))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return false
	}
	if len(bytes.TrimSpace(body)) == 0 {
		if allowEmpty {
			return true
		}
		httpError(w, http.StatusBadRequest, "request body required")
		return false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return false
	}
	return true
}

type apiError struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":%q}`, "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
	w.Write([]byte("\n"))
}
