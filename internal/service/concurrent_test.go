package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"dspatch/internal/experiments"
)

// TestConcurrentClientsShareTheCache hammers the daemon from many goroutines
// with overlapping identical and distinct jobs (run under -race in CI) and
// asserts three things: every response for a given spec is byte-identical,
// responses match the direct library path exactly, and the engine simulated
// each distinct configuration exactly once — everything else was a cache
// hit.
func TestConcurrentClientsShareTheCache(t *testing.T) {
	experiments.ResetMemo()
	_, c := newTestServer(t, Config{JobWorkers: 4, SimWorkers: 1, QueueDepth: 64})
	ctx := ctxT(t)

	specs := []RunSpec{
		{Workloads: []string{"linpack"}, Refs: 1_000},
		{Workloads: []string{"linpack"}, Refs: 1_000, L2: "spp"},
		{Workloads: []string{"tpcc"}, Refs: 1_000, L2: "dspatch"},
	}
	const clients = 4 // every client submits every spec: 3 distinct, 12 total
	before := experiments.EngineCounters()

	type outcome struct {
		spec int
		body string
		err  error
	}
	results := make(chan outcome, clients*len(specs))
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si, spec := range specs {
				j, err := c.SubmitRun(ctx, spec)
				if err == nil {
					j, err = c.Wait(ctx, j.ID)
					if err == nil && j.Status != StatusDone {
						err = fmt.Errorf("status %q: %s", j.Status, j.Error)
					}
				}
				results <- outcome{spec: si, body: string(j.Result), err: err}
			}
		}()
	}
	wg.Wait()
	close(results)

	bySpec := make([]map[string]int, len(specs))
	for i := range bySpec {
		bySpec[i] = map[string]int{}
	}
	for o := range results {
		if o.err != nil {
			t.Fatalf("spec %d: %v", o.spec, o.err)
		}
		bySpec[o.spec][o.body]++
	}
	for i, bodies := range bySpec {
		if len(bodies) != 1 {
			t.Errorf("spec %d returned %d distinct result bodies, want 1", i, len(bodies))
		}
	}

	// Responses must equal the direct library path byte for byte.
	for i, spec := range specs {
		norm := spec
		if err := norm.Normalize(); err != nil {
			t.Fatal(err)
		}
		direct, err := experiments.RunJobs(context.Background(), []experiments.Job{norm.Job()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		res := direct[0]
		res.StripPorts()
		want, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		for body := range bySpec[i] {
			if body != string(want) {
				t.Errorf("spec %d: service result differs from library path:\n%s\n%s", i, body, want)
			}
		}
	}

	after := experiments.EngineCounters()
	// 3 distinct configs + their shared-per-options memo misses: each spec is
	// one distinct runKey, so exactly 3 cold simulations; the direct
	// verification calls above were memo hits too.
	if sims := after.Sims - before.Sims; sims != uint64(len(specs)) {
		t.Errorf("engine simulated %d times, want %d (duplicates must hit the memo)", sims, len(specs))
	}
	wantHits := uint64(clients*len(specs) - len(specs) + len(specs)) // duplicates + direct calls
	if hits := after.MemoHits - before.MemoHits; hits < wantHits {
		t.Errorf("memo hits = %d, want >= %d", hits, wantHits)
	}
}

// TestSecondSubmissionServedFromDiskCache is the PR's acceptance criterion:
// with a cache-enabled daemon, resubmitting a job returns byte-identical
// result JSON and completes without invoking the simulator — proven by the
// engine's sim counter staying flat while the disk-hit counter advances.
func TestSecondSubmissionServedFromDiskCache(t *testing.T) {
	cacheDir := t.TempDir()
	experiments.ResetMemo()
	t.Cleanup(func() {
		if err := experiments.SetCacheDir(""); err != nil {
			t.Error(err)
		}
	})
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1, CacheDir: cacheDir})
	ctx := ctxT(t)

	spec := RunSpec{Workloads: []string{"tpcc"}, Refs: 1_200, L2: "dspatch+spp"}
	first, err := c.SubmitRun(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	first, err = c.Wait(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != StatusDone {
		t.Fatalf("first run: %q (%s)", first.Status, first.Error)
	}
	afterFirst := experiments.EngineCounters()

	// Model a daemon restart: the in-process memo is gone, only the disk
	// cache remains.
	experiments.ResetMemo()

	second, err := c.SubmitRun(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err = c.Wait(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != StatusDone {
		t.Fatalf("second run: %q (%s)", second.Status, second.Error)
	}
	if string(first.Result) != string(second.Result) {
		t.Fatalf("second submission not byte-identical:\n%s\n%s", first.Result, second.Result)
	}
	if first.ID == second.ID {
		t.Fatal("distinct submissions shared a job id")
	}

	afterSecond := experiments.EngineCounters()
	if sims := afterSecond.Sims - afterFirst.Sims; sims != 0 {
		t.Errorf("second submission invoked the simulator %d times, want 0", sims)
	}
	if hits := afterSecond.DiskHits - afterFirst.DiskHits; hits != 1 {
		t.Errorf("disk cache hits = %d, want 1", hits)
	}
}
