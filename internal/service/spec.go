package service

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/bits"

	"dspatch/internal/dram"
	"dspatch/internal/experiments"
	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// Guardrails on untrusted request bodies. Generous next to the paper's full
// scale (200k refs) while keeping a single request from pinning a worker for
// hours.
const (
	maxRunLanes    = 8
	maxRefs        = 5_000_000
	minLLCBytes    = 1 << 16
	maxLLCBytes    = 1 << 30
	maxDRAMChans   = 4
	maxPerCategory = 16
	maxMPMixes     = 64
)

// RunSpec is the body of POST /v1/runs: one simulation of a workload mix.
// Zero fields take the machine defaults of the paper's single-thread
// configuration (or the multi-programmed one for multi-lane mixes), exactly
// as sim.DefaultST/DefaultMP do, so a minimal {"workloads":["mcf"]} request
// is already meaningful.
type RunSpec struct {
	Workloads []string `json:"workloads"`
	Refs      int      `json:"refs,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
	// L2 selects the prefetcher under test ("none" baseline by default);
	// see GET /v1/prefetchers for the roster.
	L2             string `json:"l2,omitempty"`
	LLCBytes       int    `json:"llc_bytes,omitempty"`
	DRAMChannels   int    `json:"dram_channels,omitempty"`
	DRAMMTps       int    `json:"dram_mtps,omitempty"`
	NoL1Stride     bool   `json:"no_l1_stride,omitempty"`
	SMSPHTEntries  int    `json:"sms_pht_entries,omitempty"`
	TrackPollution bool   `json:"track_pollution,omitempty"`
}

// normalize validates sp against the roster and guardrails and fills every
// defaulted field in place, so the stored spec states the machine it ran on
// and equal effective configurations share one canonical form.
func (sp *RunSpec) normalize() error {
	if len(sp.Workloads) == 0 {
		return fmt.Errorf("workloads: at least one workload name is required")
	}
	if len(sp.Workloads) > maxRunLanes {
		return fmt.Errorf("workloads: at most %d lanes per run, got %d", maxRunLanes, len(sp.Workloads))
	}
	for _, name := range sp.Workloads {
		if _, ok := trace.ByName(name); !ok {
			return fmt.Errorf("workloads: unknown workload %q (see GET /v1/workloads)", name)
		}
	}
	if sp.L2 == "" {
		sp.L2 = string(sim.PFNone)
	}
	if !sim.KnownPF(sim.PF(sp.L2)) {
		return fmt.Errorf("l2: unknown prefetcher %q (see GET /v1/prefetchers)", sp.L2)
	}
	switch {
	case sp.Refs < 0:
		return fmt.Errorf("refs: must be non-negative, got %d", sp.Refs)
	case sp.Refs == 0:
		sp.Refs = 40_000
	case sp.Refs > maxRefs:
		return fmt.Errorf("refs: at most %d per run, got %d", maxRefs, sp.Refs)
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	multi := len(sp.Workloads) > 1
	switch {
	case sp.LLCBytes < 0:
		return fmt.Errorf("llc_bytes: must be non-negative, got %d", sp.LLCBytes)
	case sp.LLCBytes == 0:
		if multi {
			sp.LLCBytes = 8 << 20
		} else {
			sp.LLCBytes = 2 << 20
		}
	case sp.LLCBytes < minLLCBytes || sp.LLCBytes > maxLLCBytes || bits.OnesCount(uint(sp.LLCBytes)) != 1:
		// The 16-way LLC derives its set count as llc_bytes/1024, which the
		// cache model requires to be a power of two.
		return fmt.Errorf("llc_bytes: want a power of two in [%d, %d], got %d", minLLCBytes, maxLLCBytes, sp.LLCBytes)
	}
	if sp.DRAMChannels == 0 {
		if multi {
			sp.DRAMChannels = 2
		} else {
			sp.DRAMChannels = 1
		}
	}
	if sp.DRAMChannels < 1 || sp.DRAMChannels > maxDRAMChans {
		return fmt.Errorf("dram_channels: want 1..%d, got %d", maxDRAMChans, sp.DRAMChannels)
	}
	if sp.DRAMMTps == 0 {
		sp.DRAMMTps = 2133
	}
	switch sp.DRAMMTps {
	case 1600, 2133, 2400:
	default:
		return fmt.Errorf("dram_mtps: want 1600, 2133 or 2400, got %d", sp.DRAMMTps)
	}
	// The SMS pattern table is 16-way set-associative and its model requires
	// a power-of-two set count, so entries must be 16 * 2^k.
	if sp.SMSPHTEntries != 0 &&
		(sp.SMSPHTEntries < 16 || sp.SMSPHTEntries > 1<<20 || bits.OnesCount(uint(sp.SMSPHTEntries)) != 1) {
		return fmt.Errorf("sms_pht_entries: want 0 (default) or a power of two in [16, %d], got %d", 1<<20, sp.SMSPHTEntries)
	}
	return nil
}

// job converts a normalized spec into the engine's job form.
func (sp *RunSpec) job() experiments.Job {
	ws := make([]trace.Workload, len(sp.Workloads))
	for i, name := range sp.Workloads {
		ws[i], _ = trace.ByName(name)
	}
	return experiments.Job{
		Workloads: ws,
		Opt: sim.Options{
			DRAM:           dram.DDR4(sp.DRAMChannels, sp.DRAMMTps),
			LLCBytes:       sp.LLCBytes,
			Refs:           sp.Refs,
			Seed:           sp.Seed,
			L2:             sim.PF(sp.L2),
			NoL1Stride:     sp.NoL1Stride,
			SMSPHTEntries:  sp.SMSPHTEntries,
			TrackPollution: sp.TrackPollution,
		},
	}
}

// ScaleSpec is the body of POST /v1/experiments/{id}: the scale knobs of the
// experiment engine. The zero value is the laptop-sized quick scale;
// {"full": true} starts from the paper's full roster instead. Explicit
// fields override either base.
type ScaleSpec struct {
	Full        bool  `json:"full,omitempty"`
	Refs        int   `json:"refs,omitempty"`
	PerCategory int   `json:"per_category,omitempty"`
	MPMixes     int   `json:"mp_mixes,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
}

// normalize validates the guardrails; defaults stay zero so the stored spec
// reflects what the client asked for (the scale() expansion is documented).
func (sp *ScaleSpec) normalize() error {
	switch {
	case sp.Refs < 0:
		return fmt.Errorf("refs: must be non-negative, got %d", sp.Refs)
	case sp.Refs > maxRefs:
		return fmt.Errorf("refs: at most %d per run, got %d", maxRefs, sp.Refs)
	}
	if sp.PerCategory < 0 || sp.PerCategory > maxPerCategory {
		return fmt.Errorf("per_category: want 0..%d, got %d", maxPerCategory, sp.PerCategory)
	}
	if sp.MPMixes < 0 || sp.MPMixes > maxMPMixes {
		return fmt.Errorf("mp_mixes: want 0..%d, got %d", maxMPMixes, sp.MPMixes)
	}
	return nil
}

// scale expands the spec against its base scale.
func (sp *ScaleSpec) scale() experiments.Scale {
	s := experiments.Quick()
	if sp.Full {
		s = experiments.Full()
	}
	if sp.Refs > 0 {
		s.Refs = sp.Refs
	}
	if sp.PerCategory > 0 {
		s.PerCategory = sp.PerCategory
	}
	if sp.MPMixes > 0 {
		s.MPMixes = sp.MPMixes
	}
	if sp.Seed != 0 {
		s.Seed = sp.Seed
	}
	return s
}

// shardKey hashes a normalized spec to a worker shard, so identical
// submissions land on the same worker and are served back-to-back from the
// memo instead of simulating twice on two workers. kind disambiguates a run
// from an experiment that happens to encode identically.
func shardKey(kind string, spec any, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(kind))
	b, _ := json.Marshal(spec)
	h.Write(b)
	return int(h.Sum32() % uint32(shards))
}
