package service

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"dspatch/internal/experiments"
	"dspatch/internal/sweep"
)

// Guardrails on untrusted request bodies. The per-run limits live with the
// shared point vocabulary in internal/sweep (campaign axes expand into the
// same Points this API accepts); the scale limits below are service-only.
const (
	maxRefs        = sweep.MaxRefs
	maxPerCategory = 16
	maxMPMixes     = 64
)

// RunSpec is the body of POST /v1/runs: one simulation of a workload mix.
// It is the campaign subsystem's point vocabulary (sweep.Point) verbatim, so
// a /v1/runs body, a campaign axis expansion and a library Simulate call all
// describe machines in exactly the same terms. Zero fields take the machine
// defaults of the paper's single-thread configuration (or the
// multi-programmed one for multi-lane mixes), so a minimal
// {"workloads":["mcf"]} request is already meaningful.
type RunSpec = sweep.Point

// ScaleSpec is the body of POST /v1/experiments/{id}: the scale knobs of the
// experiment engine. The zero value is the laptop-sized quick scale;
// {"full": true} starts from the paper's full roster instead. Explicit
// fields override either base.
type ScaleSpec struct {
	Full        bool  `json:"full,omitempty"`
	Refs        int   `json:"refs,omitempty"`
	PerCategory int   `json:"per_category,omitempty"`
	MPMixes     int   `json:"mp_mixes,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
}

// normalize validates the guardrails; defaults stay zero so the stored spec
// reflects what the client asked for (the scale() expansion is documented).
func (sp *ScaleSpec) normalize() error {
	switch {
	case sp.Refs < 0:
		return fmt.Errorf("refs: must be non-negative, got %d", sp.Refs)
	case sp.Refs > maxRefs:
		return fmt.Errorf("refs: at most %d per run, got %d", maxRefs, sp.Refs)
	}
	if sp.PerCategory < 0 || sp.PerCategory > maxPerCategory {
		return fmt.Errorf("per_category: want 0..%d, got %d", maxPerCategory, sp.PerCategory)
	}
	if sp.MPMixes < 0 || sp.MPMixes > maxMPMixes {
		return fmt.Errorf("mp_mixes: want 0..%d, got %d", maxMPMixes, sp.MPMixes)
	}
	return nil
}

// scale expands the spec against its base scale.
func (sp *ScaleSpec) scale() experiments.Scale {
	s := experiments.Quick()
	if sp.Full {
		s = experiments.Full()
	}
	if sp.Refs > 0 {
		s.Refs = sp.Refs
	}
	if sp.PerCategory > 0 {
		s.PerCategory = sp.PerCategory
	}
	if sp.MPMixes > 0 {
		s.MPMixes = sp.MPMixes
	}
	if sp.Seed != 0 {
		s.Seed = sp.Seed
	}
	return s
}

// shardKey hashes a normalized spec to a worker shard, so identical
// submissions land on the same worker and are served back-to-back from the
// memo instead of simulating twice on two workers. kind disambiguates a run
// from an experiment (or campaign) that happens to encode identically.
func shardKey(kind string, spec any, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(kind))
	b, _ := json.Marshal(spec)
	h.Write(b)
	return int(h.Sum32() % uint32(shards))
}
