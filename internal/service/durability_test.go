package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dspatch/internal/sweep"
)

// Durability acceptance tests: crash-recoverable campaigns, admission
// control, and health-gated membership. The crash here is a panic sentinel
// standing in for SIGKILL — it rips control out of the campaign mid-emit
// exactly where a real kill would land, while letting the test keep running
// to start the next incarnation. The CI crash-resume smoke job repeats the
// scenario with a real process and a real SIGKILL.

type crashSentinel struct{}

// crashingConfig arms cfg to "crash" (panic) after n emitted campaign
// points, reporting the panic through the returned channel.
func crashingConfig(cfg Config, n int) (Config, chan struct{}) {
	crashed := make(chan struct{})
	cfg.CrashAfterPoints = n
	cfg.CrashFn = func() {
		close(crashed)
		panic(crashSentinel{})
	}
	return cfg, crashed
}

func journalsIn(t *testing.T, storeDir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(storeDir, "journals", "*.journal"))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// TestFleetCoordinatorCrashResume is the issue's acceptance scenario: a
// 3-worker fleet coordinator is crash-killed mid-campaign (after the second
// emitted point), a fresh coordinator on the same store dir resurrects the
// campaign under its original job ID, and the final stream is byte-identical
// to a single-node run with zero dropped points. Journaled completions and
// stored results replay without dispatches — only the unfinished tail hits
// the fleet again.
func TestFleetCoordinatorCrashResume(t *testing.T) {
	spec := tinyCampaign(709) // distinctive refs: runs unique to this test
	want := localReference(t, spec)
	storeDir := t.TempDir()
	urls := newWorkerFleet(t, 3, nil)
	ctx := ctxT(t)

	// Incarnation one: crash after the second emitted point.
	cfg1, crashed := crashingConfig(Config{JobWorkers: 1, Fleet: fleetTestConfig(urls, storeDir)}, 2)
	_, c1 := newTestServer(t, cfg1)
	j, err := c1.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatalf("SubmitCampaign: %v", err)
	}
	select {
	case <-crashed:
	case <-ctx.Done():
		t.Fatal("campaign never reached the crash point")
	}
	jv, err := c1.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait on crashed incarnation: %v", err)
	}
	if jv.Status != StatusFailed {
		t.Fatalf("crashed campaign status = %q, want failed", jv.Status)
	}
	if got := journalsIn(t, storeDir); len(got) != 1 {
		t.Fatalf("journals after crash = %v, want the unsealed campaign journal", got)
	}

	// Incarnation two: same store dir, no crash. Startup must resurrect the
	// campaign under its original ID.
	s2, c2 := newTestServer(t, Config{JobWorkers: 1, Fleet: fleetTestConfig(urls, storeDir)})
	if got := s2.campaignsResumed.Load(); got != 1 {
		t.Fatalf("campaigns resumed = %d, want 1", got)
	}
	jv, err = c2.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait on resumed campaign %s: %v", j.ID, err)
	}
	if jv.Status != StatusDone {
		t.Fatalf("resumed campaign status = %q (error %q)", jv.Status, jv.Error)
	}

	recs, err := c2.CampaignRecords(ctx, j.ID, 0)
	if err != nil {
		t.Fatalf("CampaignRecords: %v", err)
	}
	if len(recs) != len(want) {
		t.Fatalf("resumed stream has %d records, local %d:\n%s", len(recs), len(want), recs)
	}
	for k := range want {
		a, b := want[k], string(recs[k])
		if k == len(want)-1 {
			a, b = stripFleetTelemetry(t, a), stripFleetTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs after crash-resume:\nlocal:   %s\nresumed: %s", k, a, b)
		}
	}
	var sum sweep.Summary
	if err := json.Unmarshal(recs[len(recs)-1], &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.DroppedPoints) != 0 {
		t.Fatalf("resumed campaign dropped points: %+v", sum.DroppedPoints)
	}
	// The campaign deduplicates to 4 runs. At least one point (and its runs)
	// was durable before the crash, so the resumed pass must dispatch
	// strictly less than the whole campaign — replayed completions cost zero
	// dispatches, store hits cover the rest of the finished prefix.
	if sum.Fleet == nil || sum.Fleet.Dispatches >= 4 {
		t.Errorf("resumed fleet telemetry = %+v, want < 4 dispatches", sum.Fleet)
	}
	// Success seals and reaps the journal.
	if got := journalsIn(t, storeDir); len(got) != 0 {
		t.Errorf("journals after successful resume = %v, want none", got)
	}
	h, err := c2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ActiveCampaigns != 0 {
		t.Errorf("active campaigns after completion = %d", h.ActiveCampaigns)
	}
	metrics, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "dspatchd_campaigns_resumed_total 1") {
		t.Errorf("/metrics missing resumed counter:\n%s", metrics)
	}
}

// TestLocalCrashResume is the single-node variant: no fleet, just the local
// engine journaling into -store-dir. Same contract — restart resumes the
// campaign under its original ID with a byte-identical stream.
func TestLocalCrashResume(t *testing.T) {
	spec := tinyCampaign(719)
	storeDir := t.TempDir()
	ctx := ctxT(t)

	var want []string
	{
		_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 2})
		j, err := c.SubmitCampaign(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if j, err = c.Wait(ctx, j.ID); err != nil || j.Status != StatusDone {
			t.Fatalf("reference run: %v status %q", err, j.Status)
		}
		recs, err := c.CampaignRecords(ctx, j.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			want = append(want, string(r))
		}
	}

	cfg1, crashed := crashingConfig(Config{JobWorkers: 1, SimWorkers: 2, StoreDir: storeDir}, 2)
	_, c1 := newTestServer(t, cfg1)
	j, err := c1.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-crashed:
	case <-ctx.Done():
		t.Fatal("campaign never reached the crash point")
	}
	if jv, err := c1.Wait(ctx, j.ID); err != nil || jv.Status != StatusFailed {
		t.Fatalf("crashed incarnation: %v status %q", err, jv.Status)
	}

	s2, c2 := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 2, StoreDir: storeDir})
	if got := s2.campaignsResumed.Load(); got != 1 {
		t.Fatalf("campaigns resumed = %d, want 1", got)
	}
	jv, err := c2.Wait(ctx, j.ID)
	if err != nil || jv.Status != StatusDone {
		t.Fatalf("resumed campaign: %v status %q (error %q)", err, jv.Status, jv.Error)
	}
	recs, err := c2.CampaignRecords(ctx, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("resumed stream has %d records, want %d", len(recs), len(want))
	}
	for k := range want {
		a, b := want[k], string(recs[k])
		if k == len(want)-1 {
			a, b = stripFleetTelemetry(t, a), stripFleetTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs after crash-resume:\nwant %s\ngot  %s", k, a, b)
		}
	}
}

// TestPackStoreBackendServesCampaigns wires the pack backend through the
// daemon: a crash-resume round trip entirely on -store pack.
func TestPackStoreBackendServesCampaigns(t *testing.T) {
	spec := tinyCampaign(727)
	storeDir := t.TempDir()
	ctx := ctxT(t)

	cfg1, crashed := crashingConfig(Config{JobWorkers: 1, SimWorkers: 2, StoreDir: storeDir, StoreBackend: "pack"}, 2)
	_, c1 := newTestServer(t, cfg1)
	j, err := c1.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	<-crashed
	if jv, err := c1.Wait(ctx, j.ID); err != nil || jv.Status != StatusFailed {
		t.Fatalf("crashed incarnation: %v status %q", err, jv.Status)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "results.pack")); err != nil {
		t.Fatalf("pack file missing: %v", err)
	}

	s2, c2 := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 2, StoreDir: storeDir, StoreBackend: "pack"})
	if got := s2.campaignsResumed.Load(); got != 1 {
		t.Fatalf("campaigns resumed = %d, want 1", got)
	}
	jv, err := c2.Wait(ctx, j.ID)
	if err != nil || jv.Status != StatusDone {
		t.Fatalf("resumed campaign on pack store: %v status %q (error %q)", err, jv.Status, jv.Error)
	}
}

// TestQuotaShedsPerClient exhausts one client's token bucket and proves the
// 503 + Retry-After contract, per-client isolation, and the metrics trail.
func TestQuotaShedsPerClient(t *testing.T) {
	s, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1, QuotaRate: 0.01, QuotaBurst: 2})
	ctx := ctxT(t)
	c.ClientID = "alice"
	spec := RunSpec{Workloads: []string{"linpack"}, Refs: 733}

	for i := 0; i < 2; i++ {
		if _, err := c.SubmitRun(ctx, spec); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	_, err := c.SubmitRun(ctx, spec)
	var ae *APIError
	if !asAPIError(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-burst submit: %v, want 503", err)
	}
	if !strings.Contains(ae.Message, "quota") {
		t.Errorf("shed message = %q, want a quota explanation", ae.Message)
	}
	if ae.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", ae.RetryAfter)
	}

	// A different client has its own bucket.
	c2 := NewClient(c.BaseURL)
	c2.ClientID = "bob"
	if _, err := c2.SubmitRun(ctx, spec); err != nil {
		t.Fatalf("second client blocked by first client's quota: %v", err)
	}
	// The anonymous crowd shares one bucket.
	anon := NewClient(c.BaseURL)
	if _, err := anon.SubmitRun(ctx, spec); err != nil {
		t.Fatalf("anonymous submit within burst: %v", err)
	}
	if _, err := anon.SubmitRun(ctx, spec); err != nil {
		t.Fatalf("anonymous submit within burst: %v", err)
	}
	if _, err := anon.SubmitRun(ctx, spec); err == nil {
		t.Fatal("anonymous bucket never exhausted")
	}
	if got := s.quotaRejected.Load(); got < 2 {
		t.Errorf("quota rejections = %d, want >= 2", got)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, "dspatchd_quota_rejections_total") {
		t.Error("/metrics missing dspatchd_quota_rejections_total")
	}
}

// TestCampaignWatermarkSheds fills the daemon to its campaign high watermark
// and proves hysteresis: new campaigns shed at the high mark and stay shed
// until the active count reaches the low mark.
func TestCampaignWatermarkSheds(t *testing.T) {
	s, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1, CampaignHighWater: 2, CampaignLowWater: 1})
	ctx := ctxT(t)

	// Two long campaigns: one runs, one queues — both count as active.
	long := tinyCampaign(maxRefs)
	j1, err := c.SubmitCampaign(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.SubmitCampaign(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitCampaign(ctx, tinyCampaign(739))
	var ae *APIError
	if !asAPIError(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit at high watermark: %v, want 503", err)
	}
	if !strings.Contains(ae.Message, "watermark") {
		t.Errorf("shed message = %q", ae.Message)
	}
	// Runs are not campaigns: the watermark must not touch them.
	if _, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: 739}); err != nil {
		t.Fatalf("plain run shed by campaign watermark: %v", err)
	}

	// Cancel one campaign: active drops to 1 == low water, admission reopens.
	if _, err := c.Cancel(ctx, j1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, j1.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for int(s.activeCampaigns.Load()) > 1 {
		if time.Now().After(deadline) {
			t.Fatalf("active campaigns stuck at %d", s.activeCampaigns.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	j3, err := c.SubmitCampaign(ctx, tinyCampaign(743))
	if err != nil {
		t.Fatalf("submit after falling to low watermark: %v", err)
	}
	for _, id := range []string{j2.ID, j3.ID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.campaignsShed.Load(); got != 1 {
		t.Errorf("campaigns shed = %d, want 1", got)
	}
}

// TestRunningCampaignNeverEvicted pins the -max-campaign-streams contract:
// the retention cap counts terminal campaigns only, so a stream of finished
// campaigns can never evict an active one's records.
func TestRunningCampaignNeverEvicted(t *testing.T) {
	s, c := newTestServer(t, Config{JobWorkers: 2, SimWorkers: 1, MaxCampaignStreams: 1})
	ctx := ctxT(t)

	// A long-running campaign on one shard...
	longSpec := tinyCampaign(maxRefs)
	long, err := c.SubmitCampaign(ctx, longSpec)
	if err != nil {
		t.Fatal(err)
	}
	// ...while finished campaigns churn through the retention window on the
	// OTHER shard (same shardKey the daemon routes with — a churn campaign
	// sharing the long one's shard would queue behind it instead of
	// finishing first). Two terminal campaigns with cap 1 force an eviction.
	longShard := shardKey(kindCampaign, &longSpec, 2)
	var churn []int
	for refs := 751; len(churn) < 2; refs += 2 {
		spec := tinyCampaign(refs)
		if shardKey(kindCampaign, &spec, 2) != longShard {
			churn = append(churn, refs)
		}
	}
	var done []JobView
	for _, refs := range churn {
		j, err := c.SubmitCampaign(ctx, tinyCampaign(refs))
		if err != nil {
			t.Fatal(err)
		}
		if j, err = c.Wait(ctx, j.ID); err != nil || j.Status != StatusDone {
			t.Fatalf("churn campaign: %v status %q", err, j.Status)
		}
		done = append(done, j)
	}

	// The active campaign's stream must still be intact.
	jv, err := c.Job(ctx, long.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jv.Status != StatusQueued && jv.Status != StatusRunning {
		t.Fatalf("long campaign unexpectedly terminal: %q", jv.Status)
	}
	if _, err := c.CampaignRecords(ctx, long.ID, 0); err != nil {
		t.Fatalf("active campaign stream evicted: %v", err)
	}
	// The oldest finished campaign is the one that paid for the cap.
	if _, err := c.CampaignRecords(ctx, done[0].ID, 0); err == nil {
		t.Fatal("oldest finished campaign kept its stream past the cap")
	}
	if _, err := c.Cancel(ctx, long.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, long.ID); err != nil {
		t.Fatal(err)
	}
	_ = s
}

// TestClientCampaignEvictedError proves the typed 410 contract: the client
// surfaces *CampaignEvictedError carrying the summary retained on the job.
func TestClientCampaignEvictedError(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1, MaxCampaignStreams: 1})
	ctx := ctxT(t)

	var ids []string
	for _, refs := range []int{761, 769} {
		j, err := c.SubmitCampaign(ctx, tinyCampaign(refs))
		if err != nil {
			t.Fatal(err)
		}
		if j, err = c.Wait(ctx, j.ID); err != nil || j.Status != StatusDone {
			t.Fatalf("campaign: %v status %q", err, j.Status)
		}
		ids = append(ids, j.ID)
	}

	_, err := c.CampaignStream(ctx, ids[0], 0)
	var ev *CampaignEvictedError
	if !errors.As(err, &ev) {
		t.Fatalf("evicted stream error = %v (%T), want *CampaignEvictedError", err, err)
	}
	if ev.ID != ids[0] {
		t.Errorf("evicted ID = %q, want %q", ev.ID, ids[0])
	}
	var sum sweep.Summary
	if err := json.Unmarshal(ev.Summary, &sum); err != nil || sum.Points != 4 {
		t.Errorf("retained summary = %s (%v), want the campaign summary", ev.Summary, err)
	}
	if !strings.Contains(ev.Error(), ids[0]) {
		t.Errorf("Error() = %q", ev.Error())
	}
}

// TestWorkersFileFleetCampaign runs a fleet campaign with the roster coming
// entirely from a workers file: joiners start pending and are admitted by
// the initial probe, and the stream stays byte-identical.
func TestWorkersFileFleetCampaign(t *testing.T) {
	spec := tinyCampaign(773)
	want := localReference(t, spec)
	urls := newWorkerFleet(t, 3, nil)
	roster := filepath.Join(t.TempDir(), "workers.txt")
	content := "# test fleet\n" + strings.Join(urls, "\n") + "\n"
	if err := os.WriteFile(roster, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fc := fleetTestConfig(nil, "")
	fc.WorkersFile = roster
	fc.WorkersReload = 50 * time.Millisecond
	_, c := newTestServer(t, Config{JobWorkers: 1, Fleet: fc})
	ctx := ctxT(t)

	j, err := c.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if j, err = c.Wait(ctx, j.ID); err != nil || j.Status != StatusDone {
		t.Fatalf("workers-file campaign: %v status %q (error %q)", err, j.Status, j.Error)
	}
	recs, err := c.CampaignRecords(ctx, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("stream has %d records, local %d", len(recs), len(want))
	}
	for k := range want {
		a, b := want[k], string(recs[k])
		if k == len(want)-1 {
			a, b = stripFleetTelemetry(t, a), stripFleetTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs:\nlocal: %s\nfleet: %s", k, a, b)
		}
	}
	var sum sweep.Summary
	if err := json.Unmarshal(recs[len(recs)-1], &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Fleet == nil || sum.Fleet.Workers != 3 {
		t.Errorf("fleet telemetry = %+v, want 3 file-admitted workers", sum.Fleet)
	}
}

// TestPoolMembershipReconcile unit-tests the roster reconciliation rules:
// joiners are pending until probed, removals drain in-flight leases, and
// re-listing a draining worker reinstates it.
func TestPoolMembershipReconcile(t *testing.T) {
	ready := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ready.Close()
	now := time.Now()
	pool := newWorkerPool(FleetConfig{MaxInflight: 2, EjectAfter: 2, ReadmitAfter: time.Second}.withDefaults())

	added, removed := pool.setMembership([]string{ready.URL, "http://dead.invalid:1"}, now)
	if added != 2 || removed != 0 {
		t.Fatalf("initial reconcile = +%d/-%d, want +2/-0", added, removed)
	}
	if pool.memberCount() != 2 {
		t.Fatalf("memberCount = %d, want 2", pool.memberCount())
	}
	// Joiners are guilty until probed: nothing is dispatchable yet.
	if pool.healthyCount() != 0 {
		t.Fatalf("healthyCount before probe = %d, want 0", pool.healthyCount())
	}
	if w := pool.pick(""); w != nil {
		t.Fatalf("pick before probe returned %s", w.url)
	}
	// The probe admits the live worker and leaves the dead one out.
	pool.probe(ctxT(t), now, nil)
	if pool.healthyCount() != 1 {
		t.Fatalf("healthyCount after probe = %d, want 1", pool.healthyCount())
	}
	w := pool.pick("")
	if w == nil || w.url != ready.URL {
		t.Fatalf("pick = %+v, want the probed worker", w)
	}

	// Removing the busy worker drains it: no new picks, still a member of
	// nothing, and the lease release removes it.
	if _, removed = pool.setMembership([]string{"http://dead.invalid:1"}, now); removed != 1 {
		t.Fatalf("removal reconcile removed %d, want 1", removed)
	}
	if pool.memberCount() != 1 {
		t.Fatalf("memberCount during drain = %d, want 1 (the dead one)", pool.memberCount())
	}
	if got := pool.pick(""); got != nil {
		t.Fatalf("pick returned a draining worker: %s", got.url)
	}
	// Re-listing before the lease ends reinstates it.
	pool.setMembership([]string{ready.URL, "http://dead.invalid:1"}, now)
	if pool.memberCount() != 2 {
		t.Fatalf("memberCount after re-listing = %d, want 2", pool.memberCount())
	}
	if got := pool.pick(""); got == nil || got.url != ready.URL {
		t.Fatal("reinstated worker not dispatchable")
	}
	pool.release(w)
	pool.release(w) // drop both reserved slots

	// Remove again while idle: it leaves the pool immediately.
	pool.setMembership([]string{"http://dead.invalid:1"}, now)
	if pool.memberCount() != 1 {
		t.Fatalf("idle removal left memberCount = %d", pool.memberCount())
	}
}

// TestLoadWorkersFile pins the roster file format: comments, blanks, dedupe.
func TestLoadWorkersFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "workers.txt")
	content := "# fleet\nhttp://a:1\n\nhttp://b:2 # trailing comment\nhttp://a:1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	urls, err := LoadWorkersFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 2 || urls[0] != "http://a:1" || urls[1] != "http://b:2" {
		t.Fatalf("urls = %v", urls)
	}
	if _, err := LoadWorkersFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing roster file did not error")
	}
}
