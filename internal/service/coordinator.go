package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
	"dspatch/internal/sweep"
	"dspatch/internal/trace"
)

// The coordinator executes a campaign across a fleet of worker daemons.
// Execution is organized around three invariants:
//
//  1. Stream bytes are a pure function of the spec. All results — whatever
//     worker produced them, in whatever order, after however many retries —
//     flow through the same sweep.Recorder a local run uses, which emits in
//     canonical index order. A fleet run is byte-identical to -batch=true on
//     one machine.
//  2. One failure path. Worker HTTP errors, 503 sheds, lease expiries and
//     dead workers all funnel into sweep.Dispatcher.Fail: the run returns to
//     the pending set behind a backoff gate and is re-dispatched elsewhere,
//     until MaxAttempts is exhausted and the point is dropped WITH a reason
//     into the summary. Nothing is lost silently, and nothing wedges.
//  3. The dispatch unit is the deduplicated simulation run, not the point:
//     a baseline shared by thirty points is dispatched once, and the shared
//     result store (FleetConfig.StoreDir) extends that dedup across
//     campaigns and coordinator restarts.

// dispatch failure classes — the reasons recorded against retries/drops.
const (
	classLeaseExpired = "lease expired"
	classShed         = "worker shed (503)"
)

// fleetRun is one deduplicated simulation the fleet must produce, and the
// point positions waiting on it.
type fleetRun struct {
	key     string
	spec    sweep.Point
	res     *sim.Result
	waiters []runWaiter
	// durable marks the result as present in the shared store (pre-pass hit
	// or successful Put) — the precondition for journaling a completion
	// that references it.
	durable bool
	// dspec caches the over-the-wire form of spec: the point with the
	// defining scenario specs of its non-builtin workloads attached, so
	// workers can resolve names the coordinator registered locally.
	dspec *sweep.Point
}

// dispatchSpec returns the point to send to a worker. Campaign point records
// stay spec-free (recorded streams are a pure function of the campaign), but
// the dispatched copy must be self-contained: spec-sourced workloads travel
// as their defining spec, imported traces as inline DSPTRC01 bytes, and
// builtin names need nothing. Computed once per run; retries reuse it.
func (r *fleetRun) dispatchSpec() (sweep.Point, error) {
	if r.dspec != nil {
		return *r.dspec, nil
	}
	sp := r.spec
	var scens []trace.ScenarioSpec
	seen := map[string]bool{}
	for _, name := range sp.Workloads {
		if seen[name] {
			continue
		}
		seen[name] = true
		s, ok, err := trace.SpecFor(name)
		if err != nil {
			return sweep.Point{}, err
		}
		if ok {
			scens = append(scens, s)
		}
	}
	sp.Scenarios = scens
	r.dspec = &sp
	return sp, nil
}

type runWaiter struct {
	pos  int
	base bool
}

type dispatchEvent struct {
	dpos   int // dispatcher position
	worker *fleetWorker
	res    *sim.Result
	class  string // empty on success; else the failure class/reason
	fault  bool   // count the failure against the worker's health
}

// runFleetCampaign executes camp across s.fleet's workers, emitting the
// canonical NDJSON stream through emit. jl, when non-nil, receives the
// write-ahead record of every terminal point event (after its results are
// durable in the shared store) plus the sealed summary; resume, when
// non-nil, is a recovered journal's state — journaled completions replay
// from the store with zero dispatches and only unfinished points enter the
// dispatcher.
func (s *Server) runFleetCampaign(ctx context.Context, camp sweep.Campaign, emit func(json.RawMessage) error, jl *sweep.Journal, resume *sweep.JournalState) (sweep.Summary, error) {
	cfg := *s.fleet
	rec, err := sweep.NewRecorder(camp, emit)
	if err != nil {
		return sweep.Summary{}, err
	}

	// Deduplicate the campaign into runs: every point's own simulation plus
	// its baseline partner, keyed by the canonical run key.
	var runs []*fleetRun
	runAt := map[string]int{}
	posSelf := make([]int, rec.Len())
	posBase := make([]int, rec.Len())
	addRun := func(p sweep.Point, pos int, base bool) int {
		key, ok := experiments.JobKey(p.Job())
		if !ok {
			// Campaign validation rejects non-memoizable points; belt and
			// braces with a structural key.
			b, _ := json.Marshal(p)
			key = "raw:" + string(b)
		}
		id, seen := runAt[key]
		if !seen {
			id = len(runs)
			runAt[key] = id
			runs = append(runs, &fleetRun{key: key, spec: p})
		}
		runs[id].waiters = append(runs[id].waiters, runWaiter{pos: pos, base: base})
		return id
	}
	posNeed := make([]int, rec.Len())
	for pos := 0; pos < rec.Len(); pos++ {
		self, base, hasBase := rec.Pair(pos)
		posSelf[pos] = addRun(self, pos, false)
		posBase[pos] = -1
		posNeed[pos] = 1
		if hasBase {
			posBase[pos] = addRun(base, pos, true)
			if posBase[pos] != posSelf[pos] {
				posNeed[pos] = 2
			}
		}
	}

	posDropped := make([]bool, rec.Len())
	posResolved := make([]bool, rec.Len()) // settled by journal replay; never touched again
	remaining := rec.Len()

	// journalDone appends a point's terminal frame, degrading on the first
	// append error: the campaign keeps running, it just stops being
	// resumable past that event. The journal only claims results the store
	// durably holds (both runs' durable flags), so a replay either finds
	// them or safely re-runs the point.
	journalDone := func(pos int) {
		if jl == nil {
			return
		}
		selfRun := runs[posSelf[pos]]
		baseKey := ""
		if posBase[pos] >= 0 && posBase[pos] != posSelf[pos] {
			baseRun := runs[posBase[pos]]
			if !baseRun.durable {
				return
			}
			baseKey = baseRun.key
		}
		if !selfRun.durable {
			return
		}
		if err := jl.Done(pos, selfRun.key, baseKey); err != nil {
			s.cfg.Logf("fleet: campaign journal degraded, run no longer resumable: %v", err)
			jl = nil
		}
	}

	// completeRun delivers a run's result to every waiting position and
	// emits the records that become flushable.
	completeRun := func(r *fleetRun, res *sim.Result) error {
		r.res = res
		for _, wt := range r.waiters {
			if posDropped[wt.pos] || posResolved[wt.pos] {
				continue
			}
			posNeed[wt.pos]--
			if posNeed[wt.pos] > 0 {
				continue
			}
			var basep *sim.Result
			if posBase[wt.pos] >= 0 && posBase[wt.pos] != posSelf[wt.pos] {
				basep = runs[posBase[wt.pos]].res
			}
			if err := rec.Complete(wt.pos, *runs[posSelf[wt.pos]].res, basep); err != nil {
				return err
			}
			journalDone(wt.pos)
			remaining--
		}
		return nil
	}
	// dropRun abandons every position waiting on the run, with a reason.
	dropRun := func(r *fleetRun, reason string) error {
		for _, wt := range r.waiters {
			if posDropped[wt.pos] || posResolved[wt.pos] {
				continue
			}
			posDropped[wt.pos] = true
			if err := rec.Drop(wt.pos, reason); err != nil {
				return err
			}
			if jl != nil {
				if err := jl.Drop(wt.pos, reason); err != nil {
					s.cfg.Logf("fleet: campaign journal degraded, run no longer resumable: %v", err)
					jl = nil
				}
			}
			remaining--
		}
		return nil
	}

	// The shared result store: the server's durable store (Config.StoreDir,
	// adopted from FleetConfig.StoreDir when only that is set).
	store := s.store

	// Journal replay: terminal events from a pre-crash incarnation settle
	// their positions straight from the store — zero dispatches, zero
	// simulations — before anything is deduplicated into the pending set.
	if resume != nil && store != nil {
		replayed, err := resume.Replay(rec, store)
		if err != nil {
			return sweep.Summary{}, err
		}
		for pos, ok := range replayed {
			if ok {
				posResolved[pos] = true
				remaining--
			}
		}
	}

	// Shared result store pre-pass: runs already present are resolved
	// without a dispatch. A torn or corrupt entry reads as a miss and the
	// run is simulated again — the store is never trusted blindly. Runs
	// every waiter of which was settled by the journal replay are skipped
	// outright.
	var storeHits uint64
	var pendingRuns []int // run ids needing dispatch
	for id, r := range runs {
		needed := false
		for _, wt := range r.waiters {
			if !posResolved[wt.pos] && !posDropped[wt.pos] {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		if store != nil {
			if res, ok := store.Get(r.key); ok {
				storeHits++
				r.durable = true
				resCopy := res
				if err := completeRun(r, &resCopy); err != nil {
					return sweep.Summary{}, err
				}
				continue
			}
		}
		pendingRuns = append(pendingRuns, id)
	}

	keys := make([]string, len(pendingRuns))
	for i, id := range pendingRuns {
		keys[i] = runs[id].key
	}
	disp := sweep.NewDispatcher(keys, sweep.DispatchConfig{
		MaxAttempts: cfg.MaxAttempts,
		LeaseTTL:    cfg.LeaseTTL,
		Seed:        cfg.DispatchSeed,
	})

	pool := newWorkerPool(cfg)
	onEject := func(url string) {
		s.workersEjected.Add(1)
		s.cfg.Logf("fleet: worker %s ejected from rotation", url)
	}

	// Health-gated membership: with a workers file the roster is reloaded
	// periodically — joiners enter pending (admitted by the next /readyz
	// probe, through the same machinery that re-admits ejected workers),
	// removals drain their in-flight leases and leave. A static -workers
	// list behaves exactly as before.
	reloadMembership := func(now time.Time) {
		urls, err := LoadWorkersFile(cfg.WorkersFile)
		if err != nil {
			s.cfg.Logf("fleet: workers file: %v (membership unchanged)", err)
			return
		}
		added, removed := pool.setMembership(urls, now)
		if added > 0 || removed > 0 {
			s.cfg.Logf("fleet: membership reload: %d joined (pending probe), %d draining", added, removed)
		}
	}
	if cfg.WorkersFile != "" {
		reloadMembership(time.Now())
		// Joiners admit through a probe; run one synchronously so a fresh
		// coordinator doesn't idle a whole probe interval before its first
		// dispatch.
		pool.probe(ctx, time.Now(), onEject)
	}

	var leases, sheds uint64
	// Every dispatch goroutine sends exactly one event; capacity covers the
	// maximum concurrency so a send never blocks a goroutine past campaign
	// abort. With a workers file the roster can grow mid-campaign, so the
	// buffer is padded generously.
	eventCap := len(cfg.Workers)*cfg.MaxInflight + 1
	if cfg.WorkersFile != "" {
		eventCap += 4096
	}
	events := make(chan dispatchEvent, eventCap)
	probeTick := time.NewTicker(cfg.ProbeInterval)
	defer probeTick.Stop()
	var reloadC <-chan time.Time
	if cfg.WorkersFile != "" {
		reloadTick := time.NewTicker(cfg.WorkersReload)
		defer reloadTick.Stop()
		reloadC = reloadTick.C
	}
	probeDone := make(chan struct{}, 1)
	probing := false
	var noWorkerSince time.Time

	// tryDispatch drains the ready set into available workers, returning the
	// earliest backoff wake-up (zero if none).
	tryDispatch := func(now time.Time) (time.Time, error) {
		for {
			dpos, ok, wake := disp.Next(now)
			if !ok {
				return wake, nil
			}
			r := runs[pendingRuns[dpos]]
			sp, serr := r.dispatchSpec()
			if serr != nil {
				// The run cannot be made self-contained (e.g. an imported trace
				// over the forwarding size limit): burn attempts through the
				// unified failure path so the point drops with a reason.
				disp.Lease(dpos, "(local)", now)
				class := "unforwardable workload: " + serr.Error()
				if disp.Fail(dpos, class, now) {
					s.pointsRedispatched.Add(1)
					continue
				}
				reason := fmt.Sprintf("max attempts (%d) exhausted: %s", cfg.MaxAttempts, class)
				if err := dropRun(r, reason); err != nil {
					return wake, err
				}
				continue
			}
			w := pool.pick(disp.LastWorker(dpos))
			if w == nil {
				// No worker has capacity. If the whole fleet is ejected past
				// the grace window, burn an attempt so the campaign degrades
				// to dropped points instead of wedging forever.
				if pool.healthyCount() > 0 {
					noWorkerSince = time.Time{}
					return wake, nil
				}
				if noWorkerSince.IsZero() {
					noWorkerSince = now
					return wake, nil
				}
				if now.Sub(noWorkerSince) < cfg.NoWorkerGrace {
					return wake, nil
				}
				disp.Lease(dpos, "(no worker)", now)
				if disp.Fail(dpos, "no healthy workers", now) {
					s.pointsRedispatched.Add(1)
					continue
				}
				reason := fmt.Sprintf("max attempts (%d) exhausted: no healthy workers", cfg.MaxAttempts)
				if err := dropRun(r, reason); err != nil {
					return wake, err
				}
				continue
			}
			noWorkerSince = time.Time{}
			deadline := disp.Lease(dpos, w.url, now)
			go dispatchRun(ctx, deadline, w, sp, dpos, events)
		}
	}

	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return sweep.Summary{}, err
		}
		wake, err := tryDispatch(time.Now())
		if err != nil {
			return sweep.Summary{}, err
		}
		var wakeC <-chan time.Time
		if !wake.IsZero() {
			d := time.Until(wake)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			wakeC = time.After(d)
		}
		select {
		case ev := <-events:
			pool.release(ev.worker)
			now := time.Now()
			if ev.class == "" {
				pool.reportSuccess(ev.worker)
				if disp.Complete(ev.dpos) {
					r := runs[pendingRuns[ev.dpos]]
					if store != nil {
						// Best-effort — a failed store write degrades the next
						// campaign's dedup, never this one's results — but it
						// must happen before completeRun: the journal frame
						// written there may only reference durable results.
						r.durable = store.Put(r.key, *ev.res) == nil
					}
					if err := completeRun(r, ev.res); err != nil {
						return sweep.Summary{}, err
					}
				}
				continue
			}
			switch ev.class {
			case classLeaseExpired:
				leases++
				s.leasesExpired.Add(1)
			case classShed:
				sheds++
			}
			if ev.fault {
				if pool.reportFailure(ev.worker, now) {
					onEject(ev.worker.url)
				}
			}
			if disp.Fail(ev.dpos, ev.class, now) {
				s.pointsRedispatched.Add(1)
				s.cfg.Logf("fleet: re-dispatching %s after %q (attempt %d)",
					shortKey(runs[pendingRuns[ev.dpos]].key), ev.class, disp.Attempts(ev.dpos))
				continue
			}
			r := runs[pendingRuns[ev.dpos]]
			reason := fmt.Sprintf("max attempts (%d) exhausted: %s", cfg.MaxAttempts, ev.class)
			s.cfg.Logf("fleet: dropping %s: %s", shortKey(r.key), reason)
			if err := dropRun(r, reason); err != nil {
				return sweep.Summary{}, err
			}
		case <-probeTick.C:
			if !probing {
				probing = true
				go func() {
					pool.probe(ctx, time.Now(), onEject)
					probeDone <- struct{}{}
				}()
			}
		case <-probeDone:
			probing = false
		case <-reloadC:
			reloadMembership(time.Now())
		case <-wakeC:
		case <-ctx.Done():
			return sweep.Summary{}, ctx.Err()
		}
	}

	dc := disp.Counters()
	sum, err := rec.Finish(&sweep.FleetSummary{
		Workers:        pool.memberCount(),
		Dispatches:     dc.Dispatches,
		Redispatches:   dc.Redispatches,
		LeasesExpired:  leases,
		ShedRejections: sheds,
		WorkersEjected: pool.ejectedTotal(),
		StoreHits:      storeHits,
	})
	if err != nil {
		return sweep.Summary{}, err
	}
	if jl != nil {
		if b, merr := json.Marshal(sum); merr == nil {
			if err := jl.Seal(b); err != nil {
				s.cfg.Logf("fleet: campaign journal seal failed: %v", err)
			}
		}
	}
	return sum, nil
}

// dispatchRun executes one leased run on one worker under the lease
// deadline, classifying the outcome into the unified failure taxonomy. It
// sends exactly one event.
func dispatchRun(parent context.Context, deadline time.Time, w *fleetWorker, spec sweep.Point, dpos int, events chan<- dispatchEvent) {
	ctx, cancel := context.WithDeadline(parent, deadline)
	defer cancel()
	res, err := runOnWorker(ctx, w.client, spec)
	ev := dispatchEvent{dpos: dpos, worker: w}
	switch {
	case err == nil:
		ev.res = res
	case parent.Err() != nil:
		ev.class = "campaign aborted"
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		// The dispatch outlived its lease: the goroutine itself reports the
		// expiry — no separate lease scanner, no double accounting.
		ev.class = classLeaseExpired
		ev.fault = true
	default:
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable {
			// Load shedding is deliberate back-pressure, not sickness: the
			// run goes elsewhere but the worker's health is untouched.
			ev.class = classShed
		} else {
			ev.class = "worker error: " + err.Error()
			ev.fault = true
		}
	}
	events <- ev
}

// runOnWorker submits spec to the worker and waits for the terminal job,
// returning the simulation result.
func runOnWorker(ctx context.Context, c *Client, spec sweep.Point) (*sim.Result, error) {
	jv, err := c.SubmitRun(ctx, spec)
	if err != nil {
		return nil, err
	}
	jv, err = c.Wait(ctx, jv.ID)
	if err != nil {
		return nil, err
	}
	switch jv.Status {
	case StatusDone:
	case StatusFailed:
		return nil, fmt.Errorf("worker job failed: %s", jv.Error)
	default:
		return nil, fmt.Errorf("worker job ended %s", jv.Status)
	}
	var res sim.Result
	// Go's shortest-round-trip float encoding makes this lossless: the
	// decoded result is bit-identical to the worker's, so fleet streams
	// match local ones byte for byte.
	if err := json.Unmarshal(jv.Result, &res); err != nil {
		return nil, fmt.Errorf("worker result: %w", err)
	}
	return &res, nil
}

func shortKey(key string) string {
	if len(key) > 48 {
		return key[:48] + "…"
	}
	return key
}
