package service

import (
	"context"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// FleetConfig turns a Server into a campaign coordinator: instead of
// simulating campaign points on the local engine, it shards them across
// worker daemons, retries failures elsewhere, and merges the results into
// the same byte-identical NDJSON stream a local run produces.
type FleetConfig struct {
	// Workers are the base URLs of the worker daemons, e.g.
	// ["http://10.0.0.1:8491", "http://10.0.0.2:8491"]. Static members are
	// trusted immediately (they start healthy).
	Workers []string
	// WorkersFile, when non-empty, is a roster file (one worker URL per
	// line, #-comments allowed) reloaded every WorkersReload during a
	// campaign: membership becomes dynamic. Unlike static Workers, a worker
	// joining via the file starts unhealthy-pending and is admitted to the
	// rotation only once a /readyz probe succeeds — the same machinery that
	// re-admits ejected workers — and a worker removed from the file drains
	// its in-flight dispatches gracefully before leaving the pool.
	WorkersFile string
	// WorkersReload is the roster reload period (default 5s).
	WorkersReload time.Duration
	// StoreDir, when non-empty, is a shared result store (the same
	// content-addressed layout as -cache-dir): the coordinator consults it
	// before dispatching and records every worker result into it, so a
	// re-run after a crash redoes only the missing points.
	StoreDir string
	// LeaseTTL bounds one dispatch: a worker holding a point longer is
	// presumed hung, the lease expires, and the point is re-dispatched
	// (default 60s).
	LeaseTTL time.Duration
	// MaxAttempts is the total number of dispatches a point may consume
	// before it is dropped with a reason (default 4).
	MaxAttempts int
	// MaxInflight bounds concurrent dispatches per worker (default 4).
	MaxInflight int
	// ProbeInterval is the health-probe period during a fleet campaign
	// (default 2s). Probes hit each worker's /readyz.
	ProbeInterval time.Duration
	// EjectAfter is the consecutive probe/dispatch failure count that ejects
	// a worker from the rotation (default 3).
	EjectAfter int
	// ReadmitAfter is the base backoff before an ejected worker is probed
	// for re-admission; it doubles per consecutive ejection, capped at
	// 8x (default 5s).
	ReadmitAfter time.Duration
	// NoWorkerGrace bounds how long pending points wait while every worker
	// is ejected before the wait itself counts as a failed attempt — the
	// campaign degrades to dropped points instead of wedging (default 30s).
	NoWorkerGrace time.Duration
	// DispatchSeed perturbs retry-backoff jitter (see sweep.DispatchConfig).
	DispatchSeed uint64
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 60 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 5 * time.Second
	}
	if c.NoWorkerGrace <= 0 {
		c.NoWorkerGrace = 30 * time.Second
	}
	if c.WorkersReload <= 0 {
		c.WorkersReload = 5 * time.Second
	}
	return c
}

// LoadWorkersFile reads a worker roster: one base URL per line, blank lines
// and #-comments ignored.
func LoadWorkersFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var urls []string
	seen := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" || seen[line] {
			continue
		}
		seen[line] = true
		urls = append(urls, line)
	}
	return urls, nil
}

// fleetWorker is one worker daemon's standing in the rotation. Guarded by
// workerPool.mu.
type fleetWorker struct {
	url    string
	client *Client

	healthy    bool
	consecFail int       // consecutive failures since the last success
	ejections  int       // lifetime ejections; scales the readmit backoff
	readmitAt  time.Time // ejected until then; a probe may readmit after
	inflight   int
	// draining marks a worker removed from the roster: it takes no new
	// dispatches and is skipped by probes; release() deletes it from the
	// pool once its in-flight count reaches zero, so removal never strands
	// a lease.
	draining bool
}

// workerPool tracks worker health for the coordinator: least-loaded healthy
// selection, consecutive-failure ejection, backoff-gated re-admission via
// probes. Dispatch goroutines and the probe goroutine touch it
// concurrently, so every method locks.
type workerPool struct {
	cfg FleetConfig

	mu      sync.Mutex
	workers []*fleetWorker
	ejected uint64 // lifetime ejections (metrics)
}

func newWorkerPool(cfg FleetConfig) *workerPool {
	p := &workerPool{cfg: cfg}
	for _, url := range cfg.Workers {
		c := NewClient(url)
		// The coordinator owns retries (that's the dispatcher's job); the
		// dispatch client must surface every 503 so sheds are accounted for.
		c.HTTPClient = &http.Client{}
		p.workers = append(p.workers, &fleetWorker{url: url, client: c, healthy: true})
	}
	return p
}

// pick returns the healthy worker with the fewest in-flight dispatches that
// still has capacity, preferring any over the worker named notURL (the one
// that just failed this point). It reserves an inflight slot; the caller
// must release() it.
func (p *workerPool) pick(notURL string) *fleetWorker {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *fleetWorker
	for pass := 0; pass < 2; pass++ {
		for _, w := range p.workers {
			if !w.healthy || w.draining || w.inflight >= p.cfg.MaxInflight {
				continue
			}
			if pass == 0 && w.url == notURL {
				continue
			}
			if best == nil || w.inflight < best.inflight {
				best = w
			}
		}
		if best != nil || notURL == "" {
			break
		}
		// Second pass: the failed worker is better than no worker.
	}
	if best != nil {
		best.inflight++
	}
	return best
}

func (p *workerPool) release(w *fleetWorker) {
	p.mu.Lock()
	w.inflight--
	if w.draining && w.inflight <= 0 {
		p.removeLocked(w)
	}
	p.mu.Unlock()
}

func (p *workerPool) removeLocked(w *fleetWorker) {
	for i, pw := range p.workers {
		if pw == w {
			p.workers = append(p.workers[:i:i], p.workers[i+1:]...)
			return
		}
	}
}

// setMembership reconciles the pool against a freshly loaded roster:
// unknown URLs join as unhealthy-pending (a probe must admit them), known
// URLs absent from the roster start draining (re-listing a draining worker
// reinstates it). It reports how many workers joined and how many were set
// draining or removed.
func (p *workerPool) setMembership(urls []string, now time.Time) (added, removed int) {
	want := make(map[string]bool, len(urls))
	for _, u := range urls {
		want[u] = true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	have := map[string]*fleetWorker{}
	for _, w := range p.workers {
		have[w.url] = w
	}
	for _, w := range p.workers {
		if want[w.url] {
			if w.draining {
				w.draining = false
			}
			continue
		}
		if w.draining {
			continue
		}
		w.draining = true
		removed++
	}
	// Drained idle workers leave immediately; busy ones leave in release().
	for _, w := range have {
		if w.draining && w.inflight <= 0 {
			p.removeLocked(w)
		}
	}
	for _, u := range urls {
		if _, ok := have[u]; ok {
			continue
		}
		c := NewClient(u)
		c.HTTPClient = &http.Client{}
		// Joiners are guilty until probed: healthy=false with a zero
		// readmitAt makes the next probe cycle consider them due, and a
		// probe success admits them through the standard re-admission path.
		p.workers = append(p.workers, &fleetWorker{url: u, client: c})
		added++
	}
	return added, removed
}

// memberCount reports current (non-draining) roster size.
func (p *workerPool) memberCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if !w.draining {
			n++
		}
	}
	return n
}

// reportSuccess clears the worker's failure streak.
func (p *workerPool) reportSuccess(w *fleetWorker) {
	p.mu.Lock()
	w.consecFail = 0
	p.mu.Unlock()
}

// reportFailure counts a probe or dispatch failure against the worker and
// ejects it after EjectAfter consecutive failures, with a re-admission gate
// that doubles per consecutive ejection (capped at 8x ReadmitAfter). It
// reports whether this call ejected the worker.
func (p *workerPool) reportFailure(w *fleetWorker, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failLocked(w, now)
}

func (p *workerPool) failLocked(w *fleetWorker, now time.Time) bool {
	w.consecFail++
	if !w.healthy || w.consecFail < p.cfg.EjectAfter {
		return false
	}
	w.healthy = false
	w.ejections++
	p.ejected++
	backoff := p.cfg.ReadmitAfter
	for i := 1; i < w.ejections && backoff < 8*p.cfg.ReadmitAfter; i++ {
		backoff *= 2
	}
	if backoff > 8*p.cfg.ReadmitAfter {
		backoff = 8 * p.cfg.ReadmitAfter
	}
	w.readmitAt = now.Add(backoff)
	return true
}

// healthyCount reports workers currently in the rotation.
func (p *workerPool) healthyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if w.healthy && !w.draining {
			n++
		}
	}
	return n
}

// ejectedTotal reports lifetime ejections.
func (p *workerPool) ejectedTotal() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ejected
}

// probe health-checks every worker due for one: healthy workers on every
// call, ejected workers only past their re-admission gate. A probe success
// on an ejected worker re-admits it; a failure re-ejects with a longer
// gate. probe blocks on HTTP, so the coordinator runs it in its own
// goroutine, never on the event loop.
func (p *workerPool) probe(ctx context.Context, now time.Time, onEject func(url string)) {
	p.mu.Lock()
	var due []*fleetWorker
	for _, w := range p.workers {
		if w.draining {
			continue
		}
		if w.healthy || !now.Before(w.readmitAt) {
			due = append(due, w)
		}
	}
	p.mu.Unlock()

	for _, w := range due {
		ok := probeWorker(ctx, w.client)
		p.mu.Lock()
		switch {
		case ok && !w.healthy:
			w.healthy = true // re-admitted
			w.consecFail = 0
		case ok:
			w.consecFail = 0
		case !w.healthy:
			// Still dead past the gate: push the gate out again (counts as
			// another ejection for the backoff doubling, not for metrics).
			w.ejections++
			backoff := p.cfg.ReadmitAfter
			for i := 1; i < w.ejections && backoff < 8*p.cfg.ReadmitAfter; i++ {
				backoff *= 2
			}
			if backoff > 8*p.cfg.ReadmitAfter {
				backoff = 8 * p.cfg.ReadmitAfter
			}
			w.readmitAt = now.Add(backoff)
		default:
			if p.failLocked(w, now) && onEject != nil {
				onEject(w.url)
			}
		}
		p.mu.Unlock()
	}
}

// probeWorker asks one worker's readiness endpoint whether it can take
// dispatches. Any transport error, non-200, or slow answer is a failure.
func probeWorker(ctx context.Context, c *Client) bool {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
