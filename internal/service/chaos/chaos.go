// Package chaos is the fleet's deterministic fault-injection layer: an HTTP
// middleware that makes a worker daemon misbehave on schedule. The
// acceptance tests and the CI chaos-smoke job wrap workers in it to prove
// the coordinator's failure paths — dead workers, hung requests, load
// shedding, plain errors — against reproducible fault sequences instead of
// hoping real infrastructure fails on cue.
//
// Faults trigger off a deterministic event: the Nth simulation-dispatch
// request (POST /v1/runs) the wrapped worker receives. Dispatch order from a
// coordinator is not fully deterministic, but the Nth-dispatch trigger is
// independent of which points arrive: the fault always fires, and always at
// a comparable depth into the run.
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
)

// Fault kinds.
const (
	// KindKill makes the worker drop dead at the trigger: the triggering
	// request and every request after it (health probes included) have their
	// connections closed without a response, exactly what a crashed process
	// looks like from the coordinator's side.
	KindKill = "kill"
	// KindTimeout holds the triggering request open, never answering, until
	// the client gives up — a hung worker; the dispatch lease expires.
	KindTimeout = "timeout"
	// KindShed answers Count requests (default 1) with 503 + Retry-After —
	// a load-shedding burst.
	KindShed = "shed"
	// KindError answers the triggering request with a 500.
	KindError = "error"
	// KindCrash hard-exits the whole process at the trigger (exit code 137,
	// what a SIGKILLed process reports) — unlike KindKill, which only plays
	// dead at the HTTP layer, this is a real crash the daemon's write-ahead
	// journal must survive. With On="point" the trigger is the Nth campaign
	// point record the daemon emits (armed via dspatchd, not this
	// middleware): the coordinator crash-kill scenario.
	KindCrash = "crash"
)

// Fault trigger events (the On field).
const (
	// OnDispatch (the default) counts POST /v1/runs requests on the wrapped
	// worker.
	OnDispatch = "dispatch"
	// OnPoint counts campaign point records emitted by the daemon itself.
	// Only valid with KindCrash; the daemon arms it outside the middleware
	// (see dspatchd -chaos-file and service.Config.CrashAfterPoints), so the
	// crash lands at a deterministic depth into the campaign stream — after
	// the point was journaled, the worst instant a real crash could pick.
	OnPoint = "point"
)

// Fault is one scheduled misbehavior.
type Fault struct {
	// Worker selects which worker the fault applies to, matched against the
	// label the middleware was built with; empty matches every worker.
	Worker string `json:"worker,omitempty"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// At is the 1-based ordinal of the trigger event (dispatch count by
	// default; campaign point count with On="point") that fires the fault.
	At int `json:"at"`
	// Count extends KindShed to a burst of consecutive 503s (default 1).
	Count int `json:"count,omitempty"`
	// On selects the trigger event: OnDispatch (default) or OnPoint
	// (KindCrash only).
	On string `json:"on,omitempty"`
}

// Schedule is a set of faults, typically loaded from a -chaos-file.
type Schedule struct {
	Faults []Fault `json:"faults"`
}

// Validate rejects malformed schedules before a daemon arms them.
func (s *Schedule) Validate() error {
	for i, f := range s.Faults {
		switch f.Kind {
		case KindKill, KindTimeout, KindShed, KindError, KindCrash:
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
		switch f.On {
		case "", OnDispatch:
		case OnPoint:
			if f.Kind != KindCrash {
				return fmt.Errorf("chaos: fault %d: on=%q is only valid with kind %q", i, OnPoint, KindCrash)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown trigger %q", i, f.On)
		}
		if f.At <= 0 {
			return fmt.Errorf("chaos: fault %d: at must be >= 1, got %d", i, f.At)
		}
		if f.Count < 0 {
			return fmt.Errorf("chaos: fault %d: count must be non-negative, got %d", i, f.Count)
		}
	}
	return nil
}

// PointCrash returns the At ordinal of the first point-triggered crash
// fault matching worker (0 when there is none) — the value a daemon feeds
// into its CrashAfterPoints hook.
func (s *Schedule) PointCrash(worker string) int {
	for _, f := range s.Faults {
		if f.Kind == KindCrash && f.On == OnPoint && (f.Worker == "" || f.Worker == worker) {
			return f.At
		}
	}
	return 0
}

// Load reads a schedule from a JSON file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Injector wraps one worker's handler with the schedule's faults for that
// worker.
type Injector struct {
	worker string
	next   http.Handler

	// ExitFn is what a dispatch-triggered KindCrash calls (default
	// os.Exit(137)); tests override it.
	ExitFn func()

	mu        sync.Mutex
	faults    []Fault
	dispatch  int  // POST /v1/runs ordinal
	killed    bool // KindKill fired: every request is now blackholed
	shedding  int  // remaining KindShed burst
	hangUntil chan struct{}
}

// NewInjector builds the middleware for a worker labeled worker, applying
// the schedule's matching faults around next. Point-triggered faults are
// skipped: they are armed inside the daemon (see Schedule.PointCrash), not
// at the HTTP layer.
func NewInjector(s *Schedule, worker string, next http.Handler) *Injector {
	inj := &Injector{worker: worker, next: next, ExitFn: func() { os.Exit(137) }}
	for _, f := range s.Faults {
		if (f.Worker == "" || f.Worker == worker) && f.On != OnPoint {
			inj.faults = append(inj.faults, f)
		}
	}
	return inj
}

// ServeHTTP applies due faults, else forwards to the worker.
func (inj *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	isDispatch := r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/runs")

	inj.mu.Lock()
	if inj.killed {
		inj.mu.Unlock()
		blackhole(w)
		return
	}
	if isDispatch {
		inj.dispatch++
		for i, f := range inj.faults {
			if f.At != inj.dispatch {
				continue
			}
			// Consume the fault (At can only match once, but keep the list
			// tidy for debugging).
			inj.faults = append(inj.faults[:i:i], inj.faults[i+1:]...)
			switch f.Kind {
			case KindKill:
				inj.killed = true
				inj.mu.Unlock()
				blackhole(w)
				return
			case KindTimeout:
				inj.mu.Unlock()
				// Hold the request open until the dispatcher abandons it
				// (lease deadline) — a hung worker, not a dead one. Drain
				// the body first: the server only watches for a client
				// disconnect once the request body is consumed, and a worker
				// that hangs mid-simulation read its request too.
				io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				blackhole(w)
				return
			case KindShed:
				n := f.Count
				if n <= 0 {
					n = 1
				}
				inj.shedding = n
			case KindError:
				inj.mu.Unlock()
				http.Error(w, `{"error":"chaos: injected worker error"}`, http.StatusInternalServerError)
				return
			case KindCrash:
				inj.mu.Unlock()
				inj.ExitFn()
				// Tests override ExitFn with a non-exiting stub; behave like
				// a kill from here on so the harness still sees a dead worker.
				inj.mu.Lock()
				inj.killed = true
				inj.mu.Unlock()
				blackhole(w)
				return
			}
			break
		}
		if inj.shedding > 0 {
			inj.shedding--
			inj.mu.Unlock()
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"chaos: injected load shed"}`, http.StatusServiceUnavailable)
			return
		}
	}
	inj.mu.Unlock()
	inj.next.ServeHTTP(w, r)
}

// Killed reports whether a KindKill fault has fired.
func (inj *Injector) Killed() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.killed
}

// blackhole terminates the connection without writing a response: the client
// observes EOF, indistinguishable from a process that died mid-request.
func blackhole(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	// No hijack support (HTTP/2, test recorders): the closest approximation
	// is an abrupt 502 with no body contract.
	w.WriteHeader(http.StatusBadGateway)
}
