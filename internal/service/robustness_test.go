package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dspatch/internal/experiments"
)

// Tests for the robustness surfaces around the fleet work: client-side 503
// retry, the liveness/readiness split, and campaign follow streams ending
// cleanly when a drain interrupts them.

// shedServer answers its first fail requests with 503 + Retry-After, then
// forwards a fixed 200 body. It counts every request it sees.
func shedServer(t *testing.T, fail int, retryAfter string, okBody string) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var hits atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int32(fail) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, `{"error":"shed"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, okBody)
	}))
	t.Cleanup(hs.Close)
	return hs, &hits
}

func TestClientRetriesShedWithBackoff(t *testing.T) {
	hs, hits := shedServer(t, 2, "0", `{"status":"ok"}`)
	c := NewClient(hs.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	h, err := c.Health(ctxT(t))
	if err != nil {
		t.Fatalf("Health after shed burst: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("requests = %d, want 3 (two sheds + success)", got)
	}
}

func TestClientNilRetrySurfacesShedImmediately(t *testing.T) {
	hs, hits := shedServer(t, 1_000_000, "2", "")
	c := NewClient(hs.URL) // Retry nil: the caller owns retry accounting
	_, err := c.Health(ctxT(t))
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if ae.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", ae.StatusCode)
	}
	if ae.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %v, want 2s (parsed from header)", ae.RetryAfter)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("requests = %d, want exactly 1 with Retry nil", got)
	}
}

func TestClientRetryBoundedByContext(t *testing.T) {
	hs, hits := shedServer(t, 1_000_000, "0", "")
	c := NewClient(hs.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 1000, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Health(ctx)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop outlived its context by %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := hits.Load(); got < 1 {
		t.Errorf("requests = %d, want >= 1", got)
	}
}

// probe GETs a bare endpoint and returns the status code and body.
func probeEndpoint(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestLivezReadyzSplitAcrossDrain proves the liveness/readiness split: both
// answer 200 on a healthy daemon, readiness flips to 503 the moment a drain
// begins — while a job is still finishing — and liveness stays 200
// throughout, so restart policies don't kill a draining process.
func TestLivezReadyzSplitAcrossDrain(t *testing.T) {
	s, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1})
	ctx := ctxT(t)

	if code, body := probeEndpoint(t, c.BaseURL+"/livez"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/livez = %d %q, want 200 ok", code, body)
	}
	if code, _ := probeEndpoint(t, c.BaseURL+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 before drain", code)
	}

	// A long job keeps the drain in progress while we probe.
	j, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: maxRefs})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Job(ctx, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drainCtx, stopDrain := context.WithCancel(context.Background())
	drainDone := make(chan struct{})
	go func() { s.Drain(drainCtx); close(drainDone) }()

	deadline = time.Now().Add(10 * time.Second)
	for {
		if code, _ := probeEndpoint(t, c.BaseURL+"/readyz"); code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after drain began")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body := probeEndpoint(t, c.BaseURL+"/livez"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/livez during drain = %d %q, want 200 ok", code, body)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}

	stopDrain() // out of patience: cancel the straggler so Drain returns
	select {
	case <-drainDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after its context was canceled")
	}
}

// TestCampaignFollowerDrainCleanPrefix is the follower-interruption
// acceptance scenario: a client following a campaign stream when the daemon
// is told to drain mid-campaign gets a cleanly terminated stream whose
// content is a byte-identical prefix of the single-node reference — partial,
// never corrupt.
func TestCampaignFollowerDrainCleanPrefix(t *testing.T) {
	// Distinctive refs, unique to this test — sized so the first point
	// record lands well inside one follow window even under -race, while
	// staying slow enough that the drain usually interrupts the campaign.
	spec := tinyCampaign(800_003)
	want := localReference(t, spec)
	experiments.ResetMemo() // make the daemon's run cold so the drain lands mid-campaign

	s, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1})
	ctx := ctxT(t)
	j, err := c.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatalf("SubmitCampaign: %v", err)
	}
	stream, err := c.CampaignStream(ctx, j.ID, 25*time.Second)
	if err != nil {
		t.Fatalf("CampaignStream: %v", err)
	}
	defer stream.Close()
	sc := bufio.NewScanner(stream)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	// Follow until the header and the first point record have arrived, then
	// yank the rug: drain with an already-expired context (the SIGTERM +
	// exhausted grace shape), which cancels the running campaign.
	var got []string
	for len(got) < 2 && sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			got = append(got, line)
		}
	}
	if len(got) < 2 {
		t.Fatalf("stream ended after %d records (scan err %v)", len(got), sc.Err())
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(expired)

	// The stream must end cleanly — no hang, no mid-line truncation.
	for sc.Scan() {
		if line := strings.TrimSpace(sc.Text()); line != "" {
			got = append(got, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream did not end cleanly: %v", err)
	}

	if len(got) > len(want) {
		t.Fatalf("follower got %d records, local reference has %d", len(got), len(want))
	}
	for k, line := range got {
		a := want[k]
		if k == len(want)-1 { // full campaign sneaked through: summary telemetry differs
			a, line = stripFleetTelemetry(t, a), stripFleetTelemetry(t, line)
		}
		if line != a {
			t.Errorf("record %d is not a byte-identical prefix:\nlocal: %s\ngot:   %s", k, a, line)
		}
	}
	// Every received line is intact JSON.
	for k, line := range got {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("record %d is torn: %v", k, err)
		}
	}
}
