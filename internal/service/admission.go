package service

import (
	"fmt"
	"math"
	"net/http"
	"time"
)

// Admission control: the daemon's self-protection layer. Two independent
// gates run before a submission is even parsed into the job table:
//
//   - Per-client token-bucket quotas (Config.QuotaRate/QuotaBurst, default
//     off). Clients identify themselves with the X-Dspatch-Client header;
//     requests without one share a single anonymous bucket, so an unlabeled
//     crowd is collectively bounded rather than individually unbounded.
//   - Campaign watermarks (Config.CampaignHighWater/LowWater): campaigns
//     are the expensive jobs — each pins an NDJSON record stream and a
//     dispatcher — so once the active count reaches the high watermark, new
//     campaigns shed until the count falls to the low watermark. The
//     hysteresis gap keeps the daemon from flapping at the boundary.
//
// Both gates shed with 503 + Retry-After, the same contract as a full queue
// shard, so the client's RetryPolicy (see client.go) handles all three
// identically: back off and retry.

// clientIDHeader carries the client-supplied identity quotas key on.
const clientIDHeader = "X-Dspatch-Client"

// maxQuotaBuckets bounds the quota table so unique client IDs cannot grow
// daemon memory without bound; past it, the longest-idle bucket is evicted
// (an evicted client starts over with a full burst).
const maxQuotaBuckets = 4096

// quotaBucket is one client's token bucket.
type quotaBucket struct {
	tokens float64
	last   time.Time
}

// quotaTable is the per-client token-bucket table. Refill happens lazily on
// access: tokens = min(burst, tokens + rate*elapsed).
type quotaTable struct {
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*quotaBucket
}

func newQuotaTable(rate float64, burst int) *quotaTable {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &quotaTable{rate: rate, burst: b, buckets: map[string]*quotaBucket{}}
}

// allow spends one token from client's bucket. When the bucket is dry it
// reports false plus the whole seconds until a token accrues — the
// Retry-After value. Caller holds the server's mu.
func (q *quotaTable) allow(client string, now time.Time) (bool, int) {
	bk := q.buckets[client]
	if bk == nil {
		if len(q.buckets) >= maxQuotaBuckets {
			q.evictIdlest()
		}
		bk = &quotaBucket{tokens: q.burst, last: now}
		q.buckets[client] = bk
	} else {
		bk.tokens += q.rate * now.Sub(bk.last).Seconds()
		if bk.tokens > q.burst {
			bk.tokens = q.burst
		}
		bk.last = now
	}
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	retry := int(math.Ceil((1 - bk.tokens) / q.rate))
	if retry < 1 {
		retry = 1
	}
	return false, retry
}

func (q *quotaTable) evictIdlest() {
	var oldest string
	var oldestAt time.Time
	for id, bk := range q.buckets {
		if oldest == "" || bk.last.Before(oldestAt) {
			oldest, oldestAt = id, bk.last
		}
	}
	delete(q.buckets, oldest)
}

// admit runs every admission gate for a submission of the given job kind,
// writing the 503 itself when the request is shed. isCampaign additionally
// applies the campaign watermarks.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, isCampaign bool) bool {
	now := time.Now()
	s.mu.Lock()
	if s.quotas != nil {
		ok, retry := s.quotas.allow(r.Header.Get(clientIDHeader), now)
		if !ok {
			s.mu.Unlock()
			s.rejected.Add(1)
			s.quotaRejected.Add(1)
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
			httpError(w, http.StatusServiceUnavailable, "client quota exhausted")
			return false
		}
	}
	if isCampaign && s.cfg.CampaignHighWater > 0 {
		n := int(s.activeCampaigns.Load())
		if s.campShedding && n <= s.cfg.CampaignLowWater {
			s.campShedding = false
		}
		if !s.campShedding && n >= s.cfg.CampaignHighWater {
			s.campShedding = true
		}
		if s.campShedding {
			s.mu.Unlock()
			s.rejected.Add(1)
			s.campaignsShed.Add(1)
			w.Header().Set("Retry-After", "2")
			httpError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("campaign backlog at high watermark (%d active)", n))
			return false
		}
	}
	s.mu.Unlock()
	return true
}
