package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dspatch/internal/sim"
	"dspatch/internal/sweep"
	"dspatch/internal/trace"
)

// Client is a minimal Go client for a dspatchd daemon. The zero value is
// not usable; construct with NewClient.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8491".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry governs how JSON API calls handle 503 load-shedding responses.
	// Nil disables retries: every 503 surfaces as an *APIError, which is
	// what a fleet coordinator wants — its dispatcher owns the retry
	// accounting. Interactive and batch clients set a policy (see
	// DefaultRetryPolicy) and ride out shed bursts transparently.
	Retry *RetryPolicy
	// ClientID, when non-empty, is sent as the X-Dspatch-Client header on
	// every request — the key the daemon's per-client quota buckets charge
	// against. Unidentified clients share one anonymous bucket.
	ClientID string
}

// RetryPolicy is capped exponential backoff with deterministic jitter for
// 503 responses. The daemon's Retry-After header, when present, sets the
// floor for that attempt's delay. Retries never outlive the request
// context: a deadline on ctx bounds the whole retried call.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 4).
	MaxAttempts int
	// BaseDelay seeds the backoff: delay n is BaseDelay*2^(n-1), capped at
	// MaxDelay and jittered ±25% (defaults 100ms, 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed perturbs the jitter (deterministic per path+attempt otherwise).
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// DefaultRetryPolicy is the recommended policy for interactive clients:
// 4 attempts, 100ms base delay doubling to a 2s cap.
func DefaultRetryPolicy() *RetryPolicy {
	p := RetryPolicy{}.withDefaults()
	return &p
}

// delay computes the wait before retrying attempt (1-based), honoring the
// server's Retry-After as a floor. Jitter is derived from (path, attempt,
// seed), not a clock, so a retry schedule is reproducible.
func (p RetryPolicy) delay(path string, attempt int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", path, attempt, p.Seed)
	d = time.Duration(float64(d) * (0.75 + 0.5*float64(h.Sum64()%1000)/1000.0))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// NewClient returns a Client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx daemon response.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint (zero when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("dspatchd: %d: %s", e.StatusCode, e.Message)
}

// do issues a request and decodes the JSON response into out (skipped when
// out is nil). With a Retry policy set, 503 responses — the daemon shedding
// load (full queue, draining) — are retried with capped exponential backoff
// and jitter, honoring Retry-After, until the policy or ctx runs out. A 503
// means the request was rejected before any job was enqueued, so the retry
// can never double-submit.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return err
		}
	}
	attempts := 1
	var policy RetryPolicy
	if c.Retry != nil {
		policy = c.Retry.withDefaults()
		attempts = policy.MaxAttempts
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		err := c.doOnce(ctx, method, path, data, out)
		if err == nil {
			return nil
		}
		lastErr = err
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusServiceUnavailable || attempt == attempts {
			return err
		}
		t := time.NewTimer(policy.delay(path, attempt, ae.RetryAfter))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return lastErr
}

// doOnce issues exactly one request.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.ClientID != "" {
		req.Header.Set(clientIDHeader, c.ClientID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		retryAfter := time.Duration(0)
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			return &APIError{StatusCode: resp.StatusCode, Message: ae.Error, RetryAfter: retryAfter}
		}
		return &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data)), RetryAfter: retryAfter}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// Metrics fetches the raw Prometheus text of /metrics.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return string(data), nil
}

// SubmitRun submits one simulation job.
func (c *Client) SubmitRun(ctx context.Context, spec RunSpec) (JobView, error) {
	var j JobView
	err := c.do(ctx, http.MethodPost, "/v1/runs", spec, &j)
	return j, err
}

// SubmitExperiment submits a paper table/figure job at the given scale
// (zero ScaleSpec = quick scale).
func (c *Client) SubmitExperiment(ctx context.Context, id string, spec ScaleSpec) (JobView, error) {
	var j JobView
	err := c.do(ctx, http.MethodPost, "/v1/experiments/"+id, spec, &j)
	return j, err
}

// Job fetches one job, result included when terminal.
func (c *Client) Job(ctx context.Context, id string) (JobView, error) {
	var j JobView
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j)
	return j, err
}

// JobStats fetches one job with ?stats=1: a terminal job that collected
// per-prefetcher telemetry (RunSpec.CollectStats) carries it in Result;
// other jobs answer exactly like Job.
func (c *Client) JobStats(ctx context.Context, id string) (JobView, error) {
	var j JobView
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"?stats=1", nil, &j)
	return j, err
}

// RunResult decodes a terminal run job's Result into the library's typed
// form. Fetch the job via JobStats to populate Result.Prefetchers.
func (j JobView) RunResult() (sim.Result, error) {
	var res sim.Result
	if len(j.Result) == 0 {
		return res, fmt.Errorf("job %s has no result (status %q)", j.ID, j.Status)
	}
	err := json.Unmarshal(j.Result, &res)
	return res, err
}

// PrefetcherStats decodes the per-prefetcher telemetry of a terminal job's
// Result — a run's Prefetchers section or a campaign summary's prefetchers
// aggregate. It is nil unless the job collected stats and was fetched with
// JobStats.
func (j JobView) PrefetcherStats() ([]sim.PrefetcherStats, error) {
	if len(j.Result) == 0 {
		return nil, fmt.Errorf("job %s has no result (status %q)", j.ID, j.Status)
	}
	switch j.Kind {
	case kindCampaign:
		var sum CampaignSummary
		if err := json.Unmarshal(j.Result, &sum); err != nil {
			return nil, err
		}
		return sum.Prefetchers, nil
	default:
		res, err := j.RunResult()
		if err != nil {
			return nil, err
		}
		return res.Prefetchers, nil
	}
}

// Wait long-polls the job until it reaches a terminal status or ctx fires.
func (c *Client) Wait(ctx context.Context, id string) (JobView, error) {
	for {
		var j JobView
		if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"?wait=30s", nil, &j); err != nil {
			return j, err
		}
		if j.Status.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// SubmitCampaign submits a declarative parameter sweep (POST /v1/campaigns).
func (c *Client) SubmitCampaign(ctx context.Context, spec sweep.Campaign) (JobView, error) {
	var j JobView
	err := c.do(ctx, http.MethodPost, "/v1/campaigns", spec, &j)
	return j, err
}

// CampaignEvictedError is the typed form of 410 Gone from GET
// /v1/campaigns/{id}: the campaign's full record stream was evicted by the
// -max-campaign-streams retention cap, but the job record — summary
// included — remains. Summary carries that retained summary when the client
// could fetch it, so callers keep the aggregate without the stream.
type CampaignEvictedError struct {
	// ID is the campaign's job ID.
	ID string
	// Message is the daemon's explanation.
	Message string
	// Summary is the campaign's summary record retained on the job (nil if
	// the follow-up job fetch failed).
	Summary json.RawMessage
}

func (e *CampaignEvictedError) Error() string {
	return fmt.Sprintf("dspatchd: campaign %s stream evicted: %s", e.ID, e.Message)
}

// CampaignStream opens the campaign's NDJSON record stream. A zero wait
// returns a snapshot of the records so far; a positive wait follows live
// appends until the campaign finishes or the window (clamped server-side)
// elapses. The caller owns the ReadCloser. A 410 Gone — the stream fell out
// of the retention window — is returned as a *CampaignEvictedError carrying
// the summary retained on the job record.
func (c *Client) CampaignStream(ctx context.Context, id string, wait time.Duration) (io.ReadCloser, error) {
	path := "/v1/campaigns/" + id
	if wait > 0 {
		path += "?wait=" + wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	if c.ClientID != "" {
		req.Header.Set(clientIDHeader, c.ClientID)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		msg := strings.TrimSpace(string(data))
		var ae apiError
		if json.Unmarshal(data, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		if resp.StatusCode == http.StatusGone {
			ev := &CampaignEvictedError{ID: id, Message: msg}
			// Best-effort: the job record outlives the stream and holds the
			// summary; losing this race (job table eviction) just leaves
			// Summary nil.
			if jv, err := c.Job(ctx, id); err == nil {
				ev.Summary = jv.Result
			}
			return nil, ev
		}
		return nil, &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return resp.Body, nil
}

// CampaignHeader, CampaignPoint and CampaignSummary are the typed forms of
// a campaign stream's NDJSON records — the sweep package's wire vocabulary
// re-exported where client code decodes it.
type (
	CampaignHeader  = sweep.Header
	CampaignPoint   = sweep.PointRecord
	CampaignSummary = sweep.Summary
)

// DecodeCampaignRecords parses the raw NDJSON records of one campaign into
// their typed forms: the header, every point record in stream order, and the
// summary (nil until the campaign finishes). Records of unknown type are
// skipped, so the decoder tolerates stream additions. The raw path
// (CampaignRecords/CampaignStream) remains for byte-exact consumers.
func DecodeCampaignRecords(recs []json.RawMessage) (*CampaignHeader, []CampaignPoint, *CampaignSummary, error) {
	var (
		header  *CampaignHeader
		points  []CampaignPoint
		summary *CampaignSummary
	)
	for i, raw := range recs {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, nil, nil, fmt.Errorf("campaign record %d: %w", i, err)
		}
		switch probe.Type {
		case "campaign":
			var h CampaignHeader
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, nil, nil, fmt.Errorf("campaign record %d (header): %w", i, err)
			}
			header = &h
		case "point":
			var p CampaignPoint
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, nil, nil, fmt.Errorf("campaign record %d (point): %w", i, err)
			}
			points = append(points, p)
		case "summary":
			var s CampaignSummary
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, nil, nil, fmt.Errorf("campaign record %d (summary): %w", i, err)
			}
			summary = &s
		}
	}
	return header, points, summary, nil
}

// CampaignPoints fetches one campaign's stream and returns its typed point
// records and summary (nil while the campaign is still running). It is
// DecodeCampaignRecords over CampaignRecords.
func (c *Client) CampaignPoints(ctx context.Context, id string, wait time.Duration) ([]CampaignPoint, *CampaignSummary, error) {
	recs, err := c.CampaignRecords(ctx, id, wait)
	if err != nil {
		return nil, nil, err
	}
	_, points, summary, err := DecodeCampaignRecords(recs)
	return points, summary, err
}

// CampaignRecords drains one CampaignStream call into parsed NDJSON lines.
func (c *Client) CampaignRecords(ctx context.Context, id string, wait time.Duration) ([]json.RawMessage, error) {
	body, err := c.CampaignStream(ctx, id, wait)
	if err != nil {
		return nil, err
	}
	defer body.Close()
	var out []json.RawMessage
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		out = append(out, json.RawMessage(line))
	}
	return out, sc.Err()
}

// Jobs lists every retained job (no results; fetch individually).
func (c *Client) Jobs(ctx context.Context) ([]JobView, error) {
	var out []JobView
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (JobView, error) {
	var j JobView
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &j)
	return j, err
}

// ExperimentInfo is one entry of GET /v1/experiments.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Sim   bool   `json:"sim"`
}

// Experiments lists the experiment registry.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out)
	return out, err
}

// WorkloadInfo is one entry of GET /v1/workloads and of the POST
// /v1/scenarios response.
type WorkloadInfo struct {
	Name         string `json:"name"`
	Category     string `json:"category"`
	MemIntensive bool   `json:"mem_intensive"`
	// Source is "builtin", "spec" or "imported".
	Source string `json:"source"`
	// Fingerprint is the content identity of non-builtin workloads (empty
	// for builtins, whose name alone identifies the stream).
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Workloads lists the workload roster.
func (c *Client) Workloads(ctx context.Context) ([]WorkloadInfo, error) {
	var out []WorkloadInfo
	err := c.do(ctx, http.MethodGet, "/v1/workloads", nil, &out)
	return out, err
}

// RegisterScenarios registers scenario specs on the daemon (POST
// /v1/scenarios), returning the resulting roster entries.
func (c *Client) RegisterScenarios(ctx context.Context, specs []trace.ScenarioSpec) ([]WorkloadInfo, error) {
	var out []WorkloadInfo
	err := c.do(ctx, http.MethodPost, "/v1/scenarios", specs, &out)
	return out, err
}
