package service

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net/http"
	"testing"

	"dspatch/internal/experiments"
	"dspatch/internal/sweep"
	"dspatch/internal/trace"
)

// champRec assembles one 64-byte ChampSim input_instr holding a single
// source-memory load.
func champRec(ip, addr uint64, srcReg, destReg byte) []byte {
	rec := make([]byte, 64)
	binary.LittleEndian.PutUint64(rec[0:8], ip)
	rec[10] = destReg
	rec[12] = srcReg
	binary.LittleEndian.PutUint64(rec[32:40], addr)
	return rec
}

// convertedTraceData converts a tiny synthetic ChampSim binary trace into
// DSPTRC01 export bytes — the payload a trace-kind scenario spec inlines.
func convertedTraceData(t *testing.T, name string, n int) []byte {
	t.Helper()
	var in bytes.Buffer
	for i := 0; i < n; i++ {
		in.Write(champRec(uint64(0x400000+4*(i%17)), uint64(0x7f00_0000+64*i), byte(i%5), byte((i+1)%5)))
	}
	m, err := trace.Convert(bytes.NewReader(in.Bytes()), trace.ConvertOptions{Name: name, Seed: 1})
	if err != nil {
		t.Fatalf("Convert: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Export(&buf, 0); err != nil {
		t.Fatalf("Export: %v", err)
	}
	return buf.Bytes()
}

// mixedScenarioCampaign sweeps a builtin workload, an inline declarative
// scenario and a converted external trace across two prefetchers — the
// issue's acceptance shape. The trace holds more refs than the campaign
// simulates, as a finite trace cannot be extended.
func mixedScenarioCampaign(refs int, traceData []byte) sweep.Campaign {
	return sweep.Campaign{
		Name: "mixed-scenarios",
		Base: sweep.Point{Refs: refs},
		Axes: sweep.Axes{
			Workloads: []sweep.Mix{{"mcf"}, {"e2e-chase"}, {"e2e-trc"}},
			L2:        []string{"none", "dspatch"},
		},
		Scenarios: []trace.ScenarioSpec{
			{Name: "e2e-chase", Kind: trace.KindPointer,
				Pointer: &trace.PointerChaseConfig{Style: "list", Nodes: 2048, NodesPerPage: 8, Depth: 128, MeanGap: 10}},
			{Name: "e2e-trc", Kind: trace.KindTrace, Trace: &trace.TraceSpec{Data: traceData}},
		},
	}
}

func TestScenarioRegistrationEndpoint(t *testing.T) {
	t.Cleanup(trace.ResetShared)
	_, c := newTestServer(t, Config{JobWorkers: 1})
	ctx := ctxT(t)

	spec := trace.ScenarioSpec{Name: "api-chase", Kind: trace.KindPointer,
		Pointer: &trace.PointerChaseConfig{Style: "tree", Nodes: 4096, NodesPerPage: 8, Depth: 10, Fanout: 4, MeanGap: 12}}
	regs, err := c.RegisterScenarios(ctx, []trace.ScenarioSpec{spec})
	if err != nil {
		t.Fatalf("RegisterScenarios: %v", err)
	}
	if len(regs) != 1 || regs[0].Source != trace.SourceSpec || regs[0].Fingerprint == "" {
		t.Fatalf("registration response: %+v", regs)
	}
	// Idempotent re-registration succeeds; a conflicting redefinition is 409.
	if _, err := c.RegisterScenarios(ctx, []trace.ScenarioSpec{spec}); err != nil {
		t.Fatalf("idempotent re-register: %v", err)
	}
	spec.Pointer.Nodes = 8192
	_, err = c.RegisterScenarios(ctx, []trace.ScenarioSpec{spec})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusConflict {
		t.Fatalf("conflict error = %v, want 409", err)
	}

	// The roster reports sources, and the registered scenario is usable.
	ws, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bySrc := map[string]string{}
	for _, w := range ws {
		bySrc[w.Name] = w.Source
	}
	if bySrc["mcf"] != trace.SourceBuiltin {
		t.Errorf("mcf source = %q, want builtin", bySrc["mcf"])
	}
	if bySrc["api-chase"] != trace.SourceSpec {
		t.Errorf("api-chase source = %q, want spec", bySrc["api-chase"])
	}
	j, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"api-chase"}, Refs: 700})
	if err != nil {
		t.Fatal(err)
	}
	if j, err = c.Wait(ctx, j.ID); err != nil || j.Status != StatusDone {
		t.Fatalf("run of registered scenario: status %q err %v", j.Status, err)
	}
}

// TestCampaignMixesBuiltinImportedAndSpecScenarios is the issue's
// single-node acceptance: a campaign whose workloads axis mixes a builtin
// workload, a converted external trace and an inline declarative spec runs
// end to end through the daemon, its point records are byte-identical to a
// local engine run, and resubmitting it re-simulates nothing.
func TestCampaignMixesBuiltinImportedAndSpecScenarios(t *testing.T) {
	t.Cleanup(trace.ResetShared)
	camp := mixedScenarioCampaign(617, convertedTraceData(t, "e2e-trc", 900))
	want := localReference(t, camp)

	_, c := newTestServer(t, Config{JobWorkers: 1})
	ctx := ctxT(t)
	j, err := c.SubmitCampaign(ctx, camp)
	if err != nil {
		t.Fatalf("SubmitCampaign: %v", err)
	}
	if j, err = c.Wait(ctx, j.ID); err != nil || j.Status != StatusDone {
		t.Fatalf("campaign: status %q err %v", j.Status, err)
	}
	recs, err := c.CampaignRecords(ctx, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("daemon emitted %d records, local %d", len(recs), len(want))
	}
	for k := range want {
		a, b := want[k], string(recs[k])
		if k == len(want)-1 {
			a, b = stripFleetTelemetry(t, a), stripFleetTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs:\nlocal:  %s\ndaemon: %s", k, a, b)
		}
	}

	// Resubmission: every run — including the imported-trace and spec-based
	// ones, whose cache keys fold content fingerprints — is served from the
	// memo with zero new simulations.
	sims := experiments.EngineCounters().Sims
	j2, err := c.SubmitCampaign(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}
	if j2, err = c.Wait(ctx, j2.ID); err != nil || j2.Status != StatusDone {
		t.Fatalf("resubmission: status %q err %v", j2.Status, err)
	}
	if got := experiments.EngineCounters().Sims; got != sims {
		t.Errorf("resubmission ran %d new simulations, want 0", got-sims)
	}
	recs2, err := c.CampaignRecords(ctx, j2.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range recs {
		a, b := string(recs[k]), string(recs2[k])
		if k == len(recs)-1 {
			a, b = stripFleetTelemetry(t, a), stripFleetTelemetry(t, b)
		}
		if a != b {
			t.Errorf("resubmission record %d differs", k)
		}
	}
}

// TestImportedScenarioCampaignResumesFromDiskCache models a daemon restart
// between two submissions of a scenario-bearing campaign: the in-process
// memo and the scenario registry are both gone, the resubmitted campaign
// re-registers its specs, and — because cache keys fold the scenario
// fingerprints — every run is served from the persistent disk cache without
// touching the simulator.
func TestImportedScenarioCampaignResumesFromDiskCache(t *testing.T) {
	cacheDir := t.TempDir()
	experiments.ResetMemo()
	t.Cleanup(func() {
		if err := experiments.SetCacheDir(""); err != nil {
			t.Error(err)
		}
	})
	t.Cleanup(trace.ResetShared)
	camp := mixedScenarioCampaign(613, convertedTraceData(t, "e2e-trc", 900))

	_, c := newTestServer(t, Config{JobWorkers: 1, CacheDir: cacheDir})
	ctx := ctxT(t)
	j, err := c.SubmitCampaign(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}
	if j, err = c.Wait(ctx, j.ID); err != nil || j.Status != StatusDone {
		t.Fatalf("first campaign: status %q err %v", j.Status, err)
	}
	recs, err := c.CampaignRecords(ctx, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := experiments.EngineCounters()

	experiments.ResetMemo()
	trace.ResetShared()

	j2, err := c.SubmitCampaign(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}
	if j2, err = c.Wait(ctx, j2.ID); err != nil || j2.Status != StatusDone {
		t.Fatalf("resumed campaign: status %q err %v", j2.Status, err)
	}
	recs2, err := c.CampaignRecords(ctx, j2.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("resumed campaign emitted %d records, first %d", len(recs2), len(recs))
	}
	for k := range recs {
		a, b := string(recs[k]), string(recs2[k])
		if k == len(recs)-1 {
			a, b = stripFleetTelemetry(t, a), stripFleetTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs after restart:\nfirst:  %s\nresume: %s", k, a, b)
		}
	}
	after := experiments.EngineCounters()
	if sims := after.Sims - afterFirst.Sims; sims != 0 {
		t.Errorf("resumed campaign invoked the simulator %d times, want 0", sims)
	}
	if after.DiskHits == afterFirst.DiskHits {
		t.Error("resumed campaign never hit the disk cache")
	}
}

// TestFleetForwardsScenarioSpecs runs the mixed campaign through a
// coordinator and worker daemons: the coordinator attaches the defining
// specs (inline trace bytes included) to every dispatched point, and the
// stream stays byte-identical to a single-node run.
func TestFleetForwardsScenarioSpecs(t *testing.T) {
	t.Cleanup(trace.ResetShared)
	camp := mixedScenarioCampaign(619, convertedTraceData(t, "e2e-trc", 900))
	want := localReference(t, camp)

	urls := newWorkerFleet(t, 2, nil)
	_, c := newTestServer(t, Config{JobWorkers: 1, Fleet: fleetTestConfig(urls, t.TempDir())})
	ctx := ctxT(t)
	j, err := c.SubmitCampaign(ctx, camp)
	if err != nil {
		t.Fatalf("SubmitCampaign: %v", err)
	}
	if j, err = c.Wait(ctx, j.ID); err != nil || j.Status != StatusDone {
		t.Fatalf("fleet campaign: status %q err %v", j.Status, err)
	}
	recs, err := c.CampaignRecords(ctx, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("fleet emitted %d records, local %d", len(recs), len(want))
	}
	for k := range want {
		a, b := want[k], string(recs[k])
		if k == len(want)-1 {
			a, b = stripFleetTelemetry(t, a), stripFleetTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs:\nlocal: %s\nfleet: %s", k, a, b)
		}
	}
}
