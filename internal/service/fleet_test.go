package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dspatch/internal/experiments"
	"dspatch/internal/service/chaos"
	"dspatch/internal/sweep"
)

// Fleet acceptance tests: a coordinator over in-process worker daemons,
// exercised through the chaos fault-injection layer. The workers share this
// process's experiment engine (memo included), which keeps the tests fast;
// what these tests prove is the coordination fabric — dispatch, leases,
// retry, ejection, drop accounting, and stream byte-identity — which is
// exactly the part in-process sharing cannot fake. The CI chaos-smoke job
// repeats the headline scenario with real separate daemon processes.

// newWorkerFleet starts n worker daemons behind chaos injectors labeled
// "w0".."w<n-1>" and returns their URLs.
func newWorkerFleet(t *testing.T, n int, sched *chaos.Schedule) []string {
	t.Helper()
	if sched == nil {
		sched = &chaos.Schedule{}
	}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := New(Config{JobWorkers: 1, SimWorkers: 1})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		label := []string{"w0", "w1", "w2", "w3"}[i]
		hs := httptest.NewServer(chaos.NewInjector(sched, label, s.Handler()))
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Drain(ctx)
			hs.Close()
		})
		urls[i] = hs.URL
	}
	return urls
}

// fleetTestConfig is a FleetConfig scaled for test wall-clock: short
// leases, fast probes, quick ejection.
func fleetTestConfig(urls []string, storeDir string) *FleetConfig {
	return &FleetConfig{
		Workers:       urls,
		StoreDir:      storeDir,
		LeaseTTL:      700 * time.Millisecond,
		MaxAttempts:   4,
		MaxInflight:   2,
		ProbeInterval: 50 * time.Millisecond,
		EjectAfter:    2,
		ReadmitAfter:  300 * time.Millisecond,
		NoWorkerGrace: 2 * time.Second,
		DispatchSeed:  1,
	}
}

// stripFleetTelemetry removes every non-deterministic summary field — the
// local run's engine/elapsed telemetry plus the fleet block — leaving only
// spec-determined content.
func stripFleetTelemetry(t *testing.T, line string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("summary: %v", err)
	}
	delete(m, "engine")
	delete(m, "elapsed_ms")
	delete(m, "fleet")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// localReference runs the campaign on the local engine and returns its
// NDJSON lines.
func localReference(t *testing.T, c sweep.Campaign) []string {
	t.Helper()
	var lines []string
	eng := sweep.Engine{Workers: 2}
	if _, err := eng.Run(context.Background(), c, func(line json.RawMessage) error {
		lines = append(lines, string(line))
		return nil
	}); err != nil {
		t.Fatalf("local run: %v", err)
	}
	return lines
}

// pointRunKey computes the canonical store key of one campaign point.
func pointRunKey(t *testing.T, p sweep.Point) string {
	t.Helper()
	if err := p.Normalize(); err != nil {
		t.Fatal(err)
	}
	key, ok := experiments.JobKey(p.Job())
	if !ok {
		t.Fatal("point not memoizable")
	}
	return key
}

// TestFleetCampaignChaosByteIdentical is the acceptance scenario from the
// issue: a 3-worker fleet where one worker dies mid-campaign, one dispatch
// hangs until its lease expires, and the shared store holds one torn entry —
// and the resulting NDJSON stream is still byte-identical to a single-node
// run, with zero points lost.
func TestFleetCampaignChaosByteIdentical(t *testing.T) {
	spec := tinyCampaign(673) // distinctive refs: runs unique to this test
	want := localReference(t, spec)

	// Shared result store: one pre-seeded valid entry (a store hit), one
	// torn entry (must read as a miss and be re-simulated).
	storeDir := t.TempDir()
	ds, err := experiments.NewDirStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	validPt := sweep.Point{Workloads: []string{"mcf"}, Refs: 673, L2: "none"}
	validKey := pointRunKey(t, validPt)
	{
		p := validPt
		if err := p.Normalize(); err != nil {
			t.Fatal(err)
		}
		res, err := experiments.RunJobs(context.Background(), []experiments.Job{p.Job()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.Put(validKey, res[0]); err != nil {
			t.Fatal(err)
		}
	}
	tornKey := pointRunKey(t, sweep.Point{Workloads: []string{"tpcc"}, Refs: 673, L2: "spp"})
	if err := ds.PutRaw(tornKey, []byte(`{"result_version":1,"key":"torn mid-`)); err != nil {
		t.Fatal(err)
	}

	// Fault schedule: w1 drops dead on its first dispatch; w2 hangs its
	// first dispatch until the lease expires.
	sched := &chaos.Schedule{Faults: []chaos.Fault{
		{Worker: "w1", Kind: chaos.KindKill, At: 1},
		{Worker: "w2", Kind: chaos.KindTimeout, At: 1},
	}}
	urls := newWorkerFleet(t, 3, sched)
	s, c := newTestServer(t, Config{JobWorkers: 1, Fleet: fleetTestConfig(urls, storeDir)})
	ctx := ctxT(t)

	j, err := c.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatalf("SubmitCampaign: %v", err)
	}
	j, err = c.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.Status != StatusDone {
		t.Fatalf("status = %q (error %q)", j.Status, j.Error)
	}
	recs, err := c.CampaignRecords(ctx, j.ID, 0)
	if err != nil {
		t.Fatalf("CampaignRecords: %v", err)
	}

	// Byte-identity against the single-node stream.
	if len(recs) != len(want) {
		t.Fatalf("fleet emitted %d records, local %d", len(recs), len(want))
	}
	for k := range want {
		a, b := want[k], string(recs[k])
		if k == len(want)-1 {
			a, b = stripFleetTelemetry(t, a), stripFleetTelemetry(t, b)
		}
		if a != b {
			t.Errorf("record %d differs:\nlocal: %s\nfleet: %s", k, a, b)
		}
	}

	// Zero points lost, and the failure weather is accounted for.
	var sum sweep.Summary
	if err := json.Unmarshal(recs[len(recs)-1], &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.DroppedPoints) != 0 {
		t.Fatalf("dropped points on a recoverable-fault run: %+v", sum.DroppedPoints)
	}
	if sum.Fleet == nil {
		t.Fatal("summary missing fleet telemetry")
	}
	if sum.Fleet.Workers != 3 || sum.Fleet.StoreHits != 1 {
		t.Errorf("fleet telemetry = %+v, want 3 workers / 1 store hit", sum.Fleet)
	}
	if sum.Fleet.LeasesExpired < 1 {
		t.Errorf("leases expired = %d, want >= 1 (timeout fault)", sum.Fleet.LeasesExpired)
	}
	if sum.Fleet.Redispatches < 2 {
		t.Errorf("redispatches = %d, want >= 2 (kill + lease expiry)", sum.Fleet.Redispatches)
	}
	if got := s.pointsRedispatched.Load(); got < 2 {
		t.Errorf("dspatchd_points_redispatched_total = %d, want >= 2", got)
	}
	if got := s.leasesExpired.Load(); got < 1 {
		t.Errorf("dspatchd_leases_expired_total = %d, want >= 1", got)
	}
	if got := s.workersEjected.Load(); got < 1 {
		t.Errorf("dspatchd_workers_ejected_total = %d, want >= 1 (killed worker)", got)
	}
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{
		"dspatchd_points_redispatched_total",
		"dspatchd_workers_ejected_total",
		"dspatchd_leases_expired_total",
	} {
		if !strings.Contains(metrics, row) {
			t.Errorf("/metrics missing %s", row)
		}
	}

	// The torn entry was re-simulated and rewritten valid.
	if _, ok := ds.Get(tornKey); !ok {
		t.Error("torn store entry was not repaired by the fleet run")
	}
}

// TestFleetDropsPointsWithReasonsInsteadOfWedging starves the campaign: the
// only worker sheds every dispatch. Every point must be dropped with a
// recorded reason — the campaign completes (status done, summary emitted)
// rather than wedging or silently losing work.
func TestFleetDropsPointsWithReasonsInsteadOfWedging(t *testing.T) {
	sched := &chaos.Schedule{Faults: []chaos.Fault{
		{Worker: "w0", Kind: chaos.KindShed, At: 1, Count: 100000},
	}}
	urls := newWorkerFleet(t, 1, sched)
	fc := fleetTestConfig(urls, "")
	fc.MaxAttempts = 2
	_, c := newTestServer(t, Config{JobWorkers: 1, Fleet: fc})
	ctx := ctxT(t)

	spec := tinyCampaign(677)
	j, err := c.SubmitCampaign(ctx, spec)
	if err != nil {
		t.Fatalf("SubmitCampaign: %v", err)
	}
	j, err = c.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.Status != StatusDone {
		t.Fatalf("status = %q (error %q) — an all-shed fleet must still complete", j.Status, j.Error)
	}
	recs, err := c.CampaignRecords(ctx, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Header + summary only: every point was dropped.
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2 (header + summary):\n%s", len(recs), recs)
	}
	var sum sweep.Summary
	if err := json.Unmarshal(recs[1], &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.DroppedPoints) != 4 {
		t.Fatalf("dropped points = %d, want all 4: %+v", len(sum.DroppedPoints), sum.DroppedPoints)
	}
	for _, dp := range sum.DroppedPoints {
		if !strings.Contains(dp.Reason, "max attempts (2) exhausted") ||
			!strings.Contains(dp.Reason, "shed") {
			t.Errorf("dropped point %d reason = %q, want max-attempts + shed", dp.Index, dp.Reason)
		}
	}
	if sum.Fleet == nil || sum.Fleet.ShedRejections == 0 {
		t.Errorf("fleet telemetry = %+v, want shed rejections > 0", sum.Fleet)
	}
	// Indexes are sorted and unique.
	for i := 1; i < len(sum.DroppedPoints); i++ {
		if sum.DroppedPoints[i].Index <= sum.DroppedPoints[i-1].Index {
			t.Errorf("dropped points not in index order: %+v", sum.DroppedPoints)
		}
	}
}

// TestFleetStoreResumeSkipsDispatch re-submits a finished fleet campaign:
// with every run already in the shared store, the second pass must complete
// with zero dispatches.
func TestFleetStoreResumeSkipsDispatch(t *testing.T) {
	storeDir := t.TempDir()
	urls := newWorkerFleet(t, 2, nil)
	_, c := newTestServer(t, Config{JobWorkers: 1, Fleet: fleetTestConfig(urls, storeDir)})
	ctx := ctxT(t)
	spec := tinyCampaign(683)

	run := func() sweep.Summary {
		j, err := c.SubmitCampaign(ctx, spec)
		if err != nil {
			t.Fatalf("SubmitCampaign: %v", err)
		}
		j, err = c.Wait(ctx, j.ID)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if j.Status != StatusDone {
			t.Fatalf("status = %q (error %q)", j.Status, j.Error)
		}
		var sum sweep.Summary
		if err := json.Unmarshal(j.Result, &sum); err != nil {
			t.Fatal(err)
		}
		return sum
	}
	first := run()
	if first.Fleet.Dispatches == 0 {
		t.Fatalf("first pass dispatched nothing: %+v", first.Fleet)
	}
	second := run()
	if second.Fleet.Dispatches != 0 || second.Fleet.StoreHits == 0 {
		t.Errorf("resume pass = %+v, want 0 dispatches and all store hits", second.Fleet)
	}
}
