package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dspatch/internal/experiments"
	"dspatch/internal/sim"
	"dspatch/internal/sweep"
)

// newTestServer starts a Server with its HTTP front end and returns a client
// bound to it. The worker pool is drained on cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		hs.Close()
	})
	return s, NewClient(hs.URL)
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestHealthz(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	h, err := c.Health(ctxT(t))
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.JobWorkers != 1 || h.SimWorkers < 1 {
		t.Errorf("worker gauges: %+v", h)
	}
}

func TestRunJobMatchesLibraryPath(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1})
	ctx := ctxT(t)
	spec := RunSpec{Workloads: []string{"linpack"}, Refs: 900, L2: "spp"}
	j, err := c.SubmitRun(ctx, spec)
	if err != nil {
		t.Fatalf("SubmitRun: %v", err)
	}
	if j.Status != StatusQueued && j.Status != StatusRunning && j.Status != StatusDone {
		t.Fatalf("fresh job status = %q", j.Status)
	}
	if j.Run == nil || j.Run.Seed != 1 || j.Run.LLCBytes != 2<<20 {
		t.Fatalf("normalized spec not echoed: %+v", j.Run)
	}
	j, err = c.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.Status != StatusDone {
		t.Fatalf("status = %q (error %q)", j.Status, j.Error)
	}

	// The service result must be byte-identical to the library path.
	norm := spec
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	results, err := experiments.RunJobs(context.Background(), []experiments.Job{norm.Job()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	res.StripPorts()
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(j.Result) != string(want) {
		t.Fatalf("service result differs from library result:\n%s\n%s", j.Result, want)
	}
	if res.IPC[0] <= 0 {
		t.Fatal("degenerate run")
	}
}

func TestExperimentJobTable1(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	ctx := ctxT(t)
	j, err := c.SubmitExperiment(ctx, "table1", ScaleSpec{})
	if err != nil {
		t.Fatalf("SubmitExperiment: %v", err)
	}
	j, err = c.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.Status != StatusDone {
		t.Fatalf("status = %q (error %q)", j.Status, j.Error)
	}
	var rows []experiments.StorageRow
	if err := json.Unmarshal(j.Result, &rows); err != nil {
		t.Fatalf("result is not a storage table: %v\n%s", err, j.Result)
	}
	if len(rows) == 0 {
		t.Fatal("empty storage table")
	}
	if !strings.Contains(j.Text, "Table 1") {
		t.Errorf("rendered text missing title:\n%s", j.Text)
	}
}

func TestExperimentJobFig4Tiny(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 2})
	ctx := ctxT(t)
	j, err := c.SubmitExperiment(ctx, "fig4", ScaleSpec{Refs: 800, PerCategory: 1})
	if err != nil {
		t.Fatalf("SubmitExperiment: %v", err)
	}
	j, err = c.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if j.Status != StatusDone {
		t.Fatalf("status = %q (error %q)", j.Status, j.Error)
	}
	var res struct {
		Prefetchers []string `json:"Prefetchers"`
	}
	if err := json.Unmarshal(j.Result, &res); err != nil {
		t.Fatalf("result JSON: %v", err)
	}
	if len(res.Prefetchers) != 3 {
		t.Errorf("prefetchers = %v", res.Prefetchers)
	}
	if !strings.Contains(j.Text, "GEOMEAN") {
		t.Errorf("text table missing GEOMEAN:\n%s", j.Text)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	ctx := ctxT(t)
	cases := []struct {
		name string
		spec RunSpec
		want string
	}{
		{"no workloads", RunSpec{}, "at least one workload"},
		{"unknown workload", RunSpec{Workloads: []string{"doom"}}, `unknown workload "doom"`},
		{"unknown prefetcher", RunSpec{Workloads: []string{"linpack"}, L2: "warp"}, "unknown prefetcher"},
		{"negative refs", RunSpec{Workloads: []string{"linpack"}, Refs: -5}, "non-negative"},
		{"huge refs", RunSpec{Workloads: []string{"linpack"}, Refs: maxRefs + 1}, "at most"},
		{"bad mtps", RunSpec{Workloads: []string{"linpack"}, DRAMMTps: 3200}, "dram_mtps"},
		{"bad pht", RunSpec{Workloads: []string{"linpack"}, SMSPHTEntries: 7}, "sms_pht_entries"},
		{"non-pow2 pht", RunSpec{Workloads: []string{"linpack"}, SMSPHTEntries: 48}, "sms_pht_entries"},
		{"non-pow2 llc", RunSpec{Workloads: []string{"linpack"}, LLCBytes: 100_000}, "llc_bytes"},
		{"tiny llc", RunSpec{Workloads: []string{"linpack"}, LLCBytes: 512}, "llc_bytes"},
		{"too many lanes", RunSpec{Workloads: []string{"linpack", "linpack", "linpack", "linpack", "linpack", "linpack", "linpack", "linpack", "linpack"}}, "at most"},
	}
	for _, tc := range cases {
		_, err := c.SubmitRun(ctx, tc.spec)
		var ae *APIError
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !asAPIError(err, &ae) || ae.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: err = %v, want 400", tc.name, err)
			continue
		}
		if !strings.Contains(ae.Message, tc.want) {
			t.Errorf("%s: message %q missing %q", tc.name, ae.Message, tc.want)
		}
	}

	if _, err := c.SubmitExperiment(ctx, "fig99", ScaleSpec{}); err == nil {
		t.Error("unknown experiment accepted")
	} else if ae := new(APIError); !asAPIError(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment: err = %v, want 404", err)
	}
	if _, err := c.SubmitExperiment(ctx, "fig4", ScaleSpec{Refs: -1}); err == nil {
		t.Error("negative experiment refs accepted")
	}
	if _, err := c.Job(ctx, "j999999"); err == nil {
		t.Error("unknown job id accepted")
	}
}

func asAPIError(err error, target **APIError) bool {
	ae, ok := err.(*APIError)
	if ok {
		*target = ae
	}
	return ok
}

func TestUnknownFieldRejected(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	resp, err := http.Post(c.BaseURL+"/v1/runs", "application/json",
		strings.NewReader(`{"workloads":["linpack"],"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestCollectStatsSpecDecode pins the strict-decode contract around the
// collect_stats field: misspelled names and wrong JSON types are rejected
// with 400 instead of being silently dropped (a typo'd opt-in must not run a
// whole job without the telemetry the caller asked for), while both boolean
// spellings are accepted.
func TestCollectStatsSpecDecode(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"true accepted", `{"workloads":["linpack"],"collect_stats":true}`, http.StatusAccepted},
		{"false accepted", `{"workloads":["linpack"],"collect_stats":false}`, http.StatusAccepted},
		{"wrong type", `{"workloads":["linpack"],"collect_stats":"yes"}`, http.StatusBadRequest},
		{"wrong type int", `{"workloads":["linpack"],"collect_stats":1}`, http.StatusBadRequest},
		{"typo'd name", `{"workloads":["linpack"],"collectstats":true}`, http.StatusBadRequest},
		{"camel-case name", `{"workloads":["linpack"],"collectStats":true}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(c.BaseURL+"/v1/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// The same spec shape rides inside a campaign's base point; the strict
	// decoder must reach it there too.
	resp, err := http.Post(c.BaseURL+"/v1/campaigns", "application/json",
		strings.NewReader(`{"base":{"workloads":["linpack"],"collect_stats":"yes"},"axes":{"l2":["none"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("campaign with mistyped collect_stats: status = %d, want 400", resp.StatusCode)
	}
}

// TestStatsOptInFlow exercises the telemetry path end to end: a run with
// collect_stats keeps its default result lean (no prefetchers section), the
// ?stats=1 view carries the full telemetry, /metrics exports it as labeled
// series, and a campaign over the identical point records the same numbers
// in its point record and summary.
func TestStatsOptInFlow(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 2, SimWorkers: 1})
	ctx := ctxT(t)

	spec := RunSpec{Workloads: []string{"tpcc"}, L2: "dspatch", Refs: 2_000, CollectStats: true}
	j, err := c.SubmitRun(ctx, spec)
	if err != nil {
		t.Fatalf("SubmitRun: %v", err)
	}
	if _, err := c.Wait(ctx, j.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	lean, err := c.Job(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if lean.Status != StatusDone {
		t.Fatalf("status = %q, want done (%s)", lean.Status, lean.Error)
	}
	if strings.Contains(string(lean.Result), `"Prefetchers"`) {
		t.Error("default job view leaks the Prefetchers section; it must be ?stats=1-only")
	}
	if stats, err := lean.PrefetcherStats(); err != nil || stats != nil {
		t.Errorf("lean view PrefetcherStats = %v, %v; want nil, nil", stats, err)
	}

	full, err := c.JobStats(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	runStats, err := full.PrefetcherStats()
	if err != nil {
		t.Fatalf("PrefetcherStats: %v", err)
	}
	dspatchCounters := findPrefCounters(runStats, "dspatch")
	if dspatchCounters == nil {
		t.Fatalf("?stats=1 view has no dspatch entry (models %v)", statNames(runStats))
	}
	if dspatchCounters["triggers"] == 0 {
		t.Error("dspatch trained zero times over 2000 tpcc refs")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, `dspatchd_prefetcher_events_total{prefetcher="dspatch",counter="triggers"}`) {
		t.Error("/metrics is missing the dspatch triggers series")
	}
	if !strings.Contains(m, `dspatchd_prefetcher_hist_total{prefetcher="dspatch",hist="bw_quartile"`) {
		t.Error("/metrics is missing the dspatch bw_quartile histogram series")
	}

	// A single-point campaign over the identical spec must record the same
	// counters in its point record and summary aggregate.
	camp := sweep.Campaign{
		Base:       sweep.Point{Workloads: []string{"tpcc"}, Refs: 2_000, CollectStats: true},
		Axes:       sweep.Axes{L2: []string{"dspatch"}},
		BaselineL2: "dspatch",
	}
	cj, err := c.SubmitCampaign(ctx, camp)
	if err != nil {
		t.Fatalf("SubmitCampaign: %v", err)
	}
	if _, err := c.Wait(ctx, cj.ID); err != nil {
		t.Fatalf("Wait campaign: %v", err)
	}
	points, sum, err := c.CampaignPoints(ctx, cj.ID, 0)
	if err != nil {
		t.Fatalf("CampaignPoints: %v", err)
	}
	if len(points) != 1 || sum == nil {
		t.Fatalf("campaign stream: %d points, summary %v", len(points), sum != nil)
	}
	pointCounters := findPrefCounters(points[0].Prefetchers, "dspatch")
	sumCounters := findPrefCounters(sum.Prefetchers, "dspatch")
	if pointCounters == nil || sumCounters == nil {
		t.Fatalf("campaign records missing dspatch stats (point %v, summary %v)",
			pointCounters != nil, sumCounters != nil)
	}
	for _, counters := range []map[string]uint64{pointCounters, sumCounters} {
		for k, v := range dspatchCounters {
			if counters[k] != v {
				t.Errorf("campaign counter %s = %d, run reported %d", k, counters[k], v)
			}
		}
	}

	// The campaign's ?stats=1 job view serves the summary aggregate too.
	cFull, err := c.JobStats(ctx, cj.ID)
	if err != nil {
		t.Fatal(err)
	}
	campStats, err := cFull.PrefetcherStats()
	if err != nil {
		t.Fatalf("campaign PrefetcherStats: %v", err)
	}
	if got := findPrefCounters(campStats, "dspatch"); got == nil || got["triggers"] != dspatchCounters["triggers"] {
		t.Errorf("campaign ?stats=1 triggers = %v, want %d", got, dspatchCounters["triggers"])
	}
}

// findPrefCounters returns the named model's counter map, nil if absent.
func findPrefCounters(stats []sim.PrefetcherStats, name string) map[string]uint64 {
	for _, st := range stats {
		if st.Name == name {
			return st.Counters
		}
	}
	return nil
}

func statNames(stats []sim.PrefetcherStats) []string {
	names := make([]string, len(stats))
	for i, st := range stats {
		names[i] = st.Name
	}
	return names
}

func TestCancelRunningJob(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1})
	ctx := ctxT(t)
	j, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: maxRefs})
	if err != nil {
		t.Fatalf("SubmitRun: %v", err)
	}
	// Let it start, then cancel mid-simulation.
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Job(ctx, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusRunning {
			break
		}
		if v.Status.Terminal() {
			t.Fatalf("%d-ref job finished before cancel: %q", maxRefs, v.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, j.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	v, err := c.Wait(ctx, j.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if v.Status != StatusCanceled {
		t.Fatalf("status = %q, want canceled", v.Status)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1, QueueDepth: 8})
	ctx := ctxT(t)
	blocker, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: maxRefs})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"tpcc"}, Refs: maxRefs})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCanceled {
		t.Fatalf("queued job cancel: status = %q", v.Status)
	}
	if _, err := c.Cancel(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Wait(ctx, blocker.ID); err != nil || v.Status != StatusCanceled {
		t.Fatalf("blocker: %v %q", err, v.Status)
	}
}

func TestQueueFullRejects(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1, QueueDepth: 1})
	ctx := ctxT(t)
	// Same spec: everything hashes to the one worker's queue of depth 1.
	spec := func(name string) RunSpec {
		return RunSpec{Workloads: []string{name}, Refs: maxRefs}
	}
	blocker, err := c.SubmitRun(ctx, spec("linpack"))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	var rejected bool
	for i := 0; i < 3; i++ {
		j, err := c.SubmitRun(ctx, spec("tpcc"))
		if err != nil {
			var ae *APIError
			if asAPIError(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable {
				rejected = true
				break
			}
			t.Fatalf("unexpected submit error: %v", err)
		}
		ids = append(ids, j.ID)
	}
	if !rejected {
		t.Error("queue never filled: no 503")
	}
	for _, id := range append(ids, blocker.ID) {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestListJobs(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	ctx := ctxT(t)
	j1, err := c.SubmitExperiment(ctx, "table1", ScaleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := c.SubmitExperiment(ctx, "table3", ScaleSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, j2.ID); err != nil {
		t.Fatal(err)
	}
	list, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) < 2 {
		t.Fatalf("list has %d jobs", len(list))
	}
	var seen1, seen2 bool
	for _, v := range list {
		seen1 = seen1 || v.ID == j1.ID
		seen2 = seen2 || v.ID == j2.ID
		if len(v.Result) != 0 {
			t.Errorf("list leaked a result for %s", v.ID)
		}
	}
	if !seen1 || !seen2 {
		t.Errorf("list missing submitted jobs: %v %v", seen1, seen2)
	}
}

func TestRosterEndpoints(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	ctx := ctxT(t)
	ws, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 83 {
		t.Errorf("roster has %d workloads, want 83", len(ws))
	}
	es, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != len(experiments.Experiments()) {
		t.Errorf("experiment list has %d entries, want %d", len(es), len(experiments.Experiments()))
	}
	var pfs []string
	if err := c.do(ctx, http.MethodGet, "/v1/prefetchers", nil, &pfs); err != nil {
		t.Fatal(err)
	}
	if len(pfs) == 0 || pfs[0] != "none" {
		t.Errorf("prefetcher roster: %v", pfs)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	ctx := ctxT(t)
	j, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: 700})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dspatchd_jobs_submitted_total",
		"dspatchd_jobs_completed_total",
		"dspatchd_engine_sims_total",
		"dspatchd_engine_memo_hits_total",
		"dspatchd_engine_disk_cache_hits_total",
		"dspatchd_engine_refs_per_second",
		"dspatchd_jobs_queued",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestDrainStopsIntakeAndFinishesJobs(t *testing.T) {
	s, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1})
	ctx := ctxT(t)
	j, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Drain(drainCtx)

	if _, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"tpcc"}}); err == nil {
		t.Error("submission accepted while draining")
	} else if ae := new(APIError); asAPIError(err, &ae) && ae.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit status = %d, want 503", ae.StatusCode)
	}
	v, err := c.Job(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusDone {
		t.Errorf("in-flight job after drain = %q, want done (50k refs fits the drain window)", v.Status)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}
}

func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	s, c := newTestServer(t, Config{JobWorkers: 1, SimWorkers: 1})
	ctx := ctxT(t)
	j, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: maxRefs})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := c.Job(ctx, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Drain(drainCtx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain hung for %v", elapsed)
	}
	v, err := c.Job(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCanceled {
		t.Errorf("straggler = %q, want canceled", v.Status)
	}
}

func TestLongPollReturnsOnCompletion(t *testing.T) {
	_, c := newTestServer(t, Config{JobWorkers: 1})
	ctx := ctxT(t)
	j, err := c.SubmitRun(ctx, RunSpec{Workloads: []string{"linpack"}, Refs: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var v JobView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+j.ID+"?wait=45s", nil, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Status.Terminal() {
		t.Fatalf("long-poll returned non-terminal %q", v.Status)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("long-poll blocked %v despite completion", elapsed)
	}
}
