package memsys

import "dspatch/internal/memaddr"

// PollutionTracker classifies LLC victims evicted by prefetch fills into the
// paper's appendix taxonomy (Fig. 20):
//
//   - NoReuse: the victim sees no demand use within 10M instructions of its
//     eviction — it was already dead, so the eviction caused no pollution.
//   - PrefetchedBeforeUse: the victim is prefetched back into the LLC before
//     its next demand access — extra memory traffic but no demand miss.
//   - BadPollution: the victim's next demand access (within the window)
//     misses the on-die caches and pays a memory access.
type PollutionTracker struct {
	instrs func() uint64

	pending map[memaddr.Line]uint64 // victim → eviction instruction count

	noReuse          uint64
	prefetchedBefore uint64
	badPollution     uint64
}

// ReuseWindow is the classification horizon in instructions (paper: 10M).
const ReuseWindow = 10_000_000

func newPollutionTracker(instrs func() uint64) *PollutionTracker {
	return &PollutionTracker{instrs: instrs, pending: make(map[memaddr.Line]uint64)}
}

// onPrefetchEvict records that a prefetch fill displaced victim from the LLC.
// The evicter line is accepted for interface symmetry; the taxonomy tracks
// victims of all prefetch fills (the study's prefetcher — the appendix's
// aggressive streamer — is deliberately inaccurate).
func (t *PollutionTracker) onPrefetchEvict(victim, _ memaddr.Line) {
	t.pending[victim] = t.instrs()
}

// onPrefetchFill resolves a pending victim that was prefetched back before
// any demand touched it.
func (t *PollutionTracker) onPrefetchFill(line memaddr.Line) {
	when, ok := t.pending[line]
	if !ok {
		return
	}
	delete(t.pending, line)
	if t.instrs()-when > ReuseWindow {
		t.noReuse++
		return
	}
	t.prefetchedBefore++
}

// onDemand resolves a pending victim on its next demand access: an on-die
// hit means it was brought back in time, a miss is true pollution.
func (t *PollutionTracker) onDemand(line memaddr.Line, llcHit bool) {
	when, ok := t.pending[line]
	if !ok {
		return
	}
	delete(t.pending, line)
	if t.instrs()-when > ReuseWindow {
		t.noReuse++
		return
	}
	if llcHit {
		t.prefetchedBefore++
	} else {
		t.badPollution++
	}
}

// Finish classifies every still-pending victim as NoReuse (it was never
// demanded again during the run) and returns the final counts.
func (t *PollutionTracker) Finish() (noReuse, prefetchedBeforeUse, badPollution uint64) {
	t.noReuse += uint64(len(t.pending))
	t.pending = make(map[memaddr.Line]uint64)
	return t.noReuse, t.prefetchedBefore, t.badPollution
}

// Fractions returns the three classes normalized to their sum.
func (t *PollutionTracker) Fractions() (noReuse, prefetchedBeforeUse, badPollution float64) {
	n, p, b := t.noReuse, t.prefetchedBefore, t.badPollution
	total := n + p + b
	if total == 0 {
		return 0, 0, 0
	}
	f := float64(total)
	return float64(n) / f, float64(p) / f, float64(b) / f
}
