package memsys

import (
	"math/rand"
	"testing"

	"dspatch/internal/memaddr"
)

// TestMSHRRingMatchesLinearScan drives an mshrRing and a plain
// completion-time slice through the same randomized operation sequence —
// claims, patches, direct writes and free-slot queries at jittering
// (occasionally decreasing) cycles — and checks every query answer against
// the reference linear scan.
func TestMSHRRingMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(32)
		ring := newMSHRRing(n)
		ref := make([]uint64, n)
		refIdx := 0
		now := uint64(1000)
		for step := 0; step < 2000; step++ {
			// Jitter time, occasionally backwards (ports are not monotone).
			if rng.Intn(10) == 0 && now > 500 {
				now -= uint64(rng.Intn(400))
			} else {
				now += uint64(rng.Intn(60))
			}
			switch rng.Intn(3) {
			case 0: // round-robin claim + patch, as a demand miss does
				done := now + uint64(rng.Intn(500))
				start := ring.claim(now, 0)
				wantStart := now
				if ref[refIdx] > now {
					wantStart = ref[refIdx]
				}
				ref[refIdx] = 0
				refIdx = (refIdx + 1) % n
				if start != wantStart {
					t.Fatalf("trial %d step %d: claim start %d, want %d", trial, step, start, wantStart)
				}
				ring.patchLast(done)
				i := refIdx - 1
				if i < 0 {
					i = n - 1
				}
				ref[i] = done
			case 1: // free-slot query, as the prefetch drain does
				reserve := rng.Intn(5)
				got := ring.freeReserve(now, reserve)
				want := freeMSHRReserve(ref, now, reserve)
				if got != want {
					t.Fatalf("trial %d step %d: freeReserve(now=%d, reserve=%d) = %d, want %d (ref %v)",
						trial, step, now, reserve, got, want, ref)
				}
				if got >= 0 {
					done := now + uint64(rng.Intn(500))
					ring.set(got, done)
					ref[got] = done
				}
			case 2: // direct write, as a prefetch issue does
				i := rng.Intn(n)
				v := now + uint64(rng.Intn(300))
				ring.set(i, v)
				ref[i] = v
			}
		}
	}
}

// TestInflightTableMatchesMap drives the open-addressed table and a plain
// map through the same randomized insert/lookup/prune sequence and checks
// they expose identical contents throughout, including after prunes at
// arbitrary cycles.
func TestInflightTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var tab inflightTable
	tab.init()
	ref := map[memaddr.Line]flight{}
	now := uint64(0)
	lineOf := func() memaddr.Line { return memaddr.Line(rng.Intn(6000)) }
	for step := 0; step < 200_000; step++ {
		now += uint64(rng.Intn(20))
		switch rng.Intn(4) {
		case 0, 1:
			l := lineOf()
			f := flight{ready: now + uint64(rng.Intn(2000)), prefetch: rng.Intn(2) == 0}
			tab.insert(l, f)
			ref[l] = f
		case 2:
			l := lineOf()
			got, ok := tab.lookup(l)
			want, wantOK := ref[l]
			if ok != wantOK || got != want {
				t.Fatalf("step %d: lookup(%d) = %+v,%v want %+v,%v", step, l, got, ok, want, wantOK)
			}
		case 3:
			// Mirror the port's prune rule on both sides.
			if len(ref) >= inflightPrune {
				tab.prune(now)
				for l, f := range ref {
					if f.ready <= now {
						delete(ref, l)
					}
				}
			}
		}
	}
	// Final sweep: every surviving key matches.
	for l, want := range ref {
		got, ok := tab.lookup(l)
		if !ok || got != want {
			t.Fatalf("final: lookup(%d) = %+v,%v want %+v,true", l, got, ok, want)
		}
	}
	if tab.occupied < len(ref) {
		t.Fatalf("occupied %d < live entries %d", tab.occupied, len(ref))
	}
}

// TestInflightTableGrowsUnderPruneFreeStreak models a phase where prefetch
// coverage is perfect — no demand DRAM misses, so the prune never fires —
// and thousands of distinct live records accumulate. The table must grow
// gracefully (as the map it replaced did) and keep every record findable.
func TestInflightTableGrowsUnderPruneFreeStreak(t *testing.T) {
	var tab inflightTable
	tab.init()
	const n = 3 * inflightSlots
	for i := 0; i < n; i++ {
		tab.insert(memaddr.Line(i*64+7), flight{ready: 1 << 60, prefetch: i%2 == 0})
	}
	if len(tab.lines) <= inflightSlots {
		t.Fatalf("table did not grow: %d slots for %d live records", len(tab.lines), n)
	}
	for i := 0; i < n; i++ {
		f, ok := tab.lookup(memaddr.Line(i*64 + 7))
		if !ok || f.ready != 1<<60 || f.prefetch != (i%2 == 0) {
			t.Fatalf("record %d lost or corrupted after growth: %+v ok=%v", i, f, ok)
		}
	}
	// A prune at a later cycle still clears everything completed.
	tab.prune(1<<60 + 1)
	if tab.occupied != 0 {
		t.Errorf("prune after growth left %d records", tab.occupied)
	}
}
