package memsys

import (
	"math/bits"

	"dspatch/internal/memaddr"
)

// inflightTable tracks outstanding DRAM fetches per port. It replaces the
// map[memaddr.Line]flight the port used before: a fixed-capacity
// open-addressed hash table with linear probing, so the per-access lookup on
// the L1-hit path costs one multiply and (almost always) one word read
// instead of a runtime map operation, and no allocation ever happens after
// construction.
//
// The table mirrors the map's visible semantics exactly — this matters more
// than it looks. Per-port access cycles are not monotone (an independent load
// can issue at an earlier cycle than a previously dispatched dependent load),
// so an entry whose ready cycle has passed one access's `now` can still be
// observably in flight for a later access at an earlier cycle. Entries are
// therefore never expired lazily on the lookup/insert path; like the map,
// they persist until the port's prune threshold (4096 entries, demand path)
// triggers a rebuild that discards completed entries — the same rule, at the
// same trigger points, as the old pruneInflight. The differential equivalence
// tests in internal/sim hold the two implementations to bit-identical
// results.
//
// Layout is struct-of-arrays: probes walk a dense array of line keys (an
// impossible sentinel marks empty slots), and the ready cycle — with the
// prefetch flag folded into its low bit — lives in a sibling array read only
// on a key match. Because removal only ever happens through the full
// rebuild, no tombstones are needed and probe chains stay intact between
// compactions. The initial capacity is twice the prune threshold, covering
// the prune-bounded steady state; a phase that legitimately outruns the
// prune (the prune fires only on demand DRAM misses, so a long streak of
// fully-covered prefetch traffic can pile up stale records) grows the table
// instead of degrading — matching the map, which simply grew too.
const (
	inflightSlots = 8192                       // initial capacity; power of two
	inflightPrune = 4096                       // prune threshold, as the map had
	inflightHashK = uint64(0x9E3779B97F4A7C15) // Fibonacci multiplier
)

// inflightNoLine marks an empty slot. Simulated line addresses are bounded
// far below it (physical spaces top out around 2^40 lines).
const inflightNoLine = ^memaddr.Line(0)

// inflightTable is the per-port table. The zero value is unusable; call init.
type inflightTable struct {
	lines    []memaddr.Line // keys; inflightNoLine = empty
	rp       []uint64       // ready<<1 | prefetch
	mask     int            // len(lines)-1
	shift    uint           // hash -> slot index: 64 - log2(len(lines))
	occupied int
	scratchL []memaddr.Line // compaction survivors, reused across rebuilds
	scratchR []uint64
}

func (t *inflightTable) init() {
	t.alloc(inflightSlots)
	t.scratchL = make([]memaddr.Line, 0, 512)
	t.scratchR = make([]uint64, 0, 512)
}

// alloc sizes the slot arrays to n (a power of two), all empty.
func (t *inflightTable) alloc(n int) {
	t.lines = make([]memaddr.Line, n)
	for i := range t.lines {
		t.lines[i] = inflightNoLine
	}
	t.rp = make([]uint64, n)
	t.mask = n - 1
	t.shift = 64 - uint(bits.Len64(uint64(n-1)))
	t.occupied = 0
}

func (t *inflightTable) hash(line memaddr.Line) int {
	return int(uint64(line) * inflightHashK >> t.shift)
}

// lookup returns the entry stored for line, completed or not — callers
// compare ready against their own deadline exactly as they did with the map.
func (t *inflightTable) lookup(line memaddr.Line) (flight, bool) {
	for i := t.hash(line); ; i = (i + 1) & t.mask {
		switch t.lines[i] {
		case line:
			rp := t.rp[i]
			return flight{ready: rp >> 1, prefetch: rp&1 != 0}, true
		case inflightNoLine:
			return flight{}, false
		}
	}
}

// insert stores f for line, overwriting an existing entry for the same line
// in place — a re-fetched line replaces its stale record instead of leaking
// a second one.
func (t *inflightTable) insert(line memaddr.Line, f flight) {
	rp := f.ready << 1
	if f.prefetch {
		rp |= 1
	}
	for i := t.hash(line); ; i = (i + 1) & t.mask {
		switch t.lines[i] {
		case line:
			t.rp[i] = rp
			return
		case inflightNoLine:
			t.occupied++
			if t.occupied > len(t.lines)-len(t.lines)/8 {
				// The prune-bounded steady state never gets here; a long
				// fully-covered prefetch streak (no demand misses, so no
				// prunes) can. Grow like the map did rather than degrade
				// into long probe chains; the next prune resets occupancy.
				t.grow()
				// Re-probe: the slot layout changed entirely.
				t.insertGrown(line, rp)
				return
			}
			t.lines[i] = line
			t.rp[i] = rp
			return
		}
	}
}

// insertGrown finishes an insert after grow: the key is known absent and
// free slots abound.
func (t *inflightTable) insertGrown(line memaddr.Line, rp uint64) {
	i := t.hash(line)
	for t.lines[i] != inflightNoLine {
		i = (i + 1) & t.mask
	}
	t.lines[i] = line
	t.rp[i] = rp
	t.occupied++
}

// grow doubles the table, rehashing every record (live and stale alike:
// staleness is time-relative and per-port cycles are not monotone, so grow
// must preserve contents exactly).
func (t *inflightTable) grow() {
	oldLines, oldRP := t.lines, t.rp
	t.alloc(2 * len(oldLines))
	for k, l := range oldLines {
		if l == inflightNoLine {
			continue
		}
		i := t.hash(l)
		for t.lines[i] != inflightNoLine {
			i = (i + 1) & t.mask
		}
		t.lines[i] = l
		t.rp[i] = oldRP[k]
		t.occupied++
	}
}

// prune discards completed entries once the table holds inflightPrune of
// them, exactly as the map-based pruneInflight did: entries with ready <= now
// go, live ones stay. Callers invoke it where the old code did (the demand
// miss path), keeping the two implementations' contents identical at every
// step.
func (t *inflightTable) prune(now uint64) {
	if t.occupied < inflightPrune {
		return
	}
	t.scratchL = t.scratchL[:0]
	t.scratchR = t.scratchR[:0]
	for i, l := range t.lines {
		if l != inflightNoLine && t.rp[i]>>1 > now {
			t.scratchL = append(t.scratchL, l)
			t.scratchR = append(t.scratchR, t.rp[i])
		}
		t.lines[i] = inflightNoLine
	}
	t.occupied = len(t.scratchL)
	for k, l := range t.scratchL {
		i := t.hash(l)
		for t.lines[i] != inflightNoLine {
			i = (i + 1) & t.mask
		}
		t.lines[i] = l
		t.rp[i] = t.scratchR[k]
	}
}
