// Package memsys composes the simulated memory system: per-core private L1
// and L2 caches, a shared last-level cache, and DRAM. It owns all the timing
// the cache tag stores do not: hit latencies, MSHR occupancy, in-flight miss
// merging, prefetch issue (L1 stride prefetcher trained on L1 accesses; the
// evaluated L2 prefetcher trained on L1 misses, filling L2 and LLC per the
// paper's §4.1), write-back traffic, and the coverage/accuracy accounting
// behind the paper's Fig. 16.
package memsys

import (
	"dspatch/internal/bitpattern"
	"dspatch/internal/cache"
	"dspatch/internal/dram"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
)

// Config sizes the hierarchy. Latencies are cumulative round trips from the
// core, matching the paper's Table 2 access latencies.
type Config struct {
	L1  cache.Config
	L2  cache.Config
	LLC cache.Config

	L1HitLat  uint64
	L2HitLat  uint64
	LLCHitLat uint64

	L1MSHRs int
	L2MSHRs int

	// MaxPrefetchesPerTrain caps how many candidates one training event may
	// issue (queue backpressure).
	MaxPrefetchesPerTrain int

	// Reference selects the pre-optimization bookkeeping: a map-based
	// in-flight tracker with periodic pruning and linear MSHR free-slot
	// scans. It exists so the differential equivalence tests can prove the
	// open-addressed in-flight table and the O(1) MSHR ring bit-identical to
	// the structures they replaced; simulations never set it.
	Reference bool
}

// DefaultConfig returns the paper's Table 2 hierarchy for the given core
// count and LLC capacity (2MB single-thread, 8MB shared for 4 cores).
func DefaultConfig(llcBytes int) Config {
	return Config{
		L1:  cache.Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8},
		L2:  cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 8},
		LLC: cache.Config{Name: "LLC", SizeBytes: llcBytes, Ways: 16, DeadBlockAware: true},

		L1HitLat:  5,
		L2HitLat:  13, // 5 + 8
		LLCHitLat: 43, // 5 + 8 + 30

		L1MSHRs: 16,
		L2MSHRs: 32,

		MaxPrefetchesPerTrain: 48,
	}
}

// flight records an outstanding fetch from DRAM.
type flight struct {
	ready    uint64
	prefetch bool
}

// CoverageStats is the per-core accounting behind Fig. 16.
type CoverageStats struct {
	L1Accesses uint64
	L1Misses   uint64 // = L2 demand accesses

	Covered   uint64 // demand first-uses of prefetched lines (L2 or LLC, incl. in-flight merges)
	Uncovered uint64 // demand fetches that went to DRAM unaided

	PrefetchDRAM   uint64 // L2-prefetcher fetches that consumed DRAM bandwidth
	PrefetchDRAML1 uint64 // L1-prefetcher fetches that consumed DRAM bandwidth
	PrefetchLLC    uint64 // prefetches satisfied from the LLC
	PrefetchDrop   uint64 // dropped: duplicate, in-flight or MSHR-full

	DemandDRAM uint64
	Writebacks uint64
}

// Coverage returns covered / (covered + uncovered): the fraction of
// would-be memory accesses the prefetcher saved.
func (s CoverageStats) Coverage() float64 {
	den := s.Covered + s.Uncovered
	if den == 0 {
		return 0
	}
	return float64(s.Covered) / float64(den)
}

// MispredictionRate returns unused DRAM prefetches normalized to the same
// denominator as Coverage, matching the stacked bars of Fig. 16.
func (s CoverageStats) MispredictionRate(unused uint64) float64 {
	den := s.Covered + s.Uncovered
	if den == 0 {
		return 0
	}
	return float64(unused) / float64(den)
}

// Accuracy returns useful / issued prefetches.
func (s CoverageStats) Accuracy(useful, unused uint64) float64 {
	if useful+unused == 0 {
		return 0
	}
	return float64(useful) / float64(useful+unused)
}

// System is one simulated machine: shared LLC + DRAM plus per-core ports.
type System struct {
	cfg   Config
	dram  *dram.DRAM
	llc   *cache.Cache
	ports []*Port

	// gen counts mutations of shared state (LLC residency, DRAM bus/bank
	// timing) so a port can tell whether anything a blocked prefetch drain
	// depends on might have changed. See drainPrefetchQueue.
	gen uint64

	pollution *PollutionTracker // nil unless enabled
}

// NewSystem builds a machine with the given number of cores. Prefetcher
// factories may be nil for no prefetching at that level.
func NewSystem(cfg Config, d *dram.DRAM, cores int, l1pf, l2pf func() prefetch.Prefetcher) *System {
	if cfg.Reference {
		// Reference mode covers the whole memory system: the cache tag
		// stores flip to their pre-optimization scan-the-ways layout too.
		cfg.L1.Reference = true
		cfg.L2.Reference = true
		cfg.LLC.Reference = true
	}
	s := &System{cfg: cfg, dram: d, llc: cache.New(cfg.LLC)}
	for i := 0; i < cores; i++ {
		p := &Port{
			sys: s,
			l1:  cache.New(cfg.L1),
			l2:  cache.New(cfg.L2),

			l1mshr: newMSHRRing(cfg.L1MSHRs),
			l2mshr: newMSHRRing(cfg.L2MSHRs),

			// Steady-state buffers sized up front so the hot path never
			// grows them: the queue is bounded by its cap plus one drain
			// burst before compaction kicks in.
			reqBuf: make([]prefetch.Request, 0, 64),
			pq:     make([]queuedPrefetch, 0, 2*prefetchQueueCap),

			ref: cfg.Reference,
		}
		if cfg.Reference {
			p.refInflight = make(map[memaddr.Line]flight)
		} else {
			p.inflight.init()
		}
		// The prefetch.Context the trainers see is boxed once here: building
		// the interface value per Train call made the L1-hit path allocate.
		p.ctx = portContext{p}
		if l1pf != nil {
			p.l1pf = l1pf()
		}
		if l2pf != nil {
			p.l2pf = l2pf()
		}
		s.ports = append(s.ports, p)
	}
	return s
}

// EnablePollutionTracking attaches a Fig. 20 pollution tracker. instrs must
// report the current retired-instruction count of the system.
func (s *System) EnablePollutionTracking(instrs func() uint64) *PollutionTracker {
	s.pollution = newPollutionTracker(instrs)
	return s.pollution
}

// Port returns core i's access port.
func (s *System) Port(i int) *Port { return s.ports[i] }

// DRAM returns the shared memory.
func (s *System) DRAM() *dram.DRAM { return s.dram }

// LLC returns the shared last-level cache.
func (s *System) LLC() *cache.Cache { return s.llc }

// BandwidthUtilization implements prefetch.Context against the live DRAM
// monitor; the current cycle is supplied by the port during training.
func (s *System) utilizationAt(now uint64) bitpattern.Quartile {
	return s.dram.Utilization(now)
}

// Port is one core's view of the memory system.
type Port struct {
	sys *System
	l1  *cache.Cache
	l2  *cache.Cache

	l1pf prefetch.Prefetcher
	l2pf prefetch.Prefetcher
	ctx  prefetch.Context // boxed once; handed to every Train call

	inflight inflightTable
	l1mshr   mshrRing // round-robin demand claim = "oldest frees first"
	l2mshr   mshrRing

	// Reference-mode state (Config.Reference): the pre-optimization
	// structures, kept so tests can assert the optimized ones bit-identical.
	ref         bool
	refInflight map[memaddr.Line]flight

	reqBuf []prefetch.Request
	// pq is the core's prefetch queue: candidates wait here and drain a few
	// per access event as MSHRs and controller slots free up, so a large
	// trigger burst (DSPatch/SMS predict up to a page at once) spreads over
	// time instead of being dropped wholesale.
	pq     []queuedPrefetch
	pqHead int
	now    uint64 // cycle of the in-progress access, for the BW context

	// gen counts mutations of this port's state a blocked drain depends on
	// (L1/L2 residency, L2 MSHR times, in-flight records). Together with
	// sys.gen and the blocked cycle it lets drainPrefetchQueue skip
	// re-evaluating a head entry that provably still cannot issue.
	gen              uint64
	drainBlocked     bool
	drainBlockedNow  uint64
	drainBlockedHead int // pqHead at block time: displacement invalidates the skip
	drainGenPort     uint64
	drainGenSys      uint64

	stats         CoverageStats
	prefUseful    uint64
	prefUsefulLLC uint64
	prefUsefulL1  uint64 // first uses of L1-stride-prefetched lines

	// lastWasPrefetchHit carries the prefetched-hit flag from fetchDemand to
	// the L2 trainer invocation in Access (BOP trains on prefetched hits).
	lastWasPrefetchHit bool
}

// queuedPrefetch is one pending entry of the port's prefetch queue.
type queuedPrefetch struct {
	req  prefetch.Request
	toL1 bool
}

// prefetchQueueCap bounds the port's pending prefetch candidates; beyond it,
// new candidates are dropped (oldest-first service).
const prefetchQueueCap = 128

// prefetchDrainPerEvent bounds how many queued prefetches one access event
// may issue to the memory system.
const prefetchDrainPerEvent = 8

// portContext adapts the port to prefetch.Context at its current cycle.
type portContext struct{ p *Port }

func (c portContext) BandwidthUtilization() bitpattern.Quartile {
	return c.p.sys.utilizationAt(c.p.now)
}

// Stats returns the port's coverage accounting.
func (p *Port) Stats() CoverageStats { return p.stats }

// L1 returns the port's L1 cache (for inspection).
func (p *Port) L1() *cache.Cache { return p.l1 }

// L2 returns the port's L2 cache (for inspection).
func (p *Port) L2() *cache.Cache { return p.l2 }

// SharedLLC returns the system's shared last-level cache (for inspection).
func (p *Port) SharedLLC() *cache.Cache { return p.sys.llc }

// L2Prefetcher returns the attached L2 prefetcher, if any.
func (p *Port) L2Prefetcher() prefetch.Prefetcher { return p.l2pf }

// L1Prefetcher returns the attached L1 prefetcher, if any.
func (p *Port) L1Prefetcher() prefetch.Prefetcher { return p.l1pf }

// UnusedPrefetches estimates L2-prefetcher DRAM fetches never used: issued
// minus observed first uses (floored at zero). The baseline L1 stride
// prefetcher's traffic is accounted separately and does not pollute the
// L2 prefetcher's Fig. 16 misprediction rate.
func (p *Port) UnusedPrefetches() uint64 {
	used := p.prefUseful + p.prefUsefulLLC
	if used >= p.stats.PrefetchDRAM {
		return 0
	}
	return p.stats.PrefetchDRAM - used
}

// UsefulPrefetches returns observed first demand uses of prefetched lines.
func (p *Port) UsefulPrefetches() uint64 { return p.prefUseful + p.prefUsefulLLC }

// mergeWait returns the completion time of a demand that merges with an
// in-flight fetch: the data's arrival, but never later than a promoted
// demand-priority fetch issued now would take (the controller raises the
// in-flight request's priority when a demand hits it).
func (p *Port) mergeWait(start, ready uint64) uint64 {
	promoted := start + p.sys.cfg.LLCHitLat + p.sys.dram.NominalLatency()
	if ready > promoted {
		return promoted
	}
	return ready
}

// inflightLookup finds the in-flight record for line, if any. Expired
// records may still surface; every caller compares ready against its own
// deadline, so they are indistinguishable from absence.
func (p *Port) inflightLookup(line memaddr.Line) (flight, bool) {
	if p.ref {
		f, ok := p.refInflight[line]
		return f, ok
	}
	return p.inflight.lookup(line)
}

// inflightInsert records an outstanding fetch, overwriting any previous
// record for the line in place.
func (p *Port) inflightInsert(line memaddr.Line, f flight) {
	p.gen++
	if p.ref {
		p.refInflight[line] = f
		return
	}
	p.inflight.insert(line, f)
}

// inflightPrune discards completed records once the tracker holds 4096
// entries. Called on the demand miss path, as the original map pruning was.
func (p *Port) inflightPrune(now uint64) {
	if p.ref {
		p.pruneInflight(now)
		return
	}
	p.inflight.prune(now)
}

// Access performs one demand load or store issued at cycle now and returns
// its completion cycle.
func (p *Port) Access(now uint64, pc memaddr.PC, line memaddr.Line, write bool) uint64 {
	p.now = now
	p.stats.L1Accesses++
	if p.pqHead < len(p.pq) {
		p.drainPrefetchQueue(now)
	}

	r1 := p.l1.Access(line, write)

	// The L1 prefetcher trains on every L1 demand access.
	if p.l1pf != nil {
		p.reqBuf = p.l1pf.Train(prefetch.Access{PC: pc, Line: line, Write: write, Hit: r1.Hit}, p.ctx, p.reqBuf[:0])
		p.issuePrefetches(now, p.reqBuf, true)
	}
	if r1.Hit {
		done := now + p.sys.cfg.L1HitLat
		// A hit on a line whose fetch is still in flight waits for the data
		// (the tag is installed at issue; see issuePrefetches).
		if f, ok := p.inflightLookup(line); ok && f.ready > done {
			done = p.mergeWait(now, f.ready)
		}
		if r1.FirstUseOfPrefetch {
			p.prefUsefulL1++
		}
		return done
	}

	// L1 miss: the L2 access path. This event also trains the L2 prefetcher.
	p.stats.L1Misses++
	done := p.fetchDemand(now, line, write)

	if p.l2pf != nil {
		// Hit state for the trainer: was it an L2 hit, and a prefetched one?
		r2hit := done <= now+p.sys.cfg.L2HitLat+1
		p.reqBuf = p.l2pf.Train(prefetch.Access{
			PC: pc, Line: line, Write: write,
			Hit:           r2hit,
			HitPrefetched: p.lastWasPrefetchHit,
		}, p.ctx, p.reqBuf[:0])
		p.issuePrefetches(now, p.reqBuf, false)
	}

	// Fill L1 with the returning line.
	p.gen++
	v1 := p.l1.Fill(line, cache.FillOpts{Dirty: write})
	if v1.Valid && v1.Dirty {
		p.l2.Fill(v1.Line, cache.FillOpts{Dirty: true})
	}
	return done
}

// fetchDemand resolves an L1 miss through L2, LLC and DRAM, updating
// coverage stats. It returns the completion cycle.
func (p *Port) fetchDemand(now uint64, line memaddr.Line, write bool) uint64 {
	cfg := &p.sys.cfg
	p.lastWasPrefetchHit = false

	start := p.l1mshr.claim(now, 0) // completion patched below

	r2 := p.l2.Access(line, write)
	if r2.Hit {
		done := start + cfg.L2HitLat
		// If the line is still in flight (tag filled at issue), the demand
		// waits for the data. The entry stays until it expires so further
		// demands in the window also wait.
		if f, ok := p.inflightLookup(line); ok && f.ready > done {
			done = p.mergeWait(start, f.ready)
		}
		if r2.FirstUseOfPrefetch {
			p.stats.Covered++
			p.prefUseful++
			p.lastWasPrefetchHit = true
		}
		p.l1mshr.patchLast(done)
		return done
	}

	rL := p.sys.llc.Access(line, write)
	if rL.Hit {
		done := start + cfg.LLCHitLat
		if f, ok := p.inflightLookup(line); ok && f.ready > done {
			done = p.mergeWait(start, f.ready)
		}
		if rL.FirstUseOfPrefetch {
			p.stats.Covered++
			p.prefUsefulLLC++
			p.lastWasPrefetchHit = true
		}
		if p.sys.pollution != nil {
			p.sys.pollution.onDemand(line, true)
		}
		// Absent: the L2 lookup above missed and nothing has filled the L2
		// since (the LLC access touches only LLC state).
		p.fillL2(line, cache.FillOpts{Dirty: write, Absent: true})
		p.l1mshr.patchLast(done)
		return done
	}

	// Demand goes to memory.
	if p.sys.pollution != nil {
		p.sys.pollution.onDemand(line, false)
	}
	p.gen++     // L2 MSHR times change (claim + patch below)
	p.sys.gen++ // DRAM bank/bus state changes
	start2 := p.l2mshr.claim(start, 0)
	dramDone := p.sys.dram.Access(start2+cfg.LLCHitLat, line, false)
	p.stats.Uncovered++
	p.stats.DemandDRAM++
	// Absent: both lookups above missed, and neither the DRAM access nor the
	// LLC fill's victim write-back can install this line meanwhile.
	p.fillLLC(line, cache.FillOpts{Dirty: write, Absent: true}, 0)
	p.fillL2(line, cache.FillOpts{Dirty: write, Absent: true})
	p.inflightInsert(line, flight{ready: dramDone})
	p.inflightPrune(now)
	p.l2mshr.patchLast(dramDone)
	p.l1mshr.patchLast(dramDone)
	return dramDone
}

// issuePrefetches enqueues a batch of prefetch candidates and drains the
// queue as far as resources allow. toL1 marks L1 prefetcher output, which
// additionally fills the L1.
func (p *Port) issuePrefetches(now uint64, reqs []prefetch.Request, toL1 bool) {
	if len(reqs) == 0 && p.pqHead == len(p.pq) {
		// Nothing to enqueue and nothing queued: the drain below would be a
		// pure no-op (an empty queue always exits the drain loop unblocked,
		// so drainBlocked is already false). Holds in Reference mode too.
		return
	}
	n := len(reqs)
	if n > p.sys.cfg.MaxPrefetchesPerTrain {
		n = p.sys.cfg.MaxPrefetchesPerTrain
	}
	for _, r := range reqs[:n] {
		if len(p.pq)-p.pqHead >= prefetchQueueCap {
			// Full: displace the oldest entry — fresh predictions are more
			// valuable than stale ones still waiting for resources.
			p.pqHead++
			p.stats.PrefetchDrop++
		}
		p.pq = append(p.pq, queuedPrefetch{req: r, toL1: toL1})
	}
	p.drainPrefetchQueue(now)
}

// drainPrefetchQueue issues pending prefetches until it runs out of
// candidates, MSHRs, controller queue space, or its per-event budget.
func (p *Port) drainPrefetchQueue(now uint64) {
	// A drain that ended blocked on resources performed no mutation for its
	// head entry; re-running it is pure re-reading. If the head entry, the
	// cycle and every generation counter it read under are unchanged, the
	// re-run provably blocks at the same point (the memory-controller limit
	// only tightens for a fresh attempt at the same cycle), so skip it
	// outright. Saturated phases hit this on nearly every event. A full
	// queue displacing the blocked head (issuePrefetches bumps pqHead)
	// invalidates the skip: the new head may well issue. Reference mode
	// always re-drains, so the differential equivalence tests prove the
	// skip is a pure no-op.
	if !p.ref && p.drainBlocked && now == p.drainBlockedNow && p.pqHead == p.drainBlockedHead &&
		p.gen == p.drainGenPort && p.sys.gen == p.drainGenSys {
		return
	}
	blocked := false
	cfg := &p.sys.cfg
	l1, l2, llc, dr := p.l1, p.l2, p.sys.llc, p.sys.dram
	issued := 0
	issueAt := now
	for p.pqHead < len(p.pq) && issued < prefetchDrainPerEvent {
		q := p.pq[p.pqHead]
		line := q.req.Line
		if q.toL1 && l1.Probe(line) {
			p.pqHead++
			continue
		}
		if l2.Probe(line) {
			if q.toL1 {
				// Absent: the L1 probe above missed; nothing fills the L1
				// between it and here.
				p.gen++
				p.l1.Fill(line, cache.FillOpts{Prefetch: true, Absent: true})
			}
			p.pqHead++
			continue
		}
		// Skip only while the line's fetch is still outstanding. A stale
		// completed record deliberately falls through: if this re-prefetch
		// reaches DRAM below, inflightInsert overwrites the record in place
		// (same key, same slot) rather than skipping the issue or leaking a
		// second entry for the line. The record itself must not be deleted
		// here — per-port access cycles are not monotone, so an entry
		// completed relative to this event can still be observably in flight
		// for a later access at an earlier cycle; cleanup belongs to the
		// deterministic prune on the demand path.
		if f, ok := p.inflightLookup(line); ok && f.ready > now {
			p.pqHead++
			continue
		}
		if llc.Probe(line) {
			// Promote from LLC into L2: no DRAM traffic. Absent: the L2 (and,
			// for toL1 entries, L1) probes above missed with no fill since.
			p.stats.PrefetchLLC++
			p.fillL2(line, cache.FillOpts{Prefetch: !q.toL1, LowPriority: q.req.LowPriority, Absent: true})
			if q.toL1 {
				p.gen++
				p.l1.Fill(line, cache.FillOpts{Prefetch: true, Absent: true})
			}
			p.pqHead++
			issued++
			continue
		}
		// A prefetch needs an L2 MSHR for its whole flight and must leave
		// headroom for demand misses; it stays queued while none is free.
		var slot int
		if p.ref {
			slot = freeMSHRReserve(p.l2mshr.times, now, demandMSHRReserve)
		} else {
			slot = p.l2mshr.freeReserve(now, demandMSHRReserve)
		}
		if slot < 0 {
			blocked = true
			break
		}
		done, ok := dr.TryPrefetch(issueAt+cfg.LLCHitLat, line)
		if !ok {
			// Memory-controller prefetch queue full: wait for it to drain.
			blocked = true
			break
		}
		issueAt += prefetchIssueInterval
		p.gen++
		p.l2mshr.set(slot, done)
		if q.toL1 {
			p.stats.PrefetchDRAML1++
		} else {
			p.stats.PrefetchDRAM++
		}
		// L1-prefetcher fills carry the prefetch bit only in the L1, so the
		// L2 coverage metrics track the L2 prefetcher alone. Absent: every
		// level was probed missing above and nothing re-installed the line.
		p.fillLLC(line, cache.FillOpts{Prefetch: !q.toL1, LowPriority: q.req.LowPriority, Absent: true}, line)
		p.fillL2(line, cache.FillOpts{Prefetch: !q.toL1, LowPriority: q.req.LowPriority, Absent: true})
		if q.toL1 {
			p.gen++
			p.l1.Fill(line, cache.FillOpts{Prefetch: true, Absent: true})
		}
		p.inflightInsert(line, flight{ready: done, prefetch: true})
		p.pqHead++
		issued++
	}
	// Compact the consumed prefix so the queue does not grow unboundedly.
	if p.pqHead > 64 {
		p.pq = append(p.pq[:0], p.pq[p.pqHead:]...)
		p.pqHead = 0
	}
	// Snapshot the blocked state after compaction so the recorded head
	// position matches what the next call will see.
	p.drainBlocked = blocked
	if blocked {
		p.drainBlockedNow = now
		p.drainBlockedHead = p.pqHead
		p.drainGenPort = p.gen
		p.drainGenSys = p.sys.gen
	}
}

// demandMSHRReserve is how many L2 MSHRs prefetches must leave free for
// demand misses.
const demandMSHRReserve = 4

// prefetchIssueInterval is the L2 prefetch queue's drain spacing in cycles:
// consecutive requests of one training burst reach the memory controller
// this far apart.
const prefetchIssueInterval = 4

// freeMSHRReserve returns the index of a free slot at cycle now, provided at
// least reserve+1 slots are free (the reserve stays available to demands);
// -1 otherwise.
func freeMSHRReserve(ring []uint64, now uint64, reserve int) int {
	free, first := 0, -1
	for i, t := range ring {
		if t <= now {
			free++
			if first < 0 {
				first = i
			}
			if free > reserve {
				return first
			}
		}
	}
	return -1
}

// fillL2 installs a line in the private L2, cascading dirty victims to the
// LLC.
func (p *Port) fillL2(line memaddr.Line, opts cache.FillOpts) {
	p.gen++
	v := p.l2.Fill(line, opts)
	if v.Valid && v.Dirty {
		p.fillLLC(v.Line, cache.FillOpts{Dirty: true}, 0)
	}
}

// fillLLC installs a line in the shared LLC, writing dirty victims back to
// memory. evicter is the prefetched line causing the fill (zero for demand
// fills) — the pollution tracker uses it.
func (p *Port) fillLLC(line memaddr.Line, opts cache.FillOpts, evicter memaddr.Line) {
	p.sys.gen++ // LLC residency and (below) DRAM bus state change
	v := p.sys.llc.Fill(line, opts)
	if p.sys.pollution != nil {
		if opts.Prefetch {
			p.sys.pollution.onPrefetchFill(line)
		}
		if v.Valid && opts.Prefetch {
			p.sys.pollution.onPrefetchEvict(v.Line, evicter)
		}
	}
	if v.Valid && v.Dirty {
		p.sys.dram.AccessPriority(p.now+p.sys.cfg.LLCHitLat, v.Line, true, false)
		p.stats.Writebacks++
	}
}

// pruneInflight bounds the reference-mode in-flight map by discarding
// completed entries. The open-addressed table compacts itself instead.
func (p *Port) pruneInflight(now uint64) {
	if len(p.refInflight) < 4096 {
		return
	}
	for l, f := range p.refInflight {
		if f.ready <= now {
			delete(p.refInflight, l)
		}
	}
}
