package memsys

import "math/bits"

// mshrRing models MSHR occupancy: a ring of completion times where a new
// miss reuses the slot of the oldest outstanding one (round-robin claim,
// "oldest frees first") and prefetches take any currently-free slot.
//
// It replaces the plain []uint64 rings whose free-slot query scanned every
// entry per drained prefetch. The ring keeps a conservative bitmask of slots
// known free as of some past query — a slot marked free stays free until
// rewritten, so the mask never lies, it only understates. The free-slot
// query is then O(1) in the common cases:
//
//   - enough slots already known free, none of the stale bits below the
//     first known-free slot has expired → popcount + trailing zeros;
//   - not enough known free → one linear pass re-derives the exact mask
//     (the only full scan, paid when the ring is genuinely near-full).
//
// The answer is always exact — the same slot index and the same
// accept/reject decision as a full scan at the query cycle — because any
// slot the stale mask misses is re-checked before it could change the
// result.
type mshrRing struct {
	times []uint64
	idx   int // round-robin cursor for claim

	lastNow  uint64 // cycle freeMask was last verified against
	freeMask uint64 // bit i set => times[i] <= lastNow (hence free at any later cycle)

	// earliestBusy is a conservative lower bound on the completion times of
	// slots not in freeMask: while earliestBusy > now, no busy slot can have
	// expired since the mask was verified, so the mask is exact — the query
	// answers without verifying stale bits, and a failed reserve check needs
	// no rescan. Lowered on every write of a future time; re-derived exactly
	// by rescan. Slots turning free can only raise the true minimum, so the
	// bound stays safe without bookkeeping there.
	earliestBusy uint64
}

func newMSHRRing(n int) mshrRing {
	if n < 1 || n > 64 {
		panic("memsys: MSHR ring size must be in [1,64]")
	}
	return mshrRing{
		times:        make([]uint64, n),
		freeMask:     fullMask(n),
		earliestBusy: ^uint64(0),
	}
}

func fullMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<n - 1
}

// claim implements the round-robin MSHR acquisition: the new miss takes the
// cursor's slot, waiting for its previous occupant if still busy, and stamps
// it with the new completion time. Returns the start cycle.
func (r *mshrRing) claim(now, done uint64) (start uint64) {
	start = now
	if t := r.times[r.idx]; t > now {
		start = t
	}
	r.set(r.idx, done)
	r.idx++
	if r.idx == len(r.times) {
		r.idx = 0
	}
	return start
}

// patchLast overwrites the completion time of the slot claim just took
// (claim wrote a placeholder when the real latency was not yet known).
func (r *mshrRing) patchLast(done uint64) {
	i := r.idx - 1
	if i < 0 {
		i = len(r.times) - 1
	}
	r.set(i, done)
}

// set writes a completion time, keeping the free mask conservative.
func (r *mshrRing) set(i int, v uint64) {
	r.times[i] = v
	if v <= r.lastNow {
		r.freeMask |= 1 << uint(i)
	} else {
		r.freeMask &^= 1 << uint(i)
		if v < r.earliestBusy {
			r.earliestBusy = v
		}
	}
}

// freeReserve returns the index of a free slot at cycle now, provided more
// than reserve slots are free (the reserve stays available to demands);
// -1 otherwise. It matches a full linear scan exactly: the lowest-index
// free slot wins.
func (r *mshrRing) freeReserve(now uint64, reserve int) int {
	if now < r.lastNow {
		// Time moved backwards (non-monotonic test drivers): known-free no
		// longer implies free, so re-derive everything at this cycle.
		r.rescan(now)
	}
	r.lastNow = now
	for {
		if bits.OnesCount64(r.freeMask) <= reserve {
			// Not enough known free. A rescan can only help if some busy
			// slot's completion has actually passed; otherwise the mask is
			// already exact and the answer is no.
			if r.earliestBusy > now {
				return -1
			}
			if r.rescan(now); bits.OnesCount64(r.freeMask) <= reserve {
				return -1
			}
		}
		first := bits.TrailingZeros64(r.freeMask)
		if r.earliestBusy > now {
			// No busy slot has expired since verification: nothing below
			// first can be free, so first is the full scan's answer.
			return first
		}
		// Slots below the first known-free one may have expired since the
		// mask was last verified; the true first free slot would be among
		// them. They are typically none.
		low := ^r.freeMask & (uint64(1)<<uint(first) - 1)
		for low != 0 {
			i := bits.TrailingZeros64(low)
			low &= low - 1
			if r.times[i] <= now {
				r.freeMask |= 1 << uint(i)
				first = -1 // mask grew below: recompute
			}
		}
		if first >= 0 {
			return first
		}
	}
}

// rescan re-derives the exact free mask (and the exact earliest busy
// completion) at cycle now in one linear pass.
func (r *mshrRing) rescan(now uint64) {
	r.lastNow = now
	free := uint64(0)
	earliest := ^uint64(0)
	for i, t := range r.times {
		if t <= now {
			free |= 1 << uint(i)
		} else if t < earliest {
			earliest = t
		}
	}
	r.freeMask = free
	r.earliestBusy = earliest
}
