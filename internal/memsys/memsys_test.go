package memsys

import (
	"testing"

	"dspatch/internal/cache"
	"dspatch/internal/dram"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
)

func newSys(l2pf func() prefetch.Prefetcher) *System {
	cfg := DefaultConfig(2 << 20)
	return NewSystem(cfg, dram.New(dram.DDR4(1, 2133)), 1, nil, l2pf)
}

func TestL1HitLatency(t *testing.T) {
	s := newSys(nil)
	p := s.Port(0)
	p.Access(0, 1, 100, false) // cold miss fills everything
	done := p.Access(100000, 1, 100, false)
	if lat := done - 100000; lat != 5 {
		t.Errorf("L1 hit latency = %d, want 5", lat)
	}
}

func TestL2HitLatency(t *testing.T) {
	s := newSys(nil)
	p := s.Port(0)
	p.Access(0, 1, 100, false)
	// Evict line 100 from L1 (8 ways × 64 sets: fill 9 conflicting lines).
	// L1 sets = 32KB/64/8 = 64 → lines congruent mod 64.
	for i := 1; i <= 8; i++ {
		p.Access(uint64(i*1000), 1, memaddr.Line(100+i*64), false)
	}
	done := p.Access(500000, 1, 100, false)
	if lat := done - 500000; lat != 13 {
		t.Errorf("L2 hit latency = %d, want 13", lat)
	}
}

func TestMemoryLatencyRealistic(t *testing.T) {
	s := newSys(nil)
	p := s.Port(0)
	done := p.Access(0, 1, 12345, false)
	// LLC lookup 43 + tRCD+tCL+burst (135) = 178.
	if done < 150 || done > 250 {
		t.Errorf("cold memory latency = %d, want ≈178", done)
	}
	if p.Stats().Uncovered != 1 || p.Stats().DemandDRAM != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

// nextLinePF prefetches line+1 on every training event.
type nextLinePF struct{}

func (nextLinePF) Name() string     { return "next" }
func (nextLinePF) StorageBits() int { return 0 }
func (nextLinePF) Train(a prefetch.Access, _ prefetch.Context, dst []prefetch.Request) []prefetch.Request {
	return append(dst, prefetch.Request{Line: a.Line + 1})
}

func TestPrefetchCoverageAccounting(t *testing.T) {
	s := newSys(func() prefetch.Prefetcher { return nextLinePF{} })
	p := s.Port(0)
	now := uint64(0)
	// Sequential stream: after warmup every miss prefetches the next line.
	for i := 0; i < 100; i++ {
		done := p.Access(now, 1, memaddr.Line(i), false)
		now = done + 100
	}
	st := p.Stats()
	if st.Covered == 0 {
		t.Fatalf("next-line prefetcher covered nothing: %+v", st)
	}
	if st.PrefetchDRAM == 0 {
		t.Error("prefetches should have consumed DRAM bandwidth")
	}
	if st.Coverage() < 0.5 {
		t.Errorf("coverage = %.2f, want > 0.5 on a stream", st.Coverage())
	}
}

func TestPrefetchedLineFasterThanMemory(t *testing.T) {
	s := newSys(func() prefetch.Prefetcher { return nextLinePF{} })
	p := s.Port(0)
	p.Access(0, 1, 10, false) // miss; prefetches line 11
	// Give the prefetch time to land, then demand line 11.
	done := p.Access(5000, 1, 11, false)
	lat := done - 5000
	if lat > 50 {
		t.Errorf("prefetched line latency = %d, want on-die hit", lat)
	}
}

func TestInFlightMergeLatency(t *testing.T) {
	s := newSys(func() prefetch.Prefetcher { return nextLinePF{} })
	p := s.Port(0)
	p.Access(0, 1, 10, false) // prefetch for 11 departs around cycle 43
	// Demand line 11 immediately: it should wait for the in-flight data,
	// not pay a fresh memory access, and not hit instantly either.
	done := p.Access(50, 1, 11, false)
	lat := done - 50
	if lat < 14 {
		t.Errorf("in-flight merge too fast (%d cycles): data cannot have arrived", lat)
	}
	if lat > 300 {
		t.Errorf("in-flight merge too slow (%d cycles): paid a second memory trip?", lat)
	}
	if p.Stats().Covered != 1 {
		t.Errorf("merged prefetch should count covered: %+v", p.Stats())
	}
}

func TestUnusedPrefetchesCounted(t *testing.T) {
	s := newSys(func() prefetch.Prefetcher { return nextLinePF{} })
	p := s.Port(0)
	// Touch scattered lines; the +1 prefetches are never used.
	for i := 0; i < 50; i++ {
		p.Access(uint64(i*10000), 1, memaddr.Line(i*1000), false)
	}
	if p.UnusedPrefetches() == 0 {
		t.Error("scattered accesses should strand prefetches unused")
	}
	if p.UsefulPrefetches() != 0 {
		t.Errorf("no prefetch should be useful here, got %d", p.UsefulPrefetches())
	}
}

func TestWritebackTraffic(t *testing.T) {
	s := newSys(nil)
	p := s.Port(0)
	// Dirty a line, then evict it from every level via conflict pressure.
	p.Access(0, 1, 100, true)
	now := uint64(10000)
	// LLC: 2MB/64B/16 = 2048 sets; conflicting lines stride 2048.
	for i := 1; i <= 40; i++ {
		p.Access(now, 1, memaddr.Line(100+i*2048), false)
		now += 10000
	}
	if p.Stats().Writebacks == 0 {
		t.Error("dirty eviction should write back to DRAM")
	}
}

func TestMSHRBackpressure(t *testing.T) {
	// With 16 L1 MSHRs, the 17th concurrent miss must start later than the
	// first 16.
	s := newSys(nil)
	p := s.Port(0)
	var dones []uint64
	for i := 0; i < 17; i++ {
		dones = append(dones, p.Access(0, 1, memaddr.Line(i*977), false))
	}
	max16 := uint64(0)
	for _, d := range dones[:16] {
		if d > max16 {
			max16 = d
		}
	}
	if dones[16] <= max16 {
		// The 17th should have queued behind an MSHR (it may still finish
		// earlier than the slowest of the 16 due to bank luck, so compare
		// against the fastest instead).
		min16 := dones[0]
		for _, d := range dones[:16] {
			if d < min16 {
				min16 = d
			}
		}
		if dones[16] <= min16 {
			t.Errorf("17th miss (%d) did not queue behind MSHRs (min16 %d)", dones[16], min16)
		}
	}
}

func TestLowPriorityPrefetchFill(t *testing.T) {
	lp := func() prefetch.Prefetcher { return lowPriPF{} }
	s := newSys(lp)
	p := s.Port(0)
	p.Access(0, 1, 0, false)
	// The prefetched line (1) should be in L2 at LRU: a burst of conflicting
	// fills evicts it before older normal lines.
	if !p.L2().Probe(1) {
		t.Fatal("prefetch did not fill L2")
	}
}

type lowPriPF struct{}

func (lowPriPF) Name() string     { return "lowpri" }
func (lowPriPF) StorageBits() int { return 0 }
func (lowPriPF) Train(a prefetch.Access, _ prefetch.Context, dst []prefetch.Request) []prefetch.Request {
	return append(dst, prefetch.Request{Line: a.Line + 1, LowPriority: true})
}

func TestMultiCoreSharedLLC(t *testing.T) {
	cfg := DefaultConfig(8 << 20)
	s := NewSystem(cfg, dram.New(dram.DDR4(2, 2133)), 4, nil, nil)
	if s.Port(0) == s.Port(1) {
		t.Fatal("ports must be distinct")
	}
	// Core 0 fetches a line; core 1 gets an LLC hit on it (shared LLC).
	s.Port(0).Access(0, 1, 777, false)
	done := s.Port(1).Access(100000, 1, 777, false)
	if lat := done - 100000; lat != 43 {
		t.Errorf("cross-core LLC hit latency = %d, want 43", lat)
	}
}

func TestPollutionTaxonomy(t *testing.T) {
	cfg := DefaultConfig(64 << 10) // tiny LLC to force evictions
	cfg.LLC = cache.Config{Name: "LLC", SizeBytes: 64 << 10, Ways: 4}
	s := NewSystem(cfg, dram.New(dram.DDR4(1, 2133)), 1, nil,
		func() prefetch.Prefetcher { return nextLinePF{} })
	var instr uint64
	tr := s.EnablePollutionTracking(func() uint64 { return instr })
	p := s.Port(0)
	now := uint64(0)
	for i := 0; i < 4000; i++ {
		instr += 100
		p.Access(now, 1, memaddr.Line(i*17%3000), false)
		now += 500
	}
	n, pb, b := tr.Finish()
	if n+pb+b == 0 {
		t.Fatal("no victims classified despite a thrashing LLC")
	}
	fn, fp, fb := tr.Fractions()
	if fn+fp+fb < 0.99 {
		t.Errorf("fractions do not sum to 1: %v %v %v", fn, fp, fb)
	}
}

func TestStatsHelpers(t *testing.T) {
	var s CoverageStats
	if s.Coverage() != 0 || s.MispredictionRate(5) != 0 || s.Accuracy(0, 0) != 0 {
		t.Error("zero stats should produce zero ratios")
	}
	s.Covered, s.Uncovered = 30, 70
	if s.Coverage() != 0.3 {
		t.Errorf("Coverage = %v", s.Coverage())
	}
	if s.MispredictionRate(10) != 0.1 {
		t.Errorf("MispredictionRate = %v", s.MispredictionRate(10))
	}
	if s.Accuracy(30, 10) != 0.75 {
		t.Errorf("Accuracy = %v", s.Accuracy(30, 10))
	}
}
