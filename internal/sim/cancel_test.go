package sim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"dspatch/internal/trace"
)

func TestRunCtxMatchesRun(t *testing.T) {
	opt := fastOpts()
	opt.L2 = PFSPP
	want := RunSingle(wl("linpack"), opt)
	got, err := RunCtx(context.Background(), []trace.Workload{wl("linpack")}, opt)
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	if !reflect.DeepEqual(stripPorts(want), stripPorts(got)) {
		t.Fatalf("RunCtx result differs from Run:\n%+v\n%+v", want, got)
	}
}

func stripPorts(r Result) Result {
	r.StripPorts()
	return r
}

func TestRunCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := fastOpts()
	opt.Refs = 2_000_000 // would take seconds if the cancel hook failed
	start := time.Now()
	res, err := RunCtx(ctx, []trace.Workload{wl("linpack")}, opt)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.IPC) != 1 {
		t.Fatalf("canceled Result must keep one IPC slot per workload, got %v", res.IPC)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, hook not firing", elapsed)
	}
}

func TestRunCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opt := DefaultMP()
	opt.Refs = 1_000_000
	ws := []trace.Workload{wl("linpack"), wl("tpcc"), wl("linpack"), wl("tpcc")}
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res, err := RunCtx(ctx, ws, opt)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.IPC) != len(ws) {
		t.Fatalf("canceled Result IPC len = %d, want %d", len(res.IPC), len(ws))
	}
}
