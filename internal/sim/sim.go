// Package sim drives end-to-end simulations: it wires workload generators
// (internal/trace) through the core model (internal/cpu) into the memory
// system (internal/memsys) and collects the metrics the paper reports —
// IPC-based performance deltas, prefetch coverage and misprediction rates,
// bandwidth utilization, and the appendix pollution taxonomy.
package sim

import (
	"context"

	"dspatch/internal/cpu"
	"dspatch/internal/dram"
	"dspatch/internal/memaddr"
	"dspatch/internal/memsys"
	"dspatch/internal/prefetch"
	"dspatch/internal/prefstats"
	"dspatch/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	DRAM     dram.Config
	LLCBytes int
	Refs     int   // memory references simulated per core
	Seed     int64 // workload generator seed
	L2       PF    // L2 prefetcher selection (PFNone for baseline)
	// NoL1Stride removes the baseline L1 stride prefetcher (used only by
	// diagnostic experiments; the paper's baseline always has it).
	NoL1Stride bool
	// SMSPHTEntries overrides the SMS pattern table size (Fig. 5 sweep).
	SMSPHTEntries int
	// TrackPollution enables the Fig. 20 victim taxonomy.
	TrackPollution bool
	// CollectStats snapshots per-prefetcher internal telemetry (PB hit
	// rates, CovP/AccP selection reasons, bandwidth-quartile histograms)
	// into Result.Prefetchers when the run finishes. The models' counters
	// are always on — plain integer increments, allocation-free — so the
	// flag only controls whether the end-of-run snapshot is taken; it can
	// never change a simulation's outcome.
	CollectStats bool

	// referenceMemsys selects the pre-optimization memory-system bookkeeping
	// (map-based in-flight tracking, linear MSHR scans). Unexported: only the
	// differential equivalence tests set it, to prove the optimized
	// structures bit-identical.
	referenceMemsys bool
	// referenceModels selects the pre-optimization prefetcher-model lookups
	// (linear DSPatch PB / SMS AT+FT / AMPM map scans, per-probe SPP
	// divisions). Equivalence tests set it to prove the indexed fast paths
	// bit-identical.
	referenceModels bool
	// directGeneration bypasses the process-shared materialized-trace store
	// and drives each lane from a fresh generator, the pre-replay behaviour.
	// Equivalence tests set it to prove record/replay bit-identical.
	directGeneration bool
}

// ResultVersion stamps persisted results of Run. Bump it on ANY change that
// can alter a simulation's outcome — workload generators, prefetcher
// algorithms, timing models, Result fields — so persistent caches keyed on
// simulation inputs (experiments' -cache-dir) discard entries computed by
// older behaviour instead of serving them as current.
//
// Version 2: multi-programmed lane seeds are derived by LaneSeed's bit mixer
// instead of the old linear Seed + lane*104729 stride, so lanes > 0 of every
// multi-lane run stream differently than version 1 did.
//
// Version 3: the Result surface changed — the live Ports field was replaced
// by the plain-data PortStats snapshot, and Prefetchers carries optional
// per-prefetcher telemetry — so entries persisted by older builds no longer
// match the current shape.
//
// Version 4: mix-workload sub-generator seeds are derived by a splitmix64
// finalizer instead of the old linear seed + part*7919 stride, so every
// mix-built workload streams differently past part 0 and cached results for
// them are stale.
const ResultVersion = 4

// LaneSeed derives the generator seed of lane i of a run whose Options.Seed
// is base. Lane 0 always streams from base itself, so single-thread results
// are a pure function of Options.Seed. Higher lanes mix the lane index into
// the seed with a splitmix64-style finalizer rather than a linear stride:
// the old derivation base + i*104729 made (base, lane 1) and
// (base+104729, lane 0) share one (workload, seed) stream, silently aliasing
// lanes across the base-seed grids campaign sweeps run. Exported so tools
// reasoning about which (workload, seed) streams a run touches (the CLI's
// imported-trace guards) use the same derivation.
func LaneSeed(base int64, lane int) int64 {
	if lane == 0 {
		return base
	}
	h := uint64(base) ^ uint64(lane)*0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int64(h)
}

// DefaultST returns the paper's single-thread configuration: one core, 2MB
// LLC, one DDR4-2133 channel.
func DefaultST() Options {
	return Options{DRAM: dram.DDR4(1, 2133), LLCBytes: 2 << 20, Refs: 200_000, Seed: 1}
}

// DefaultMP returns the paper's multi-programmed configuration: four cores,
// shared 8MB LLC, two DDR4-2133 channels.
func DefaultMP() Options {
	return Options{DRAM: dram.DDR4(2, 2133), LLCBytes: 8 << 20, Refs: 150_000, Seed: 1}
}

// PrefetcherStats is one prefetcher model's telemetry snapshot; see
// Options.CollectStats and package prefstats for the schema.
type PrefetcherStats = prefstats.Stats

// PortStats is a read-only snapshot of one port's memory-system counters,
// taken when the run finishes. Unlike the live *memsys.Port it replaced, it
// is plain data: safe to marshal, memoize and share across API layers.
type PortStats struct {
	Coverage         memsys.CoverageStats
	UsefulPrefetches uint64
	UnusedPrefetches uint64
}

// Result is the outcome of one run.
type Result struct {
	IPC    []float64 // per core
	Cycles uint64    // longest core

	Coverage    float64 // covered / (covered + uncovered), all cores
	MispredRate float64 // unused prefetches / same denominator
	Accuracy    float64 // useful / issued

	AvgBandwidthGBps float64
	PeakBandwidth    float64

	// Pollution fractions (NoReuse, PrefetchedBeforeUse, BadPollution);
	// zero unless TrackPollution was set.
	Pollution [3]float64

	// PortStats snapshots each core's memory-system counters.
	PortStats []PortStats

	// Prefetchers carries per-prefetcher internal telemetry, merged across
	// lanes by model name; nil unless Options.CollectStats was set. Omitted
	// from JSON when absent, so stats-free results keep their lean shape.
	Prefetchers []PrefetcherStats `json:",omitempty"`

	// ports are the live memory-system ports; see the Ports accessor.
	ports []*memsys.Port
}

// Ports returns the live memory-system ports of a freshly computed Result,
// for deep inspection (cache contents, model internals). Results that have
// crossed a memo, disk cache or API boundary carry no live ports and return
// nil.
//
// Deprecated: consumers should read the PortStats snapshot, or set
// Options.CollectStats and read Prefetchers for model internals. This
// accessor remains for one release for diagnostics that genuinely need the
// live structures.
func (r *Result) Ports() []*memsys.Port { return r.ports }

// StripPorts drops the live port handles so only plain-data snapshots
// remain. Callers that memoize, persist or marshal results call it first;
// live mutable state must never escape through those paths.
func (r *Result) StripPorts() { r.ports = nil }

// memAdapter binds a port and the current reference so the cpu callback does
// not allocate per access.
type memAdapter struct {
	port  *memsys.Port
	pc    memaddr.PC
	line  memaddr.Line
	write bool
}

func (m *memAdapter) access(issue uint64) uint64 {
	return m.port.Access(issue, m.pc, m.line, m.write)
}

// cancelCheckMask sets how often the run loop polls for cancellation: every
// (mask+1) references. Coarse enough to stay invisible next to the per-ref
// simulation work, fine enough that a canceled run stops within microseconds.
const cancelCheckMask = 8191

// Run simulates one workload per core (1 workload = single-thread, 4 =
// multi-programmed). Each core receives a disjoint physical address space.
func Run(ws []trace.Workload, opt Options) Result {
	res, _ := RunCtx(context.Background(), ws, opt)
	return res
}

// RunCtx is Run with a cancellation hook: the run loop polls ctx every
// cancelCheckMask+1 references and aborts with ctx.Err() when it fires,
// returning a zero Result whose IPC slice still has one entry per workload so
// aggregation code indexing per-core fields never sees a short slice.
// Cancellation never alters the outcome of a run that completes: results are
// bit-identical to Run's.
func RunCtx(ctx context.Context, ws []trace.Workload, opt Options) (Result, error) {
	n := len(ws)
	if n == 0 {
		panic("sim: no workloads")
	}
	if err := ctx.Err(); err != nil {
		// Already canceled: skip lane setup (trace materialization alone can
		// cost seconds at full scale).
		return Result{IPC: make([]float64, n)}, err
	}
	m := newMachine(ws, opt, true)

	// Interleave cores by advancing whichever is earliest in simulated time,
	// so they contend for the shared LLC and DRAM realistically. A single
	// lane needs no selection scan — the paper's single-thread machine runs
	// the tight loop.
	done := ctx.Done() // nil for context.Background(): no per-ref polling cost
	var refsDone int
	var ref trace.Ref
	single := m.lanes[0]
	for {
		if done != nil && refsDone&cancelCheckMask == cancelCheckMask {
			select {
			case <-done:
				return Result{IPC: make([]float64, n)}, ctx.Err()
			default:
			}
		}
		refsDone++
		var l *simLane
		if n == 1 {
			if single.left == 0 {
				break
			}
			l = single
		} else {
			l = m.earliest()
			if l == nil {
				break
			}
		}
		l.gen.Next(&ref)
		m.apply(l, &ref)
	}
	return m.finish(), nil
}

// simLane is one core's stream state within a machine: the core model, its
// replay position, and the pre-bound memory callback.
type simLane struct {
	core *cpu.Core
	gen  trace.Generator
	ad   *memAdapter
	mem  cpu.LoadFunc
	left int
	base memaddr.Line
}

// machine is one fully-wired simulator instance — DRAM, memory system, and
// one lane per workload — separated from the run loop so a batch can advance
// several machines in lockstep over one trace stream (see RunBatchCtx) while
// the serial path keeps its tight loop.
type machine struct {
	opt     Options
	d       *dram.DRAM
	lanes   []*simLane
	tracker *memsys.PollutionTracker
	instr   uint64
	halted  bool // batch-loop bookkeeping: every lane exhausted
}

// newMachine wires one simulator for ws under opt. When ownCursors is false
// the lanes are built without replay cursors: the caller feeds refs directly
// through apply, sharing one cursor across machines. directGeneration always
// builds per-lane generators regardless.
func newMachine(ws []trace.Workload, opt Options, ownCursors bool) *machine {
	n := len(ws)
	d := dram.New(opt.DRAM)
	cfg := memsys.DefaultConfig(opt.LLCBytes)
	cfg.Reference = opt.referenceMemsys

	var l1f func() prefetch.Prefetcher
	if !opt.NoL1Stride {
		l1f = func() prefetch.Prefetcher { return prefetch.NewStride(prefetch.DefaultStrideConfig()) }
	}
	l2f := factory(opt)
	sys := memsys.NewSystem(cfg, d, n, l1f, l2f)

	m := &machine{opt: opt, d: d}
	if opt.TrackPollution {
		m.tracker = sys.EnablePollutionTracking(func() uint64 { return m.instr })
	}
	m.lanes = make([]*simLane, n)
	for i := 0; i < n; i++ {
		ad := &memAdapter{port: sys.Port(i)}
		laneSeed := LaneSeed(opt.Seed, i)
		var gen trace.Generator
		switch {
		case opt.directGeneration:
			gen = ws[i].Build(laneSeed)
		case ownCursors:
			// Every run of the same (workload, seed) replays one process-wide
			// materialized stream: the generator executes once, and every
			// prefetcher configuration and worker goroutine reads the same
			// immutable columns.
			gen = trace.Replay(ws[i], laneSeed, opt.Refs)
		}
		m.lanes[i] = &simLane{
			core: cpu.New(cpu.DefaultConfig()),
			gen:  gen,
			ad:   ad,
			mem:  ad.access,
			left: opt.Refs,
			base: memaddr.Line(uint64(i) << 36), // disjoint address spaces
		}
	}
	return m
}

// earliest returns the unfinished lane furthest behind in simulated time, or
// nil when every lane has consumed its refs.
func (m *machine) earliest() *simLane {
	var l *simLane
	for _, cand := range m.lanes {
		if cand.left == 0 {
			continue
		}
		if l == nil || cand.core.Cycle() < l.core.Cycle() {
			l = cand
		}
	}
	return l
}

// step advances the machine by one reference pulled from its own cursors,
// returning false once every lane is exhausted.
func (m *machine) step(ref *trace.Ref) bool {
	var l *simLane
	if len(m.lanes) == 1 {
		l = m.lanes[0]
		if l.left == 0 {
			return false
		}
	} else {
		l = m.earliest()
		if l == nil {
			return false
		}
	}
	l.gen.Next(ref)
	m.apply(l, ref)
	return true
}

// apply feeds one reference to lane l: the exact per-ref sequence of the
// original run loop, shared verbatim by the serial and batch paths so their
// results stay bit-identical.
func (m *machine) apply(l *simLane, ref *trace.Ref) {
	l.core.Ops(ref.Gap)
	l.ad.pc = ref.PC
	l.ad.line = ref.Line + l.base
	l.ad.write = ref.Write
	switch {
	case ref.Write:
		l.core.Store(l.mem)
	case ref.Dep:
		l.core.LoadAfter(l.mem)
	default:
		l.core.Load(l.mem)
	}
	m.instr += uint64(ref.Gap) + 1
	l.left--
}

// finish drains every lane and assembles the Result.
func (m *machine) finish() Result {
	res := Result{PeakBandwidth: m.opt.DRAM.PeakBandwidthGBps()}
	var covered, uncovered, useful, unused uint64
	for _, l := range m.lanes {
		ipc := l.core.IPC()
		res.IPC = append(res.IPC, ipc)
		if c := l.core.Drain(); c > res.Cycles {
			res.Cycles = c
		}
		p := l.ad.port
		st := p.Stats()
		covered += st.Covered
		uncovered += st.Uncovered
		useful += p.UsefulPrefetches()
		unused += p.UnusedPrefetches()
		res.PortStats = append(res.PortStats, PortStats{
			Coverage:         st,
			UsefulPrefetches: p.UsefulPrefetches(),
			UnusedPrefetches: p.UnusedPrefetches(),
		})
		res.ports = append(res.ports, p)
	}
	if m.opt.CollectStats {
		for _, l := range m.lanes {
			p := l.ad.port
			res.Prefetchers = prefstats.Merge(res.Prefetchers, prefetch.ReportStats(p.L1Prefetcher()))
			res.Prefetchers = prefstats.Merge(res.Prefetchers, prefetch.ReportStats(p.L2Prefetcher()))
		}
	}
	if den := covered + uncovered; den > 0 {
		res.Coverage = float64(covered) / float64(den)
		res.MispredRate = float64(unused) / float64(den)
	}
	if issued := useful + unused; issued > 0 {
		res.Accuracy = float64(useful) / float64(issued)
	}
	res.AvgBandwidthGBps = m.d.AvgBandwidthGBps(res.Cycles)
	if m.tracker != nil {
		m.tracker.Finish()
		res.Pollution[0], res.Pollution[1], res.Pollution[2] = m.tracker.Fractions()
	}
	return res
}

// RunSingle simulates one workload on the single-thread configuration.
func RunSingle(w trace.Workload, opt Options) Result {
	return Run([]trace.Workload{w}, opt)
}

// Speedup returns with.IPC[i]/base.IPC[i] ratios.
func Speedup(base, with Result) []float64 {
	out := make([]float64, len(base.IPC))
	for i := range out {
		if base.IPC[i] > 0 {
			out[i] = with.IPC[i] / base.IPC[i]
		}
	}
	return out
}
