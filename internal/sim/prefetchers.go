package sim

import (
	"dspatch/internal/ampm"
	"dspatch/internal/bop"
	"dspatch/internal/core"
	"dspatch/internal/prefetch"
	"dspatch/internal/sms"
	"dspatch/internal/spp"
)

// PF names an L2 prefetcher configuration. These are the columns of the
// paper's figures.
type PF string

// The prefetcher roster.
const (
	PFNone PF = "none"

	PFBOP  PF = "bop"
	PFEBOP PF = "ebop"
	PFSMS  PF = "sms"
	PFSPP  PF = "spp"
	PFESPP PF = "espp"
	PFAMPM PF = "ampm"

	PFStreamer PF = "streamer" // appendix pollution study fixture

	PFDSPatch PF = "dspatch"

	// Adjunct combinations (Fig. 12, 14, 15).
	PFDSPatchSPP PF = "dspatch+spp"
	PFBOPSPP     PF = "bop+spp"
	PFSMS256SPP  PF = "sms256+spp"
	PFEBOPSPP    PF = "ebop+spp"
	PFTriple     PF = "dspatch+spp+bop"

	// Fig. 19 ablation variants.
	PFDSPatchAlwaysCov PF = "dspatch-alwayscovp"
	PFDSPatchModCov    PF = "dspatch-modcovp"

	// Design-choice ablations (see the README's experiment index).
	PFDSPatchNoCompress    PF = "dspatch-nocompress"
	PFDSPatchSingleTrigger PF = "dspatch-singletrigger"
)

// AllStandalone lists the standalone prefetchers the paper compares.
var AllStandalone = []PF{PFBOP, PFSMS, PFSPP, PFDSPatch}

// AllPFs lists every selectable L2 prefetcher configuration, PFNone first.
var AllPFs = []PF{
	PFNone, PFBOP, PFEBOP, PFSMS, PFSPP, PFESPP, PFAMPM, PFStreamer,
	PFDSPatch, PFDSPatchSPP, PFBOPSPP, PFSMS256SPP, PFEBOPSPP, PFTriple,
	PFDSPatchAlwaysCov, PFDSPatchModCov, PFDSPatchNoCompress, PFDSPatchSingleTrigger,
}

// KnownPF reports whether p selects a buildable prefetcher configuration
// ("" is accepted as PFNone). Untrusted inputs — the dspatchd API — must be
// checked with it before reaching Run, whose factory panics on unknown
// selections.
func KnownPF(p PF) bool {
	if p == "" {
		return true
	}
	for _, q := range AllPFs {
		if p == q {
			return true
		}
	}
	return false
}

// factory builds the per-core constructor for the selected prefetcher.
func factory(opt Options) func() prefetch.Prefetcher {
	if opt.L2 == PFNone || opt.L2 == "" {
		return nil
	}
	// ref propagates the differential-test switch: every model built for
	// this run uses either its optimized lookup structures or the
	// pre-optimization reference bookkeeping they were proven against.
	ref := opt.referenceModels
	mkCore := func(cfg core.Config) func() prefetch.Prefetcher {
		cfg.Reference = ref
		return func() prefetch.Prefetcher { return core.New(cfg) }
	}
	mkSPP := func(cfg spp.Config) func() prefetch.Prefetcher {
		cfg.Reference = ref
		return func() prefetch.Prefetcher { return spp.New(cfg) }
	}
	mkSMS := func(cfg sms.Config) func() prefetch.Prefetcher {
		cfg.Reference = ref
		return func() prefetch.Prefetcher { return sms.New(cfg) }
	}
	mk := func(kind PF) func() prefetch.Prefetcher {
		switch kind {
		case PFBOP:
			return func() prefetch.Prefetcher { return bop.New(bop.DefaultConfig()) }
		case PFEBOP:
			return func() prefetch.Prefetcher { return bop.New(bop.EnhancedConfig()) }
		case PFSMS:
			cfg := sms.DefaultConfig()
			if opt.SMSPHTEntries > 0 {
				cfg = cfg.WithPHTEntries(opt.SMSPHTEntries)
			}
			return mkSMS(cfg)
		case PFSPP:
			return mkSPP(spp.DefaultConfig())
		case PFESPP:
			return mkSPP(spp.EnhancedConfig())
		case PFAMPM:
			cfg := ampm.DefaultConfig()
			cfg.Reference = ref
			return func() prefetch.Prefetcher { return ampm.New(cfg) }
		case PFStreamer:
			return func() prefetch.Prefetcher { return prefetch.NewStream(prefetch.DefaultStreamConfig()) }
		case PFDSPatch:
			return mkCore(core.DefaultConfig())
		case PFDSPatchAlwaysCov:
			cfg := core.DefaultConfig()
			cfg.Mode = core.ModeAlwaysCovP
			return mkCore(cfg)
		case PFDSPatchModCov:
			cfg := core.DefaultConfig()
			cfg.Mode = core.ModeModCovP
			return mkCore(cfg)
		case PFDSPatchNoCompress:
			cfg := core.DefaultConfig()
			cfg.Compress = false
			return mkCore(cfg)
		case PFDSPatchSingleTrigger:
			cfg := core.DefaultConfig()
			cfg.DualTrigger = false
			return mkCore(cfg)
		default:
			panic("sim: unknown prefetcher " + string(kind))
		}
	}
	switch opt.L2 {
	case PFDSPatchSPP:
		// SPP first: the adjunct's (often larger) candidate bursts must not
		// crowd the primary prefetcher out of the per-train issue budget.
		return func() prefetch.Prefetcher {
			return prefetch.NewComposite("dspatch+spp", mk(PFSPP)(), mk(PFDSPatch)())
		}
	case PFBOPSPP:
		return func() prefetch.Prefetcher {
			return prefetch.NewComposite("bop+spp", mk(PFSPP)(), mk(PFBOP)())
		}
	case PFSMS256SPP:
		return func() prefetch.Prefetcher {
			return prefetch.NewComposite("sms256+spp",
				mk(PFSPP)(), mkSMS(sms.IsoStorageConfig())())
		}
	case PFEBOPSPP:
		return func() prefetch.Prefetcher {
			return prefetch.NewComposite("ebop+spp", mk(PFSPP)(), mk(PFEBOP)())
		}
	case PFTriple:
		return func() prefetch.Prefetcher {
			return prefetch.NewComposite("dspatch+spp+bop",
				mk(PFSPP)(), mk(PFBOP)(), mk(PFDSPatch)())
		}
	default:
		return mk(opt.L2)
	}
}

// NewPrefetcher constructs a single instance of the named prefetcher (for
// storage accounting and unit experiments).
func NewPrefetcher(kind PF) prefetch.Prefetcher {
	f := factory(Options{L2: kind})
	if f == nil {
		return prefetch.Nop{}
	}
	return f()
}

// FindDSPatch digs a DSPatch instance out of a (possibly composite)
// prefetcher, or returns nil.
func FindDSPatch(p prefetch.Prefetcher) *core.DSPatch {
	switch v := p.(type) {
	case *core.DSPatch:
		return v
	case *prefetch.Composite:
		for _, part := range v.Parts() {
			if d := FindDSPatch(part); d != nil {
				return d
			}
		}
	}
	return nil
}
