package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dspatch/internal/trace"
)

// RunBatch simulates every configuration in opts over the same workload mix
// in one pass: N independent machines (caches, memory systems, prefetchers)
// advance in lockstep chunks over a single replay of the shared trace. The
// trace columns are walked once instead of once per configuration, and
// because the machines never interact, each chunk advances them on parallel
// goroutines — an M-config batch finishes in roughly the wall time of the
// slowest single configuration when cores are free. Results are bit-identical
// to calling Run once per configuration — each machine's own computation
// stays strictly sequential; batching only changes scheduling.
//
// Every option in opts must agree on (Refs, Seed): one trace identity per
// batch. Everything else — prefetcher, LLC size, DRAM geometry, pollution
// tracking — may differ freely between configurations.
func RunBatch(ws []trace.Workload, opts []Options) []Result {
	res, _ := RunBatchCtx(context.Background(), ws, opts)
	return res
}

// RunBatchCtx is RunBatch with a cancellation hook, polled on the same
// cadence as RunCtx. A canceled batch returns one placeholder Result per
// configuration (zero metrics, one IPC slot per workload) and ctx.Err(),
// mirroring RunCtx's cancellation contract for every member.
func RunBatchCtx(ctx context.Context, ws []trace.Workload, opts []Options) ([]Result, error) {
	if len(opts) == 0 {
		return nil, nil
	}
	n := len(ws)
	if n == 0 {
		panic("sim: no workloads")
	}
	for _, o := range opts[1:] {
		if o.Refs != opts[0].Refs || o.Seed != opts[0].Seed {
			panic("sim: RunBatch requires one trace identity (Refs, Seed) per batch")
		}
	}
	if err := ctx.Err(); err != nil {
		return canceledBatch(n, len(opts)), err
	}

	// A single-lane batch replays one literal cursor: each ref is fetched
	// once and fed to every machine. Multi-lane machines interleave their
	// lanes by per-machine core timing, so each machine keeps its own cursors
	// over the shared columns and the batch steps the machines round-robin —
	// still one outer pass, still cache-resident together. directGeneration
	// opts out of cursor sharing entirely (fresh generators per lane).
	shared := n == 1
	for _, o := range opts {
		if o.directGeneration {
			shared = false
		}
	}

	machines := make([]*machine, len(opts))
	for i, o := range opts {
		machines[i] = newMachine(ws, o, !shared)
	}

	done := ctx.Done()
	canceled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	// forEachMachine advances every live machine by one chunk. The machines
	// share nothing mutable (replay cursors are read-only), so chunks advance
	// on up to GOMAXPROCS goroutines with the chunk barrier as the only
	// synchronization. On a single-CPU host no goroutines spawn at all:
	// async preemption would otherwise timeslice the workers mid-chunk and
	// reintroduce exactly the cache interleaving chunking exists to avoid. A
	// panic inside a worker — a mis-sized config, a cursor overrun — is
	// re-raised in the caller's goroutine so recover-based isolation upstream
	// keeps working exactly as it does for serial runs.
	workers := min(runtime.GOMAXPROCS(0), len(machines))
	panics := make([]any, workers)
	forEachMachine := func(step func(m *machine)) {
		if workers == 1 {
			for _, m := range machines {
				if !m.halted {
					step(m)
				}
			}
			return
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w int) {
				defer wg.Done()
				defer func() { panics[w] = recover() }()
				for {
					mi := int(next.Add(1)) - 1
					if mi >= len(machines) {
						return
					}
					if m := machines[mi]; !m.halted {
						step(m)
					}
				}
			}(w)
		}
		wg.Wait()
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}

	if shared {
		// Chunked lockstep: the cursor fills a buffer of refChunk refs (one
		// decode per ref, total), then every machine consumes the whole chunk
		// in parallel. Per-ref round-robin would interleave every machine's
		// cache/prefetcher tables on every reference and thrash the host
		// cache; chunking keeps each machine's state hot across its slice
		// while the buffer itself stays cache-resident.
		refs := opts[0].Refs
		cur := trace.Replay(ws[0], LaneSeed(opts[0].Seed, 0), refs)
		buf := make([]trace.Ref, min(refChunk, refs))
		var aborted atomic.Bool
		for base := 0; base < refs; base += refChunk {
			if canceled() {
				return canceledBatch(n, len(opts)), ctx.Err()
			}
			chunk := buf[:min(refChunk, refs-base)]
			for i := range chunk {
				cur.Next(&chunk[i])
			}
			forEachMachine(func(m *machine) {
				l := m.lanes[0]
				for i := range chunk {
					// Same polling cadence as RunCtx: a chunk of a large
					// batch is whole tenths of a second of work, too long to
					// ignore cancellation for.
					if i&cancelCheckMask == cancelCheckMask && canceled() {
						aborted.Store(true)
						return
					}
					m.apply(l, &chunk[i])
				}
			})
			if aborted.Load() {
				return canceledBatch(n, len(opts)), ctx.Err()
			}
		}
	} else {
		// Per-machine cursors advance in refChunk-sized timeslices. halted is
		// written inside the worker and read after the chunk barrier, which
		// orders the accesses.
		var aborted atomic.Bool
		live := len(machines)
		for live > 0 {
			if canceled() {
				return canceledBatch(n, len(opts)), ctx.Err()
			}
			forEachMachine(func(m *machine) {
				var ref trace.Ref
				for s := 0; s < refChunk; s++ {
					if s&cancelCheckMask == cancelCheckMask && canceled() {
						aborted.Store(true)
						return
					}
					if !m.step(&ref) {
						m.halted = true
						break
					}
				}
			})
			if aborted.Load() {
				return canceledBatch(n, len(opts)), ctx.Err()
			}
			live = 0
			for _, m := range machines {
				if !m.halted {
					live++
				}
			}
		}
	}

	out := make([]Result, len(machines))
	for i, m := range machines {
		out[i] = m.finish()
	}
	return out, nil
}

// refChunk is the lockstep granularity: how many refs one machine advances
// before the batch moves to the next. Large slices amortize the reload of a
// machine's simulated cache metadata (around a megabyte per config) across
// many references — fine-grained interleaving measurably thrashes the host
// cache — while the ref buffer itself is read strictly sequentially, so its
// size barely matters. Cancellation stays responsive regardless: workers
// poll inside the slice on RunCtx's cadence.
const refChunk = 65536

// canceledBatch builds the placeholder results of an aborted batch: zero
// metrics with one IPC slot per workload, the same shape RunCtx returns on
// cancellation.
func canceledBatch(lanes, n int) []Result {
	out := make([]Result, n)
	for i := range out {
		out[i] = Result{IPC: make([]float64, lanes)}
	}
	return out
}
