package sim

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dspatch/internal/cache"
	"dspatch/internal/dram"
	"dspatch/internal/memsys"
	"dspatch/internal/trace"
)

// resultSnapshot flattens everything observable about a run — the Result
// fields plus every per-port stats counter — into a comparable value, so the
// differential tests can assert bit-identity without chasing live pointers.
type resultSnapshot struct {
	IPC              []float64
	Cycles           uint64
	Coverage         float64
	MispredRate      float64
	Accuracy         float64
	AvgBandwidthGBps float64
	Pollution        [3]float64

	PortStats  []memsys.CoverageStats
	Useful     []uint64
	Unused     []uint64
	L1Stats    []cache.Stats
	L2Stats    []cache.Stats
	LLCStats   cache.Stats
	DSPatchHit []uint64 // DSPatch Triggers counter per port, when present
}

func snapshot(r Result) resultSnapshot {
	s := resultSnapshot{
		IPC:              r.IPC,
		Cycles:           r.Cycles,
		Coverage:         r.Coverage,
		MispredRate:      r.MispredRate,
		Accuracy:         r.Accuracy,
		AvgBandwidthGBps: r.AvgBandwidthGBps,
		Pollution:        r.Pollution,
	}
	for i, p := range r.Ports() {
		s.PortStats = append(s.PortStats, p.Stats())
		s.Useful = append(s.Useful, p.UsefulPrefetches())
		s.Unused = append(s.Unused, p.UnusedPrefetches())
		s.L1Stats = append(s.L1Stats, p.L1().Stats())
		s.L2Stats = append(s.L2Stats, p.L2().Stats())
		if i == 0 {
			// The LLC is shared; record it once.
			s.LLCStats = p.SharedLLC().Stats()
		}
		if d := FindDSPatch(p.L2Prefetcher()); d != nil {
			s.DSPatchHit = append(s.DSPatchHit, d.Stats().Triggers)
		}
	}
	return s
}

// runBoth simulates the same job twice — once fully optimized (open-addressed
// memory-system structures, hashed prefetcher-model lookups, replayed
// materialized traces) and once fully in reference mode (map-based in-flight
// tracking, linear MSHR and model scans, per-probe divisions, fresh
// generators) — and returns both snapshots.
func runBoth(ws []trace.Workload, opt Options) (optimized, reference resultSnapshot) {
	opt.referenceMemsys, opt.referenceModels, opt.directGeneration = false, false, false
	optimized = snapshot(Run(ws, opt))
	opt.referenceMemsys, opt.referenceModels, opt.directGeneration = true, true, true
	reference = snapshot(Run(ws, opt))
	return optimized, reference
}

// TestEquivalenceSingleThread is the tentpole's differential acceptance
// test: for one workload of every category on the paper's single-thread
// machine, the open-addressed in-flight table and the O(1) MSHR ring produce
// a bit-identical Result — every field, every stats counter — versus the
// structures they replaced.
func TestEquivalenceSingleThread(t *testing.T) {
	for _, cat := range trace.Categories {
		ws := trace.ByCategory(cat)
		if len(ws) == 0 {
			t.Fatalf("category %s has no workloads", cat)
		}
		w := ws[0]
		for _, pf := range []PF{PFDSPatchSPP, PFESPP} {
			opt := DefaultST()
			opt.Refs = 6_000
			opt.L2 = pf
			got, want := runBoth([]trace.Workload{w}, opt)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s/%s: optimized result differs from reference\noptimized: %+v\nreference: %+v",
					cat, w.Name, pf, got, want)
			}
		}
	}
}

// TestEquivalenceMultiProgrammed repeats the differential check on the
// 4-core DefaultMP machine, where ports contend for the shared LLC and DRAM.
func TestEquivalenceMultiProgrammed(t *testing.T) {
	mix1 := []trace.Workload{
		trace.ByCategory(trace.Client)[0],
		trace.ByCategory(trace.HPC)[0],
		trace.ByCategory(trace.ISPEC06)[0],
		trace.ByCategory(trace.Cloud)[0],
	}
	mix2 := []trace.Workload{
		trace.ByCategory(trace.Server)[0],
		trace.ByCategory(trace.FSPEC06)[0],
		trace.ByCategory(trace.FSPEC17)[0],
		trace.ByCategory(trace.SYSmark)[0],
	}
	for i, mix := range [][]trace.Workload{mix1, mix2} {
		for _, pf := range []PF{PFDSPatchSPP, PFSPP} {
			opt := DefaultMP()
			opt.Refs = 4_000
			opt.L2 = pf
			got, want := runBoth(mix, opt)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("mix%d/%s: optimized MP result differs from reference\noptimized: %+v\nreference: %+v",
					i+1, pf, got, want)
			}
		}
	}
}

// TestEquivalenceModelRoster extends the differential check to every
// prefetcher model whose lookup structures this PR rewrote — SMS's AT/FT
// indexes, AMPM's map index, BOP, and the triple composite — on workloads
// picked to stress each model's structures (footprint-heavy, streaming,
// pointer-chasing).
func TestEquivalenceModelRoster(t *testing.T) {
	names := []string{"tpcc", "linpack", "mcf"}
	for _, name := range names {
		w, ok := trace.ByName(name)
		if !ok {
			t.Fatalf("roster is missing %s", name)
		}
		for _, pf := range []PF{PFSMS, PFAMPM, PFBOP, PFSMS256SPP, PFTriple} {
			opt := DefaultST()
			opt.Refs = 6_000
			opt.L2 = pf
			got, want := runBoth([]trace.Workload{w}, opt)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: optimized result differs from reference\noptimized: %+v\nreference: %+v",
					name, pf, got, want)
			}
		}
	}
}

// batchRoster builds a deterministic pseudo-random roster of heterogeneous
// configurations sharing one trace identity (refs, seed): mixed prefetchers,
// LLC sizes, DRAM geometries, with the L1 stride toggle and pollution
// tracking sprinkled in. The rand seed is fixed so failures reproduce.
func batchRoster(rng *rand.Rand, base Options, k int) []Options {
	pfs := []PF{PFNone, PFBOP, PFSMS, PFSPP, PFAMPM, PFDSPatch, PFDSPatchSPP, PFSMS256SPP, PFTriple}
	llcs := []int{1 << 20, 2 << 20, 4 << 20}
	drams := []dram.Config{dram.DDR4(1, 2133), dram.DDR4(1, 1600), dram.DDR4(2, 2400)}
	opts := make([]Options, k)
	for i := range opts {
		o := base
		o.L2 = pfs[rng.Intn(len(pfs))]
		o.LLCBytes = llcs[rng.Intn(len(llcs))]
		o.DRAM = drams[rng.Intn(len(drams))]
		o.NoL1Stride = rng.Intn(4) == 0
		o.TrackPollution = rng.Intn(4) == 0
		opts[i] = o
	}
	return opts
}

// assertBatchMatchesSerial runs the roster once through RunBatch and once
// config-at-a-time through Run, asserting bit-identical snapshots — every
// Result field and every per-port stats counter.
func assertBatchMatchesSerial(t *testing.T, label string, ws []trace.Workload, opts []Options) {
	t.Helper()
	batch := RunBatch(ws, opts)
	if len(batch) != len(opts) {
		t.Fatalf("%s: RunBatch returned %d results for %d configs", label, len(batch), len(opts))
	}
	for i, o := range opts {
		got := snapshot(batch[i])
		want := snapshot(Run(ws, o))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: config %d (%s, llc=%d, dram=%+v, noL1=%v, poll=%v): batch result differs from serial\nbatch:  %+v\nserial: %+v",
				label, i, o.L2, o.LLCBytes, o.DRAM, o.NoL1Stride, o.TrackPollution, got, want)
		}
	}
}

// TestBatchEquivalenceSingleThread is the batching tentpole's acceptance
// test: for one workload of every category, a randomized heterogeneous batch
// of configurations advanced in lockstep over one shared cursor produces
// results bit-identical to one-at-a-time serial runs.
func TestBatchEquivalenceSingleThread(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for _, cat := range trace.Categories {
		ws := trace.ByCategory(cat)
		if len(ws) == 0 {
			t.Fatalf("category %s has no workloads", cat)
		}
		base := DefaultST()
		base.Refs = 5_000
		opts := batchRoster(rng, base, 4+rng.Intn(3))
		assertBatchMatchesSerial(t, string(cat), []trace.Workload{ws[0]}, opts)
	}
}

// TestBatchEquivalenceMultiProgrammed repeats the batch-vs-serial check on
// 4-core mixes, where each machine interleaves its own lanes by core timing
// and the batch must keep per-machine cursors rather than one shared one.
func TestBatchEquivalenceMultiProgrammed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mix := []trace.Workload{
		trace.ByCategory(trace.Client)[0],
		trace.ByCategory(trace.HPC)[0],
		trace.ByCategory(trace.ISPEC06)[0],
		trace.ByCategory(trace.Cloud)[0],
	}
	base := DefaultMP()
	base.Refs = 3_000
	opts := batchRoster(rng, base, 3)
	assertBatchMatchesSerial(t, "mp-mix", mix, opts)
}

// TestBatchEquivalenceSeeds covers non-default seeds and the degenerate
// one-config batch (which must behave exactly like a serial run).
func TestBatchEquivalenceSeeds(t *testing.T) {
	w, _ := trace.ByName("mcf")
	for _, seed := range []int64{1, 7, 12345} {
		base := DefaultST()
		base.Refs = 4_000
		base.Seed = seed
		opts := []Options{base}
		one := base
		one.L2 = PFDSPatchSPP
		opts = append(opts, one)
		assertBatchMatchesSerial(t, fmt.Sprintf("seed=%d", seed), []trace.Workload{w}, opts)
		assertBatchMatchesSerial(t, fmt.Sprintf("seed=%d/single", seed), []trace.Workload{w}, opts[:1])
	}
}

// TestBatchMismatchedIdentityPanics pins the batch contract: every member
// must share (Refs, Seed).
func TestBatchMismatchedIdentityPanics(t *testing.T) {
	w, _ := trace.ByName("mcf")
	a := DefaultST()
	a.Refs = 1_000
	b := a
	b.Refs = 2_000
	defer func() {
		if recover() == nil {
			t.Fatal("RunBatch accepted mismatched Refs")
		}
	}()
	RunBatch([]trace.Workload{w}, []Options{a, b})
}

// TestRunBatchCtxCanceled pins the cancellation shape: one placeholder per
// config, each with one IPC slot per workload.
func TestRunBatchCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mix := []trace.Workload{
		trace.ByCategory(trace.Client)[0],
		trace.ByCategory(trace.HPC)[0],
		trace.ByCategory(trace.ISPEC06)[0],
		trace.ByCategory(trace.Cloud)[0],
	}
	opt := DefaultMP()
	opt.Refs = 2_000_000 // placeholders must come back without simulating
	res, err := RunBatchCtx(ctx, mix, []Options{opt, opt})
	if err == nil {
		t.Fatal("canceled batch returned nil error")
	}
	if len(res) != 2 {
		t.Fatalf("canceled batch returned %d results, want 2", len(res))
	}
	for i, r := range res {
		if len(r.IPC) != len(mix) {
			t.Errorf("result %d: %d IPC slots, want %d", i, len(r.IPC), len(mix))
		}
	}
}

// TestEquivalenceBaseline covers the no-L2-prefetcher path (stride L1 only),
// which every figure's baseline runs through.
func TestEquivalenceBaseline(t *testing.T) {
	for _, cat := range trace.Categories {
		w := trace.ByCategory(cat)[0]
		opt := DefaultST()
		opt.Refs = 6_000
		opt.L2 = PFNone
		got, want := runBoth([]trace.Workload{w}, opt)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s/%s: optimized baseline differs from reference", cat, w.Name)
		}
	}
}
