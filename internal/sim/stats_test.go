package sim

import (
	"math"
	"reflect"
	"testing"

	"dspatch/internal/trace"
)

// bitsEq compares floats bit-for-bit (NaN == NaN), the equality the
// differential below needs: identical computations must produce identical
// bit patterns, whatever the value.
func bitsEq(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func bitsEqSlice(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bitsEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// coreMetricsEqual compares everything in a Result except the telemetry
// sections the CollectStats flag controls.
func coreMetricsEqual(a, b Result) bool {
	return bitsEqSlice(a.IPC, b.IPC) &&
		a.Cycles == b.Cycles &&
		bitsEq(a.Coverage, b.Coverage) &&
		bitsEq(a.MispredRate, b.MispredRate) &&
		bitsEq(a.Accuracy, b.Accuracy) &&
		bitsEq(a.AvgBandwidthGBps, b.AvgBandwidthGBps) &&
		bitsEq(a.PeakBandwidth, b.PeakBandwidth) &&
		bitsEq(a.Pollution[0], b.Pollution[0]) &&
		bitsEq(a.Pollution[1], b.Pollution[1]) &&
		bitsEq(a.Pollution[2], b.Pollution[2]) &&
		reflect.DeepEqual(a.PortStats, b.PortStats)
}

// TestCollectStatsDifferential is the observer-effect guard: turning
// CollectStats on must change nothing but the Prefetchers section — every
// core metric stays bit-identical, in the optimized configuration, the
// Reference (pre-optimization) one, and a multi-lane mix. The models'
// counters are always on; the flag only snapshots them, so any divergence
// here means collection leaked into simulation behaviour.
func TestCollectStatsDifferential(t *testing.T) {
	tpcc, ok := trace.ByName("tpcc")
	if !ok {
		t.Fatal("workload roster is missing tpcc")
	}
	mcf, ok := trace.ByName("mcf")
	if !ok {
		t.Fatal("workload roster is missing mcf")
	}

	st := DefaultST()
	st.Refs = 3_000
	st.L2 = PFDSPatchSPP

	ref := st
	ref.referenceMemsys = true
	ref.referenceModels = true
	ref.directGeneration = true

	mp := DefaultMP()
	mp.Refs = 2_000
	mp.L2 = PFDSPatch

	cases := []struct {
		name string
		ws   []trace.Workload
		opt  Options
	}{
		{"optimized", []trace.Workload{tpcc}, st},
		{"reference", []trace.Workload{tpcc}, ref},
		{"multilane", []trace.Workload{tpcc, mcf}, mp},
	}
	for _, tc := range cases {
		off := Run(tc.ws, tc.opt)
		withStats := tc.opt
		withStats.CollectStats = true
		on := Run(tc.ws, withStats)

		if len(off.Prefetchers) != 0 {
			t.Errorf("%s: stats-off run carries %d Prefetchers entries, want none", tc.name, len(off.Prefetchers))
		}
		if len(on.Prefetchers) == 0 {
			t.Errorf("%s: stats-on run collected no telemetry", tc.name)
		}
		if !coreMetricsEqual(off, on) {
			t.Errorf("%s: CollectStats changed core metrics\noff: %+v\non:  %+v", tc.name, off, on)
		}
	}
}

// TestCollectStatsMergesLanes pins the lane-merge contract: a multi-lane run
// under one prefetcher reports one merged entry per model name, not one per
// lane, and the merged trigger counts cover every lane's work.
func TestCollectStatsMergesLanes(t *testing.T) {
	tpcc, _ := trace.ByName("tpcc")
	mcf, _ := trace.ByName("mcf")
	opt := DefaultMP()
	opt.Refs = 2_000
	opt.L2 = PFDSPatch
	opt.CollectStats = true

	res := Run([]trace.Workload{tpcc, mcf}, opt)
	names := map[string]int{}
	for _, st := range res.Prefetchers {
		names[st.Name]++
	}
	for name, n := range names {
		if n != 1 {
			t.Errorf("model %q appears %d times; lanes must merge by name", name, n)
		}
	}
	if names["dspatch"] != 1 {
		t.Errorf("expected a merged dspatch entry, got models %v", names)
	}

	// The merged entry must aggregate both lanes: strictly more trains than
	// a single lane could contribute alone (each lane trains on its misses).
	single := Run([]trace.Workload{tpcc}, func() Options {
		o := DefaultST()
		o.Refs = 2_000
		o.L2 = PFDSPatch
		o.CollectStats = true
		return o
	}())
	var mergedTrains, singleTrains uint64
	for _, st := range res.Prefetchers {
		if st.Name == "dspatch" {
			mergedTrains = st.Counters["triggers"]
		}
	}
	for _, st := range single.Prefetchers {
		if st.Name == "dspatch" {
			singleTrains = st.Counters["triggers"]
		}
	}
	if mergedTrains == 0 || singleTrains == 0 {
		t.Fatalf("trigger counters missing (merged %d, single %d)", mergedTrains, singleTrains)
	}
}
