package sim

import (
	"testing"

	"dspatch/internal/trace"
)

// fastOpts shrinks runs so the test suite stays quick.
func fastOpts() Options {
	o := DefaultST()
	o.Refs = 30_000
	return o
}

func wl(name string) trace.Workload {
	w, ok := trace.ByName(name)
	if !ok {
		panic("unknown workload " + name)
	}
	return w
}

func TestBaselineRuns(t *testing.T) {
	r := RunSingle(wl("linpack"), fastOpts())
	if len(r.IPC) != 1 || r.IPC[0] <= 0 {
		t.Fatalf("IPC = %v", r.IPC)
	}
	if r.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	if r.AvgBandwidthGBps <= 0 || r.AvgBandwidthGBps > r.PeakBandwidth {
		t.Errorf("bandwidth %v outside (0, %v]", r.AvgBandwidthGBps, r.PeakBandwidth)
	}
}

func TestDeterminism(t *testing.T) {
	a := RunSingle(wl("mcf"), fastOpts())
	b := RunSingle(wl("mcf"), fastOpts())
	if a.IPC[0] != b.IPC[0] || a.Cycles != b.Cycles {
		t.Errorf("same options diverged: %v vs %v", a.IPC, b.IPC)
	}
}

func TestSPPBeatsBaselineOnStream(t *testing.T) {
	opt := fastOpts()
	base := RunSingle(wl("linpack"), opt)
	opt.L2 = PFSPP
	with := RunSingle(wl("linpack"), opt)
	sp := Speedup(base, with)[0]
	if sp < 1.02 {
		t.Errorf("SPP speedup on streaming = %.3f, want > 1.02", sp)
	}
	if with.Coverage <= 0.2 {
		t.Errorf("SPP coverage on streaming = %.2f, want substantial", with.Coverage)
	}
}

func TestDSPatchBeatsBaselineOnSpatial(t *testing.T) {
	opt := fastOpts()
	base := RunSingle(wl("sysmark-excel"), opt)
	opt.L2 = PFDSPatch
	with := RunSingle(wl("sysmark-excel"), opt)
	sp := Speedup(base, with)[0]
	if sp < 1.005 {
		t.Errorf("DSPatch speedup on spatial workload = %.3f, want > 1.005", sp)
	}
}

func TestAdjunctAtLeastAsGoodAsSPPAlone(t *testing.T) {
	opt := fastOpts()
	w := wl("npb-cg")
	base := RunSingle(w, opt)
	opt.L2 = PFSPP
	sppOnly := Speedup(base, RunSingle(w, opt))[0]
	opt.L2 = PFDSPatchSPP
	both := Speedup(base, RunSingle(w, opt))[0]
	if both < sppOnly-0.02 {
		t.Errorf("DSPatch+SPP (%.3f) clearly worse than SPP (%.3f) on npb-cg", both, sppOnly)
	}
}

func TestEveryPrefetcherRuns(t *testing.T) {
	kinds := []PF{PFBOP, PFEBOP, PFSMS, PFSPP, PFESPP, PFAMPM, PFStreamer, PFDSPatch,
		PFDSPatchSPP, PFBOPSPP, PFSMS256SPP, PFEBOPSPP, PFTriple,
		PFDSPatchAlwaysCov, PFDSPatchModCov, PFDSPatchNoCompress, PFDSPatchSingleTrigger}
	opt := fastOpts()
	opt.Refs = 5_000
	for _, k := range kinds {
		opt.L2 = k
		r := RunSingle(wl("gcc06"), opt)
		if r.IPC[0] <= 0 {
			t.Errorf("%s: IPC %v", k, r.IPC)
		}
	}
}

func TestMultiProgrammedRun(t *testing.T) {
	opt := DefaultMP()
	opt.Refs = 10_000
	ws := []trace.Workload{wl("mcf"), wl("lbm17"), wl("tpcc"), wl("linpack")}
	r := Run(ws, opt)
	if len(r.IPC) != 4 {
		t.Fatalf("IPC count = %d", len(r.IPC))
	}
	for i, ipc := range r.IPC {
		if ipc <= 0 {
			t.Errorf("core %d IPC %v", i, ipc)
		}
	}
}

func TestContentionSlowsCores(t *testing.T) {
	// Four copies of a bandwidth-hungry workload on shared DRAM must run
	// slower per core than the same workload alone on the same hardware.
	opt := DefaultMP()
	opt.Refs = 20_000
	w := wl("lbm17")
	alone := Run([]trace.Workload{w}, opt)
	four := Run([]trace.Workload{w, w, w, w}, opt)
	if four.IPC[0] >= alone.IPC[0] {
		t.Errorf("4-copy IPC %.3f should trail solo IPC %.3f", four.IPC[0], alone.IPC[0])
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := Result{IPC: []float64{1, 2}}
	b := Result{IPC: []float64{2, 3}}
	sp := Speedup(a, b)
	if sp[0] != 2 || sp[1] != 1.5 {
		t.Errorf("Speedup = %v", sp)
	}
}

func TestPollutionTracking(t *testing.T) {
	opt := fastOpts()
	opt.L2 = PFStreamer
	opt.TrackPollution = true
	r := RunSingle(wl("mcf"), opt)
	total := r.Pollution[0] + r.Pollution[1] + r.Pollution[2]
	if total < 0.99 || total > 1.01 {
		t.Errorf("pollution fractions sum to %v", total)
	}
}

func TestFindDSPatch(t *testing.T) {
	if FindDSPatch(NewPrefetcher(PFDSPatch)) == nil {
		t.Error("should find standalone DSPatch")
	}
	if FindDSPatch(NewPrefetcher(PFDSPatchSPP)) == nil {
		t.Error("should find DSPatch inside a composite")
	}
	if FindDSPatch(NewPrefetcher(PFSPP)) != nil {
		t.Error("should not find DSPatch in SPP")
	}
}

func TestStorageRoster(t *testing.T) {
	// Paper Table 3 ballparks.
	checks := []struct {
		kind PF
		loKB float64
		hiKB float64
	}{
		{PFBOP, 0.8, 2},
		{PFSMS, 60, 120},
		{PFSPP, 3, 8},
		{PFDSPatch, 3, 3.7},
	}
	for _, c := range checks {
		kb := float64(NewPrefetcher(c.kind).StorageBits()) / 8192
		if kb < c.loKB || kb > c.hiKB {
			t.Errorf("%s storage = %.2fKB, want [%v, %v]", c.kind, kb, c.loKB, c.hiKB)
		}
	}
}
