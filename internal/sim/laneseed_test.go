package sim

import "testing"

// TestLaneSeedZeroLaneIdentity pins the contract single-thread callers and
// every existing cache entry rely on: lane 0 streams from the base seed
// itself.
func TestLaneSeedZeroLaneIdentity(t *testing.T) {
	for _, base := range []int64{0, 1, 42, -7, 1 << 40} {
		if got := LaneSeed(base, 0); got != base {
			t.Errorf("LaneSeed(%d, 0) = %d, want %d", base, got, base)
		}
	}
}

// TestLaneSeedNoLinearAlias is the regression test for the old derivation
// base + lane*104729: under it, (base, lane 1) and (base+104729, lane 0)
// shared one (workload, seed) replay stream, so a campaign sweeping base
// seeds silently aliased lanes. The mixer must keep those pairs apart.
func TestLaneSeedNoLinearAlias(t *testing.T) {
	const oldStride = 104729
	for _, base := range []int64{1, 2, 1000} {
		for lane := 1; lane < 8; lane++ {
			a := LaneSeed(base, lane)
			b := LaneSeed(base+int64(lane)*oldStride, 0)
			if a == b {
				t.Errorf("LaneSeed(%d, %d) aliases LaneSeed(%d, 0) = %d", base, lane, base+int64(lane)*oldStride, a)
			}
		}
	}
}

// TestLaneSeedGridDistinct sweeps a base-seed grid wider than any campaign
// axis and asserts every (base, lane) pair maps to a distinct stream seed.
func TestLaneSeedGridDistinct(t *testing.T) {
	seen := map[int64][2]int64{}
	for base := int64(1); base <= 512; base++ {
		for lane := 0; lane < 8; lane++ {
			s := LaneSeed(base, lane)
			if prev, ok := seen[s]; ok {
				t.Fatalf("LaneSeed(%d, %d) = %d collides with LaneSeed(%d, %d)",
					base, lane, s, prev[0], prev[1])
			}
			seen[s] = [2]int64{base, int64(lane)}
		}
	}
}
