package bop

import (
	"testing"

	"dspatch/internal/bitpattern"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
)

func miss(line uint64) prefetch.Access {
	return prefetch.Access{Line: memaddr.Line(line), Hit: false}
}

func TestOffsetListSymmetric(t *testing.T) {
	pos, neg := 0, 0
	for _, d := range offsetList {
		if d > 0 {
			pos++
		} else if d < 0 {
			neg++
		} else {
			t.Fatal("offset 0 in list")
		}
		if d > 63 || d < -63 {
			t.Errorf("offset %d outside the ±63 in-page range", d)
		}
	}
	if pos != neg {
		t.Errorf("offset list asymmetric: %d positive, %d negative", pos, neg)
	}
}

func TestLearnsGlobalDelta(t *testing.T) {
	b := New(DefaultConfig())
	// Local deltas 1,2,1,2... within a page: BOP should discover the global
	// delta 3 (or a multiple).
	line := uint64(0)
	var out []prefetch.Request
	for i := 0; i < 20000; i++ {
		if i%2 == 0 {
			line++
		} else {
			line += 2
		}
		if memaddr.Line(line).PageOffset() > 60 {
			line = uint64((memaddr.Line(line).Page() + 1)) * memaddr.LinesPage
		}
		out = b.Train(miss(line), nil, nil)
	}
	best := b.BestOffset()
	if best == 0 || best%3 != 0 {
		t.Errorf("best offset = %d, want a multiple of 3", best)
	}
	if len(out) == 0 {
		t.Error("converged BOP should prefetch")
	}
}

func TestDegree(t *testing.T) {
	b := New(DefaultConfig()) // degree 2
	// Unit stride: learn offset.
	for i := 0; i < 20000; i++ {
		b.Train(miss(uint64(i%60)+uint64(i/60)*memaddr.LinesPage), nil, nil)
	}
	if b.BestOffset() == 0 {
		t.Fatal("did not converge on a stream")
	}
	out := b.Train(miss(500*memaddr.LinesPage), nil, nil)
	if len(out) > 2 {
		t.Errorf("degree-2 BOP issued %d prefetches", len(out))
	}
}

func TestEBOPDegreeAdapts(t *testing.T) {
	b := New(EnhancedConfig())
	tests := []struct {
		util bitpattern.Quartile
		want int
	}{
		{bitpattern.Q0, 4},
		{bitpattern.Q1, 4},
		{bitpattern.Q2, 2},
		{bitpattern.Q3, 1},
	}
	for _, tt := range tests {
		if got := b.degree(prefetch.StaticContext{Util: tt.util}); got != tt.want {
			t.Errorf("degree at %v = %d, want %d", tt.util, got, tt.want)
		}
	}
	// Plain BOP never adapts.
	p := New(DefaultConfig())
	if got := p.degree(prefetch.StaticContext{Util: bitpattern.Q0}); got != 2 {
		t.Errorf("plain BOP degree = %d, want 2", got)
	}
}

func TestNoPrefetchingWithBadScore(t *testing.T) {
	b := New(DefaultConfig())
	// Random-ish accesses with no consistent offset: after MaxRound the best
	// score should be <= BadScore and prefetching disabled.
	x := uint64(1)
	for i := 0; i < 30000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		b.Train(miss(x%(1<<30)), nil, nil)
	}
	if b.BestOffset() != 0 && b.bestScore <= b.cfg.BadScore {
		t.Errorf("prefetching active with bad score %d", b.bestScore)
	}
}

func TestHitsDontTrainUnlessPrefetched(t *testing.T) {
	b := New(DefaultConfig())
	out := b.Train(prefetch.Access{Line: 5, Hit: true}, nil, nil)
	if len(out) != 0 {
		t.Error("plain hits must not train BOP")
	}
	// Prefetched hits do train.
	for i := 0; i < 20000; i++ {
		b.Train(prefetch.Access{Line: memaddr.Line(i % 60), Hit: true, HitPrefetched: true}, nil, nil)
	}
	if b.round == 0 && b.testIdx == 0 && b.BestOffset() == 0 {
		t.Error("prefetched hits should advance learning")
	}
}

func TestStaysInPage(t *testing.T) {
	b := New(DefaultConfig())
	for i := 0; i < 20000; i++ {
		b.Train(miss(uint64(i%60)+uint64(i/60)*memaddr.LinesPage), nil, nil)
	}
	out := b.Train(miss(700*memaddr.LinesPage+62), nil, nil)
	for _, r := range out {
		if r.Line.Page() != 700 {
			t.Errorf("prefetch %d escaped page 700", r.Line)
		}
	}
}

func TestStorageBits(t *testing.T) {
	b := New(DefaultConfig())
	kb := float64(b.StorageBits()) / 8192
	if kb < 0.8 || kb > 2.0 {
		t.Errorf("BOP storage = %.2fKB, want ≈1.3KB", kb)
	}
}

func TestNames(t *testing.T) {
	if New(DefaultConfig()).Name() != "bop" || New(EnhancedConfig()).Name() != "ebop" {
		t.Error("wrong names")
	}
}
