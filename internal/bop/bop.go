// Package bop implements the Best Offset Prefetcher (Michaud, HPCA 2016
// [62]) with the configuration the DSPatch paper evaluates (Table 3):
// 256-entry recent-requests table, MaxRound=100, MaxScore=31, BadScore=1,
// prefetch degree 2 (single-thread) or 1 (multi-programmed).
//
// BOP learns a single best "global" delta: in each learning round every
// tested offset d scores a point when an access to line X finds X-d in the
// recent-requests (RR) table — i.e. a prefetch at offset d issued on X-d
// would have covered X. The eBOP variant (DSPatch paper §2.2) raises the
// prefetch degree to 2 and 4 when at least 25% and 50% of the DRAM bandwidth
// is unused.
package bop

import (
	"dspatch/internal/bitpattern"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
	"dspatch/internal/prefstats"
)

// Config sizes BOP.
type Config struct {
	RREntries int
	MaxRound  int
	MaxScore  int
	BadScore  int
	Degree    int
	// Adaptive enables eBOP's bandwidth-aware degree boost.
	Adaptive bool
}

// DefaultConfig returns the paper's single-thread BOP configuration.
func DefaultConfig() Config {
	return Config{RREntries: 256, MaxRound: 100, MaxScore: 31, BadScore: 1, Degree: 2}
}

// EnhancedConfig returns eBOP.
func EnhancedConfig() Config {
	c := DefaultConfig()
	c.Degree = 1
	c.Adaptive = true
	return c
}

// offsetList is the set of candidate global deltas. Within a 4KB page the
// useful range is ±63 lines; following Michaud we test a factored subset in
// both directions.
var offsetList = buildOffsets()

func buildOffsets() []int {
	base := []int{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54, 60, 63}
	out := make([]int, 0, 2*len(base))
	for _, d := range base {
		out = append(out, d, -d)
	}
	return out
}

// BOP is one core's Best Offset prefetcher.
type BOP struct {
	cfg Config

	rr    []memaddr.Line
	rrSet []bool

	scores    []int
	testIdx   int
	round     int
	bestOff   int
	bestScore int
	active    bool // prefetching enabled (best score exceeded BadScore)

	// Telemetry: plain hot-path counters, snapshotted by ReportStats.
	statTrains     uint64    // training events (misses + prefetched hits)
	statAdoptions  uint64    // learning phases ended with an active offset
	statDeactivate uint64    // learning phases ended below BadScore (prefetch off)
	statIssued     uint64    // prefetch requests emitted
	statDegreeHist [5]uint64 // requests emitted per active train: 0..4
}

// New builds a BOP instance.
func New(cfg Config) *BOP {
	if cfg.RREntries&(cfg.RREntries-1) != 0 {
		panic("bop: RR entries must be a power of two")
	}
	return &BOP{
		cfg:    cfg,
		rr:     make([]memaddr.Line, cfg.RREntries),
		rrSet:  make([]bool, cfg.RREntries),
		scores: make([]int, len(offsetList)),
	}
}

// Name implements prefetch.Prefetcher.
func (b *BOP) Name() string {
	if b.cfg.Adaptive {
		return "ebop"
	}
	return "bop"
}

// BestOffset exposes the currently selected global delta (0 while learning
// has not converged or prefetching is off). Used by tests and diagnostics.
func (b *BOP) BestOffset() int {
	if !b.active {
		return 0
	}
	return b.bestOff
}

func (b *BOP) rrInsert(l memaddr.Line) {
	idx := uint64(l) & uint64(b.cfg.RREntries-1)
	b.rr[idx] = l
	b.rrSet[idx] = true
}

func (b *BOP) rrContains(l memaddr.Line) bool {
	idx := uint64(l) & uint64(b.cfg.RREntries-1)
	return b.rrSet[idx] && b.rr[idx] == l
}

// degree returns the active prefetch degree, applying eBOP's bandwidth
// adaptation: headroom > 25% → degree 2, headroom > 50% → degree 4.
func (b *BOP) degree(ctx prefetch.Context) int {
	if !b.cfg.Adaptive || ctx == nil {
		return b.cfg.Degree
	}
	switch ctx.BandwidthUtilization() {
	case bitpattern.Q0, bitpattern.Q1: // utilization < 50% → headroom > 50%
		return 4
	case bitpattern.Q2: // utilization < 75% → headroom > 25%
		return 2
	default:
		return b.cfg.Degree
	}
}

// Train implements prefetch.Prefetcher. BOP trains on L2 misses and on
// demand hits to prefetched lines, per the original proposal.
func (b *BOP) Train(a prefetch.Access, ctx prefetch.Context, dst []prefetch.Request) []prefetch.Request {
	if a.Hit && !a.HitPrefetched {
		return dst
	}
	b.statTrains++
	x := a.Line
	page := x.Page()

	// Learning: test the next offset in the round-robin schedule.
	d := offsetList[b.testIdx]
	cand := int64(x) - int64(d)
	if cand >= 0 && memaddr.Line(cand).Page() == page && b.rrContains(memaddr.Line(cand)) {
		b.scores[b.testIdx]++
		if b.scores[b.testIdx] >= b.cfg.MaxScore {
			b.adopt(b.testIdx)
		}
	}
	b.testIdx++
	if b.testIdx == len(offsetList) {
		b.testIdx = 0
		b.round++
		if b.round >= b.cfg.MaxRound {
			b.adoptBest()
		}
	}

	b.rrInsert(x)

	// Prediction: issue degree prefetches at multiples of the best offset.
	if !b.active || b.bestOff == 0 {
		return dst
	}
	deg := b.degree(ctx)
	emitted := 0
	for i := 1; i <= deg; i++ {
		t := int64(x) + int64(i*b.bestOff)
		if t < 0 || memaddr.Line(t).Page() != page {
			break
		}
		dst = append(dst, prefetch.Request{Line: memaddr.Line(t)})
		emitted++
	}
	b.statIssued += uint64(emitted)
	b.statDegreeHist[emitted]++
	return dst
}

// adopt ends the learning phase immediately because offset i hit MaxScore.
func (b *BOP) adopt(i int) {
	b.statAdoptions++
	b.bestOff = offsetList[i]
	b.bestScore = b.scores[i]
	b.active = true
	b.resetLearning()
}

// adoptBest ends the learning phase after MaxRound rounds.
func (b *BOP) adoptBest() {
	best, bestScore := 0, -1
	for i, s := range b.scores {
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	b.bestScore = bestScore
	if bestScore <= b.cfg.BadScore {
		b.statDeactivate++
		b.active = false
		b.bestOff = 0
	} else {
		b.statAdoptions++
		b.active = true
		b.bestOff = offsetList[best]
	}
	b.resetLearning()
}

func (b *BOP) resetLearning() {
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.testIdx = 0
	b.round = 0
}

// bopDegreeBuckets labels statDegreeHist: eBOP's adaptive degree tops out
// at 4.
var bopDegreeBuckets = []string{"0", "1", "2", "3", "4"}

// ReportStats implements prefetch.StatsReporter.
func (b *BOP) ReportStats() []prefstats.Stats {
	st := prefstats.New(b.Name())
	st.Count("trains", b.statTrains)
	st.Count("adoptions", b.statAdoptions)
	st.Count("deactivations", b.statDeactivate)
	st.Count("issued", b.statIssued)
	st.Hist("prefetch_degree", bopDegreeBuckets, b.statDegreeHist[:])
	return []prefstats.Stats{st}
}

// StorageBits implements prefetch.Prefetcher: RR entries hold a line tag
// (we account 36 bits of line address each, 1.3KB total per Table 3's
// ballpark) plus per-offset 5-bit scores.
func (b *BOP) StorageBits() int {
	return b.cfg.RREntries*36 + len(offsetList)*5 + 16
}
