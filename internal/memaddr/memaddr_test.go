package memaddr

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if LinesPage != 64 {
		t.Errorf("LinesPage = %d, want 64", LinesPage)
	}
	if LinesSeg != 32 {
		t.Errorf("LinesSeg = %d, want 32", LinesSeg)
	}
	if 1<<LineShift != LineBytes {
		t.Errorf("LineShift inconsistent: 1<<%d != %d", LineShift, LineBytes)
	}
	if 1<<PageShift != PageBytes {
		t.Errorf("PageShift inconsistent")
	}
	if 1<<SegShift != SegBytes {
		t.Errorf("SegShift inconsistent")
	}
}

func TestLineOf(t *testing.T) {
	tests := []struct {
		addr Addr
		want Line
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{4095, 63},
		{4096, 64},
		{0xdeadbeef, 0xdeadbeef >> 6},
	}
	for _, tt := range tests {
		if got := LineOf(tt.addr); got != tt.want {
			t.Errorf("LineOf(%#x) = %d, want %d", tt.addr, got, tt.want)
		}
	}
}

func TestPageOf(t *testing.T) {
	tests := []struct {
		addr Addr
		want Page
	}{
		{0, 0},
		{4095, 0},
		{4096, 1},
		{0x12345678, 0x12345},
	}
	for _, tt := range tests {
		if got := PageOf(tt.addr); got != tt.want {
			t.Errorf("PageOf(%#x) = %d, want %d", tt.addr, got, tt.want)
		}
	}
}

func TestLineOffsets(t *testing.T) {
	// Line 0 of a page: offset 0, segment 0. Line 32: offset 32, segment 1.
	p := Page(7)
	for off := 0; off < LinesPage; off++ {
		l := p.Line(off)
		if l.Page() != p {
			t.Fatalf("line %d: Page() = %d, want %d", off, l.Page(), p)
		}
		if l.PageOffset() != off {
			t.Fatalf("line %d: PageOffset() = %d", off, l.PageOffset())
		}
		wantSeg := 0
		if off >= LinesSeg {
			wantSeg = 1
		}
		if l.Segment() != wantSeg {
			t.Fatalf("line %d: Segment() = %d, want %d", off, l.Segment(), wantSeg)
		}
		if l.SegOffset() != off%LinesSeg {
			t.Fatalf("line %d: SegOffset() = %d, want %d", off, l.SegOffset(), off%LinesSeg)
		}
	}
}

func TestRoundTripLineAddr(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw)
		l := LineOf(a)
		// The line's base address must cover a.
		return l.Addr() <= a && a < l.Addr()+LineBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageLineRoundTrip(t *testing.T) {
	f := func(raw uint64, off uint8) bool {
		p := Page(raw % (1 << 36))
		o := int(off) % LinesPage
		l := p.Line(o)
		return l.Page() == p && l.PageOffset() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldXOR(t *testing.T) {
	tests := []struct {
		v    uint64
		bits uint
		want uint64
	}{
		{0, 8, 0},
		{0xff, 8, 0xff},
		{0xff00, 8, 0xff},
		{0xf00f, 8, 0xf0 ^ 0x0f},
		{0xffff, 8, 0},      // two equal bytes cancel
		{0x0101, 16, 0x101}, // fits in 16 bits already
		{^uint64(0), 64, ^uint64(0)},
		{12345, 0, 12345}, // bits=0 means identity
	}
	for _, tt := range tests {
		if got := FoldXOR(tt.v, tt.bits); got != tt.want {
			t.Errorf("FoldXOR(%#x, %d) = %#x, want %#x", tt.v, tt.bits, got, tt.want)
		}
	}
}

func TestFoldXORBounded(t *testing.T) {
	f := func(v uint64) bool {
		return FoldXOR(v, 8) < 256 && FoldXOR(v, 10) < 1024
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentBoundary(t *testing.T) {
	p := Page(3)
	if p.Line(31).Segment() != 0 {
		t.Error("line 31 should be segment 0")
	}
	if p.Line(32).Segment() != 1 {
		t.Error("line 32 should be segment 1")
	}
}
