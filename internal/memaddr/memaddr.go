// Package memaddr defines address arithmetic shared by every component of
// the simulator: cache lines, 4KB pages, 2KB segments and in-page offsets.
//
// The whole repository works in physical addresses. A cache line is 64 bytes,
// a page is 4KB (64 lines) and a segment is 2KB (32 lines), matching the
// geometry DSPatch (MICRO 2019) assumes.
package memaddr

// Fundamental geometry. These are constants of the studied machine, not
// tunables: DSPatch's bit-pattern layout (64 lines/page, 32 lines/segment)
// depends on them.
const (
	LineBytes  = 64                    // bytes per cache line
	PageBytes  = 4096                  // bytes per physical page
	SegBytes   = 2048                  // bytes per 2KB segment (half page)
	LineShift  = 6                     // log2(LineBytes)
	PageShift  = 12                    // log2(PageBytes)
	SegShift   = 11                    // log2(SegBytes)
	LinesPage  = PageBytes / LineBytes // 64
	LinesSeg   = SegBytes / LineBytes  // 32
	SegsPage   = 2
	OffsetMask = LinesPage - 1
)

// Addr is a byte-granular physical address.
type Addr uint64

// Line is a cache-line address (Addr >> LineShift).
type Line uint64

// Page is a physical page number (Addr >> PageShift).
type Page uint64

// PC is a program counter value used as prefetcher context.
type PC uint64

// LineOf returns the cache-line address containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// PageOf returns the physical page number containing a.
func PageOf(a Addr) Page { return Page(a >> PageShift) }

// LineAddr returns the byte address of the first byte of line l.
func (l Line) Addr() Addr { return Addr(l) << LineShift }

// Page returns the page containing line l.
func (l Line) Page() Page { return Page(l >> (PageShift - LineShift)) }

// PageOffset returns the index of line l within its page, in [0, LinesPage).
func (l Line) PageOffset() int { return int(l) & OffsetMask }

// SegOffset returns the index of line l within its 2KB segment, in [0, LinesSeg).
func (l Line) SegOffset() int { return int(l) & (LinesSeg - 1) }

// Segment returns 0 if line l lies in the first 2KB of its page, 1 otherwise.
func (l Line) Segment() int { return (int(l) >> (SegShift - LineShift)) & 1 }

// Addr returns the byte address of the first byte of page p.
func (p Page) Addr() Addr { return Addr(p) << PageShift }

// Line returns the cache-line address of line offset off within page p.
// off must be in [0, LinesPage).
func (p Page) Line(off int) Line {
	return Line(uint64(p)<<(PageShift-LineShift) | uint64(off&OffsetMask))
}

// FoldXOR folds v down to bits wide bits by repeatedly XORing bits-wide
// chunks. DSPatch uses it to index its tagless Signature Pattern Table with a
// PC and to compress the PC stored in Page Buffer entries.
func FoldXOR(v uint64, bits uint) uint64 {
	if bits == 0 || bits >= 64 {
		return v
	}
	mask := uint64(1)<<bits - 1
	var f uint64
	for v != 0 {
		f ^= v & mask
		v >>= bits
	}
	return f
}
