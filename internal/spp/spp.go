// Package spp implements the Signature Pattern Prefetcher (Kim et al.,
// MICRO 2016 [54]) with the configuration the DSPatch paper evaluates
// (Table 3): 256-entry signature table, 512-entry pattern table, 8-entry
// global history register for cross-page continuation, 12-bit compressed
// delta-path signatures and global accuracy feedback.
//
// SPP correlates a signature — a hash of the last few in-page cache-line
// deltas — with the next likely deltas, and uses recursive lookahead with
// cascaded path confidence to prefetch several steps ahead. The eSPP variant
// (DSPatch paper §2.1) lowers the confidence threshold from 25% to 12.5%
// when more than half the DRAM bandwidth is unused.
package spp

import (
	"dspatch/internal/bitpattern"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
	"dspatch/internal/prefstats"
)

// Config sizes SPP. Construct via DefaultConfig and adjust.
type Config struct {
	STEntries  int // signature table entries (pages tracked)
	PTEntries  int // pattern table entries (signatures tracked)
	DeltasPer  int // delta slots per pattern entry
	GHREntries int
	SigBits    uint
	CounterMax int // saturation point of c_sig / c_delta (4-bit => 15)

	ThresholdPct int // path-confidence prefetch threshold (25 per paper)
	// LowBWThresholdPct, when non-zero, replaces ThresholdPct while DRAM
	// bandwidth utilization is below 50% — the eSPP enhancement.
	LowBWThresholdPct int

	MaxLookahead int // recursion depth bound
	FilterSize   int // prefetch filter entries (power of two)

	// Reference selects the pre-optimization arithmetic: per-probe integer
	// divisions for delta confidence instead of the precomputed quotient
	// table. It exists so the differential equivalence tests can prove the
	// table path bit-identical; simulations never set it.
	Reference bool
}

// DefaultConfig returns the paper's SPP configuration.
func DefaultConfig() Config {
	return Config{
		STEntries:    256,
		PTEntries:    512,
		DeltasPer:    4,
		GHREntries:   8,
		SigBits:      12,
		CounterMax:   15,
		ThresholdPct: 25,
		MaxLookahead: 32,
		FilterSize:   1024,
	}
}

// EnhancedConfig returns eSPP: SPP that drops its threshold to 12.5% when
// bandwidth utilization is under 50%.
func EnhancedConfig() Config {
	c := DefaultConfig()
	c.LowBWThresholdPct = 12
	return c
}

type stEntry struct {
	tag     uint64
	lastOff int
	sig     uint16
	valid   bool
	used    uint64 // LRU stamp
}

type ptEntry struct {
	cSig   int
	deltas [4]int8
	cDelta [4]int
}

type ghrEntry struct {
	sig     uint16
	confPct int
	lastOff int
	delta   int8
	valid   bool
}

// SPP is one core's Signature Pattern Prefetcher instance.
type SPP struct {
	cfg   Config
	st    []stEntry
	pt    []ptEntry
	ghr   []ghrEntry
	clock uint64

	// Prefetch filter: tracks recently issued prefetch lines both to
	// suppress duplicates and to estimate global accuracy (the 10b feedback).
	filter     []memaddr.Line
	filterSet  []bool
	issued     uint64
	useful     uint64
	enhanced   bool
	name       string
	lowPronoun bool

	stMask uint64 // STEntries-1; table indexing runs on every training event
	ptMask uint64 // PTEntries-1

	// Telemetry: monotonic counters for ReportStats, kept separate from the
	// issued/useful feedback pair above, which ages (halves) and so cannot
	// report lifetime totals.
	statIssued     uint64 // prefetch requests appended
	statUseful     uint64 // demands that hit a recently prefetched line
	statSuppressed uint64 // candidates dropped by the prefetch filter
	statSTAllocs   uint64 // signature-table entries (re)allocated
	statGHRAdopts  uint64 // cross-page signature adoptions from the GHR
	statGHRInserts uint64 // out-of-page streams remembered in the GHR

	// confTab[cSig*(CounterMax+1)+cDelta] = 100*cDelta/cSig, precomputed
	// over the counter range so the lookahead loop (up to DeltasPer probes
	// per level, up to MaxLookahead levels per train) reads a byte from one
	// flat array instead of dividing. Counters never exceed CounterMax:
	// updatePT halves past the cap, and the up-rounded cSig halving
	// preserves cDelta <= cSig.
	confTab  []uint8
	confSpan int // row stride: CounterMax+1
}

// New builds an SPP instance.
func New(cfg Config) *SPP {
	if cfg.FilterSize&(cfg.FilterSize-1) != 0 {
		panic("spp: filter size must be a power of two")
	}
	if cfg.STEntries&(cfg.STEntries-1) != 0 || cfg.PTEntries&(cfg.PTEntries-1) != 0 {
		panic("spp: table sizes must be powers of two")
	}
	name := "spp"
	if cfg.LowBWThresholdPct > 0 {
		name = "espp"
	}
	span := cfg.CounterMax + 1
	confTab := make([]uint8, span*span)
	for cs := 1; cs < span; cs++ {
		for cd := 0; cd < span; cd++ {
			confTab[cs*span+cd] = uint8(100 * cd / cs)
		}
	}
	return &SPP{
		confTab:   confTab,
		confSpan:  span,
		cfg:       cfg,
		st:        make([]stEntry, cfg.STEntries),
		pt:        make([]ptEntry, cfg.PTEntries),
		ghr:       make([]ghrEntry, cfg.GHREntries),
		filter:    make([]memaddr.Line, cfg.FilterSize),
		filterSet: make([]bool, cfg.FilterSize),
		name:      name,
		stMask:    uint64(cfg.STEntries - 1),
		ptMask:    uint64(cfg.PTEntries - 1),
	}
}

// Name implements prefetch.Prefetcher.
func (s *SPP) Name() string { return s.name }

// updateSig folds delta into sig: sig = (sig << 3) ^ encode(delta).
func (s *SPP) updateSig(sig uint16, delta int) uint16 {
	enc := encodeDelta(delta)
	mask := uint16(1)<<s.cfg.SigBits - 1
	return ((sig << 3) ^ enc) & mask
}

// encodeDelta maps a signed in-page delta to the 7-bit sign+magnitude code
// SPP hashes into signatures.
func encodeDelta(delta int) uint16 {
	if delta < 0 {
		return uint16(((-delta)&0x3f)|0x40) & 0x7f
	}
	return uint16(delta & 0x3f)
}

// Train implements prefetch.Prefetcher. SPP trains on L1 misses observed at
// the L2 and issues lookahead prefetches within the 4KB page.
func (s *SPP) Train(a prefetch.Access, ctx prefetch.Context, dst []prefetch.Request) []prefetch.Request {
	s.clock++
	page := a.Line.Page()
	off := a.Line.PageOffset()

	// Demand feedback for the accuracy scaler.
	s.noteDemand(a.Line)

	e := s.lookupST(page)
	var sig uint16
	if e == nil {
		e = s.allocST(page, off)
		// Cross-page continuation: if a GHR entry predicted a stream
		// entering this page at this offset, adopt its signature and path
		// confidence.
		if g := s.matchGHR(off); g != nil {
			s.statGHRAdopts++
			e.sig = s.updateSig(g.sig, int(g.delta))
			sig = e.sig
			return s.lookahead(page, off, sig, g.confPct, ctx, dst)
		}
		return dst
	}
	delta := off - e.lastOff
	if delta == 0 {
		return dst
	}
	s.updatePT(e.sig, delta)
	e.sig = s.updateSig(e.sig, delta)
	e.lastOff = off
	e.used = s.clock
	sig = e.sig
	return s.lookahead(page, off, sig, 100, ctx, dst)
}

func (s *SPP) lookupST(page memaddr.Page) *stEntry {
	e := &s.st[uint64(page)&s.stMask]
	if e.valid && e.tag == uint64(page) {
		return e
	}
	return nil
}

func (s *SPP) allocST(page memaddr.Page, off int) *stEntry {
	s.statSTAllocs++
	e := &s.st[uint64(page)&s.stMask]
	*e = stEntry{tag: uint64(page), lastOff: off, valid: true, used: s.clock}
	return e
}

// updatePT records that signature sig was followed by delta.
func (s *SPP) updatePT(sig uint16, delta int) {
	p := &s.pt[uint64(sig)&s.ptMask]
	p.cSig++
	slot := -1
	minC, minI := 1<<30, 0
	for i := 0; i < s.cfg.DeltasPer; i++ {
		if p.cDelta[i] > 0 && int(p.deltas[i]) == delta {
			slot = i
			break
		}
		if p.cDelta[i] < minC {
			minC, minI = p.cDelta[i], i
		}
	}
	if slot < 0 {
		slot = minI
		p.deltas[slot] = int8(delta)
		p.cDelta[slot] = 0
	}
	p.cDelta[slot]++
	if p.cSig > s.cfg.CounterMax {
		p.cSig = (p.cSig + 1) / 2
		for i := range p.cDelta {
			p.cDelta[i] /= 2
		}
	}
}

// threshold returns the active path-confidence threshold, honoring the eSPP
// bandwidth adaptation when configured.
func (s *SPP) threshold(ctx prefetch.Context) int {
	if s.cfg.LowBWThresholdPct > 0 && ctx != nil &&
		ctx.BandwidthUtilization() < bitpattern.Q2 {
		return s.cfg.LowBWThresholdPct
	}
	return s.cfg.ThresholdPct
}

// lookahead walks the pattern table recursively, issuing all candidates
// whose cascaded path confidence clears the threshold.
func (s *SPP) lookahead(page memaddr.Page, off int, sig uint16, pathPct int, ctx prefetch.Context, dst []prefetch.Request) []prefetch.Request {
	thr := s.threshold(ctx)
	alpha := s.accuracyPct()
	thr100 := 100 * thr
	ref := s.cfg.Reference
	curOff, curSig, p := off, sig, pathPct
	for depth := 0; depth < s.cfg.MaxLookahead && p >= thr; depth++ {
		pe := &s.pt[uint64(curSig)&s.ptMask]
		if pe.cSig == 0 {
			break
		}
		bestConf, bestDelta := 0, 0
		for i := 0; i < s.cfg.DeltasPer; i++ {
			if pe.cDelta[i] == 0 {
				continue
			}
			var conf int
			if ref {
				conf = 100 * pe.cDelta[i] / pe.cSig
			} else {
				conf = int(s.confTab[pe.cSig*s.confSpan+pe.cDelta[i]])
			}
			// p*conf/100 >= thr without the division: all terms nonnegative,
			// so the floored quotient clears thr exactly when p*conf clears
			// 100*thr.
			if p*conf >= thr100 {
				t := curOff + int(pe.deltas[i])
				if t >= 0 && t < memaddr.LinesPage {
					dst = s.issue(page.Line(t), dst)
				}
			}
			if conf > bestConf {
				bestConf, bestDelta = conf, int(pe.deltas[i])
			}
		}
		if bestDelta == 0 {
			break
		}
		// Cascade: path confidence scales by the best branch and the global
		// accuracy feedback.
		p = p * bestConf / 100 * alpha / 100
		next := curOff + bestDelta
		if next < 0 || next >= memaddr.LinesPage {
			// Stream leaves the page: remember it in the GHR so the next
			// page's trigger can continue the path (cross-page bootstrap).
			s.insertGHR(ghrEntry{sig: curSig, confPct: p, lastOff: (next + memaddr.LinesPage) % memaddr.LinesPage, delta: int8(bestDelta), valid: true})
			break
		}
		curOff = next
		curSig = s.updateSig(curSig, bestDelta)
	}
	return dst
}

// issue appends a prefetch for l unless the filter has seen it recently.
func (s *SPP) issue(l memaddr.Line, dst []prefetch.Request) []prefetch.Request {
	idx := uint64(l) & uint64(s.cfg.FilterSize-1)
	if s.filterSet[idx] && s.filter[idx] == l {
		s.statSuppressed++
		return dst
	}
	s.filter[idx] = l
	s.filterSet[idx] = true
	s.issued++
	s.statIssued++
	return append(dst, prefetch.Request{Line: l})
}

// noteDemand credits the accuracy feedback when a demanded line was
// recently prefetched.
func (s *SPP) noteDemand(l memaddr.Line) {
	idx := uint64(l) & uint64(s.cfg.FilterSize-1)
	if s.filterSet[idx] && s.filter[idx] == l {
		s.useful++
		s.statUseful++
		s.filterSet[idx] = false
	}
	// Periodically age the feedback so it tracks phase changes.
	if s.issued >= 4096 {
		s.issued /= 2
		s.useful /= 2
	}
}

// accuracyPct is the global accuracy scaler alpha in percent. Before any
// feedback exists it is optimistic (100).
func (s *SPP) accuracyPct() int {
	if s.issued < 32 {
		return 100
	}
	a := int(100 * s.useful / s.issued)
	if a < 50 {
		a = 50 // floor keeps lookahead from collapsing entirely
	}
	return a
}

// matchGHR finds a GHR entry whose out-of-page stream would enter a new page
// at offset off.
func (s *SPP) matchGHR(off int) *ghrEntry {
	for i := range s.ghr {
		g := &s.ghr[i]
		if g.valid && g.lastOff == off {
			return g
		}
	}
	return nil
}

func (s *SPP) insertGHR(g ghrEntry) {
	s.statGHRInserts++
	// Replace an invalid entry or rotate round-robin.
	for i := range s.ghr {
		if !s.ghr[i].valid {
			s.ghr[i] = g
			return
		}
	}
	copy(s.ghr, s.ghr[1:])
	s.ghr[len(s.ghr)-1] = g
}

// ReportStats implements prefetch.StatsReporter.
func (s *SPP) ReportStats() []prefstats.Stats {
	st := prefstats.New(s.Name())
	st.Count("trains", s.clock)
	st.Count("issued", s.statIssued)
	st.Count("useful", s.statUseful)
	st.Count("filter_suppressed", s.statSuppressed)
	st.Count("st_allocs", s.statSTAllocs)
	st.Count("ghr_adoptions", s.statGHRAdopts)
	st.Count("ghr_inserts", s.statGHRInserts)
	return []prefstats.Stats{st}
}

// StorageBits implements prefetch.Prefetcher. Per-structure accounting:
// ST entry = tag(16)+lastOff(6)+sig(12); PT entry = 4×(delta 7 + cDelta 4) +
// cSig 4; GHR entry = sig(12)+conf(8)+off(6)+delta(7); filter 1b/entry plus
// the 10b feedback counters.
func (s *SPP) StorageBits() int {
	st := s.cfg.STEntries * (16 + 6 + int(s.cfg.SigBits))
	pt := s.cfg.PTEntries * (s.cfg.DeltasPer*(7+4) + 4)
	ghr := s.cfg.GHREntries * (int(s.cfg.SigBits) + 8 + 6 + 7)
	filter := s.cfg.FilterSize * 1
	return st + pt + ghr + filter + 10
}
