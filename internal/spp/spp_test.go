package spp

import (
	"testing"

	"dspatch/internal/bitpattern"
	"dspatch/internal/memaddr"
	"dspatch/internal/prefetch"
)

func miss(line uint64) prefetch.Access {
	return prefetch.Access{PC: 0x400, Line: memaddr.Line(line)}
}

// trainPages streams a repeating delta series over several pages so the
// pattern table accumulates confidence.
func trainPages(s *SPP, deltas []int, pages int) []prefetch.Request {
	var out []prefetch.Request
	for p := 0; p < pages; p++ {
		base := uint64(p * memaddr.LinesPage)
		off := 0
		out = s.Train(miss(base), nil, nil)
		for i := 0; i < 12; i++ {
			off += deltas[i%len(deltas)]
			if off >= memaddr.LinesPage {
				break
			}
			out = s.Train(miss(base+uint64(off)), nil, nil)
		}
	}
	return out
}

func TestEncodeDelta(t *testing.T) {
	tests := []struct {
		d    int
		want uint16
	}{
		{1, 1},
		{63, 63},
		{-1, 0x41},
		{-63, 0x7f},
	}
	for _, tt := range tests {
		if got := encodeDelta(tt.d); got != tt.want {
			t.Errorf("encodeDelta(%d) = %#x, want %#x", tt.d, got, tt.want)
		}
	}
	if encodeDelta(1) == encodeDelta(-1) {
		t.Error("+1 and -1 must encode differently")
	}
}

func TestSignatureUpdateDistinguishesPaths(t *testing.T) {
	s := New(DefaultConfig())
	a := s.updateSig(s.updateSig(0, 1), 2)
	b := s.updateSig(s.updateSig(0, 2), 1)
	if a == b {
		t.Error("delta order should yield different signatures")
	}
	if a >= 1<<12 || b >= 1<<12 {
		t.Error("signature exceeds 12 bits")
	}
}

func TestLearnsUnitStride(t *testing.T) {
	s := New(DefaultConfig())
	out := trainPages(s, []int{1}, 30)
	if len(out) == 0 {
		t.Fatal("no prefetches for a unit-stride stream")
	}
}

func TestLookaheadDepth(t *testing.T) {
	// With a perfectly confident stride, lookahead runs ahead of the demand
	// stream: one access's prediction set reaches multiple lines ahead.
	// (Later accesses may emit fewer because the duplicate filter already
	// holds the lookahead's candidates — assert on the union.)
	s := New(DefaultConfig())
	trainPages(s, []int{1}, 40)
	base := uint64(1000 * memaddr.LinesPage)
	issued := map[memaddr.Line]bool{}
	for off := uint64(0); off < 4; off++ {
		for _, r := range s.Train(miss(base+off), nil, nil) {
			if r.Line.Page() != memaddr.Page(1000) {
				t.Errorf("prefetch %d left the page", r.Line)
			}
			issued[r.Line] = true
		}
	}
	if len(issued) < 3 {
		t.Errorf("lookahead issued %d distinct candidates, want >= 3", len(issued))
	}
	// The candidates must run ahead of the last demand (base+3).
	ahead := false
	for l := range issued {
		if l > memaddr.Line(base+4) {
			ahead = true
		}
	}
	if !ahead {
		t.Errorf("no candidate beyond the demand stream: %v", issued)
	}
}

func TestLearnsComplexDeltaSeries(t *testing.T) {
	s := New(DefaultConfig())
	trainPages(s, []int{1, 2}, 60)
	base := uint64(2000 * memaddr.LinesPage)
	issued := map[memaddr.Line]bool{}
	for _, off := range []uint64{0, 1, 3} {
		for _, r := range s.Train(miss(base+off), nil, nil) {
			issued[r.Line] = true
		}
	}
	// The 1,2 series visits offsets 4 and 6 next; lookahead should have
	// issued at least one of them.
	if !issued[memaddr.Line(base+4)] && !issued[memaddr.Line(base+6)] {
		t.Errorf("did not predict the 1,2 series continuation: %v", issued)
	}
}

func TestNoPrefetchWithoutHistory(t *testing.T) {
	s := New(DefaultConfig())
	out := s.Train(miss(0), nil, nil)
	if len(out) != 0 {
		t.Errorf("cold start should not prefetch, got %v", out)
	}
}

func TestFilterSuppressesDuplicates(t *testing.T) {
	s := New(DefaultConfig())
	trainPages(s, []int{1}, 40)
	base := uint64(3000 * memaddr.LinesPage)
	s.Train(miss(base), nil, nil)
	a := s.Train(miss(base+1), nil, nil)
	b := s.Train(miss(base+1), nil, nil) // same access again: delta 0
	_ = a
	if len(b) != 0 {
		t.Errorf("duplicate access re-issued prefetches: %v", b)
	}
}

func TestESPPThresholdAdapts(t *testing.T) {
	e := New(EnhancedConfig())
	lo := prefetch.StaticContext{Util: bitpattern.Q0}
	hi := prefetch.StaticContext{Util: bitpattern.Q3}
	if e.threshold(lo) != 12 {
		t.Errorf("low-BW threshold = %d, want 12", e.threshold(lo))
	}
	if e.threshold(hi) != 25 {
		t.Errorf("high-BW threshold = %d, want 25", e.threshold(hi))
	}
	s := New(DefaultConfig())
	if s.threshold(lo) != 25 {
		t.Errorf("plain SPP threshold should not adapt, got %d", s.threshold(lo))
	}
}

func TestESPPMoreAggressiveAtLowBW(t *testing.T) {
	run := func(cfg Config, util bitpattern.Quartile) int {
		s := New(cfg)
		ctx := prefetch.StaticContext{Util: util}
		total := 0
		for p := 0; p < 60; p++ {
			base := uint64(p * memaddr.LinesPage)
			// Noisy stride: mostly +2, sometimes +3 → moderate confidence.
			off := 0
			s.Train(prefetch.Access{PC: 1, Line: memaddr.Line(base)}, ctx, nil)
			for i := 0; i < 14; i++ {
				if i%4 == 3 {
					off += 3
				} else {
					off += 2
				}
				if off >= memaddr.LinesPage {
					break
				}
				out := s.Train(prefetch.Access{PC: 1, Line: memaddr.Line(base + uint64(off))}, ctx, nil)
				total += len(out)
			}
		}
		return total
	}
	plain := run(DefaultConfig(), bitpattern.Q0)
	enhanced := run(EnhancedConfig(), bitpattern.Q0)
	if enhanced <= plain {
		t.Errorf("eSPP at low BW issued %d <= SPP %d", enhanced, plain)
	}
}

func TestAccuracyFeedback(t *testing.T) {
	s := New(DefaultConfig())
	if s.accuracyPct() != 100 {
		t.Error("cold accuracy should be optimistic")
	}
	// Issue many prefetches that are never used.
	for i := 0; i < 100; i++ {
		s.issue(memaddr.Line(100000+i*7), nil)
	}
	if s.accuracyPct() != 50 {
		t.Errorf("all-useless accuracy = %d, want floor 50", s.accuracyPct())
	}
}

func TestGHRCrossPage(t *testing.T) {
	s := New(DefaultConfig())
	// Stream that runs off the end of pages repeatedly.
	for p := 0; p < 50; p++ {
		base := uint64(p * memaddr.LinesPage)
		for off := 56; off < 64; off++ {
			s.Train(miss(base+uint64(off)), nil, nil)
		}
	}
	hasGHR := false
	for _, g := range s.ghr {
		if g.valid {
			hasGHR = true
		}
	}
	if !hasGHR {
		t.Error("streams leaving pages should populate the GHR")
	}
}

func TestStorageBits(t *testing.T) {
	s := New(DefaultConfig())
	kb := float64(s.StorageBits()) / 8192
	// Our accounting lands near 4.3KB; the paper quotes 6.2KB with its own
	// bookkeeping. Accept the plausible band.
	if kb < 3 || kb > 8 {
		t.Errorf("SPP storage = %.2fKB, outside plausible band", kb)
	}
}

func TestNames(t *testing.T) {
	if New(DefaultConfig()).Name() != "spp" {
		t.Error("wrong name for SPP")
	}
	if New(EnhancedConfig()).Name() != "espp" {
		t.Error("wrong name for eSPP")
	}
}
