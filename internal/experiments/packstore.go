package experiments

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"dspatch/internal/sim"
)

// PackStore is the second ResultStore backend: a single append-only pack
// file instead of DirStore's one-file-per-entry directory. It trades
// DirStore's rsync-friendliness for a store that is one file, one open
// descriptor, and no per-entry filesystem metadata — the shape that suits a
// coordinator's -store-dir on filesystems where a million small JSON files
// hurt.
//
// Layout: an 8-byte magic header ("DSPPACK1"), then frames of
//
//	u32 LE payload length | u32 LE CRC32-IEEE(payload) | payload
//
// where the payload is the same JSON cacheEntry DirStore writes. An
// in-memory index maps key -> latest frame; re-Puts append a superseding
// frame. Open scans the file, truncates a torn tail (the ResultStore
// contract: a half-written entry is a miss, never an error), and compacts
// superseded frames away by rewriting live entries to a temp file and
// renaming over the original.
//
// PackStore is safe for concurrent use within one process. Unlike DirStore
// it must NOT be shared between processes: appends from two writers would
// interleave. The daemon opens it once and owns it.
type PackStore struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[string]packLoc
	size  int64 // current end offset, == next append position
}

type packLoc struct {
	off int64 // offset of the frame's payload (past the 8-byte frame header)
	n   int64 // payload length
}

const packMagic = "DSPPACK1"

// maxPackFrame bounds one frame's payload so a corrupt length word cannot
// drive a huge allocation during the open scan.
const maxPackFrame = 64 << 20

// OpenPackStore opens (creating if needed) the pack store at path, scanning
// existing frames, truncating any torn tail, and compacting superseded
// entries.
func OpenPackStore(path string) (*PackStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: pack store: %w", err)
	}
	s := &PackStore{f: f, path: path, index: map[string]packLoc{}}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Path returns the pack file's path.
func (s *PackStore) Path() string { return s.path }

// Len reports how many distinct keys the store currently indexes.
func (s *PackStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// load scans the file into the index. A fresh (empty) file gets the magic
// header; a torn tail is truncated; superseded frames trigger compaction.
func (s *PackStore) load() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("experiments: pack store: %w", err)
	}
	if fi.Size() == 0 {
		if _, err := s.f.Write([]byte(packMagic)); err != nil {
			return fmt.Errorf("experiments: pack store header: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("experiments: pack store header: %w", err)
		}
		s.size = int64(len(packMagic))
		return nil
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("experiments: pack store: %w", err)
	}
	magic := make([]byte, len(packMagic))
	if _, err := io.ReadFull(s.f, magic); err != nil || !bytes.Equal(magic, []byte(packMagic)) {
		return fmt.Errorf("experiments: %s is not a pack store (bad magic)", s.path)
	}
	end := int64(len(packMagic))
	frames := 0
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(s.f, hdr[:]); err != nil {
			break // clean EOF or torn length word
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxPackFrame {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(s.f, payload); err != nil {
			break // frame cut short: the torn tail of a crashed Put
		}
		if crc32.ChecksumIEEE(payload) != want {
			break
		}
		var e cacheEntry
		if err := json.Unmarshal(payload, &e); err != nil || e.Key == "" {
			break
		}
		s.index[e.Key] = packLoc{off: end + 8, n: int64(n)}
		end += int64(8 + n)
		frames++
	}
	if err := s.f.Truncate(end); err != nil {
		return fmt.Errorf("experiments: pack store truncate torn tail: %w", err)
	}
	s.size = end
	if frames > len(s.index) {
		if err := s.compact(); err != nil {
			return err
		}
	}
	if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
		return fmt.Errorf("experiments: pack store: %w", err)
	}
	return nil
}

// compact rewrites only live (latest-per-key) frames to a temp file and
// renames it over the pack, reclaiming superseded frames. Called with the
// scan already indexed; s.mu is not yet contended (open path).
func (s *PackStore) compact() error {
	tmp, err := os.CreateTemp(filepath.Dir(s.path), "pack-*.tmp")
	if err != nil {
		return fmt.Errorf("experiments: pack compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write([]byte(packMagic)); err != nil {
		tmp.Close()
		return fmt.Errorf("experiments: pack compact: %w", err)
	}
	newIndex := make(map[string]packLoc, len(s.index))
	off := int64(len(packMagic))
	for key, loc := range s.index {
		payload := make([]byte, loc.n)
		if _, err := s.f.ReadAt(payload, loc.off); err != nil {
			tmp.Close()
			return fmt.Errorf("experiments: pack compact read: %w", err)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(hdr[:]); err == nil {
			_, err = tmp.Write(payload)
		}
		if err != nil {
			tmp.Close()
			return fmt.Errorf("experiments: pack compact write: %w", err)
		}
		newIndex[key] = packLoc{off: off + 8, n: loc.n}
		off += 8 + loc.n
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("experiments: pack compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("experiments: pack compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("experiments: pack compact rename: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("experiments: pack compact reopen: %w", err)
	}
	s.f.Close()
	s.f = f
	s.index = newIndex
	s.size = off
	return nil
}

// Get implements ResultStore: a valid, version-matched entry or a miss.
func (s *PackStore) Get(key string) (sim.Result, bool) {
	s.mu.Lock()
	loc, ok := s.index[key]
	f := s.f
	s.mu.Unlock()
	if !ok {
		return sim.Result{}, false
	}
	payload := make([]byte, loc.n)
	if _, err := f.ReadAt(payload, loc.off); err != nil {
		return sim.Result{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(payload, &e); err != nil {
		return sim.Result{}, false
	}
	if e.Version != sim.ResultVersion || e.Key != key {
		return sim.Result{}, false
	}
	return e.Result, true
}

// Put implements ResultStore by appending a frame and fsyncing. On a write
// error the file is truncated back to the last good frame, so a failed Put
// leaves the store unchanged.
func (s *PackStore) Put(key string, res sim.Result) error {
	payload, err := json.Marshal(cacheEntry{Version: sim.ResultVersion, Key: key, Result: res})
	if err != nil {
		return err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.WriteAt(frame, s.size); err != nil {
		s.f.Truncate(s.size)
		return fmt.Errorf("experiments: pack store put: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.f.Truncate(s.size)
		return fmt.Errorf("experiments: pack store put: %w", err)
	}
	s.index[key] = packLoc{off: s.size + 8, n: int64(len(payload))}
	s.size += int64(len(frame))
	return nil
}

// Close closes the pack file.
func (s *PackStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
