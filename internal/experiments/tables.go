package experiments

import (
	"dspatch/internal/ampm"
	"dspatch/internal/bop"
	"dspatch/internal/core"
	"dspatch/internal/sms"
	"dspatch/internal/spp"
)

// StorageRow is one structure's budget in a storage table.
type StorageRow struct {
	Structure string
	Detail    string
	Bits      int
}

// Table1 regenerates paper Table 1: DSPatch's storage breakdown. The paper
// quotes 3.6KB; our field-by-field accounting of the same structures lands
// at 3.4KB (the delta is bookkeeping bits the paper does not itemize).
func Table1() []StorageRow {
	cfg := core.DefaultConfig()
	d := core.New(cfg)
	pbEntry := 36 + 64 + 2*(8+6)
	sptEntry := 76
	return []StorageRow{
		{"PB", "page(36) + bit-pattern(64) + 2×[PC(8)+offset(6)] per entry × 64", cfg.PBEntries * pbEntry},
		{"SPT", "CovP(32) + AccP(32) + 2×[OrCount(2)+MeasureCovP(2)+MeasureAccP(2)] × 256", cfg.SPTEntries * sptEntry},
		{"Total", "", d.StorageBits()},
	}
}

// Table3 regenerates paper Table 3: the storage budget of every evaluated
// prefetcher configuration (paper quotes: BOP 1.3KB, SMS 88KB, SPP 6.2KB;
// DSPatch 3.6KB from Table 1).
func Table3() []StorageRow {
	return []StorageRow{
		{"BOP", "256-entry RR, MaxRound=100, MaxScore=31, degree 2", bop.New(bop.DefaultConfig()).StorageBits()},
		{"SMS", "2KB regions, 64-entry AT, 32-entry FT, 16K-entry PHT", sms.New(sms.DefaultConfig()).StorageBits()},
		{"SMS-256", "iso-storage variant, 256-entry PHT", sms.New(sms.IsoStorageConfig()).StorageBits()},
		{"SPP", "256-entry ST, 512-entry PT, 8-entry GHR, 12b signatures", spp.New(spp.DefaultConfig()).StorageBits()},
		{"AMPM", "64 access maps", ampm.New(ampm.DefaultConfig()).StorageBits()},
		{"DSPatch", "64-entry PB, 256-entry SPT", core.New(core.DefaultConfig()).StorageBits()},
	}
}
