package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
)

// FormatCategory renders a CategoryResult as a text table mirroring the
// paper's bar-chart layout (rows = prefetchers, columns = categories).
func FormatCategory(w io.Writer, title string, r CategoryResult) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "prefetcher")
	for _, c := range r.Categories {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprint(tw, "\tGEOMEAN\n")
	for i, pf := range r.Prefetchers {
		fmt.Fprintf(tw, "%s", pf)
		for _, d := range r.Delta[i] {
			fmt.Fprintf(tw, "\t%s", pct(d))
		}
		fmt.Fprintf(tw, "\t%s\n", pct(r.Geomean[i]))
	}
	tw.Flush()
	if r.Dropped > 0 {
		fmt.Fprintf(w, "(%d degenerate runs dropped from aggregates)\n", r.Dropped)
	}
	fmt.Fprintln(w)
}

// pct renders a performance-delta percentage, with NaN (no valid runs at
// this scale) shown as n/a.
func pct(d float64) string {
	if math.IsNaN(d) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", d)
}

// FormatScaling renders a ScalingResult (rows = prefetchers, columns = DRAM
// bandwidth points in ascending peak order).
func FormatScaling(w io.Writer, title string, r ScalingResult) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "prefetcher")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "\t%s (%.1fGBps)", p.Name, p.Cfg.PeakBandwidthGBps())
	}
	fmt.Fprintln(tw)
	for i, pf := range r.Prefetchers {
		fmt.Fprintf(tw, "%s", pf)
		for _, d := range r.Delta[i] {
			fmt.Fprintf(tw, "\t%s", pct(d))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	if r.Dropped > 0 {
		fmt.Fprintf(w, "(%d degenerate runs dropped from aggregates)\n", r.Dropped)
	}
	fmt.Fprintln(w)
}

// FormatStorage renders a storage table in KB.
func FormatStorage(w io.Writer, title string, rows []StorageRow) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("-", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d bits\t%.2f KB\n", r.Structure, r.Detail, r.Bits, float64(r.Bits)/8192)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// FormatFig5 renders the SMS storage sweep.
func FormatFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Fig 5: SMS performance vs pattern-history-table size")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PHT entries\tstorage\tperf delta")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.1f KB\t%+.1f%%\n", r.PHTEntries, r.StorageKB, r.DeltaPct)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// FormatFig11 renders both halves of Fig. 11.
func FormatFig11(w io.Writer, a Fig11aResult, b [6]float64) {
	fmt.Fprintln(w, "Fig 11a: delta occurrence distribution")
	fmt.Fprintf(w, "  +1: %.0f%%  -1: %.0f%%  ±2,±3: %.0f%%  other: %.0f%%\n",
		100*a.PlusOne, 100*a.MinusOne, 100*a.TwoThree, 100*a.Other)
	labels := []string{"exactly 0%", "0-12.5%", "12.5-25%", "25-37.5%", "37.5-50%", "exactly 50%"}
	fmt.Fprintln(w, "Fig 11b: misprediction rate due to 128B-granularity compression")
	for i, l := range labels {
		fmt.Fprintf(w, "  %-12s %.0f%%\n", l, 100*b[i])
	}
	fmt.Fprintln(w)
}

// FormatFig13 renders the memory-intensive line graph as a sorted table.
func FormatFig13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintln(w, "Fig 13: 42 memory-intensive workloads (sorted by DSPatch+SPP)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tcategory\tSMS\tSPP\tDSPatch+SPP")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%+.1f%%\t%+.1f%%\t%+.1f%%\n", r.Workload, r.Category, r.SMS, r.SPP, r.DSPatchS)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// FormatFig16 renders the coverage/misprediction stacks.
func FormatFig16(w io.Writer, rows []Fig16Row) {
	fmt.Fprintln(w, "Fig 16: coverage and mispredictions (fractions of would-be L2 misses)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "category\tprefetcher\tcovered\tuncovered\tmispredicted")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0f%%\t%.0f%%\t%.0f%%\n", r.Category, r.Prefetcher,
			100*r.Covered, 100*r.Uncovered, 100*r.Mispred)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// FormatFig18 renders the MP bandwidth comparison.
func FormatFig18(w io.Writer, rows []Fig18Row) {
	fmt.Fprintln(w, "Fig 18: multi-programmed mixes vs DRAM bandwidth")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tmix\tBOP\tSMS\tSPP\tDSPatch+SPP")
	for _, r := range rows {
		fmt.Fprintf(tw, "DDR4-%d\t%s\t%+.1f%%\t%+.1f%%\t%+.1f%%\t%+.1f%%\n", r.MTps, r.Mix,
			r.Delta["bop"], r.Delta["sms"], r.Delta["spp"], r.Delta["dspatch+spp"])
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// FormatFig19 renders the accuracy-pattern ablation.
func FormatFig19(w io.Writer, r Fig19Result) {
	fmt.Fprintln(w, "Fig 19: contribution of the accuracy-biased pattern (4-core, memory-intensive)")
	fmt.Fprintf(w, "  DSPatch:    %+.1f%%\n  AlwaysCovP: %+.1f%%\n  ModCovP:    %+.1f%%\n\n",
		r.DSPatch, r.AlwaysCovP, r.ModCovP)
}

// FormatFig20 renders the pollution taxonomy.
func FormatFig20(w io.Writer, rows []Fig20Row) {
	fmt.Fprintln(w, "Fig 20: LLC pollution taxonomy under an aggressive streamer")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "LLC\tNoReuse\tPrefetchedBeforeUse\tBadPollution")
	for _, r := range rows {
		fmt.Fprintf(tw, "%dMB\t%.1f%%\t%.1f%%\t%.1f%%\n", r.LLCMB,
			100*r.NoReuse, 100*r.PrefetchedBeforeUse, 100*r.BadPollution)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// FormatHeadline renders the abstract's summary numbers.
func FormatHeadline(w io.Writer, h HeadlineResult) {
	fmt.Fprintln(w, "Headline numbers (paper values in parentheses)")
	fmt.Fprintf(w, "  DSPatch+SPP over SPP:            %+.1f%% (≈+6%%)\n", h.DSPatchSPPOverSPPPct)
	fmt.Fprintf(w, "  ... on memory-intensive set:     %+.1f%% (≈+9%%)\n", h.DSPatchSPPOverSPPHotPct)
	fmt.Fprintf(w, "  standalone DSPatch vs SPP:       %+.1f%% (≈+1%%)\n", h.DSPatchVsSPPPct)
	fmt.Fprintf(w, "  coverage gain over SPP:          %+.1f%% (≈+15%%)\n", h.CoverageGainPct)
	fmt.Fprintf(w, "  misprediction increase over SPP: %+.1f%% (≈+6.5%%)\n", h.MispredGainPct)
	if h.Dropped > 0 {
		fmt.Fprintf(w, "  (%d workloads dropped for degenerate ratios)\n", h.Dropped)
	}
}
