package experiments

import "io"

// Experiment is one registry entry: a table or figure of the paper's
// evaluation, runnable at any Scale and renderable as text. The registry is
// the single source of truth for both front ends — cmd/dspatchsim iterates
// it for -list/-experiment, and the dspatchd service exposes it as
// POST /v1/experiments/{id} — so the two can never drift.
type Experiment struct {
	ID    string
	Title string
	// Sim reports whether the experiment schedules simulations (the storage
	// tables are pure arithmetic and return instantly at any scale).
	Sim bool
	// Run executes the experiment and returns its typed result (the same
	// value the dspatch facade function of the same name returns). For a
	// scale carrying a canceled WithContext the value is meaningless and
	// must be discarded.
	Run func(Scale) any
	// Format renders a value previously produced by Run. It panics on a
	// value of the wrong type: pairing Run and Format from the same entry
	// is a program invariant, not an input.
	Format func(io.Writer, any)
}

// Fig11Result pairs both halves of paper Fig. 11 (the registry entry runs
// them together, like the CLI always has).
type Fig11Result struct {
	A Fig11aResult
	B [6]float64
}

// registry lists every experiment in the CLI's historical -list order.
var registry = []Experiment{
	{
		ID: "table1", Title: "Table 1: DSPatch storage",
		Run:    func(Scale) any { return Table1() },
		Format: func(w io.Writer, v any) { FormatStorage(w, "Table 1: DSPatch storage", v.([]StorageRow)) },
	},
	{
		ID: "table3", Title: "Table 3: prefetcher storage budgets",
		Run:    func(Scale) any { return Table3() },
		Format: func(w io.Writer, v any) { FormatStorage(w, "Table 3: prefetcher storage budgets", v.([]StorageRow)) },
	},
	{
		ID: "fig1", Title: "Fig 1: prefetcher scaling with DRAM bandwidth", Sim: true,
		Run: func(s Scale) any { return Fig1(s) },
		Format: func(w io.Writer, v any) {
			FormatScaling(w, "Fig 1: prefetcher scaling with DRAM bandwidth", v.(ScalingResult))
		},
	},
	{
		ID: "fig4", Title: "Fig 4: BOP/SMS/SPP by category (1ch DDR4-2133)", Sim: true,
		Run: func(s Scale) any { return Fig4(s) },
		Format: func(w io.Writer, v any) {
			FormatCategory(w, "Fig 4: BOP/SMS/SPP by category (1ch DDR4-2133)", v.(CategoryResult))
		},
	},
	{
		ID: "fig5", Title: "Fig 5: SMS performance vs pattern-history-table size", Sim: true,
		Run:    func(s Scale) any { return Fig5(s) },
		Format: func(w io.Writer, v any) { FormatFig5(w, v.([]Fig5Row)) },
	},
	{
		ID: "fig6", Title: "Fig 6: scaling incl. eSPP/eBOP", Sim: true,
		Run:    func(s Scale) any { return Fig6(s) },
		Format: func(w io.Writer, v any) { FormatScaling(w, "Fig 6: scaling incl. eSPP/eBOP", v.(ScalingResult)) },
	},
	{
		ID: "fig11", Title: "Fig 11: delta distribution and compression mispredictions", Sim: true,
		Run: func(s Scale) any { return Fig11Result{A: Fig11a(s), B: Fig11b(s)} },
		Format: func(w io.Writer, v any) {
			r := v.(Fig11Result)
			FormatFig11(w, r.A, r.B)
		},
	},
	{
		ID: "fig12", Title: "Fig 12: single-thread performance", Sim: true,
		Run: func(s Scale) any { return Fig12(s) },
		Format: func(w io.Writer, v any) {
			FormatCategory(w, "Fig 12: single-thread performance", v.(CategoryResult))
		},
	},
	{
		ID: "fig13", Title: "Fig 13: 42 memory-intensive workloads", Sim: true,
		Run:    func(s Scale) any { return Fig13(s) },
		Format: func(w io.Writer, v any) { FormatFig13(w, v.([]Fig13Row)) },
	},
	{
		ID: "fig14", Title: "Fig 14: adjunct prefetchers to SPP", Sim: true,
		Run: func(s Scale) any { return Fig14(s) },
		Format: func(w io.Writer, v any) {
			FormatCategory(w, "Fig 14: adjunct prefetchers to SPP", v.(CategoryResult))
		},
	},
	{
		ID: "fig15", Title: "Fig 15: performance scaling with DRAM bandwidth", Sim: true,
		Run: func(s Scale) any { return Fig15(s) },
		Format: func(w io.Writer, v any) {
			FormatScaling(w, "Fig 15: performance scaling with DRAM bandwidth", v.(ScalingResult))
		},
	},
	{
		ID: "fig16", Title: "Fig 16: coverage and mispredictions", Sim: true,
		Run:    func(s Scale) any { return Fig16(s) },
		Format: func(w io.Writer, v any) { FormatFig16(w, v.([]Fig16Row)) },
	},
	{
		ID: "fig17", Title: "Fig 17: homogeneous 4-core mixes", Sim: true,
		Run: func(s Scale) any { return Fig17(s) },
		Format: func(w io.Writer, v any) {
			FormatCategory(w, "Fig 17: homogeneous 4-core mixes", v.(CategoryResult))
		},
	},
	{
		ID: "fig18", Title: "Fig 18: multi-programmed mixes vs DRAM bandwidth", Sim: true,
		Run:    func(s Scale) any { return Fig18(s) },
		Format: func(w io.Writer, v any) { FormatFig18(w, v.([]Fig18Row)) },
	},
	{
		ID: "fig19", Title: "Fig 19: contribution of the accuracy-biased pattern", Sim: true,
		Run:    func(s Scale) any { return Fig19(s) },
		Format: func(w io.Writer, v any) { FormatFig19(w, v.(Fig19Result)) },
	},
	{
		ID: "fig20", Title: "Fig 20: LLC pollution taxonomy", Sim: true,
		Run:    func(s Scale) any { return Fig20(s) },
		Format: func(w io.Writer, v any) { FormatFig20(w, v.([]Fig20Row)) },
	},
	{
		ID: "headline", Title: "Headline numbers", Sim: true,
		Run:    func(s Scale) any { return Headline(s) },
		Format: func(w io.Writer, v any) { FormatHeadline(w, v.(HeadlineResult)) },
	},
}

// Experiments returns the registry in canonical order. The slice is shared:
// callers must not mutate it.
func Experiments() []Experiment {
	return registry
}

// ExperimentIDs returns every registry id in canonical order.
func ExperimentIDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// ExperimentByID looks up one registry entry.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
