package experiments

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dspatch/internal/sim"
)

func packResult(cycles uint64) sim.Result {
	return sim.Result{Cycles: cycles, IPC: []float64{1.5}, Coverage: 0.25}
}

func TestPackStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.pack")
	s, err := OpenPackStore(path)
	if err != nil {
		t.Fatalf("OpenPackStore: %v", err)
	}
	if _, ok := s.Get("missing"); ok {
		t.Error("empty store produced a hit")
	}
	want := packResult(1234)
	if err := s.Put("k1", want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got, ok := s.Get("k1"); !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("Get after Put: %+v ok=%v", got, ok)
	}
	// A re-Put supersedes.
	want2 := packResult(5678)
	if err := s.Put("k1", want2); err != nil {
		t.Fatalf("re-Put: %v", err)
	}
	if got, _ := s.Get("k1"); got.Cycles != 5678 {
		t.Fatalf("superseding Put not served: %+v", got)
	}
	if err := s.Put("k2", packResult(9)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	s.Close()

	// Reopen: entries survive, the superseded k1 frame is compacted away.
	before, _ := os.Stat(path)
	s2, err := OpenPackStore(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the pack: %d -> %d bytes", before.Size(), after.Size())
	}
	if got, ok := s2.Get("k1"); !ok || got.Cycles != 5678 {
		t.Fatalf("k1 after reopen: %+v ok=%v", got, ok)
	}
	if got, ok := s2.Get("k2"); !ok || got.Cycles != 9 {
		t.Fatalf("k2 after reopen: %+v ok=%v", got, ok)
	}
	// Appends still work after compaction's reopen dance.
	if err := s2.Put("k3", packResult(11)); err != nil {
		t.Fatalf("Put after compaction: %v", err)
	}
	if got, ok := s2.Get("k3"); !ok || got.Cycles != 11 {
		t.Fatalf("k3: %+v ok=%v", got, ok)
	}
}

// TestPackStoreTornTail truncates the pack at every byte offset inside its
// last frame: the store must open cleanly, keep every intact entry, treat
// the torn one as a miss, and accept fresh Puts.
func TestPackStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.pack")
	s, err := OpenPackStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep", packResult(1)); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("torn", packResult(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := len(whole); cut < len(full); cut++ {
		p := filepath.Join(dir, "torn.pack")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ts, err := OpenPackStore(p)
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		if _, ok := ts.Get("keep"); !ok {
			t.Fatalf("cut at %d: intact entry lost", cut)
		}
		if _, ok := ts.Get("torn"); ok {
			t.Fatalf("cut at %d: torn entry served", cut)
		}
		if err := ts.Put("torn", packResult(3)); err != nil {
			t.Fatalf("cut at %d: put after truncation: %v", cut, err)
		}
		ts.Close()
		ts2, err := OpenPackStore(p)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if got, ok := ts2.Get("torn"); !ok || got.Cycles != 3 {
			t.Fatalf("cut at %d: re-put entry lost: %+v ok=%v", cut, got, ok)
		}
		ts2.Close()
	}
}

// TestPackStoreVersionMismatch plants an entry stamped with a stale
// ResultVersion: the CRC is valid so the scan indexes it, but Get must
// treat it as a miss (the DirStore contract).
func TestPackStoreVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.pack")
	payload, _ := json.Marshal(cacheEntry{Version: sim.ResultVersion - 1, Key: "old", Result: packResult(4)})
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if err := os.WriteFile(path, append([]byte(packMagic), frame...), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenPackStore(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	if _, ok := s.Get("old"); ok {
		t.Error("stale-version entry served")
	}
}

func TestPackStoreRejectsNonPack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.pack")
	if err := os.WriteFile(path, []byte("definitely not a pack file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPackStore(path); err == nil {
		t.Error("bad magic accepted")
	}
}

// TestPackStoreBackendBehindRunner proves PackStore satisfies the same
// ResultStore role DirStore plays for the runner's persistent cache: a
// second runner wired to the same pack serves the stored result without
// simulating.
func TestPackStoreBackendBehindRunner(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.pack")
	s, err := OpenPackStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job := cacheTestJob(t)

	r1 := NewRunner(1)
	r1.SetResultStore(s)
	fresh := r1.RunAll([]Job{job}, 1)[0]

	r2 := NewRunner(1)
	r2.SetResultStore(s)
	c0 := r2.Counters()
	if got := r2.RunAll([]Job{job}, 1)[0]; !reflect.DeepEqual(got, fresh) {
		t.Fatalf("pack-cached result differs: %+v vs %+v", got, fresh)
	}
	c1 := r2.Counters()
	if c1.Sims != c0.Sims {
		t.Errorf("second runner simulated %d times; want pack hit", c1.Sims-c0.Sims)
	}
	if c1.DiskHits-c0.DiskHits != 1 {
		t.Errorf("DiskHits delta = %d, want 1", c1.DiskHits-c0.DiskHits)
	}
}
