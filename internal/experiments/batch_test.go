package experiments

import (
	"context"
	"reflect"
	"testing"
	"time"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// batchJobs builds k memoizable jobs sharing one trace identity (workload,
// seed, refs) under distinct prefetchers, so the planner groups them into one
// lockstep batch.
func batchJobs(t *testing.T, name string, refs int, pfs ...sim.PF) []Job {
	t.Helper()
	jobs := make([]Job, len(pfs))
	for i, pf := range pfs {
		jobs[i] = tinyJob(t, name, refs, pf)
	}
	return jobs
}

func TestBatchGroupingRunsOneBatch(t *testing.T) {
	r := NewRunner(1)
	jobs := batchJobs(t, "linpack", 700, sim.PFNone, sim.PFSPP, sim.PFBOP, sim.PFDSPatchSPP)
	r.RunAll(jobs, 1)
	c := r.Counters()
	if c.Sims != 4 || c.Batches != 1 || c.MemoHits != 0 {
		t.Fatalf("cold batched run counters: %+v", c)
	}
	if c.RefsSimulated != 4*700 {
		t.Errorf("RefsSimulated = %d, want %d", c.RefsSimulated, 4*700)
	}
	// Every config is now memoized: a resubmission batches nothing.
	r.RunAll(jobs, 1)
	c = r.Counters()
	if c.Sims != 4 || c.Batches != 1 || c.MemoHits != 4 {
		t.Fatalf("warm rerun counters: %+v", c)
	}
}

func TestBatchingDisabledRunsSerially(t *testing.T) {
	r := NewRunner(1)
	r.SetBatching(false)
	if r.BatchingEnabled() {
		t.Fatal("SetBatching(false) left batching enabled")
	}
	jobs := batchJobs(t, "linpack", 600, sim.PFNone, sim.PFSPP, sim.PFBOP)
	r.RunAll(jobs, 1)
	if c := r.Counters(); c.Sims != 3 || c.Batches != 0 {
		t.Fatalf("serial-mode counters: %+v", c)
	}
}

// TestBatchMatchesSerialResults is the engine-level half of the equivalence
// story: the same heterogeneous job list — mixed prefetchers, LLC sizes, a
// multi-lane mix, and a non-memoizable pollution job riding along — produces
// bit-identical results with batching on and off.
func TestBatchMatchesSerialResults(t *testing.T) {
	mk := func() []Job {
		jobs := batchJobs(t, "tpcc", 900, sim.PFNone, sim.PFSPP, sim.PFDSPatch)
		big := tinyJob(t, "tpcc", 900, sim.PFSPP)
		big.Opt.LLCBytes = 4 << 20
		jobs = append(jobs, big)
		poll := tinyJob(t, "tpcc", 900, sim.PFStreamer)
		poll.Opt.TrackPollution = true
		jobs = append(jobs, poll)
		mp := Job{
			Workloads: []trace.Workload{wlByName(t, "tpcc"), wlByName(t, "linpack")},
			Opt: func() sim.Options {
				o := sim.DefaultMP()
				o.Refs = 900
				return o
			}(),
		}
		jobs = append(jobs, mp, tinyJob(t, "mcf", 900, sim.PFSPP))
		return jobs
	}

	batched := NewRunner(2)
	serial := NewRunner(2)
	serial.SetBatching(false)
	resB := batched.RunAll(mk(), 2)
	resS := serial.RunAll(mk(), 2)
	if cb := batched.Counters(); cb.Batches == 0 {
		t.Fatalf("batched runner executed no batches: %+v", cb)
	}
	for i := range resB {
		b, s := resB[i], resS[i]
		b.StripPorts()
		s.StripPorts() // live pointers; stripped on memoized paths anyway
		if !reflect.DeepEqual(b, s) {
			t.Errorf("job %d: batched result differs from serial\nbatched: %+v\nserial:  %+v", i, b, s)
		}
	}
}

// TestCanceledBatchDoesNotPoisonSiblingMemo is the PR's cancellation edge: a
// batch canceled mid-flight records the cancellation into every member's memo
// entry and drops them all — no sibling config may be left memoized with a
// placeholder result. The identical resubmission under a live context must
// re-simulate every config for real.
func TestCanceledBatchDoesNotPoisonSiblingMemo(t *testing.T) {
	r := NewRunner(1)
	jobs := batchJobs(t, "linpack", 400_000, sim.PFNone, sim.PFSPP, sim.PFBOP, sim.PFDSPatchSPP)
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	if _, err := r.RunAllCtx(ctx, jobs, 1); err == nil {
		t.Fatal("canceled batch reported no error")
	}
	if c := r.Counters(); c.Sims != 0 {
		t.Fatalf("canceled batch still recorded %d sims", c.Sims)
	}
	results, err := r.RunAllCtx(context.Background(), jobs, 1)
	if err != nil {
		t.Fatalf("post-cancel rerun: %v", err)
	}
	for i, res := range results {
		if res.IPC[0] <= 0 {
			t.Errorf("job %d: post-cancel rerun served a poisoned sibling entry: %+v", i, res)
		}
	}
	if c := r.Counters(); c.Sims != 4 || c.MemoHits != 0 {
		t.Errorf("post-cancel rerun counters: %+v", c)
	}
}

// TestPanickingBatchDoesNotPoisonSiblings mirrors the serial panic-safety
// test: a malformed config panicking inside a batch re-raises for the caller
// and leaves no sibling entry closed over a zero result.
func TestPanickingBatchDoesNotPoisonSiblings(t *testing.T) {
	r := NewRunner(1)
	good := tinyJob(t, "linpack", 800, sim.PFNone)
	bad := tinyJob(t, "linpack", 800, sim.PFSPP)
	bad.Opt.LLCBytes = 100_000 // 97 LLC sets: cache.New panics

	recovered := func() (p any) {
		defer func() { p = recover() }()
		r.RunAll([]Job{good, bad}, 1)
		return nil
	}()
	if recovered == nil {
		t.Fatal("expected the malformed LLC size to panic through the batch")
	}
	results := r.RunAll([]Job{good}, 1)
	if results[0].IPC[0] <= 0 {
		t.Fatalf("sibling entry poisoned by the panicking batch: %+v", results[0])
	}
	if c := r.Counters(); c.MemoHits != 0 {
		t.Errorf("panicking batch counted %d memo hits", c.MemoHits)
	}
}

// TestBatchSkipsDiskCachedConfigs pins the cache-first contract: configs the
// persistent store already holds are served from disk and never join the
// batch.
func TestBatchSkipsDiskCachedConfigs(t *testing.T) {
	dir := t.TempDir()
	warm := NewRunner(1)
	if err := warm.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	seed := batchJobs(t, "tpcc", 650, sim.PFNone)
	warm.RunAll(seed, 1)

	r := NewRunner(1)
	if err := r.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	jobs := batchJobs(t, "tpcc", 650, sim.PFNone, sim.PFSPP, sim.PFBOP)
	r.RunAll(jobs, 1)
	c := r.Counters()
	if c.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1", c.DiskHits)
	}
	if c.Sims != 2 || c.Batches != 1 {
		t.Errorf("batch after disk hit: %+v", c)
	}
}
