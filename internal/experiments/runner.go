package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dspatch/internal/dram"
	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// Job is one simulation the engine schedules: a workload mix (one entry =
// single-thread, four = the paper's multi-programmed machine) run under Opt.
type Job struct {
	Workloads []trace.Workload
	Opt       sim.Options
	// NeedPorts marks a job whose caller inspects the live memory-system
	// ports of the result (e.g. Fig. 11b digs DSPatch's internal counters
	// out of them). Such jobs bypass the memo, which stores results with
	// their bulky port state stripped.
	NeedPorts bool
}

// SingleJob is shorthand for a one-core job.
func SingleJob(w trace.Workload, opt sim.Options) Job {
	return Job{Workloads: []trace.Workload{w}, Opt: opt}
}

// runKey identifies a memoizable run: every option that affects a
// simulation's outcome and nothing that doesn't. Simulations are
// deterministic functions of this key, so figures that share runs — Figs. 4
// and 6 share every BOP/SMS/SPP point, Figs. 12/14 and the headline share
// the SPP and DSPatch+SPP runs, and every figure shares baselines — simulate
// each distinct configuration exactly once per process.
type runKey struct {
	names      string
	dram       dram.Config
	llcBytes   int
	refs       int
	seed       int64
	l2         sim.PF
	noL1Stride bool
	// smsPHT is kept only for the one prefetcher it parameterizes, so
	// Fig. 5's four-point sweep still shares a single baseline per workload.
	smsPHT int
}

// memoizable reports whether j is a shareable run and, if so, its cache key.
// Pollution-tracking and port-inspecting runs are excluded: their results
// carry state that is not preserved by the memo.
func memoizable(j Job) (runKey, bool) {
	if j.Opt.TrackPollution || j.NeedPorts {
		return runKey{}, false
	}
	names := make([]string, len(j.Workloads))
	for i, w := range j.Workloads {
		names[i] = w.Name
	}
	l2 := j.Opt.L2
	if l2 == "" {
		l2 = sim.PFNone
	}
	smsPHT := 0
	if l2 == sim.PFSMS {
		smsPHT = j.Opt.SMSPHTEntries
	}
	return runKey{
		names:      strings.Join(names, "\x00"),
		dram:       j.Opt.DRAM,
		llcBytes:   j.Opt.LLCBytes,
		refs:       j.Opt.Refs,
		seed:       j.Opt.Seed,
		l2:         l2,
		noL1Stride: j.Opt.NoL1Stride,
		smsPHT:     smsPHT,
	}, true
}

// memoEntry computes its result once under its own guard, so two distinct
// baselines never serialize on each other and a duplicate submitted
// concurrently waits for the first instead of re-simulating. A canceled
// computation records err; observers drop the entry from the memo so a later
// request recomputes instead of inheriting the cancellation.
type memoEntry struct {
	once     sync.Once
	res      sim.Result
	err      error
	panicked any // recovered panic value; re-raised for every observer
}

// Counters is a monotonic snapshot of the engine's work ledger. Long-running
// callers (the dspatchd daemon's /metrics, tests proving cache behaviour)
// read it before and after an operation and look at the deltas.
type Counters struct {
	// Sims counts simulations actually executed (cold runs).
	Sims uint64
	// MemoHits counts runs served from the in-process memo without
	// simulating — including concurrent duplicates that waited on the
	// first computation.
	MemoHits uint64
	// DiskHits counts runs loaded from the persistent -cache-dir store.
	DiskHits uint64
	// RefsSimulated totals memory references of cold runs (refs × lanes).
	RefsSimulated uint64
	// SimNanos totals wall time spent inside cold simulations. With
	// RefsSimulated it yields the engine's aggregate refs/s.
	SimNanos uint64
}

// Runner fans simulation jobs across a goroutine pool and memoizes every
// port-independent run, so each distinct (workload mix, options)
// configuration simulates exactly once per process no matter how many
// figures request it.
type Runner struct {
	workers int

	mu       sync.Mutex
	memo     map[runKey]*memoEntry
	cacheDir string // non-empty: persistent run cache root (diskcache.go)

	sims     atomic.Uint64
	memoHits atomic.Uint64
	diskHits atomic.Uint64
	refsSim  atomic.Uint64
	simNanos atomic.Uint64
}

// NewRunner returns a Runner whose default pool width is workers
// (<= 0 means runtime.GOMAXPROCS(0)).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, memo: map[runKey]*memoEntry{}}
}

// engine is the process-wide runner every Fig*/Table* function shares, so a
// baseline simulated for one figure is reused by the next.
var engine = NewRunner(0)

// ResetMemo drops every memoized run from the shared engine. Benchmarks and
// cache tests use it to measure cold-memo behaviour (a fresh process);
// normal callers never need it. Counters are monotonic and unaffected.
func ResetMemo() {
	engine.mu.Lock()
	engine.memo = map[runKey]*memoEntry{}
	engine.mu.Unlock()
}

// MemoLen reports how many runs the shared engine currently caches.
func MemoLen() int {
	engine.mu.Lock()
	defer engine.mu.Unlock()
	return len(engine.memo)
}

// EngineCounters snapshots the shared engine's work ledger.
func EngineCounters() Counters {
	return engine.Counters()
}

// Counters snapshots this runner's work ledger.
func (r *Runner) Counters() Counters {
	return Counters{
		Sims:          r.sims.Load(),
		MemoHits:      r.memoHits.Load(),
		DiskHits:      r.diskHits.Load(),
		RefsSimulated: r.refsSim.Load(),
		SimNanos:      r.simNanos.Load(),
	}
}

// simulate runs j cold under ctx, bookkeeping the work ledger.
func (r *Runner) simulate(ctx context.Context, j Job) (sim.Result, error) {
	start := time.Now()
	res, err := sim.RunCtx(ctx, j.Workloads, j.Opt)
	if err != nil {
		return res, err
	}
	r.sims.Add(1)
	r.refsSim.Add(uint64(j.Opt.Refs) * uint64(len(j.Workloads)))
	r.simNanos.Add(uint64(time.Since(start)))
	return res, nil
}

// run executes one job on the background context (the library path, which
// cannot be canceled and therefore cannot fail).
func (r *Runner) run(j Job) sim.Result {
	res, _ := r.runCtx(context.Background(), j)
	return res
}

// runCtx executes one job, consulting the in-process memo first and then the
// persistent disk cache (when configured). Memoized results drop their
// Ports: live memory-system state is bulky, and jobs that need it set
// NeedPorts to bypass the memo entirely.
//
// Cancellation safety: a memo entry whose computation was canceled is
// removed, never served. A waiter that finds a canceled entry retries with a
// fresh one as long as its own context is live, so one canceled request
// never poisons the shared memo for others.
func (r *Runner) runCtx(ctx context.Context, j Job) (sim.Result, error) {
	key, ok := memoizable(j)
	if !ok {
		return r.simulate(ctx, j)
	}
	for {
		r.mu.Lock()
		e := r.memo[key]
		if e == nil {
			e = &memoEntry{}
			r.memo[key] = e
		}
		dir := r.cacheDir
		r.mu.Unlock()
		computed := false
		e.once.Do(func() {
			computed = true
			// A panicking simulation must not leave the sync.Once completed
			// over a zero Result with a nil error — later identical jobs
			// would be served that zero result as a memo hit. Record the
			// panic so every observer drops the entry and re-raises it.
			defer func() {
				if p := recover(); p != nil {
					e.panicked = p
					e.err = fmt.Errorf("simulation panicked: %v", p)
				}
			}()
			if dir != "" {
				if res, ok := cacheLoad(dir, key); ok {
					r.diskHits.Add(1)
					e.res = res
					return
				}
			}
			res, err := r.simulate(ctx, j)
			if err != nil {
				e.err = err
				return
			}
			res.Ports = nil
			if dir != "" {
				cacheStore(dir, key, res)
			}
			e.res = res
		})
		if e.err != nil {
			r.mu.Lock()
			if r.memo[key] == e {
				delete(r.memo, key)
			}
			r.mu.Unlock()
			if e.panicked != nil {
				// Preserve sim.Run's panic semantics for the computing
				// caller and waiters alike (dspatchd's execute recovers it
				// into a failed job; the entry is gone, so a resubmission
				// re-simulates instead of reading a poisoned memo).
				panic(e.panicked)
			}
			if err := ctx.Err(); err != nil {
				return canceledResult(j), err
			}
			continue // the computing request was canceled, not this one: retry
		}
		if !computed {
			r.memoHits.Add(1)
		}
		return e.res, nil
	}
}

// canceledResult is the placeholder for a run aborted by cancellation: zero
// metrics, but one IPC slot per workload so downstream aggregation that
// indexes per-core fields stays in bounds. Speedup ratios computed from it
// are zero and are dropped by stats.FiniteRatios.
func canceledResult(j Job) sim.Result {
	return sim.Result{IPC: make([]float64, len(j.Workloads))}
}

// RunAll executes jobs across a pool of the given width (<= 0 means the
// Runner's default) and returns results in submission order: results[i] is
// jobs[i]'s outcome regardless of scheduling, so parallel and serial runs
// aggregate bit-identically.
func (r *Runner) RunAll(jobs []Job, workers int) []sim.Result {
	results, _ := r.RunAllCtx(context.Background(), jobs, workers)
	return results
}

// RunAllCtx is RunAll under a context: when ctx fires, in-flight simulations
// abort at their next cancellation check, every not-yet-run job is filled
// with canceledResult, and the first context error is returned. Results of
// jobs that completed before the cancellation are exact.
func (r *Runner) RunAllCtx(ctx context.Context, jobs []Job, workers int) ([]sim.Result, error) {
	if workers <= 0 {
		workers = r.workers
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]sim.Result, len(jobs))
	var errMu sync.Mutex
	var firstErr error
	runOne := func(i int) {
		// runCtx returns canceledResult-shaped placeholders on error, so
		// results[i] always has one IPC slot per workload.
		res, err := r.runCtx(ctx, jobs[i])
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
		results[i] = res
	}
	if workers <= 1 {
		for i := range jobs {
			runOne(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	return results, firstErr
}

// RunJobs schedules jobs on the process-shared engine — the programmatic
// entry the dspatchd service layers on. Results share the same memo and
// persistent cache as the Fig*/Table* functions, so a job submitted over
// HTTP and the equivalent library call return identical results and the
// second of the two never re-simulates.
func RunJobs(ctx context.Context, jobs []Job, workers int) ([]sim.Result, error) {
	return engine.RunAllCtx(ctx, jobs, workers)
}

// runAll schedules jobs on the shared engine at this scale's parallelism.
func (s Scale) runAll(jobs []Job) []sim.Result {
	results, _ := engine.RunAllCtx(s.context(), jobs, s.Parallel)
	return results
}
