package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dspatch/internal/dram"
	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// Job is one simulation the engine schedules: a workload mix (one entry =
// single-thread, four = the paper's multi-programmed machine) run under Opt.
type Job struct {
	Workloads []trace.Workload
	Opt       sim.Options
	// NeedPorts marks a job whose caller inspects the live memory-system
	// ports of the result (e.g. Fig. 11b digs DSPatch's internal counters
	// out of them). Such jobs bypass the memo, which stores results with
	// their bulky port state stripped.
	NeedPorts bool
}

// SingleJob is shorthand for a one-core job.
func SingleJob(w trace.Workload, opt sim.Options) Job {
	return Job{Workloads: []trace.Workload{w}, Opt: opt}
}

// runKey identifies a memoizable run: every option that affects a
// simulation's outcome and nothing that doesn't. Simulations are
// deterministic functions of this key, so figures that share runs — Figs. 4
// and 6 share every BOP/SMS/SPP point, Figs. 12/14 and the headline share
// the SPP and DSPatch+SPP runs, and every figure shares baselines — simulate
// each distinct configuration exactly once per process.
type runKey struct {
	names      string
	dram       dram.Config
	llcBytes   int
	refs       int
	seed       int64
	l2         sim.PF
	noL1Stride bool
	// smsPHT is kept only for the one prefetcher it parameterizes, so
	// Fig. 5's four-point sweep still shares a single baseline per workload.
	smsPHT int
	// collectStats is part of the key even though it cannot change core
	// metrics: a stats-off result carries no Prefetchers snapshot, and
	// serving it to a stats-on request (or vice versa) would make the memo
	// lossy.
	collectStats bool
}

// memoizable reports whether j is a shareable run and, if so, its cache key.
// Pollution-tracking and port-inspecting runs are excluded: their results
// carry state that is not preserved by the memo.
func memoizable(j Job) (runKey, bool) {
	if j.Opt.TrackPollution || j.NeedPorts {
		return runKey{}, false
	}
	names := make([]string, len(j.Workloads))
	for i, w := range j.Workloads {
		names[i] = w.Name
		// Non-builtin workloads fold their content fingerprint into the key:
		// an imported trace or registered spec is cached by what it contains,
		// so renaming identical content still hits and editing a spec misses.
		// Builtin fingerprints are empty, keeping historical cache entries
		// valid.
		if w.Fingerprint != "" {
			names[i] = w.Name + "\x01" + w.Fingerprint
		}
	}
	l2 := j.Opt.L2
	if l2 == "" {
		l2 = sim.PFNone
	}
	smsPHT := 0
	if l2 == sim.PFSMS {
		smsPHT = j.Opt.SMSPHTEntries
	}
	return runKey{
		names:        strings.Join(names, "\x00"),
		dram:         j.Opt.DRAM,
		llcBytes:     j.Opt.LLCBytes,
		refs:         j.Opt.Refs,
		seed:         j.Opt.Seed,
		l2:           l2,
		noL1Stride:   j.Opt.NoL1Stride,
		smsPHT:       smsPHT,
		collectStats: j.Opt.CollectStats,
	}, true
}

// memoEntry computes its result once under the ownership of whichever
// request installed it, so two distinct baselines never serialize on each
// other and a duplicate submitted concurrently waits for the first instead of
// re-simulating. Ownership is decided at insertion (the inserter computes,
// everyone else waits on done), which lets the batch scheduler claim several
// entries up front and fill them from one lockstep run. A canceled
// computation records err; observers drop the entry from the memo so a later
// request recomputes instead of inheriting the cancellation.
type memoEntry struct {
	done     chan struct{} // closed once res/err/panicked are final
	res      sim.Result
	err      error
	panicked any // recovered panic value; re-raised for every observer
}

// Counters is a monotonic snapshot of the engine's work ledger. Long-running
// callers (the dspatchd daemon's /metrics, tests proving cache behaviour)
// read it before and after an operation and look at the deltas.
type Counters struct {
	// Sims counts simulations actually executed (cold runs).
	Sims uint64
	// MemoHits counts runs served from the in-process memo without
	// simulating — including concurrent duplicates that waited on the
	// first computation.
	MemoHits uint64
	// DiskHits counts runs loaded from the persistent -cache-dir store.
	DiskHits uint64
	// RefsSimulated totals memory references of cold runs (refs × lanes).
	RefsSimulated uint64
	// SimNanos totals wall time spent inside cold simulations. A lockstep
	// batch contributes its wall time once, however many configs it carried,
	// so with RefsSimulated this yields the engine's aggregate refs/s —
	// including the batching speedup.
	SimNanos uint64
	// Batches counts multi-config lockstep batches executed (each also adds
	// one Sims per member config).
	Batches uint64
}

// Runner fans simulation jobs across a goroutine pool and memoizes every
// port-independent run, so each distinct (workload mix, options)
// configuration simulates exactly once per process no matter how many
// figures request it.
type Runner struct {
	workers int

	mu       sync.Mutex
	memo     map[runKey]*memoEntry
	store    ResultStore // non-nil: persistent run cache backend (diskcache.go)
	cacheDir string      // directory label when store is a DirStore

	// cacheWriteOff latches after the first failed store write: the backend
	// is degraded (disk full, permissions), so further writes are skipped
	// while reads and simulation continue.
	cacheWriteOff atomic.Bool

	// batchOff disables lockstep batching: every job runs serially through
	// runCtx, the pre-batching behaviour (the -batch=false A/B path).
	batchOff atomic.Bool

	sims     atomic.Uint64
	memoHits atomic.Uint64
	diskHits atomic.Uint64
	refsSim  atomic.Uint64
	simNanos atomic.Uint64
	batches  atomic.Uint64
}

// NewRunner returns a Runner whose default pool width is workers
// (<= 0 means runtime.GOMAXPROCS(0)).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, memo: map[runKey]*memoEntry{}}
}

// engine is the process-wide runner every Fig*/Table* function shares, so a
// baseline simulated for one figure is reused by the next.
var engine = NewRunner(0)

// ResetMemo drops every memoized run from the shared engine. Benchmarks and
// cache tests use it to measure cold-memo behaviour (a fresh process);
// normal callers never need it. Counters are monotonic and unaffected.
func ResetMemo() {
	engine.mu.Lock()
	engine.memo = map[runKey]*memoEntry{}
	engine.mu.Unlock()
}

// MemoLen reports how many runs the shared engine currently caches.
func MemoLen() int {
	engine.mu.Lock()
	defer engine.mu.Unlock()
	return len(engine.memo)
}

// EngineCounters snapshots the shared engine's work ledger.
func EngineCounters() Counters {
	return engine.Counters()
}

// SetBatching toggles lockstep batch execution on the process-shared engine
// (see Runner.SetBatching). Front ends expose it as -batch; it defaults on.
func SetBatching(on bool) { engine.SetBatching(on) }

// BatchingEnabled reports whether the process-shared engine batches
// same-trace jobs. Schedulers that order work to maximize batching (the
// campaign engine) consult it.
func BatchingEnabled() bool { return engine.BatchingEnabled() }

// SetBatching toggles lockstep batching: when on (the default), RunAll groups
// memoizable jobs sharing one (workload mix, seed, refs) trace identity and
// advances each group's configs in lockstep over a single trace walk
// (sim.RunBatch). Results are bit-identical either way; only scheduling and
// throughput change.
func (r *Runner) SetBatching(on bool) { r.batchOff.Store(!on) }

// BatchingEnabled reports whether this runner batches same-trace jobs.
func (r *Runner) BatchingEnabled() bool { return !r.batchOff.Load() }

// Counters snapshots this runner's work ledger.
func (r *Runner) Counters() Counters {
	return Counters{
		Sims:          r.sims.Load(),
		MemoHits:      r.memoHits.Load(),
		DiskHits:      r.diskHits.Load(),
		RefsSimulated: r.refsSim.Load(),
		SimNanos:      r.simNanos.Load(),
		Batches:       r.batches.Load(),
	}
}

// simulate runs j cold under ctx, bookkeeping the work ledger.
func (r *Runner) simulate(ctx context.Context, j Job) (sim.Result, error) {
	start := time.Now()
	res, err := sim.RunCtx(ctx, j.Workloads, j.Opt)
	if err != nil {
		return res, err
	}
	r.sims.Add(1)
	r.refsSim.Add(uint64(j.Opt.Refs) * uint64(len(j.Workloads)))
	r.simNanos.Add(uint64(time.Since(start)))
	return res, nil
}

// run executes one job on the background context (the library path, which
// cannot be canceled and therefore cannot fail).
func (r *Runner) run(j Job) sim.Result {
	res, _ := r.runCtx(context.Background(), j)
	return res
}

// runCtx executes one job, consulting the in-process memo first and then the
// persistent disk cache (when configured). Memoized results drop their
// Ports: live memory-system state is bulky, and jobs that need it set
// NeedPorts to bypass the memo entirely.
//
// Cancellation safety: a memo entry whose computation was canceled is
// removed, never served. A waiter that finds a canceled entry retries with a
// fresh one as long as its own context is live, so one canceled request
// never poisons the shared memo for others.
func (r *Runner) runCtx(ctx context.Context, j Job) (sim.Result, error) {
	key, ok := memoizable(j)
	if !ok {
		return r.simulate(ctx, j)
	}
	for {
		e, owner, st := r.acquire(key)
		if owner {
			r.compute(ctx, e, key, j, st)
		} else {
			<-e.done
		}
		if e.err != nil {
			r.dropEntry(key, e)
			if e.panicked != nil {
				// Preserve sim.Run's panic semantics for the computing
				// caller and waiters alike (dspatchd's execute recovers it
				// into a failed job; the entry is gone, so a resubmission
				// re-simulates instead of reading a poisoned memo).
				panic(e.panicked)
			}
			if err := ctx.Err(); err != nil {
				return canceledResult(j), err
			}
			continue // the computing request was canceled, not this one: retry
		}
		if !owner {
			r.memoHits.Add(1)
		}
		return e.res, nil
	}
}

// acquire looks up (or installs) the memo entry of key. The request that
// installs the entry owns it — it must fill res/err and close done, through
// compute or the batch path — and every later request waits on done instead.
func (r *Runner) acquire(key runKey) (e *memoEntry, owner bool, st ResultStore) {
	r.mu.Lock()
	e = r.memo[key]
	if e == nil {
		e = &memoEntry{done: make(chan struct{})}
		r.memo[key] = e
		owner = true
	}
	st = r.store
	r.mu.Unlock()
	return e, owner, st
}

// dropEntry removes a failed entry from the memo (if it is still the resident
// one) so a later request recomputes instead of inheriting the failure.
func (r *Runner) dropEntry(key runKey, e *memoEntry) {
	r.mu.Lock()
	if r.memo[key] == e {
		delete(r.memo, key)
	}
	r.mu.Unlock()
}

// compute fills an owned entry serially: disk cache first, then a cold run.
// The entry is always closed on return, panics included.
func (r *Runner) compute(ctx context.Context, e *memoEntry, key runKey, j Job, st ResultStore) {
	defer close(e.done)
	// A panicking simulation must not leave a closed entry holding a zero
	// Result with a nil error — later identical jobs would be served that
	// zero result as a memo hit. Record the panic so every observer drops
	// the entry and re-raises it.
	defer func() {
		if p := recover(); p != nil {
			e.panicked = p
			e.err = fmt.Errorf("simulation panicked: %v", p)
		}
	}()
	if res, ok := r.cacheGet(st, key); ok {
		r.diskHits.Add(1)
		e.res = res
		return
	}
	res, err := r.simulate(ctx, j)
	if err != nil {
		e.err = err
		return
	}
	res.StripPorts()
	r.cachePut(st, key, res)
	e.res = res
}

// canceledResult is the placeholder for a run aborted by cancellation: zero
// metrics, but one IPC slot per workload so downstream aggregation that
// indexes per-core fields stays in bounds. Speedup ratios computed from it
// are zero and are dropped by stats.FiniteRatios.
func canceledResult(j Job) sim.Result {
	return sim.Result{IPC: make([]float64, len(j.Workloads))}
}

// RunAll executes jobs across a pool of the given width (<= 0 means the
// Runner's default) and returns results in submission order: results[i] is
// jobs[i]'s outcome regardless of scheduling, so parallel and serial runs
// aggregate bit-identically.
func (r *Runner) RunAll(jobs []Job, workers int) []sim.Result {
	results, _ := r.RunAllCtx(context.Background(), jobs, workers)
	return results
}

// maxBatchConfigs bounds how many machine configurations one lockstep batch
// carries. Beyond this the machines' combined hot state stops fitting in
// cache and the batch degrades toward serial speed, so larger groups are
// split into consecutive batches.
const maxBatchConfigs = 16

// batchKey is the trace identity jobs must share to advance in lockstep over
// one trace walk: the workload mix, the base seed, and the ref count.
type batchKey struct {
	names string
	refs  int
	seed  int64
}

// task is one unit of worker-pool scheduling: a single job index, or a group
// of job indices sharing one trace identity that run as a lockstep batch.
type task struct {
	single int
	group  []int // nil for single tasks
}

// plan partitions jobs into tasks. Non-memoizable jobs (pollution tracking,
// port inspection) always run alone — their results carry state the memo
// cannot hold, so they bypass batching the same way they bypass the memo.
// Memoizable jobs group by trace identity in first-appearance order, chunked
// at maxBatchConfigs; groups of one degrade to plain single tasks.
func (r *Runner) plan(jobs []Job) []task {
	if r.batchOff.Load() || len(jobs) < 2 {
		tasks := make([]task, len(jobs))
		for i := range jobs {
			tasks[i] = task{single: i}
		}
		return tasks
	}
	tasks := make([]task, 0, len(jobs))
	groups := map[batchKey][]int{}
	var order []batchKey
	for i, j := range jobs {
		key, ok := memoizable(j)
		if !ok {
			tasks = append(tasks, task{single: i})
			continue
		}
		bk := batchKey{names: key.names, refs: key.refs, seed: key.seed}
		if groups[bk] == nil {
			order = append(order, bk)
		}
		groups[bk] = append(groups[bk], i)
	}
	for _, bk := range order {
		idxs := groups[bk]
		for lo := 0; lo < len(idxs); lo += maxBatchConfigs {
			hi := min(lo+maxBatchConfigs, len(idxs))
			if hi-lo == 1 {
				tasks = append(tasks, task{single: idxs[lo]})
			} else {
				tasks = append(tasks, task{group: idxs[lo:hi]})
			}
		}
	}
	return tasks
}

// RunAllCtx is RunAll under a context: when ctx fires, in-flight simulations
// abort at their next cancellation check, every not-yet-run job is filled
// with canceledResult, and the first context error is returned. Results of
// jobs that completed before the cancellation are exact.
func (r *Runner) RunAllCtx(ctx context.Context, jobs []Job, workers int) ([]sim.Result, error) {
	if workers <= 0 {
		workers = r.workers
	}
	tasks := r.plan(jobs)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]sim.Result, len(jobs))
	var errMu sync.Mutex
	var firstErr error
	noteErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	runTask := func(t task) {
		if t.group == nil {
			// runCtx returns canceledResult-shaped placeholders on error, so
			// results[i] always has one IPC slot per workload.
			res, err := r.runCtx(ctx, jobs[t.single])
			if err != nil {
				noteErr(err)
			}
			results[t.single] = res
			return
		}
		r.runGroup(ctx, jobs, t.group, results, noteErr)
	}
	if workers <= 1 {
		for _, t := range tasks {
			runTask(t)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					runTask(tasks[i])
				}
			}()
		}
		wg.Wait()
	}
	return results, firstErr
}

// runGroup executes a group of memoizable jobs sharing one trace identity.
// The memo and disk cache are consulted per config first: entries another
// request already owns, and disk-cached configs, never join the batch. The
// remaining owned configs advance in lockstep through one sim.RunBatchCtx
// walk of the shared trace.
//
// Failure isolation mirrors the serial path per entry: a canceled batch
// records the error into every owned entry and drops them all — siblings are
// never poisoned with a partial result — and a panic is recorded into every
// owned entry before re-raising, so no waiter hangs on an open entry.
func (r *Runner) runGroup(ctx context.Context, jobs []Job, idxs []int, results []sim.Result, noteErr func(error)) {
	type member struct {
		idx int
		key runKey
		e   *memoEntry
	}
	var owned []member
	var rest []int // indices resolved through runCtx after the batch
	var st ResultStore
	for _, i := range idxs {
		key, _ := memoizable(jobs[i])
		e, owner, s := r.acquire(key)
		st = s
		if !owner {
			// Someone else (possibly an earlier duplicate in this very group)
			// is computing this entry; wait for it after the batch runs.
			rest = append(rest, i)
			continue
		}
		if res, ok := r.cacheGet(st, key); ok {
			r.diskHits.Add(1)
			e.res = res
			close(e.done)
			results[i] = res
			continue
		}
		owned = append(owned, member{idx: i, key: key, e: e})
	}

	if len(owned) > 0 {
		ws := jobs[owned[0].idx].Workloads
		opts := make([]sim.Options, len(owned))
		for k, mb := range owned {
			opts[k] = jobs[mb.idx].Opt
		}
		func() {
			start := time.Now()
			defer func() {
				if p := recover(); p != nil {
					for _, mb := range owned {
						mb.e.panicked = p
						mb.e.err = fmt.Errorf("simulation panicked: %v", p)
						close(mb.e.done)
						r.dropEntry(mb.key, mb.e)
					}
					panic(p)
				}
			}()
			batch, err := sim.RunBatchCtx(ctx, ws, opts)
			if err != nil {
				for _, mb := range owned {
					mb.e.err = err
					close(mb.e.done)
					r.dropEntry(mb.key, mb.e)
					results[mb.idx] = canceledResult(jobs[mb.idx])
				}
				noteErr(err)
				return
			}
			// One batch is one trace walk: wall time lands once, work
			// (sims, refs) lands per member config.
			r.simNanos.Add(uint64(time.Since(start)))
			if len(owned) > 1 {
				r.batches.Add(1)
			}
			for k, mb := range owned {
				res := batch[k]
				res.StripPorts()
				r.sims.Add(1)
				r.refsSim.Add(uint64(opts[k].Refs) * uint64(len(ws)))
				r.cachePut(st, mb.key, res)
				mb.e.res = res
				close(mb.e.done)
				results[mb.idx] = res
			}
		}()
	}

	// Entries owned elsewhere resolve through the serial path: by now the
	// owner has finished or will shortly, so these become memo hits (or
	// retries, if the owner was canceled). Waiting here is deadlock-free —
	// this worker holds no open entries anymore.
	for _, i := range rest {
		res, err := r.runCtx(ctx, jobs[i])
		if err != nil {
			noteErr(err)
		}
		results[i] = res
	}
}

// RunJobs schedules jobs on the process-shared engine — the programmatic
// entry the dspatchd service layers on. Results share the same memo and
// persistent cache as the Fig*/Table* functions, so a job submitted over
// HTTP and the equivalent library call return identical results and the
// second of the two never re-simulates.
func RunJobs(ctx context.Context, jobs []Job, workers int) ([]sim.Result, error) {
	return engine.RunAllCtx(ctx, jobs, workers)
}

// runAll schedules jobs on the shared engine at this scale's parallelism.
func (s Scale) runAll(jobs []Job) []sim.Result {
	results, _ := engine.RunAllCtx(s.context(), jobs, s.Parallel)
	return results
}
