package experiments

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"dspatch/internal/dram"
	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// Job is one simulation the engine schedules: a workload mix (one entry =
// single-thread, four = the paper's multi-programmed machine) run under Opt.
type Job struct {
	Workloads []trace.Workload
	Opt       sim.Options
	// NeedPorts marks a job whose caller inspects the live memory-system
	// ports of the result (e.g. Fig. 11b digs DSPatch's internal counters
	// out of them). Such jobs bypass the memo, which stores results with
	// their bulky port state stripped.
	NeedPorts bool
}

// SingleJob is shorthand for a one-core job.
func SingleJob(w trace.Workload, opt sim.Options) Job {
	return Job{Workloads: []trace.Workload{w}, Opt: opt}
}

// runKey identifies a memoizable run: every option that affects a
// simulation's outcome and nothing that doesn't. Simulations are
// deterministic functions of this key, so figures that share runs — Figs. 4
// and 6 share every BOP/SMS/SPP point, Figs. 12/14 and the headline share
// the SPP and DSPatch+SPP runs, and every figure shares baselines — simulate
// each distinct configuration exactly once per process.
type runKey struct {
	names      string
	dram       dram.Config
	llcBytes   int
	refs       int
	seed       int64
	l2         sim.PF
	noL1Stride bool
	// smsPHT is kept only for the one prefetcher it parameterizes, so
	// Fig. 5's four-point sweep still shares a single baseline per workload.
	smsPHT int
}

// memoizable reports whether j is a shareable run and, if so, its cache key.
// Pollution-tracking and port-inspecting runs are excluded: their results
// carry state that is not preserved by the memo.
func memoizable(j Job) (runKey, bool) {
	if j.Opt.TrackPollution || j.NeedPorts {
		return runKey{}, false
	}
	names := make([]string, len(j.Workloads))
	for i, w := range j.Workloads {
		names[i] = w.Name
	}
	l2 := j.Opt.L2
	if l2 == "" {
		l2 = sim.PFNone
	}
	smsPHT := 0
	if l2 == sim.PFSMS {
		smsPHT = j.Opt.SMSPHTEntries
	}
	return runKey{
		names:      strings.Join(names, "\x00"),
		dram:       j.Opt.DRAM,
		llcBytes:   j.Opt.LLCBytes,
		refs:       j.Opt.Refs,
		seed:       j.Opt.Seed,
		l2:         l2,
		noL1Stride: j.Opt.NoL1Stride,
		smsPHT:     smsPHT,
	}, true
}

// memoEntry computes its result once under its own guard, so two distinct
// baselines never serialize on each other and a duplicate submitted
// concurrently waits for the first instead of re-simulating.
type memoEntry struct {
	once sync.Once
	res  sim.Result
}

// Runner fans simulation jobs across a goroutine pool and memoizes every
// port-independent run, so each distinct (workload mix, options)
// configuration simulates exactly once per process no matter how many
// figures request it.
type Runner struct {
	workers int

	mu       sync.Mutex
	memo     map[runKey]*memoEntry
	cacheDir string // non-empty: persistent run cache root (diskcache.go)
}

// NewRunner returns a Runner whose default pool width is workers
// (<= 0 means runtime.GOMAXPROCS(0)).
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, memo: map[runKey]*memoEntry{}}
}

// engine is the process-wide runner every Fig*/Table* function shares, so a
// baseline simulated for one figure is reused by the next.
var engine = NewRunner(0)

// ResetMemo drops every memoized run from the shared engine. Benchmarks use
// it to measure cold-cache behaviour; normal callers never need it.
func ResetMemo() {
	engine.mu.Lock()
	engine.memo = map[runKey]*memoEntry{}
	engine.mu.Unlock()
}

// MemoLen reports how many runs the shared engine currently caches.
func MemoLen() int {
	engine.mu.Lock()
	defer engine.mu.Unlock()
	return len(engine.memo)
}

// run executes one job, consulting the in-process memo first and then the
// persistent disk cache (when configured). Memoized results drop their
// Ports: live memory-system state is bulky, and jobs that need it set
// NeedPorts to bypass the memo entirely.
func (r *Runner) run(j Job) sim.Result {
	key, ok := memoizable(j)
	if !ok {
		return sim.Run(j.Workloads, j.Opt)
	}
	r.mu.Lock()
	e := r.memo[key]
	if e == nil {
		e = &memoEntry{}
		r.memo[key] = e
	}
	dir := r.cacheDir
	r.mu.Unlock()
	e.once.Do(func() {
		if dir != "" {
			if res, ok := cacheLoad(dir, key); ok {
				e.res = res
				return
			}
		}
		res := sim.Run(j.Workloads, j.Opt)
		res.Ports = nil
		if dir != "" {
			cacheStore(dir, key, res)
		}
		e.res = res
	})
	return e.res
}

// RunAll executes jobs across a pool of the given width (<= 0 means the
// Runner's default) and returns results in submission order: results[i] is
// jobs[i]'s outcome regardless of scheduling, so parallel and serial runs
// aggregate bit-identically.
func (r *Runner) RunAll(jobs []Job, workers int) []sim.Result {
	if workers <= 0 {
		workers = r.workers
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]sim.Result, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			results[i] = r.run(j)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				results[i] = r.run(jobs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// runAll schedules jobs on the shared engine at this scale's parallelism.
func (s Scale) runAll(jobs []Job) []sim.Result {
	return engine.RunAll(jobs, s.Parallel)
}
