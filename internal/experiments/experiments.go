// Package experiments regenerates every table and figure of the DSPatch
// paper's evaluation (see the "Experiment index" section of the repository
// README.md). Each Fig*/Table* function runs the needed simulations at the
// requested Scale and returns typed rows; Format* helpers render them as
// text tables that mirror the paper's layout.
//
// Simulations are scheduled on a shared concurrent engine (runner.go): jobs
// fan out across Scale.Parallel worker goroutines with deterministic result
// ordering, and every PFNone baseline is memoized per
// (workloads, DRAM, LLC, Refs, Seed) so figures that share a machine
// configuration simulate each baseline exactly once per process.
package experiments

import (
	"context"
	"math"

	"dspatch/internal/dram"
	"dspatch/internal/sim"
	"dspatch/internal/stats"
	"dspatch/internal/trace"
)

// Scale bounds experiment cost. Quick keeps `go test -bench=.` laptop-sized;
// Full reproduces the paper's whole roster (cmd/dspatchsim -full).
type Scale struct {
	Refs        int // memory references per workload run
	PerCategory int // workloads sampled per category (0 = all)
	MPMixes     int // multi-programmed mixes (Fig. 17/18)
	Seed        int64
	Parallel    int // simulation worker goroutines (0 = GOMAXPROCS)

	// cctx, when set via WithContext, cancels the scale's simulations.
	cctx context.Context
}

// Quick is the default bench scale.
func Quick() Scale { return Scale{Refs: 40_000, PerCategory: 2, MPMixes: 4, Seed: 1} }

// Full is the paper-scale configuration.
func Full() Scale { return Scale{Refs: 200_000, PerCategory: 0, MPMixes: 42, Seed: 1} }

// WithParallel returns a copy of s running n simulation workers (n <= 0
// restores the GOMAXPROCS default). Results are bit-identical at any n.
func (s Scale) WithParallel(n int) Scale {
	s.Parallel = n
	return s
}

// WithContext returns a copy of s whose simulations abort when ctx fires —
// the hook the dspatchd service uses for per-job cancellation. A canceled
// experiment's return value is meaningless (aborted runs contribute zero
// metrics that the aggregation drops); callers that set a context must check
// ctx.Err() before using the result. Completed runs are never affected:
// results are bit-identical with or without a context.
func (s Scale) WithContext(ctx context.Context) Scale {
	s.cctx = ctx
	return s
}

// context returns the scale's cancellation context, Background if unset.
func (s Scale) context() context.Context {
	if s.cctx != nil {
		return s.cctx
	}
	return context.Background()
}

// Workloads returns the evaluation roster at this scale — exported so
// campaign builders (examples/campaign, the sweep tests) can sweep exactly
// the workload set a Fig*/Table* function would run.
func (s Scale) Workloads() []trace.Workload { return s.workloads() }

// workloads returns the evaluation roster at this scale, category-balanced.
func (s Scale) workloads() []trace.Workload {
	if s.PerCategory <= 0 {
		return trace.Workloads()
	}
	var out []trace.Workload
	for _, cat := range trace.Categories {
		ws := trace.ByCategory(cat)
		n := s.PerCategory
		if n > len(ws) {
			n = len(ws)
		}
		// Prefer memory-intensive members: they carry the paper's signal.
		taken := 0
		for _, w := range ws {
			if taken == n {
				break
			}
			if w.MemIntensive {
				out = append(out, w)
				taken++
			}
		}
		for _, w := range ws {
			if taken == n {
				break
			}
			if !w.MemIntensive {
				out = append(out, w)
				taken++
			}
		}
	}
	return out
}

// memIntensive returns the high-MPKI subset at this scale.
func (s Scale) memIntensive() []trace.Workload {
	ws := trace.MemIntensive()
	if s.PerCategory <= 0 {
		return ws
	}
	// Balanced sample: s.PerCategory per category where available.
	byCat := map[trace.Category]int{}
	var out []trace.Workload
	for _, w := range ws {
		if byCat[w.Category] < s.PerCategory {
			byCat[w.Category]++
			out = append(out, w)
		}
	}
	return out
}

// stOptions is the paper's single-thread machine at this scale.
func (s Scale) stOptions() sim.Options {
	o := sim.DefaultST()
	o.Refs = s.Refs
	o.Seed = s.Seed
	return o
}

// CategoryResult holds per-category performance deltas for a prefetcher set
// (the layout of Figs. 4, 12, 14, 17).
type CategoryResult struct {
	Prefetchers []sim.PF
	Categories  []trace.Category
	// Delta[pf][cat] is the geomean performance delta (%) of that category.
	Delta [][]float64
	// Geomean[pf] aggregates across every workload run.
	Geomean []float64
	// Dropped counts degenerate runs (zero/non-finite speedup ratios)
	// excluded from the aggregates.
	Dropped int
}

// categorySweep runs each workload once per prefetcher (plus one shared
// baseline) and aggregates per category. All simulations fan out across the
// engine at s.Parallel width.
func categorySweep(ws []trace.Workload, s Scale, opt sim.Options, pfs []sim.PF) CategoryResult {
	jobs := make([]Job, 0, len(ws)*(len(pfs)+1))
	for _, w := range ws {
		base := opt
		base.L2 = sim.PFNone
		jobs = append(jobs, SingleJob(w, base))
		for _, pf := range pfs {
			with := opt
			with.L2 = pf
			jobs = append(jobs, SingleJob(w, with))
		}
	}
	results := s.runAll(jobs)

	res := CategoryResult{Prefetchers: pfs, Categories: trace.Categories}
	perCat := make([]map[trace.Category][]float64, len(pfs))
	all := make([][]float64, len(pfs))
	for i := range pfs {
		perCat[i] = map[trace.Category][]float64{}
	}
	k := 0
	for _, w := range ws {
		b := results[k]
		k++
		for i := range pfs {
			ratio := sim.Speedup(b, results[k])[0]
			k++
			perCat[i][w.Category] = append(perCat[i][w.Category], ratio)
			all[i] = append(all[i], ratio)
		}
	}
	for i := range pfs {
		var row []float64
		for _, cat := range res.Categories {
			row = append(row, deltaOrNaN(perCat[i][cat]))
		}
		res.Delta = append(res.Delta, row)
		kept, dropped := stats.FiniteRatios(all[i])
		res.Dropped += dropped
		res.Geomean = append(res.Geomean, stats.GeomeanSpeedupPct(kept))
	}
	return res
}

// deltaOrNaN aggregates speedup ratios, or returns NaN when the category
// had no runs at this scale (rendered as "n/a").
func deltaOrNaN(ratios []float64) float64 {
	if len(ratios) == 0 {
		return math.NaN()
	}
	return stats.GeomeanSpeedupPct(ratios)
}

// BWPoint is one memory configuration of the bandwidth-scaling figures.
type BWPoint struct {
	Name string
	Cfg  dram.Config
}

// bwPoints returns the six configurations of Figs. 1, 6 and 15: one and two
// channels of DDR4-1600/2133/2400.
func bwPoints() []BWPoint {
	var out []BWPoint
	for _, ch := range []int{1, 2} {
		for _, mt := range []int{1600, 2133, 2400} {
			cfg := dram.DDR4(ch, mt)
			out = append(out, BWPoint{Name: cfg.String(), Cfg: cfg})
		}
	}
	return out
}

// ScalingResult holds performance deltas across DRAM bandwidth points
// (Figs. 1, 6, 15).
type ScalingResult struct {
	Points      []BWPoint
	Prefetchers []sim.PF
	// Delta[pf][point] is the geomean performance delta (%).
	Delta [][]float64
	// Dropped counts degenerate runs excluded from the aggregates.
	Dropped int
}

// bandwidthSweep runs the workload set across all six bandwidth points; the
// whole point × workload × prefetcher grid is one parallel batch.
func bandwidthSweep(ws []trace.Workload, s Scale, pfs []sim.PF) ScalingResult {
	res := ScalingResult{Points: bwPoints(), Prefetchers: pfs}
	res.Delta = make([][]float64, len(pfs))

	jobs := make([]Job, 0, len(res.Points)*len(ws)*(len(pfs)+1))
	for _, pt := range res.Points {
		opt := s.stOptions()
		opt.DRAM = pt.Cfg
		for _, w := range ws {
			base := opt
			base.L2 = sim.PFNone
			jobs = append(jobs, SingleJob(w, base))
			for _, pf := range pfs {
				with := opt
				with.L2 = pf
				jobs = append(jobs, SingleJob(w, with))
			}
		}
	}
	results := s.runAll(jobs)

	k := 0
	for range res.Points {
		ratios := make([][]float64, len(pfs))
		for range ws {
			b := results[k]
			k++
			for i := range pfs {
				ratios[i] = append(ratios[i], sim.Speedup(b, results[k])[0])
				k++
			}
		}
		for i := range pfs {
			kept, dropped := stats.FiniteRatios(ratios[i])
			res.Dropped += dropped
			res.Delta[i] = append(res.Delta[i], stats.GeomeanSpeedupPct(kept))
		}
	}
	return res
}
