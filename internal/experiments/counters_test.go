package experiments

import (
	"context"
	"testing"
	"time"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

func tinyJob(t *testing.T, name string, refs int, pf sim.PF) Job {
	t.Helper()
	w, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	opt := sim.DefaultST()
	opt.Refs = refs
	opt.Seed = 1
	opt.L2 = pf
	return SingleJob(w, opt)
}

func TestCountersTrackSimsAndMemoHits(t *testing.T) {
	r := NewRunner(1)
	j := tinyJob(t, "linpack", 700, sim.PFNone)

	before := r.Counters()
	if before != (Counters{}) {
		t.Fatalf("fresh runner has non-zero counters: %+v", before)
	}
	r.RunAll([]Job{j}, 1)
	mid := r.Counters()
	if mid.Sims != 1 || mid.MemoHits != 0 {
		t.Fatalf("after cold run: %+v", mid)
	}
	if mid.RefsSimulated != 700 {
		t.Errorf("RefsSimulated = %d, want 700", mid.RefsSimulated)
	}
	if mid.SimNanos == 0 {
		t.Error("SimNanos not accounted")
	}
	r.RunAll([]Job{j, j}, 1)
	after := r.Counters()
	if after.Sims != 1 {
		t.Errorf("memoized re-run simulated again: Sims = %d", after.Sims)
	}
	if after.MemoHits != 2 {
		t.Errorf("MemoHits = %d, want 2", after.MemoHits)
	}
}

func TestCountersDiskHit(t *testing.T) {
	r := NewRunner(1)
	if err := r.SetCacheDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	j := tinyJob(t, "tpcc", 600, sim.PFNone)
	r.RunAll([]Job{j}, 1)
	if c := r.Counters(); c.Sims != 1 || c.DiskHits != 0 {
		t.Fatalf("cold run counters: %+v", c)
	}
	// A fresh runner sharing the cache dir models a second process: the run
	// must be served from disk without simulating.
	r2 := NewRunner(1)
	if err := r2.SetCacheDir(r.cacheDir); err != nil {
		t.Fatal(err)
	}
	r2.RunAll([]Job{j}, 1)
	if c := r2.Counters(); c.Sims != 0 || c.DiskHits != 1 {
		t.Fatalf("disk-served run counters: %+v", c)
	}
}

func TestRunAllCtxCancelFillsPlaceholders(t *testing.T) {
	r := NewRunner(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job{
		tinyJob(t, "linpack", 500_000, sim.PFNone),
		{Workloads: []trace.Workload{wlByName(t, "tpcc"), wlByName(t, "linpack")},
			Opt: func() sim.Options { o := sim.DefaultMP(); o.Refs = 500_000; return o }()},
	}
	start := time.Now()
	results, err := r.RunAllCtx(ctx, jobs, 2)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("canceled batch still simulated")
	}
	if len(results[0].IPC) != 1 || len(results[1].IPC) != 2 {
		t.Fatalf("placeholder IPC lanes wrong: %v / %v", results[0].IPC, results[1].IPC)
	}
	if c := r.Counters(); c.Sims != 0 {
		t.Errorf("canceled batch counted %d sims", c.Sims)
	}
}

func wlByName(t *testing.T, name string) trace.Workload {
	t.Helper()
	w, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	return w
}

func TestCanceledRunDoesNotPoisonMemo(t *testing.T) {
	r := NewRunner(1)
	j := tinyJob(t, "linpack", 400_000, sim.PFNone)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunAllCtx(ctx, []Job{j}, 1); err == nil {
		t.Fatal("canceled run reported no error")
	}
	// The same job under a live context must simulate for real.
	results, err := r.RunAllCtx(context.Background(), []Job{j}, 1)
	if err != nil {
		t.Fatalf("post-cancel rerun: %v", err)
	}
	if results[0].IPC[0] <= 0 {
		t.Fatalf("post-cancel rerun served the poisoned entry: %+v", results[0])
	}
	if c := r.Counters(); c.Sims != 1 {
		t.Errorf("Sims = %d, want 1", c.Sims)
	}
}

// TestPanickingRunDoesNotPoisonMemo: a simulation that panics must not
// leave a completed memo entry holding a zero Result — the panic re-raises
// for the caller, the entry is dropped, and a later valid identical key
// re-simulates.
func TestPanickingRunDoesNotPoisonMemo(t *testing.T) {
	r := NewRunner(1)
	bad := tinyJob(t, "linpack", 800, sim.PFNone)
	bad.Opt.LLCBytes = 100_000 // 97 LLC sets: cache.New panics

	mustPanic := func() (recovered any) {
		defer func() { recovered = recover() }()
		r.RunAll([]Job{bad}, 1)
		return nil
	}
	if first := mustPanic(); first == nil {
		t.Fatal("expected the malformed LLC size to panic")
	}
	// The poisoned-entry bug: the second identical submission was served a
	// zero Result as a memo hit. It must panic again instead.
	if second := mustPanic(); second == nil {
		t.Fatal("second identical submission was served a poisoned memo entry")
	}
	if c := r.Counters(); c.MemoHits != 0 {
		t.Errorf("panicking runs counted %d memo hits", c.MemoHits)
	}
}

func TestRegistryCoversCLIOrder(t *testing.T) {
	want := []string{
		"table1", "table3", "fig1", "fig4", "fig5", "fig6", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "headline",
	}
	got := ExperimentIDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, id := range want {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Errorf("ExperimentByID(%q) missing", id)
			continue
		}
		if e.Run == nil || e.Format == nil || e.Title == "" {
			t.Errorf("%s: incomplete registry entry", id)
		}
	}
	if _, ok := ExperimentByID("fig99"); ok {
		t.Error("ExperimentByID accepted an unknown id")
	}
}

func TestScaleWithContextCancelsExperiment(t *testing.T) {
	ResetMemo()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Scale{Refs: 400_000, PerCategory: 2, MPMixes: 2, Seed: 1, Parallel: 1}.WithContext(ctx)
	start := time.Now()
	Fig4(s) // value is meaningless under a canceled context and discarded
	if time.Since(start) > 10*time.Second {
		t.Fatal("canceled Fig4 ran to completion")
	}
}
