package experiments

import (
	"dspatch/internal/sim"
	"dspatch/internal/stats"
)

// AblationDelta measures one prefetcher configuration's geomean performance
// delta over the baseline on the memory-intensive sample — the harness for
// the design-choice ablations (compression on/off, dual vs single trigger,
// SPT sizing; see the README's experiment index). Baselines are memoized,
// so sweeping many variants re-simulates only the variant runs.
func AblationDelta(kind sim.PF, s Scale) float64 {
	ws := s.memIntensive()
	var jobs []Job
	for _, w := range ws {
		opt := s.stOptions()
		base := opt
		base.L2 = sim.PFNone
		jobs = append(jobs, SingleJob(w, base))
		opt.L2 = kind
		jobs = append(jobs, SingleJob(w, opt))
	}
	results := s.runAll(jobs)
	var ratios []float64
	for k := 0; k < len(results); k += 2 {
		ratios = append(ratios, sim.Speedup(results[k], results[k+1])[0])
	}
	return stats.GeomeanSpeedupPct(ratios)
}
