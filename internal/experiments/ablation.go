package experiments

import (
	"dspatch/internal/sim"
	"dspatch/internal/stats"
)

// AblationDelta measures one prefetcher configuration's geomean performance
// delta over the baseline on the memory-intensive sample — the harness for
// the DESIGN.md §6 design-choice ablations (compression on/off, dual vs
// single trigger, SPT sizing).
func AblationDelta(kind sim.PF, s Scale) float64 {
	var ratios []float64
	for _, w := range s.memIntensive() {
		opt := s.stOptions()
		base := opt
		base.L2 = sim.PFNone
		b := sim.RunSingle(w, base)
		opt.L2 = kind
		r := sim.RunSingle(w, opt)
		ratios = append(ratios, sim.Speedup(b, r)[0])
	}
	return stats.GeomeanSpeedupPct(ratios)
}
