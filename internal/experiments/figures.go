package experiments

import (
	"sort"

	"dspatch/internal/dram"
	"dspatch/internal/memaddr"
	"dspatch/internal/sim"
	"dspatch/internal/sms"
	"dspatch/internal/stats"
	"dspatch/internal/trace"
)

// Fig1 regenerates paper Fig. 1: BOP/SMS/SPP performance deltas across six
// DRAM bandwidth points, showing that none scales with bandwidth.
func Fig1(s Scale) ScalingResult {
	return bandwidthSweep(s.workloads(), s, []sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP})
}

// Fig4 regenerates paper Fig. 4: per-category performance of BOP, SMS and
// SPP on a single channel of DDR4-2133.
func Fig4(s Scale) CategoryResult {
	return categorySweep(s.workloads(), s, s.stOptions(), []sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP})
}

// Fig5Row is one point of the SMS storage sweep.
type Fig5Row struct {
	PHTEntries int
	StorageKB  float64
	DeltaPct   float64
}

// Fig5 regenerates paper Fig. 5: SMS performance as its pattern history
// table shrinks from 16K entries (88KB) to 256 (3.5KB). The baseline does
// not depend on the PHT size, so the memo runs it once per workload across
// the whole sweep.
func Fig5(s Scale) []Fig5Row {
	ws := s.workloads()
	sweep := []int{16 << 10, 4 << 10, 1 << 10, 256}
	var jobs []Job
	for _, entries := range sweep {
		opt := s.stOptions()
		opt.SMSPHTEntries = entries
		for _, w := range ws {
			base := opt
			base.L2 = sim.PFNone
			jobs = append(jobs, SingleJob(w, base))
			with := opt
			with.L2 = sim.PFSMS
			jobs = append(jobs, SingleJob(w, with))
		}
	}
	results := s.runAll(jobs)

	var out []Fig5Row
	k := 0
	for _, entries := range sweep {
		var ratios []float64
		for range ws {
			ratios = append(ratios, sim.Speedup(results[k], results[k+1])[0])
			k += 2
		}
		kb := float64(sms.New(sms.DefaultConfig().WithPHTEntries(entries)).StorageBits()) / 8192
		out = append(out, Fig5Row{PHTEntries: entries, StorageKB: kb,
			DeltaPct: stats.GeomeanSpeedupPct(ratios)})
	}
	return out
}

// Fig6 regenerates paper Fig. 6: Fig. 1 plus the bandwidth-aware eSPP and
// eBOP variants — still poor scaling.
func Fig6(s Scale) ScalingResult {
	return bandwidthSweep(s.workloads(), s,
		[]sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP, sim.PFESPP, sim.PFEBOP})
}

// Fig11aResult is the delta-occurrence distribution of paper Fig. 11a.
type Fig11aResult struct {
	PlusOne  float64
	MinusOne float64
	TwoThree float64 // |delta| in {2,3}
	Other    float64
}

// Fig11a measures the distribution of consecutive in-page cache-line deltas
// across the workload roster, reproducing the +1/−1 dominance that
// justifies 128B-granularity compression.
func Fig11a(s Scale) Fig11aResult {
	var res Fig11aResult
	var total float64
	for _, w := range s.workloads() {
		if s.context().Err() != nil {
			break // canceled via WithContext; partial result is discarded
		}
		g := w.Build(s.Seed)
		lastOff := map[memaddr.Page]int{}
		var r trace.Ref
		for i := 0; i < s.Refs; i++ {
			g.Next(&r)
			page := r.Line.Page()
			off := r.Line.PageOffset()
			if prev, ok := lastOff[page]; ok && off != prev {
				d := off - prev
				total++
				switch {
				case d == 1:
					res.PlusOne++
				case d == -1:
					res.MinusOne++
				case d == 2 || d == -2 || d == 3 || d == -3:
					res.TwoThree++
				default:
					res.Other++
				}
			}
			lastOff[page] = off
			if len(lastOff) > 4096 {
				lastOff = map[memaddr.Page]int{}
			}
		}
	}
	if total > 0 {
		res.PlusOne /= total
		res.MinusOne /= total
		res.TwoThree /= total
		res.Other /= total
	}
	return res
}

// Fig11b regenerates paper Fig. 11b: the distribution of per-page-generation
// misprediction rates induced by 128B-granularity compression. Buckets:
// exactly 0%, (0,12.5%], (12.5,25%], (25,37.5%], (37.5,50%), exactly 50%.
func Fig11b(s Scale) [6]float64 {
	ws := s.workloads()
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		opt := s.stOptions()
		opt.L2 = sim.PFDSPatch
		jobs[i] = SingleJob(w, opt)
		jobs[i].NeedPorts = true // reads DSPatch counters off the live ports
	}
	var hist [6]uint64
	for _, r := range s.runAll(jobs) {
		ports := r.Ports()
		if len(ports) == 0 {
			continue // run aborted by a WithContext cancellation
		}
		d := sim.FindDSPatch(ports[0].L2Prefetcher())
		for i, v := range d.Stats().CompressionHist {
			hist[i] += v
		}
	}
	var total float64
	for _, v := range hist {
		total += float64(v)
	}
	var out [6]float64
	if total == 0 {
		return out
	}
	for i, v := range hist {
		out[i] = float64(v) / total
	}
	return out
}

// Fig12 regenerates paper Fig. 12: single-thread per-category performance of
// BOP, SMS, SPP, DSPatch and DSPatch+SPP.
func Fig12(s Scale) CategoryResult {
	return categorySweep(s.workloads(), s, s.stOptions(),
		[]sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP, sim.PFDSPatch, sim.PFDSPatchSPP})
}

// Fig13Row is one workload of the memory-intensive line graph.
type Fig13Row struct {
	Workload string
	Category trace.Category
	SMS      float64
	SPP      float64
	DSPatchS float64 // DSPatch+SPP
}

// Fig13 regenerates paper Fig. 13: per-workload deltas of SMS, SPP and
// DSPatch+SPP over the 42 memory-intensive workloads, sorted by DSPatch+SPP.
func Fig13(s Scale) []Fig13Row {
	ws := s.memIntensive()
	pfs := []sim.PF{sim.PFSMS, sim.PFSPP, sim.PFDSPatchSPP}
	var jobs []Job
	for _, w := range ws {
		opt := s.stOptions()
		base := opt
		base.L2 = sim.PFNone
		jobs = append(jobs, SingleJob(w, base))
		for _, pf := range pfs {
			with := opt
			with.L2 = pf
			jobs = append(jobs, SingleJob(w, with))
		}
	}
	results := s.runAll(jobs)

	var out []Fig13Row
	k := 0
	for _, w := range ws {
		b := results[k]
		deltas := make([]float64, len(pfs))
		for i := range pfs {
			deltas[i] = stats.SpeedupPct(sim.Speedup(b, results[k+1+i])[0])
		}
		k += 1 + len(pfs)
		out = append(out, Fig13Row{
			Workload: w.Name,
			Category: w.Category,
			SMS:      deltas[0],
			SPP:      deltas[1],
			DSPatchS: deltas[2],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DSPatchS < out[j].DSPatchS })
	return out
}

// Fig14 regenerates paper Fig. 14: adjunct prefetchers to SPP — BOP+SPP,
// iso-storage SMS+SPP and DSPatch+SPP against standalone SPP.
func Fig14(s Scale) CategoryResult {
	return categorySweep(s.workloads(), s, s.stOptions(),
		[]sim.PF{sim.PFSPP, sim.PFBOPSPP, sim.PFSMS256SPP, sim.PFDSPatchSPP})
}

// Fig15 regenerates paper Fig. 15: bandwidth scaling of BOP, SMS, SPP,
// eBOP+SPP and DSPatch+SPP — only DSPatch+SPP rides the bandwidth curve.
func Fig15(s Scale) ScalingResult {
	return bandwidthSweep(s.workloads(), s,
		[]sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP, sim.PFEBOPSPP, sim.PFDSPatchSPP})
}

// Fig16Row is one prefetcher × category cell of the coverage figure.
type Fig16Row struct {
	Prefetcher sim.PF
	Category   trace.Category
	Covered    float64 // fraction of would-be L2 misses covered
	Uncovered  float64
	Mispred    float64 // unused prefetches, same denominator
}

// Fig16 regenerates paper Fig. 16: coverage, uncovered and misprediction
// fractions per category for BOP, SMS, SPP and DSPatch+SPP, plus the AVG
// rows (category "AVG").
func Fig16(s Scale) []Fig16Row {
	pfs := []sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP, sim.PFDSPatchSPP}
	ws := s.workloads()
	var jobs []Job
	for _, cat := range trace.Categories {
		for _, pf := range pfs {
			for _, w := range ws {
				if w.Category != cat {
					continue
				}
				opt := s.stOptions()
				opt.L2 = pf
				jobs = append(jobs, SingleJob(w, opt))
			}
		}
	}
	results := s.runAll(jobs)

	var out []Fig16Row
	type agg struct{ cov, mis, n float64 }
	total := map[sim.PF]*agg{}
	for _, pf := range pfs {
		total[pf] = &agg{}
	}
	k := 0
	for _, cat := range trace.Categories {
		for _, pf := range pfs {
			var covs, miss []float64
			for _, w := range ws {
				if w.Category != cat {
					continue
				}
				r := results[k]
				k++
				covs = append(covs, r.Coverage)
				miss = append(miss, r.MispredRate)
			}
			c, m := stats.Mean(covs), stats.Mean(miss)
			out = append(out, Fig16Row{Prefetcher: pf, Category: cat,
				Covered: c, Uncovered: 1 - c, Mispred: m})
			total[pf].cov += c
			total[pf].mis += m
			total[pf].n++
		}
	}
	for _, pf := range pfs {
		a := total[pf]
		if a.n > 0 {
			out = append(out, Fig16Row{Prefetcher: pf, Category: "AVG",
				Covered: a.cov / a.n, Uncovered: 1 - a.cov/a.n, Mispred: a.mis / a.n})
		}
	}
	return out
}

// Fig17 regenerates paper Fig. 17: homogeneous 4-core mixes (four copies of
// each memory-intensive workload) on the dual-channel MP machine.
func Fig17(s Scale) CategoryResult {
	pfs := []sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP, sim.PFDSPatchSPP}
	res := CategoryResult{Prefetchers: pfs, Categories: trace.Categories}
	perCat := make([]map[trace.Category][]float64, len(pfs))
	all := make([][]float64, len(pfs))
	for i := range pfs {
		perCat[i] = map[trace.Category][]float64{}
	}
	// The memory-intensive sample is already category-balanced; run one
	// homogeneous 4-copy mix per member.
	mixes := s.memIntensive()
	var jobs []Job
	for _, w := range mixes {
		four := []trace.Workload{w, w, w, w}
		opt := sim.DefaultMP()
		opt.Refs = s.Refs / 2
		opt.Seed = s.Seed
		base := opt
		base.L2 = sim.PFNone
		jobs = append(jobs, Job{Workloads: four, Opt: base})
		for _, pf := range pfs {
			with := opt
			with.L2 = pf
			jobs = append(jobs, Job{Workloads: four, Opt: with})
		}
	}
	results := s.runAll(jobs)

	k := 0
	for _, w := range mixes {
		b := results[k]
		k++
		for i := range pfs {
			ratio := stats.Geomean(sim.Speedup(b, results[k]))
			k++
			perCat[i][w.Category] = append(perCat[i][w.Category], ratio)
			all[i] = append(all[i], ratio)
		}
	}
	for i := range pfs {
		var row []float64
		for _, cat := range res.Categories {
			row = append(row, deltaOrNaN(perCat[i][cat]))
		}
		res.Delta = append(res.Delta, row)
		kept, dropped := stats.FiniteRatios(all[i])
		res.Dropped += dropped
		res.Geomean = append(res.Geomean, stats.GeomeanSpeedupPct(kept))
	}
	return res
}

// Fig18Row is one bar group of the MP bandwidth figure.
type Fig18Row struct {
	Mix   string // "Homogeneous" or "Heterogeneous"
	MTps  int    // 2133 or 2400
	Delta map[sim.PF]float64
}

// Fig18 regenerates paper Fig. 18: homogeneous and heterogeneous mixes at
// dual-channel DDR4-2133 and DDR4-2400.
func Fig18(s Scale) []Fig18Row {
	pfs := []sim.PF{sim.PFBOP, sim.PFSMS, sim.PFSPP, sim.PFDSPatchSPP}
	hot := trace.MemIntensive()
	nMix := s.MPMixes
	if nMix <= 0 {
		nMix = 42
	}

	homo := make([][]trace.Workload, 0, nMix)
	for i := 0; i < nMix && i < len(hot); i++ {
		w := hot[i]
		homo = append(homo, []trace.Workload{w, w, w, w})
	}
	hetero := make([][]trace.Workload, 0, nMix)
	for i := 0; i < nMix; i++ {
		mix := make([]trace.Workload, 4)
		for j := 0; j < 4; j++ {
			mix[j] = hot[(i*4+j*7+i*i)%len(hot)]
		}
		hetero = append(hetero, mix)
	}

	var out []Fig18Row
	for _, mt := range []int{2133, 2400} {
		for _, kind := range []struct {
			name  string
			mixes [][]trace.Workload
		}{{"Homogeneous", homo}, {"Heterogeneous", hetero}} {
			var jobs []Job
			for _, mix := range kind.mixes {
				opt := sim.DefaultMP()
				opt.DRAM = dram.DDR4(2, mt)
				opt.Refs = s.Refs / 2
				opt.Seed = s.Seed
				base := opt
				base.L2 = sim.PFNone
				jobs = append(jobs, Job{Workloads: mix, Opt: base})
				for _, pf := range pfs {
					with := opt
					with.L2 = pf
					jobs = append(jobs, Job{Workloads: mix, Opt: with})
				}
			}
			results := s.runAll(jobs)

			row := Fig18Row{Mix: kind.name, MTps: mt, Delta: map[sim.PF]float64{}}
			ratios := map[sim.PF][]float64{}
			k := 0
			for range kind.mixes {
				b := results[k]
				k++
				for _, pf := range pfs {
					ratios[pf] = append(ratios[pf], stats.Geomean(sim.Speedup(b, results[k])))
					k++
				}
			}
			for _, pf := range pfs {
				row.Delta[pf] = stats.GeomeanSpeedupPct(ratios[pf])
			}
			out = append(out, row)
		}
	}
	return out
}

// Fig19Result is the ablation of the accuracy-biased pattern.
type Fig19Result struct {
	DSPatch    float64 // full algorithm, DSPatch+SPP delta %
	AlwaysCovP float64
	ModCovP    float64
}

// Fig19 regenerates paper Fig. 19: the full DSPatch versus the AlwaysCovP
// and ModCovP variants that never use AccP, on a bandwidth-constrained
// machine where the selection logic matters.
func Fig19(s Scale) Fig19Result {
	ws := s.memIntensive()
	pfs := []sim.PF{sim.PFDSPatch, sim.PFDSPatchAlwaysCov, sim.PFDSPatchModCov}
	var jobs []Job
	for _, w := range ws {
		// Four copies on the MP machine: bandwidth contention is what
		// differentiates the variants.
		four := []trace.Workload{w, w, w, w}
		opt := sim.DefaultMP()
		opt.Refs = s.Refs / 2
		opt.Seed = s.Seed
		base := opt
		base.L2 = sim.PFNone
		jobs = append(jobs, Job{Workloads: four, Opt: base})
		for _, pf := range pfs {
			with := opt
			with.L2 = pf
			jobs = append(jobs, Job{Workloads: four, Opt: with})
		}
	}
	results := s.runAll(jobs)

	ratios := make([][]float64, len(pfs))
	k := 0
	for range ws {
		b := results[k]
		k++
		for i := range pfs {
			ratios[i] = append(ratios[i], stats.Geomean(sim.Speedup(b, results[k])))
			k++
		}
	}
	return Fig19Result{
		DSPatch:    stats.GeomeanSpeedupPct(ratios[0]),
		AlwaysCovP: stats.GeomeanSpeedupPct(ratios[1]),
		ModCovP:    stats.GeomeanSpeedupPct(ratios[2]),
	}
}

// Fig20Row is the pollution taxonomy at one LLC size.
type Fig20Row struct {
	LLCMB               int
	NoReuse             float64
	PrefetchedBeforeUse float64
	BadPollution        float64
}

// Fig20 regenerates the appendix figure: LLC victims of an aggressive
// streamer's inaccurate prefetches, classified as NoReuse /
// PrefetchedBeforeUse / BadPollution at 2, 4 and 8MB LLCs.
func Fig20(s Scale) []Fig20Row {
	ws := s.workloads()
	sizes := []int{8, 4, 2}
	var jobs []Job
	for _, mb := range sizes {
		for _, w := range ws {
			opt := s.stOptions()
			opt.LLCBytes = mb << 20
			opt.L2 = sim.PFStreamer
			opt.TrackPollution = true
			jobs = append(jobs, SingleJob(w, opt))
		}
	}
	results := s.runAll(jobs)

	var out []Fig20Row
	k := 0
	for _, mb := range sizes {
		var n, p, b []float64
		for range ws {
			r := results[k]
			k++
			if r.Pollution[0]+r.Pollution[1]+r.Pollution[2] == 0 {
				continue // no prefetch-caused LLC victims in this workload
			}
			n = append(n, r.Pollution[0])
			p = append(p, r.Pollution[1])
			b = append(b, r.Pollution[2])
		}
		out = append(out, Fig20Row{LLCMB: mb,
			NoReuse:             stats.Mean(n),
			PrefetchedBeforeUse: stats.Mean(p),
			BadPollution:        stats.Mean(b)})
	}
	return out
}

// Headline computes the paper's in-text summary numbers: DSPatch+SPP over
// SPP overall and on memory-intensive workloads, standalone DSPatch versus
// SPP, and the coverage:misprediction trade.
type HeadlineResult struct {
	DSPatchSPPOverSPPPct    float64 // paper: ≈6%
	DSPatchSPPOverSPPHotPct float64 // paper: ≈9%
	DSPatchVsSPPPct         float64 // paper: ≈1%
	CoverageGainPct         float64 // paper: ≈15% coverage over SPP
	MispredGainPct          float64 // paper: ≈6.5% more mispredictions
	Dropped                 int     // workloads excluded for degenerate ratios
}

// Headline regenerates the abstract's numbers.
func Headline(s Scale) HeadlineResult {
	var res HeadlineResult
	var allSPP, allBoth, hotSPP, hotBoth, allDSP []float64
	var covSPP, covBoth, misSPP, misBoth []float64
	ws := s.workloads()
	var jobs []Job
	for _, w := range ws {
		opt := s.stOptions()
		base := opt
		base.L2 = sim.PFNone
		jobs = append(jobs, SingleJob(w, base))
		for _, pf := range []sim.PF{sim.PFSPP, sim.PFDSPatchSPP, sim.PFDSPatch} {
			with := opt
			with.L2 = pf
			jobs = append(jobs, SingleJob(w, with))
		}
	}
	results := s.runAll(jobs)

	k := 0
	for _, w := range ws {
		b, rs, rb, rd := results[k], results[k+1], results[k+2], results[k+3]
		k += 4

		sppRatio := sim.Speedup(b, rs)[0]
		bothRatio := sim.Speedup(b, rb)[0]
		dspRatio := sim.Speedup(b, rd)[0]
		// The headline numbers are ratios of geomeans, so the numerator and
		// denominator sets must stay paired: a workload with any degenerate
		// ratio is dropped from all of them, not clamped.
		if kept, _ := stats.FiniteRatios([]float64{sppRatio, bothRatio, dspRatio}); len(kept) < 3 {
			res.Dropped++
			continue
		}
		allSPP = append(allSPP, sppRatio)
		allBoth = append(allBoth, bothRatio)
		allDSP = append(allDSP, dspRatio)
		if w.MemIntensive {
			hotSPP = append(hotSPP, sppRatio)
			hotBoth = append(hotBoth, bothRatio)
		}
		covSPP = append(covSPP, rs.Coverage)
		covBoth = append(covBoth, rb.Coverage)
		misSPP = append(misSPP, rs.MispredRate)
		misBoth = append(misBoth, rb.MispredRate)
	}
	res.DSPatchSPPOverSPPPct = stats.SpeedupPct(stats.Geomean(allBoth) / stats.Geomean(allSPP))
	res.DSPatchSPPOverSPPHotPct = stats.SpeedupPct(stats.Geomean(hotBoth) / stats.Geomean(hotSPP))
	res.DSPatchVsSPPPct = stats.SpeedupPct(stats.Geomean(allDSP) / stats.Geomean(allSPP))
	res.CoverageGainPct = 100 * (stats.Mean(covBoth) - stats.Mean(covSPP))
	res.MispredGainPct = 100 * (stats.Mean(misBoth) - stats.Mean(misSPP))
	return res
}
