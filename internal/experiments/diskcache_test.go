package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

func cacheTestJob(t *testing.T) Job {
	t.Helper()
	w, ok := trace.ByName("linpack")
	if !ok {
		t.Fatal("roster is missing linpack")
	}
	opt := sim.DefaultST()
	opt.Refs = 3_000
	opt.L2 = sim.PFDSPatchSPP
	return SingleJob(w, opt)
}

// entryFile returns the single cache entry in dir.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one cache entry, got %v (err %v)", files, err)
	}
	return files[0]
}

// TestDiskCacheRoundTrip proves a second runner (a stand-in for a second
// process) serves the persisted result — by tampering with the stored entry
// and observing the tampered value come back, which only a disk hit can
// produce — and that results round-trip exactly when untampered.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)

	r1 := NewRunner(1)
	if err := r1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	fresh := r1.RunAll([]Job{job}, 1)[0]

	// A clean second runner must reproduce the result exactly from disk.
	r2 := NewRunner(1)
	if err := r2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := r2.RunAll([]Job{job}, 1)[0]; !reflect.DeepEqual(got, fresh) {
		t.Fatalf("cached result differs from fresh: %+v vs %+v", got, fresh)
	}

	// Tamper: bump Cycles in the stored entry. A runner that really reads
	// the disk returns the tampered value.
	path := entryFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Result.Cycles++
	data, _ = json.Marshal(e)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := NewRunner(1)
	r3.SetCacheDir(dir)
	if got := r3.RunAll([]Job{job}, 1)[0]; got.Cycles != fresh.Cycles+1 {
		t.Fatalf("runner did not serve the disk entry: Cycles = %d, want %d", got.Cycles, fresh.Cycles+1)
	}
}

// TestDiskCacheCorruptFallback proves a corrupt entry silently falls back to
// simulation and is rewritten valid.
func TestDiskCacheCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)
	r1 := NewRunner(1)
	r1.SetCacheDir(dir)
	fresh := r1.RunAll([]Job{job}, 1)[0]

	path := entryFile(t, dir)
	if err := os.WriteFile(path, []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(1)
	r2.SetCacheDir(dir)
	if got := r2.RunAll([]Job{job}, 1)[0]; !reflect.DeepEqual(got, fresh) {
		t.Fatalf("corrupt-entry fallback produced a different result")
	}
	// The entry was rewritten and now parses with the current version.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("entry not rewritten after corruption: %v", err)
	}
	if e.Version != sim.ResultVersion {
		t.Fatalf("rewritten entry version = %d, want %d", e.Version, sim.ResultVersion)
	}
}

// TestDiskCacheVersionMismatch proves an entry stamped by a different
// sim.ResultVersion is ignored (re-simulated) and overwritten with the
// current stamp.
func TestDiskCacheVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)
	r1 := NewRunner(1)
	r1.SetCacheDir(dir)
	fresh := r1.RunAll([]Job{job}, 1)[0]

	path := entryFile(t, dir)
	data, _ := os.ReadFile(path)
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Version = sim.ResultVersion + 1
	e.Result.Cycles += 99 // would be visible if the stale entry were served
	data, _ = json.Marshal(e)
	os.WriteFile(path, data, 0o644)

	r2 := NewRunner(1)
	r2.SetCacheDir(dir)
	if got := r2.RunAll([]Job{job}, 1)[0]; !reflect.DeepEqual(got, fresh) {
		t.Fatalf("version-mismatched entry was served instead of re-simulated")
	}
	data, _ = os.ReadFile(path)
	if err := json.Unmarshal(data, &e); err != nil || e.Version != sim.ResultVersion {
		t.Fatalf("entry not restamped: version %d err %v", e.Version, err)
	}
}

// TestDiskCacheDisabledIdentical proves cache-off and cache-on runs return
// identical results, and that no files appear when disabled.
func TestDiskCacheDisabledIdentical(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)
	off := NewRunner(1).RunAll([]Job{job}, 1)[0]
	r := NewRunner(1)
	r.SetCacheDir(dir)
	on := r.RunAll([]Job{job}, 1)[0]
	if !reflect.DeepEqual(off, on) {
		t.Fatal("cache-enabled result differs from cache-disabled result")
	}
	plain := NewRunner(1)
	plain.RunAll([]Job{job}, 1)
	files, _ := filepath.Glob(filepath.Join(t.TempDir(), "*"))
	if len(files) != 0 {
		t.Fatalf("disabled cache wrote files: %v", files)
	}
}

// TestDiskCacheNoTornReads hammers one cache entry with concurrent
// rewriters (stand-ins for racing processes, whose cacheStore path — temp
// file + os.Rename — is exactly what separate processes execute) while
// readers re-read the entry file directly. Atomic rename means a reader must
// only ever observe a complete, parseable JSON entry, never a prefix of an
// in-progress write.
func TestDiskCacheNoTornReads(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)
	key, ok := memoizable(job)
	if !ok {
		t.Fatal("cache test job must be memoizable")
	}
	path := cachePath(dir, key)

	// Payloads of very different sizes, so a torn read of a long entry after
	// a short one (or mid-write) cannot parse by accident.
	mkRes := func(i int) sim.Result {
		return sim.Result{IPC: make([]float64, 1+(i%7)*40), Cycles: uint64(i)}
	}
	cacheStore(dir, key, mkRes(0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				cacheStore(dir, key, mkRes(i))
			}
		}(w)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	reads := 0
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("read during concurrent writes: %v", err)
			break
		}
		var e cacheEntry
		if err := json.Unmarshal(data, &e); err != nil {
			t.Errorf("torn read after %d clean reads: %v\n%.120s", reads, err, data)
			break
		}
		if e.Version != sim.ResultVersion || e.Key != key.keyString() {
			t.Errorf("entry content corrupt: version=%d key=%q", e.Version, e.Key)
			break
		}
		reads++
	}
	close(stop)
	wg.Wait()
	if reads == 0 {
		t.Fatal("reader never observed the entry")
	}
}
