package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

func cacheTestJob(t *testing.T) Job {
	t.Helper()
	w, ok := trace.ByName("linpack")
	if !ok {
		t.Fatal("roster is missing linpack")
	}
	opt := sim.DefaultST()
	opt.Refs = 3_000
	opt.L2 = sim.PFDSPatchSPP
	return SingleJob(w, opt)
}

// entryFile returns the single cache entry in dir.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one cache entry, got %v (err %v)", files, err)
	}
	return files[0]
}

// TestDiskCacheRoundTrip proves a second runner (a stand-in for a second
// process) serves the persisted result — by tampering with the stored entry
// and observing the tampered value come back, which only a disk hit can
// produce — and that results round-trip exactly when untampered.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)

	r1 := NewRunner(1)
	if err := r1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	fresh := r1.RunAll([]Job{job}, 1)[0]

	// A clean second runner must reproduce the result exactly from disk.
	r2 := NewRunner(1)
	if err := r2.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := r2.RunAll([]Job{job}, 1)[0]; !reflect.DeepEqual(got, fresh) {
		t.Fatalf("cached result differs from fresh: %+v vs %+v", got, fresh)
	}

	// Tamper: bump Cycles in the stored entry. A runner that really reads
	// the disk returns the tampered value.
	path := entryFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Result.Cycles++
	data, _ = json.Marshal(e)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r3 := NewRunner(1)
	r3.SetCacheDir(dir)
	if got := r3.RunAll([]Job{job}, 1)[0]; got.Cycles != fresh.Cycles+1 {
		t.Fatalf("runner did not serve the disk entry: Cycles = %d, want %d", got.Cycles, fresh.Cycles+1)
	}
}

// TestDiskCacheCorruptFallback proves a corrupt entry silently falls back to
// simulation and is rewritten valid.
func TestDiskCacheCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)
	r1 := NewRunner(1)
	r1.SetCacheDir(dir)
	fresh := r1.RunAll([]Job{job}, 1)[0]

	path := entryFile(t, dir)
	if err := os.WriteFile(path, []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(1)
	r2.SetCacheDir(dir)
	if got := r2.RunAll([]Job{job}, 1)[0]; !reflect.DeepEqual(got, fresh) {
		t.Fatalf("corrupt-entry fallback produced a different result")
	}
	// The entry was rewritten and now parses with the current version.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("entry not rewritten after corruption: %v", err)
	}
	if e.Version != sim.ResultVersion {
		t.Fatalf("rewritten entry version = %d, want %d", e.Version, sim.ResultVersion)
	}
}

// TestDiskCacheVersionMismatch proves an entry stamped by a different
// sim.ResultVersion is ignored (re-simulated) and overwritten with the
// current stamp.
func TestDiskCacheVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)
	r1 := NewRunner(1)
	r1.SetCacheDir(dir)
	fresh := r1.RunAll([]Job{job}, 1)[0]

	path := entryFile(t, dir)
	data, _ := os.ReadFile(path)
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Version = sim.ResultVersion + 1
	e.Result.Cycles += 99 // would be visible if the stale entry were served
	data, _ = json.Marshal(e)
	os.WriteFile(path, data, 0o644)

	r2 := NewRunner(1)
	r2.SetCacheDir(dir)
	if got := r2.RunAll([]Job{job}, 1)[0]; !reflect.DeepEqual(got, fresh) {
		t.Fatalf("version-mismatched entry was served instead of re-simulated")
	}
	data, _ = os.ReadFile(path)
	if err := json.Unmarshal(data, &e); err != nil || e.Version != sim.ResultVersion {
		t.Fatalf("entry not restamped: version %d err %v", e.Version, err)
	}
}

// TestDiskCacheDisabledIdentical proves cache-off and cache-on runs return
// identical results, and that no files appear when disabled.
func TestDiskCacheDisabledIdentical(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)
	off := NewRunner(1).RunAll([]Job{job}, 1)[0]
	r := NewRunner(1)
	r.SetCacheDir(dir)
	on := r.RunAll([]Job{job}, 1)[0]
	if !reflect.DeepEqual(off, on) {
		t.Fatal("cache-enabled result differs from cache-disabled result")
	}
	plain := NewRunner(1)
	plain.RunAll([]Job{job}, 1)
	files, _ := filepath.Glob(filepath.Join(t.TempDir(), "*"))
	if len(files) != 0 {
		t.Fatalf("disabled cache wrote files: %v", files)
	}
}

// TestDiskCacheNoTornReads hammers one cache entry with concurrent
// rewriters (stand-ins for racing processes, whose cacheStore path — temp
// file + os.Rename — is exactly what separate processes execute) while
// readers re-read the entry file directly. Atomic rename means a reader must
// only ever observe a complete, parseable JSON entry, never a prefix of an
// in-progress write.
func TestDiskCacheNoTornReads(t *testing.T) {
	dir := t.TempDir()
	job := cacheTestJob(t)
	key, ok := memoizable(job)
	if !ok {
		t.Fatal("cache test job must be memoizable")
	}
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := st.PathOf(key.keyString())

	// Payloads of very different sizes, so a torn read of a long entry after
	// a short one (or mid-write) cannot parse by accident.
	mkRes := func(i int) sim.Result {
		return sim.Result{IPC: make([]float64, 1+(i%7)*40), Cycles: uint64(i)}
	}
	st.Put(key.keyString(), mkRes(0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				st.Put(key.keyString(), mkRes(i))
			}
		}(w)
	}

	deadline := time.Now().Add(300 * time.Millisecond)
	reads := 0
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("read during concurrent writes: %v", err)
			break
		}
		var e cacheEntry
		if err := json.Unmarshal(data, &e); err != nil {
			t.Errorf("torn read after %d clean reads: %v\n%.120s", reads, err, data)
			break
		}
		if e.Version != sim.ResultVersion || e.Key != key.keyString() {
			t.Errorf("entry content corrupt: version=%d key=%q", e.Version, e.Key)
			break
		}
		reads++
	}
	close(stop)
	wg.Wait()
	if reads == 0 {
		t.Fatal("reader never observed the entry")
	}
}

// TestDiskCacheUnwritableDegradesGracefully proves a failing cache backend
// never fails a run: the first write error is logged exactly once, further
// writes are disabled for the runner, simulation continues, and the read
// path keeps serving entries that were written while the backend was
// healthy.
func TestDiskCacheUnwritableDegradesGracefully(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "cache")
	job := cacheTestJob(t)

	// A healthy pass first, so the read path has an entry to prove itself on.
	r1 := NewRunner(1)
	if err := r1.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	fresh := r1.RunAll([]Job{job}, 1)[0]

	// Second job: distinct config, so its entry is missing from the cache.
	job2 := cacheTestJob(t)
	job2.Opt.Refs = 3_100

	// Break the backend out from under the runner: replace the directory
	// with a regular file, so every CreateTemp inside it fails (ENOTDIR).
	// Unlike permission bits this breaks for root too.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var logged []string
	old := logWarnf
	logWarnf = func(format string, args ...any) {
		mu.Lock()
		logged = append(logged, format)
		mu.Unlock()
	}
	defer func() { logWarnf = old }()

	// Two cold runs against the broken backend: both must succeed, the
	// warning must fire exactly once, and writes must be off afterwards.
	got := r1.RunAll([]Job{job2, {Workloads: job2.Workloads, Opt: func() sim.Options {
		o := job2.Opt
		o.Refs = 3_200
		return o
	}()}}, 1)
	if len(got[0].IPC) == 0 || got[0].Cycles == 0 {
		t.Fatalf("run against unwritable cache produced a degenerate result: %+v", got[0])
	}
	if !r1.CacheWritesDisabled() {
		t.Fatal("cache writes not disabled after a write failure")
	}
	mu.Lock()
	n := len(logged)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("write failure logged %d times, want exactly once: %v", n, logged)
	}

	// Read path unaffected: a fresh runner over a healthy copy of the cache
	// still serves the first job from disk, and the degraded runner keeps
	// simulating correctly (memo hit here, since r1 already ran job).
	if got := r1.RunAll([]Job{job}, 1)[0]; !reflect.DeepEqual(got, fresh) {
		t.Fatal("degraded runner no longer reproduces earlier results")
	}

	// Re-arming: pointing the runner at a healthy store re-enables writes.
	good := filepath.Join(parent, "cache2")
	if err := r1.SetCacheDir(good); err != nil {
		t.Fatal(err)
	}
	if r1.CacheWritesDisabled() {
		t.Fatal("SetCacheDir did not re-arm cache writes")
	}
}

// TestDirStoreAndJobKey covers the pluggable store seam the fleet layer
// builds on: JobKey is stable and memoizability-gated, DirStore round-trips
// results under it byte-compatibly with the engine's own cache files, and
// torn PutRaw entries read back as misses.
func TestDirStoreAndJobKey(t *testing.T) {
	job := cacheTestJob(t)
	key, ok := JobKey(job)
	if !ok || key == "" {
		t.Fatalf("JobKey(%+v) = %q, %t", job, key, ok)
	}
	polluted := job
	polluted.Opt.TrackPollution = true
	if _, ok := JobKey(polluted); ok {
		t.Fatal("pollution-tracking job must not be memoizable")
	}

	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Result{IPC: []float64{1.25}, Cycles: 77}
	if err := st.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(key); !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("Get = %+v, %t", got, ok)
	}

	// The engine reads the same entry: DirStore and -cache-dir share a
	// layout, so a fleet's shared store doubles as a worker's run cache.
	r := NewRunner(1)
	if err := r.SetCacheDir(dir); err != nil {
		t.Fatal(err)
	}
	c0 := r.Counters()
	if got := r.RunAll([]Job{job}, 1)[0]; !reflect.DeepEqual(got, want) {
		t.Fatalf("engine did not serve the DirStore entry: %+v", got)
	}
	if c1 := r.Counters(); c1.DiskHits-c0.DiskHits != 1 || c1.Sims != c0.Sims {
		t.Fatalf("engine counters: %+v -> %+v, want one disk hit and no sims", c0, c1)
	}

	// A torn write (the fault-injection harness's PutRaw) is a miss.
	if err := st.PutRaw(key, []byte(`{"result_version":`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(key); ok {
		t.Fatal("torn entry served as a hit")
	}
}
