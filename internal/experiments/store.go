package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dspatch/internal/sim"
)

// ResultStore is a shared result store keyed by the canonical run key
// (JobKey): any backend that can GET/PUT a simulation result under a string
// key can serve as the persistent cache behind the engine — and as the
// shared result store of a coordinator/worker fleet, where workers and the
// coordinator exchange completed runs through it. Implementations must
// treat a corrupt or torn entry as a miss, never an error: the store is an
// accelerator, and a fleet must survive a half-written entry by
// re-simulating.
type ResultStore interface {
	// Get returns the stored result for key, reporting false on any miss —
	// absent, torn, corrupt, or stamped by a different sim.ResultVersion.
	Get(key string) (sim.Result, bool)
	// Put persists res under key. A failed Put leaves the store unchanged
	// or holding a torn entry that Get rejects; it must never corrupt other
	// keys.
	Put(key string, res sim.Result) error
}

// JobKey returns the canonical cache key of a job — the string the disk
// cache hashes into a content address — and whether the job is memoizable
// at all (pollution-tracking and port-inspecting runs are not). Two jobs
// with equal keys are the same simulation: fleet coordinators shard and
// deduplicate dispatches by this key.
func JobKey(j Job) (string, bool) {
	k, ok := memoizable(j)
	if !ok {
		return "", false
	}
	return k.keyString(), true
}

// DirStore is the ResultStore the engine has always used, made pluggable: a
// directory of content-addressed JSON entries whose filenames are the
// SHA-256 of the run key. It is byte-compatible with -cache-dir, so a
// fleet's shared -store-dir and a worker's local cache dir can be the same
// directory (or rsync'd copies of each other).
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a directory-backed store at dir.
func NewDirStore(dir string) (*DirStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("experiments: store dir must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: store dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

// PathOf returns the content address of key under the store root.
func (s *DirStore) PathOf(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:16])+".json")
}

// Get implements ResultStore: a valid, version-matched entry or a miss.
func (s *DirStore) Get(key string) (sim.Result, bool) {
	data, err := os.ReadFile(s.PathOf(key))
	if err != nil {
		return sim.Result{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return sim.Result{}, false // torn or corrupt: simulate and rewrite
	}
	if e.Version != sim.ResultVersion {
		return sim.Result{}, false // stale behaviour stamp: recompute
	}
	return e.Result, true
}

// Put implements ResultStore with an atomic temp-file + rename write, so
// concurrent writers racing on one entry never leave a torn file visible.
func (s *DirStore) Put(key string, res sim.Result) error {
	data, err := json.Marshal(cacheEntry{Version: sim.ResultVersion, Key: key, Result: res})
	if err != nil {
		return err
	}
	return s.PutRaw(key, data)
}

// PutRaw writes data verbatim as key's entry (atomically). It exists so
// fault-injection harnesses can plant torn or corrupt entries through the
// same write path the store uses; Get must reject whatever they plant.
func (s *DirStore) PutRaw(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "run-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), s.PathOf(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
