package experiments

import (
	"math"
	"testing"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// eqFloat is bit-level equality with NaN == NaN (empty categories render as
// NaN at tiny scales).
func eqFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func eqFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !eqFloat(a[i], b[i]) {
			return false
		}
	}
	return true
}

func eqCategoryResult(a, b CategoryResult) bool {
	if len(a.Delta) != len(b.Delta) || !eqFloats(a.Geomean, b.Geomean) || a.Dropped != b.Dropped {
		return false
	}
	for i := range a.Delta {
		if !eqFloats(a.Delta[i], b.Delta[i]) {
			return false
		}
	}
	return true
}

func TestRunAllPreservesJobOrder(t *testing.T) {
	ws := trace.Workloads()[:6]
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		opt := sim.DefaultST()
		opt.Refs = 2_000
		jobs[i] = SingleJob(w, opt)
	}
	r := NewRunner(0)
	serial := r.RunAll(jobs, 1)
	parallel := NewRunner(0).RunAll(jobs, 8)
	for i := range jobs {
		if !eqFloats(serial[i].IPC, parallel[i].IPC) {
			t.Errorf("job %d (%s): parallel IPC %v != serial %v",
				i, ws[i].Name, parallel[i].IPC, serial[i].IPC)
		}
	}
}

func TestRunMemoization(t *testing.T) {
	w := trace.Workloads()[0]
	opt := sim.DefaultST()
	opt.Refs = 2_000

	r := NewRunner(1)
	first := r.run(SingleJob(w, opt))
	if len(r.memo) != 1 {
		t.Fatalf("baseline run should populate the memo, len = %d", len(r.memo))
	}
	second := r.run(SingleJob(w, opt))
	if !eqFloats(first.IPC, second.IPC) {
		t.Errorf("memoized result differs: %v vs %v", first.IPC, second.IPC)
	}

	// A prefetcher run is memoized too (figures share identical runs), under
	// its own key.
	withPF := opt
	withPF.L2 = sim.PFSPP
	pf1 := r.run(SingleJob(w, withPF))
	if len(r.memo) != 2 {
		t.Fatalf("PF run should get its own memo entry, len = %d", len(r.memo))
	}
	pf2 := r.run(SingleJob(w, withPF))
	if !eqFloats(pf1.IPC, pf2.IPC) {
		t.Errorf("memoized PF result differs: %v vs %v", pf1.IPC, pf2.IPC)
	}
	if eqFloats(first.IPC, pf1.IPC) {
		t.Error("baseline and PF runs should not share a key")
	}

	// A pollution-tracking run must not be memoized.
	tracked := opt
	tracked.TrackPollution = true
	r.run(SingleJob(w, tracked))
	if len(r.memo) != 2 {
		t.Errorf("pollution-tracking run leaked into the memo, len = %d", len(r.memo))
	}

	// A port-inspecting run must bypass the memo and keep its ports.
	needs := SingleJob(w, withPF)
	needs.NeedPorts = true
	res := r.run(needs)
	if len(r.memo) != 2 {
		t.Errorf("NeedPorts run leaked into the memo, len = %d", len(r.memo))
	}
	if len(res.Ports()) == 0 {
		t.Error("NeedPorts run lost its ports")
	}
}

func TestMemoKeyIgnoresSMSPHTEntries(t *testing.T) {
	w := trace.Workloads()[0]
	opt := sim.DefaultST()
	opt.Refs = 2_000

	a, okA := memoizable(SingleJob(w, opt))
	swept := opt
	swept.SMSPHTEntries = 256
	b, okB := memoizable(SingleJob(w, swept))
	if !okA || !okB {
		t.Fatal("baseline jobs should be memoizable")
	}
	if a != b {
		t.Error("Fig. 5's PHT sweep should share one baseline per workload")
	}

	diff := opt
	diff.Refs = 4_000
	c, _ := memoizable(SingleJob(w, diff))
	if a == c {
		t.Error("different Refs must produce a different baseline key")
	}
}

func TestMemoKeySeparatesMixes(t *testing.T) {
	opt := sim.DefaultMP()
	opt.Refs = 2_000
	w0, w1 := trace.Workloads()[0], trace.Workloads()[1]
	a, _ := memoizable(Job{Workloads: []trace.Workload{w0, w1}, Opt: opt})
	b, _ := memoizable(Job{Workloads: []trace.Workload{w1, w0}, Opt: opt})
	c, _ := memoizable(Job{Workloads: []trace.Workload{w0, w1}, Opt: opt})
	if a == b {
		t.Error("mix order is core assignment; reordering must change the key")
	}
	if a != c {
		t.Error("identical mixes must share a key")
	}
}

// TestParallelSerialEquivalence is the tentpole's acceptance test: with a
// fixed Seed, any worker count produces bit-identical figure rows.
func TestParallelSerialEquivalence(t *testing.T) {
	s := tiny()

	serial := Fig4(s.WithParallel(1))
	parallel := Fig4(s.WithParallel(4))
	if !eqCategoryResult(serial, parallel) {
		t.Errorf("Fig4 parallel != serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}

	mpSerial := Fig17(s.WithParallel(1))
	mpParallel := Fig17(s.WithParallel(4))
	if !eqCategoryResult(mpSerial, mpParallel) {
		t.Errorf("Fig17 parallel != serial:\nserial   %+v\nparallel %+v", mpSerial, mpParallel)
	}

	f5Serial := Fig5(s.WithParallel(1))
	f5Parallel := Fig5(s.WithParallel(4))
	for i := range f5Serial {
		if !eqFloat(f5Serial[i].DeltaPct, f5Parallel[i].DeltaPct) {
			t.Errorf("Fig5 row %d: parallel %+v != serial %+v", i, f5Parallel[i], f5Serial[i])
		}
	}
}

// TestMemoSharedAcrossFigures checks the process-wide engine reuses runs
// between figures that share a machine configuration.
func TestMemoSharedAcrossFigures(t *testing.T) {
	ResetMemo()
	s := tiny()
	Fig4(s)
	after4 := MemoLen()
	if after4 == 0 {
		t.Fatal("Fig4 should memoize its runs")
	}
	// Rerunning the same figure simulates nothing new.
	Fig4(s)
	if got := MemoLen(); got != after4 {
		t.Errorf("rerunning Fig4 grew the memo from %d to %d", after4, got)
	}
	// Fig12 shares Fig4's baselines and BOP/SMS/SPP runs; only its DSPatch
	// and DSPatch+SPP points are new.
	Fig12(s)
	after12 := MemoLen()
	if after12 <= after4 {
		t.Errorf("Fig12 should add its DSPatch runs to the memo (%d -> %d)", after4, after12)
	}
	if added := after12 - after4; added >= after4 {
		t.Errorf("Fig12 added %d entries to %d; expected reuse of the shared runs", added, after4)
	}
	Fig12(s)
	if got := MemoLen(); got != after12 {
		t.Errorf("rerunning Fig12 grew the memo from %d to %d", after12, got)
	}
}
