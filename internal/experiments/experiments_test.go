package experiments

import (
	"bytes"
	"testing"

	"dspatch/internal/sim"
	"dspatch/internal/trace"
)

// tiny keeps experiment smoke tests fast.
func tiny() Scale { return Scale{Refs: 8_000, PerCategory: 1, MPMixes: 2, Seed: 1} }

func TestScaleWorkloadSampling(t *testing.T) {
	s := tiny()
	ws := s.workloads()
	if len(ws) != len(trace.Categories) {
		t.Fatalf("per-category=1 should give %d workloads, got %d", len(trace.Categories), len(ws))
	}
	full := Full().workloads()
	if len(full) != 83 {
		t.Fatalf("full scale should give 83 workloads, got %d", len(full))
	}
	hot := s.memIntensive()
	for _, w := range hot {
		if !w.MemIntensive {
			t.Errorf("%s is not memory-intensive", w.Name)
		}
	}
}

func TestTable1Storage(t *testing.T) {
	rows := Table1()
	if len(rows) != 3 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	totalKB := float64(rows[2].Bits) / 8192
	if totalKB < 3.0 || totalKB > 3.7 {
		t.Errorf("DSPatch total storage = %.2fKB, want ≈3.4–3.6", totalKB)
	}
	if rows[0].Bits+rows[1].Bits != rows[2].Bits {
		t.Error("PB + SPT should equal Total")
	}
}

func TestTable3Orderings(t *testing.T) {
	rows := Table3()
	kb := map[string]float64{}
	for _, r := range rows {
		kb[r.Structure] = float64(r.Bits) / 8192
	}
	// The paper's storage story: DSPatch < SPP < SMS; DSPatch < 1/20 SMS.
	if !(kb["DSPatch"] < kb["SPP"]) {
		t.Errorf("DSPatch (%.1fKB) should undercut SPP (%.1fKB)", kb["DSPatch"], kb["SPP"])
	}
	if !(kb["DSPatch"] < kb["SMS"]/20) {
		t.Errorf("DSPatch (%.1fKB) should be <1/20 of SMS (%.1fKB)", kb["DSPatch"], kb["SMS"])
	}
	if !(kb["SMS-256"] < 5) {
		t.Errorf("iso-storage SMS = %.1fKB, want ≈3.5", kb["SMS-256"])
	}
}

func TestFig11aDeltaDominance(t *testing.T) {
	s := tiny()
	s.Refs = 20_000
	r := Fig11a(s)
	ones := r.PlusOne + r.MinusOne
	// Paper: ±1 are >50% of deltas (Fig. 11a says more than 50–60%).
	if ones < 0.4 {
		t.Errorf("±1 delta share = %.2f, want the dominant share", ones)
	}
	total := ones + r.TwoThree + r.Other
	if total < 0.99 || total > 1.01 {
		t.Errorf("distribution sums to %.2f", total)
	}
}

func TestFig11bHistogram(t *testing.T) {
	h := Fig11b(tiny())
	var total float64
	for _, v := range h {
		total += v
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("histogram sums to %.2f", total)
	}
	// The paper reports 42% of page generations compress exactly; our
	// synthetic traces under-represent that bucket and over-represent the
	// 50% bucket (sparse one-line page generations — a documented deviation,
	// README experiment index, Fig. 11b). The invariants that must hold: the exact
	// bucket exists, and — by the §3.8 bound — nothing exceeds 50%, i.e.
	// the six buckets exhaust the distribution.
	if h[0] == 0 {
		t.Error("exact-0 bucket empty")
	}
}

func TestFig5SmallerPHTIsWorse(t *testing.T) {
	rows := Fig5(tiny())
	if len(rows) != 4 {
		t.Fatalf("Fig5 rows = %d", len(rows))
	}
	if rows[0].PHTEntries != 16<<10 || rows[3].PHTEntries != 256 {
		t.Fatalf("unexpected sweep order: %+v", rows)
	}
	if rows[3].DeltaPct >= rows[0].DeltaPct {
		t.Errorf("256-entry SMS (%+.1f%%) should underperform 16K (%+.1f%%)",
			rows[3].DeltaPct, rows[0].DeltaPct)
	}
	if rows[0].StorageKB < 60 || rows[3].StorageKB > 5 {
		t.Errorf("storage endpoints wrong: %.1f / %.1f", rows[0].StorageKB, rows[3].StorageKB)
	}
}

func TestFig12Shape(t *testing.T) {
	r := Fig12(tiny())
	if len(r.Prefetchers) != 5 || len(r.Delta) != 5 {
		t.Fatalf("Fig12 shape wrong: %d prefetchers", len(r.Prefetchers))
	}
	idx := map[sim.PF]int{}
	for i, pf := range r.Prefetchers {
		idx[pf] = i
	}
	// The headline qualitative claim: the combination beats standalone SPP.
	if r.Geomean[idx[sim.PFDSPatchSPP]] <= r.Geomean[idx[sim.PFSPP]]-1 {
		t.Errorf("DSPatch+SPP (%.1f%%) should not trail SPP (%.1f%%)",
			r.Geomean[idx[sim.PFDSPatchSPP]], r.Geomean[idx[sim.PFSPP]])
	}
}

func TestFig19AccPMatters(t *testing.T) {
	s := tiny()
	r := Fig19(s)
	// Paper: AlwaysCovP loses the most; ModCovP sits between it and full.
	if r.AlwaysCovP > r.DSPatch+1.5 {
		t.Errorf("AlwaysCovP (%.1f%%) should not beat full DSPatch (%.1f%%)",
			r.AlwaysCovP, r.DSPatch)
	}
}

func TestFig20Taxonomy(t *testing.T) {
	rows := Fig20(tiny())
	if len(rows) != 3 {
		t.Fatalf("Fig20 rows = %d", len(rows))
	}
	sawData := false
	for _, r := range rows {
		sum := r.NoReuse + r.PrefetchedBeforeUse + r.BadPollution
		if sum == 0 {
			// Short traces may not pressure a large LLC at all; the full
			// scale does (see the README's experiment index).
			continue
		}
		sawData = true
		if sum < 0.98 || sum > 1.02 {
			t.Errorf("LLC %dMB fractions sum to %.2f", r.LLCMB, sum)
		}
		// Paper: NoReuse dominates (84–92%) and BadPollution is small.
		if r.NoReuse < r.BadPollution {
			t.Errorf("LLC %dMB: NoReuse (%.2f) should dominate BadPollution (%.2f)",
				r.LLCMB, r.NoReuse, r.BadPollution)
		}
	}
	if !sawData {
		t.Error("no LLC size produced pollution victims")
	}
}

func TestFormatters(t *testing.T) {
	var b bytes.Buffer
	FormatStorage(&b, "t", Table1())
	FormatCategory(&b, "t", CategoryResult{
		Prefetchers: []sim.PF{sim.PFSPP},
		Categories:  trace.Categories,
		Delta:       [][]float64{make([]float64, len(trace.Categories))},
		Geomean:     []float64{1},
	})
	FormatScaling(&b, "t", ScalingResult{Points: bwPoints(), Prefetchers: []sim.PF{sim.PFSPP},
		Delta: [][]float64{make([]float64, 6)}})
	FormatFig11(&b, Fig11aResult{}, [6]float64{})
	FormatFig19(&b, Fig19Result{})
	FormatHeadline(&b, HeadlineResult{})
	if b.Len() == 0 {
		t.Fatal("formatters produced no output")
	}
}

func TestBWPointsOrdering(t *testing.T) {
	pts := bwPoints()
	if len(pts) != 6 {
		t.Fatalf("bwPoints = %d, want 6", len(pts))
	}
	if pts[0].Cfg.PeakBandwidthGBps() >= pts[5].Cfg.PeakBandwidthGBps() {
		t.Error("points should span low to high bandwidth")
	}
}
