package experiments

import (
	"fmt"
	"log"

	"dspatch/internal/sim"
)

// The persistent run cache extends the in-process memo across processes:
// every memoizable simulation result is written to a ResultStore — by
// default a DirStore of content-addressed files under the cache directory —
// and later invocations (a second CLI run of the same figure, a CI job, a
// notebook, another fleet worker) load it instead of re-simulating.
//
// Correctness rules:
//
//   - The address is a SHA-256 over every runKey field, so any change to the
//     requested configuration is a different file.
//   - Each entry embeds sim.ResultVersion; entries stamped by an older (or
//     newer) simulator behaviour are ignored and overwritten. Bump
//     sim.ResultVersion on any behavioral change.
//   - A corrupt or torn entry is treated as a miss: the run simulates and
//     rewrites it. The cache can be deleted at any time.
//   - Writes are atomic (temp file + rename), so concurrent processes racing
//     on one entry at worst both simulate; neither observes a torn file.
//   - A failing backend (disk full, permissions, read-only mount) degrades
//     gracefully: the first write error is logged, further writes are
//     disabled for the process, and simulation continues with the read path
//     untouched. The cache is an accelerator, never a correctness
//     dependency.

// cacheEntry is the on-disk layout. Key is stored for debuggability: the
// filename is its hash.
type cacheEntry struct {
	Version int        `json:"result_version"`
	Key     string     `json:"key"`
	Result  sim.Result `json:"result"`
}

// keyString renders every runKey field in a stable, self-describing form.
// It is the ResultStore key; DirStore hashes it into the content address.
func (k runKey) keyString() string {
	return fmt.Sprintf("names=%q dram=%+v llc=%d refs=%d seed=%d l2=%s nol1=%t smspht=%d stats=%t",
		k.names, k.dram, k.llcBytes, k.refs, k.seed, k.l2, k.noL1Stride, k.smsPHT, k.collectStats)
}

// logWarnf receives the engine's rare operational warnings (one line when
// cache writes are disabled). Tests swap it to observe the log.
var logWarnf func(format string, args ...any) = log.Printf

// cacheGet consults the configured store, counting nothing: callers account
// for hits themselves.
func (r *Runner) cacheGet(st ResultStore, key runKey) (sim.Result, bool) {
	if st == nil {
		return sim.Result{}, false
	}
	return st.Get(key.keyString())
}

// cachePut persists res, degrading gracefully on a failing backend: the
// first write error (ENOSPC, EACCES, a vanished directory) is logged once,
// further writes are disabled for this Runner, and simulation continues —
// the read path is unaffected.
func (r *Runner) cachePut(st ResultStore, key runKey, res sim.Result) {
	if st == nil || r.cacheWriteOff.Load() {
		return
	}
	if err := st.Put(key.keyString(), res); err != nil {
		if r.cacheWriteOff.CompareAndSwap(false, true) {
			logWarnf("experiments: run-cache write failed (%v); disabling further cache writes, simulation continues", err)
		}
	}
}

// SetCacheDir enables the persistent run cache for the process-wide engine,
// creating dir if needed. An empty dir disables it (the default: tests and
// library callers opt in explicitly).
func SetCacheDir(dir string) error {
	return engine.SetCacheDir(dir)
}

// SetResultStore points the process-wide engine's persistent cache at an
// arbitrary ResultStore backend (nil disables it). Front ends use
// SetCacheDir; fleet deployments that share results through something other
// than a directory plug in here.
func SetResultStore(s ResultStore) {
	engine.SetResultStore(s)
}

// CacheDir reports the process-wide engine's persistent cache directory
// (empty when the disk cache is disabled or backed by a non-directory
// store).
func CacheDir() string {
	engine.mu.Lock()
	defer engine.mu.Unlock()
	return engine.cacheDir
}

// SetCacheDir enables the persistent run cache on this runner.
func (r *Runner) SetCacheDir(dir string) error {
	if dir == "" {
		r.SetResultStore(nil)
		return nil
	}
	st, err := NewDirStore(dir)
	if err != nil {
		return err
	}
	r.SetResultStore(st)
	return nil
}

// SetResultStore replaces this runner's persistent store (nil disables it)
// and re-arms cache writes: a backend disabled by write failures stays
// disabled only until a new store is configured.
func (r *Runner) SetResultStore(s ResultStore) {
	dir := ""
	if ds, ok := s.(*DirStore); ok {
		dir = ds.Dir()
	}
	r.mu.Lock()
	r.store = s
	r.cacheDir = dir
	r.mu.Unlock()
	r.cacheWriteOff.Store(false)
}

// CacheWritesDisabled reports whether a write failure has disabled this
// runner's cache writes (reads continue regardless).
func (r *Runner) CacheWritesDisabled() bool {
	return r.cacheWriteOff.Load()
}
