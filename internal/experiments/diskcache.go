package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dspatch/internal/sim"
)

// The persistent run cache extends the in-process memo across processes:
// every memoizable simulation result is written to a content-addressed file
// under the cache directory, and later invocations — a second CLI run of the
// same figure, a CI job, a notebook — load it instead of re-simulating.
//
// Correctness rules:
//
//   - The address is a SHA-256 over every runKey field, so any change to the
//     requested configuration is a different file.
//   - Each file embeds sim.ResultVersion; entries stamped by an older (or
//     newer) simulator behaviour are ignored and overwritten. Bump
//     sim.ResultVersion on any behavioral change.
//   - A corrupt or unreadable file is treated as a miss: the run simulates
//     and rewrites the entry. The cache can be deleted at any time.
//   - Writes are atomic (temp file + rename), so concurrent processes racing
//     on one entry at worst both simulate; neither observes a torn file.

// cacheEntry is the on-disk layout. Key is stored for debuggability: the
// filename is its hash.
type cacheEntry struct {
	Version int        `json:"result_version"`
	Key     string     `json:"key"`
	Result  sim.Result `json:"result"`
}

// keyString renders every runKey field in a stable, self-describing form.
func (k runKey) keyString() string {
	return fmt.Sprintf("names=%q dram=%+v llc=%d refs=%d seed=%d l2=%s nol1=%t smspht=%d",
		k.names, k.dram, k.llcBytes, k.refs, k.seed, k.l2, k.noL1Stride, k.smsPHT)
}

// cachePath is the content address of k under dir.
func cachePath(dir string, k runKey) string {
	sum := sha256.Sum256([]byte(k.keyString()))
	return filepath.Join(dir, hex.EncodeToString(sum[:16])+".json")
}

// cacheLoad returns the persisted result for k, if a valid, version-matched
// entry exists under dir.
func cacheLoad(dir string, k runKey) (sim.Result, bool) {
	data, err := os.ReadFile(cachePath(dir, k))
	if err != nil {
		return sim.Result{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return sim.Result{}, false // corrupt: simulate and rewrite
	}
	if e.Version != sim.ResultVersion {
		return sim.Result{}, false // stale behaviour stamp: recompute
	}
	return e.Result, true
}

// cacheStore persists res for k under dir. Failures are silent: the cache is
// an accelerator, never a correctness dependency.
func cacheStore(dir string, k runKey, res sim.Result) {
	data, err := json.Marshal(cacheEntry{Version: sim.ResultVersion, Key: k.keyString(), Result: res})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, "run-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), cachePath(dir, k)); err != nil {
		os.Remove(tmp.Name())
	}
}

// SetCacheDir enables the persistent run cache for the process-wide engine,
// creating dir if needed. An empty dir disables it (the default: tests and
// library callers opt in explicitly).
func SetCacheDir(dir string) error {
	return engine.SetCacheDir(dir)
}

// CacheDir reports the process-wide engine's persistent cache directory
// (empty when the disk cache is disabled).
func CacheDir() string {
	engine.mu.Lock()
	defer engine.mu.Unlock()
	return engine.cacheDir
}

// SetCacheDir enables the persistent run cache on this runner.
func (r *Runner) SetCacheDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("experiments: cache dir: %w", err)
		}
	}
	r.mu.Lock()
	r.cacheDir = dir
	r.mu.Unlock()
	return nil
}
