package bitpattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewWidths(t *testing.T) {
	for _, w := range []int{1, 16, 32, 64} {
		p := New(w)
		if p.Width() != w {
			t.Errorf("New(%d).Width() = %d", w, p.Width())
		}
		if !p.Empty() {
			t.Errorf("New(%d) not empty", w)
		}
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestSetGetClear(t *testing.T) {
	p := New(64)
	p = p.Set(0).Set(5).Set(63)
	for i := 0; i < 64; i++ {
		want := i == 0 || i == 5 || i == 63
		if p.Get(i) != want {
			t.Errorf("bit %d = %v, want %v", i, p.Get(i), want)
		}
	}
	if p.PopCount() != 3 {
		t.Errorf("PopCount = %d, want 3", p.PopCount())
	}
	p = p.Clear(5)
	if p.Get(5) || p.PopCount() != 2 {
		t.Errorf("Clear failed: %v", p)
	}
}

func TestFromBitsMasks(t *testing.T) {
	p := FromBits(^uint64(0), 16)
	if p.Bits() != 0xffff {
		t.Errorf("FromBits should mask to width: got %#x", p.Bits())
	}
}

func TestOrAndSemantics(t *testing.T) {
	a := FromBits(0b1100, 8)
	b := FromBits(0b1010, 8)
	if got := a.Or(b).Bits(); got != 0b1110 {
		t.Errorf("Or = %#b", got)
	}
	if got := a.And(b).Bits(); got != 0b1000 {
		t.Errorf("And = %#b", got)
	}
	if got := a.AndNot(b).Bits(); got != 0b0100 {
		t.Errorf("AndNot = %#b", got)
	}
}

// TestAnchorPaperFigure2 reproduces the paper's running example: access
// streams B and C (trigger offset 1) both map to bit-pattern
// BP2 = 0100 1100 0001 1000 (LSB-first) and anchor to the same pattern.
func TestAnchorPaperFigure2(t *testing.T) {
	// BP2 written LSB-first over 16 offsets: bits set at 1,4,5,11,12.
	bp2 := New(16).Set(1).Set(4).Set(5).Set(11).Set(12)
	// Stream B: offsets 1,5,4,11,12 (trigger 1). Stream C: 1,5,11,4,12.
	build := func(offsets []int) Pattern {
		p := New(16)
		for _, o := range offsets {
			p = p.Set(o)
		}
		return p
	}
	b := build([]int{1, 5, 4, 11, 12})
	c := build([]int{1, 5, 11, 4, 12})
	if !b.Equal(bp2) || !c.Equal(bp2) {
		t.Fatalf("streams B and C should share BP2; B=%v C=%v want %v", b, c, bp2)
	}
	// Anchoring to trigger 1 rotates so the trigger becomes bit 0.
	anch := bp2.Anchor(1)
	want := New(16).Set(0).Set(3).Set(4).Set(10).Set(11)
	if !anch.Equal(want) {
		t.Errorf("anchored = %v, want %v", anch, want)
	}
}

func TestAnchorUnanchorInverse(t *testing.T) {
	f := func(raw uint64, trig uint8) bool {
		p := FromBits(raw, 64)
		k := int(trig) % 64
		return p.Anchor(k).Unanchor(k).Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnchorPreservesPopCount(t *testing.T) {
	f := func(raw uint64, trig uint8) bool {
		p := FromBits(raw, 32)
		return p.Anchor(int(trig)%32).PopCount() == p.PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnchorTriggerBecomesBitZero(t *testing.T) {
	// If the trigger offset's bit is set, the anchored pattern has bit 0 set.
	for trig := 0; trig < 64; trig++ {
		p := New(64).Set(trig)
		if !p.Anchor(trig).Get(0) {
			t.Errorf("trigger %d: anchored bit 0 not set", trig)
		}
	}
}

func TestAnchorZeroIsIdentity(t *testing.T) {
	p := FromBits(0xdeadbeefcafe, 64)
	if !p.Anchor(0).Equal(p) {
		t.Error("Anchor(0) should be identity")
	}
}

func TestCompressExpand(t *testing.T) {
	// bits 0 and 1 compress to bit 0; bit 7 compresses to bit 3.
	p := New(8).Set(0).Set(1).Set(7)
	c := p.Compress()
	if c.Width() != 4 {
		t.Fatalf("compressed width = %d", c.Width())
	}
	want := New(4).Set(0).Set(3)
	if !c.Equal(want) {
		t.Errorf("Compress = %v, want %v", c, want)
	}
	e := c.Expand()
	wantE := New(8).Set(0).Set(1).Set(6).Set(7)
	if !e.Equal(wantE) {
		t.Errorf("Expand = %v, want %v", e, wantE)
	}
}

func TestCompressNeverLosesCoverage(t *testing.T) {
	// Expand(Compress(p)) must be a superset of p: compression may over-
	// predict (hurting accuracy) but never under-predict (paper §3.8).
	f := func(raw uint64) bool {
		p := FromBits(raw, 64)
		sup := p.Compress().Expand()
		return p.And(sup).Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompressMispredictionBound(t *testing.T) {
	// The extra (mispredicted) lines from compression are at most PopCount(p):
	// each set 128B bit adds at most one untouched 64B line.
	f := func(raw uint64) bool {
		p := FromBits(raw, 64)
		extra := p.Compress().Expand().AndNot(p).PopCount()
		return extra <= p.PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHalfConcat(t *testing.T) {
	p := FromBits(0xABCD_1234_5678_9EF0, 64)
	lo, hi := p.Half(0), p.Half(1)
	if lo.Bits() != 0x5678_9EF0 || hi.Bits() != 0xABCD_1234 {
		t.Errorf("halves = %#x, %#x", lo.Bits(), hi.Bits())
	}
	if !Concat(lo, hi).Equal(p) {
		t.Error("Concat(Half(0), Half(1)) != original")
	}
}

func TestOffsets(t *testing.T) {
	p := New(32).Set(3).Set(17).Set(31)
	got := p.Offsets(nil)
	want := []int{3, 17, 31}
	if len(got) != len(want) {
		t.Fatalf("Offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Offsets = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	p := New(8).Set(1).Set(4)
	if s := p.String(); s != "0100 1000" {
		t.Errorf("String = %q", s)
	}
}

func TestRotateFullCycle(t *testing.T) {
	// Rotating width times returns the original.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		p := FromBits(rng.Uint64(), 32)
		q := p
		for k := 0; k < 32; k++ {
			q = q.Anchor(1)
		}
		if !q.Equal(p) {
			t.Fatalf("32 single rotations != identity: %v vs %v", q, p)
		}
	}
}

func TestAnchorComposition(t *testing.T) {
	// Anchor(a).Anchor(b) == Anchor(a+b mod w)
	f := func(raw uint64, a, b uint8) bool {
		p := FromBits(raw, 64)
		x, y := int(a)%64, int(b)%64
		return p.Anchor(x).Anchor(y).Equal(p.Anchor((x + y) % 64))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// naiveCompress is the pre-optimization loop implementation of Compress,
// kept as the oracle for the branchless shift/mask fold.
func naiveCompress(p Pattern) Pattern {
	out := New(p.Width() / 2)
	merged := p.Bits() | p.Bits()>>1
	for i := 0; i < out.Width(); i++ {
		if merged&(1<<uint(2*i)) != 0 {
			out = out.Set(i)
		}
	}
	return out
}

// naiveExpand is the pre-optimization loop implementation of Expand.
func naiveExpand(p Pattern) Pattern {
	out := New(p.Width() * 2)
	for i := 0; i < p.Width(); i++ {
		if p.Bits()&(1<<uint(i)) != 0 {
			out = out.Set(2 * i).Set(2*i + 1)
		}
	}
	return out
}

func TestCompressMatchesNaive(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16, 32, 64} {
		f := func(raw uint64) bool {
			p := FromBits(raw, w)
			return p.Compress().Equal(naiveCompress(p))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestExpandMatchesNaive(t *testing.T) {
	for _, w := range []int{1, 4, 8, 16, 32} {
		f := func(raw uint64) bool {
			p := FromBits(raw, w)
			return p.Expand().Equal(naiveExpand(p))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestAppendStringMatchesString(t *testing.T) {
	buf := make([]byte, 0, 80)
	for _, w := range []int{1, 3, 4, 5, 8, 15, 16, 31, 32, 63, 64} {
		f := func(raw uint64) bool {
			p := FromBits(raw, w)
			buf = p.AppendString(buf[:0])
			return string(buf) == p.String() && len(buf) == p.StringLen()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("width %d: %v", w, err)
		}
	}
}

func TestAppendStringDoesNotAllocate(t *testing.T) {
	p := FromBits(0xdeadbeefcafe1234, 64)
	buf := make([]byte, 0, p.StringLen())
	allocs := testing.AllocsPerRun(100, func() {
		buf = p.AppendString(buf[:0])
	})
	if allocs != 0 {
		t.Errorf("AppendString allocates %.0f times per call, want 0", allocs)
	}
}

func TestStringAllocatesOnce(t *testing.T) {
	p := FromBits(0xdeadbeefcafe1234, 64)
	allocs := testing.AllocsPerRun(100, func() {
		_ = p.String()
	})
	if allocs > 1 {
		t.Errorf("String allocates %.0f times per call, want 1", allocs)
	}
}
