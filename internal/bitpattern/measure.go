package bitpattern

// Quartile is a 2-bit quantized fraction, the representation DSPatch uses for
// both the DRAM bandwidth-utilization signal (§3.2) and the goodness measures
// of its stored bit-patterns (§3.5, Fig. 8).
type Quartile uint8

// Quartile values. QuartileOf maps a fraction n/d into these four buckets.
const (
	Q0 Quartile = iota // < 25%
	Q1                 // 25% – 50%
	Q2                 // 50% – 75%
	Q3                 // >= 75%
)

// QuartileOf quantizes the fraction num/den into a Quartile using only the
// shift-and-compare arithmetic the hardware would use. A zero denominator
// maps to Q0.
func QuartileOf(num, den int) Quartile {
	if den <= 0 || num <= 0 {
		return Q0
	}
	n4 := num << 2
	switch {
	case n4 >= 3*den: // num/den >= 3/4
		return Q3
	case num<<1 >= den: // >= 1/2
		return Q2
	case n4 >= den: // >= 1/4
		return Q1
	default:
		return Q0
	}
}

// AtLeast reports whether q is at least the given quartile.
func (q Quartile) AtLeast(t Quartile) bool { return q >= t }

// String implements fmt.Stringer.
func (q Quartile) String() string {
	switch q {
	case Q0:
		return "<25%"
	case Q1:
		return "25-50%"
	case Q2:
		return "50-75%"
	default:
		return ">=75%"
	}
}

// Measure holds the outcome of comparing a predicted bit-pattern against the
// program's actual access bit-pattern for one region generation (Fig. 8).
type Measure struct {
	Pred     int // PopCount(predicted)           — prefetches that would issue
	Real     int // PopCount(program)             — actual accesses
	Accurate int // PopCount(predicted & program) — useful prefetches
}

// Compare computes the accuracy/coverage measure of predicted against actual.
func Compare(predicted, actual Pattern) Measure {
	return Measure{
		Pred:     predicted.PopCount(),
		Real:     actual.PopCount(),
		Accurate: predicted.And(actual).PopCount(),
	}
}

// AccuracyQ returns the quantized prediction accuracy Cacc/Cpred.
func (m Measure) AccuracyQ() Quartile { return QuartileOf(m.Accurate, m.Pred) }

// CoverageQ returns the quantized prediction coverage Cacc/Creal.
func (m Measure) CoverageQ() Quartile { return QuartileOf(m.Accurate, m.Real) }

// Accuracy returns the exact fractional accuracy (for reporting only; the
// hardware never computes this).
func (m Measure) Accuracy() float64 {
	if m.Pred == 0 {
		return 0
	}
	return float64(m.Accurate) / float64(m.Pred)
}

// Coverage returns the exact fractional coverage (for reporting only).
func (m Measure) Coverage() float64 {
	if m.Real == 0 {
		return 0
	}
	return float64(m.Accurate) / float64(m.Real)
}

// SatCounter is an n-bit saturating counter. DSPatch uses 2-bit instances for
// OrCount, MeasureCovP and MeasureAccP.
type SatCounter struct {
	v   uint8
	max uint8
}

// NewSatCounter returns a saturating counter over [0, 2^bits-1].
func NewSatCounter(bits uint) SatCounter {
	if bits == 0 || bits > 7 {
		panic("bitpattern: counter bits out of range [1,7]")
	}
	return SatCounter{max: uint8(1)<<bits - 1}
}

// Inc increments the counter, saturating at its maximum.
func (c *SatCounter) Inc() {
	if c.v < c.max {
		c.v++
	}
}

// Dec decrements the counter, saturating at zero.
func (c *SatCounter) Dec() {
	if c.v > 0 {
		c.v--
	}
}

// Reset sets the counter to zero.
func (c *SatCounter) Reset() { c.v = 0 }

// Value returns the current count.
func (c *SatCounter) Value() int { return int(c.v) }

// Saturated reports whether the counter is at its maximum.
func (c *SatCounter) Saturated() bool { return c.v == c.max }
