// Package bitpattern implements the anchored spatial bit-patterns at the core
// of DSPatch (MICRO 2019, §3.3–§3.8).
//
// A Pattern records which cache lines (or 128B super-lines after compression)
// of a memory region were touched. Patterns can be anchored — rotated so that
// bit 0 corresponds to the region's trigger access — which makes access
// streams that differ only by out-of-order shuffling collapse onto one
// representation (paper Fig. 2). Simple OR/AND modulation then derives the
// coverage-biased (CovP) and accuracy-biased (AccP) patterns (Fig. 3, Fig. 9),
// and popcount arithmetic quantifies prediction accuracy and coverage in
// quartiles (Fig. 8).
package bitpattern

import (
	"math/bits"
	"strings"
)

// Pattern is a spatial bit-pattern over a region of Width() places.
// The zero value is an empty pattern of width 0; construct with New.
// Widths up to 64 are supported, which covers every granularity DSPatch
// uses: 64 (4KB page at 64B lines), 32 (2KB segment at 64B lines, or 4KB
// page at 128B granularity) and 16 (2KB segment at 128B granularity).
type Pattern struct {
	bits  uint64
	width uint8
}

// New returns an empty pattern of the given width. Widths outside [1,64]
// panic: a mis-sized pattern is a programming error, not a runtime condition.
func New(width int) Pattern {
	if width < 1 || width > 64 {
		panic("bitpattern: width out of range [1,64]")
	}
	return Pattern{width: uint8(width)}
}

// FromBits returns a pattern of the given width with the low width bits of b.
func FromBits(b uint64, width int) Pattern {
	p := New(width)
	p.bits = b & p.mask()
	return p
}

func (p Pattern) mask() uint64 {
	if p.width == 64 {
		return ^uint64(0)
	}
	return uint64(1)<<p.width - 1
}

// Width returns the number of places in the pattern.
func (p Pattern) Width() int { return int(p.width) }

// Bits returns the raw bits of the pattern.
func (p Pattern) Bits() uint64 { return p.bits }

// Set returns p with bit i set. Out-of-range i panics.
func (p Pattern) Set(i int) Pattern {
	p.checkIndex(i)
	p.bits |= 1 << uint(i)
	return p
}

// Clear returns p with bit i cleared.
func (p Pattern) Clear(i int) Pattern {
	p.checkIndex(i)
	p.bits &^= 1 << uint(i)
	return p
}

// Get reports whether bit i is set.
func (p Pattern) Get(i int) bool {
	p.checkIndex(i)
	return p.bits&(1<<uint(i)) != 0
}

func (p Pattern) checkIndex(i int) {
	if i < 0 || i >= int(p.width) {
		panic("bitpattern: index out of range")
	}
}

// PopCount returns the number of set bits.
func (p Pattern) PopCount() int { return bits.OnesCount64(p.bits) }

// Empty reports whether no bits are set.
func (p Pattern) Empty() bool { return p.bits == 0 }

// Or returns the bitwise OR of p and q. Widths must match.
func (p Pattern) Or(q Pattern) Pattern {
	p.checkWidth(q)
	p.bits |= q.bits
	return p
}

// And returns the bitwise AND of p and q. Widths must match.
func (p Pattern) And(q Pattern) Pattern {
	p.checkWidth(q)
	p.bits &= q.bits
	return p
}

// AndNot returns the bits of p not present in q. Widths must match.
func (p Pattern) AndNot(q Pattern) Pattern {
	p.checkWidth(q)
	p.bits &^= q.bits
	return p
}

// Equal reports whether p and q have the same width and bits.
func (p Pattern) Equal(q Pattern) bool { return p.width == q.width && p.bits == q.bits }

func (p Pattern) checkWidth(q Pattern) {
	if p.width != q.width {
		panic("bitpattern: width mismatch")
	}
}

// Anchor rotates the pattern so bit 0 aligns with the trigger offset:
// anchored bit i corresponds to original bit (i+trigger) mod Width.
// This is the "rotate left to the trigger" operation of paper Fig. 2.
func (p Pattern) Anchor(trigger int) Pattern {
	return p.rotate(trigger)
}

// Unanchor is the inverse of Anchor: it maps an anchored (trigger-relative)
// pattern back to absolute region offsets given the trigger offset.
func (p Pattern) Unanchor(trigger int) Pattern {
	return p.rotate(-trigger)
}

// rotate rotates right-to-left by k places within the pattern width, so that
// result bit i equals original bit (i+k) mod width.
func (p Pattern) rotate(k int) Pattern {
	w := int(p.width)
	k %= w
	if k < 0 {
		k += w
	}
	if k == 0 {
		return p
	}
	p.bits = (p.bits>>uint(k) | p.bits<<uint(w-k)) & p.mask()
	return p
}

// Compress halves the granularity: output bit i is set if input bit 2i or
// 2i+1 is set. With 64B lines this is the paper's 128B-granularity
// compression (§3.8). Width must be even. DSPatch compresses a pattern on
// every PB eviction, so this runs branchless: OR odd bits onto even bits,
// then gather the even bits with the shift/mask fold that emulates PEXT with
// the 0x5555… mask.
func (p Pattern) Compress() Pattern {
	if p.width%2 != 0 {
		panic("bitpattern: compress needs even width")
	}
	out := New(int(p.width) / 2)
	x := (p.bits | p.bits>>1) & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	out.bits = x & out.mask()
	return out
}

// Expand doubles the granularity: input bit i sets output bits 2i and 2i+1.
// It is the prediction-side inverse of Compress — a set 128B bit yields
// prefetch candidates for both 64B lines it covers. Branchless: spread the
// bits to even positions (the PDEP-style inverse of Compress's gather), then
// OR the spread onto itself shifted left to light each odd twin.
func (p Pattern) Expand() Pattern {
	if p.width > 32 {
		panic("bitpattern: expand would exceed 64 bits")
	}
	out := New(int(p.width) * 2)
	x := p.bits & 0x00000000FFFFFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	out.bits = (x | x<<1) & out.mask()
	return out
}

// Half returns the 2KB-segment half of a full-page pattern: seg 0 is the low
// half, seg 1 the high half. The result has half the width of p.
func (p Pattern) Half(seg int) Pattern {
	if p.width%2 != 0 {
		panic("bitpattern: half needs even width")
	}
	hw := int(p.width) / 2
	out := New(hw)
	if seg == 0 {
		out.bits = p.bits & out.mask()
	} else {
		out.bits = (p.bits >> uint(hw)) & out.mask()
	}
	return out
}

// Concat joins lo (segment 0) and hi (segment 1) into one double-width
// pattern.
func Concat(lo, hi Pattern) Pattern {
	if lo.width != hi.width {
		panic("bitpattern: concat width mismatch")
	}
	out := New(int(lo.width) * 2)
	out.bits = lo.bits | hi.bits<<lo.width
	return out
}

// Offsets appends to dst the indices of the set bits, in ascending order.
func (p Pattern) Offsets(dst []int) []int {
	b := p.bits
	for b != 0 {
		i := bits.TrailingZeros64(b)
		dst = append(dst, i)
		b &= b - 1
	}
	return dst
}

// AppendString appends the pattern's rendering (LSB-first in 4-bit groups,
// e.g. "0100 1100") to dst and returns the extended slice. It is the
// allocation-free fast path behind String; formatters that render many
// patterns reuse one buffer across calls.
func (p Pattern) AppendString(dst []byte) []byte {
	w := int(p.width)
	b := p.bits
	for i := 0; i < w; i += 4 {
		if i > 0 {
			dst = append(dst, ' ')
		}
		n := w - i
		if n > 4 {
			n = 4
		}
		for j := 0; j < n; j++ {
			dst = append(dst, '0'+byte(b&1))
			b >>= 1
		}
	}
	return dst
}

// StringLen returns the exact length of the String rendering: one byte per
// place plus a space before every 4-bit group after the first.
func (p Pattern) StringLen() int {
	w := int(p.width)
	if w == 0 {
		return 0
	}
	return w + (w-1)/4
}

// String renders the pattern LSB-first in 4-bit groups, e.g. "0100 1100".
// The buffer is pre-sized exactly, so the call allocates once.
func (p Pattern) String() string {
	w := int(p.width)
	if w == 0 {
		return ""
	}
	var sb strings.Builder
	sb.Grow(p.StringLen())
	b := p.bits
	for i := 0; i < w; i++ {
		if i > 0 && i&3 == 0 {
			sb.WriteByte(' ')
		}
		sb.WriteByte('0' + byte(b&1))
		b >>= 1
	}
	return sb.String()
}
