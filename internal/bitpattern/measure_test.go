package bitpattern

import (
	"testing"
	"testing/quick"
)

func TestQuartileOf(t *testing.T) {
	tests := []struct {
		num, den int
		want     Quartile
	}{
		{0, 10, Q0},
		{1, 10, Q0},   // 10%
		{2, 10, Q0},   // 20%
		{25, 100, Q1}, // exactly 25%
		{3, 10, Q1},
		{49, 100, Q1},
		{50, 100, Q2}, // exactly 50%
		{74, 100, Q2},
		{75, 100, Q3}, // exactly 75%
		{10, 10, Q3},
		{15, 10, Q3}, // >100% clamps into Q3
		{5, 0, Q0},   // zero denominator
		{-1, 10, Q0}, // negative numerator
	}
	for _, tt := range tests {
		if got := QuartileOf(tt.num, tt.den); got != tt.want {
			t.Errorf("QuartileOf(%d,%d) = %v, want %v", tt.num, tt.den, got, tt.want)
		}
	}
}

func TestQuartileMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		den := 100
		x, y := int(a)%101, int(b)%101
		if x > y {
			x, y = y, x
		}
		return QuartileOf(x, den) <= QuartileOf(y, den)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuartileString(t *testing.T) {
	wants := map[Quartile]string{Q0: "<25%", Q1: "25-50%", Q2: "50-75%", Q3: ">=75%"}
	for q, w := range wants {
		if q.String() != w {
			t.Errorf("%d.String() = %q, want %q", q, q.String(), w)
		}
	}
}

// TestComparePaperFigure8 reproduces the worked example in paper Fig. 8:
// program 1011 0100 0011 1100 (popcount 8), predicted 1010 0110 0000 0001
// (popcount 5), AND 1010 0100 0000 0000 (popcount 3) → accuracy 3/5 (50-75%),
// coverage 3/8 (25-50%).
func TestComparePaperFigure8(t *testing.T) {
	parse := func(s string) Pattern {
		p := New(16)
		i := 0
		for _, c := range s {
			switch c {
			case '1':
				p = p.Set(i)
				i++
			case '0':
				i++
			}
		}
		return p
	}
	program := parse("1011 0100 0011 1100")
	predicted := parse("1010 0110 0000 0001")
	m := Compare(predicted, program)
	if m.Pred != 5 || m.Real != 8 || m.Accurate != 3 {
		t.Fatalf("Measure = %+v, want Pred 5 Real 8 Accurate 3", m)
	}
	if m.AccuracyQ() != Q2 {
		t.Errorf("AccuracyQ = %v, want %v", m.AccuracyQ(), Q2)
	}
	if m.CoverageQ() != Q1 {
		t.Errorf("CoverageQ = %v, want %v", m.CoverageQ(), Q1)
	}
}

func TestCompareExactFractions(t *testing.T) {
	pred := New(8).Set(0).Set(1)
	act := New(8).Set(1).Set(2).Set(3).Set(4)
	m := Compare(pred, act)
	if m.Accuracy() != 0.5 {
		t.Errorf("Accuracy = %v", m.Accuracy())
	}
	if m.Coverage() != 0.25 {
		t.Errorf("Coverage = %v", m.Coverage())
	}
	var zero Measure
	if zero.Accuracy() != 0 || zero.Coverage() != 0 {
		t.Error("zero measure should have zero fractions")
	}
}

func TestSatCounter(t *testing.T) {
	c := NewSatCounter(2)
	if c.Saturated() || c.Value() != 0 {
		t.Fatal("fresh counter should be zero")
	}
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	if !c.Saturated() || c.Value() != 3 {
		t.Fatalf("2-bit counter should saturate at 3, got %d", c.Value())
	}
	c.Dec()
	if c.Saturated() || c.Value() != 2 {
		t.Fatalf("after Dec: %d", c.Value())
	}
	for i := 0; i < 10; i++ {
		c.Dec()
	}
	if c.Value() != 0 {
		t.Fatalf("should floor at 0, got %d", c.Value())
	}
	c.Inc()
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset should zero the counter")
	}
}

func TestSatCounterBadBits(t *testing.T) {
	for _, b := range []uint{0, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSatCounter(%d) did not panic", b)
				}
			}()
			NewSatCounter(b)
		}()
	}
}
