// Package cache implements the set-associative cache tag stores of the
// simulated hierarchy (paper Table 2): LRU replacement, per-line prefetch
// and use bits, low-priority insertion (used by DSPatch when the coverage
// pattern is untrusted, §3.6), and an optional prefetch-aware dead-block
// victim policy approximating the baseline LLC replacement of the paper.
//
// Timing (latencies, MSHRs) is composed on top by package memsys; this
// package is purely the state of which lines are resident.
package cache

import "dspatch/internal/memaddr"

// Config sizes one cache level.
type Config struct {
	Name      string // for reporting, e.g. "L1D"
	SizeBytes int
	Ways      int
	// DeadBlockAware enables prefetch-aware victim selection: prefetched
	// lines that were never demanded are evicted first, approximating the
	// dead-block predictor the paper's baseline LLC uses.
	DeadBlockAware bool
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / memaddr.LineBytes / c.Ways }

// way is one cache line's tag state.
type way struct {
	tag      uint64
	lru      uint64 // last-touch stamp; 0 on low-priority fill
	valid    bool
	dirty    bool
	prefetch bool // filled by a prefetch and not yet demanded
	used     bool // demanded at least once since fill
}

// Stats counts the events needed for the paper's coverage/accuracy and
// pollution analyses.
type Stats struct {
	DemandAccesses uint64
	DemandHits     uint64
	DemandMisses   uint64
	PrefetchFills  uint64
	PrefetchHits   uint64 // demand hits that were the first use of a prefetched line
	PrefetchUnused uint64 // prefetched lines evicted without any demand use
	Evictions      uint64
	DirtyEvictions uint64
}

// Cache is one level's tag store. The zero value is unusable; construct with
// New.
type Cache struct {
	cfg     Config
	sets    []way // len = Sets()*Ways, set i occupies [i*Ways, (i+1)*Ways)
	setMask uint64
	stamp   uint64
	stats   Stats
}

// New builds a cache from cfg. Set count must be a power of two.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	return &Cache{
		cfg:     cfg,
		sets:    make([]way, sets*cfg.Ways),
		setMask: uint64(sets - 1),
	}
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) set(l memaddr.Line) []way {
	i := uint64(l) & c.setMask
	return c.sets[i*uint64(c.cfg.Ways) : (i+1)*uint64(c.cfg.Ways)]
}

func (c *Cache) tag(l memaddr.Line) uint64 { return uint64(l) >> uint(popShift(c.setMask)) }

func popShift(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Result describes the outcome of a demand access.
type Result struct {
	Hit bool
	// FirstUseOfPrefetch reports that this demand hit a line a prefetcher
	// brought in and is its first demand use — the event that counts toward
	// prefetch coverage.
	FirstUseOfPrefetch bool
}

// Access performs a demand load or store: it updates LRU and the per-line
// use bits and returns whether the line was resident.
func (c *Cache) Access(l memaddr.Line, write bool) Result {
	c.stats.DemandAccesses++
	set := c.set(l)
	tag := c.tag(l)
	c.stamp++
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			c.stats.DemandHits++
			r := Result{Hit: true}
			if w.prefetch && !w.used {
				r.FirstUseOfPrefetch = true
				c.stats.PrefetchHits++
			}
			w.prefetch = false
			w.used = true
			w.lru = c.stamp
			if write {
				w.dirty = true
			}
			return r
		}
	}
	c.stats.DemandMisses++
	return Result{}
}

// Probe reports whether l is resident without perturbing any state.
func (c *Cache) Probe(l memaddr.Line) bool {
	set := c.set(l)
	tag := c.tag(l)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// FillOpts qualifies a fill.
type FillOpts struct {
	Prefetch bool
	// LowPriority inserts the line at LRU position so it is the next victim
	// unless promoted by a demand hit (DSPatch's pollution mitigation).
	LowPriority bool
	Dirty       bool
}

// Victim describes the line displaced by a Fill.
type Victim struct {
	Valid         bool
	Line          memaddr.Line
	WasPrefetched bool // line was prefetched and never demanded
	Dirty         bool
}

// Fill installs line l. If l is already resident the flags are merged and no
// victim results. Otherwise the victim (if any way was valid) is returned so
// callers can write back dirty data and run pollution accounting.
func (c *Cache) Fill(l memaddr.Line, opts FillOpts) Victim {
	set := c.set(l)
	tag := c.tag(l)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			// Duplicate fill (e.g. a prefetch landing after the demand
			// already missed and filled). Keep the strongest state.
			w.dirty = w.dirty || opts.Dirty
			return Victim{}
		}
	}
	if opts.Prefetch {
		c.stats.PrefetchFills++
	}
	vi := c.pickVictim(set)
	w := &set[vi]
	var victim Victim
	if w.valid {
		victim = Victim{Valid: true, Line: c.lineOf(l, w.tag), WasPrefetched: w.prefetch && !w.used, Dirty: w.dirty}
		c.stats.Evictions++
		if w.dirty {
			c.stats.DirtyEvictions++
		}
		if w.prefetch && !w.used {
			c.stats.PrefetchUnused++
		}
	}
	c.stamp++
	*w = way{tag: tag, valid: true, dirty: opts.Dirty, prefetch: opts.Prefetch, lru: c.stamp}
	if opts.LowPriority {
		w.lru = 0
	}
	return victim
}

// Invalidate removes l if resident, returning whether it was dirty.
func (c *Cache) Invalidate(l memaddr.Line) (present, dirty bool) {
	set := c.set(l)
	tag := c.tag(l)
	for i := range set {
		w := &set[i]
		if w.valid && w.tag == tag {
			present, dirty = true, w.dirty
			w.valid = false
			return
		}
	}
	return
}

// pickVictim chooses the way to replace: invalid first; then, when
// DeadBlockAware, the LRU prefetched-but-unused line; otherwise plain LRU.
func (c *Cache) pickVictim(set []way) int {
	best, bestStamp := -1, ^uint64(0)
	for i := range set {
		if !set[i].valid {
			return i
		}
	}
	if c.cfg.DeadBlockAware {
		for i := range set {
			if set[i].prefetch && !set[i].used && set[i].lru < bestStamp {
				best, bestStamp = i, set[i].lru
			}
		}
		if best >= 0 {
			return best
		}
	}
	for i := range set {
		if set[i].lru < bestStamp {
			best, bestStamp = i, set[i].lru
		}
	}
	return best
}

// lineOf reconstructs a victim's line address from its tag and the set the
// fill targeted.
func (c *Cache) lineOf(fillLine memaddr.Line, tag uint64) memaddr.Line {
	setIdx := uint64(fillLine) & c.setMask
	return memaddr.Line(tag<<uint(popShift(c.setMask)) | setIdx)
}
